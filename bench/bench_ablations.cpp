// Design-choice ablations beyond the paper's figures (DESIGN.md Sec. 6):
//   1. bandwidth b: SBR gets faster with larger b, bulge chasing slower
//      (the O(n b^2) second-stage cost the paper cites for capping b),
//   2. tridiagonal solver: QL vs D&C vs bisection,
//   3. EC-TCGEMM overhead factor on real kernels,
//   4. TSQR leaf size.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/common/rng.hpp"
#include "src/evd/evd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/sbr.hpp"
#include "src/evd/refine.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_syr2k.hpp"
#include "src/tsqr/tsqr.hpp"

using namespace tcevd;

int main() {
  bench::header("Ablations — bandwidth, solver, EC overhead, TSQR leaf",
                "DESIGN.md section 6 (beyond the paper's own figures)");

  bench::section("bandwidth b: stage-1 (SBR) vs stage-2 (bulge chasing), n = 256");
  {
    Rng rng(1);
    const index_t n = 256;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    std::printf("%6s | %10s | %12s\n", "b", "sbr (ms)", "bulge (ms)");
    for (index_t b : {4, 8, 16, 32, 64}) {
      tc::Fp32Engine eng;
      Context ctx(eng);
      sbr::SbrOptions opt;
      opt.bandwidth = b;
      opt.big_block = 4 * b;
      sbr::SbrResult res;
      const double t1 = bench::time_once_s([&] { res = *sbr::sbr_wy(a.view(), ctx, opt); });
      const double t2 = bench::time_once_s(
          [&] { (void)bulge::bulge_chase<float>(res.band.view(), b, nullptr); });
      std::printf("%6lld | %10.1f | %12.1f\n", static_cast<long long>(b), t1 * 1e3,
                  t2 * 1e3);
    }
    std::printf("(bulge cost grows with b — why the paper keeps b at 128 despite\n"
                " bigger b making SBR GEMMs squarer)\n");
  }

  bench::section("tridiagonal solver on the two-stage pipeline, n = 256");
  {
    Rng rng(2);
    const index_t n = 256;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    auto run = [&](evd::TriSolver solver, const char* name) {
      tc::Fp32Engine eng;
      Context ctx(eng);
      evd::EvdOptions opt;
      opt.bandwidth = 16;
      opt.big_block = 64;
      opt.solver = solver;
      evd::EvdResult res;
      const double t = bench::time_once_s([&] { res = *evd::solve(a.view(), ctx, opt); });
      std::printf("%-16s total %8.1f ms (solver %7.1f ms)\n", name, t * 1e3,
                  res.timings.solver_s * 1e3);
    };
    run(evd::TriSolver::DivideConquer, "divide&conquer");
    run(evd::TriSolver::Ql, "implicit QL");
    run(evd::TriSolver::Bisection, "bisection");
  }

  bench::section("EC-TCGEMM overhead vs plain TC-GEMM (square, n = 256)");
  {
    Rng rng(3);
    const index_t n = 256;
    Matrix<float> a(n, n), b(n, n), c(n, n);
    fill_normal(rng, a.view());
    fill_normal(rng, b.view());
    const double t_tc = bench::time_s([&] {
      tc::tc_gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
    });
    const double t_ec = bench::time_s([&] {
      tc::ec_tcgemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f,
                    c.view());
    });
    std::printf("tc-gemm %.2f ms, ec-tcgemm %.2f ms -> overhead %.2fx (theory ~3x)\n",
                t_tc * 1e3, t_ec * 1e3, t_ec / t_tc);
  }

  bench::section("TC syr2k vs two TC GEMMs (paper future work; n = 192, k = 32)");
  {
    Rng rng(5);
    const index_t n = 192, k = 32;
    Matrix<float> a(n, k), b(n, k), c(n, n);
    fill_normal(rng, a.view());
    fill_normal(rng, b.view());
    const double t_two = bench::time_s([&] {
      tc::tc_gemm(blas::Trans::No, blas::Trans::Yes, -1.0f, a.view(), b.view(), 1.0f, c.view());
      tc::tc_gemm(blas::Trans::No, blas::Trans::Yes, -1.0f, b.view(), a.view(), 1.0f, c.view());
    });
    const double t_syr = bench::time_s([&] {
      tc::tc_syr2k(blas::Uplo::Lower, -1.0f, a.view(), b.view(), 1.0f, c.view());
    });
    const auto tiles = tc::tc_syr2k_tile_counts(n, k);
    std::printf("two TC GEMMs %.2f ms vs tc_syr2k %.2f ms (measured)\n", t_two * 1e3,
                t_syr * 1e3);
    std::printf("tile MMAs: syr2k %lld vs two-GEMM %lld -> %.0f%% of the work\n",
                static_cast<long long>(tiles.syr2k), static_cast<long long>(tiles.two_gemm),
                100.0 * tiles.syr2k / tiles.two_gemm);
  }

  bench::section("eigenpair refinement cost vs accuracy (n = 192, top-4 pairs)");
  {
    Rng rng(6);
    const index_t n = 192;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    tc::TcEngine eng(tc::TcPrecision::Fp16);
    Context ctx(eng);
    evd::EvdOptions opt;
    opt.bandwidth = 16;
    opt.big_block = 64;
    opt.vectors = true;
    auto res = *evd::solve(a.view(), ctx, opt);
    std::vector<float> lam(res.eigenvalues.end() - 4, res.eigenvalues.end());
    auto vk = res.vectors.sub(0, n - 4, n, 4);
    evd::RefineResult refined;
    const double t = bench::time_once_s(
        [&] { refined = evd::refine_eigenpairs(ctx, a.view(), lam, ConstMatrixView<float>(vk)); });
    double worst = 0.0;
    for (double r : refined.residuals) worst = std::max(worst, r);
    std::printf("refine 4 pairs: %.1f ms, %d RQI steps, worst residual %.1e\n", t * 1e3,
                refined.total_iterations, worst);
  }

  bench::section("TSQR leaf size (m = 4096, b = 32)");
  {
    Rng rng(4);
    Matrix<float> a(4096, 32);
    fill_normal(rng, a.view());
    Matrix<float> q(4096, 32), r(32, 32);
    for (index_t leaf : {64, 128, 256, 512, 1024}) {
      tsqr::TsqrOptions opts;
      opts.leaf_rows = leaf;
      const double t =
          bench::time_s([&] { tsqr::tsqr_factor(a.view(), q.view(), r.view(), opts); });
      std::printf("leaf %5lld: %8.2f ms\n", static_cast<long long>(leaf), t * 1e3);
    }
  }
  return 0;
}
