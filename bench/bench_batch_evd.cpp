// Batched EVD throughput: problems/sec of evd::solve_many vs. thread count
// on one shared engine, against the sequential single-solve baseline.
//
//   build/bench/bench_batch_evd [n] [batch]
//
// The scaling claim (MAGMA-batched / syevjBatched style): many same-shape
// problems on N workers with per-worker pre-reserved Contexts approach
// N x the single-thread rate, because the only shared state — the GEMM
// engine — is stateless per call. Absolute numbers are CPU-bound; the curve
// shape (speedup vs. threads) is the deliverable.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"
#include "src/tensorcore/engine.hpp"

using namespace tcevd;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? static_cast<index_t>(std::atol(argv[1])) : 96;
  const std::size_t count = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 16;

  bench::header("Batched EVD throughput (evd::solve_many)",
                "batched-driver scaling (MAGMA batched / cuSOLVER syevjBatched analogue)");
  std::printf("batch: %zu problems, n = %lld, engine fp32, solver divide-conquer\n", count,
              (long long)n);
  const int hw = ThreadPool::hardware_threads();
  std::printf("hardware threads: %d%s\n", hw,
              hw == 1 ? " (single core: no parallel speedup is possible here)" : "");

  Rng rng(4096);
  std::vector<Matrix<float>> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(matgen::generate_f(matgen::MatrixType::Geo, n, 1e3, rng));

  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 16;
  bopt.evd.big_block = 32;

  // Sequential baseline: one Context, one problem at a time.
  const double seq_s = bench::time_once_s([&] {
    Context ctx(engine);
    for (const auto& a : batch) (void)*evd::solve(a.view(), ctx, bopt.evd);
  });
  const double seq_rate = double(count) / seq_s;
  bench::section("problems/sec vs. worker threads");
  std::printf("%8s %12s %12s %10s\n", "threads", "seconds", "problems/s", "speedup");
  std::printf("%8s %12.3f %12.2f %10s\n", "seq", seq_s, seq_rate, "1.00x");

  // Oversubscribed rows (threads > cores) are still run: they demonstrate
  // the pool degrades gracefully rather than deadlocking, and on multi-core
  // hosts the table is the scaling curve the batched driver exists for.
  for (int threads : {1, 2, 4, 8}) {
    bopt.num_threads = threads;
    double batch_s = 0.0;
    evd::BatchResult res;
    batch_s = bench::time_once_s([&] { res = evd::solve_many(batch, engine, bopt); });
    if (!res.all_ok()) {
      std::printf("%8d %12s %12s %10s\n", threads, "FAILED", "-", "-");
      return 1;
    }
    const double rate = double(count) / batch_s;
    std::printf("%8d %12.3f %12.2f %9.2fx\n", threads, batch_s, rate, rate / seq_rate);
  }

  bench::section("merged per-stage telemetry (last run)");
  bopt.num_threads = 0;
  auto res = evd::solve_many(batch, engine, bopt);
  for (const auto& s : res.telemetry.stages())
    std::printf("  %-16s %9.3f s across %ld calls\n", s.name.c_str(), s.seconds, s.calls);
  std::printf("  workers: %d, batch wall: %.3f s\n", res.num_threads, res.total_s);
  return res.all_ok() ? 0 : 1;
}
