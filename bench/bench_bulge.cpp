// Wavefront bulge-chasing thread scaling: serial reference vs the
// wavefront engine at 1/2/4/8 lanes over an (n, bandwidth) grid matching
// bench_dbr's shapes (plus the n = 2048 paper-direction point the roadmap
// acceptance tracks).
//
// Rows are [measured] wall clock on this machine; each is mirrored into
// BENCH_bulge.json for the perf-trajectory tooling. The wavefront is
// bitwise-pinned to the serial rotation sequence (ctest label `bulge`), so
// every speedup in this table is free of accuracy caveats — the outputs are
// identical to the last bit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sbr/band.hpp"
#include "src/tensorcore/engine.hpp"

namespace {

using namespace tcevd;

struct Row {
  std::string name;
  double serial_s = 0.0;
  double wave_s[4] = {0.0, 0.0, 0.0, 0.0};  // 1, 2, 4, 8 lanes
};

constexpr int kLaneCounts[4] = {1, 2, 4, 8};

std::vector<Row> g_rows;

void emit(const Row& row) {
  const double s8 = row.wave_s[3] > 0.0 ? row.serial_s / row.wave_s[3] : 0.0;
  std::printf("  %-24s %9.2f ms   wave %8.2f %8.2f %8.2f %8.2f   x%.2f\n", row.name.c_str(),
              row.serial_s * 1e3, row.wave_s[0] * 1e3, row.wave_s[1] * 1e3, row.wave_s[2] * 1e3,
              row.wave_s[3] * 1e3, s8);
  g_rows.push_back(row);
}

Matrix<float> random_band(index_t n, index_t bw, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<float>(a.view(), bw);
  return a;
}

void sweep(index_t n, const std::vector<index_t>& bandwidths, bool with_q, ThreadPool& pool) {
  bench::section("band -> tridiagonal, n = " + std::to_string(n) +
                 (with_q ? " (accumulating Q)" : " (eigenvalues only)"));
  tc::Fp32Engine eng;
  Context ctx(eng);
  for (index_t bw : bandwidths) {
    if (bw >= n) continue;
    auto a = random_band(n, bw, 42 + static_cast<std::uint64_t>(n + bw));
    Matrix<float> q(with_q ? n : 0, with_q ? n : 0);

    Row row;
    row.name = "bulge/n=" + std::to_string(n) + "/bw=" + std::to_string(bw) +
               (with_q ? "/q" : "");

    {
      auto w = a;  // the chase destroys its input: copy outside the timer
      Matrix<float> qw = q;
      if (with_q) set_identity(qw.view());
      auto qv = qw.view();
      row.serial_s = bench::time_once_s(
          [&] { (void)bulge::bulge_chase<float>(w.view(), bw, with_q ? &qv : nullptr); });
    }
    for (int li = 0; li < 4; ++li) {
      bulge::WavefrontOptions wopt;
      wopt.pool = &pool;
      wopt.max_lanes = kLaneCounts[li];
      {
        auto warm = a;  // warm the arena + pool outside the timed run
        Matrix<float> qw = q;
        if (with_q) set_identity(qw.view());
        auto qv = qw.view();
        (void)bulge::bulge_chase_wavefront<float>(ctx, warm.view(), bw,
                                                  with_q ? &qv : nullptr, wopt);
      }
      auto w = a;
      Matrix<float> qw = q;
      if (with_q) set_identity(qw.view());
      auto qv = qw.view();
      row.wave_s[li] = bench::time_once_s([&] {
        (void)bulge::bulge_chase_wavefront<float>(ctx, w.view(), bw, with_q ? &qv : nullptr,
                                                  wopt);
      });
    }
    emit(row);
  }
  bench::stage_splits(ctx.telemetry());
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.9f, \"wave1_s\": %.9f, "
                 "\"wave2_s\": %.9f, \"wave4_s\": %.9f, \"wave8_s\": %.9f}%s\n",
                 r.name.c_str(), r.serial_s, r.wave_s[0], r.wave_s[1], r.wave_s[2],
                 r.wave_s[3], i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", g_rows.size(), path);
}

}  // namespace

int main() {
  bench::header("wavefront bulge chasing: serial vs 1/2/4/8-lane thread scaling",
                "DESIGN.md §14; Ringoot et al. 2510.12705, Rodríguez-Sánchez et al. 1709.00302");
  std::printf("  %-24s %12s   %-38s\n", "case", "serial", "wavefront lanes 1 / 2 / 4 / 8");

  const int hw = ThreadPool::hardware_threads();
  if (hw < 8)
    std::printf("\n  NOTE: this machine exposes %d hardware thread%s — lane counts above it\n"
                "  time-slice one core, so wavefront speedups here reflect scheduling\n"
                "  overhead, not the scaling a multicore CI runner or the paper's host\n"
                "  shows. The bitwise-equality guarantee is hardware-independent.\n",
                hw, hw == 1 ? "" : "s");

  ThreadPool pool(7);  // 7 workers + broadcasting caller = up to 8 lanes

  // bench_dbr's grid shapes.
  sweep(256, {4, 8, 16, 32}, /*with_q=*/false, pool);
  sweep(256, {2, 8}, /*with_q=*/true, pool);
  sweep(512, {2, 4, 8, 16, 32}, /*with_q=*/false, pool);
  // The roadmap acceptance point: n >= 2048, bw = 8 (eigenvalues only — the
  // Q accumulation is a dense O(n) row update per rotation and would swamp
  // the chase itself at this size on one core).
  sweep(2048, {2, 8}, /*with_q=*/false, pool);

  write_json(bench::out_path("BENCH_bulge.json").c_str());
  return 0;
}
