// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness prints two kinds of rows:
//   [measured] — real wall-clock numbers from this machine's CPU build
//                (small matrix sizes; absolute values are CPU-bound and not
//                comparable to the paper's A100),
//   [modeled]  — paper-scale predictions: exact GEMM shape streams from
//                src/perfmodel/shape_trace priced by the A100 throughput
//                model calibrated on the paper's own Table 1.
// The reproduction claim is about the *shape* of each curve (who wins,
// where the crossover sits), not absolute seconds; see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/context.hpp"
#include "src/common/timer.hpp"

namespace tcevd::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) { std::printf("\n--- %s ---\n", name.c_str()); }

/// Median-of-three wall time of a callable, in seconds.
template <typename F>
double time_s(F&& f) {
  double best[3];
  for (double& t : best) {
    Timer timer;
    f();
    t = timer.seconds();
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

/// Single-shot wall time (for expensive cases).
template <typename F>
double time_once_s(F&& f) {
  Timer timer;
  f();
  return timer.seconds();
}

/// Where a harness should write its BENCH_*.json mirror. Defaults to
/// `filename` in the working directory; TCEVD_BENCH_OUT, when set, names a
/// directory to collect every harness's JSON in one place (CI exports it as
/// an artifact without fishing files out of per-binary working dirs).
inline std::string out_path(const std::string& filename) {
  const char* dir = std::getenv("TCEVD_BENCH_OUT");
  if (dir == nullptr || *dir == '\0') return filename;
  std::string path(dir);
  if (path.back() != '/') path.push_back('/');
  return path + filename;
}

/// Print the per-stage wall-clock splits a context's telemetry accumulated —
/// one indented line per stage, milliseconds and call counts. The [measured]
/// sections call this after each run so the stage timers recorded throughout
/// the pipeline (evd.reduction, sbr.wy, sbr.wy.lookahead, evd.bulge, ...)
/// are actually surfaced instead of dying with the context.
inline void stage_splits(const Telemetry& telemetry, const char* indent = "    ") {
  if (telemetry.stages().empty()) return;
  for (const Telemetry::StageStat& s : telemetry.stages())
    std::printf("%s%-24s %9.2f ms  (%ld call%s)\n", indent, s.name.c_str(),
                1e3 * s.seconds, s.calls, s.calls == 1 ? "" : "s");
}

}  // namespace tcevd::bench
