// Detached Band Reduction sweep: how the (b, nb) split moves time between
// the two stages.
//
// With the classic coupled WY-SBR, bandwidth == blocksize, so shrinking the
// band (cheaper bulge chasing) also shrinks every trailing-update GEMM
// (worse stage one). DBR breaks the coupling: stage one always issues
// k = nb trailing updates while stage two sees only the b-wide band. This
// harness sweeps the grid and reports the split, so the crossover is
// visible on this machine rather than argued from the flop model.
//
// Rows are [measured]; each is mirrored into BENCH_dbr.json for the
// perf-trajectory tooling (same shape as BENCH_verify.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/evd/evd.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/engine.hpp"

namespace {

using namespace tcevd;

struct Row {
  std::string name;
  double total_s = 0.0;
  double sbr_s = 0.0;    // stage one (dense -> band), k = nb GEMMs
  double bulge_s = 0.0;  // stage two (band -> tridiagonal), width b
  double solver_s = 0.0;
};

std::vector<Row> g_rows;

void emit(const Row& row) {
  std::printf("  %-28s %9.2f ms   sbr %8.2f   bulge %8.2f   solver %8.2f\n",
              row.name.c_str(), row.total_s * 1e3, row.sbr_s * 1e3, row.bulge_s * 1e3,
              row.solver_s * 1e3);
  g_rows.push_back(row);
}

Matrix<float> random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  return a;
}

void sweep_evd(index_t n, tc::GemmEngine& engine) {
  bench::section("full EVD split across the (b, nb) grid, n = " + std::to_string(n) +
                 " (" + std::string(engine.name()) + ", vectors)");
  auto a = random_symmetric(n, 42 + n);
  const auto av = ConstMatrixView<float>(a.view());

  const index_t bandwidths[] = {4, 8, 16, 32};
  const index_t big_blocks[] = {32, 64};
  for (index_t nb : big_blocks) {
    for (index_t b : bandwidths) {
      if (b > nb) continue;
      evd::EvdOptions opt;
      opt.reduction = evd::Reduction::TwoStageDbr;
      opt.bandwidth = b;
      opt.big_block = nb;
      opt.vectors = true;
      Context ctx(engine);
      (void)evd::solve(av, ctx, opt);  // warm the arena: timed run is steady-state
      auto res = evd::solve(av, ctx, opt);
      if (!res.ok()) {
        std::fprintf(stderr, "solve failed: %s\n", res.status().to_string().c_str());
        continue;
      }
      Row row;
      row.name = "evd/n=" + std::to_string(n) + "/b=" + std::to_string(b) +
                 "/nb=" + std::to_string(nb);
      row.total_s = res->timings.total_s;
      row.sbr_s = res->timings.reduction_s;
      row.bulge_s = res->timings.bulge_s;
      row.solver_s = res->timings.solver_s;
      emit(row);
    }
  }
}

void sweep_sbr_only(index_t n, tc::GemmEngine& engine) {
  bench::section("stage one only: sbr_dbr vs coupled sbr_wy, n = " + std::to_string(n) +
                 " (" + std::string(engine.name()) + ")");
  auto a = random_symmetric(n, 7 + n);
  const auto av = ConstMatrixView<float>(a.view());

  struct Case {
    index_t b, nb;
  };
  const Case cases[] = {{4, 4}, {4, 32}, {8, 8}, {8, 32}, {8, 64}, {16, 64}, {32, 32}};
  for (const Case& c : cases) {
    sbr::SbrOptions opt;
    opt.bandwidth = c.b;
    opt.big_block = c.nb;
    Context ctx(engine);
    (void)sbr::sbr_dbr(av, ctx, opt);  // warm
    ctx.telemetry().clear_stages();
    const double secs = bench::time_once_s([&] { (void)sbr::sbr_dbr(av, ctx, opt); });
    Row row;
    row.name = "sbr/n=" + std::to_string(n) + "/b=" + std::to_string(c.b) +
               "/nb=" + std::to_string(c.nb);
    row.total_s = secs;
    row.sbr_s = secs;
    row.bulge_s = 0.0;
    row.solver_s = ctx.telemetry().stage_seconds("sbr.dbr.trailing");
    emit(row);
  }
  std::printf("    (sbr rows: the last column is the detached trailing-update time,\n"
              "     not a solver; b == nb rows run the coupled WY path verbatim)\n");
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.9f, \"sbr_s\": %.9f, "
                 "\"bulge_s\": %.9f, \"solver_s\": %.9f}%s\n",
                 r.name.c_str(), r.total_s, r.sbr_s, r.bulge_s, r.solver_s,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", g_rows.size(), path);
}

}  // namespace

int main() {
  bench::header("detached band reduction: (bandwidth, blocksize) decoupling",
                "DESIGN.md §13 (DBR); paper §3 blocksize discussion");
  std::printf("  %-28s %12s\n", "case", "total");

  tc::TcEngine tc_engine;
  sweep_evd(256, tc_engine);
  sweep_sbr_only(256, tc_engine);
  tc::Fp32Engine fp32;
  sweep_sbr_only(256, fp32);

  write_json(bench::out_path("BENCH_dbr.json").c_str());
  return 0;
}
