// Paper Figure 10: overall band-reduction time of the WY-based algorithm
// (plain TC GEMMs), the WY algorithm with error-corrected TC GEMMs, the
// ZY-based algorithm on TC, and the MAGMA baseline.
//
// Paper findings at large n: WY-TC up to 3.7x over MAGMA, ~1.3x over ZY-TC;
// WY with EC-TCGEMM still ~1.3x over MAGMA.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

namespace {

double panels_s(index_t n, index_t b, bool tsqr) {
  double t = 0.0;
  for (const auto& p : perf::trace_panels(n, b)) t += perf::panel_time_s(p.m, b, tsqr);
  return t;
}

double modeled_magma_s(index_t n, index_t b) {
  double t = 0.0;
  auto shapes = perf::trace_sbr_zy(n, b);
  for (std::size_t i = 0; i < shapes.size(); i += 5) {
    for (int j = 0; j < 3; ++j)
      t += perf::gemm_time_s(perf::Device::Sgemm, shapes[i + j].m, shapes[i + j].n,
                             shapes[i + j].k);
    t += 0.5 * (perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 3].m, shapes[i + 3].n,
                                  shapes[i + 3].k) +
                perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 4].m, shapes[i + 4].n,
                                  shapes[i + 4].k));
  }
  return t + panels_s(n, b, false);
}

}  // namespace

int main() {
  bench::header("Figure 10 — overall SBR: WY / WY+EC / ZY / MAGMA",
                "paper Fig. 10 (b = 128, nb = 1024)");

  const index_t b = 128, nb = 1024;
  bench::section("[modeled] paper scale, seconds (speedup = MAGMA / WY-TC)");
  std::printf("%8s | %8s %8s %8s %8s | %8s\n", "n", "WY-TC", "WY-EC", "ZY-TC", "MAGMA",
              "speedup");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    auto wy = perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true);
    auto zy = perf::trace_sbr_zy(n, b);
    const double t_wy =
        perf::total_time_s(perf::Device::TensorCore, wy) + panels_s(n, b, true);
    // EC-TCGEMM: three TC GEMMs per logical GEMM (head + two corrections).
    const double t_ec =
        3.0 * perf::total_time_s(perf::Device::TensorCore, wy) + panels_s(n, b, true);
    const double t_zy =
        perf::total_time_s(perf::Device::TensorCore, zy) + panels_s(n, b, true);
    const double t_mg = modeled_magma_s(n, b);
    std::printf("%8lld | %8.2f %8.2f %8.2f %8.2f | %8.2f\n", static_cast<long long>(n),
                t_wy, t_ec, t_zy, t_mg, t_mg / t_wy);
  }
  std::printf("\nexpected shape: WY-TC fastest at large n (paper: up to 3.7x over\n"
              "MAGMA, ~1.3x over ZY-TC beyond n ~ 20000); WY-EC costs ~3x the GEMM\n"
              "time yet stays at or below the MAGMA baseline (paper: ~1.3x faster).\n");

  bench::section("[modeled] detached band reduction: narrow bands, same nb = 1024");
  // DBR keeps every trailing-update GEMM at inner dimension nb while the
  // band handed to bulge chasing narrows to b, so stage one stays near the
  // coupled optimum as b drops. The coupled column forces nb = b — what
  // shrinking the band costs when the blocksize must follow it.
  std::printf("%8s %6s | %10s %10s | %8s\n", "n", "b", "DBR-TC", "coupled", "ratio");
  for (index_t n : {8192, 16384, 32768}) {
    for (index_t bw : {16, 32, 128}) {
      auto dbr = perf::trace_sbr_dbr(n, bw, nb, /*cache_oa=*/true);
      auto coupled = perf::trace_sbr_wy(n, bw, bw, /*cache_oa=*/true);
      const double t_dbr =
          perf::total_time_s(perf::Device::TensorCore, dbr) + panels_s(n, bw, true);
      const double t_cp =
          perf::total_time_s(perf::Device::TensorCore, coupled) + panels_s(n, bw, true);
      std::printf("%8lld %6lld | %10.2f %10.2f | %8.2f\n", static_cast<long long>(n),
                  static_cast<long long>(bw), t_dbr, t_cp, t_cp / t_dbr);
    }
  }

  bench::section("[measured] this machine (n = 256, b = 16, nb = 64), wall ms");
  {
    Rng rng(11);
    const index_t n = 256;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    sbr::SbrOptions wy;
    wy.bandwidth = 16;
    wy.big_block = 64;
    sbr::SbrOptions zy;
    zy.bandwidth = 16;
    sbr::SbrOptions magma = zy;
    magma.zy_use_syr2k = true;

    tc::TcEngine e_tc;
    Context c_tc(e_tc);
    tc::EcTcEngine e_ec;
    Context c_ec(e_ec);
    tc::TcEngine e_tc2;
    Context c_tc2(e_tc2);
    tc::Fp32Engine e_fp;
    Context c_fp(e_fp);
    std::printf("WY  tc-fp16  : %8.1f\n",
                1e3 * bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), c_tc, wy); }));
    bench::stage_splits(c_tc.telemetry());
    std::printf("WY  ectc-fp16: %8.1f\n",
                1e3 * bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), c_ec, wy); }));
    bench::stage_splits(c_ec.telemetry());
    std::printf("ZY  tc-fp16  : %8.1f\n",
                1e3 * bench::time_once_s([&] { (void)sbr::sbr_zy(a.view(), c_tc2, zy); }));
    bench::stage_splits(c_tc2.telemetry());
    std::printf("ZY  fp32+syr2k (MAGMA-like): %8.1f\n",
                1e3 * bench::time_once_s([&] { (void)sbr::sbr_zy(a.view(), c_fp, magma); }));
    bench::stage_splits(c_fp.telemetry());

    // Detached variant at the same nb with a 4x narrower band: stage one
    // stays in WY territory, the band handed downstream shrinks to b = 4.
    sbr::SbrOptions dbr;
    dbr.bandwidth = 4;
    dbr.big_block = 64;
    tc::TcEngine e_dbr;
    Context c_dbr(e_dbr);
    std::printf("DBR tc-fp16 (b=4, nb=64): %8.1f\n",
                1e3 * bench::time_once_s([&] { (void)sbr::sbr_dbr(a.view(), c_dbr, dbr); }));
    bench::stage_splits(c_dbr.telemetry());
  }

  bench::section("[measured] look-ahead overlap (b = 64, nb = 128, fp32), wall ms");
  {
    // Same reflectors either way; look-ahead reschedules the next block's
    // panel factorization into the overlap window of the trailing update, so
    // the available win is the panel time the serial schedule exposes. The
    // `hidden` column is that exposed panel time (sbr.wy.lookahead.panel),
    // which a host with a free core recovers from the wall clock; `overlap%`
    // is its share of the serial run. On a single-hardware-thread host the
    // two tasks time-slice one core and `lookahead` degrades to `serial`
    // plus split-update overhead — the measured column only shows a
    // reduction when a second core exists.
    if (ThreadPool::hardware_threads() == 1)
      std::printf("(single hardware thread: overlap window time-slices, expect\n"
                  " measured lookahead ~= serial; `hidden` is the multicore win)\n");
    std::printf("%8s | %10s %10s | %10s %8s\n", "n", "serial", "lookahead", "hidden",
                "overlap%");
    for (index_t n : {1024, 2048}) {
      Rng rng(29 + static_cast<unsigned>(n));
      Matrix<float> a(n, n);
      fill_normal(rng, a.view());
      make_symmetric(a.view());
      sbr::SbrOptions opt;
      opt.bandwidth = 64;
      opt.big_block = 128;

      tc::Fp32Engine eng;
      Context ctx(eng);
      opt.lookahead = false;
      // Warm the arena so neither timed run pays first-touch allocation.
      (void)sbr::sbr_wy(a.view(), ctx, opt);
      const double t_serial =
          bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), ctx, opt); });
      opt.lookahead = true;
      (void)sbr::sbr_wy(a.view(), ctx, opt);
      ctx.telemetry().clear_stages();  // isolate the timed run's splits
      const double t_la =
          bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), ctx, opt); });
      const double hidden = ctx.telemetry().stage_seconds("sbr.wy.lookahead.panel");
      std::printf("%8lld | %10.1f %10.1f | %10.1f %7.1f%%\n", static_cast<long long>(n),
                  1e3 * t_serial, 1e3 * t_la, 1e3 * hidden, 100.0 * hidden / t_serial);
      bench::stage_splits(ctx.telemetry());
    }
  }
  return 0;
}
