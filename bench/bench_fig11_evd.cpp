// Paper Figure 11: total two-stage EVD time (eigenvalues only) — Tensor-Core
// WY-SBR first stage + bulge chasing + divide & conquer — vs the MAGMA
// baseline. The paper reports ~2x end-to-end speedup, SBR being the
// dominant stage.
//
// Modeled rows: stage 1 from the shape traces + panel model (plus the
// device->host transfer the paper includes at 12 GB/s); stage 2 and the
// D&C solver are the same on both sides (the paper uses MAGMA's CPU code
// for both), modeled as flop counts over a calibrated CPU rate.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/evd/evd.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"

using namespace tcevd;

namespace {

double panels_s(index_t n, index_t b, bool tsqr) {
  double t = 0.0;
  for (const auto& p : perf::trace_panels(n, b)) t += perf::panel_time_s(p.m, b, tsqr);
  return t;
}

double modeled_magma_sbr_s(index_t n, index_t b) {
  double t = 0.0;
  auto shapes = perf::trace_sbr_zy(n, b);
  for (std::size_t i = 0; i < shapes.size(); i += 5) {
    for (int j = 0; j < 3; ++j)
      t += perf::gemm_time_s(perf::Device::Sgemm, shapes[i + j].m, shapes[i + j].n,
                             shapes[i + j].k);
    t += 0.5 * (perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 3].m, shapes[i + 3].n,
                                  shapes[i + 3].k) +
                perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 4].m, shapes[i + 4].n,
                                  shapes[i + 4].k));
  }
  return t + panels_s(n, b, false);
}

/// Shared second stage: bulge chasing O(n^2 b) + D&C O(n^2) on the host,
/// at an effective multicore-CPU rate, plus the 12 GB/s band download.
double second_stage_s(index_t n, index_t b) {
  // Effective rate of MAGMA's cache-blocked bulge chasing + D&C on the
  // paper's 16-thread MKL host. Calibrated so the n = 32768 stage-2 lands
  // near ~2 s, which is what the paper's ~2x end-to-end speedup implies
  // given its SBR times (see EXPERIMENTS.md).
  const double cpu_rate = 4e11;
  const double bulge = 6.0 * double(n) * double(n) * double(b) / cpu_rate;
  const double dc = 8.0 * double(n) * double(n) / cpu_rate;
  const double transfer = 4.0 * double(n) * double(b + 1) / 12e9;
  return bulge + dc + transfer;
}

}  // namespace

int main() {
  bench::header("Figure 11 — two-stage EVD (eigenvalues only): ours vs MAGMA",
                "paper Fig. 11 (b = 128, nb = 1024, D&C final stage)");

  const index_t b = 128, nb = 1024;
  bench::section("[modeled] paper scale, seconds");
  std::printf("%8s | %9s %9s %9s | %9s %9s | %8s\n", "n", "sbr-TC", "stage2", "ours",
              "sbr-MAGMA", "magma", "speedup");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    const double s1 = perf::total_time_s(perf::Device::TensorCore,
                                         perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true)) +
                      panels_s(n, b, true);
    const double s2 = second_stage_s(n, b);
    const double m1 = modeled_magma_sbr_s(n, b);
    const double ours = s1 + s2;
    const double magma = m1 + s2;
    std::printf("%8lld | %9.2f %9.2f %9.2f | %9.2f %9.2f | %8.2f\n",
                static_cast<long long>(n), s1, s2, ours, m1, magma, magma / ours);
  }
  std::printf("\nexpected shape: speedup grows with n toward ~2x (paper: \"around 2x\",\n"
              "up to 2.3x), limited by the shared second stage (Amdahl).\n");

  bench::section("[measured] this machine: full pipelines (n = 192, b = 16)");
  {
    Rng rng(13);
    const index_t n = 192;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());

    auto run = [&](evd::Reduction red, const char* name) {
      tc::Fp32Engine eng;
      Context ctx(eng);
      evd::EvdOptions opt;
      opt.reduction = red;
      opt.bandwidth = 16;
      opt.big_block = 64;
      evd::EvdResult res;
      const double t = bench::time_once_s([&] { res = *evd::solve(a.view(), ctx, opt); });
      std::printf("%-22s total %7.1f ms (reduce %6.1f, bulge %6.1f, solver %6.1f)\n", name,
                  t * 1e3, res.timings.reduction_s * 1e3, res.timings.bulge_s * 1e3,
                  res.timings.solver_s * 1e3);
      bench::stage_splits(ctx.telemetry());
    };
    run(evd::Reduction::TwoStageWy, "two-stage WY + D&C");
    run(evd::Reduction::TwoStageZy, "two-stage ZY + D&C");
    run(evd::Reduction::OneStage, "one-stage sytrd + D&C");
  }
  return 0;
}
