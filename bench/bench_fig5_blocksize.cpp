// Paper Figure 5: total elapsed time of the Tensor Core GEMMs inside the
// WY-based SBR (Algorithm 1) as the big block size nb sweeps 128..4096
// (n = 32768, bandwidth 128). The paper finds a minimum near nb = 1024:
// below it the GEMMs are too skinny, above it the extra arithmetic of the
// WY scheme dominates.
//
// Also reproduces the Section 4.4 back-transformation comparison: recursive
// FormW (Algorithm 2) ~320 ms vs progressive ZY accumulation ~420 ms.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/timer.hpp"
#include "src/common/rng.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

int main() {
  bench::header("Figure 5 — WY-SBR Tensor Core GEMM time vs big block size nb",
                "paper Fig. 5 (n = 32768, b = 128) and Sec. 4.4 FormW timing");

  const index_t n = 32768, b = 128;

  bench::section("[modeled] paper scale (literal Algo 1 | cached OA*W)");
  std::printf("%8s | %12s %10s | %12s %10s\n", "nb", "literal (s)", "TFLOPS",
              "cached (s)", "TFLOPS");
  double best_t = 1e30;
  index_t best_nb = 0;
  for (index_t nb : {128, 256, 512, 1024, 2048, 4096}) {
    auto lit = perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/false);
    auto cached = perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true);
    const double tl = perf::total_time_s(perf::Device::TensorCore, lit);
    const double tc_cached = perf::total_time_s(perf::Device::TensorCore, cached);
    std::printf("%8lld | %12.3f %10.1f | %12.3f %10.1f\n", static_cast<long long>(nb), tl,
                perf::stream_tflops(perf::Device::TensorCore, lit), tc_cached,
                perf::stream_tflops(perf::Device::TensorCore, cached));
    if (tl < best_t) {
      best_t = tl;
      best_nb = nb;
    }
  }
  std::printf("literal minimum at nb = %lld (paper: nb = 1024 — the paper's measured\n"
              "flop growth puts its implementation between the two columns; both\n"
              "reproduce the U-shape / saturation the figure argues from)\n",
              static_cast<long long>(best_nb));

  bench::section("[modeled] back-transformation (Sec. 4.4, n = 32768)");
  {
    const double formw =
        perf::total_time_s(perf::Device::TensorCore, perf::trace_formw(n, b, 1024));
    const double zy_bt =
        perf::total_time_s(perf::Device::TensorCore, perf::trace_zy_backtransform(n, b));
    std::printf("recursive FormW (Algo 2): %7.1f ms   (paper ~320 ms)\n", formw * 1e3);
    std::printf("progressive ZY transform: %7.1f ms   (paper ~420 ms)\n", zy_bt * 1e3);
    std::printf("speedup: %.2fx (paper ~1.3x)\n", zy_bt / formw);
  }

  bench::section("[measured] this machine (n = 512, b = 16), WY-SBR wall time");
  {
    Rng rng(3);
    Matrix<float> a(512, 512);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    std::printf("%8s %12s\n", "nb", "time (ms)");
    for (index_t nb : {16, 32, 64, 128, 256}) {
      tc::TcEngine eng;
      Context ctx(eng);
      sbr::SbrOptions opt;
      opt.bandwidth = 16;
      opt.big_block = nb;
      const double t =
          bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), ctx, opt); });
      std::printf("%8lld %12.1f\n", static_cast<long long>(nb), t * 1e3);
    }
    std::printf("(on CPU larger nb costs more everywhere — there is no Tensor Core\n"
                " to reward squarer GEMMs; this is the paper's Fig. 7 point)\n");
  }
  return 0;
}
