// Paper Figure 6: total Tensor Core GEMM time of the WY-based algorithm
// (nb = 1024) vs the ZY-based algorithm as the matrix size sweeps
// 4096..32768 (b = 128). The paper finds ZY ahead at 4096-8192 (the extra
// WY arithmetic isn't yet paid for) and WY ~1.5x ahead at 32768 where its
// GEMMs run at ~240 TFLOPS vs ZY's ~50.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"

using namespace tcevd;

int main() {
  bench::header("Figure 6 — Tensor Core GEMM time: WY (nb=1024) vs ZY",
                "paper Fig. 6 (b = 128, n = 4096..32768)");

  const index_t b = 128, nb = 1024;
  std::printf("%8s | %10s %8s | %10s %8s | %8s %10s\n", "n", "WY (s)", "TFLOPS", "ZY (s)",
              "TFLOPS", "ZY/WY", "(literal)");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    auto wy = perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true);
    auto wy_lit = perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/false);
    auto zy = perf::trace_sbr_zy(n, b);
    const double twy = perf::total_time_s(perf::Device::TensorCore, wy);
    const double tzy = perf::total_time_s(perf::Device::TensorCore, zy);
    const double twy_lit = perf::total_time_s(perf::Device::TensorCore, wy_lit);
    std::printf("%8lld | %10.3f %8.1f | %10.3f %8.1f | %8.2f %10.2f\n",
                static_cast<long long>(n), twy,
                perf::stream_tflops(perf::Device::TensorCore, wy), tzy,
                perf::stream_tflops(perf::Device::TensorCore, zy), tzy / twy,
                tzy / twy_lit);
  }
  std::printf("\nexpected shape: ZY/WY < 1 at n = 4096 (ZY wins), crossover by ~16384,\n"
              "WY ~1.3-1.5x faster at 32768 (paper: \"around 1.5x speedup in GEMMs\").\n"
              "WY column uses the cached-OA*W variant (what the paper's code must\n"
              "do for WY to win at all); (literal) prices the as-printed Algorithm 1.\n");

  // The structural claim in numbers: flop mass per smallest-GEMM-dimension
  // bin at n = 32768 (the paper's Section 4 argument made quantitative).
  std::printf("\nflop-mass histogram over the smallest GEMM dimension (n = 32768):\n");
  std::printf("%12s | %14s | %14s\n", "min dim", "WY flop %", "ZY flop %");
  {
    auto wy = perf::trace_sbr_wy(32768, b, nb, /*cache_oa=*/true);
    auto zy = perf::trace_sbr_zy(32768, b);
    auto hw = perf::shape_histogram(wy);
    auto hz = perf::shape_histogram(zy);
    const double fw = perf::total_flops(wy);
    const double fz = perf::total_flops(zy);
    auto pct = [](const std::vector<perf::ShapeBin>& h, index_t lo, double total) {
      for (const auto& bb : h)
        if (bb.min_dim_lo == lo) return 100.0 * bb.flops / total;
      return 0.0;
    };
    for (index_t lo : {64, 128, 256, 512, 1024}) {
      std::printf("%5lld..%-5lld | %13.1f%% | %13.1f%%\n", static_cast<long long>(lo),
                  static_cast<long long>(2 * lo - 1), pct(hw, lo, fw), pct(hz, lo, fz));
    }
    std::printf("flop-weighted mean min-dim: WY %.0f vs ZY %.0f\n",
                perf::flop_weighted_min_dim(wy), perf::flop_weighted_min_dim(zy));
  }
  return 0;
}
