// Paper Figure 7: the same WY-vs-ZY comparison with fp32 SGEMMs instead of
// Tensor Core GEMMs. SGEMM throughput is nearly shape-independent (Table 1),
// so the WY algorithm's extra arithmetic is pure loss: ZY must win at every
// size — the paper's evidence that WY-SBR is a Tensor-Core-specific win.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

int main() {
  bench::header("Figure 7 — SGEMM time: WY (nb=1024) vs ZY",
                "paper Fig. 7 (b = 128, n = 4096..32768)");

  const index_t b = 128, nb = 1024;
  bench::section("[modeled] paper scale");
  std::printf("%8s | %10s | %10s | %8s\n", "n", "WY (s)", "ZY (s)", "ZY/WY");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    const double twy =
        perf::total_time_s(perf::Device::Sgemm, perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true));
    const double tzy = perf::total_time_s(perf::Device::Sgemm, perf::trace_sbr_zy(n, b));
    std::printf("%8lld | %10.3f | %10.3f | %8.2f\n", static_cast<long long>(n), twy, tzy,
                tzy / twy);
  }
  std::printf("expected shape: ZY/WY < 1 everywhere (ZY wins without Tensor Cores).\n");

  bench::section("[measured] this machine, fp32 engine wall time (b = 16)");
  std::printf("%8s | %10s | %10s | %8s\n", "n", "WY (ms)", "ZY (ms)", "ZY/WY");
  for (index_t n : {192, 320, 448}) {
    Rng rng(5);
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    tc::Fp32Engine e1, e2;
    Context c1(e1), c2(e2);
    sbr::SbrOptions wy;
    wy.bandwidth = 16;
    wy.big_block = 64;
    sbr::SbrOptions zy;
    zy.bandwidth = 16;
    const double twy = bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), c1, wy); });
    const double tzy = bench::time_once_s([&] { (void)sbr::sbr_zy(a.view(), c2, zy); });
    std::printf("%8lld | %10.1f | %10.1f | %8.2f\n", static_cast<long long>(n), twy * 1e3,
                tzy * 1e3, tzy / twy);
  }
  std::printf("(ZY/WY < 1 measured too: without a Tensor Core the conventional\n"
              " algorithm is the right choice — matching the paper's conclusion)\n");
  return 0;
}
