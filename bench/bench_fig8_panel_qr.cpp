// Paper Figure 8: total panel-QR time over a whole band reduction — TSQR
// (+ Householder reconstruction) vs the cuSOLVER-style blocked Householder
// panel vs MAGMA's panel. The paper reports ~5x speedup for TSQR.
//
// Measured rows time our real TSQR and blocked-QR panel factorizations over
// the exact panel sweep an SBR at that size performs. Modeled rows price the
// paper-scale sweep with the latency/bandwidth panel model.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/rng.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

namespace {

double measured_panel_sweep_s(index_t n, index_t b, sbr::PanelKind kind) {
  Rng rng(7);
  double total = 0.0;
  for (const auto& p : perf::trace_panels(n, b)) {
    Matrix<float> panel(p.m, b);
    fill_normal(rng, panel.view());
    Matrix<float> w(p.m, b), y(p.m, b);
    total += bench::time_once_s(
        [&] { sbr::panel_factor_wy(kind, panel.view(), w.view(), y.view()); });
  }
  return total;
}

}  // namespace

int main() {
  bench::header("Figure 8 — panel QR factorization time over the SBR sweep",
                "paper Fig. 8 (TSQR vs cuSOLVER vs MAGMA panels, b = 128)");

  bench::section("[modeled] paper scale (b = 128)");
  std::printf("%8s | %12s | %14s | %8s\n", "n", "TSQR (ms)", "library (ms)", "speedup");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    double tsqr = 0.0, lib = 0.0;
    for (const auto& p : perf::trace_panels(n, 128)) {
      tsqr += perf::panel_time_s(p.m, 128, true);
      lib += perf::panel_time_s(p.m, 128, false);
    }
    std::printf("%8lld | %12.1f | %14.1f | %8.2f\n", static_cast<long long>(n), tsqr * 1e3,
                lib * 1e3, lib / tsqr);
  }
  std::printf("(paper reports ~5x; the model keys on kernel-launch counts: the\n"
              " library panel launches O(b) kernels per panel, TSQR fuses the tree)\n");

  bench::section("[measured] this machine (b = 16)");
  std::printf("%8s | %12s | %16s | %8s\n", "n", "TSQR (ms)", "blockedQR (ms)", "ratio");
  for (index_t n : {256, 512, 1024}) {
    const double t1 = measured_panel_sweep_s(n, 16, sbr::PanelKind::Tsqr);
    const double t2 = measured_panel_sweep_s(n, 16, sbr::PanelKind::BlockedQr);
    std::printf("%8lld | %12.1f | %16.1f | %8.2f\n", static_cast<long long>(n), t1 * 1e3,
                t2 * 1e3, t2 / t1);
  }
  std::printf("(on one CPU core both panels are flop-bound, so the ratio hovers\n"
              " near 1; the GPU gap in the paper comes from latency/parallelism,\n"
              " which the modeled rows carry)\n");
  return 0;
}
