// Paper Figure 9: ablation of the two ingredients of the fast SBR — the
// Tensor Core GEMMs and the TSQR panel — against the MAGMA baseline:
//
//   grey:   TC on,  TSQR on   (full method)
//   blue:   TC off, TSQR on   (SGEMM trailing updates)
//   yellow: TC on,  TSQR off  (cuSOLVER-style panel)
//   orange: MAGMA sy2sb       (ZY + syr2k on SGEMM, library panel)
//
// Paper findings: TSQR matters most at small n (panels dominate), TC at
// large n (GEMMs dominate); without TC the WY method is *worse* than MAGMA
// at large n.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

namespace {

double modeled_sbr_s(index_t n, index_t b, index_t nb, bool tensor_core, bool tsqr) {
  const auto dev = tensor_core ? perf::Device::TensorCore : perf::Device::Sgemm;
  double t = perf::total_time_s(dev, perf::trace_sbr_wy(n, b, nb, /*cache_oa=*/true));
  for (const auto& p : perf::trace_panels(n, b)) t += perf::panel_time_s(p.m, b, tsqr);
  return t;
}

double modeled_magma_s(index_t n, index_t b) {
  // MAGMA sy2sb: ZY trailing updates on SGEMM, with the rank-2b update as a
  // true syr2k (half the flops of the two-GEMM form), and a library panel.
  double t = 0.0;
  auto shapes = perf::trace_sbr_zy(n, b);
  for (std::size_t i = 0; i < shapes.size(); i += 5) {
    t += perf::gemm_time_s(perf::Device::Sgemm, shapes[i].m, shapes[i].n, shapes[i].k);
    t += perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 1].m, shapes[i + 1].n,
                           shapes[i + 1].k);
    t += perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 2].m, shapes[i + 2].n,
                           shapes[i + 2].k);
    // one syr2k instead of two outer GEMMs: same shape, half the work
    t += 0.5 * (perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 3].m, shapes[i + 3].n,
                                  shapes[i + 3].k) +
                perf::gemm_time_s(perf::Device::Sgemm, shapes[i + 4].m, shapes[i + 4].n,
                                  shapes[i + 4].k));
  }
  for (const auto& p : perf::trace_panels(n, b)) t += perf::panel_time_s(p.m, b, false);
  return t;
}

}  // namespace

int main() {
  bench::header("Figure 9 — SBR ablation: Tensor Core x TSQR vs MAGMA",
                "paper Fig. 9 (b = 128, nb = 1024)");

  const index_t b = 128, nb = 1024;
  bench::section("[modeled] paper scale, seconds");
  std::printf("%8s | %9s %9s %9s | %9s\n", "n", "TC+TSQR", "noTC+TSQR", "TC+libQR",
              "MAGMA");
  for (index_t n : {4096, 8192, 16384, 24576, 32768}) {
    std::printf("%8lld | %9.2f %9.2f %9.2f | %9.2f\n", static_cast<long long>(n),
                modeled_sbr_s(n, b, nb, true, true), modeled_sbr_s(n, b, nb, false, true),
                modeled_sbr_s(n, b, nb, true, false), modeled_magma_s(n, b));
  }
  std::printf("\nexpected shape: TC+TSQR fastest everywhere; TSQR's edge biggest at\n"
              "small n; noTC+TSQR falls behind MAGMA at large n (paper's caveat that\n"
              "WY only pays off *with* Tensor Cores).\n");

  bench::section("[measured] this machine (n = 320, b = 16, nb = 64), panel ablation");
  {
    Rng rng(9);
    const index_t n = 320;
    Matrix<float> a(n, n);
    fill_normal(rng, a.view());
    make_symmetric(a.view());
    for (auto kind : {sbr::PanelKind::Tsqr, sbr::PanelKind::BlockedQr}) {
      tc::Fp32Engine eng;
      Context ctx(eng);
      sbr::SbrOptions opt;
      opt.bandwidth = 16;
      opt.big_block = 64;
      opt.panel = kind;
      const double t = bench::time_once_s([&] { (void)sbr::sbr_wy(a.view(), ctx, opt); });
      std::printf("WY-SBR, %-10s panel: %8.1f ms\n",
                  kind == sbr::PanelKind::Tsqr ? "TSQR" : "blockedQR", t * 1e3);
    }
  }
  return 0;
}
