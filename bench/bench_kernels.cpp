// google-benchmark microbenchmarks of the measured CPU kernels underneath
// the reproduction: BLAS-3, the emulated Tensor Core GEMMs, panels, the
// tridiagonal solvers, and the SBR variants at CPU-friendly sizes.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/blas/simd_dispatch.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/common/rng.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/lapack/jacobi_evd.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "src/tsqr/tsqr.hpp"

namespace tcevd {
namespace {

void BM_GemmFp32(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  for (auto _ : state) {
    blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmFp32)->Arg(64)->Arg(128)->Arg(256);

void BM_TcGemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(2);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  for (auto _ : state) {
    tc::tc_gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_TcGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_EcTcGemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(3);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  for (auto _ : state) {
    tc::ec_tcgemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f,
                  c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_EcTcGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Tsqr(benchmark::State& state) {
  const index_t m = state.range(0);
  const index_t b = 16;
  Rng rng(4);
  Matrix<float> a(m, b), q(m, b), r(b, b);
  fill_normal(rng, a.view());
  for (auto _ : state) {
    tsqr::tsqr_factor(a.view(), q.view(), r.view());
    benchmark::DoNotOptimize(q.data());
  }
}
BENCHMARK(BM_Tsqr)->Arg(512)->Arg(2048)->Arg(8192);

void BM_PanelFactorWy(benchmark::State& state) {
  const index_t m = state.range(0);
  const index_t b = 16;
  Rng rng(5);
  Matrix<float> a(m, b);
  fill_normal(rng, a.view());
  Matrix<float> panel(m, b), w(m, b), y(m, b);
  for (auto _ : state) {
    copy_matrix<float>(a.view(), panel.view());
    sbr::panel_factor_wy(sbr::PanelKind::Tsqr, panel.view(), w.view(), y.view());
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_PanelFactorWy)->Arg(512)->Arg(2048);

void BM_SbrWy(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(6);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 64;
  for (auto _ : state) {
    auto res = *sbr::sbr_wy(a.view(), ctx, opt);
    benchmark::DoNotOptimize(res.band.data());
  }
}
BENCHMARK(BM_SbrWy)->Arg(128)->Arg(256);

void BM_SbrZy(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(7);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 16;
  for (auto _ : state) {
    auto res = *sbr::sbr_zy(a.view(), ctx, opt);
    benchmark::DoNotOptimize(res.band.data());
  }
}
BENCHMARK(BM_SbrZy)->Arg(128)->Arg(256);

void BM_BulgeChase(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t bw = 16;
  Rng rng(8);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<float>(a.view(), bw);
  for (auto _ : state) {
    Matrix<float> work = a;
    auto res = bulge::bulge_chase<float>(work.view(), bw, nullptr);
    benchmark::DoNotOptimize(res.d.data());
  }
}
BENCHMARK(BM_BulgeChase)->Arg(256)->Arg(512);

void BM_Stedc(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(9);
  std::vector<double> d0(static_cast<std::size_t>(n)), e0(static_cast<std::size_t>(n - 1));
  for (auto& v : d0) v = rng.normal();
  for (auto& v : e0) v = rng.normal();
  for (auto _ : state) {
    auto d = d0;
    auto e = e0;
    Matrix<double> z(n, n);
    set_identity(z.view());
    auto zv = z.view();
    lapack::stedc<double>(d, e, &zv);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_Stedc)->Arg(128)->Arg(512);

void BM_SytrdBlocked(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(11);
  Matrix<double> a0(n, n);
  fill_normal(rng, a0.view());
  make_symmetric(a0.view());
  for (auto _ : state) {
    Matrix<double> a = a0;
    std::vector<double> d, e, tau;
    lapack::sytrd_blocked(a.view(), d, e, tau, 32);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_SytrdBlocked)->Arg(128)->Arg(384);

void BM_SytrdUnblocked(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(12);
  Matrix<double> a0(n, n);
  fill_normal(rng, a0.view());
  make_symmetric(a0.view());
  for (auto _ : state) {
    Matrix<double> a = a0;
    std::vector<double> d, e, tau;
    lapack::sytrd(a.view(), d, e, tau);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_SytrdUnblocked)->Arg(128)->Arg(384);

void BM_JacobiEvd(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(13);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  for (auto _ : state) {
    auto res = lapack::jacobi_evd<double>(a.view());
    benchmark::DoNotOptimize(res.eigenvalues.data());
  }
}
BENCHMARK(BM_JacobiEvd)->Arg(64)->Arg(128);

void BM_BulgeChaseCompact(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t bw = 16;
  Rng rng(14);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<float>(a.view(), bw);
  auto band0 = sbr::BandMatrix<float>::from_full(a.view(), bw);
  for (auto _ : state) {
    auto band = band0;
    std::vector<float> d, e;
    sbr::bulge_chase_band(band, d, e);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_BulgeChaseCompact)->Arg(256)->Arg(512);

void BM_Steqr(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(10);
  std::vector<double> d0(static_cast<std::size_t>(n)), e0(static_cast<std::size_t>(n - 1));
  for (auto& v : d0) v = rng.normal();
  for (auto& v : e0) v = rng.normal();
  for (auto _ : state) {
    auto d = d0;
    auto e = e0;
    lapack::steqr<double>(d, e, nullptr);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_Steqr)->Arg(128)->Arg(512);

// ---------------------------------------------------------------------------
// Packed GEMM sweep: GFLOP/s per trans-combo and shape, serial vs pooled.
// The shape set follows the paper's Table 1 skinniness buckets — square
// trailing updates plus the skinny inner-dimension shapes SBR actually
// issues (the TN bucket is the W^T·M trailing product, historically the
// naive-loop case). The whole binary's results land in BENCH_gemm.json (see
// main below), the perf-trajectory baseline for future PRs.
// ---------------------------------------------------------------------------

void gemm_sweep(benchmark::State& state, blas::Trans ta, blas::Trans tb, index_t m,
                index_t n, index_t k, bool pooled, bool force_scalar) {
  Rng rng(11);
  Matrix<float> a(ta == blas::Trans::No ? m : k, ta == blas::Trans::No ? k : m);
  Matrix<float> b(tb == blas::Trans::No ? k : n, tb == blas::Trans::No ? n : k);
  Matrix<float> c(m, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  for (auto _ : state) {
    std::optional<blas::simd::ScalarKernelScope> scalar;
    if (force_scalar) scalar.emplace();
    if (pooled) {
      blas::gemm(ta, tb, 1.0f, a.view(), b.view(), 0.0f, c.view());
    } else {
      blas::SerialGemmScope serial;
      blas::gemm(ta, tb, 1.0f, a.view(), b.view(), 0.0f, c.view());
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(2.0 * double(m) * double(n) * double(k) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
  state.SetLabel(force_scalar ? "scalar" : blas::simd::active_level_name());
}

void register_gemm_sweep() {
  struct Combo {
    const char* name;
    blas::Trans ta, tb;
  };
  const Combo combos[] = {{"NN", blas::Trans::No, blas::Trans::No},
                          {"NT", blas::Trans::No, blas::Trans::Yes},
                          {"TN", blas::Trans::Yes, blas::Trans::No},
                          {"TT", blas::Trans::Yes, blas::Trans::Yes}};
  struct Shape {
    const char* bucket;
    index_t m, n, k;
  };
  const Shape shapes[] = {
      {"square256", 256, 256, 256},     // small trailing block
      {"square1024", 1024, 1024, 1024}, // TN-vs-NN acceptance shape (n >= 1024)
      {"skinnyK64", 1024, 1024, 64},    // rank-nb trailing update (inner dim = nb)
      {"skinnyM64", 64, 1024, 1024},    // W^T·M panel product (few output rows)
  };
  // Third dimension: the dispatched kernel family vs forced-scalar, so every
  // sweep run carries its own same-machine SIMD-speedup baseline. The
  // dispatched leg is named after what actually resolved (avx2, or scalar
  // when the host/env disables it — in which case the two legs coincide).
  for (const Combo& tc : combos)
    for (const Shape& s : shapes)
      for (bool pooled : {false, true})
        for (bool force_scalar : {false, true}) {
          const std::string name = std::string("BM_GemmSweep/") + tc.name + "/" +
                                   s.bucket + (pooled ? "/pooled" : "/serial") +
                                   (force_scalar ? "/scalar"
                                                 : std::string("/") +
                                                       blas::simd::active_level_name());
          benchmark::RegisterBenchmark(name.c_str(), gemm_sweep, tc.ta, tc.tb, s.m, s.n,
                                       s.k, pooled, force_scalar);
        }
}

}  // namespace
}  // namespace tcevd

// Custom main (replaces benchmark_main): identical console behavior, plus
// every run mirrors its full results into BENCH_gemm.json so the GEMM sweep
// doubles as a machine-readable perf-trajectory baseline.
int main(int argc, char** argv) {
  tcevd::register_gemm_sweep();
  // Record which kernel family resolved at startup in the JSON context block,
  // so BENCH_gemm.json is self-describing about the SIMD level it measured.
  benchmark::AddCustomContext("simd_kernel", tcevd::blas::simd::active_level_name());
  benchmark::AddCustomContext("simd_reason", tcevd::blas::simd::active_level_reason());
  // Default the file output to BENCH_gemm.json (redirected by
  // TCEVD_BENCH_OUT) unless the caller picked their own --benchmark_out
  // destination/format on the command line.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=" + tcevd::bench::out_path("BENCH_gemm.json");
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
