// Streaming-service throughput benchmark: ~10^5 mixed requests (mixed sizes,
// full/selected spectra, with and without vectors) pushed through a
// fixed-worker EvdService with windowed admission, measuring end-to-end
// request throughput plus the service's own stage telemetry — queue wait and
// per-stage step latencies (p50/p95/p99 from the log2 histograms).
//
// Rows are [measured] on this machine's CPU build; the reproduction claim is
// that stage pipelining keeps every worker busy across a heterogeneous
// stream, not any absolute req/s. Results mirror into BENCH_service.json
// (redirected by TCEVD_BENCH_OUT) for the perf-trajectory tooling.
//
// TCEVD_BENCH_SERVICE_REQUESTS overrides the request count (default 100000);
// CI's sanitizer soak leg runs a few thousand to shake out races, the
// perf-trajectory leg runs the full stream.
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/rng.hpp"
#include "src/common/timer.hpp"
#include "src/evd/service.hpp"
#include "src/tensorcore/engine.hpp"

namespace {

using namespace tcevd;

struct Row {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<Row> g_rows;

void emit(const std::string& name, double value, const std::string& unit) {
  std::printf("  %-36s %14.3f %s\n", name.c_str(), value, unit.c_str());
  g_rows.push_back({name, value, unit});
}

Matrix<float> random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  return a;
}

long request_count() {
  if (const char* env = std::getenv("TCEVD_BENCH_SERVICE_REQUESTS")) {
    long v = std::atol(env);
    if (v > 0) return v;
  }
  return 100000;
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.9f, \"unit\": \"%s\"}%s\n",
                 r.name.c_str(), r.value, r.unit.c_str(),
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", g_rows.size(), path);
}

}  // namespace

int main() {
  const long count = request_count();
  const int workers = 4;
  const long window = 512;  // outstanding requests before draining the oldest

  bench::header("streaming EvdService: mixed-request throughput",
                "DESIGN.md §15 (stage-pipelined streaming driver)");
  std::printf("  %ld mixed requests, %d workers, window %ld\n\n", count, workers,
              window);

  // One matrix per flavor, reused across the stream (submit borrows the view
  // read-only, so concurrent requests may share a matrix). Flavors exercise
  // every pipeline shape: one-stage vs two-stage, vectors on/off, QR vs D&C,
  // a selected window, and a trivial n=1 fast path.
  struct Flavor {
    Matrix<float> a;
    evd::RequestOptions opt;
  };
  std::vector<Flavor> flavors;
  {
    Flavor f;
    f.a = random_symmetric(32, 1001);
    flavors.push_back(std::move(f));  // defaults: two-stage, values only

    f.a = random_symmetric(48, 1002);
    f.opt.evd.vectors = true;
    flavors.push_back(std::move(f));

    f.opt = {};
    f.a = random_symmetric(64, 1003);
    f.opt.evd.solver = evd::TriSolver::Ql;
    flavors.push_back(std::move(f));

    f.opt = {};
    f.a = random_symmetric(64, 1004);
    f.opt.evd.vectors = true;
    f.opt.evd.bandwidth = 8;
    flavors.push_back(std::move(f));

    f.opt = {};
    f.a = random_symmetric(48, 1005);
    f.opt.selected = true;
    f.opt.il = 4;
    f.opt.iu = 11;
    f.opt.evd.vectors = true;
    flavors.push_back(std::move(f));

    f.opt = {};
    f.a = random_symmetric(1, 1006);  // trivial fast path stresses scheduling
    flavors.push_back(std::move(f));
  }

  tc::Fp32Engine engine;
  evd::ServiceOptions sopt;
  sopt.num_threads = workers;
  sopt.max_in_flight = static_cast<int>(window);
  sopt.overflow = evd::OverflowPolicy::Block;

  long failed = 0;
  Timer total;
  {
    evd::EvdService service(engine, sopt);
    std::deque<evd::RequestId> pending;
    for (long i = 0; i < count; ++i) {
      const Flavor& f = flavors[static_cast<std::size_t>(i) % flavors.size()];
      auto id = service.submit(f.a.view(), f.opt);
      if (!id.ok()) {
        ++failed;
        continue;
      }
      pending.push_back(id.value());
      if (static_cast<long>(pending.size()) >= window) {
        if (!service.wait(pending.front()).status.ok()) ++failed;
        pending.pop_front();
      }
    }
    while (!pending.empty()) {
      if (!service.wait(pending.front()).status.ok()) ++failed;
      pending.pop_front();
    }
    const double seconds = total.seconds();
    const auto stats = service.stats();
    Telemetry telemetry = service.telemetry_snapshot();

    std::printf("  %-36s %14s %s\n", "metric", "value", "unit");
    emit("stream/requests", static_cast<double>(stats.completed), "req");
    emit("stream/failed", static_cast<double>(failed), "req");
    emit("stream/wall", seconds, "s");
    emit("stream/throughput", stats.completed / seconds, "req/s");
    emit("stream/pooled_contexts", static_cast<double>(stats.pooled_contexts),
         "ctx");

    std::printf("\n");
    for (const char* key :
         {"service.queue", "service.stage.reduction", "service.stage.bulge",
          "service.stage.solver", "service.stage.finish",
          "service.stage.partial"}) {
      bool seen = false;
      for (const Telemetry::LatencyStat& l : telemetry.latencies())
        if (l.name == key && l.count > 0) seen = true;
      if (!seen) continue;
      const std::string base(key);
      emit(base + "/p50", 1e3 * telemetry.latency_quantile(key, 0.50), "ms");
      emit(base + "/p95", 1e3 * telemetry.latency_quantile(key, 0.95), "ms");
      emit(base + "/p99", 1e3 * telemetry.latency_quantile(key, 0.99), "ms");
      emit(base + "/total", telemetry.stage_seconds(key), "s");
    }
  }  // service drains + joins here

  write_json(bench::out_path("BENCH_service.json").c_str());
  return failed == 0 ? 0 : 1;
}
