// Paper Table 1: TC-GEMM vs SGEMM throughput for the two SBR GEMM shapes
// (square x skinny and outer product) as the small dimension k sweeps
// 32..4096 with m = 32768.
//
// The paper-scale rows come from the A100 model, which is *calibrated on*
// Table 1 — printing them back verifies the calibration and the shape
// classifier. The measured rows run the same shapes on this machine's
// emulated Tensor Core at a reduced m to show relative behaviour of the
// real (software) kernels.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/blas/blas.hpp"
#include "src/common/rng.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/tensorcore/tc_gemm.hpp"

using namespace tcevd;

namespace {

double measured_tflops_tc(index_t m, index_t n, index_t k, bool tensor_core) {
  Rng rng(1);
  Matrix<float> a(m, k), b(k, n), c(m, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  const double t = bench::time_s([&] {
    if (tensor_core)
      tc::tc_gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
    else
      blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  });
  return 2.0 * double(m) * double(n) * double(k) / t / 1e12;
}

}  // namespace

int main() {
  bench::header("Table 1 — GEMM throughput vs inner/outer small dimension k",
                "paper Table 1 (A100, m = 32768, TFLOPS)");

  bench::section("[modeled] paper scale m = 32768 (A100 model; calibration identity)");
  std::printf("%6s | %13s %9s | %13s %9s\n", "k", "TC sq*skinny", "SGEMM", "TC outer",
              "SGEMM");
  const index_t m = 32768;
  for (index_t k : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    std::printf("%6lld | %13.2f %9.2f | %13.2f %9.2f\n", static_cast<long long>(k),
                perf::gemm_tflops(perf::Device::TensorCore, m, k, m),
                perf::gemm_tflops(perf::Device::Sgemm, m, k, m),
                perf::gemm_tflops(perf::Device::TensorCore, m, m, k),
                perf::gemm_tflops(perf::Device::Sgemm, m, m, k));
  }

  bench::section("[measured] this machine, emulated TC vs fp32 (m = 384, GFLOPS)");
  std::printf("%6s | %13s %9s | %13s %9s\n", "k", "TC sq*skinny", "SGEMM", "TC outer",
              "SGEMM");
  const index_t mm = 384;
  for (index_t k : {8, 16, 32, 64, 128}) {
    std::printf("%6lld | %13.2f %9.2f | %13.2f %9.2f\n", static_cast<long long>(k),
                1e3 * measured_tflops_tc(mm, k, mm, true),
                1e3 * measured_tflops_tc(mm, k, mm, false),
                1e3 * measured_tflops_tc(mm, mm, k, true),
                1e3 * measured_tflops_tc(mm, mm, k, false));
  }
  std::printf("\nnote: the software Tensor Core pays fp16 rounding overhead, so its\n"
              "measured CPU rate is *below* fp32 — the A100 relation is inverted on\n"
              "purpose here; paper-scale behaviour is carried by the model rows.\n");
  return 0;
}
