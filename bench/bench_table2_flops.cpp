// Paper Table 2: the real number of arithmetic operations of ZY-based SBR
// (bandwidth 128) vs WY-based SBR with block sizes 128..4096, n = 32768.
//
// Counted exactly from the unit-tested GEMM shape traces plus the analytic
// panel-factorization cost. Paper values (x 1e14): ZY 0.70; WY 0.93, 1.05,
// 1.12, 1.17, 1.22, 1.31 for nb = 128..4096.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/perfmodel/a100_model.hpp"
#include "src/perfmodel/shape_trace.hpp"

using namespace tcevd;

namespace {

double panel_total_flops(index_t n, index_t b) {
  double f = 0.0;
  for (const auto& p : perf::trace_panels(n, b)) f += perf::panel_flops(p.m, p.n);
  return f;
}

}  // namespace

int main() {
  bench::header("Table 2 — arithmetic operations of ZY vs WY SBR",
                "paper Table 2 (n = 32768, bandwidth 128, FLOPs x 1e14)");

  const index_t n = 32768;
  const index_t b = 128;
  const double panels = panel_total_flops(n, b);

  const double paper[] = {0.70, 0.93, 1.05, 1.12, 1.17, 1.22, 1.31};

  std::printf("%-18s %12s %12s %8s\n", "algorithm", "ours(1e14)", "paper(1e14)", "ratio");
  {
    const double zy = perf::total_flops(perf::trace_sbr_zy(n, b)) + panels;
    std::printf("%-18s %12.3f %12.2f %8.2f\n", "ZY  b=128", zy / 1e14, paper[0],
                zy / 1e14 / paper[0]);
  }
  int idx = 1;
  for (index_t nb : {128, 256, 512, 1024, 2048, 4096}) {
    const double wy = perf::total_flops(perf::trace_sbr_wy(n, b, nb, false)) + panels;
    const double wy_cached = perf::total_flops(perf::trace_sbr_wy(n, b, nb, true)) + panels;
    std::printf("WY  nb=%-11lld %12.3f %12.2f %8.2f   (cached OA*W: %.3f)\n",
                static_cast<long long>(nb), wy / 1e14, paper[idx], wy / 1e14 / paper[idx],
                wy_cached / 1e14);
    ++idx;
  }
  std::printf(
      "\n(shape traces are unit-tested to match the implementations call for\n"
      " call; panel cost modeled as 4 m b^2 flops per panel)\n"
      "reading: the literal Algorithm-1 trace matches the paper exactly at\n"
      "nb <= 256 and overshoots beyond; the cached-OA*W variant undershoots.\n"
      "The paper's measured counts sit between the two, indicating its\n"
      "implementation partially reuses the OA*W product across inner\n"
      "iterations (not specified in the paper text); see EXPERIMENTS.md.\n");
  return 0;
}
