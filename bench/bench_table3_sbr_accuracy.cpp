// Paper Table 3: backward error E_b = ||A - Q B Q^T||_F / (N ||A||_F) and
// orthogonality E_o = ||I - Q^T Q||_F / N of the Tensor-Core SBR across the
// MAGMA matrix classes. These are *real numerics* — the software Tensor Core
// applies bit-exact fp16 operand rounding with fp32 accumulation, which is
// the entire error source the paper measures.
//
// Paper values: E_b ~ 4.7e-4..9.5e-4, E_o ~ 3.7e-4..7.4e-4 at n = 32768
// (bounded by the TC machine eps ~ 1e-3 before the 1/N normalization pulls
// them down). At our n the normalization differs, so compare against the
// eps16 bound, not the absolute paper numbers.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/matgen/matgen.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

namespace {

// E_b with the paper's 1/N normalization, computed in double.
double backward_error_normalized(ConstMatrixView<float> a, ConstMatrixView<float> q,
                                 ConstMatrixView<float> b) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n), qd(n, n), bd(n, n);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(q, qd.view());
  convert_matrix<float, double>(b, bd.view());
  Matrix<double> t(n, n), qbqt(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, qd.view(), bd.view(), 0.0, t.view());
  blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0, t.view(), qd.view(), 0.0, qbqt.view());
  return frobenius_diff<double>(qbqt.view(), ad.view()) /
         (static_cast<double>(n) * frobenius_norm<double>(ad.view()));
}

}  // namespace

int main() {
  const index_t n = 256, b = 16, nb = 64;
  bench::header("Table 3 — Tensor-Core SBR backward error and orthogonality",
                "paper Table 3 (matrix classes from magma_generate)");
  std::printf("[measured] n = %lld, b = %lld, nb = %lld, engine tc-fp16\n",
              static_cast<long long>(n), static_cast<long long>(b),
              static_cast<long long>(nb));
  std::printf("%-20s %14s %14s\n", "Matrix type", "E_b", "E_o");

  Rng rng(2023);
  for (const auto& row : matgen::paper_accuracy_rows()) {
    auto a = matgen::generate_f(row.type, n, row.cond, rng);
    tc::TcEngine eng(tc::TcPrecision::Fp16);
    Context ctx(eng);
    sbr::SbrOptions opt;
    opt.bandwidth = b;
    opt.big_block = nb;
    opt.accumulate_q = true;
    auto res = *sbr::sbr_wy(a.view(), ctx, opt);
    const double eb = backward_error_normalized(a.view(), res.q.view(), res.band.view());
    const double eo = orthogonality_error<float>(res.q.view());
    std::printf("%-20s %14.2e %14.2e\n", matgen::matrix_type_name(row.type, row.cond).c_str(),
                eb, eo);
  }
  std::printf("\npaper (n = 32768): E_b ~ 4.7e-4..9.5e-4, E_o ~ 3.7e-4..7.4e-4 —\n"
              "both bounded by the Tensor Core machine eps (~1e-3); ours must be\n"
              "bounded the same way after the 1/N normalization.\n");
  return 0;
}
