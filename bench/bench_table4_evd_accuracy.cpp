// Paper Table 4: eigenvalue accuracy E_s = ||d_ref - d||_2 / (N ||d_ref||_2)
// of the Tensor-Core two-stage EVD vs the plain fp32 pipeline (the paper's
// MAGMA ssyevdx column), across the matrix classes, with the fp64 one-stage
// pipeline as ground truth.
//
// Real numerics. Paper magnitudes: TC column ~3.6e-5..1.4e-4, MAGMA column
// ~1.6e-7..1.7e-5 (n = 32768; the 1/N normalization differs at our n, so
// what must reproduce is the gap of ~1-2 orders between the columns and the
// TC column respecting the TC machine-eps bound).
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

int main() {
  const index_t n = 256;
  bench::header("Table 4 — eigenvalue accuracy: Tensor Core vs fp32 pipeline",
                "paper Table 4 (E_s per matrix class)");
  std::printf("[measured] n = %lld, b = 16, nb = 64, D&C solver\n",
              static_cast<long long>(n));
  std::printf("%-20s %14s %14s %8s\n", "Matrix type", "TensorCore", "fp32(MAGMA)", "ratio");

  Rng rng(4096);
  for (const auto& row : matgen::paper_accuracy_rows()) {
    auto ad = matgen::generate(row.type, n, row.cond, rng);
    Matrix<float> a(n, n);
    convert_matrix<double, float>(ad.view(), a.view());
    auto ref = *evd::reference_eigenvalues(ad.view());

    evd::EvdOptions opt;
    opt.bandwidth = 16;
    opt.big_block = 64;

    tc::TcEngine tc_eng(tc::TcPrecision::Fp16);
    Context tc_ctx(tc_eng);
    tc::Fp32Engine fp_eng;
    Context fp_ctx(fp_eng);
    auto r_tc = *evd::solve(a.view(), tc_ctx, opt);
    auto r_fp = *evd::solve(a.view(), fp_ctx, opt);

    std::vector<double> g_tc(r_tc.eigenvalues.begin(), r_tc.eigenvalues.end());
    std::vector<double> g_fp(r_fp.eigenvalues.begin(), r_fp.eigenvalues.end());
    const double e_tc = eigenvalue_error(ref.data(), g_tc.data(), n);
    const double e_fp = eigenvalue_error(ref.data(), g_fp.data(), n);
    std::printf("%-20s %14.2e %14.2e %8.1f\n",
                matgen::matrix_type_name(row.type, row.cond).c_str(), e_tc, e_fp,
                e_tc / e_fp);
  }
  std::printf("\npaper (n = 32768): TC ~3.6e-5..1.4e-4 vs MAGMA ~1.6e-7..1.7e-5; the\n"
              "reproduced invariant is the 1-2 order gap and the TC-eps bound.\n");
  return 0;
}
