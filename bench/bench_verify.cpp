// Verification-overhead benchmark: what ABFT checksums and the stochastic
// residual gate cost relative to an unverified solve.
//
// Rows are [measured] on this machine's CPU build; the interesting numbers
// are the overhead percentages, not the absolute seconds. Every row is also
// mirrored into BENCH_verify.json so the perf-trajectory tooling can track
// the verification overhead the same way BENCH_gemm.json tracks the GEMM
// kernels.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/common/rng.hpp"
#include "src/common/verify.hpp"
#include "src/evd/evd.hpp"
#include "src/tensorcore/engine.hpp"

namespace {

using namespace tcevd;

struct Row {
  std::string name;
  double seconds = 0.0;
  double overhead_pct = 0.0;  // vs the matching baseline row
};

std::vector<Row> g_rows;

void emit(const std::string& name, double seconds, double baseline_s) {
  Row row;
  row.name = name;
  row.seconds = seconds;
  row.overhead_pct = baseline_s > 0.0 ? 100.0 * (seconds - baseline_s) / baseline_s : 0.0;
  std::printf("  %-44s %9.2f ms   %+7.2f %%\n", name.c_str(), seconds * 1e3,
              row.overhead_pct);
  g_rows.push_back(row);
}

Matrix<float> random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> a(n, n);
  fill_normal(rng, a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) a(i, j) = a(j, i);
  return a;
}

double solve_time(ConstMatrixView<float> a, tc::GemmEngine& engine,
                  const evd::EvdOptions& opt) {
  Context ctx(engine);
  // Warm the arena so every timed solve is steady-state (allocation-free).
  (void)evd::solve(a, ctx, opt);
  return bench::time_s([&] {
    auto r = evd::solve(a, ctx, opt);
    if (!r.ok()) std::fprintf(stderr, "solve failed: %s\n", r.status().to_string().c_str());
  });
}

void bench_solve_overhead(index_t n) {
  bench::section("verified evd::solve overhead, n = " + std::to_string(n) +
                 " (tc-fp16, vectors)");
  auto a = random_symmetric(n, 42 + n);
  const auto av = ConstMatrixView<float>(a.view());
  tc::TcEngine engine;

  evd::EvdOptions opt;
  opt.vectors = true;
  const double base = solve_time(av, engine, opt);
  emit("solve/n=" + std::to_string(n) + "/baseline", base, base);

  evd::EvdOptions est = opt;
  est.verify = verify::Policy::Estimate;
  emit("solve/n=" + std::to_string(n) + "/estimate", solve_time(av, engine, est), base);

  evd::EvdOptions abft = opt;
  abft.abft = true;
  emit("solve/n=" + std::to_string(n) + "/abft", solve_time(av, engine, abft), base);

  evd::EvdOptions both = opt;
  both.verify = verify::Policy::EstimateEscalate;
  both.abft = true;
  emit("solve/n=" + std::to_string(n) + "/abft+estimate", solve_time(av, engine, both),
       base);
}

void bench_gemm_abft(index_t n) {
  bench::section("raw packed-GEMM ABFT overhead, n = " + std::to_string(n));
  Rng rng(7);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  fill_normal(rng, a.view());
  fill_normal(rng, b.view());
  set_zero(c.view());
  const auto av = ConstMatrixView<float>(a.view());
  const auto bv = ConstMatrixView<float>(b.view());

  const double base = bench::time_s([&] {
    blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, av, bv, 0.0f, c.view());
  });
  emit("gemm/n=" + std::to_string(n) + "/baseline", base, base);

  blas::abft::AbftScope abft;
  const double checked = bench::time_s([&] {
    blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, av, bv, 0.0f, c.view());
  });
  emit("gemm/n=" + std::to_string(n) + "/abft", checked, base);
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const Row& r = g_rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.9f, \"overhead_pct\": %.3f}%s\n",
                 r.name.c_str(), r.seconds, r.overhead_pct,
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu rows to %s\n", g_rows.size(), path);
}

}  // namespace

int main() {
  bench::header("verification overhead: ABFT checksums + residual gate",
                "DESIGN.md §12 (verified solves)");
  std::printf("  %-44s %12s   %9s\n", "case", "median", "overhead");

  bench_solve_overhead(128);
  bench_solve_overhead(256);
  bench_gemm_abft(512);
  bench_gemm_abft(1024);

  write_json(bench::out_path("BENCH_verify.json").c_str());
  return 0;
}
