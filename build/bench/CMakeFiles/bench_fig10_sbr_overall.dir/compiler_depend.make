# Empty compiler generated dependencies file for bench_fig10_sbr_overall.
# This may be replaced when dependencies are built.
