file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_evd.dir/bench_fig11_evd.cpp.o"
  "CMakeFiles/bench_fig11_evd.dir/bench_fig11_evd.cpp.o.d"
  "bench_fig11_evd"
  "bench_fig11_evd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_evd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
