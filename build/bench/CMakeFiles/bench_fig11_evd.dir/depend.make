# Empty dependencies file for bench_fig11_evd.
# This may be replaced when dependencies are built.
