file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_blocksize.dir/bench_fig5_blocksize.cpp.o"
  "CMakeFiles/bench_fig5_blocksize.dir/bench_fig5_blocksize.cpp.o.d"
  "bench_fig5_blocksize"
  "bench_fig5_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
