file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wy_vs_zy_tc.dir/bench_fig6_wy_vs_zy_tc.cpp.o"
  "CMakeFiles/bench_fig6_wy_vs_zy_tc.dir/bench_fig6_wy_vs_zy_tc.cpp.o.d"
  "bench_fig6_wy_vs_zy_tc"
  "bench_fig6_wy_vs_zy_tc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wy_vs_zy_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
