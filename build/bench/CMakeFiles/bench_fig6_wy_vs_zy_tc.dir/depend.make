# Empty dependencies file for bench_fig6_wy_vs_zy_tc.
# This may be replaced when dependencies are built.
