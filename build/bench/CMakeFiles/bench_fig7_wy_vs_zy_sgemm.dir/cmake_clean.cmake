file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_wy_vs_zy_sgemm.dir/bench_fig7_wy_vs_zy_sgemm.cpp.o"
  "CMakeFiles/bench_fig7_wy_vs_zy_sgemm.dir/bench_fig7_wy_vs_zy_sgemm.cpp.o.d"
  "bench_fig7_wy_vs_zy_sgemm"
  "bench_fig7_wy_vs_zy_sgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_wy_vs_zy_sgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
