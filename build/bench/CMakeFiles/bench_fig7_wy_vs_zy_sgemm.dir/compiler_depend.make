# Empty compiler generated dependencies file for bench_fig7_wy_vs_zy_sgemm.
# This may be replaced when dependencies are built.
