file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_panel_qr.dir/bench_fig8_panel_qr.cpp.o"
  "CMakeFiles/bench_fig8_panel_qr.dir/bench_fig8_panel_qr.cpp.o.d"
  "bench_fig8_panel_qr"
  "bench_fig8_panel_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_panel_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
