# Empty compiler generated dependencies file for bench_fig8_panel_qr.
# This may be replaced when dependencies are built.
