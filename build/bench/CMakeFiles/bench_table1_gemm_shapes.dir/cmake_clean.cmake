file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gemm_shapes.dir/bench_table1_gemm_shapes.cpp.o"
  "CMakeFiles/bench_table1_gemm_shapes.dir/bench_table1_gemm_shapes.cpp.o.d"
  "bench_table1_gemm_shapes"
  "bench_table1_gemm_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gemm_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
