file(REMOVE_RECURSE
  "CMakeFiles/lowrank_pca.dir/lowrank_pca.cpp.o"
  "CMakeFiles/lowrank_pca.dir/lowrank_pca.cpp.o.d"
  "lowrank_pca"
  "lowrank_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowrank_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
