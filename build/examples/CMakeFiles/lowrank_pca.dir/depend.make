# Empty dependencies file for lowrank_pca.
# This may be replaced when dependencies are built.
