file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_tour.dir/mixed_precision_tour.cpp.o"
  "CMakeFiles/mixed_precision_tour.dir/mixed_precision_tour.cpp.o.d"
  "mixed_precision_tour"
  "mixed_precision_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
