# Empty compiler generated dependencies file for mixed_precision_tour.
# This may be replaced when dependencies are built.
