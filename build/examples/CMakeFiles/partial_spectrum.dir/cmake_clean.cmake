file(REMOVE_RECURSE
  "CMakeFiles/partial_spectrum.dir/partial_spectrum.cpp.o"
  "CMakeFiles/partial_spectrum.dir/partial_spectrum.cpp.o.d"
  "partial_spectrum"
  "partial_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
