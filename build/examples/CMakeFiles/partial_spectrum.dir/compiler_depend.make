# Empty compiler generated dependencies file for partial_spectrum.
# This may be replaced when dependencies are built.
