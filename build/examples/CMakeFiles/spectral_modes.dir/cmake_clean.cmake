file(REMOVE_RECURSE
  "CMakeFiles/spectral_modes.dir/spectral_modes.cpp.o"
  "CMakeFiles/spectral_modes.dir/spectral_modes.cpp.o.d"
  "spectral_modes"
  "spectral_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
