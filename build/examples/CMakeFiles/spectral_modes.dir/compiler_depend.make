# Empty compiler generated dependencies file for spectral_modes.
# This may be replaced when dependencies are built.
