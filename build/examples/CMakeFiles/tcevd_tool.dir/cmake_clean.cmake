file(REMOVE_RECURSE
  "CMakeFiles/tcevd_tool.dir/tcevd_tool.cpp.o"
  "CMakeFiles/tcevd_tool.dir/tcevd_tool.cpp.o.d"
  "tcevd_tool"
  "tcevd_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcevd_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
