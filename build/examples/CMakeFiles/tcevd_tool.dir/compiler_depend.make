# Empty compiler generated dependencies file for tcevd_tool.
# This may be replaced when dependencies are built.
