# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lowrank_pca "/root/repo/build/examples/lowrank_pca")
set_tests_properties(example_lowrank_pca PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectral_modes "/root/repo/build/examples/spectral_modes")
set_tests_properties(example_spectral_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixed_precision_tour "/root/repo/build/examples/mixed_precision_tour")
set_tests_properties(example_mixed_precision_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partial_spectrum "/root/repo/build/examples/partial_spectrum")
set_tests_properties(example_partial_spectrum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcevd_tool "/root/repo/build/examples/tcevd_tool" "--n" "96" "--type" "arith" "--cond" "1e3" "--engine" "ectc" "--vectors" "--check")
set_tests_properties(example_tcevd_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
