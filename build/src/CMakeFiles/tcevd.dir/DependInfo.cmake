
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/level1.cpp" "src/CMakeFiles/tcevd.dir/blas/level1.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/blas/level1.cpp.o.d"
  "/root/repo/src/blas/level2.cpp" "src/CMakeFiles/tcevd.dir/blas/level2.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/blas/level2.cpp.o.d"
  "/root/repo/src/blas/level3.cpp" "src/CMakeFiles/tcevd.dir/blas/level3.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/blas/level3.cpp.o.d"
  "/root/repo/src/bulge/bulge_chasing.cpp" "src/CMakeFiles/tcevd.dir/bulge/bulge_chasing.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/bulge/bulge_chasing.cpp.o.d"
  "/root/repo/src/common/flop_counter.cpp" "src/CMakeFiles/tcevd.dir/common/flop_counter.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/common/flop_counter.cpp.o.d"
  "/root/repo/src/common/half.cpp" "src/CMakeFiles/tcevd.dir/common/half.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/common/half.cpp.o.d"
  "/root/repo/src/common/matrix.cpp" "src/CMakeFiles/tcevd.dir/common/matrix.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/common/matrix.cpp.o.d"
  "/root/repo/src/common/norms.cpp" "src/CMakeFiles/tcevd.dir/common/norms.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/common/norms.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/tcevd.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/common/rng.cpp.o.d"
  "/root/repo/src/evd/evd.cpp" "src/CMakeFiles/tcevd.dir/evd/evd.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/evd/evd.cpp.o.d"
  "/root/repo/src/evd/partial.cpp" "src/CMakeFiles/tcevd.dir/evd/partial.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/evd/partial.cpp.o.d"
  "/root/repo/src/evd/refine.cpp" "src/CMakeFiles/tcevd.dir/evd/refine.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/evd/refine.cpp.o.d"
  "/root/repo/src/lapack/bidiag.cpp" "src/CMakeFiles/tcevd.dir/lapack/bidiag.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/bidiag.cpp.o.d"
  "/root/repo/src/lapack/getrf.cpp" "src/CMakeFiles/tcevd.dir/lapack/getrf.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/getrf.cpp.o.d"
  "/root/repo/src/lapack/householder.cpp" "src/CMakeFiles/tcevd.dir/lapack/householder.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/householder.cpp.o.d"
  "/root/repo/src/lapack/jacobi_evd.cpp" "src/CMakeFiles/tcevd.dir/lapack/jacobi_evd.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/jacobi_evd.cpp.o.d"
  "/root/repo/src/lapack/lu.cpp" "src/CMakeFiles/tcevd.dir/lapack/lu.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/lu.cpp.o.d"
  "/root/repo/src/lapack/qr.cpp" "src/CMakeFiles/tcevd.dir/lapack/qr.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/qr.cpp.o.d"
  "/root/repo/src/lapack/secular.cpp" "src/CMakeFiles/tcevd.dir/lapack/secular.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/secular.cpp.o.d"
  "/root/repo/src/lapack/stebz.cpp" "src/CMakeFiles/tcevd.dir/lapack/stebz.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/stebz.cpp.o.d"
  "/root/repo/src/lapack/stedc.cpp" "src/CMakeFiles/tcevd.dir/lapack/stedc.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/stedc.cpp.o.d"
  "/root/repo/src/lapack/stein.cpp" "src/CMakeFiles/tcevd.dir/lapack/stein.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/stein.cpp.o.d"
  "/root/repo/src/lapack/steqr.cpp" "src/CMakeFiles/tcevd.dir/lapack/steqr.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/steqr.cpp.o.d"
  "/root/repo/src/lapack/sytrd.cpp" "src/CMakeFiles/tcevd.dir/lapack/sytrd.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/lapack/sytrd.cpp.o.d"
  "/root/repo/src/matgen/matgen.cpp" "src/CMakeFiles/tcevd.dir/matgen/matgen.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/matgen/matgen.cpp.o.d"
  "/root/repo/src/perfmodel/a100_model.cpp" "src/CMakeFiles/tcevd.dir/perfmodel/a100_model.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/perfmodel/a100_model.cpp.o.d"
  "/root/repo/src/perfmodel/shape_trace.cpp" "src/CMakeFiles/tcevd.dir/perfmodel/shape_trace.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/perfmodel/shape_trace.cpp.o.d"
  "/root/repo/src/sbr/band.cpp" "src/CMakeFiles/tcevd.dir/sbr/band.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/band.cpp.o.d"
  "/root/repo/src/sbr/band_storage.cpp" "src/CMakeFiles/tcevd.dir/sbr/band_storage.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/band_storage.cpp.o.d"
  "/root/repo/src/sbr/formw.cpp" "src/CMakeFiles/tcevd.dir/sbr/formw.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/formw.cpp.o.d"
  "/root/repo/src/sbr/panel.cpp" "src/CMakeFiles/tcevd.dir/sbr/panel.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/panel.cpp.o.d"
  "/root/repo/src/sbr/sbr_wy.cpp" "src/CMakeFiles/tcevd.dir/sbr/sbr_wy.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/sbr_wy.cpp.o.d"
  "/root/repo/src/sbr/sbr_zy.cpp" "src/CMakeFiles/tcevd.dir/sbr/sbr_zy.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/sbr/sbr_zy.cpp.o.d"
  "/root/repo/src/svd/svd.cpp" "src/CMakeFiles/tcevd.dir/svd/svd.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/svd/svd.cpp.o.d"
  "/root/repo/src/tensorcore/ec_tcgemm.cpp" "src/CMakeFiles/tcevd.dir/tensorcore/ec_tcgemm.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tensorcore/ec_tcgemm.cpp.o.d"
  "/root/repo/src/tensorcore/engine.cpp" "src/CMakeFiles/tcevd.dir/tensorcore/engine.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tensorcore/engine.cpp.o.d"
  "/root/repo/src/tensorcore/mma_tile.cpp" "src/CMakeFiles/tcevd.dir/tensorcore/mma_tile.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tensorcore/mma_tile.cpp.o.d"
  "/root/repo/src/tensorcore/tc_gemm.cpp" "src/CMakeFiles/tcevd.dir/tensorcore/tc_gemm.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tensorcore/tc_gemm.cpp.o.d"
  "/root/repo/src/tensorcore/tc_syr2k.cpp" "src/CMakeFiles/tcevd.dir/tensorcore/tc_syr2k.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tensorcore/tc_syr2k.cpp.o.d"
  "/root/repo/src/tsqr/reconstruct_wy.cpp" "src/CMakeFiles/tcevd.dir/tsqr/reconstruct_wy.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tsqr/reconstruct_wy.cpp.o.d"
  "/root/repo/src/tsqr/tsqr.cpp" "src/CMakeFiles/tcevd.dir/tsqr/tsqr.cpp.o" "gcc" "src/CMakeFiles/tcevd.dir/tsqr/tsqr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
