file(REMOVE_RECURSE
  "libtcevd.a"
)
