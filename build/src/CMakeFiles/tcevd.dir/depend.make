# Empty dependencies file for tcevd.
# This may be replaced when dependencies are built.
