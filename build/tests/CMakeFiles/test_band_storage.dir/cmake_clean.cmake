file(REMOVE_RECURSE
  "CMakeFiles/test_band_storage.dir/test_band_storage.cpp.o"
  "CMakeFiles/test_band_storage.dir/test_band_storage.cpp.o.d"
  "test_band_storage"
  "test_band_storage.pdb"
  "test_band_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_band_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
