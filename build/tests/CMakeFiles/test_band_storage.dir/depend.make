# Empty dependencies file for test_band_storage.
# This may be replaced when dependencies are built.
