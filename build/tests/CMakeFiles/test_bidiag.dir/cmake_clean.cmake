file(REMOVE_RECURSE
  "CMakeFiles/test_bidiag.dir/test_bidiag.cpp.o"
  "CMakeFiles/test_bidiag.dir/test_bidiag.cpp.o.d"
  "test_bidiag"
  "test_bidiag.pdb"
  "test_bidiag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bidiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
