# Empty compiler generated dependencies file for test_bulge.
# This may be replaced when dependencies are built.
