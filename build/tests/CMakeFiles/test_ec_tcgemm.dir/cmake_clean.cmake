file(REMOVE_RECURSE
  "CMakeFiles/test_ec_tcgemm.dir/test_ec_tcgemm.cpp.o"
  "CMakeFiles/test_ec_tcgemm.dir/test_ec_tcgemm.cpp.o.d"
  "test_ec_tcgemm"
  "test_ec_tcgemm.pdb"
  "test_ec_tcgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ec_tcgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
