# Empty compiler generated dependencies file for test_ec_tcgemm.
# This may be replaced when dependencies are built.
