file(REMOVE_RECURSE
  "CMakeFiles/test_evd.dir/test_evd.cpp.o"
  "CMakeFiles/test_evd.dir/test_evd.cpp.o.d"
  "test_evd"
  "test_evd.pdb"
  "test_evd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
