# Empty dependencies file for test_evd.
# This may be replaced when dependencies are built.
