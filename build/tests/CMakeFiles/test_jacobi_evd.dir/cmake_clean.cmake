file(REMOVE_RECURSE
  "CMakeFiles/test_jacobi_evd.dir/test_jacobi_evd.cpp.o"
  "CMakeFiles/test_jacobi_evd.dir/test_jacobi_evd.cpp.o.d"
  "test_jacobi_evd"
  "test_jacobi_evd.pdb"
  "test_jacobi_evd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jacobi_evd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
