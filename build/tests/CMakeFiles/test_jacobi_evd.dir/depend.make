# Empty dependencies file for test_jacobi_evd.
# This may be replaced when dependencies are built.
