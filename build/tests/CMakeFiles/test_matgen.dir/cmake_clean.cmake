file(REMOVE_RECURSE
  "CMakeFiles/test_matgen.dir/test_matgen.cpp.o"
  "CMakeFiles/test_matgen.dir/test_matgen.cpp.o.d"
  "test_matgen"
  "test_matgen.pdb"
  "test_matgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
