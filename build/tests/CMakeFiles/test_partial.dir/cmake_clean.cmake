file(REMOVE_RECURSE
  "CMakeFiles/test_partial.dir/test_partial.cpp.o"
  "CMakeFiles/test_partial.dir/test_partial.cpp.o.d"
  "test_partial"
  "test_partial.pdb"
  "test_partial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
