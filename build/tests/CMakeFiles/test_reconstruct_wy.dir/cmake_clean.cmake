file(REMOVE_RECURSE
  "CMakeFiles/test_reconstruct_wy.dir/test_reconstruct_wy.cpp.o"
  "CMakeFiles/test_reconstruct_wy.dir/test_reconstruct_wy.cpp.o.d"
  "test_reconstruct_wy"
  "test_reconstruct_wy.pdb"
  "test_reconstruct_wy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reconstruct_wy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
