# Empty compiler generated dependencies file for test_reconstruct_wy.
# This may be replaced when dependencies are built.
