file(REMOVE_RECURSE
  "CMakeFiles/test_sbr.dir/test_sbr.cpp.o"
  "CMakeFiles/test_sbr.dir/test_sbr.cpp.o.d"
  "test_sbr"
  "test_sbr.pdb"
  "test_sbr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
