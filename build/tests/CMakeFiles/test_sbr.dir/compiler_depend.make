# Empty compiler generated dependencies file for test_sbr.
# This may be replaced when dependencies are built.
