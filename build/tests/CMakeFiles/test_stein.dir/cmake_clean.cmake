file(REMOVE_RECURSE
  "CMakeFiles/test_stein.dir/test_stein.cpp.o"
  "CMakeFiles/test_stein.dir/test_stein.cpp.o.d"
  "test_stein"
  "test_stein.pdb"
  "test_stein[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
