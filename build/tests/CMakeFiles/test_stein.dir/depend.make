# Empty dependencies file for test_stein.
# This may be replaced when dependencies are built.
