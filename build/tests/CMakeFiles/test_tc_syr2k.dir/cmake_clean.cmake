file(REMOVE_RECURSE
  "CMakeFiles/test_tc_syr2k.dir/test_tc_syr2k.cpp.o"
  "CMakeFiles/test_tc_syr2k.dir/test_tc_syr2k.cpp.o.d"
  "test_tc_syr2k"
  "test_tc_syr2k.pdb"
  "test_tc_syr2k[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tc_syr2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
