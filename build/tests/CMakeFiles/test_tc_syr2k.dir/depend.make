# Empty dependencies file for test_tc_syr2k.
# This may be replaced when dependencies are built.
