file(REMOVE_RECURSE
  "CMakeFiles/test_tensorcore.dir/test_tensorcore.cpp.o"
  "CMakeFiles/test_tensorcore.dir/test_tensorcore.cpp.o.d"
  "test_tensorcore"
  "test_tensorcore.pdb"
  "test_tensorcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensorcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
