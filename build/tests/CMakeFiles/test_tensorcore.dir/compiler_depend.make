# Empty compiler generated dependencies file for test_tensorcore.
# This may be replaced when dependencies are built.
