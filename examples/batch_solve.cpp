// Batched solve: a service-shaped workload — a batch of same-shape symmetric
// problems solved concurrently by evd::solve_many on one shared Tensor-Core
// engine, with per-problem results and one merged telemetry view.
//
//   build/examples/batch_solve
#include <cstdio>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/batch.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

int main() {
  const index_t n = 128;
  const std::size_t count = 12;

  // 1. A batch of same-shape problems, as a request queue would deliver them.
  Rng rng(7);
  std::vector<Matrix<float>> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(matgen::generate_f(matgen::MatrixType::Arith, n, 1e3, rng));

  // 2. One engine shared by every worker (engines are stateless per call);
  //    each worker gets its own pre-reserved Context inside solve_many.
  tc::EcTcEngine engine(tc::TcPrecision::Fp16);

  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 16;
  bopt.evd.big_block = 64;
  bopt.evd.vectors = true;
  bopt.num_threads = 4;

  evd::BatchResult res = evd::solve_many(batch, engine, bopt);
  std::printf("batch: %zu problems of n=%lld on %d workers, %.1f ms wall (%.1f problems/s)\n",
              count, (long long)n, res.num_threads, res.total_s * 1e3,
              double(count) / res.total_s);

  // 3. Per-problem results are index-aligned with the input batch and fail
  //    independently: check each status, then use the values.
  bool ok = res.all_ok();
  for (std::size_t i = 0; i < res.problems.size(); ++i) {
    const evd::ProblemResult& p = res.problems[i];
    if (!p.status.ok()) {
      std::printf("  problem %zu FAILED: %s\n", i, p.status.to_string().c_str());
      continue;
    }
    const double resid = evd::eigenpair_residual(batch[i].view(), p.eigenvalues,
                                                 p.vectors.view());
    if (i < 3)
      std::printf("  problem %zu: worker %d, %.1f ms, lambda in [%.4f, %.4f], resid %.1e\n",
                  i, p.worker, p.seconds * 1e3, p.eigenvalues.front(), p.eigenvalues.back(),
                  resid);
    ok = ok && resid < 1e-2;
  }

  // 4. The merged telemetry is the sum over workers — the view a service
  //    would export per batch.
  std::printf("merged stage telemetry:\n");
  for (const auto& s : res.telemetry.stages())
    std::printf("  %-16s %8.1f ms across %ld solves\n", s.name.c_str(), s.seconds * 1e3,
                s.calls);
  if (!res.telemetry.recovery().empty())
    std::printf("recovery events: %zu\n", res.telemetry.recovery().size());
  std::printf("ec-tc fp32 fallbacks (shared atomic counter): %ld\n", engine.fp32_fallbacks());
  return ok ? 0 : 1;
}
