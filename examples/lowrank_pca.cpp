// Low-rank approximation / PCA — the class of applications the paper's
// introduction motivates for reduced-precision EVD: data-driven workloads
// where fp16/fp32 accuracy suffices and the Tensor Core speed matters.
//
// We build a covariance matrix from synthetic data with a planted 5-dim
// dominant subspace + noise, run the Tensor-Core EVD, and reconstruct the
// data from the top principal components.
//
//   build/examples/lowrank_pca
#include <cmath>
#include <cstdio>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

int main() {
  const index_t dim = 160;      // feature dimension
  const index_t samples = 640;  // observations
  const index_t rank = 5;       // planted signal rank

  // Synthetic data X = U S V^T + noise: 5 strong directions.
  Rng rng(7);
  Matrix<float> basis(dim, rank);
  fill_normal(rng, basis.view());
  Matrix<float> coeff(rank, samples);
  fill_normal(rng, coeff.view());
  for (index_t r = 0; r < rank; ++r)
    blas::scal<float>(samples, 10.0f / (1 + r), &coeff(r, 0), coeff.ld());

  Matrix<float> x(dim, samples);
  fill_normal(rng, x.view());  // unit noise floor
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, basis.view(), coeff.view(), 1.0f,
             x.view());

  // Covariance C = X X^T / samples (symmetric PSD).
  Matrix<float> cov(dim, dim);
  blas::syrk(blas::Uplo::Lower, blas::Trans::No, 1.0f / samples, x.view(), 0.0f, cov.view());
  symmetrize_from_lower(cov.view());

  // Tensor-Core EVD with eigenvectors.
  tc::TcEngine engine(tc::TcPrecision::Fp16);
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(cov.view(), ctx, opt);
  if (!res.converged) return 1;

  // Eigenvalues ascend; the top `rank` should dominate.
  std::printf("top eigenvalues (descending):\n");
  double signal = 0.0, total = 0.0;
  for (index_t i = 0; i < dim; ++i) {
    const double lam = res.eigenvalues[static_cast<std::size_t>(i)];
    total += lam;
    if (i >= dim - rank) signal += lam;
  }
  for (index_t i = 0; i < 8; ++i)
    std::printf("  lambda[%lld] = %10.3f\n", static_cast<long long>(i),
                res.eigenvalues[static_cast<std::size_t>(dim - 1 - i)]);
  std::printf("variance captured by top %lld components: %.1f%%\n",
              static_cast<long long>(rank), 100.0 * signal / total);

  // Rank-5 reconstruction error of the covariance:
  // C_k = V_k diag(lambda_k) V_k^T using the top-k eigenpairs.
  Matrix<float> vk(dim, rank);
  Matrix<float> vkl(dim, rank);
  for (index_t j = 0; j < rank; ++j) {
    const index_t src = dim - rank + j;
    for (index_t i = 0; i < dim; ++i) {
      vk(i, j) = res.vectors(i, src);
      vkl(i, j) = res.vectors(i, src) * res.eigenvalues[static_cast<std::size_t>(src)];
    }
  }
  Matrix<float> ck(dim, dim);
  blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0f, vkl.view(), vk.view(), 0.0f, ck.view());
  const double rel =
      frobenius_diff<float>(ck.view(), cov.view()) / frobenius_norm<float>(cov.view());
  std::printf("rank-%lld covariance reconstruction error: %.3f\n",
              static_cast<long long>(rank), rel);
  std::printf("(planted rank-%lld signal over unit noise: expect > 90%% variance and\n"
              " a small reconstruction error)\n",
              static_cast<long long>(rank));
  return (signal / total > 0.8) ? 0 : 1;
}
