// Mixed-precision tour: the same band reduction under every numerics the
// library offers — fp32, Tensor-Core fp16, Tensor-Core TF32, and
// error-corrected TC — measuring the paper's E_b / E_o metrics for each.
// This is paper Section 5.3 + Table 3 condensed into one runnable program.
//
//   build/examples/mixed_precision_tour
#include <cstdio>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/matgen/matgen.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/sbr.hpp"

using namespace tcevd;

namespace {

double backward_err(ConstMatrixView<float> a, ConstMatrixView<float> q,
                    ConstMatrixView<float> b) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n), qd(n, n), bd(n, n);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(q, qd.view());
  convert_matrix<float, double>(b, bd.view());
  Matrix<double> t(n, n), qbqt(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, qd.view(), bd.view(), 0.0, t.view());
  blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0, t.view(), qd.view(), 0.0, qbqt.view());
  return frobenius_diff<double>(qbqt.view(), ad.view()) / frobenius_norm<double>(ad.view());
}

}  // namespace

int main() {
  const index_t n = 192;
  Rng rng(123);
  auto a = matgen::generate_f(matgen::MatrixType::Arith, n, 1e3, rng);

  sbr::SbrOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 64;
  opt.accumulate_q = true;

  tc::Fp32Engine fp32;
  tc::TcEngine tc16(tc::TcPrecision::Fp16);
  tc::TcEngine tc32(tc::TcPrecision::Tf32);
  tc::EcTcEngine ec16(tc::TcPrecision::Fp16);
  tc::GemmEngine* engines[] = {&fp32, &tc16, &tc32, &ec16};

  std::printf("WY-based SBR of an SVD_Arith(1e3) matrix, n = %lld, b = 16, nb = 64\n\n",
              static_cast<long long>(n));
  std::printf("%-12s %16s %16s\n", "engine", "E_b = |A-QBQ'|/|A|", "E_o = |I-Q'Q|/N");
  for (auto* eng : engines) {
    Context ctx(*eng);
    auto res = *sbr::sbr_wy(a.view(), ctx, opt);
    std::printf("%-12s %16.2e %16.2e\n", eng->name().c_str(),
                backward_err(a.view(), res.q.view(), res.band.view()),
                orthogonality_error<float>(res.q.view()));
  }
  std::printf(
      "\nreading: tc-fp16 sits at the Tensor Core machine eps (~1e-3-1e-4);\n"
      "tc-tf32 matches it (same 10-bit mantissa) but would not underflow on\n"
      "tiny data; ectc-fp16 recovers fp32-level accuracy at ~3x the TC GEMM\n"
      "work (paper Sec. 5.3) — on real hardware still faster than fp32 SGEMM.\n");
  return 0;
}
