// Selected eigenpairs + mixed-precision refinement: the workflow for
// applications that need a few accurate extremal pairs (spectral embedding,
// low-rank compression, stability analysis) without paying for a full
// high-precision solve.
//
//   1. run the Tensor-Core two-stage pipeline for the 8 largest pairs only
//      (Sturm bisection + inverse iteration),
//   2. polish them with Rayleigh-quotient refinement to ~fp64 residuals,
//   3. compare against the full solve.
//
//   build/examples/partial_spectrum
#include <cstdio>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/evd/refine.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

int main() {
  const index_t n = 256, k = 8;
  Rng rng(99);
  auto a = matgen::generate_f(matgen::MatrixType::Geo, n, 1e4, rng);

  tc::TcEngine engine(tc::TcPrecision::Fp16);
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 64;

  // Selected solve: indices n-k .. n-1 are the k largest eigenvalues.
  auto part = *evd::solve_selected(a.view(), ctx, opt, n - k, n - 1, /*vectors=*/true);
  if (!part.converged) return 1;
  const double res_coarse =
      evd::eigenpair_residual(a.view(), part.eigenvalues, part.vectors.view());

  // Refine.
  auto refined = evd::refine_eigenpairs(ctx, a.view(), part.eigenvalues, part.vectors.view());

  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  const double anorm = frobenius_norm<double>(ad.view());

  std::printf("top %lld eigenvalues of an SVD_Geo(1e4) matrix, n = %lld\n\n",
              (long long)k, (long long)n);
  std::printf("%4s %16s %18s %14s\n", "idx", "TC bisection", "refined", "residual");
  for (index_t j = 0; j < k; ++j) {
    std::printf("%4lld %16.7f %18.12f %14.2e\n", static_cast<long long>(n - k + j),
                part.eigenvalues[static_cast<std::size_t>(j)],
                refined.eigenvalues[static_cast<std::size_t>(j)],
                refined.residuals[static_cast<std::size_t>(j)]);
  }
  std::printf("\ncoarse TC residual : %.2e (TC machine eps territory)\n", res_coarse);
  double worst = 0.0;
  for (double r : refined.residuals) worst = std::max(worst, r / anorm);
  std::printf("refined residual   : %.2e relative (fp64 territory)\n", worst);
  std::printf("refinement iterations total: %d (~cubic RQI convergence)\n",
              refined.total_iterations);
  return worst < 1e-12 ? 0 : 1;
}
