// Quickstart: full symmetric eigenvalue decomposition with the library's
// public API — generate a test matrix, run the two-stage Tensor-Core EVD
// with eigenvectors, and verify the factorization.
//
//   build/examples/quickstart
#include <cstdio>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

int main() {
  const index_t n = 200;

  // 1. A symmetric test matrix with geometrically distributed eigenvalues
  //    and condition number 1e3 (one of the paper's accuracy classes).
  Rng rng(42);
  Matrix<float> a = matgen::generate_f(matgen::MatrixType::Geo, n, 1e3, rng);
  std::printf("matrix: %lld x %lld, SVD_Geo, cond 1e3\n", (long long)n, (long long)n);

  // 2. Pick the numerics: the emulated Tensor Core (fp16 operands, fp32
  //    accumulate). Swap in Fp32Engine or EcTcEngine to change precision.
  tc::TcEngine engine(tc::TcPrecision::Fp16);
  Context ctx(engine);

  // 3. Configure and run the two-stage EVD (WY-based SBR -> bulge chasing
  //    -> divide & conquer), requesting eigenvectors.
  evd::EvdOptions opt;
  opt.reduction = evd::Reduction::TwoStageWy;
  opt.solver = evd::TriSolver::DivideConquer;
  opt.bandwidth = 16;
  opt.big_block = 64;
  opt.vectors = true;
  evd::EvdResult res = *evd::solve(a.view(), ctx, opt);
  if (!res.converged) {
    std::printf("eigensolver failed to converge\n");
    return 1;
  }

  // 4. Inspect the results.
  std::printf("smallest eigenvalue: %.6f\n", res.eigenvalues.front());
  std::printf("largest  eigenvalue: %.6f\n", res.eigenvalues.back());
  std::printf("phase times: sbr %.1f ms, bulge %.1f ms, solver %.1f ms\n",
              res.timings.reduction_s * 1e3, res.timings.bulge_s * 1e3,
              res.timings.solver_s * 1e3);

  // 5. Verify: residual max_j ||A v_j - lambda_j v_j|| / ||A||_F and
  //    eigenvector orthogonality — both bounded by the Tensor Core machine
  //    epsilon (~1e-3), per paper Tables 3/4.
  const double resid = evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view());
  const double orth = orthogonality_error<float>(res.vectors.view());
  std::printf("eigenpair residual: %.2e (TC eps ~1e-3)\n", resid);
  std::printf("orthogonality (paper E_o): %.2e\n", orth);
  return (resid < 1e-2 && orth < 1e-3) ? 0 : 1;
}
