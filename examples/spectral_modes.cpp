// Vibrational modes of a 1-D mass-spring chain — a small scientific-computing
// use of the symmetric eigensolver (the quantum-chemistry/physics family the
// paper cites). The stiffness matrix of a fixed-fixed uniform chain is the
// (-1, 2, -1) Laplacian, whose exact eigenpairs are known in closed form, so
// the example doubles as an end-to-end analytic validation.
//
//   build/examples/spectral_modes
#include <cmath>
#include <cstdio>
#include <numbers>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"

using namespace tcevd;

int main() {
  const index_t n = 150;

  // Stiffness matrix K (tridiagonal here, but assembled dense — the solver
  // does not know the structure) plus a weak long-range coupling to make the
  // reduction nontrivial.
  Matrix<float> k(n, n);
  for (index_t i = 0; i < n; ++i) {
    k(i, i) = 2.0f;
    if (i + 1 < n) {
      k(i + 1, i) = -1.0f;
      k(i, i + 1) = -1.0f;
    }
  }
  for (index_t i = 0; i + 5 < n; ++i) {
    // Weak extra spring between masses i and i+5 — assembled as a proper
    // spring element (rank-1 PSD), so K stays positive semidefinite and low
    // smooth modes shift only negligibly.
    k(i, i) += 0.01f;
    k(i + 5, i + 5) += 0.01f;
    k(i + 5, i) += -0.01f;
    k(i, i + 5) += -0.01f;
  }

  tc::Fp32Engine engine;  // engineering answer: plain fp32
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(k.view(), ctx, opt);
  if (!res.converged) return 1;

  std::printf("lowest 5 vibrational frequencies (omega = sqrt(lambda)):\n");
  std::printf("%6s %12s %12s %12s\n", "mode", "omega", "analytic*", "rel diff");
  int bad = 0;
  for (index_t m = 0; m < 5; ++m) {
    const double omega = std::sqrt(static_cast<double>(res.eigenvalues[static_cast<std::size_t>(m)]));
    // Closed form for the pure chain (the 0.01 coupling shifts it slightly).
    const double analytic =
        2.0 * std::sin((m + 1) * std::numbers::pi / (2.0 * (n + 1)));
    const double rel = std::abs(omega - analytic) / analytic;
    std::printf("%6lld %12.6f %12.6f %12.4f\n", static_cast<long long>(m), omega, analytic,
                rel);
    if (rel > 0.2) ++bad;
  }
  std::printf("(*analytic value for the uncoupled chain)\n");

  // Mode shapes: the fundamental must be sign-uniform (half sine wave).
  index_t sign_changes = 0;
  for (index_t i = 1; i < n; ++i)
    if ((res.vectors(i, 0) > 0) != (res.vectors(i - 1, 0) > 0)) ++sign_changes;
  std::printf("fundamental mode sign changes: %lld (expect 0)\n",
              static_cast<long long>(sign_changes));
  // Mode m has exactly m sign changes for the pure chain.
  index_t sc3 = 0;
  for (index_t i = 1; i < n; ++i)
    if ((res.vectors(i, 3) > 0) != (res.vectors(i - 1, 3) > 0)) ++sc3;
  std::printf("4th mode sign changes: %lld (expect 3)\n", static_cast<long long>(sc3));

  const double resid = evd::eigenpair_residual(k.view(), res.eigenvalues, res.vectors.view());
  std::printf("eigenpair residual: %.2e\n", resid);
  return (bad == 0 && sign_changes == 0 && resid < 1e-4) ? 0 : 1;
}
