// tcevd_tool — command-line driver for the full library: generate a test
// matrix, run the selected pipeline, print eigenvalues/timings/accuracy.
//
// Usage:
//   tcevd_tool [--n N] [--type normal|uniform|cluster0|cluster1|arith|geo]
//              [--cond C] [--engine fp32|tc|tf32|ectc]
//              [--reduction wy|dbr|zy|one]
//              [--solver dc|ql|bisect] [--b B] [--nb NB] [--vectors]
//              [--lookahead] [--check] [--seed S]
//
// Examples:
//   tcevd_tool --n 300 --type geo --cond 1e3 --engine tc --check
//   tcevd_tool --n 200 --engine ectc --reduction zy --solver ql --vectors
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"

using namespace tcevd;

namespace {

[[noreturn]] void usage(const char* msg) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: tcevd_tool [--n N] [--type T] [--cond C] [--engine E]\n"
               "                  [--reduction R] [--solver S] [--b B] [--nb NB]\n"
               "                  [--vectors] [--lookahead] [--check] [--seed S]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  index_t n = 256;
  matgen::MatrixType type = matgen::MatrixType::Normal;
  double cond = 1e3;
  std::string engine_name = "tc";
  evd::EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 64;
  bool check = false;
  std::uint64_t seed = 1234;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--n") {
      n = std::atoll(next());
    } else if (arg == "--type") {
      const std::string t = next();
      if (t == "normal") type = matgen::MatrixType::Normal;
      else if (t == "uniform") type = matgen::MatrixType::Uniform;
      else if (t == "cluster0") type = matgen::MatrixType::Cluster0;
      else if (t == "cluster1") type = matgen::MatrixType::Cluster1;
      else if (t == "arith") type = matgen::MatrixType::Arith;
      else if (t == "geo") type = matgen::MatrixType::Geo;
      else usage("unknown --type");
    } else if (arg == "--cond") {
      cond = std::atof(next());
    } else if (arg == "--engine") {
      engine_name = next();
    } else if (arg == "--reduction") {
      const std::string r = next();
      if (r == "wy") opt.reduction = evd::Reduction::TwoStageWy;
      else if (r == "dbr") opt.reduction = evd::Reduction::TwoStageDbr;
      else if (r == "zy") opt.reduction = evd::Reduction::TwoStageZy;
      else if (r == "one") opt.reduction = evd::Reduction::OneStage;
      else usage("unknown --reduction");
    } else if (arg == "--solver") {
      const std::string s = next();
      if (s == "dc") opt.solver = evd::TriSolver::DivideConquer;
      else if (s == "ql") opt.solver = evd::TriSolver::Ql;
      else if (s == "bisect") opt.solver = evd::TriSolver::Bisection;
      else usage("unknown --solver");
    } else if (arg == "--b") {
      opt.bandwidth = std::atoll(next());
    } else if (arg == "--nb") {
      opt.big_block = std::atoll(next());
    } else if (arg == "--vectors") {
      opt.vectors = true;
    } else if (arg == "--lookahead") {
      opt.lookahead = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      usage(("unknown argument " + arg).c_str());
    }
  }
  if (n < 2) usage("--n must be >= 2");

  Rng rng(seed);
  Matrix<double> ad = matgen::generate(type, n, cond, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());

  tc::Fp32Engine e_fp;
  tc::TcEngine e_tc(tc::TcPrecision::Fp16);
  tc::TcEngine e_tf(tc::TcPrecision::Tf32);
  tc::EcTcEngine e_ec(tc::TcPrecision::Fp16);
  tc::GemmEngine* engine = nullptr;
  if (engine_name == "fp32") engine = &e_fp;
  else if (engine_name == "tc") engine = &e_tc;
  else if (engine_name == "tf32") engine = &e_tf;
  else if (engine_name == "ectc") engine = &e_ec;
  else usage("unknown --engine");

  std::printf("matrix: %s, n = %lld | engine %s | b = %lld nb = %lld\n",
              matgen::matrix_type_name(type, cond).c_str(), (long long)n,
              engine->name().c_str(), (long long)opt.bandwidth, (long long)opt.big_block);

  Context ctx(*engine);
  auto res_or = evd::solve(a.view(), ctx, opt);
  if (!res_or.ok()) {
    std::fprintf(stderr, "eigensolver failed: %s\n", res_or.status().to_string().c_str());
    return 1;
  }
  evd::EvdResult& res = *res_or;
  for (const auto& ev : res.recovery)
    std::printf("recovery: [%s] %s\n", ev.site.c_str(), ev.action.c_str());

  std::printf("timings: reduce %.1f ms | bulge %.1f ms | solver %.1f ms | total %.1f ms\n",
              res.timings.reduction_s * 1e3, res.timings.bulge_s * 1e3,
              res.timings.solver_s * 1e3, res.timings.total_s * 1e3);
  std::printf("eigenvalues: min %.6g | max %.6g\n", res.eigenvalues.front(),
              res.eigenvalues.back());

  if (check) {
    auto ref = *evd::reference_eigenvalues(ad.view());
    std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
    std::printf("E_s vs fp64 reference: %.2e\n", eigenvalue_error(ref.data(), got.data(), n));
    if (opt.vectors) {
      std::printf("eigenpair residual: %.2e\n",
                  evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()));
      std::printf("E_o (orthogonality): %.2e\n",
                  orthogonality_error<float>(res.vectors.view()));
    }
  }
  return 0;
}
