#include "src/blas/abft.hpp"

#include <string>

#include "src/common/recovery.hpp"

namespace tcevd::blas::abft {

namespace detail {
std::atomic<int> g_enabled{0};
}  // namespace detail

namespace {
std::atomic<std::uint64_t> g_tiles_checked{0};
std::atomic<std::uint64_t> g_tiles_detected{0};
std::atomic<std::uint64_t> g_tiles_recomputed{0};
}  // namespace

AbftScope::AbftScope() noexcept {
  detail::g_enabled.fetch_add(1, std::memory_order_relaxed);
}

AbftScope::~AbftScope() { detail::g_enabled.fetch_sub(1, std::memory_order_relaxed); }

bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed) > 0;
}

std::uint64_t tiles_checked() noexcept {
  return g_tiles_checked.load(std::memory_order_relaxed);
}
std::uint64_t tiles_detected() noexcept {
  return g_tiles_detected.load(std::memory_order_relaxed);
}
std::uint64_t tiles_recomputed() noexcept {
  return g_tiles_recomputed.load(std::memory_order_relaxed);
}

void finish_call(const CallStats& stats, const char* kernel) {
  const long checked = stats.checked;
  const long detected = stats.detected.load(std::memory_order_relaxed);
  g_tiles_checked.fetch_add(static_cast<std::uint64_t>(checked), std::memory_order_relaxed);
  if (detected == 0) return;
  g_tiles_detected.fetch_add(static_cast<std::uint64_t>(detected), std::memory_order_relaxed);
  // Every detected tile is recomputed in place before the broadcast joins.
  g_tiles_recomputed.fetch_add(static_cast<std::uint64_t>(detected),
                               std::memory_order_relaxed);
  const std::int64_t packed = stats.first_tile.load(std::memory_order_relaxed);
  const index_t gi = static_cast<index_t>(packed >> 31);
  const index_t gj = static_cast<index_t>(packed & ((std::int64_t{1} << 31) - 1));
  recovery::note("blas.abft",
                 std::string(kernel) + ": checksum mismatch in " + std::to_string(detected) +
                     " C tile(s), first at (" + std::to_string(gi) + ", " +
                     std::to_string(gj) + "); recomputed corrupted tile(s) in fp32");
}

}  // namespace tcevd::blas::abft
