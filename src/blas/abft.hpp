// ABFT (algorithm-based fault tolerance) for the packed GEMM pipeline.
//
// When ABFT is enabled, every packed GEMM kernel (gemm_packed,
// gemm_packed_split_b, gemm_packed_nt_pair — and therefore blas::gemm,
// tc_gemm, ec_tcgemm, tc_syr2k on top of them) verifies each C micro-tile it
// produces against a column-checksum invariant:
//
//     sum_i C_tile(i, j)  ==  alpha * sum_k sa(k) * Bpanel(k, j),
//     where sa(k) = sum_i Apanel(i, k)
//
// The checksum vector sa is computed while the A panel is packed (the packed
// panel is still L1-resident, so the extra read rides the pack sweep the way
// the fp16-rounding transform does), and the per-tile comparison costs
// O(kc·nr) against the micro-kernel's O(kc·mr·nr) — about 1/mr of the tile's
// arithmetic. A mismatch beyond the floating-point tolerance means the tile
// was corrupted after its micro-kernel ran (bad memory, a racy worker, an
// injected gemm.tile_corrupt fault): the tile is detected, located by its
// global C coordinates, and recomputed serially in fp32 from the still-live
// packed panels — detect -> locate -> recompute. Recomputation replays the
// exact fp32 accumulation order, so a recovered GEMM is bitwise-identical to
// a fault-free one.
//
// Detection never changes clean results: in ABFT mode each tile is
// accumulated into a private buffer holding exactly fl(alpha*acc) — the same
// value the direct path adds to C — so ABFT on/off is bitwise-identical.
//
// Enabling is process-wide and ref-counted (AbftScope), so GEMMs issued from
// pool workers and look-ahead siblings are covered without threading a flag
// through every call chain. Detections are aggregated per top-level GEMM
// call and surfaced on the calling thread's recovery scope at site
// "blas.abft", plus monotone process counters for tests and telemetry.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/common/matrix.hpp"

namespace tcevd::blas::abft {

/// RAII guard enabling ABFT tile verification for every packed GEMM in the
/// process while at least one scope is alive. Ref-counted and nestable;
/// cheap (one relaxed atomic) to query on the GEMM entry path.
class AbftScope {
 public:
  AbftScope() noexcept;
  ~AbftScope();
  AbftScope(const AbftScope&) = delete;
  AbftScope& operator=(const AbftScope&) = delete;
};

/// True while any AbftScope is alive anywhere in the process.
bool enabled() noexcept;

/// Monotone process-wide counters (test/telemetry hooks).
std::uint64_t tiles_checked() noexcept;    ///< micro-tiles checksum-verified
std::uint64_t tiles_detected() noexcept;   ///< corrupted tiles detected
std::uint64_t tiles_recomputed() noexcept; ///< corrupted tiles recomputed

/// Per-top-level-GEMM detection aggregate. A single instance lives on the
/// calling thread's stack for the duration of one gemm_packed(...) call;
/// pool workers running tiles update it through relaxed atomics (the
/// broadcast join provides the happens-before edge back to the caller).
struct CallStats {
  /// Tiles verified. Accumulated by the dispatching (calling) thread from
  /// tile counts — not by workers — so the hot path carries no shared
  /// atomic increment per micro-tile.
  long checked = 0;
  std::atomic<long> detected{0};
  /// Global C coordinates of the first corrupted tile, packed as
  /// (i << 31) | j; -1 until a detection happens. First writer wins.
  std::atomic<std::int64_t> first_tile{-1};

  void record_detection(index_t gi, index_t gj) noexcept {
    detected.fetch_add(1, std::memory_order_relaxed);
    std::int64_t expected = -1;
    const std::int64_t packed =
        (static_cast<std::int64_t>(gi) << 31) | static_cast<std::int64_t>(gj);
    first_tile.compare_exchange_strong(expected, packed, std::memory_order_relaxed);
  }
};

namespace detail {
extern std::atomic<int> g_enabled;
}  // namespace detail

/// Fold a finished call's stats into the process counters and, when a
/// corruption was detected, note it at recovery site "blas.abft" on the
/// calling thread (kernel names the logical operation, e.g. "gemm",
/// "gemm.split_b", "syr2k"). Call after the tile broadcast has joined.
void finish_call(const CallStats& stats, const char* kernel);

}  // namespace tcevd::blas::abft
