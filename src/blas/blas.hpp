// From-scratch BLAS subset (no external BLAS in this environment).
//
// Conventions follow reference BLAS: column-major storage, op(A) selected by
// a Trans flag, triangular routines parameterized by Uplo/Diag/Side. Level-1
// routines take raw pointers with strides; level-2/3 take MatrixViews.
// Everything is templated on the element type and explicitly instantiated
// for float and double.
//
// Level-3 kernels report their flop counts to FlopCounter, which is how the
// Table 2 reproduction measures "real number of arithmetic operations".
#pragma once

#include "src/common/flop_counter.hpp"
#include "src/common/matrix.hpp"

namespace tcevd::blas {

enum class Trans { No, Yes };
enum class Uplo { Lower, Upper };
enum class Side { Left, Right };
enum class Diag { NonUnit, Unit };

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

template <typename T>
T dot(index_t n, const T* x, index_t incx, const T* y, index_t incy);

template <typename T>
T nrm2(index_t n, const T* x, index_t incx);

template <typename T>
void axpy(index_t n, T alpha, const T* x, index_t incx, T* y, index_t incy);

template <typename T>
void scal(index_t n, T alpha, T* x, index_t incx);

template <typename T>
void copy(index_t n, const T* x, index_t incx, T* y, index_t incy);

template <typename T>
void swap(index_t n, T* x, index_t incx, T* y, index_t incy);

/// Index of the max-|.| element (0-based); -1 for empty input.
template <typename T>
index_t iamax(index_t n, const T* x, index_t incx);

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

/// y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Trans trans, T alpha, ConstMatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy);

/// A += alpha * x * y^T.
template <typename T>
void ger(T alpha, const T* x, index_t incx, const T* y, index_t incy, MatrixView<T> a);

/// y = alpha * A * x + beta * y for symmetric A stored in the `uplo` triangle.
template <typename T>
void symv(Uplo uplo, T alpha, ConstMatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy);

/// A += alpha*x*y^T + alpha*y*x^T on the `uplo` triangle of symmetric A.
template <typename T>
void syr2(Uplo uplo, T alpha, const T* x, index_t incx, const T* y, index_t incy,
          MatrixView<T> a);

/// x = op(A) * x for triangular A.
template <typename T>
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a, T* x, index_t incx);

/// Solve op(A) * x = b in place (x enters as b) for triangular A.
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a, T* x, index_t incx);

// ---------------------------------------------------------------------------
// Level 3
// ---------------------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm(Trans transa, Trans transb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c);

/// C = alpha * A * B + beta * C (side==Left) or alpha * B * A + beta * C
/// (side==Right) with A symmetric, stored in the `uplo` triangle. This is
/// how a CPU/MAGMA SBR forms A22 * W at half the memory traffic of a
/// general GEMM (the paper notes Tensor Cores cannot exploit this).
template <typename T>
void symm(Side side, Uplo uplo, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c);

/// C = alpha * A A^T + beta * C (trans==No) or alpha * A^T A + beta * C,
/// touching only the `uplo` triangle of C.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c);

/// C = alpha*(A B^T + B A^T) + beta*C (trans==No), `uplo` triangle only.
/// This is the rank-2k update at the heart of ZY-based SBR; the paper notes
/// Tensor Cores have no native syr2k, which is half the motivation for WY.
template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
           MatrixView<T> c);

/// B = alpha * op(A) * B (side==Left) or alpha * B * op(A) (side==Right),
/// A triangular.
template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

/// Solve op(A) X = alpha B (Left) or X op(A) = alpha B (Right) in place.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b);

// ---------------------------------------------------------------------------
// Forwarding overloads: template deduction cannot see through the implicit
// MatrixView -> ConstMatrixView conversion, so accept mutable views directly.
// ---------------------------------------------------------------------------

template <typename T>
void gemv(Trans trans, T alpha, MatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy) {
  gemv(trans, alpha, ConstMatrixView<T>(a), x, incx, beta, y, incy);
}
template <typename T>
void symv(Uplo uplo, T alpha, MatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy) {
  symv(uplo, alpha, ConstMatrixView<T>(a), x, incx, beta, y, incy);
}
template <typename T>
void trmv(Uplo uplo, Trans trans, Diag diag, MatrixView<T> a, T* x, index_t incx) {
  trmv(uplo, trans, diag, ConstMatrixView<T>(a), x, incx);
}
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, MatrixView<T> a, T* x, index_t incx) {
  trsv(uplo, trans, diag, ConstMatrixView<T>(a), x, incx);
}
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, MatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  gemm(ta, tb, alpha, ConstMatrixView<T>(a), b, beta, c);
}
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, ConstMatrixView<T> a, MatrixView<T> b, T beta,
          MatrixView<T> c) {
  gemm(ta, tb, alpha, a, ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void gemm(Trans ta, Trans tb, T alpha, MatrixView<T> a, MatrixView<T> b, T beta,
          MatrixView<T> c) {
  gemm(ta, tb, alpha, ConstMatrixView<T>(a), ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, MatrixView<T> a, T beta, MatrixView<T> c) {
  syrk(uplo, trans, alpha, ConstMatrixView<T>(a), beta, c);
}
template <typename T>
void symm(Side side, Uplo uplo, T alpha, MatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  symm(side, uplo, alpha, ConstMatrixView<T>(a), b, beta, c);
}
template <typename T>
void symm(Side side, Uplo uplo, T alpha, ConstMatrixView<T> a, MatrixView<T> b, T beta,
          MatrixView<T> c) {
  symm(side, uplo, alpha, a, ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void symm(Side side, Uplo uplo, T alpha, MatrixView<T> a, MatrixView<T> b, T beta,
          MatrixView<T> c) {
  symm(side, uplo, alpha, ConstMatrixView<T>(a), ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, MatrixView<T> a, ConstMatrixView<T> b, T beta,
           MatrixView<T> c) {
  syr2k(uplo, trans, alpha, ConstMatrixView<T>(a), b, beta, c);
}
template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, MatrixView<T> b, T beta,
           MatrixView<T> c) {
  syr2k(uplo, trans, alpha, a, ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, MatrixView<T> a, MatrixView<T> b, T beta,
           MatrixView<T> c) {
  syr2k(uplo, trans, alpha, ConstMatrixView<T>(a), ConstMatrixView<T>(b), beta, c);
}
template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, MatrixView<T> a,
          MatrixView<T> b) {
  trmm(side, uplo, trans, diag, alpha, ConstMatrixView<T>(a), b);
}
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, MatrixView<T> a,
          MatrixView<T> b) {
  trsm(side, uplo, trans, diag, alpha, ConstMatrixView<T>(a), b);
}

#define TCEVD_BLAS_EXTERN(T)                                                                   \
  extern template T dot<T>(index_t, const T*, index_t, const T*, index_t);                     \
  extern template T nrm2<T>(index_t, const T*, index_t);                                       \
  extern template void axpy<T>(index_t, T, const T*, index_t, T*, index_t);                    \
  extern template void scal<T>(index_t, T, T*, index_t);                                       \
  extern template void copy<T>(index_t, const T*, index_t, T*, index_t);                       \
  extern template void swap<T>(index_t, T*, index_t, T*, index_t);                             \
  extern template index_t iamax<T>(index_t, const T*, index_t);                                \
  extern template void gemv<T>(Trans, T, ConstMatrixView<T>, const T*, index_t, T, T*,         \
                               index_t);                                                       \
  extern template void ger<T>(T, const T*, index_t, const T*, index_t, MatrixView<T>);         \
  extern template void symv<T>(Uplo, T, ConstMatrixView<T>, const T*, index_t, T, T*,          \
                               index_t);                                                       \
  extern template void syr2<T>(Uplo, T, const T*, index_t, const T*, index_t, MatrixView<T>);  \
  extern template void trmv<T>(Uplo, Trans, Diag, ConstMatrixView<T>, T*, index_t);            \
  extern template void trsv<T>(Uplo, Trans, Diag, ConstMatrixView<T>, T*, index_t);            \
  extern template void gemm<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,     \
                               MatrixView<T>);                                                 \
  extern template void symm<T>(Side, Uplo, T, ConstMatrixView<T>, ConstMatrixView<T>, T,       \
                               MatrixView<T>);                                                 \
  extern template void syrk<T>(Uplo, Trans, T, ConstMatrixView<T>, T, MatrixView<T>);          \
  extern template void syr2k<T>(Uplo, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,     \
                                MatrixView<T>);                                                \
  extern template void trmm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>); \
  extern template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);

TCEVD_BLAS_EXTERN(float)
TCEVD_BLAS_EXTERN(double)
#undef TCEVD_BLAS_EXTERN

}  // namespace tcevd::blas
