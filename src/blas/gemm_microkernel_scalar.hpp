// Scalar reference micro-kernels for the packed GEMM pipeline.
//
// These are THE numerical definition of a packed-GEMM micro-tile: every
// other implementation (the AVX2 family in simd_kernels_avx2.cpp) must be
// bitwise-identical to these loops, which is enforced twice — once by the
// dispatch-time self-check (simd_dispatch.cpp installs a vector kernel only
// after comparing it bitwise against these on probe problems) and once by the
// `gemmfast` SIMD-vs-scalar test sweep.
//
// The bitwise contract rests on the per-element operation sequence: each C
// element's accumulator performs, for k = 0..kc-1, one fp multiply
// fl(a(i,k)*b(k,j)) followed by one fp add into the accumulator, then one
// multiply by alpha and one add into C. A SIMD kernel that assigns one vector
// lane per row of the MR x NR tile and uses separate mul/add instructions
// executes exactly this sequence per lane. This is also why the build pins
// -ffp-contract=off (top-level CMakeLists): letting the compiler contract
// a*b+acc into an FMA would change the scalar reference's rounding and break
// the lane-per-row equivalence argument.
#pragma once

#include "src/common/matrix.hpp"

namespace tcevd {
namespace blas {
namespace packed {

// Register-tile shape shared by the pack format, the scalar kernels, and the
// SIMD kernels. kMR = 8 is one 8-float AVX2 vector (one lane per row);
// kNR = 8 gives the SIMD kernel eight independent accumulator chains, enough
// to cover the 3-4 cycle fp add latency at 2 issues/cycle. (Widening NR never
// changes results: a C element's accumulation chain depends only on its own
// k-order, not on which tile neighbours share the micro-kernel call.)
inline constexpr index_t kMR = 8;
inline constexpr index_t kNR = 8;

/// acc(MR x NR) += sum_k apanel(:, k) bpanel(k, :); then C += alpha * acc.
template <typename T>
void micro_kernel_scalar(index_t kc, const T* ap, const T* bp, T alpha, T* c0, index_t ldc,
                         index_t mr, index_t nr) {
  T acc[kNR][kMR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* arow = ap + k * kMR;
    const T* brow = bp + k * kNR;
    for (index_t jj = 0; jj < kNR; ++jj) {
      const T bv = brow[jj];
      for (index_t ii = 0; ii < kMR; ++ii) acc[jj][ii] += arow[ii] * bv;
    }
  }
  for (index_t jj = 0; jj < nr; ++jj) {
    T* cc = c0 + jj * ldc;
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * acc[jj][ii];
  }
}

/// Two products sharing one C tile: C += alpha * (A1·B1 + A2·B2), with both
/// accumulators carried per k-step and their sum added element-wise. tc_syr2k
/// relies on this shape for bitwise upper/lower symmetry: the (j,i) tile's
/// acc1/acc2 are the (i,j) tile's acc2/acc1 value-for-value (fp multiply and
/// add are commutative bitwise), so acc1+acc2 matches across the diagonal.
template <typename T>
void micro_kernel_pair_scalar(index_t kc, const T* ap1, const T* bp1, const T* ap2,
                              const T* bp2, T alpha, T* c0, index_t ldc, index_t mr,
                              index_t nr) {
  T acc1[kNR][kMR] = {};
  T acc2[kNR][kMR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* a1 = ap1 + k * kMR;
    const T* b1 = bp1 + k * kNR;
    const T* a2 = ap2 + k * kMR;
    const T* b2 = bp2 + k * kNR;
    for (index_t jj = 0; jj < kNR; ++jj) {
      const T bv1 = b1[jj];
      const T bv2 = b2[jj];
      for (index_t ii = 0; ii < kMR; ++ii) {
        acc1[jj][ii] += a1[ii] * bv1;
        acc2[jj][ii] += a2[ii] * bv2;
      }
    }
  }
  for (index_t jj = 0; jj < nr; ++jj) {
    T* cc = c0 + jj * ldc;
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * (acc1[jj][ii] + acc2[jj][ii]);
  }
}

}  // namespace packed
}  // namespace blas
}  // namespace tcevd
