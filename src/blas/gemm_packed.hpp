// Transpose-aware packed GEMM pipeline with fused per-element transforms.
//
// One BLIS-style blocked kernel serves every op(A)/op(B) combination: the
// packing routines read straight through the transpose, so C = op(A)·op(B)
// never materializes an intermediate matrix. Packing also applies a
// per-element PackTransform functor, which is how the tensor-core emulation
// fuses operand rounding (fp16 / tf32 / EC head–tail splitting) into the one
// pass it already makes over the operands — see src/tensorcore/tc_gemm.cpp
// and ec_tcgemm.cpp.
//
// Threading: the macro-tile loop fans out over disjoint C tiles on gemm_pool()
// via ThreadPool::try_broadcast (allocation-free), subject to the policy in
// gemm_threading.hpp. Packing stays on the calling thread; workers only read
// the packed panels (the broadcast handshake provides the happens-before
// edges). Because tiles are disjoint and the per-tile fp32/fp64 accumulation
// order is untouched, pooled results are bitwise-identical to serial ones.
//
// Allocation discipline: pack buffers are thread_local and sized once at
// first use, so a steady-state call performs zero heap allocations whether it
// runs serial or pooled. The arenas are 64-byte aligned (AlignedVector) so
// the SIMD micro-kernels can use aligned vector loads on the packed panels.
//
// SIMD: the micro-kernels route through simd::active_kernels() — a runtime
// dispatch table resolved once from TCEVD_SIMD / cpuid / a bitwise
// self-check (src/blas/simd_dispatch.hpp). The scalar reference lives in
// gemm_microkernel_scalar.hpp; any vector kernel the table installs is
// bitwise-identical to it, so nothing downstream can observe which family
// ran except the dispatch_count telemetry.
//
// ABFT (see src/blas/abft.hpp): when an AbftScope is active, every C
// micro-tile is verified against a column-checksum invariant computed from
// the packed A panel and recomputed in place on mismatch — detect, locate,
// recompute — before it is applied to C. The ABFT tile path accumulates into
// a private buffer holding exactly the value the direct path would have
// added, so clean results are bitwise-identical with ABFT on or off.
//
// These entry points do NOT touch the FlopCounter — callers (blas::gemm,
// tc_gemm, ec_tcgemm, tc_syr2k) account for their own logical flops.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <vector>

#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/blas/gemm_microkernel_scalar.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/blas/simd_dispatch.hpp"
#include "src/common/aligned.hpp"
#include "src/common/fault.hpp"
#include "src/common/thread_pool.hpp"

namespace tcevd {
namespace blas {

/// Default PackTransform: elements pass through untouched.
struct IdentityTransform {
  template <typename T>
  T operator()(T v) const {
    return v;
  }
};

namespace packed {

// Cache-blocking parameters (BLIS-style). The register-tile shape kMR x kNR
// lives in gemm_microkernel_scalar.hpp next to the kernels it defines. A
// packs into MR-row panels, B into NR-column panels, k-major within each
// panel, so the micro-kernel streams contiguous memory with an MR x NR
// accumulator in registers; MC/KC/NC keep the packed panels cache-resident.
inline constexpr index_t kMC = 128;
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 1024;

inline constexpr std::size_t kApackElems = static_cast<std::size_t>(kMC + kMR) * kKC;
inline constexpr std::size_t kBpackElems = static_cast<std::size_t>(kKC) * (kNC + kNR);

/// Thread-local pack storage, sized once per thread at first use. The second
/// pair (a2/b2) backs the dual-operand kernels (EC head–tail split packing,
/// the syr2k product pair). The arenas are 64-byte aligned: the AVX2 kernels
/// aligned-load the packed A panels, legal because every panel/micro-panel
/// offset into the arena is a multiple of kMR elements.
template <typename T>
struct PackBuffers {
  AlignedVector<T> a, b, a2, b2;
  PackBuffers() : a(kApackElems), b(kBpackElems), a2(kApackElems), b2(kBpackElems) {
    TCEVD_CHECK(reinterpret_cast<std::uintptr_t>(a.data()) % kKernelAlignment == 0 &&
                    reinterpret_cast<std::uintptr_t>(b.data()) % kKernelAlignment == 0 &&
                    reinterpret_cast<std::uintptr_t>(a2.data()) % kKernelAlignment == 0 &&
                    reinterpret_cast<std::uintptr_t>(b2.data()) % kKernelAlignment == 0,
                "pack arenas must be 64-byte aligned for the SIMD kernels");
  }
};

// The panel-offset argument above: (kMR * sizeof(T)) must divide the arena
// alignment, or offsets p * kMR * kc would break the aligned-load contract.
static_assert(kKernelAlignment % (static_cast<std::size_t>(kMR) * sizeof(double)) == 0,
              "packed A panel offsets must preserve vector alignment");

template <typename T>
PackBuffers<T>& pack_buffers() {
  thread_local PackBuffers<T> bufs;
  return bufs;
}

// --- ABFT column checksums -------------------------------------------------

/// Per-micro-panel checksum capacity: mtiles <= kMC/kMR panels, kc <= kKC
/// k-steps each. Checksums carry a plain and an absolute-value sum (the
/// latter scales the floating-point comparison tolerance).
inline constexpr std::size_t kAcsumElems =
    static_cast<std::size_t>(kMC / kMR) * kKC;

/// Thread-local checksum storage, allocated lazily on a thread's first ABFT
/// GEMM (non-ABFT callers never touch it). The second pair backs the
/// dual-A-operand pair kernel (tc_syr2k).
struct AbftBuffers {
  std::vector<double> sa, sa_abs, sa2, sa2_abs;
  AbftBuffers()
      : sa(kAcsumElems), sa_abs(kAcsumElems), sa2(kAcsumElems), sa2_abs(kAcsumElems) {}
};

inline AbftBuffers& abft_buffers() {
  thread_local AbftBuffers bufs;
  return bufs;
}

/// Row-sum checksum vector of a packed A block: sa[p*kc + k] sums the kMR
/// lanes of micro-panel p at k-step k (zero-padded lanes contribute zero),
/// sa_abs the absolute values. Reads the freshly packed, cache-resident
/// panel, so the sweep rides the pack's memory traffic the way the fused
/// rounding transform rides the operand read.
template <typename T>
void compute_a_checksums(const T* buf, index_t mc, index_t kc, double* sa,
                         double* sa_abs) {
  const index_t mtiles = (mc + kMR - 1) / kMR;
  for (index_t p = 0; p < mtiles; ++p) {
    const T* panel = buf + p * kMR * kc;
    double* s = sa + p * kc;
    double* sabs = sa_abs + p * kc;
    for (index_t k = 0; k < kc; ++k) {
      const T* col = panel + k * kMR;
      double sum = 0.0;
      double asum = 0.0;
      for (index_t r = 0; r < kMR; ++r) {
        const double v = static_cast<double>(col[r]);
        sum += v;
        asum += std::abs(v);
      }
      s[k] = sum;
      sabs[k] = asum;
    }
  }
}

/// The injected "corrupted tile" bit damage (fault site gemm.tile_corrupt):
/// flip the sign bit and walk the exponent field up by 10 (down when that
/// would overflow past the finite range), with a magnitude floor of 2^10.
/// Deterministic and always a large *finite* change — at least ~2^10 in
/// absolute terms and at least ~2^10 relative to the original value — so the
/// corruption reliably breaches the end-to-end residual gate without
/// poisoning the pipeline with Inf/NaN (a raw high-exponent bit flip can
/// produce either a negligible perturbation or an infinity, both of which
/// make fault-injection tests flaky).
template <typename T>
inline void corrupt_value(T& v) noexcept {
  if constexpr (sizeof(T) == 4) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const std::uint32_t exp = (bits >> 23) & 0xFFu;
    if (exp == 0)
      bits = 0x44800000u;  // zero/denormal -> 1024.0f
    else if (exp <= 244)
      bits = (bits ^ 0x80000000u) + (std::uint32_t{10} << 23);
    else
      bits = (bits ^ 0x80000000u) - (std::uint32_t{10} << 23);
    std::memcpy(&v, &bits, sizeof(bits));
    if (v > -1024.0f && v < 1024.0f) v = v < 0.0f ? -1024.0f : 1024.0f;
  } else {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const std::uint64_t exp = (bits >> 52) & 0x7FFull;
    if (exp == 0)
      bits = 0x4090000000000000ull;  // zero/denormal -> 1024.0
    else if (exp <= 2036)
      bits = (bits ^ 0x8000000000000000ull) + (std::uint64_t{10} << 52);
    else
      bits = (bits ^ 0x8000000000000000ull) - (std::uint64_t{10} << 52);
    std::memcpy(&v, &bits, sizeof(bits));
    if (v > -1024.0 && v < 1024.0) v = v < 0.0 ? -1024.0 : 1024.0;
  }
}

/// Safety factor on the analytic fp accumulation bound. False positives only
/// cost a redundant (bitwise-identical) tile recompute, never correctness.
inline constexpr double kAbftSafety = 8.0;

/// Tolerance for one column's checksum comparison: the micro-kernel
/// accumulates kc products in T precision and the tile sums <= kMR of them,
/// so the drift between the double-precision expected sum and the actual
/// tile column sum is bounded by ~(kc + kMR) * eps_T * (sum of |terms|).
template <typename T>
inline double abft_tolerance(index_t kc, double abs_scale) noexcept {
  return kAbftSafety * static_cast<double>(std::numeric_limits<T>::epsilon()) *
             (static_cast<double>(kc) + static_cast<double>(kMR)) * abs_scale +
         1e-300;
}

/// Column-checksum verification of one accumulated tile (kMR-ld buffer
/// holding fl(alpha*acc)): for every column j,
///   sum_i tile(i, j)  ?=  alpha * sum_k sa(k) * bp(k, j).
template <typename T>
bool tile_checksum_ok(const T* tile, index_t mr, index_t nr, index_t kc, const T* bp,
                      T alpha, const double* sa, const double* sa_abs) {
  const double al = static_cast<double>(alpha);
  const double al_abs = std::abs(al);
  for (index_t jj = 0; jj < nr; ++jj) {
    double expect = 0.0;
    double scale = 0.0;
    for (index_t k = 0; k < kc; ++k) {
      const double bv = static_cast<double>(bp[k * kNR + jj]);
      expect += sa[k] * bv;
      scale += sa_abs[k] * std::abs(bv);
    }
    expect *= al;
    scale *= al_abs;
    double actual = 0.0;
    const T* tcol = tile + jj * kMR;
    for (index_t ii = 0; ii < mr; ++ii) actual += static_cast<double>(tcol[ii]);
    if (std::abs(actual - expect) > abft_tolerance<T>(kc, scale)) return false;
  }
  return true;
}

/// Pair-kernel variant: tile holds fl(alpha*(acc1+acc2)), so the expected
/// column sum combines both products' checksums.
template <typename T>
bool tile_checksum_ok_pair(const T* tile, index_t mr, index_t nr, index_t kc,
                           const T* bp1, const T* bp2, T alpha, const double* sa1,
                           const double* sa1_abs, const double* sa2,
                           const double* sa2_abs) {
  const double al = static_cast<double>(alpha);
  const double al_abs = std::abs(al);
  for (index_t jj = 0; jj < nr; ++jj) {
    double expect = 0.0;
    double scale = 0.0;
    for (index_t k = 0; k < kc; ++k) {
      const double b1 = static_cast<double>(bp1[k * kNR + jj]);
      const double b2 = static_cast<double>(bp2[k * kNR + jj]);
      expect += sa1[k] * b1 + sa2[k] * b2;
      scale += sa1_abs[k] * std::abs(b1) + sa2_abs[k] * std::abs(b2);
    }
    expect *= al;
    scale *= al_abs;
    double actual = 0.0;
    const T* tcol = tile + jj * kMR;
    for (index_t ii = 0; ii < mr; ++ii) actual += static_cast<double>(tcol[ii]);
    // The pair kernel carries two accumulators per k-step, so double the
    // single-product accumulation bound.
    if (std::abs(actual - expect) > 2.0 * abft_tolerance<T>(kc, scale)) return false;
  }
  return true;
}

// --- Pack transforms: batch detection --------------------------------------
//
// A PackTransform may expose, next to its per-element operator(), a batch
// form `f.apply(src, dst, n)` (or `split.apply(src, head, tail, n)`) that
// maps a contiguous run in one call — the Tensor Core rounding transforms
// vectorize theirs (src/tensorcore/tc_convert.hpp). Packing feeds it every
// contiguous source run it walks; strided destinations go through a small
// aligned stack staging buffer (the source read is still one contiguous
// sweep, which is where the vector win is).

template <typename F, typename T, typename = void>
struct HasBatchApply : std::false_type {};
template <typename F, typename T>
struct HasBatchApply<F, T,
                     std::void_t<decltype(std::declval<const F&>().apply(
                         std::declval<const T*>(), std::declval<T*>(), index_t{}))>>
    : std::true_type {};

template <typename F, typename T, typename = void>
struct HasBatchSplit : std::false_type {};
template <typename F, typename T>
struct HasBatchSplit<F, T,
                     std::void_t<decltype(std::declval<const F&>().apply(
                         std::declval<const T*>(), std::declval<T*>(), std::declval<T*>(),
                         index_t{}))>> : std::true_type {};

/// op(A)(i0:i0+mc, k0:k0+kc) -> MR-row panels, k-major, f applied per element.
/// TA=false reads columns of A contiguously; TA=true walks columns of A as
/// rows of op(A) (lane-outer, k-inner) so the source reads stay contiguous.
template <bool TA, typename T, typename F>
void pack_a_block(ConstMatrixView<T> a, index_t i0, index_t k0, index_t mc, index_t kc,
                  T* buf, const F& f) {
  for (index_t p = 0; p < mc; p += kMR) {
    const index_t mr = std::min(kMR, mc - p);
    if constexpr (!TA) {
      for (index_t k = 0; k < kc; ++k) {
        const T* col = &a(i0 + p, k0 + k);
        T* dst = buf + k * kMR;
        if constexpr (HasBatchApply<F, T>::value) {
          f.apply(col, dst, mr);
        } else {
          for (index_t r = 0; r < mr; ++r) dst[r] = f(col[r]);
        }
        for (index_t r = mr; r < kMR; ++r) dst[r] = T{};
      }
    } else {
      for (index_t r = 0; r < mr; ++r) {
        const T* col = &a(k0, i0 + p + r);  // column of A == row of op(A)
        if constexpr (HasBatchApply<F, T>::value) {
          alignas(kKernelAlignment) T tmp[kKC];
          f.apply(col, tmp, kc);
          for (index_t k = 0; k < kc; ++k) buf[k * kMR + r] = tmp[k];
        } else {
          for (index_t k = 0; k < kc; ++k) buf[k * kMR + r] = f(col[k]);
        }
      }
      for (index_t r = mr; r < kMR; ++r)
        for (index_t k = 0; k < kc; ++k) buf[k * kMR + r] = T{};
    }
    buf += kMR * kc;
  }
}

/// op(B)(k0:k0+kc, j0:j0+nc) -> NR-column panels, k-major, f applied per
/// element. TB=true reads rows of op(B) as columns of B contiguously.
template <bool TB, typename T, typename F>
void pack_b_block(ConstMatrixView<T> b, index_t k0, index_t j0, index_t kc, index_t nc,
                  T* buf, const F& f) {
  for (index_t q = 0; q < nc; q += kNR) {
    const index_t nr = std::min(kNR, nc - q);
    if constexpr (!TB && HasBatchApply<F, T>::value) {
      // Columns of B are contiguous along k: transform each whole column into
      // a staging buffer, then scatter into the k-major panel.
      for (index_t cidx = 0; cidx < nr; ++cidx) {
        alignas(kKernelAlignment) T tmp[kKC];
        f.apply(&b(k0, j0 + q + cidx), tmp, kc);
        for (index_t k = 0; k < kc; ++k) buf[k * kNR + cidx] = tmp[k];
      }
      for (index_t cidx = nr; cidx < kNR; ++cidx)
        for (index_t k = 0; k < kc; ++k) buf[k * kNR + cidx] = T{};
    } else {
      for (index_t k = 0; k < kc; ++k) {
        T* dst = buf + k * kNR;
        index_t cidx = 0;
        if constexpr (!TB) {
          for (; cidx < nr; ++cidx) dst[cidx] = f(b(k0 + k, j0 + q + cidx));
        } else if constexpr (HasBatchApply<F, T>::value) {
          f.apply(&b(j0 + q, k0 + k), dst, nr);  // column of B == row of op(B)
          cidx = nr;
        } else {
          const T* col = &b(j0 + q, k0 + k);  // column of B == row of op(B)
          for (; cidx < nr; ++cidx) dst[cidx] = f(col[cidx]);
        }
        for (; cidx < kNR; ++cidx) dst[cidx] = T{};
      }
    }
    buf += kNR * kc;
  }
}

/// Dual-output B pack: one pass over op(B) fills a head panel and a tail
/// panel via split(v, head, tail). This is the EC-TC fusion — the head/tail
/// decomposition is computed once per source element instead of once per
/// materialized copy.
template <bool TB, typename T, typename F>
void pack_b_block_split(ConstMatrixView<T> b, index_t k0, index_t j0, index_t kc,
                        index_t nc, T* bufh, T* buft, const F& split) {
  for (index_t q = 0; q < nc; q += kNR) {
    const index_t nr = std::min(kNR, nc - q);
    if constexpr (!TB && HasBatchSplit<F, T>::value) {
      for (index_t cidx = 0; cidx < nr; ++cidx) {
        alignas(kKernelAlignment) T tmph[kKC];
        alignas(kKernelAlignment) T tmpt[kKC];
        split.apply(&b(k0, j0 + q + cidx), tmph, tmpt, kc);
        for (index_t k = 0; k < kc; ++k) {
          bufh[k * kNR + cidx] = tmph[k];
          buft[k * kNR + cidx] = tmpt[k];
        }
      }
      for (index_t cidx = nr; cidx < kNR; ++cidx)
        for (index_t k = 0; k < kc; ++k) {
          bufh[k * kNR + cidx] = T{};
          buft[k * kNR + cidx] = T{};
        }
    } else {
      for (index_t k = 0; k < kc; ++k) {
        T* dh = bufh + k * kNR;
        T* dt = buft + k * kNR;
        index_t cidx = 0;
        if constexpr (!TB) {
          for (; cidx < nr; ++cidx) split(b(k0 + k, j0 + q + cidx), dh[cidx], dt[cidx]);
        } else if constexpr (HasBatchSplit<F, T>::value) {
          split.apply(&b(j0 + q, k0 + k), dh, dt, nr);
          cidx = nr;
        } else {
          const T* col = &b(j0 + q, k0 + k);
          for (; cidx < nr; ++cidx) split(col[cidx], dh[cidx], dt[cidx]);
        }
        for (; cidx < kNR; ++cidx) {
          dh[cidx] = T{};
          dt[cidx] = T{};
        }
      }
    }
    bufh += kNR * kc;
    buft += kNR * kc;
  }
}

/// acc(MR x NR) += sum_k apanel(:, k) bpanel(k, :); then C += alpha * acc.
/// Routes float/double through the runtime-dispatched kernel table (bitwise
/// twins of the scalar reference); everything else runs the scalar reference
/// directly.
template <typename T>
inline void micro_kernel(index_t kc, const T* ap, const T* bp, T alpha, T* c0, index_t ldc,
                         index_t mr, index_t nr) {
  if constexpr (std::is_same_v<T, float>) {
    if (const auto fn = simd::active_kernels().gemm_f32) {
      fn(kc, ap, bp, alpha, c0, ldc, mr, nr);
      return;
    }
  } else if constexpr (std::is_same_v<T, double>) {
    if (const auto fn = simd::active_kernels().gemm_f64) {
      fn(kc, ap, bp, alpha, c0, ldc, mr, nr);
      return;
    }
  }
  micro_kernel_scalar(kc, ap, bp, alpha, c0, ldc, mr, nr);
}

/// Paired variant (see micro_kernel_pair_scalar for the accumulation shape
/// and the syr2k symmetry argument). Same dispatch rule as micro_kernel.
template <typename T>
inline void micro_kernel_pair(index_t kc, const T* ap1, const T* bp1, const T* ap2,
                              const T* bp2, T alpha, T* c0, index_t ldc, index_t mr,
                              index_t nr) {
  if constexpr (std::is_same_v<T, float>) {
    if (const auto fn = simd::active_kernels().gemm_pair_f32) {
      fn(kc, ap1, bp1, ap2, bp2, alpha, c0, ldc, mr, nr);
      return;
    }
  } else if constexpr (std::is_same_v<T, double>) {
    if (const auto fn = simd::active_kernels().gemm_pair_f64) {
      fn(kc, ap1, bp1, ap2, bp2, alpha, c0, ldc, mr, nr);
      return;
    }
  }
  micro_kernel_pair_scalar(kc, ap1, bp1, ap2, bp2, alpha, c0, ldc, mr, nr);
}

/// Fan `ntiles` independent bodies out on gemm_pool() when `pooled`, falling
/// back to the calling thread when the pool is busy (another broadcast is in
/// flight) or pooling is disabled. Returns true when the pool actually ran it.
inline bool dispatch_tiles(long ntiles, bool pooled, void (*fn)(void*, long), void* ctx) {
  if (pooled && gemm_pool().try_broadcast(ntiles, fn, ctx)) {
    blas::detail::count_gemm_pool_dispatch();
    return true;
  }
  for (long i = 0; i < ntiles; ++i) fn(ctx, i);
  return false;
}

// Tile-loop contexts are transform-free plain structs: packing already ran on
// the calling thread, workers only read packed panels and write disjoint C
// tiles. Living on the caller's stack is safe — try_broadcast blocks until
// every index completes.

template <typename T>
struct TileCtx {
  const T* apack;
  const T* bpack;
  T alpha;
  T* cbase;  // &c(i0, j0)
  index_t ldc;
  index_t mc, nc, kc;
  index_t mtiles;
};

template <typename T>
void run_tile(void* vctx, long idx) {
  const auto* ctx = static_cast<const TileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const T* ap = ctx->apack + (ir / kMR) * ctx->kc * kMR;
  const T* bp = ctx->bpack + (jr / kNR) * ctx->kc * kNR;
  micro_kernel(ctx->kc, ap, bp, ctx->alpha, ctx->cbase + ir + jr * ctx->ldc, ctx->ldc, mr,
               nr);
  // Post-micro-kernel corruption injection: with ABFT off nothing checks the
  // tile, and the bad value flows into the result (exactly the silent fault
  // the end-to-end verification tier exists to catch).
  if (fault::should_fire(fault::Site::GemmTileCorrupt))
    corrupt_value(*(ctx->cbase + ir + jr * ctx->ldc));
}

/// Split-B tile: one A panel against head and tail B panels, into two
/// disjoint accumulator matrices (c0 += A·Bh, c1 += A·Bt). Each accumulator's
/// order matches its own standalone gemm exactly.
template <typename T>
struct SplitTileCtx {
  const T* apack;
  const T* bpackh;
  const T* bpackt;
  T* c0base;
  index_t ldc0;
  T* c1base;
  index_t ldc1;
  index_t mc, nc, kc;
  index_t mtiles;
};

template <typename T>
void run_split_tile(void* vctx, long idx) {
  const auto* ctx = static_cast<const SplitTileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const T* ap = ctx->apack + (ir / kMR) * ctx->kc * kMR;
  const index_t poff = (jr / kNR) * ctx->kc * kNR;
  micro_kernel(ctx->kc, ap, ctx->bpackh + poff, T{1},
               ctx->c0base + ir + jr * ctx->ldc0, ctx->ldc0, mr, nr);
  micro_kernel(ctx->kc, ap, ctx->bpackt + poff, T{1},
               ctx->c1base + ir + jr * ctx->ldc1, ctx->ldc1, mr, nr);
  if (fault::should_fire(fault::Site::GemmTileCorrupt))
    corrupt_value(*(ctx->c0base + ir + jr * ctx->ldc0));
}

template <typename T>
struct PairTileCtx {
  const T* apack1;
  const T* bpack1;
  const T* apack2;
  const T* bpack2;
  T alpha;
  T* cbase;
  index_t ldc;
  index_t mc, nc, kc;
  index_t mtiles;
};

template <typename T>
void run_pair_tile(void* vctx, long idx) {
  const auto* ctx = static_cast<const PairTileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const index_t aoff = (ir / kMR) * ctx->kc * kMR;
  const index_t boff = (jr / kNR) * ctx->kc * kNR;
  micro_kernel_pair(ctx->kc, ctx->apack1 + aoff, ctx->bpack1 + boff, ctx->apack2 + aoff,
                    ctx->bpack2 + boff, ctx->alpha, ctx->cbase + ir + jr * ctx->ldc,
                    ctx->ldc, mr, nr);
  if (fault::should_fire(fault::Site::GemmTileCorrupt))
    corrupt_value(*(ctx->cbase + ir + jr * ctx->ldc));
}

// --- ABFT tile runners -----------------------------------------------------
//
// Each runner accumulates its tile into a private kMR x kNR buffer holding
// exactly fl(alpha*acc) — the value the direct runner would have added to C —
// verifies it against the packed-A checksum vector, recomputes in place on a
// mismatch (same packed panels, same accumulation order: the recompute is
// bitwise the uncorrupted tile), and only then applies it to C. The injected
// gemm.tile_corrupt flip lands on the private tile after the micro-kernel,
// modeling a corrupted C tile before anything downstream consumed it.

template <typename T>
struct AbftTileCtx {
  const T* apack;
  const T* bpack;
  T alpha;
  T* cbase;
  index_t ldc;
  index_t mc, nc, kc;
  index_t mtiles;
  const double* sa;
  const double* sa_abs;
  index_t gi0, gj0;  ///< global C coordinates of this macro block
  abft::CallStats* stats;
};

template <typename T>
void run_tile_abft(void* vctx, long idx) {
  const auto* ctx = static_cast<const AbftTileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const T* ap = ctx->apack + (ir / kMR) * ctx->kc * kMR;
  const T* bp = ctx->bpack + (jr / kNR) * ctx->kc * kNR;
  const double* sa = ctx->sa + (ir / kMR) * ctx->kc;
  const double* sa_abs = ctx->sa_abs + (ir / kMR) * ctx->kc;

  T tile[kNR * kMR] = {};
  micro_kernel(ctx->kc, ap, bp, ctx->alpha, tile, kMR, mr, nr);
  if (fault::should_fire(fault::Site::GemmTileCorrupt)) corrupt_value(tile[0]);
  if (!tile_checksum_ok(tile, mr, nr, ctx->kc, bp, ctx->alpha, sa, sa_abs)) {
    std::fill(tile, tile + kNR * kMR, T{});
    micro_kernel(ctx->kc, ap, bp, ctx->alpha, tile, kMR, mr, nr);
    ctx->stats->record_detection(ctx->gi0 + ir, ctx->gj0 + jr);
  }
  T* cc0 = ctx->cbase + ir + jr * ctx->ldc;
  for (index_t jj = 0; jj < nr; ++jj) {
    T* cc = cc0 + jj * ctx->ldc;
    const T* tcol = tile + jj * kMR;
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += tcol[ii];
  }
}

template <typename T>
struct AbftSplitTileCtx {
  const T* apack;
  const T* bpackh;
  const T* bpackt;
  T* c0base;
  index_t ldc0;
  T* c1base;
  index_t ldc1;
  index_t mc, nc, kc;
  index_t mtiles;
  const double* sa;
  const double* sa_abs;
  index_t gi0, gj0;
  abft::CallStats* stats;
};

template <typename T>
void run_split_tile_abft(void* vctx, long idx) {
  const auto* ctx = static_cast<const AbftSplitTileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const T* ap = ctx->apack + (ir / kMR) * ctx->kc * kMR;
  const index_t poff = (jr / kNR) * ctx->kc * kNR;
  const double* sa = ctx->sa + (ir / kMR) * ctx->kc;
  const double* sa_abs = ctx->sa_abs + (ir / kMR) * ctx->kc;

  const T* bps[2] = {ctx->bpackh + poff, ctx->bpackt + poff};
  T* cbases[2] = {ctx->c0base + ir + jr * ctx->ldc0, ctx->c1base + ir + jr * ctx->ldc1};
  const index_t ldcs[2] = {ctx->ldc0, ctx->ldc1};
  for (int s = 0; s < 2; ++s) {
    T tile[kNR * kMR] = {};
    micro_kernel(ctx->kc, ap, bps[s], T{1}, tile, kMR, mr, nr);
    if (s == 0 && fault::should_fire(fault::Site::GemmTileCorrupt)) corrupt_value(tile[0]);
    if (!tile_checksum_ok(tile, mr, nr, ctx->kc, bps[s], T{1}, sa, sa_abs)) {
      std::fill(tile, tile + kNR * kMR, T{});
      micro_kernel(ctx->kc, ap, bps[s], T{1}, tile, kMR, mr, nr);
      ctx->stats->record_detection(ctx->gi0 + ir, ctx->gj0 + jr);
    }
    for (index_t jj = 0; jj < nr; ++jj) {
      T* cc = cbases[s] + jj * ldcs[s];
      const T* tcol = tile + jj * kMR;
      for (index_t ii = 0; ii < mr; ++ii) cc[ii] += tcol[ii];
    }
  }
}

template <typename T>
struct AbftPairTileCtx {
  const T* apack1;
  const T* bpack1;
  const T* apack2;
  const T* bpack2;
  T alpha;
  T* cbase;
  index_t ldc;
  index_t mc, nc, kc;
  index_t mtiles;
  const double* sa1;
  const double* sa1_abs;
  const double* sa2;
  const double* sa2_abs;
  index_t gi0, gj0;
  abft::CallStats* stats;
};

template <typename T>
void run_pair_tile_abft(void* vctx, long idx) {
  const auto* ctx = static_cast<const AbftPairTileCtx<T>*>(vctx);
  const index_t ir = (static_cast<index_t>(idx) % ctx->mtiles) * kMR;
  const index_t jr = (static_cast<index_t>(idx) / ctx->mtiles) * kNR;
  const index_t mr = std::min(kMR, ctx->mc - ir);
  const index_t nr = std::min(kNR, ctx->nc - jr);
  const index_t aoff = (ir / kMR) * ctx->kc * kMR;
  const index_t boff = (jr / kNR) * ctx->kc * kNR;
  const index_t soff = (ir / kMR) * ctx->kc;

  T tile[kNR * kMR] = {};
  micro_kernel_pair(ctx->kc, ctx->apack1 + aoff, ctx->bpack1 + boff, ctx->apack2 + aoff,
                    ctx->bpack2 + boff, ctx->alpha, tile, kMR, mr, nr);
  if (fault::should_fire(fault::Site::GemmTileCorrupt)) corrupt_value(tile[0]);
  if (!tile_checksum_ok_pair(tile, mr, nr, ctx->kc, ctx->bpack1 + boff,
                             ctx->bpack2 + boff, ctx->alpha, ctx->sa1 + soff,
                             ctx->sa1_abs + soff, ctx->sa2 + soff, ctx->sa2_abs + soff)) {
    std::fill(tile, tile + kNR * kMR, T{});
    micro_kernel_pair(ctx->kc, ctx->apack1 + aoff, ctx->bpack1 + boff,
                      ctx->apack2 + aoff, ctx->bpack2 + boff, ctx->alpha, tile, kMR, mr,
                      nr);
    ctx->stats->record_detection(ctx->gi0 + ir, ctx->gj0 + jr);
  }
  T* cc0 = ctx->cbase + ir + jr * ctx->ldc;
  for (index_t jj = 0; jj < nr; ++jj) {
    T* cc = cc0 + jj * ctx->ldc;
    const T* tcol = tile + jj * kMR;
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += tcol[ii];
  }
}

/// Scale C by beta in place (beta == 0 overwrites, never reads).
template <typename T>
void prescale(T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  for (index_t j = 0; j < n; ++j) {
    T* cj = m > 0 ? &c(0, j) : nullptr;
    if (beta == T{}) {
      for (index_t i = 0; i < m; ++i) cj[i] = T{};
    } else if (beta != T{1}) {
      for (index_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
}

template <bool TA, bool TB, typename T, typename FA, typename FB>
void gemm_packed_impl(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c,
                      index_t m, index_t n, index_t k, const FA& fa, const FB& fb,
                      abft::CallStats* abft_stats) {
  PackBuffers<T>& bufs = pack_buffers<T>();
  const bool pooled = blas::detail::use_gemm_pool(m, n, k);
  AbftBuffers* ab = abft_stats != nullptr ? &abft_buffers() : nullptr;

  for (index_t j0 = 0; j0 < n; j0 += kNC) {
    const index_t nc = std::min(kNC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += kKC) {
      const index_t kc = std::min(kKC, k - k0);
      pack_b_block<TB>(b, k0, j0, kc, nc, bufs.b.data(), fb);
      for (index_t i0 = 0; i0 < m; i0 += kMC) {
        const index_t mc = std::min(kMC, m - i0);
        pack_a_block<TA>(a, i0, k0, mc, kc, bufs.a.data(), fa);
        const index_t mtiles = (mc + kMR - 1) / kMR;
        const long ntiles = static_cast<long>(mtiles) * ((nc + kNR - 1) / kNR);
        if (abft_stats == nullptr) {
          TileCtx<T> ctx{bufs.a.data(), bufs.b.data(), alpha, &c(i0, j0), c.ld(),
                         mc,            nc,            kc,    mtiles};
          dispatch_tiles(ntiles, pooled, &run_tile<T>, &ctx);
        } else {
          compute_a_checksums(bufs.a.data(), mc, kc, ab->sa.data(), ab->sa_abs.data());
          AbftTileCtx<T> ctx{bufs.a.data(), bufs.b.data(), alpha,
                             &c(i0, j0),    c.ld(),        mc,
                             nc,            kc,            mtiles,
                             ab->sa.data(), ab->sa_abs.data(),
                             i0,            j0,            abft_stats};
          dispatch_tiles(ntiles, pooled, &run_tile_abft<T>, &ctx);
          abft_stats->checked += ntiles;
        }
      }
    }
  }
}

template <bool TA, bool TB, typename T, typename FA, typename FSplit>
void gemm_packed_split_b_impl(ConstMatrixView<T> a, ConstMatrixView<T> b, MatrixView<T> c0,
                              MatrixView<T> c1, index_t m, index_t n, index_t k,
                              const FA& fa, const FSplit& split,
                              abft::CallStats* abft_stats) {
  PackBuffers<T>& bufs = pack_buffers<T>();
  const bool pooled = blas::detail::use_gemm_pool(m, n, k);
  AbftBuffers* ab = abft_stats != nullptr ? &abft_buffers() : nullptr;

  for (index_t j0 = 0; j0 < n; j0 += kNC) {
    const index_t nc = std::min(kNC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += kKC) {
      const index_t kc = std::min(kKC, k - k0);
      pack_b_block_split<TB>(b, k0, j0, kc, nc, bufs.b.data(), bufs.b2.data(), split);
      for (index_t i0 = 0; i0 < m; i0 += kMC) {
        const index_t mc = std::min(kMC, m - i0);
        pack_a_block<TA>(a, i0, k0, mc, kc, bufs.a.data(), fa);
        const index_t mtiles = (mc + kMR - 1) / kMR;
        const long ntiles = static_cast<long>(mtiles) * ((nc + kNR - 1) / kNR);
        if (abft_stats == nullptr) {
          SplitTileCtx<T> ctx{bufs.a.data(), bufs.b.data(), bufs.b2.data(),
                              &c0(i0, j0),   c0.ld(),       &c1(i0, j0),
                              c1.ld(),       mc,            nc,
                              kc,            mtiles};
          dispatch_tiles(ntiles, pooled, &run_split_tile<T>, &ctx);
        } else {
          compute_a_checksums(bufs.a.data(), mc, kc, ab->sa.data(), ab->sa_abs.data());
          AbftSplitTileCtx<T> ctx{bufs.a.data(), bufs.b.data(), bufs.b2.data(),
                                  &c0(i0, j0),   c0.ld(),       &c1(i0, j0),
                                  c1.ld(),       mc,            nc,
                                  kc,            mtiles,        ab->sa.data(),
                                  ab->sa_abs.data(), i0,        j0,
                                  abft_stats};
          dispatch_tiles(ntiles, pooled, &run_split_tile_abft<T>, &ctx);
          abft_stats->checked += 2 * ntiles;  // head and tail product per tile
        }
      }
    }
  }
}

}  // namespace packed

/// C = alpha * op(A) * op(B) + beta * C through the packed pipeline, with
/// fa/fb applied per element of A/B during packing. All four trans
/// combinations run the same micro-kernel with zero intermediate matrices.
/// Does not count flops — callers own their FlopCounter accounting.
template <typename T, typename FA = IdentityTransform, typename FB = IdentityTransform>
void gemm_packed(Trans transa, Trans transb, T alpha, ConstMatrixView<T> a,
                 ConstMatrixView<T> b, T beta, MatrixView<T> c, const FA& fa = FA{},
                 const FB& fb = FB{}) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t ka = (transa == Trans::No) ? a.cols() : a.rows();
  const index_t ma = (transa == Trans::No) ? a.rows() : a.cols();
  const index_t kb = (transb == Trans::No) ? b.rows() : b.cols();
  const index_t nb = (transb == Trans::No) ? b.cols() : b.rows();
  TCEVD_CHECK(ma == m && nb == n && ka == kb, "gemm shape mismatch");
  if (m == 0 || n == 0) return;
  packed::prescale(beta, c);
  if (ka == 0 || alpha == T{}) return;
  simd::detail::record_dispatch(simd::active_level());

  abft::CallStats stats;
  abft::CallStats* sp = abft::enabled() ? &stats : nullptr;
  if (transa == Trans::No && transb == Trans::No)
    packed::gemm_packed_impl<false, false>(alpha, a, b, c, m, n, ka, fa, fb, sp);
  else if (transa == Trans::Yes && transb == Trans::No)
    packed::gemm_packed_impl<true, false>(alpha, a, b, c, m, n, ka, fa, fb, sp);
  else if (transa == Trans::No && transb == Trans::Yes)
    packed::gemm_packed_impl<false, true>(alpha, a, b, c, m, n, ka, fa, fb, sp);
  else
    packed::gemm_packed_impl<true, true>(alpha, a, b, c, m, n, ka, fa, fb, sp);
  if (sp != nullptr) abft::finish_call(stats, "gemm");
}

/// EC-TC first sweep: C0 = op(A)·head(op(B)) and C1 = op(A)·tail(op(B)) in
/// ONE pass over B — split(v, head, tail) runs once per B element while
/// packing. Both products accumulate exactly as their standalone gemms would,
/// so results are bitwise-identical to materializing head/tail copies first.
/// Overwrites C0 and C1. Does not count flops.
template <typename T, typename FA, typename FSplit>
void gemm_packed_split_b(Trans transa, Trans transb, ConstMatrixView<T> a,
                         ConstMatrixView<T> b, MatrixView<T> c0, MatrixView<T> c1,
                         const FA& fa, const FSplit& split) {
  const index_t m = c0.rows();
  const index_t n = c0.cols();
  const index_t ka = (transa == Trans::No) ? a.cols() : a.rows();
  const index_t ma = (transa == Trans::No) ? a.rows() : a.cols();
  const index_t kb = (transb == Trans::No) ? b.rows() : b.cols();
  const index_t nb = (transb == Trans::No) ? b.cols() : b.rows();
  TCEVD_CHECK(ma == m && nb == n && ka == kb, "gemm shape mismatch");
  TCEVD_CHECK(c1.rows() == m && c1.cols() == n, "split gemm accumulator shape mismatch");
  if (m == 0 || n == 0) return;
  packed::prescale(T{}, c0);
  packed::prescale(T{}, c1);
  if (ka == 0) return;
  simd::detail::record_dispatch(simd::active_level());

  abft::CallStats stats;
  abft::CallStats* sp = abft::enabled() ? &stats : nullptr;
  if (transa == Trans::No && transb == Trans::No)
    packed::gemm_packed_split_b_impl<false, false>(a, b, c0, c1, m, n, ka, fa, split, sp);
  else if (transa == Trans::Yes && transb == Trans::No)
    packed::gemm_packed_split_b_impl<true, false>(a, b, c0, c1, m, n, ka, fa, split, sp);
  else if (transa == Trans::No && transb == Trans::Yes)
    packed::gemm_packed_split_b_impl<false, true>(a, b, c0, c1, m, n, ka, fa, split, sp);
  else
    packed::gemm_packed_split_b_impl<true, true>(a, b, c0, c1, m, n, ka, fa, split, sp);
  if (sp != nullptr) abft::finish_call(stats, "gemm.split_b");
}

/// C += alpha * (A1·B1ᵀ + A2·B2ᵀ) with the paired micro-kernel (both
/// accumulators carried per k-step, summed on the final add). tc_syr2k's
/// packed path: A1/A2 and B1/B2 get fa/fb applied during packing. The caller
/// prescales C. Does not count flops.
template <typename T, typename FA, typename FB>
void gemm_packed_nt_pair(T alpha, ConstMatrixView<T> a1, ConstMatrixView<T> b1,
                         ConstMatrixView<T> a2, ConstMatrixView<T> b2, MatrixView<T> c,
                         const FA& fa, const FB& fb) {
  using namespace packed;
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a1.cols();
  TCEVD_CHECK(a1.rows() == m && a2.rows() == m && a2.cols() == k,
              "pair gemm A shape mismatch");
  TCEVD_CHECK(b1.rows() == n && b1.cols() == k && b2.rows() == n && b2.cols() == k,
              "pair gemm B shape mismatch");
  if (m == 0 || n == 0 || k == 0 || alpha == T{}) return;
  simd::detail::record_dispatch(simd::active_level());

  PackBuffers<T>& bufs = pack_buffers<T>();
  const bool pooled = blas::detail::use_gemm_pool(m, n, k);
  abft::CallStats stats;
  abft::CallStats* sp = abft::enabled() ? &stats : nullptr;
  packed::AbftBuffers* ab = sp != nullptr ? &packed::abft_buffers() : nullptr;

  for (index_t j0 = 0; j0 < n; j0 += kNC) {
    const index_t nc = std::min(kNC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += kKC) {
      const index_t kc = std::min(kKC, k - k0);
      pack_b_block<true>(b1, k0, j0, kc, nc, bufs.b.data(), fb);
      pack_b_block<true>(b2, k0, j0, kc, nc, bufs.b2.data(), fb);
      for (index_t i0 = 0; i0 < m; i0 += kMC) {
        const index_t mc = std::min(kMC, m - i0);
        pack_a_block<false>(a1, i0, k0, mc, kc, bufs.a.data(), fa);
        pack_a_block<false>(a2, i0, k0, mc, kc, bufs.a2.data(), fa);
        const index_t mtiles = (mc + kMR - 1) / kMR;
        const long ntiles = static_cast<long>(mtiles) * ((nc + kNR - 1) / kNR);
        if (sp == nullptr) {
          PairTileCtx<T> ctx{bufs.a.data(), bufs.b.data(), bufs.a2.data(), bufs.b2.data(),
                             alpha,         &c(i0, j0),    c.ld(),         mc,
                             nc,            kc,            mtiles};
          dispatch_tiles(ntiles, pooled, &run_pair_tile<T>, &ctx);
        } else {
          packed::compute_a_checksums(bufs.a.data(), mc, kc, ab->sa.data(),
                                      ab->sa_abs.data());
          packed::compute_a_checksums(bufs.a2.data(), mc, kc, ab->sa2.data(),
                                      ab->sa2_abs.data());
          packed::AbftPairTileCtx<T> ctx{bufs.a.data(),  bufs.b.data(),
                                         bufs.a2.data(), bufs.b2.data(),
                                         alpha,          &c(i0, j0),
                                         c.ld(),         mc,
                                         nc,             kc,
                                         mtiles,         ab->sa.data(),
                                         ab->sa_abs.data(), ab->sa2.data(),
                                         ab->sa2_abs.data(), i0,
                                         j0,             sp};
          dispatch_tiles(ntiles, pooled, &packed::run_pair_tile_abft<T>, &ctx);
          sp->checked += ntiles;
        }
      }
    }
  }
  if (sp != nullptr) abft::finish_call(stats, "syr2k");
}

}  // namespace blas
}  // namespace tcevd
