#include "src/blas/gemm_threading.hpp"

#include <atomic>

#include "src/common/thread_pool.hpp"

namespace tcevd {
namespace blas {

namespace {

thread_local int t_serial_depth = 0;
std::atomic<std::uint64_t> g_pool_dispatches{0};

// 2*m*n*k below this stays serial: a broadcast round-trip (wake + join) costs
// a few microseconds, which only pays for itself on multi-Mflop calls.
constexpr double kPoolFlopFloor = 4.0 * 1024.0 * 1024.0;

}  // namespace

SerialGemmScope::SerialGemmScope() noexcept { ++t_serial_depth; }
SerialGemmScope::~SerialGemmScope() { --t_serial_depth; }

bool gemm_serial_forced() noexcept { return t_serial_depth > 0; }

std::uint64_t gemm_pool_dispatches() noexcept {
  return g_pool_dispatches.load(std::memory_order_relaxed);
}

namespace detail {

bool use_gemm_pool(index_t m, index_t n, index_t k) noexcept {
  if (ThreadPool::on_worker_thread() || gemm_serial_forced()) return false;
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  return flops >= kPoolFlopFloor;
}

void count_gemm_pool_dispatch() noexcept {
  g_pool_dispatches.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace blas
}  // namespace tcevd
