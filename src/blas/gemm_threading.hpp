// Threading policy for the packed GEMM macro-kernel.
//
// The packed GEMM (gemm_packed.hpp) fans its macro-tile loop out on the
// process-wide gemm_pool() — but only when doing so cannot oversubscribe the
// machine. The composition contract has three layers:
//
//   1. ThreadPool::on_worker_thread(): a GEMM issued from inside ANY pool
//      worker (solve_many batch workers, the look-ahead run_pair task) takes
//      the serial tile loop. The batch/overlap pools own the parallelism
//      budget at their level; GEMM-level threads stand down underneath them.
//   2. SerialGemmScope: an RAII guard for caller threads that are not pool
//      workers but still co-run with pool work — e.g. the look-ahead inline
//      task, which runs on the main thread while its sibling drains the
//      trailing update on overlap_pool(). Entering the scope forces the
//      serial tile loop on this thread until the scope exits (nestable).
//   3. A size floor: tiny GEMMs (2mnk below ~4 Mflop) are not worth a
//      broadcast round-trip and stay serial regardless.
//
// Determinism: pooling never changes results. Tiles are disjoint C blocks and
// the per-tile fp32 accumulation order is identical to the serial loop, so
// pooled output is bitwise-identical to serial output.
#pragma once

#include <cstdint>

#include "src/common/matrix.hpp"

namespace tcevd {
namespace blas {

/// RAII guard forcing the serial tile loop for every gemm issued on this
/// thread while the scope is alive. Nestable: the serial force lifts when the
/// outermost scope exits.
class SerialGemmScope {
 public:
  SerialGemmScope() noexcept;
  ~SerialGemmScope();
  SerialGemmScope(const SerialGemmScope&) = delete;
  SerialGemmScope& operator=(const SerialGemmScope&) = delete;
};

/// True while any SerialGemmScope is alive on the calling thread.
bool gemm_serial_forced() noexcept;

/// Process-wide count of macro-tile fan-outs dispatched onto gemm_pool()
/// (a large gemm contributes one per macro block that actually broadcast).
/// Test hook: stress tests assert this stays flat while nested (solve_many /
/// look-ahead) GEMMs run, proving the stand-down contract holds.
std::uint64_t gemm_pool_dispatches() noexcept;

namespace detail {

/// Decide whether this gemm call may fan out on gemm_pool(): not nested under
/// a pool worker, not inside a SerialGemmScope, and big enough to amortize
/// the broadcast round-trip.
bool use_gemm_pool(index_t m, index_t n, index_t k) noexcept;

/// Bump the gemm_pool_dispatches() counter. Called once per macro-tile
/// broadcast actually dispatched onto gemm_pool() — a large gemm contributes
/// one per macro block, matching the gemm_pool_dispatches() doc above.
void count_gemm_pool_dispatch() noexcept;

}  // namespace detail
}  // namespace blas
}  // namespace tcevd
