#include <cmath>

#include "src/blas/blas.hpp"

namespace tcevd::blas {

template <typename T>
T dot(index_t n, const T* x, index_t incx, const T* y, index_t incy) {
  T s{};
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  } else {
    for (index_t i = 0; i < n; ++i) s += x[i * incx] * y[i * incy];
  }
  return s;
}

template <typename T>
T nrm2(index_t n, const T* x, index_t incx) {
  // Scaled two-pass-free algorithm (LAPACK dnrm2 style) to avoid overflow /
  // underflow of squared intermediates.
  T scale{};
  T ssq{1};
  for (index_t i = 0; i < n; ++i) {
    const T v = x[i * incx];
    if (v != T{}) {
      const T a = std::abs(v);
      if (scale < a) {
        const T r = scale / a;
        ssq = T{1} + ssq * r * r;
        scale = a;
      } else {
        const T r = a / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

template <typename T>
void axpy(index_t n, T alpha, const T* x, index_t incx, T* y, index_t incy) {
  if (alpha == T{}) return;
  if (incx == 1 && incy == 1) {
    for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  } else {
    for (index_t i = 0; i < n; ++i) y[i * incy] += alpha * x[i * incx];
  }
}

template <typename T>
void scal(index_t n, T alpha, T* x, index_t incx) {
  if (incx == 1) {
    for (index_t i = 0; i < n; ++i) x[i] *= alpha;
  } else {
    for (index_t i = 0; i < n; ++i) x[i * incx] *= alpha;
  }
}

template <typename T>
void copy(index_t n, const T* x, index_t incx, T* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) y[i * incy] = x[i * incx];
}

template <typename T>
void swap(index_t n, T* x, index_t incx, T* y, index_t incy) {
  for (index_t i = 0; i < n; ++i) std::swap(x[i * incx], y[i * incy]);
}

template <typename T>
index_t iamax(index_t n, const T* x, index_t incx) {
  if (n <= 0) return -1;
  index_t best = 0;
  T best_v = std::abs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const T v = std::abs(x[i * incx]);
    if (v > best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

#define TCEVD_L1_INST(T)                                                  \
  template T dot<T>(index_t, const T*, index_t, const T*, index_t);       \
  template T nrm2<T>(index_t, const T*, index_t);                        \
  template void axpy<T>(index_t, T, const T*, index_t, T*, index_t);     \
  template void scal<T>(index_t, T, T*, index_t);                        \
  template void copy<T>(index_t, const T*, index_t, T*, index_t);        \
  template void swap<T>(index_t, T*, index_t, T*, index_t);              \
  template index_t iamax<T>(index_t, const T*, index_t);

TCEVD_L1_INST(float)
TCEVD_L1_INST(double)
#undef TCEVD_L1_INST

}  // namespace tcevd::blas
