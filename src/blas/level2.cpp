#include "src/blas/blas.hpp"

namespace tcevd::blas {

template <typename T>
void gemv(Trans trans, T alpha, ConstMatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (trans == Trans::No) {
    // y (m) = alpha * A x + beta * y: column-oriented axpy sweep.
    if (beta != T{1}) scal(m, beta, y, incy);
    for (index_t j = 0; j < n; ++j) {
      const T t = alpha * x[j * incx];
      if (t == T{}) continue;
      if (incy == 1) {
        const T* aj = &a(0, j);
        for (index_t i = 0; i < m; ++i) y[i] += t * aj[i];
      } else {
        for (index_t i = 0; i < m; ++i) y[i * incy] += t * a(i, j);
      }
    }
  } else {
    // y (n) = alpha * A^T x + beta * y: dot per column.
    for (index_t j = 0; j < n; ++j) {
      T s{};
      if (incx == 1) {
        const T* aj = &a(0, j);
        for (index_t i = 0; i < m; ++i) s += aj[i] * x[i];
      } else {
        for (index_t i = 0; i < m; ++i) s += a(i, j) * x[i * incx];
      }
      y[j * incy] = alpha * s + beta * y[j * incy];
    }
  }
}

template <typename T>
void ger(T alpha, const T* x, index_t incx, const T* y, index_t incy, MatrixView<T> a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  for (index_t j = 0; j < n; ++j) {
    const T t = alpha * y[j * incy];
    if (t == T{}) continue;
    if (incx == 1) {
      T* aj = &a(0, j);
      for (index_t i = 0; i < m; ++i) aj[i] += t * x[i];
    } else {
      for (index_t i = 0; i < m; ++i) a(i, j) += t * x[i * incx];
    }
  }
}

template <typename T>
void symv(Uplo uplo, T alpha, ConstMatrixView<T> a, const T* x, index_t incx, T beta, T* y,
          index_t incy) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "symv requires square A");
  if (beta != T{1}) scal(n, beta, y, incy);
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      const T xj = x[j * incx];
      T temp2{};
      y[j * incy] += alpha * xj * a(j, j);
      for (index_t i = j + 1; i < n; ++i) {
        const T aij = a(i, j);
        y[i * incy] += alpha * xj * aij;
        temp2 += aij * x[i * incx];
      }
      y[j * incy] += alpha * temp2;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T xj = x[j * incx];
      T temp2{};
      for (index_t i = 0; i < j; ++i) {
        const T aij = a(i, j);
        y[i * incy] += alpha * xj * aij;
        temp2 += aij * x[i * incx];
      }
      y[j * incy] += alpha * (xj * a(j, j) + temp2);
    }
  }
}

template <typename T>
void syr2(Uplo uplo, T alpha, const T* x, index_t incx, const T* y, index_t incy,
          MatrixView<T> a) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "syr2 requires square A");
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      const T tx = alpha * y[j * incy];
      const T ty = alpha * x[j * incx];
      for (index_t i = j; i < n; ++i) a(i, j) += x[i * incx] * tx + y[i * incy] * ty;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T tx = alpha * y[j * incy];
      const T ty = alpha * x[j * incx];
      for (index_t i = 0; i <= j; ++i) a(i, j) += x[i * incx] * tx + y[i * incy] * ty;
    }
  }
}

template <typename T>
void trmv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a, T* x, index_t incx) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "trmv requires square A");
  const bool unit = diag == Diag::Unit;
  if (trans == Trans::No) {
    if (uplo == Uplo::Lower) {
      // x_i depends on x_0..x_i: sweep bottom-up.
      for (index_t i = n - 1; i >= 0; --i) {
        T s = unit ? x[i * incx] : a(i, i) * x[i * incx];
        for (index_t j = 0; j < i; ++j) s += a(i, j) * x[j * incx];
        x[i * incx] = s;
      }
    } else {
      for (index_t i = 0; i < n; ++i) {
        T s = unit ? x[i * incx] : a(i, i) * x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s += a(i, j) * x[j * incx];
        x[i * incx] = s;
      }
    }
  } else {
    if (uplo == Uplo::Lower) {
      // (A^T x)_i = sum_{j>=i} a(j,i) x_j: sweep top-down.
      for (index_t i = 0; i < n; ++i) {
        T s = unit ? x[i * incx] : a(i, i) * x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s += a(j, i) * x[j * incx];
        x[i * incx] = s;
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T s = unit ? x[i * incx] : a(i, i) * x[i * incx];
        for (index_t j = 0; j < i; ++j) s += a(j, i) * x[j * incx];
        x[i * incx] = s;
      }
    }
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstMatrixView<T> a, T* x, index_t incx) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "trsv requires square A");
  const bool unit = diag == Diag::Unit;
  if (trans == Trans::No) {
    if (uplo == Uplo::Lower) {
      for (index_t i = 0; i < n; ++i) {
        T s = x[i * incx];
        for (index_t j = 0; j < i; ++j) s -= a(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / a(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        T s = x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j * incx];
        x[i * incx] = unit ? s : s / a(i, i);
      }
    }
  } else {
    if (uplo == Uplo::Lower) {
      for (index_t i = n - 1; i >= 0; --i) {
        T s = x[i * incx];
        for (index_t j = i + 1; j < n; ++j) s -= a(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / a(i, i);
      }
    } else {
      for (index_t i = 0; i < n; ++i) {
        T s = x[i * incx];
        for (index_t j = 0; j < i; ++j) s -= a(j, i) * x[j * incx];
        x[i * incx] = unit ? s : s / a(i, i);
      }
    }
  }
}

#define TCEVD_L2_INST(T)                                                                 \
  template void gemv<T>(Trans, T, ConstMatrixView<T>, const T*, index_t, T, T*, index_t); \
  template void ger<T>(T, const T*, index_t, const T*, index_t, MatrixView<T>);           \
  template void symv<T>(Uplo, T, ConstMatrixView<T>, const T*, index_t, T, T*, index_t);  \
  template void syr2<T>(Uplo, T, const T*, index_t, const T*, index_t, MatrixView<T>);    \
  template void trmv<T>(Uplo, Trans, Diag, ConstMatrixView<T>, T*, index_t);              \
  template void trsv<T>(Uplo, Trans, Diag, ConstMatrixView<T>, T*, index_t);

TCEVD_L2_INST(float)
TCEVD_L2_INST(double)
#undef TCEVD_L2_INST

}  // namespace tcevd::blas
