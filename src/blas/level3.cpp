#include <memory>

#include "src/blas/blas.hpp"

namespace tcevd::blas {

namespace {

// Packed, register-blocked C = alpha * A * B + beta * C (BLIS-style).
//
// A is packed into MR-row panels and B into NR-column panels so the
// micro-kernel streams contiguous memory and keeps an MR x NR accumulator
// in registers; MC/KC/NC blocking keeps the packed panels cache-resident.
inline constexpr index_t kMR = 8;
inline constexpr index_t kNR = 4;
inline constexpr index_t kMC = 128;
inline constexpr index_t kKC = 256;
inline constexpr index_t kNC = 1024;

/// A(i0:i0+mc, k0:k0+kc) -> MR-row panels, k-major within each panel.
template <typename T>
void pack_a_block(ConstMatrixView<T> a, index_t i0, index_t k0, index_t mc, index_t kc,
                  T* buf) {
  for (index_t p = 0; p < mc; p += kMR) {
    const index_t mr = std::min(kMR, mc - p);
    for (index_t k = 0; k < kc; ++k) {
      const T* col = &a(i0 + p, k0 + k);
      index_t r = 0;
      for (; r < mr; ++r) buf[r] = col[r];
      for (; r < kMR; ++r) buf[r] = T{};
      buf += kMR;
    }
  }
}

/// B(k0:k0+kc, j0:j0+nc) -> NR-column panels, k-major within each panel.
template <typename T>
void pack_b_block(ConstMatrixView<T> b, index_t k0, index_t j0, index_t kc, index_t nc,
                  T* buf) {
  for (index_t q = 0; q < nc; q += kNR) {
    const index_t nr = std::min(kNR, nc - q);
    for (index_t k = 0; k < kc; ++k) {
      index_t cidx = 0;
      for (; cidx < nr; ++cidx) buf[cidx] = b(k0 + k, j0 + q + cidx);
      for (; cidx < kNR; ++cidx) buf[cidx] = T{};
      buf += kNR;
    }
  }
}

/// acc(MR x NR) += sum_k apanel(:, k) bpanel(k, :); then C += alpha * acc.
template <typename T>
void micro_kernel(index_t kc, const T* ap, const T* bp, T alpha, T* c0, index_t ldc,
                  index_t mr, index_t nr) {
  T acc[kNR][kMR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* arow = ap + k * kMR;
    const T* brow = bp + k * kNR;
    for (index_t jj = 0; jj < kNR; ++jj) {
      const T bv = brow[jj];
      for (index_t ii = 0; ii < kMR; ++ii) acc[jj][ii] += arow[ii] * bv;
    }
  }
  for (index_t jj = 0; jj < nr; ++jj) {
    T* cc = c0 + jj * ldc;
    for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * acc[jj][ii];
  }
}

template <typename T>
void gemm_nn(T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();

  // Pre-scale C once; all panel updates then accumulate.
  for (index_t j = 0; j < n; ++j) {
    T* cj = &c(0, j);
    if (beta == T{}) {
      for (index_t i = 0; i < m; ++i) cj[i] = T{};
    } else if (beta != T{1}) {
      for (index_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == T{} || k == 0) return;

  std::vector<T> apack(static_cast<std::size_t>(kMC + kMR) * kKC);
  std::vector<T> bpack(static_cast<std::size_t>(kKC) * (kNC + kNR));

  for (index_t j0 = 0; j0 < n; j0 += kNC) {
    const index_t nc = std::min(kNC, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += kKC) {
      const index_t kc = std::min(kKC, k - k0);
      pack_b_block(b, k0, j0, kc, nc, bpack.data());
      for (index_t i0 = 0; i0 < m; i0 += kMC) {
        const index_t mc = std::min(kMC, m - i0);
        pack_a_block(a, i0, k0, mc, kc, apack.data());
#pragma omp parallel for schedule(static) if (nc > 4 * kNR && mc * kc > 16384)
        for (index_t jr = 0; jr < nc; jr += kNR) {
          const index_t nr = std::min(kNR, nc - jr);
          const T* bp = bpack.data() + (jr / kNR) * kc * kNR;
          for (index_t ir = 0; ir < mc; ir += kMR) {
            const index_t mr = std::min(kMR, mc - ir);
            const T* ap = apack.data() + (ir / kMR) * kc * kMR;
            micro_kernel(kc, ap, bp, alpha, &c(i0 + ir, j0 + jr), c.ld(), mr, nr);
          }
        }
      }
    }
  }
}

/// Pack op(X) into a fresh column-major matrix.
template <typename T>
Matrix<T> pack_op(Trans trans, ConstMatrixView<T> x) {
  if (trans == Trans::No) {
    Matrix<T> out(x.rows(), x.cols());
    copy_matrix(x, out.view());
    return out;
  }
  Matrix<T> out(x.cols(), x.rows());
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) out(j, i) = x(i, j);
  return out;
}

/// Element of op(A) for triangular routines.
template <typename T>
inline T op_elem(Trans trans, ConstMatrixView<T> a, index_t i, index_t j) {
  return trans == Trans::No ? a(i, j) : a(j, i);
}

/// True when op(A) is lower triangular.
inline bool op_is_lower(Uplo uplo, Trans trans) {
  return (uplo == Uplo::Lower) == (trans == Trans::No);
}

}  // namespace

template <typename T>
void gemm(Trans transa, Trans transb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t ka = (transa == Trans::No) ? a.cols() : a.rows();
  const index_t ma = (transa == Trans::No) ? a.rows() : a.cols();
  const index_t kb = (transb == Trans::No) ? b.rows() : b.cols();
  const index_t nb = (transb == Trans::No) ? b.cols() : b.rows();
  TCEVD_CHECK(ma == m && nb == n && ka == kb, "gemm shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, ka));
  if (m == 0 || n == 0) return;
  if (ka == 0 || alpha == T{}) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
    return;
  }

  if (transa == Trans::No && transb == Trans::No) {
    gemm_nn(alpha, a, b, beta, c);
    return;
  }
  if (transa == Trans::Yes && transb == Trans::No) {
    // C = alpha A^T B + beta C: dot-product kernel, columns of A and B are
    // both contiguous so no packing is needed.
#pragma omp parallel for schedule(static) if (n > 64 && m > 64)
    for (index_t j = 0; j < n; ++j) {
      const T* bj = &b(0, j);
      for (index_t i = 0; i < m; ++i) {
        const T* ai = &a(0, i);
        T s{};
        for (index_t l = 0; l < ka; ++l) s += ai[l] * bj[l];
        c(i, j) = alpha * s + ((beta == T{}) ? T{} : beta * c(i, j));
      }
    }
    return;
  }
  // Remaining cases transpose B: pack op(B) once and run the NN kernel.
  Matrix<T> bp = pack_op(transb, b);
  if (transa == Trans::No) {
    gemm_nn<T>(alpha, a, bp.view(), beta, c);
  } else {
    Matrix<T> ap = pack_op(transa, a);
    gemm_nn<T>(alpha, ap.view(), bp.view(), beta, c);
  }
}

template <typename T>
void symm(Side side, Uplo uplo, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "symm symmetric factor must be square");
  if (side == Side::Left) {
    TCEVD_CHECK(b.rows() == m && b.cols() == n, "symm shape mismatch");
  } else {
    TCEVD_CHECK(b.rows() == m && b.cols() == n, "symm shape mismatch");
  }
  FlopCounter::instance().add(gemm_flops(m, n, na));

  // Element of the symmetric A from its stored triangle.
  auto ae = [&](index_t i, index_t j) {
    if (uplo == Uplo::Lower) return (i >= j) ? a(i, j) : a(j, i);
    return (i <= j) ? a(i, j) : a(j, i);
  };

  if (side == Side::Left) {
    // C(:, j) = alpha * A * B(:, j) + beta * C(:, j), column-wise symv-like.
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        T s{};
        for (index_t l = 0; l < m; ++l) s += ae(i, l) * b(l, j);
        c(i, j) = alpha * s + ((beta == T{}) ? T{} : beta * c(i, j));
      }
    }
  } else {
    // C = alpha * B * A + beta * C.
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        T s{};
        for (index_t l = 0; l < n; ++l) s += b(i, l) * ae(l, j);
        c(i, j) = alpha * s + ((beta == T{}) ? T{} : beta * c(i, j));
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  TCEVD_CHECK(c.cols() == n, "syrk requires square C");
  TCEVD_CHECK(((trans == Trans::No) ? a.rows() : a.cols()) == n, "syrk shape mismatch");
  FlopCounter::instance().add(gemm_flops(n, n, k) / 2);

  auto elem = [&](index_t i, index_t l) { return trans == Trans::No ? a(i, l) : a(l, i); };
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T t = alpha * elem(j, l);
        if (t == T{}) continue;
        for (index_t i = j; i < n; ++i) c(i, j) += t * elem(i, l);
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i <= j; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T t = alpha * elem(j, l);
        if (t == T{}) continue;
        for (index_t i = 0; i <= j; ++i) c(i, j) += t * elem(i, l);
      }
    }
  }
}

template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
           MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  TCEVD_CHECK(c.cols() == n, "syr2k requires square C");
  FlopCounter::instance().add(gemm_flops(n, n, k));

  auto ae = [&](index_t i, index_t l) { return trans == Trans::No ? a(i, l) : a(l, i); };
  auto be = [&](index_t i, index_t l) { return trans == Trans::No ? b(i, l) : b(l, i); };
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T ta = alpha * be(j, l);
        const T tb = alpha * ae(j, l);
        if (ta == T{} && tb == T{}) continue;
        for (index_t i = j; i < n; ++i) c(i, j) += ae(i, l) * ta + be(i, l) * tb;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i <= j; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T ta = alpha * be(j, l);
        const T tb = alpha * ae(j, l);
        if (ta == T{} && tb == T{}) continue;
        for (index_t i = 0; i <= j; ++i) c(i, j) += ae(i, l) * ta + be(i, l) * tb;
      }
    }
  }
}

template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "trmm triangular factor shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, na) / 2);
  const bool unit = diag == Diag::Unit;
  const bool lower = op_is_lower(uplo, trans);

  if (side == Side::Left) {
    // B(:,j) = alpha * op(A) * B(:,j), in place per column.
    for (index_t j = 0; j < n; ++j) {
      if (lower) {
        for (index_t i = m - 1; i >= 0; --i) {
          T s = unit ? b(i, j) : op_elem(trans, a, i, i) * b(i, j);
          for (index_t l = 0; l < i; ++l) s += op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = alpha * s;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : op_elem(trans, a, i, i) * b(i, j);
          for (index_t l = i + 1; l < m; ++l) s += op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = alpha * s;
        }
      }
    }
  } else {
    // B = alpha * B * op(A). Column j of the result mixes columns l of B with
    // l <= j (op(A) upper) or l >= j (op(A) lower); order the sweep so source
    // columns are still unmodified when read.
    if (lower) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : b(i, j) * op_elem(trans, a, j, j);
          for (index_t l = j + 1; l < n; ++l) s += b(i, l) * op_elem(trans, a, l, j);
          b(i, j) = alpha * s;
        }
      }
    } else {
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : b(i, j) * op_elem(trans, a, j, j);
          for (index_t l = 0; l < j; ++l) s += b(i, l) * op_elem(trans, a, l, j);
          b(i, j) = alpha * s;
        }
      }
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "trsm triangular factor shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, na) / 2);
  const bool unit = diag == Diag::Unit;
  const bool lower = op_is_lower(uplo, trans);

  if (alpha != T{1}) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) *= alpha;
  }

  if (side == Side::Left) {
    // Solve op(A) X = B column by column (forward for lower, backward for upper).
    for (index_t j = 0; j < n; ++j) {
      if (lower) {
        for (index_t i = 0; i < m; ++i) {
          T s = b(i, j);
          for (index_t l = 0; l < i; ++l) s -= op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = unit ? s : s / op_elem(trans, a, i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T s = b(i, j);
          for (index_t l = i + 1; l < m; ++l) s -= op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = unit ? s : s / op_elem(trans, a, i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B: column j of X needs previously solved columns l with
    // op(A)(l,j) != 0.
    if (lower) {
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t l = j + 1; l < n; ++l) {
          const T t = op_elem(trans, a, l, j);
          if (t == T{}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= t * b(i, l);
        }
        if (!unit) {
          const T d = op_elem(trans, a, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    } else {
      for (index_t j = 0; j < n; ++j) {
        for (index_t l = 0; l < j; ++l) {
          const T t = op_elem(trans, a, l, j);
          if (t == T{}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= t * b(i, l);
        }
        if (!unit) {
          const T d = op_elem(trans, a, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    }
  }
}

#define TCEVD_L3_INST(T)                                                                     \
  template void gemm<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,          \
                        MatrixView<T>);                                                      \
  template void symm<T>(Side, Uplo, T, ConstMatrixView<T>, ConstMatrixView<T>, T,            \
                        MatrixView<T>);                                                      \
  template void syrk<T>(Uplo, Trans, T, ConstMatrixView<T>, T, MatrixView<T>);               \
  template void syr2k<T>(Uplo, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,          \
                         MatrixView<T>);                                                     \
  template void trmm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);      \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);

TCEVD_L3_INST(float)
TCEVD_L3_INST(double)
#undef TCEVD_L3_INST

}  // namespace tcevd::blas
