#include <memory>

#include "src/blas/blas.hpp"
#include "src/blas/gemm_packed.hpp"

namespace tcevd::blas {

namespace {

/// Element of op(A) for triangular routines.
template <typename T>
inline T op_elem(Trans trans, ConstMatrixView<T> a, index_t i, index_t j) {
  return trans == Trans::No ? a(i, j) : a(j, i);
}

/// True when op(A) is lower triangular.
inline bool op_is_lower(Uplo uplo, Trans trans) {
  return (uplo == Uplo::Lower) == (trans == Trans::No);
}

}  // namespace

template <typename T>
void gemm(Trans transa, Trans transb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
          T beta, MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t ka = (transa == Trans::No) ? a.cols() : a.rows();
  const index_t ma = (transa == Trans::No) ? a.rows() : a.cols();
  const index_t kb = (transb == Trans::No) ? b.rows() : b.cols();
  const index_t nb = (transb == Trans::No) ? b.cols() : b.rows();
  TCEVD_CHECK(ma == m && nb == n && ka == kb, "gemm shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, ka));
  // All four trans combinations run the transpose-aware packed pipeline —
  // zero intermediate matrices, pooled over disjoint C tiles when profitable
  // (bitwise-identical to serial; see src/blas/gemm_packed.hpp).
  gemm_packed(transa, transb, alpha, a, b, beta, c);
}

template <typename T>
void symm(Side side, Uplo uplo, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
          MatrixView<T> c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "symm symmetric factor must be square");
  TCEVD_CHECK(b.rows() == m && b.cols() == n, "symm shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, na));

  // Element of the symmetric A from its stored triangle.
  auto ae = [&](index_t i, index_t j) {
    if (uplo == Uplo::Lower) return (i >= j) ? a(i, j) : a(j, i);
    return (i <= j) ? a(i, j) : a(j, i);
  };

  if (side == Side::Left) {
    // C(:, j) = alpha * A * B(:, j) + beta * C(:, j), column-wise symv-like.
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        T s{};
        for (index_t l = 0; l < m; ++l) s += ae(i, l) * b(l, j);
        c(i, j) = alpha * s + ((beta == T{}) ? T{} : beta * c(i, j));
      }
    }
  } else {
    // C = alpha * B * A + beta * C.
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        T s{};
        for (index_t l = 0; l < n; ++l) s += b(i, l) * ae(l, j);
        c(i, j) = alpha * s + ((beta == T{}) ? T{} : beta * c(i, j));
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, T beta, MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  TCEVD_CHECK(c.cols() == n, "syrk requires square C");
  TCEVD_CHECK(((trans == Trans::No) ? a.rows() : a.cols()) == n, "syrk shape mismatch");
  FlopCounter::instance().add(gemm_flops(n, n, k) / 2);

  auto elem = [&](index_t i, index_t l) { return trans == Trans::No ? a(i, l) : a(l, i); };
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T t = alpha * elem(j, l);
        if (t == T{}) continue;
        for (index_t i = j; i < n; ++i) c(i, j) += t * elem(i, l);
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i <= j; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T t = alpha * elem(j, l);
        if (t == T{}) continue;
        for (index_t i = 0; i <= j; ++i) c(i, j) += t * elem(i, l);
      }
    }
  }
}

template <typename T>
void syr2k(Uplo uplo, Trans trans, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
           MatrixView<T> c) {
  const index_t n = c.rows();
  const index_t k = (trans == Trans::No) ? a.cols() : a.rows();
  TCEVD_CHECK(c.cols() == n, "syr2k requires square C");
  FlopCounter::instance().add(gemm_flops(n, n, k));

  auto ae = [&](index_t i, index_t l) { return trans == Trans::No ? a(i, l) : a(l, i); };
  auto be = [&](index_t i, index_t l) { return trans == Trans::No ? b(i, l) : b(l, i); };
  if (uplo == Uplo::Lower) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T ta = alpha * be(j, l);
        const T tb = alpha * ae(j, l);
        if (ta == T{} && tb == T{}) continue;
        for (index_t i = j; i < n; ++i) c(i, j) += ae(i, l) * ta + be(i, l) * tb;
      }
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i <= j; ++i) c(i, j) = (beta == T{}) ? T{} : beta * c(i, j);
      for (index_t l = 0; l < k; ++l) {
        const T ta = alpha * be(j, l);
        const T tb = alpha * ae(j, l);
        if (ta == T{} && tb == T{}) continue;
        for (index_t i = 0; i <= j; ++i) c(i, j) += ae(i, l) * ta + be(i, l) * tb;
      }
    }
  }
}

template <typename T>
void trmm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "trmm triangular factor shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, na) / 2);
  const bool unit = diag == Diag::Unit;
  const bool lower = op_is_lower(uplo, trans);

  if (side == Side::Left) {
    // B(:,j) = alpha * op(A) * B(:,j), in place per column.
    for (index_t j = 0; j < n; ++j) {
      if (lower) {
        for (index_t i = m - 1; i >= 0; --i) {
          T s = unit ? b(i, j) : op_elem(trans, a, i, i) * b(i, j);
          for (index_t l = 0; l < i; ++l) s += op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = alpha * s;
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : op_elem(trans, a, i, i) * b(i, j);
          for (index_t l = i + 1; l < m; ++l) s += op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = alpha * s;
        }
      }
    }
  } else {
    // B = alpha * B * op(A). Column j of the result mixes columns l of B with
    // l <= j (op(A) upper) or l >= j (op(A) lower); order the sweep so source
    // columns are still unmodified when read.
    if (lower) {
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : b(i, j) * op_elem(trans, a, j, j);
          for (index_t l = j + 1; l < n; ++l) s += b(i, l) * op_elem(trans, a, l, j);
          b(i, j) = alpha * s;
        }
      }
    } else {
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t i = 0; i < m; ++i) {
          T s = unit ? b(i, j) : b(i, j) * op_elem(trans, a, j, j);
          for (index_t l = 0; l < j; ++l) s += b(i, l) * op_elem(trans, a, l, j);
          b(i, j) = alpha * s;
        }
      }
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstMatrixView<T> a,
          MatrixView<T> b) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  const index_t na = (side == Side::Left) ? m : n;
  TCEVD_CHECK(a.rows() == na && a.cols() == na, "trsm triangular factor shape mismatch");
  FlopCounter::instance().add(gemm_flops(m, n, na) / 2);
  const bool unit = diag == Diag::Unit;
  const bool lower = op_is_lower(uplo, trans);

  if (alpha != T{1}) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i) b(i, j) *= alpha;
  }

  if (side == Side::Left) {
    // Solve op(A) X = B column by column (forward for lower, backward for upper).
    for (index_t j = 0; j < n; ++j) {
      if (lower) {
        for (index_t i = 0; i < m; ++i) {
          T s = b(i, j);
          for (index_t l = 0; l < i; ++l) s -= op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = unit ? s : s / op_elem(trans, a, i, i);
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T s = b(i, j);
          for (index_t l = i + 1; l < m; ++l) s -= op_elem(trans, a, i, l) * b(l, j);
          b(i, j) = unit ? s : s / op_elem(trans, a, i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B: column j of X needs previously solved columns l with
    // op(A)(l,j) != 0.
    if (lower) {
      for (index_t j = n - 1; j >= 0; --j) {
        for (index_t l = j + 1; l < n; ++l) {
          const T t = op_elem(trans, a, l, j);
          if (t == T{}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= t * b(i, l);
        }
        if (!unit) {
          const T d = op_elem(trans, a, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    } else {
      for (index_t j = 0; j < n; ++j) {
        for (index_t l = 0; l < j; ++l) {
          const T t = op_elem(trans, a, l, j);
          if (t == T{}) continue;
          for (index_t i = 0; i < m; ++i) b(i, j) -= t * b(i, l);
        }
        if (!unit) {
          const T d = op_elem(trans, a, j, j);
          for (index_t i = 0; i < m; ++i) b(i, j) /= d;
        }
      }
    }
  }
}

#define TCEVD_L3_INST(T)                                                                     \
  template void gemm<T>(Trans, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,          \
                        MatrixView<T>);                                                      \
  template void symm<T>(Side, Uplo, T, ConstMatrixView<T>, ConstMatrixView<T>, T,            \
                        MatrixView<T>);                                                      \
  template void syrk<T>(Uplo, Trans, T, ConstMatrixView<T>, T, MatrixView<T>);               \
  template void syr2k<T>(Uplo, Trans, T, ConstMatrixView<T>, ConstMatrixView<T>, T,          \
                         MatrixView<T>);                                                     \
  template void trmm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);      \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstMatrixView<T>, MatrixView<T>);

TCEVD_L3_INST(float)
TCEVD_L3_INST(double)
#undef TCEVD_L3_INST

}  // namespace tcevd::blas
