#include "src/blas/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/blas/gemm_microkernel_scalar.hpp"
#include "src/blas/simd_kernels_avx2.hpp"
#include "src/common/half.hpp"

namespace tcevd {
namespace blas {
namespace simd {

namespace {

struct Resolution {
  KernelTable table;
  const char* reason = "not yet resolved";
};

std::mutex g_resolve_mutex;
Resolution g_resolution;
std::atomic<bool> g_resolved{false};
std::atomic<std::uint64_t> g_dispatch_counts[2] = {{0}, {0}};
std::atomic<int> g_scalar_force{0};

// The all-null table active_kernels() returns while a ScalarKernelScope is
// alive: null entries mean "run the inline scalar reference".
const KernelTable g_scalar_table{};

#ifdef TCEVD_HAVE_AVX2

// Deterministic value streams for the self-check probes. Plain LCG; the
// mantissas are effectively random, which is exactly what makes the probes
// FMA-sensitive: fl(fl(a*b)+c) != fl(a*b+c) for roughly half of random
// inputs, so a contracted (vfmadd) kernel cannot survive the comparison.
std::uint32_t lcg_next(std::uint32_t& s) noexcept {
  s = s * 1664525u + 1013904223u;
  return s;
}

float lcg_f32(std::uint32_t& s) noexcept {
  return static_cast<float>((lcg_next(s) >> 8) & 0xffffu) / 16384.0f - 2.0f;
}

double lcg_f64(std::uint32_t& s) noexcept {
  return static_cast<double>((lcg_next(s) >> 8) & 0xffffu) / 16384.0 - 2.0;
}

constexpr index_t kProbeMaxKc = 64;
constexpr index_t kProbeKcs[] = {1, 7, 64};
constexpr index_t kProbeMrs[] = {1, 5, 8};
constexpr index_t kProbeNrs[] = {1, 3, 8};

template <typename T>
bool check_micro_kernels(void (*vec_plain)(index_t, const T*, const T*, T, T*, index_t,
                                           index_t, index_t),
                         void (*vec_pair)(index_t, const T*, const T*, const T*, const T*, T,
                                          T*, index_t, index_t, index_t),
                         T (*draw)(std::uint32_t&)) {
  using packed::kMR;
  using packed::kNR;
  alignas(64) T ap1[kProbeMaxKc * kMR];
  alignas(64) T bp1[kProbeMaxKc * kNR];
  alignas(64) T ap2[kProbeMaxKc * kMR];
  alignas(64) T bp2[kProbeMaxKc * kNR];
  std::uint32_t seed = 0xc0ffee11u;
  for (auto& v : ap1) v = draw(seed);
  for (auto& v : bp1) v = draw(seed);
  for (auto& v : ap2) v = draw(seed);
  for (auto& v : bp2) v = draw(seed);
  const T alphas[] = {T{1}, T{-0.75}};
  T cbase[kMR * kNR];
  T cref[kMR * kNR];
  T cvec[kMR * kNR];
  for (auto& v : cbase) v = draw(seed);
  for (const index_t kc : kProbeKcs) {
    for (const index_t mr : kProbeMrs) {
      for (const index_t nr : kProbeNrs) {
        for (const T alpha : alphas) {
          // Comparing the full kMR x kNR footprint (ldc == kMR) also proves
          // the vector kernel leaves rows/columns past mr/nr untouched.
          std::memcpy(cref, cbase, sizeof cbase);
          std::memcpy(cvec, cbase, sizeof cbase);
          packed::micro_kernel_scalar(kc, ap1, bp1, alpha, cref, kMR, mr, nr);
          vec_plain(kc, ap1, bp1, alpha, cvec, kMR, mr, nr);
          if (std::memcmp(cref, cvec, sizeof cref) != 0) return false;

          std::memcpy(cref, cbase, sizeof cbase);
          std::memcpy(cvec, cbase, sizeof cbase);
          packed::micro_kernel_pair_scalar(kc, ap1, bp1, ap2, bp2, alpha, cref, kMR, mr, nr);
          vec_pair(kc, ap1, bp1, ap2, bp2, alpha, cvec, kMR, mr, nr);
          if (std::memcmp(cref, cvec, sizeof cref) != 0) return false;
        }
      }
    }
  }
  return true;
}

bool check_convert_kernels() {
  // Specials first (fp16 boundaries, subnormal thresholds, inf, default
  // qNaN), then LCG patterns whose exponents sweep 2^-31 .. 2^16 so the
  // fp16 subnormal and overflow regions both get dense random coverage.
  constexpr index_t kN = 1024 + 13;  // odd tail exercises the remainder path
  float src[kN];
  index_t i = 0;
  const float inf = __builtin_inff();
  for (const float v :
       {0.0f, -0.0f, 1.0f, -1.0f, 1.5f, 65504.0f, -65504.0f, 65519.5f, 65520.0f, -65520.0f,
        65536.0f, 1e30f, 6.103515625e-05f /* 2^-14 */, 3.0517578125e-05f /* 2^-15 */,
        5.960464477539063e-08f /* 2^-24 */, 2.9802322387695312e-08f /* 2^-25 */, 4.5e-08f,
        2.8e-08f, 1e-38f, inf, -inf, __builtin_nanf("")}) {
    src[i++] = v;
  }
  std::uint32_t seed = 0xdecade01u;
  for (; i < kN; ++i) {
    const std::uint32_t sign = (lcg_next(seed) & 1u) << 31;
    const std::uint32_t exp = 96u + (lcg_next(seed) % 48u);
    const std::uint32_t mant = lcg_next(seed) & 0x007fffffu;
    std::uint32_t bits = sign | (exp << 23) | mant;
    std::memcpy(&src[i], &bits, sizeof bits);
  }

  float ref[kN];
  float vec[kN];
  float ref_tail[kN];
  float vec_tail[kN];
  const float scale = 2048.0f;

  for (index_t j = 0; j < kN; ++j) ref[j] = round_to_half(src[j]);
  avx2::round_fp16_buffer(src, vec, kN);
  if (std::memcmp(ref, vec, sizeof ref) != 0) return false;
  std::memcpy(vec, src, sizeof vec);  // in-place form
  avx2::round_fp16_buffer(vec, vec, kN);
  if (std::memcmp(ref, vec, sizeof ref) != 0) return false;

  for (index_t j = 0; j < kN; ++j) ref[j] = round_to_tf32(src[j]);
  avx2::round_tf32_buffer(src, vec, kN);
  if (std::memcmp(ref, vec, sizeof ref) != 0) return false;

  for (index_t j = 0; j < kN; ++j) {
    const float h = round_to_half(src[j]);
    ref[j] = h;
    ref_tail[j] = round_to_half(scale * (src[j] - h));
  }
  avx2::ec_split_fp16_buffer(src, vec, vec_tail, kN, scale);
  if (std::memcmp(ref, vec, sizeof ref) != 0) return false;
  if (std::memcmp(ref_tail, vec_tail, sizeof ref_tail) != 0) return false;

  for (index_t j = 0; j < kN; ++j) {
    const float h = round_to_tf32(src[j]);
    ref[j] = h;
    ref_tail[j] = round_to_tf32(scale * (src[j] - h));
  }
  avx2::ec_split_tf32_buffer(src, vec, vec_tail, kN, scale);
  if (std::memcmp(ref, vec, sizeof ref) != 0) return false;
  if (std::memcmp(ref_tail, vec_tail, sizeof ref_tail) != 0) return false;

  return true;
}

bool run_avx2_selfcheck() {
  return check_micro_kernels<float>(&avx2::micro_kernel_f32, &avx2::micro_kernel_pair_f32,
                                    &lcg_f32) &&
         check_micro_kernels<double>(&avx2::micro_kernel_f64, &avx2::micro_kernel_pair_f64,
                                     &lcg_f64) &&
         check_convert_kernels();
}

#endif  // TCEVD_HAVE_AVX2

Resolution resolve_now() {
  const char* env = std::getenv("TCEVD_SIMD");
  const bool cpu = cpu_supports_avx2();
  bool selfcheck_ok = false;
  const bool env_forces_scalar =
      env != nullptr && (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0);
#ifdef TCEVD_HAVE_AVX2
  if (cpu && !env_forces_scalar) selfcheck_ok = run_avx2_selfcheck();
#else
  (void)env_forces_scalar;
#endif
  Resolution r;
  r.table.level = detail::resolve_level(env, cpu, selfcheck_ok, &r.reason);
#ifdef TCEVD_HAVE_AVX2
  if (r.table.level == Level::Avx2) {
    r.table.gemm_f32 = &avx2::micro_kernel_f32;
    r.table.gemm_pair_f32 = &avx2::micro_kernel_pair_f32;
    r.table.gemm_f64 = &avx2::micro_kernel_f64;
    r.table.gemm_pair_f64 = &avx2::micro_kernel_pair_f64;
    r.table.round_fp16 = &avx2::round_fp16_buffer;
    r.table.round_tf32 = &avx2::round_tf32_buffer;
    r.table.ec_split_fp16 = &avx2::ec_split_fp16_buffer;
    r.table.ec_split_tf32 = &avx2::ec_split_tf32_buffer;
    r.table.name = "avx2";
  }
#endif
  return r;
}

}  // namespace

const KernelTable& kernels() noexcept {
  if (!g_resolved.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(g_resolve_mutex);
    if (!g_resolved.load(std::memory_order_relaxed)) {
      g_resolution = resolve_now();
      g_resolved.store(true, std::memory_order_release);
    }
  }
  return g_resolution.table;
}

const KernelTable& active_kernels() noexcept {
  if (g_scalar_force.load(std::memory_order_relaxed) > 0) return g_scalar_table;
  return kernels();
}

Level active_level() noexcept { return active_kernels().level; }

const char* active_level_name() noexcept { return active_kernels().name; }

const char* active_level_reason() noexcept {
  if (g_scalar_force.load(std::memory_order_relaxed) > 0) return "ScalarKernelScope active";
  kernels();  // force resolution so the reason is meaningful
  return g_resolution.reason;
}

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool compiled_with_avx2() noexcept {
#ifdef TCEVD_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

std::uint64_t dispatch_count(Level level) noexcept {
  return g_dispatch_counts[static_cast<int>(level)].load(std::memory_order_relaxed);
}

ScalarKernelScope::ScalarKernelScope() noexcept {
  g_scalar_force.fetch_add(1, std::memory_order_relaxed);
}

ScalarKernelScope::~ScalarKernelScope() {
  g_scalar_force.fetch_sub(1, std::memory_order_relaxed);
}

bool scalar_kernels_forced() noexcept {
  return g_scalar_force.load(std::memory_order_relaxed) > 0;
}

namespace detail {

Level resolve_level(const char* env_value, bool cpu_avx2, bool selfcheck_ok,
                    const char** reason) noexcept {
  const bool compiled = compiled_with_avx2();
  if (env_value != nullptr && *env_value != '\0') {
    if (std::strcmp(env_value, "off") == 0 || std::strcmp(env_value, "scalar") == 0) {
      *reason = "TCEVD_SIMD=off";
      return Level::Scalar;
    }
    if (std::strcmp(env_value, "avx2") == 0) {
      if (!compiled) {
        *reason = "TCEVD_SIMD=avx2 but binary built without the AVX2 family";
        return Level::Scalar;
      }
      if (!cpu_avx2) {
        *reason = "TCEVD_SIMD=avx2 but CPU lacks AVX2+F16C";
        return Level::Scalar;
      }
      if (!selfcheck_ok) {
        *reason = "TCEVD_SIMD=avx2 but the bitwise self-check failed";
        return Level::Scalar;
      }
      *reason = "TCEVD_SIMD=avx2";
      return Level::Avx2;
    }
    if (std::strcmp(env_value, "auto") != 0) {
      // Unrecognized value: fall through to auto-detection rather than
      // silently changing numerics-relevant behaviour on a typo.
      *reason = "unrecognized TCEVD_SIMD value; auto-detected";
      if (compiled && cpu_avx2 && selfcheck_ok) return Level::Avx2;
      return Level::Scalar;
    }
  }
  if (!compiled) {
    *reason = "binary built without the AVX2 family";
    return Level::Scalar;
  }
  if (!cpu_avx2) {
    *reason = "CPU lacks AVX2+F16C";
    return Level::Scalar;
  }
  if (!selfcheck_ok) {
    *reason = "bitwise self-check failed; pinned to scalar reference";
    return Level::Scalar;
  }
  *reason = "auto-detected AVX2 (bitwise self-check passed)";
  return Level::Avx2;
}

void record_dispatch(Level level) noexcept {
  g_dispatch_counts[static_cast<int>(level)].fetch_add(1, std::memory_order_relaxed);
}

void refresh_for_testing() {
  std::lock_guard<std::mutex> lock(g_resolve_mutex);
  g_resolution = resolve_now();
  g_resolved.store(true, std::memory_order_release);
}

}  // namespace detail
}  // namespace simd
}  // namespace blas
}  // namespace tcevd
