// Runtime SIMD dispatch for the packed GEMM micro-kernels and the Tensor
// Core operand-convert loops — pinned bitwise to the scalar reference.
//
// Resolution happens once, at first use, in three steps:
//
//   1. env override: TCEVD_SIMD=off|scalar forces the scalar reference;
//      TCEVD_SIMD=avx2 requests the AVX2 family; unset/auto auto-detects.
//   2. cpuid probe: the AVX2 family needs AVX2 + F16C (fp16 converts).
//   3. bitwise self-check: before a vector kernel table is installed it is
//      run against the scalar reference (gemm_microkernel_scalar.hpp,
//      src/common/half.cpp) on probe problems covering remainder tiles,
//      fp16 subnormal/overflow boundaries and FMA-sensitive random data; ANY
//      bit of disagreement falls the process back to scalar. This is what
//      "pinned bitwise" means operationally: a compiler that contracted the
//      vector mul/add into an FMA, or hardware whose conversions deviate
//      from the software reference, is detected and benched, never trusted.
//
// The result is cached in a process-wide table; `active_kernels()` layers a
// ScalarKernelScope force on top (bench baselines, SIMD-vs-scalar tests).
// Null function pointers in the table mean "run the scalar reference" — the
// scalar path never routes through a pointer, so it stays inlinable.
//
// Telemetry: every packed-GEMM entry call records which kernel family served
// it (dispatch_count), the analogue of gemm_pool_dispatches() for the
// threading layer.
#pragma once

#include <cstdint>

#include "src/common/matrix.hpp"

namespace tcevd {
namespace blas {
namespace simd {

enum class Level : int { Scalar = 0, Avx2 = 1 };

using MicroKernelF32 = void (*)(index_t kc, const float* ap, const float* bp, float alpha,
                                float* c0, index_t ldc, index_t mr, index_t nr);
using MicroKernelPairF32 = void (*)(index_t kc, const float* ap1, const float* bp1,
                                    const float* ap2, const float* bp2, float alpha,
                                    float* c0, index_t ldc, index_t mr, index_t nr);
using MicroKernelF64 = void (*)(index_t kc, const double* ap, const double* bp, double alpha,
                                double* c0, index_t ldc, index_t mr, index_t nr);
using MicroKernelPairF64 = void (*)(index_t kc, const double* ap1, const double* bp1,
                                    const double* ap2, const double* bp2, double alpha,
                                    double* c0, index_t ldc, index_t mr, index_t nr);
using RoundBufferFn = void (*)(const float* src, float* dst, index_t n);
using EcSplitBufferFn = void (*)(const float* src, float* head, float* tail, index_t n,
                                 float scale);

/// Resolved kernel family. A null entry means "no vector kernel — run the
/// scalar reference inline".
struct KernelTable {
  MicroKernelF32 gemm_f32 = nullptr;
  MicroKernelPairF32 gemm_pair_f32 = nullptr;
  MicroKernelF64 gemm_f64 = nullptr;
  MicroKernelPairF64 gemm_pair_f64 = nullptr;
  RoundBufferFn round_fp16 = nullptr;
  RoundBufferFn round_tf32 = nullptr;
  EcSplitBufferFn ec_split_fp16 = nullptr;
  EcSplitBufferFn ec_split_tf32 = nullptr;
  Level level = Level::Scalar;
  const char* name = "scalar";
};

/// The process-wide table, resolved and cached at first use.
const KernelTable& kernels() noexcept;

/// Table in effect for the calling context right now: the all-scalar table
/// while any ScalarKernelScope is alive, kernels() otherwise.
const KernelTable& active_kernels() noexcept;

Level active_level() noexcept;
const char* active_level_name() noexcept;
/// Human-readable reason for the resolved level ("auto-detected",
/// "TCEVD_SIMD=off", "bitwise self-check failed", ...).
const char* active_level_reason() noexcept;

/// True when the running CPU reports AVX2 + F16C.
bool cpu_supports_avx2() noexcept;
/// True when this binary contains the AVX2 kernel family at all.
bool compiled_with_avx2() noexcept;

/// Process-wide count of packed-GEMM dispatches served by `level` since
/// start. One dispatch == one gemm_packed / gemm_packed_split_b /
/// gemm_packed_nt_pair entry call (not one micro-tile).
std::uint64_t dispatch_count(Level level) noexcept;

/// RAII guard forcing the scalar reference kernels process-wide while alive
/// (the packed pipeline's workers must see the same kernels as the caller,
/// so the force cannot be thread-local). Nestable; used by the bench
/// baseline rows and the SIMD-vs-scalar bitwise tests.
class ScalarKernelScope {
 public:
  ScalarKernelScope() noexcept;
  ~ScalarKernelScope();
  ScalarKernelScope(const ScalarKernelScope&) = delete;
  ScalarKernelScope& operator=(const ScalarKernelScope&) = delete;
};

/// True while any ScalarKernelScope is alive.
bool scalar_kernels_forced() noexcept;

namespace detail {

/// Pure resolution policy, unit-testable without process state: decide the
/// level from the TCEVD_SIMD value (nullptr == unset), CPU capability, and
/// the self-check verdict. `reason` receives a static string.
Level resolve_level(const char* env_value, bool cpu_avx2, bool selfcheck_ok,
                    const char** reason) noexcept;

/// Bump the per-level dispatch counter (one per packed-GEMM entry call).
void record_dispatch(Level level) noexcept;

/// Re-run resolution (re-reads TCEVD_SIMD, re-probes, re-self-checks).
/// Test-only: callers must guarantee no GEMM is concurrently in flight.
void refresh_for_testing();

}  // namespace detail
}  // namespace simd
}  // namespace blas
}  // namespace tcevd
