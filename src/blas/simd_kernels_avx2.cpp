// AVX2 kernel family: vector twins of the scalar reference kernels.
//
// Bitwise identity with the scalar reference is the design constraint, not a
// best-effort goal. Three rules enforce it:
//
//   1. One lane per row. Each __m256 (or __m256d pair) holds the MR=8 rows of
//      one C-tile column's accumulator. Lane ii then executes exactly the
//      scalar chain acc[jj][ii]: the same multiplies, the same adds, in the
//      same k order. Column chunking (pair / f64 kernels chunk columns to fit
//      the 16-register budget) re-reads the packed A panel but never touches
//      a given element's chain, so it is invisible bitwise.
//   2. Separate mul and add, never FMA. This file is compiled with
//      -mavx2 -mf16c -ffp-contract=off and WITHOUT -mfma, so the compiler
//      cannot contract _mm256_mul_ps + _mm256_add_ps into vfmadd and change
//      the rounding. The scalar reference TUs have no FMA ISA at all (no
//      -march flags; -ffp-contract=off globally as insurance).
//   3. Hardware converts only where they match the software reference. F16C
//      VCVTPS2PH/VCVTPH2PS implement RNE exactly for finite, subnormal and
//      infinite values and for the default quiet NaN; only exotic NaN
//      payloads (never produced by EVD data) can differ, and the dispatch
//      self-check (simd_dispatch.cpp) guards the whole family anyway. TF32
//      rounding has no hardware instruction, so it is re-implemented with
//      integer AVX2 as a lane-parallel transcription of round_to_tf32.
//
// Remainders: mr < 8 spills the accumulator to an aligned temp and finishes
// with the scalar writeback; n % 8 convert tails run the scalar reference.
#include "src/blas/simd_kernels_avx2.hpp"

#ifdef TCEVD_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>

#include "src/blas/gemm_microkernel_scalar.hpp"
#include "src/common/half.hpp"

namespace tcevd::blas::simd::avx2 {

using packed::kMR;
using packed::kNR;

static_assert(kMR == 8, "AVX2 f32 kernels assume one 8-float vector per panel row");
static_assert(kNR == 8, "AVX2 kernels assume an 8-column register tile");

void micro_kernel_f32(index_t kc, const float* ap, const float* bp, float alpha, float* c0,
                      index_t ldc, index_t mr, index_t nr) {
  __m256 acc[kNR];
  for (index_t jj = 0; jj < kNR; ++jj) acc[jj] = _mm256_setzero_ps();
  for (index_t k = 0; k < kc; ++k) {
    const __m256 av = _mm256_load_ps(ap + k * kMR);
    const float* brow = bp + k * kNR;
    for (index_t jj = 0; jj < kNR; ++jj) {
      acc[jj] = _mm256_add_ps(acc[jj], _mm256_mul_ps(av, _mm256_broadcast_ss(brow + jj)));
    }
  }
  const __m256 valpha = _mm256_set1_ps(alpha);
  if (mr == kMR) {
    for (index_t jj = 0; jj < nr; ++jj) {
      float* cc = c0 + jj * ldc;
      _mm256_storeu_ps(cc,
                       _mm256_add_ps(_mm256_loadu_ps(cc), _mm256_mul_ps(valpha, acc[jj])));
    }
  } else {
    alignas(32) float tmp[kMR];
    for (index_t jj = 0; jj < nr; ++jj) {
      _mm256_store_ps(tmp, acc[jj]);
      float* cc = c0 + jj * ldc;
      for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * tmp[ii];
    }
  }
}

void micro_kernel_pair_f32(index_t kc, const float* ap1, const float* bp1, const float* ap2,
                           const float* bp2, float alpha, float* c0, index_t ldc, index_t mr,
                           index_t nr) {
  const __m256 valpha = _mm256_set1_ps(alpha);
  // Column chunks of 4: 2x4 accumulators + two panel vectors stay in registers.
  for (index_t j0 = 0; j0 < nr; j0 += 4) {
    __m256 acc1[4];
    __m256 acc2[4];
    for (index_t jj = 0; jj < 4; ++jj) {
      acc1[jj] = _mm256_setzero_ps();
      acc2[jj] = _mm256_setzero_ps();
    }
    for (index_t k = 0; k < kc; ++k) {
      const __m256 av1 = _mm256_load_ps(ap1 + k * kMR);
      const __m256 av2 = _mm256_load_ps(ap2 + k * kMR);
      const float* b1 = bp1 + k * kNR + j0;
      const float* b2 = bp2 + k * kNR + j0;
      for (index_t jj = 0; jj < 4; ++jj) {
        acc1[jj] = _mm256_add_ps(acc1[jj], _mm256_mul_ps(av1, _mm256_broadcast_ss(b1 + jj)));
        acc2[jj] = _mm256_add_ps(acc2[jj], _mm256_mul_ps(av2, _mm256_broadcast_ss(b2 + jj)));
      }
    }
    const index_t jend = std::min<index_t>(4, nr - j0);
    for (index_t jj = 0; jj < jend; ++jj) {
      const __m256 sum = _mm256_add_ps(acc1[jj], acc2[jj]);
      float* cc = c0 + (j0 + jj) * ldc;
      if (mr == kMR) {
        _mm256_storeu_ps(cc, _mm256_add_ps(_mm256_loadu_ps(cc), _mm256_mul_ps(valpha, sum)));
      } else {
        alignas(32) float tmp[kMR];
        _mm256_store_ps(tmp, sum);
        for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * tmp[ii];
      }
    }
  }
}

void micro_kernel_f64(index_t kc, const double* ap, const double* bp, double alpha,
                      double* c0, index_t ldc, index_t mr, index_t nr) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  // One panel row is two __m256d (lanes 0..3 and 4..7); chunk columns by 4.
  for (index_t j0 = 0; j0 < nr; j0 += 4) {
    __m256d lo[4];
    __m256d hi[4];
    for (index_t jj = 0; jj < 4; ++jj) {
      lo[jj] = _mm256_setzero_pd();
      hi[jj] = _mm256_setzero_pd();
    }
    for (index_t k = 0; k < kc; ++k) {
      const __m256d avlo = _mm256_load_pd(ap + k * kMR);
      const __m256d avhi = _mm256_load_pd(ap + k * kMR + 4);
      const double* brow = bp + k * kNR + j0;
      for (index_t jj = 0; jj < 4; ++jj) {
        const __m256d bv = _mm256_broadcast_sd(brow + jj);
        lo[jj] = _mm256_add_pd(lo[jj], _mm256_mul_pd(avlo, bv));
        hi[jj] = _mm256_add_pd(hi[jj], _mm256_mul_pd(avhi, bv));
      }
    }
    const index_t jend = std::min<index_t>(4, nr - j0);
    for (index_t jj = 0; jj < jend; ++jj) {
      double* cc = c0 + (j0 + jj) * ldc;
      if (mr == kMR) {
        _mm256_storeu_pd(cc,
                         _mm256_add_pd(_mm256_loadu_pd(cc), _mm256_mul_pd(valpha, lo[jj])));
        _mm256_storeu_pd(
            cc + 4, _mm256_add_pd(_mm256_loadu_pd(cc + 4), _mm256_mul_pd(valpha, hi[jj])));
      } else {
        alignas(32) double tmp[kMR];
        _mm256_store_pd(tmp, lo[jj]);
        _mm256_store_pd(tmp + 4, hi[jj]);
        for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * tmp[ii];
      }
    }
  }
}

void micro_kernel_pair_f64(index_t kc, const double* ap1, const double* bp1,
                           const double* ap2, const double* bp2, double alpha, double* c0,
                           index_t ldc, index_t mr, index_t nr) {
  const __m256d valpha = _mm256_set1_pd(alpha);
  // Two products x two half-rows: chunk columns by 2 to stay in registers.
  for (index_t j0 = 0; j0 < nr; j0 += 2) {
    __m256d lo1[2], hi1[2], lo2[2], hi2[2];
    for (index_t jj = 0; jj < 2; ++jj) {
      lo1[jj] = _mm256_setzero_pd();
      hi1[jj] = _mm256_setzero_pd();
      lo2[jj] = _mm256_setzero_pd();
      hi2[jj] = _mm256_setzero_pd();
    }
    for (index_t k = 0; k < kc; ++k) {
      const __m256d a1lo = _mm256_load_pd(ap1 + k * kMR);
      const __m256d a1hi = _mm256_load_pd(ap1 + k * kMR + 4);
      const __m256d a2lo = _mm256_load_pd(ap2 + k * kMR);
      const __m256d a2hi = _mm256_load_pd(ap2 + k * kMR + 4);
      const double* b1 = bp1 + k * kNR + j0;
      const double* b2 = bp2 + k * kNR + j0;
      for (index_t jj = 0; jj < 2; ++jj) {
        const __m256d bv1 = _mm256_broadcast_sd(b1 + jj);
        const __m256d bv2 = _mm256_broadcast_sd(b2 + jj);
        lo1[jj] = _mm256_add_pd(lo1[jj], _mm256_mul_pd(a1lo, bv1));
        hi1[jj] = _mm256_add_pd(hi1[jj], _mm256_mul_pd(a1hi, bv1));
        lo2[jj] = _mm256_add_pd(lo2[jj], _mm256_mul_pd(a2lo, bv2));
        hi2[jj] = _mm256_add_pd(hi2[jj], _mm256_mul_pd(a2hi, bv2));
      }
    }
    const index_t jend = std::min<index_t>(2, nr - j0);
    for (index_t jj = 0; jj < jend; ++jj) {
      const __m256d sumlo = _mm256_add_pd(lo1[jj], lo2[jj]);
      const __m256d sumhi = _mm256_add_pd(hi1[jj], hi2[jj]);
      double* cc = c0 + (j0 + jj) * ldc;
      if (mr == kMR) {
        _mm256_storeu_pd(cc,
                         _mm256_add_pd(_mm256_loadu_pd(cc), _mm256_mul_pd(valpha, sumlo)));
        _mm256_storeu_pd(
            cc + 4, _mm256_add_pd(_mm256_loadu_pd(cc + 4), _mm256_mul_pd(valpha, sumhi)));
      } else {
        alignas(32) double tmp[kMR];
        _mm256_store_pd(tmp, sumlo);
        _mm256_store_pd(tmp + 4, sumhi);
        for (index_t ii = 0; ii < mr; ++ii) cc[ii] += alpha * tmp[ii];
      }
    }
  }
}

namespace {

inline __m256 round_fp16_vec(__m256 v) {
  return _mm256_cvtph_ps(_mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
}

// Lane-parallel transcription of round_to_tf32 (src/common/half.cpp): RNE of
// the fp32 mantissa to 10 bits (round bit 0x1000, kept LSB 0x2000), inf/NaN
// pass through untouched.
inline __m256 round_tf32_vec(__m256 v) {
  const __m256i x = _mm256_castps_si256(v);
  const __m256i expmask = _mm256_set1_epi32(0x7f800000);
  const __m256i special = _mm256_cmpeq_epi32(_mm256_and_si256(x, expmask), expmask);
  const __m256i remmask = _mm256_set1_epi32(0x1fff);
  const __m256i rem = _mm256_and_si256(x, remmask);
  const __m256i base = _mm256_andnot_si256(remmask, x);
  const __m256i gt = _mm256_cmpgt_epi32(rem, _mm256_set1_epi32(0x1000));
  const __m256i eq = _mm256_cmpeq_epi32(rem, _mm256_set1_epi32(0x1000));
  // All-ones lane when the kept LSB (bit 13) of base is set: shift it to the
  // sign position, then arithmetic-shift it across the lane.
  const __m256i odd = _mm256_srai_epi32(_mm256_slli_epi32(base, 18), 31);
  const __m256i up = _mm256_or_si256(gt, _mm256_and_si256(eq, odd));
  const __m256i bumped = _mm256_add_epi32(base, _mm256_and_si256(up, _mm256_set1_epi32(0x2000)));
  return _mm256_castsi256_ps(_mm256_blendv_epi8(bumped, x, special));
}

}  // namespace

void round_fp16_buffer(const float* src, float* dst, index_t n) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, round_fp16_vec(_mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = round_to_half(src[i]);
}

void round_tf32_buffer(const float* src, float* dst, index_t n) {
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, round_tf32_vec(_mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] = round_to_tf32(src[i]);
}

void ec_split_fp16_buffer(const float* src, float* head, float* tail, index_t n,
                          float scale) {
  const __m256 vscale = _mm256_set1_ps(scale);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m256 h = round_fp16_vec(v);
    _mm256_storeu_ps(head + i, h);
    _mm256_storeu_ps(tail + i,
                     round_fp16_vec(_mm256_mul_ps(vscale, _mm256_sub_ps(v, h))));
  }
  for (; i < n; ++i) {
    const float h = round_to_half(src[i]);
    head[i] = h;
    tail[i] = round_to_half(scale * (src[i] - h));
  }
}

void ec_split_tf32_buffer(const float* src, float* head, float* tail, index_t n,
                          float scale) {
  const __m256 vscale = _mm256_set1_ps(scale);
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m256 h = round_tf32_vec(v);
    _mm256_storeu_ps(head + i, h);
    _mm256_storeu_ps(tail + i,
                     round_tf32_vec(_mm256_mul_ps(vscale, _mm256_sub_ps(v, h))));
  }
  for (; i < n; ++i) {
    const float h = round_to_tf32(src[i]);
    head[i] = h;
    tail[i] = round_to_tf32(scale * (src[i] - h));
  }
}

}  // namespace tcevd::blas::simd::avx2

#endif  // TCEVD_HAVE_AVX2
