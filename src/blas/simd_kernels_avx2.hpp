// Declarations of the AVX2 kernel family (definitions in
// simd_kernels_avx2.cpp, compiled with -mavx2 -mf16c -ffp-contract=off and
// only added to the build when the compiler supports those flags — the
// TCEVD_HAVE_AVX2 define gates every reference).
//
// Contract (checked bitwise against the scalar references at dispatch time):
//   * micro-kernels: ap/ap1/ap2 point into the packed A arena and are
//     32-byte aligned (the arena is 64-byte aligned and every panel offset is
//     a multiple of kMR elements); bp is broadcast-read with no alignment
//     requirement; C is read/written unaligned. Lane ii of each vector
//     accumulator is exactly the scalar acc[jj][ii] chain: separate mul and
//     add per k step, never an FMA.
//   * convert kernels: contiguous float buffers, src != dst allowed or
//     src == dst (in-place); tails below the vector width run the scalar
//     reference code path.
// These functions must only be CALLED after a cpuid probe says AVX2+F16C are
// available (simd_dispatch.cpp owns that decision).
#pragma once

#include "src/common/matrix.hpp"

#ifdef TCEVD_HAVE_AVX2

namespace tcevd::blas::simd::avx2 {

void micro_kernel_f32(index_t kc, const float* ap, const float* bp, float alpha, float* c0,
                      index_t ldc, index_t mr, index_t nr);
void micro_kernel_pair_f32(index_t kc, const float* ap1, const float* bp1, const float* ap2,
                           const float* bp2, float alpha, float* c0, index_t ldc,
                           index_t mr, index_t nr);
void micro_kernel_f64(index_t kc, const double* ap, const double* bp, double alpha,
                      double* c0, index_t ldc, index_t mr, index_t nr);
void micro_kernel_pair_f64(index_t kc, const double* ap1, const double* bp1,
                           const double* ap2, const double* bp2, double alpha, double* c0,
                           index_t ldc, index_t mr, index_t nr);

/// dst[i] = fp32(fp16(src[i])) with round-to-nearest-even (F16C).
void round_fp16_buffer(const float* src, float* dst, index_t n);
/// dst[i] = tf32(src[i]): RNE to a 10-bit mantissa, inf/NaN pass through.
void round_tf32_buffer(const float* src, float* dst, index_t n);
/// head[i] = round(src[i]); tail[i] = round(scale * (src[i] - head[i])),
/// with `round` the fp16 / tf32 operand rounding respectively.
void ec_split_fp16_buffer(const float* src, float* head, float* tail, index_t n,
                          float scale);
void ec_split_tf32_buffer(const float* src, float* head, float* tail, index_t n,
                          float scale);

}  // namespace tcevd::blas::simd::avx2

#endif  // TCEVD_HAVE_AVX2
