#include "src/bulge/bulge_chasing.hpp"

#include <cmath>

#include "src/common/context.hpp"
#include "src/sbr/band.hpp"

namespace tcevd::bulge {

namespace {

/// Two-sided Givens rotation A <- G^T A G in the plane (i, i+1), touching
/// only columns/rows in [lo, hi) (the band window). G([i,i+1],[i,i+1]) =
/// [[c, -s], [s, c]].
template <typename T>
void apply_sym_rotation(MatrixView<T> a, index_t i, T c, T s, index_t lo, index_t hi) {
  const index_t j = i + 1;
  for (index_t k = lo; k < hi; ++k) {
    const T t1 = a(i, k);
    const T t2 = a(j, k);
    a(i, k) = c * t1 + s * t2;
    a(j, k) = -s * t1 + c * t2;
  }
  for (index_t k = lo; k < hi; ++k) {
    const T t1 = a(k, i);
    const T t2 = a(k, j);
    a(k, i) = c * t1 + s * t2;
    a(k, j) = -s * t1 + c * t2;
  }
}

/// Right-multiply q by the same rotation (accumulates the similarity).
template <typename T>
void apply_q_rotation(MatrixView<T> q, index_t i, T c, T s) {
  const index_t j = i + 1;
  for (index_t k = 0; k < q.rows(); ++k) {
    const T t1 = q(k, i);
    const T t2 = q(k, j);
    q(k, i) = c * t1 + s * t2;
    q(k, j) = -s * t1 + c * t2;
  }
}

}  // namespace

template <typename T>
BulgeResult<T> bulge_chase(MatrixView<T> a, index_t bw, MatrixView<T>* q) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "bulge_chase requires a square matrix");
  TCEVD_CHECK(bw >= 1, "bulge_chase bandwidth must be >= 1");
  if (q) TCEVD_CHECK(q->cols() == n, "bulge_chase Q must have n columns");

  // Peel diagonals d = bw, bw-1, ..., 2 (distance-1 entries remain).
  for (index_t d = std::min(bw, n - 1); d >= 2; --d) {
    for (index_t col = 0; col + d < n; ++col) {
      // Chase the entry at (row, tcol), starting on the d-th diagonal; each
      // elimination re-creates it d rows further down (one outside the band)
      // until it falls off the matrix.
      index_t tcol = col;
      index_t row = col + d;
      while (row < n) {
        const T f = a(row - 1, tcol);
        const T g = a(row, tcol);
        if (g != T{}) {
          const T h = std::hypot(f, g);
          const T c = f / h;
          const T s = g / h;
          // Window: the rotated rows/cols carry entries within the current
          // band (+1 for the live bulge) around indices row-1, row.
          const index_t lo = (tcol > 0) ? tcol : 0;
          const index_t hi = std::min(n, row + d + 1);
          apply_sym_rotation(a, row - 1, c, s, lo, hi);
          a(row, tcol) = T{};   // exact zero by construction
          a(tcol, row) = T{};
          if (q) apply_q_rotation(*q, row - 1, c, s);
        }
        tcol = row - 1;
        row += d;
      }
    }
  }

  BulgeResult<T> out;
  sbr::extract_tridiag<T>(a, out.d, out.e);
  return out;
}

template BulgeResult<float> bulge_chase<float>(MatrixView<float>, index_t, MatrixView<float>*);
template BulgeResult<double> bulge_chase<double>(MatrixView<double>, index_t,
                                                 MatrixView<double>*);

BulgeResult<float> bulge_chase(Context& ctx, MatrixView<float> a, index_t bw,
                               MatrixView<float>* q) {
  StageTimer stage(ctx.telemetry(), "bulge.chase");
  return bulge_chase<float>(a, bw, q);
}

}  // namespace tcevd::bulge
