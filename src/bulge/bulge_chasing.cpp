#include "src/bulge/bulge_chasing.hpp"

#include <algorithm>

#include "src/common/context.hpp"
#include "src/sbr/band.hpp"

namespace tcevd::bulge {

template <typename T>
BulgeResult<T> bulge_chase(MatrixView<T> a, index_t bw, MatrixView<T>* q,
                           QRowProfile q_profile) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "bulge_chase requires a square matrix");
  TCEVD_CHECK(bw >= 1, "bulge_chase bandwidth must be >= 1");
  if (q) TCEVD_CHECK(q->cols() == n, "bulge_chase Q must have n columns");

  // Optional Q support windows (only when the caller vouched for a band
  // profile). The serial driver keeps them in short-lived vectors — the
  // zero-steady-state-allocation path is the Context overloads below, and
  // those route band-profiled Q through the same windows held in the arena
  // via the wavefront driver when it is engaged.
  std::vector<index_t> q_lo, q_hi;
  detail::QSupport qs;
  if (q != nullptr && q_profile.band >= 0) {
    q_lo.resize(static_cast<std::size_t>(n));
    q_hi.resize(static_cast<std::size_t>(n));
    qs.lo = q_lo.data();
    qs.hi = q_hi.data();
    detail::init_q_support(qs, n, q->rows(), q_profile.band);
  }

  // Peel diagonals d = bw, bw-1, ..., 2 (distance-1 entries remain). Sweep s
  // zeroes column s of the d-th diagonal and chases the resulting bulge off
  // the matrix; the (d, s, k) indexing is shared with the wavefront driver
  // (bulge_wavefront.cpp), which runs the same chase_elim calls in a
  // dependency-respecting order.
  for (index_t d = std::min(bw, n - 1); d >= 2; --d) {
    for (index_t s = 0; s + d < n; ++s) {
      const index_t len = detail::sweep_length(n, d, s);
      for (index_t k = 0; k < len; ++k) {
        detail::chase_elim(a, q, n, d, s, k, qs);
      }
    }
  }

  BulgeResult<T> out;
  sbr::extract_tridiag<T>(a, out.d, out.e);
  return out;
}

template BulgeResult<float> bulge_chase<float>(MatrixView<float>, index_t,
                                               MatrixView<float>*, QRowProfile);
template BulgeResult<double> bulge_chase<double>(MatrixView<double>, index_t,
                                                 MatrixView<double>*, QRowProfile);

BulgeResult<float> bulge_chase(Context& ctx, MatrixView<float> a, index_t bw,
                               MatrixView<float>* q, QRowProfile q_profile) {
  StageTimer stage(ctx.telemetry(), "bulge.chase");
  return bulge_chase<float>(a, bw, q, q_profile);
}

BulgeResult<double> bulge_chase(Context& ctx, MatrixView<double> a, index_t bw,
                                MatrixView<double>* q, QRowProfile q_profile) {
  StageTimer stage(ctx.telemetry(), "bulge.chase");
  return bulge_chase<double>(a, bw, q, q_profile);
}

}  // namespace tcevd::bulge
