// Bulge chasing: symmetric band -> tridiagonal (the second stage of two-stage
// tridiagonalization; the paper calls MAGMA's implementation, we build the
// classic Givens-rotation scheme of Schwarz/Rutishauser).
//
// The bandwidth is peeled one diagonal at a time: eliminating an entry on the
// outermost diagonal with a Givens rotation creates a single bulge one place
// outside the band, which is chased down and off the matrix in strides of the
// current bandwidth. Cost is O(n^2 b) flops — this is why the paper keeps the
// SBR bandwidth b modest (the bulge-chasing stage scales with b) even though
// larger b would make the SBR GEMMs squarer still.
//
// This header is the SERIAL driver — the bitwise reference. The wavefront-
// parallel driver (bulge_wavefront.hpp) runs the identical rotation sequence
// per sweep on the shared ThreadPool and is pinned bitwise-equal to this one
// for every thread count; see DESIGN.md §14.
#pragma once

#include <vector>

#include "src/bulge/bulge_kernels.hpp"
#include "src/common/matrix.hpp"

namespace tcevd {
class Context;
}  // namespace tcevd

namespace tcevd::bulge {

template <typename T>
struct BulgeResult {
  std::vector<T> d;  ///< diagonal of the tridiagonal form
  std::vector<T> e;  ///< subdiagonal
};

/// Reduce symmetric `a` (full storage, bandwidth `bw`) to tridiagonal form.
/// If `q` is non-null it must be n x n and is multiplied on the right by
/// every rotation (pass the SBR's Q to keep the full similarity transform).
/// `a` is overwritten with the tridiagonal matrix. `q_profile` optionally
/// narrows the Q update to the rows that can be nonzero (see QRowProfile);
/// the default is the dense full-row loop.
template <typename T>
BulgeResult<T> bulge_chase(MatrixView<T> a, index_t bw, MatrixView<T>* q = nullptr,
                           QRowProfile q_profile = {});

extern template BulgeResult<float> bulge_chase<float>(MatrixView<float>, index_t,
                                                      MatrixView<float>*, QRowProfile);
extern template BulgeResult<double> bulge_chase<double>(MatrixView<double>, index_t,
                                                        MatrixView<double>*, QRowProfile);

/// Context-aware entry points: same rotation-level algorithm (no GEMMs, no
/// scratch matrices), but the elapsed time lands on the context's telemetry
/// under stage "bulge.chase". Both instantiations are covered so the double
/// reference pipelines are stage-attributed too.
BulgeResult<float> bulge_chase(Context& ctx, MatrixView<float> a, index_t bw,
                               MatrixView<float>* q = nullptr, QRowProfile q_profile = {});
BulgeResult<double> bulge_chase(Context& ctx, MatrixView<double> a, index_t bw,
                                MatrixView<double>* q = nullptr, QRowProfile q_profile = {});

}  // namespace tcevd::bulge
