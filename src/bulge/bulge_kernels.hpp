// Shared rotation kernels for the two bulge-chasing drivers.
//
// The serial driver (bulge_chasing.cpp) and the wavefront-parallel driver
// (bulge_wavefront.cpp) must produce bitwise-identical tridiagonal output and
// accumulated Q: the parallel schedule only reorders rotation applications
// whose touched entries are disjoint (see DESIGN.md §14), so any arithmetic
// difference between the two paths would break the equality the test suite
// pins. Both drivers therefore execute chase iterations through the one
// chase_elim below — there is exactly one place that computes (c, s) and
// applies a rotation.
#pragma once

#include <algorithm>
#include <cmath>

#include "src/common/matrix.hpp"

namespace tcevd::bulge {

/// Optional hint about the nonzero row profile of the Q being accumulated.
/// band < 0 means dense (every rotation updates all q.rows() rows — the safe
/// default, and what evd::solve passes for the SBR-accumulated Q). band >= 0
/// asserts that on entry q(k, j) == 0 for |k - j| > band (band == 0 is the
/// identity), which lets the chase maintain per-column support windows and
/// skip rows where both rotated columns are exactly zero. The window rule is
/// deterministic and identical in the serial and wavefront drivers, so a
/// hinted run is bitwise-reproducible across schedules and thread counts.
/// A hint that overstates the sparsity silently corrupts Q — it is trusted.
struct QRowProfile {
  index_t band = -1;
};

namespace detail {

/// Two-sided Givens rotation A <- G^T A G in the plane (i, i+1), touching
/// only columns/rows in [lo, hi) (the band window). G([i,i+1],[i,i+1]) =
/// [[c, -s], [s, c]].
template <typename T>
inline void apply_sym_rotation(MatrixView<T> a, index_t i, T c, T s, index_t lo,
                               index_t hi) {
  const index_t j = i + 1;
  for (index_t k = lo; k < hi; ++k) {
    const T t1 = a(i, k);
    const T t2 = a(j, k);
    a(i, k) = c * t1 + s * t2;
    a(j, k) = -s * t1 + c * t2;
  }
  for (index_t k = lo; k < hi; ++k) {
    const T t1 = a(k, i);
    const T t2 = a(k, j);
    a(k, i) = c * t1 + s * t2;
    a(k, j) = -s * t1 + c * t2;
  }
}

/// Right-multiply q by the same rotation (accumulates the similarity),
/// touching only rows [row_lo, row_hi). Rows outside the window must hold
/// exact zeros in both columns — the rotation maps a (0, 0) pair to (0, 0),
/// so skipping them leaves Q equal (as values) to the full-row loop.
template <typename T>
inline void apply_q_rotation(MatrixView<T> q, index_t i, T c, T s, index_t row_lo,
                             index_t row_hi) {
  const index_t j = i + 1;
  for (index_t k = row_lo; k < row_hi; ++k) {
    const T t1 = q(k, i);
    const T t2 = q(k, j);
    q(k, i) = c * t1 + s * t2;
    q(k, j) = -s * t1 + c * t2;
  }
}

/// Per-column nonzero row windows of Q: column j's nonzeros lie in
/// [lo[j], hi[j]). Null pointers mean dense (no tracking, full-row updates).
/// A rotation in the plane (i, i+1) unions the two columns' windows — the
/// union is exact under column mixing, so the maintained windows never
/// under-cover and the skipped rows are guaranteed zero pairs.
struct QSupport {
  index_t* lo = nullptr;
  index_t* hi = nullptr;
};

/// Number of chase iterations of sweep `s` at diagonal distance `d`:
/// the bulge lands at rows s + d, s + 2d, ... while they stay below n.
inline index_t sweep_length(index_t n, index_t d, index_t s) { return (n - 1 - s) / d; }

/// One chase iteration: elimination k of sweep s at diagonal distance d.
/// k == 0 zeroes the original outer-diagonal entry (s + d, s); every later k
/// zeroes the bulge the previous iteration pushed d rows further down. The
/// iteration index fully determines the touched entries, so drivers need no
/// per-sweep cursor state beyond k itself.
template <typename T>
inline void chase_elim(MatrixView<T> a, MatrixView<T>* q, index_t n, index_t d,
                       index_t s, index_t k, QSupport qs) {
  const index_t tcol = (k == 0) ? s : s + k * d - 1;
  const index_t row = s + (k + 1) * d;
  const T f = a(row - 1, tcol);
  const T g = a(row, tcol);
  if (g != T{}) {
    const T h = std::hypot(f, g);
    const T c = f / h;
    const T sn = g / h;
    // Window: the rotated rows/cols carry entries within the current band
    // (+1 for the live bulge) around indices row-1, row.
    const index_t lo = tcol;
    const index_t hi = std::min(n, row + d + 1);
    apply_sym_rotation(a, row - 1, c, sn, lo, hi);
    a(row, tcol) = T{};  // exact zero by construction
    a(tcol, row) = T{};
    if (q != nullptr) {
      const index_t i = row - 1;
      index_t wlo = 0;
      index_t whi = q->rows();
      if (qs.lo != nullptr) {
        wlo = std::min(qs.lo[i], qs.lo[i + 1]);
        whi = std::max(qs.hi[i], qs.hi[i + 1]);
      }
      apply_q_rotation(*q, i, c, sn, wlo, whi);
      if (qs.lo != nullptr) {
        qs.lo[i] = qs.lo[i + 1] = wlo;
        qs.hi[i] = qs.hi[i + 1] = whi;
      }
    }
  }
}

/// Initialize QSupport windows for a Q with the given row profile.
inline void init_q_support(QSupport qs, index_t n, index_t q_rows, index_t band) {
  for (index_t j = 0; j < n; ++j) {
    qs.lo[j] = std::max<index_t>(0, j - band);
    qs.hi[j] = std::min<index_t>(q_rows, j + band + 1);
  }
}

}  // namespace detail
}  // namespace tcevd::bulge
