#include "src/bulge/bulge_wavefront.hpp"

#include <algorithm>
#include <atomic>
#include <new>
#include <string>
#include <type_traits>

#include "src/common/context.hpp"
#include "src/common/recovery.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/sbr/band.hpp"

namespace tcevd::bulge {

namespace {

// Shared state of one diagonal's fan-out. One instance lives on the
// broadcasting caller's stack; lanes reach it through the try_broadcast ctx
// pointer. Sweep-blocks are claimed off `next_block` in ascending ticket
// order — a lane finishes its whole block before claiming another, so the
// lane holding the minimum unfinished block only ever waits on progress of a
// block that is finished or actively advancing (deadlock-free by induction).
template <typename T>
struct ChaseShared {
  MatrixView<T> a;
  MatrixView<T>* q = nullptr;
  detail::QSupport qs;
  index_t n = 0;
  index_t d = 0;
  index_t nsweeps = 0;
  index_t block = 1;   // sweeps per block (<= kMaxSweepBlock)
  index_t chunk = 1;   // eliminations advanced+published per wavestep
  index_t nblocks = 0;
  std::atomic<index_t>* progress = nullptr;  // per-sweep eliminations done
  std::atomic<index_t> next_block{0};
};

// Run every elimination of sweep-block `b` (sweeps s0 .. s0+nb-1), staggered
// so sweep j trails sweep j-1 by two eliminations — exactly the gap the
// dependency rule needs, so within the block ordering holds by program
// order and only the block's FIRST sweep ever waits on the progress vector
// (on the last sweep of the previous block, published chunk-by-chunk: blocks
// pipeline instead of serializing).
template <typename T>
void run_block(ChaseShared<T>& st, index_t b) {
  const index_t s0 = b * st.block;
  const index_t nb = std::min(st.block, st.nsweeps - s0);
  index_t len[kMaxSweepBlock];
  index_t done[kMaxSweepBlock];
  for (index_t j = 0; j < nb; ++j) {
    len[j] = detail::sweep_length(st.n, st.d, s0 + j);
    done[j] = 0;
  }
  const index_t prev_len = (s0 > 0) ? detail::sweep_length(st.n, st.d, s0 - 1) : 0;
  for (index_t h = st.chunk;; h += st.chunk) {
    bool all_done = true;
    for (index_t j = 0; j < nb; ++j) {
      const index_t stagger = 2 * j;
      const index_t target = std::min(len[j], h > stagger ? h - stagger : index_t{0});
      if (target > done[j]) {
        if (j == 0 && s0 > 0) {
          // Gap-2 rule: elimination k needs progress[s0-1] >= min(prev_len,
          // k+3); covering k = target-1 covers the whole chunk.
          const index_t need = std::min(prev_len, target + 2);
          int backoff = 0;
          while (st.progress[s0 - 1].load(std::memory_order_acquire) < need) {
            spin_wait_hint(backoff);
          }
        }
        for (index_t k = done[j]; k < target; ++k) {
          detail::chase_elim(st.a, st.q, st.n, st.d, s0 + j, k, st.qs);
        }
        done[j] = target;
        // Release: the next block's acquire spin on this sweep must see every
        // matrix/Q write up to elimination target-1.
        st.progress[s0 + j].store(target, std::memory_order_release);
      }
      if (done[j] < len[j]) all_done = false;
    }
    if (all_done) return;
  }
}

template <typename T>
void lane(ChaseShared<T>& st) {
  for (;;) {
    const index_t b = st.next_block.fetch_add(1, std::memory_order_relaxed);
    if (b >= st.nblocks) return;
    run_block(st, b);
  }
}

template <typename T>
void lane_trampoline(void* ctx, long /*lane_index*/) {
  lane(*static_cast<ChaseShared<T>*>(ctx));
}

}  // namespace

std::size_t wavefront_workspace_bytes(index_t n) {
  const std::size_t count = static_cast<std::size_t>(n > 0 ? n : 1);
  return count * sizeof(std::atomic<index_t>) + 2 * count * sizeof(index_t) +
         3 * Workspace::kAlignment;
}

template <typename T>
BulgeResult<T> bulge_chase_wavefront(Context& ctx, MatrixView<T> a, index_t bw,
                                     MatrixView<T>* q, const WavefrontOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "bulge_chase_wavefront requires a square matrix");
  TCEVD_CHECK(bw >= 1, "bulge_chase_wavefront bandwidth must be >= 1");
  if (q) TCEVD_CHECK(q->cols() == n, "bulge_chase_wavefront Q must have n columns");

  Timer total;
  Workspace::Scope scope(ctx.workspace());

  static_assert(std::is_trivially_destructible_v<std::atomic<index_t>>,
                "progress vector is rewound by Scope, never destroyed");
  std::atomic<index_t>* progress = nullptr;
  detail::QSupport qs;
  if (n > 0) {
    void* raw = ctx.workspace().alloc_bytes(static_cast<std::size_t>(n) *
                                            sizeof(std::atomic<index_t>));
    progress = static_cast<std::atomic<index_t>*>(raw);
    for (index_t i = 0; i < n; ++i) new (progress + i) std::atomic<index_t>(0);
    if (q != nullptr && opt.q_profile.band >= 0) {
      qs.lo = ctx.workspace().alloc<index_t>(static_cast<std::size_t>(n));
      qs.hi = ctx.workspace().alloc<index_t>(static_cast<std::size_t>(n));
      detail::init_q_support(qs, n, q->rows(), opt.q_profile.band);
    }
  }

  const index_t block = std::clamp<index_t>(opt.sweep_block, 1, kMaxSweepBlock);
  for (index_t d = std::min(bw, n - 1); d >= 2; --d) {
    Timer fanout;
    const index_t nsweeps = n - d;
    for (index_t s = 0; s < nsweeps; ++s) progress[s].store(0, std::memory_order_relaxed);

    ChaseShared<T> st;
    st.a = a;
    st.q = q;
    st.qs = qs;
    st.n = n;
    st.d = d;
    st.nsweeps = nsweeps;
    st.block = block;
    st.chunk = std::max<index_t>(1, opt.tile_rows / d);
    st.nblocks = (nsweeps + block - 1) / block;
    st.progress = progress;

    bool pooled = false;
    if (opt.pool != nullptr && st.nblocks > 1 && !ThreadPool::on_worker_thread()) {
      long nlanes = static_cast<long>(opt.pool->size()) + 1;  // caller steals too
      if (opt.max_lanes > 0) nlanes = std::min<long>(nlanes, opt.max_lanes);
      nlanes = std::min<long>(nlanes, static_cast<long>(st.nblocks));
      if (nlanes > 1) {
        pooled = opt.pool->try_broadcast(nlanes, &lane_trampoline<T>, &st);
      }
    }
    // Declined / serial: the caller drains every block in ticket order; each
    // wait sees an already-final progress value, so the path is wait-free and
    // applies the identical rotation sequence.
    if (!pooled) lane(st);
    ctx.telemetry().record_stage("bulge.chase.sweep", fanout.seconds());
  }

  ctx.telemetry().record_stage("bulge.chase.wavefront", total.seconds());
  BulgeResult<T> out;
  sbr::extract_tridiag<T>(a, out.d, out.e);
  return out;
}

template BulgeResult<float> bulge_chase_wavefront<float>(Context&, MatrixView<float>, index_t,
                                                         MatrixView<float>*,
                                                         const WavefrontOptions&);
template BulgeResult<double> bulge_chase_wavefront<double>(Context&, MatrixView<double>,
                                                           index_t, MatrixView<double>*,
                                                           const WavefrontOptions&);

template <typename T>
BulgeResult<T> bulge_chase_auto(Context& ctx, MatrixView<T> a, index_t bw,
                                MatrixView<T>* q, int bulge_threads) {
  const index_t n = a.rows();
  const bool forced = bulge_threads >= 2;
  const bool eligible = bulge_threads != 1 && bw >= 2 && n > 2 &&
                        !ThreadPool::on_worker_thread();
  if (forced && !eligible) {
    // An explicit lane request that cannot engage used to serialize without
    // a trace; say why the lanes never lit up so perf-knob users can see it.
    const char* why = ThreadPool::on_worker_thread()
                          ? "the caller is already a thread-pool worker (nested "
                            "parallelism stays serial)"
                      : bw < 2 ? "the band is too narrow (bandwidth < 2)"
                               : "the matrix is too small (n <= 2)";
    recovery::note("evd.second_stage",
                   "bulge_threads = " + std::to_string(bulge_threads) +
                       " requested but the wavefront cannot engage: " + why +
                       "; running the serial chase (bitwise-identical output)");
  }
  if (eligible && (forced || n >= kAutoWavefrontMinN)) {
    WavefrontOptions wopt;
    wopt.pool = &gemm_pool();
    if (forced) wopt.max_lanes = bulge_threads;
    return bulge_chase_wavefront<T>(ctx, a, bw, q, wopt);
  }
  return bulge_chase(ctx, a, bw, q);
}

template BulgeResult<float> bulge_chase_auto<float>(Context&, MatrixView<float>, index_t,
                                                    MatrixView<float>*, int);
template BulgeResult<double> bulge_chase_auto<double>(Context&, MatrixView<double>, index_t,
                                                      MatrixView<double>*, int);

}  // namespace tcevd::bulge
