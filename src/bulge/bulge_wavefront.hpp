// Wavefront-parallel, cache-blocked bulge chasing.
//
// The serial chase (bulge_chasing.hpp) runs the sweeps of each diagonal one
// after another; this driver pipelines them. Consecutive sweeps are grouped
// into blocked sweep-sets (cache blocking: one lane advances a whole set
// through a band tile before the tile leaves cache), the band is cut into
// row tiles, and sweep s+1 enters a tile region as soon as sweep s has
// cleared it — the classic anti-diagonal wavefront of Rodríguez-Sánchez et
// al. (arXiv 1709.00302) and Ringoot et al. (arXiv 2510.12705), mapped onto
// the shared ThreadPool via the allocation-free try_broadcast fan-out.
//
// Dependency tracking is a per-sweep progress vector: progress[s] counts the
// chase eliminations of sweep s already applied at the current diagonal.
// Elimination k of sweep s may run once progress[s-1] >= min(len(s-1), k+3)
// — the gap-2 rule. DESIGN.md §14 proves that every pair of rotation
// applications this rule leaves unordered touches disjoint matrix entries,
// so ANY schedule respecting it — any lane count, block size, or tile height
// — applies the exact serial rotation sequence to every memory location and
// the output (tridiagonal d/e AND accumulated Q) is bitwise-equal to
// bulge_chase for every thread count. The test suite pins this.
#pragma once

#include <cstddef>

#include "src/bulge/bulge_chasing.hpp"
#include "src/common/matrix.hpp"

namespace tcevd {
class Context;
class ThreadPool;
}  // namespace tcevd

namespace tcevd::bulge {

struct WavefrontOptions {
  /// Pool to fan lanes out on (e.g. &gemm_pool()). nullptr, a busy pool
  /// (try_broadcast declined), or a caller that is itself a pool worker all
  /// fall back to the caller draining every sweep-block inline — same
  /// rotations, same output, no deadlock.
  ThreadPool* pool = nullptr;
  /// Consecutive sweeps advanced together by one lane (cache blocking).
  /// Clamped to [1, kMaxSweepBlock]. Output does not depend on it.
  index_t sweep_block = 8;
  /// Band rows a sweep advances per wavestep (the tile height); the chunk of
  /// eliminations published at once is max(1, tile_rows / d). Output does
  /// not depend on it.
  index_t tile_rows = 192;
  /// Cap on broadcast lanes; 0 means pool size + 1 (the caller participates).
  int max_lanes = 0;
  /// Row profile of the accumulated Q (see QRowProfile; default dense).
  QRowProfile q_profile{};
};

/// Upper bound on the context-workspace bytes bulge_chase_wavefront checks
/// out for an n x n problem (progress vector + Q support windows). Add this
/// to lwork-style reservations alongside evd/sbr workspace_query.
std::size_t wavefront_workspace_bytes(index_t n);

/// Hard cap on WavefrontOptions::sweep_block (per-lane stack state is sized
/// by it).
inline constexpr index_t kMaxSweepBlock = 32;

/// Reduce symmetric band `a` (full storage, bandwidth `bw`) to tridiagonal,
/// bitwise-equal to bulge_chase(a, bw, q, opt.q_profile) for every pool /
/// lane count / blocking choice. Elapsed time lands on the context telemetry
/// under "bulge.chase.wavefront" (total) and "bulge.chase.sweep" (summed
/// per-diagonal fan-out windows). Progress state lives in the context
/// workspace arena — steady-state calls allocate nothing.
template <typename T>
BulgeResult<T> bulge_chase_wavefront(Context& ctx, MatrixView<T> a, index_t bw,
                                     MatrixView<T>* q = nullptr,
                                     const WavefrontOptions& opt = {});

extern template BulgeResult<float> bulge_chase_wavefront<float>(
    Context&, MatrixView<float>, index_t, MatrixView<float>*, const WavefrontOptions&);
extern template BulgeResult<double> bulge_chase_wavefront<double>(
    Context&, MatrixView<double>, index_t, MatrixView<double>*, const WavefrontOptions&);

/// Smallest n the auto route (bulge_threads == 0) considers worth fanning
/// out: below this the per-diagonal broadcast join overhead beats the win.
inline constexpr index_t kAutoWavefrontMinN = 256;

/// Routing shim for the solver drivers (EvdOptions::bulge_threads): 1 forces
/// the serial chase, >= 2 forces the wavefront on gemm_pool() capped at that
/// many lanes, anything else picks the wavefront automatically when the
/// problem is big enough (kAutoWavefrontMinN), the band is chaseable
/// (bw >= 2), and the caller is not itself a pool worker (solve_many workers
/// are the parallelism — fanning out under them would only add spin
/// overhead). Output is bitwise-identical across every setting.
template <typename T>
BulgeResult<T> bulge_chase_auto(Context& ctx, MatrixView<T> a, index_t bw,
                                MatrixView<T>* q, int bulge_threads);

extern template BulgeResult<float> bulge_chase_auto<float>(Context&, MatrixView<float>,
                                                           index_t, MatrixView<float>*, int);
extern template BulgeResult<double> bulge_chase_auto<double>(Context&, MatrixView<double>,
                                                             index_t, MatrixView<double>*,
                                                             int);

}  // namespace tcevd::bulge
