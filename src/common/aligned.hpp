// 64-byte-aligned allocation for kernel scratch buffers.
//
// The SIMD micro-kernels (src/blas/simd_kernels_avx2.cpp) use aligned vector
// loads on the packed operand panels, which requires the pack arenas — and
// every thread-local scratch vector that feeds them — to start on (at least)
// a 32-byte boundary. AlignedAllocator pins them to 64 bytes: one full cache
// line, so a panel never straddles a line at its head and the alignment also
// covers any future AVX-512 widening.
//
// AlignedVector<T> is a drop-in std::vector replacement; reserve_scratch
// (src/common/scratch.hpp) accepts either vector type.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace tcevd {

inline constexpr std::size_t kKernelAlignment = 64;

template <typename T, std::size_t Align = kKernelAlignment>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tcevd
