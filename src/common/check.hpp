// Lightweight contract checks (C++ Core Guidelines I.6/I.8 style).
//
// TCEVD_CHECK is always on (argument validation on public API boundaries);
// TCEVD_ASSERT compiles away in release builds (internal invariants on hot
// paths).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tcevd {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "tcevd: check `%s` failed at %s:%d: %s\n", expr, file, line, msg);
  std::abort();
}

}  // namespace tcevd

#define TCEVD_CHECK(expr, msg)                              \
  do {                                                      \
    if (!(expr)) ::tcevd::check_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define TCEVD_ASSERT(expr, msg) ((void)0)
#else
#define TCEVD_ASSERT(expr, msg) TCEVD_CHECK(expr, msg)
#endif
