#include "src/common/context.hpp"

namespace tcevd {

double Telemetry::recorded_flops() const noexcept {
  double total = 0.0;
  for (const auto& s : shapes_) total += s.flops();
  return total;
}

void Telemetry::record_stage(std::string_view stage, double seconds) {
  for (auto& s : stages_) {
    if (s.name == stage) {
      s.seconds += seconds;
      ++s.calls;
      return;
    }
  }
  stages_.push_back(StageStat{std::string(stage), seconds, 1});
}

double Telemetry::stage_seconds(std::string_view stage) const noexcept {
  for (const auto& s : stages_)
    if (s.name == stage) return s.seconds;
  return 0.0;
}

void Telemetry::record_recovery(const RecoveryLog& log) {
  recovery_.insert(recovery_.end(), log.begin(), log.end());
}

Context& Context::lookahead_sibling() {
  if (!sibling_) sibling_ = std::make_unique<Context>(*engine_);
  return *sibling_;
}

void Context::absorb_sibling_telemetry() {
  if (!sibling_) return;
  telemetry_.merge_from(sibling_->telemetry_);
  sibling_->telemetry_.clear_recorded();
  sibling_->telemetry_.clear_stages();
  sibling_->telemetry_.clear_recovery();
}

Context& compat_context(tc::GemmEngine& engine) {
  struct Entry {
    const tc::GemmEngine* engine;
    std::unique_ptr<Context> ctx;
  };
  thread_local std::vector<Entry> cache;
  for (Entry& e : cache)
    if (e.engine == &engine) return *e.ctx;
  // A full cache means the caller churns through short-lived engines; their
  // scratch contexts are cold anyway, so drop the lot rather than grow.
  constexpr std::size_t kMaxEntries = 8;
  if (cache.size() >= kMaxEntries) cache.clear();
  cache.push_back(Entry{&engine, std::make_unique<Context>(engine)});
  return *cache.back().ctx;
}

void Telemetry::merge_from(const Telemetry& other) {
  shapes_.insert(shapes_.end(), other.shapes_.begin(), other.shapes_.end());
  for (const StageStat& s : other.stages_) {
    bool found = false;
    for (StageStat& mine : stages_) {
      if (mine.name == s.name) {
        mine.seconds += s.seconds;
        mine.calls += s.calls;
        found = true;
        break;
      }
    }
    if (!found) stages_.push_back(s);
  }
  recovery_.insert(recovery_.end(), other.recovery_.begin(), other.recovery_.end());
}

}  // namespace tcevd
