#include "src/common/context.hpp"

namespace tcevd {

double Telemetry::recorded_flops() const noexcept {
  double total = 0.0;
  for (const auto& s : shapes_) total += s.flops();
  return total;
}

void Telemetry::record_stage(std::string_view stage, double seconds) {
  for (auto& s : stages_) {
    if (s.name == stage) {
      s.seconds += seconds;
      ++s.calls;
      return;
    }
  }
  stages_.push_back(StageStat{std::string(stage), seconds, 1});
}

double Telemetry::stage_seconds(std::string_view stage) const noexcept {
  for (const auto& s : stages_)
    if (s.name == stage) return s.seconds;
  return 0.0;
}

void Telemetry::record_recovery(const RecoveryLog& log) {
  recovery_.insert(recovery_.end(), log.begin(), log.end());
}

void Telemetry::merge_from(const Telemetry& other) {
  shapes_.insert(shapes_.end(), other.shapes_.begin(), other.shapes_.end());
  for (const StageStat& s : other.stages_) {
    bool found = false;
    for (StageStat& mine : stages_) {
      if (mine.name == s.name) {
        mine.seconds += s.seconds;
        mine.calls += s.calls;
        found = true;
        break;
      }
    }
    if (!found) stages_.push_back(s);
  }
  recovery_.insert(recovery_.end(), other.recovery_.begin(), other.recovery_.end());
}

}  // namespace tcevd
