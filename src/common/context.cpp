#include "src/common/context.hpp"

#include <algorithm>
#include <cmath>

namespace tcevd {

double Telemetry::recorded_flops() const noexcept {
  double total = 0.0;
  for (const auto& s : shapes_) total += s.flops();
  return total;
}

void Telemetry::record_stage(std::string_view stage, double seconds) {
  for (auto& s : stages_) {
    if (s.name == stage) {
      s.seconds += seconds;
      ++s.calls;
      return;
    }
  }
  stages_.push_back(StageStat{std::string(stage), seconds, 1});
}

double Telemetry::stage_seconds(std::string_view stage) const noexcept {
  for (const auto& s : stages_)
    if (s.name == stage) return s.seconds;
  return 0.0;
}

namespace {

/// log2 microsecond bucket of one latency sample (see Telemetry::LatencyStat).
int latency_bucket(double seconds) noexcept {
  double us = seconds * 1e6;
  int idx = 0;
  while (idx + 1 < Telemetry::kLatencyBuckets && us >= 2.0) {
    us *= 0.5;
    ++idx;
  }
  return idx;
}

}  // namespace

void Telemetry::record_latency(std::string_view name, double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  for (auto& l : latencies_) {
    if (l.name == name) {
      ++l.count;
      l.sum_s += seconds;
      l.min_s = std::min(l.min_s, seconds);
      l.max_s = std::max(l.max_s, seconds);
      ++l.buckets[static_cast<std::size_t>(latency_bucket(seconds))];
      return;
    }
  }
  LatencyStat stat;
  stat.name = std::string(name);
  stat.count = 1;
  stat.sum_s = seconds;
  stat.min_s = seconds;
  stat.max_s = seconds;
  ++stat.buckets[static_cast<std::size_t>(latency_bucket(seconds))];
  latencies_.push_back(std::move(stat));
}

double Telemetry::latency_quantile(std::string_view name, double q) const noexcept {
  for (const auto& l : latencies_) {
    if (l.name != name) continue;
    if (l.count == 0) return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const long target = std::max<long>(1, static_cast<long>(q * static_cast<double>(l.count) + 0.5));
    long seen = 0;
    for (int b = 0; b < kLatencyBuckets; ++b) {
      seen += l.buckets[static_cast<std::size_t>(b)];
      if (seen >= target) {
        // Upper edge of bucket b: 2^(b+1) microseconds, clamped to the
        // observed maximum so the estimate never exceeds reality.
        const double edge_s = std::ldexp(1.0, b + 1) * 1e-6;
        return std::min(edge_s, l.max_s);
      }
    }
    return l.max_s;
  }
  return 0.0;
}

void Telemetry::record_recovery(const RecoveryLog& log) {
  recovery_.insert(recovery_.end(), log.begin(), log.end());
}

Context& Context::lookahead_sibling() {
  if (!sibling_) sibling_ = std::make_unique<Context>(*engine_);
  return *sibling_;
}

void Context::absorb_sibling_telemetry() {
  if (!sibling_) return;
  telemetry_.merge_from(sibling_->telemetry_);
  sibling_->telemetry_.clear_recorded();
  sibling_->telemetry_.clear_stages();
  sibling_->telemetry_.clear_recovery();
}

Context& compat_context(tc::GemmEngine& engine) {
  struct Entry {
    const tc::GemmEngine* engine;
    std::unique_ptr<Context> ctx;
  };
  thread_local std::vector<Entry> cache;
  for (Entry& e : cache)
    if (e.engine == &engine) return *e.ctx;
  // A full cache means the caller churns through short-lived engines; their
  // scratch contexts are cold anyway, so drop the lot rather than grow.
  constexpr std::size_t kMaxEntries = 8;
  if (cache.size() >= kMaxEntries) cache.clear();
  cache.push_back(Entry{&engine, std::make_unique<Context>(engine)});
  return *cache.back().ctx;
}

void Telemetry::merge_from(const Telemetry& other) {
  shapes_.insert(shapes_.end(), other.shapes_.begin(), other.shapes_.end());
  for (const StageStat& s : other.stages_) {
    bool found = false;
    for (StageStat& mine : stages_) {
      if (mine.name == s.name) {
        mine.seconds += s.seconds;
        mine.calls += s.calls;
        found = true;
        break;
      }
    }
    if (!found) stages_.push_back(s);
  }
  for (const LatencyStat& l : other.latencies_) {
    bool found = false;
    for (LatencyStat& mine : latencies_) {
      if (mine.name == l.name) {
        if (mine.count == 0)
          mine.min_s = l.min_s;
        else if (l.count > 0)
          mine.min_s = std::min(mine.min_s, l.min_s);
        mine.count += l.count;
        mine.sum_s += l.sum_s;
        mine.max_s = std::max(mine.max_s, l.max_s);
        for (int b = 0; b < kLatencyBuckets; ++b)
          mine.buckets[static_cast<std::size_t>(b)] += l.buckets[static_cast<std::size_t>(b)];
        found = true;
        break;
      }
    }
    if (!found) latencies_.push_back(l);
  }
  recovery_.insert(recovery_.end(), other.recovery_.begin(), other.recovery_.end());
}

}  // namespace tcevd
