#include "src/common/context.hpp"

namespace tcevd {

double Telemetry::recorded_flops() const noexcept {
  double total = 0.0;
  for (const auto& s : shapes_) total += s.flops();
  return total;
}

void Telemetry::record_stage(std::string_view stage, double seconds) {
  for (auto& s : stages_) {
    if (s.name == stage) {
      s.seconds += seconds;
      ++s.calls;
      return;
    }
  }
  stages_.push_back(StageStat{std::string(stage), seconds, 1});
}

double Telemetry::stage_seconds(std::string_view stage) const noexcept {
  for (const auto& s : stages_)
    if (s.name == stage) return s.seconds;
  return 0.0;
}

void Telemetry::record_recovery(const RecoveryLog& log) {
  recovery_.insert(recovery_.end(), log.begin(), log.end());
}

}  // namespace tcevd
