// Execution context threaded through every pipeline layer.
//
// A Context bundles the three pieces of per-solve state that used to hide in
// engine members and thread-locals:
//
//   * the GemmEngine executing every level-3 update (borrowed and shareable
//     across contexts, or owned by this context),
//   * a bump-pointer workspace arena the hot paths check their temporaries
//     out of (see src/common/workspace.hpp) — size it up front with the
//     workspace_query APIs for allocation-free steady state,
//   * a telemetry sink: GEMM shape recording (moved off the engine, where it
//     raced between concurrent callers), per-stage wall-clock timers, and an
//     aggregated recovery log of every graceful-degradation event taken by
//     calls on this context.
//
// Thread-safety contract: one Context per thread. Engines are stateless
// (their one diagnostic counter is atomic) and may be shared by any number
// of contexts; the Context itself — arena, telemetry — must not be. This is
// the shape concurrent/batched solve() needs: N threads, N contexts, one
// engine.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/common/recovery.hpp"
#include "src/common/timer.hpp"
#include "src/common/workspace.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd {

/// Per-context instrumentation: GEMM shapes, stage timers, recovery events.
class Telemetry {
 public:
  // --- GEMM shape recording (paper Table 1 / Figs. 5-7 measurements) ------
  void set_recording(bool on) noexcept { recording_ = on; }
  bool recording() const noexcept { return recording_; }
  void record_gemm(const tc::GemmShape& shape) {
    if (recording_) shapes_.push_back(shape);
  }
  const std::vector<tc::GemmShape>& recorded() const noexcept { return shapes_; }
  void clear_recorded() noexcept { shapes_.clear(); }
  /// Hardware flops of the recorded stream — EngineKind-aware, so EC-TC
  /// GEMMs count their three TC products (GemmShape::flops()).
  double recorded_flops() const noexcept;

  // --- per-stage wall-clock timers ----------------------------------------
  struct StageStat {
    std::string name;
    double seconds = 0.0;
    long calls = 0;
  };
  /// Accumulate `seconds` under `stage` (same stage adds up across calls).
  void record_stage(std::string_view stage, double seconds);
  const std::vector<StageStat>& stages() const noexcept { return stages_; }
  /// Total seconds recorded under `stage` (0.0 if never recorded).
  double stage_seconds(std::string_view stage) const noexcept;
  void clear_stages() noexcept { stages_.clear(); }

  // --- latency histograms ---------------------------------------------------
  // Per-event-class latency distributions for the streaming service tier
  // (service.queue admission wait, service.stage.* per-stage step times).
  // Buckets are log2-spaced in microseconds: bucket 0 covers [0, 2) us and
  // bucket i >= 1 covers [2^i, 2^(i+1)) us, so forty buckets span sub-
  // microsecond noise up to multi-day outliers without per-sample storage.
  static constexpr int kLatencyBuckets = 40;
  struct LatencyStat {
    std::string name;
    long count = 0;
    double sum_s = 0.0;
    double min_s = 0.0;  ///< smallest recorded sample (0 until first record)
    double max_s = 0.0;
    std::array<long, kLatencyBuckets> buckets{};
  };
  /// Add one latency sample under `name` (same name accumulates).
  void record_latency(std::string_view name, double seconds);
  const std::vector<LatencyStat>& latencies() const noexcept { return latencies_; }
  /// Approximate q-quantile (q in [0, 1]) of the samples recorded under
  /// `name`: the upper edge of the bucket holding the q-th sample, clamped to
  /// the observed max. Returns 0.0 when nothing was recorded under `name`.
  double latency_quantile(std::string_view name, double q) const noexcept;
  void clear_latencies() noexcept { latencies_.clear(); }

  // --- recovery aggregation -----------------------------------------------
  /// Degradation events accumulated across every call on this context (each
  /// driver call still returns its own per-call log, e.g. EvdResult::recovery).
  void record_recovery(const RecoveryLog& log);
  const RecoveryLog& recovery() const noexcept { return recovery_; }
  void clear_recovery() noexcept { recovery_.clear(); }

  // --- cross-context aggregation --------------------------------------------
  /// Fold another telemetry sink into this one: recorded GEMM shapes are
  /// appended, stage timers accumulate by name (seconds and call counts both
  /// add), latency histograms accumulate bucket-wise by name, and recovery
  /// events are appended. This is how batched drivers
  /// collapse per-worker telemetry into one aggregate view; merging is
  /// lossless for totals (sum over workers == merged totals) but does not
  /// preserve interleaving order across sources. `other` is left untouched;
  /// the caller serializes — merge while workers still record and you have a
  /// race.
  void merge_from(const Telemetry& other);

 private:
  bool recording_ = false;
  std::vector<tc::GemmShape> shapes_;
  std::vector<StageStat> stages_;
  std::vector<LatencyStat> latencies_;
  RecoveryLog recovery_;
};

/// RAII stage timer: records elapsed wall time into a Telemetry sink on
/// destruction (or at an explicit stop(), which also returns the seconds).
class StageTimer {
 public:
  StageTimer(Telemetry& telemetry, std::string_view stage)
      : telemetry_(&telemetry), stage_(stage) {}
  ~StageTimer() { stop(); }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Stop and record (idempotent); returns the elapsed seconds.
  double stop() {
    if (!stopped_) {
      stopped_ = true;
      seconds_ = timer_.seconds();
      telemetry_->record_stage(stage_, seconds_);
    }
    return seconds_;
  }

 private:
  Telemetry* telemetry_;
  std::string stage_;
  Timer timer_;
  bool stopped_ = false;
  double seconds_ = 0.0;
};

class Context {
 public:
  /// Borrow `engine` (it must outlive the context). Engines are shareable:
  /// many contexts — one per thread — may borrow the same engine.
  explicit Context(tc::GemmEngine& engine) : engine_(&engine) {}

  /// Take ownership of `engine`.
  explicit Context(std::unique_ptr<tc::GemmEngine> engine)
      : engine_(engine.get()), owned_(std::move(engine)) {
    TCEVD_CHECK(engine_ != nullptr, "Context requires a non-null engine");
  }

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  tc::GemmEngine& engine() noexcept { return *engine_; }
  const tc::GemmEngine& engine() const noexcept { return *engine_; }
  Workspace& workspace() noexcept { return workspace_; }
  Telemetry& telemetry() noexcept { return telemetry_; }
  const Telemetry& telemetry() const noexcept { return telemetry_; }

  /// C = alpha * op(A) * op(B) + beta * C through the engine, recording the
  /// shape (tagged with the engine's kind) when telemetry recording is on.
  void gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
            ConstMatrixView<float> b, float beta, MatrixView<float> c) {
    if (telemetry_.recording()) {
      const index_t k = (transa == blas::Trans::No) ? a.cols() : a.rows();
      telemetry_.record_gemm(tc::GemmShape{c.rows(), c.cols(), k, engine_->kind()});
    }
    engine_->gemm(transa, transb, alpha, a, b, beta, c);
  }

  // --- look-ahead sibling ---------------------------------------------------
  // Overlapped schedules (sbr_wy look-ahead) run two stages in flight at
  // once; two stages sharing one bump-pointer arena or one telemetry sink
  // would race, so the second stage gets a sibling context: same engine,
  // private arena + telemetry. Ownership rules during an overlap window:
  // exactly one thread touches the parent (arena, telemetry, gemm) and
  // exactly one thread touches the sibling; the join point then restores
  // single-thread access before absorb_sibling_telemetry() folds the
  // sibling's counters back into the parent.

  /// Lazily created, persistent sibling (its arena stays warm across calls,
  /// preserving the steady-state zero-allocation contract).
  Context& lookahead_sibling();
  bool has_lookahead_sibling() const noexcept { return sibling_ != nullptr; }
  /// Merge the sibling's telemetry into this context's and clear the
  /// sibling's. Call only when both sides are quiescent (after the join).
  void absorb_sibling_telemetry();

 private:
  friend class EngineOverrideScope;
  tc::GemmEngine* engine_;
  std::unique_ptr<tc::GemmEngine> owned_;
  Workspace workspace_;
  Telemetry telemetry_;
  std::unique_ptr<Context> sibling_;
};

/// RAII engine swap on an existing Context: while the scope is alive every
/// GEMM issued through `ctx` (and its look-ahead sibling, existing or created
/// during the scope) runs on `engine`; the destructor restores the original.
/// This is how verified solves escalate precision without rebuilding the
/// context — the warm workspace arena and accumulated telemetry carry over,
/// only the numerics change. The override engine is borrowed and must outlive
/// the scope; scopes nest (each restores what it saw). Same thread-ownership
/// rule as the Context itself: do not override an engine another thread is
/// solving on.
class EngineOverrideScope {
 public:
  EngineOverrideScope(Context& ctx, tc::GemmEngine& engine) noexcept
      : ctx_(&ctx), prev_(ctx.engine_) {
    ctx.engine_ = &engine;
    if (ctx.sibling_) ctx.sibling_->engine_ = &engine;
  }
  ~EngineOverrideScope() {
    ctx_->engine_ = prev_;
    // The sibling always shares the parent's engine, including one created
    // lazily while the override was live — restore it to the parent's.
    if (ctx_->sibling_) ctx_->sibling_->engine_ = prev_;
  }
  EngineOverrideScope(const EngineOverrideScope&) = delete;
  EngineOverrideScope& operator=(const EngineOverrideScope&) = delete;

 private:
  Context* ctx_;
  tc::GemmEngine* prev_;
};

/// Per-thread scratch context for the deprecated `GemmEngine&` compatibility
/// overloads. The old shims built a throwaway Context per call — cold arena,
/// telemetry dropped on the floor — so a legacy caller in a loop re-allocated
/// its entire workspace every solve. This returns one thread_local Context
/// per (thread, engine) instead: the arena reaches its steady state after the
/// first call and telemetry/recovery accumulate somewhere inspectable.
/// Entries are keyed by engine address and capped; the cache belongs to the
/// calling thread, so the one-context-per-thread contract holds by
/// construction. New code should own a real Context.
Context& compat_context(tc::GemmEngine& engine);

}  // namespace tcevd
