#include "src/common/fault.hpp"

#include <cstdio>
#include <cstdlib>

namespace tcevd::fault {

namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "panel.nan",
    "ec_tcgemm.saturate",
    "steqr.exhaust",
    "reconstruct_wy.singular",
    "stein.stagnate",
    "gemm.tile_corrupt",
    "verify.residual",
};

/// [first, last) of `s` with surrounding ASCII whitespace stripped.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

struct SiteState {
  std::atomic<int> budget{0};  // 0 = disarmed, -1 = unlimited, >0 = fires left
  std::atomic<int> fired{0};
};

SiteState g_sites[kSiteCount];

SiteState& state(Site site) { return g_sites[static_cast<int>(site)]; }

/// Arm sites named in TCEVD_FAULTS at process start (before main), so the
/// injection suite can run unmodified binaries under fault load.
bool init_from_env() {
  const char* env = std::getenv("TCEVD_FAULTS");
  if (!env || !*env) return true;
  std::string bad;
  if (!arm_from_env_value(env, &bad))
    std::fprintf(stderr, "tcevd: ignoring malformed TCEVD_FAULTS entry '%s'\n", bad.c_str());
  return true;
}

const bool g_env_initialized = init_from_env();

}  // namespace

namespace detail {

std::atomic<int> g_armed_sites{0};

bool should_fire_slow(Site site) noexcept {
  SiteState& s = state(site);
  int b = s.budget.load(std::memory_order_relaxed);
  for (;;) {
    if (b == 0) return false;
    if (b < 0) {  // unlimited
      s.fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (s.budget.compare_exchange_weak(b, b - 1, std::memory_order_relaxed)) {
      if (b == 1) g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
      s.fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

}  // namespace detail

const char* site_name(Site site) noexcept { return kSiteNames[static_cast<int>(site)]; }

bool site_from_name(const std::string& name, Site* out) noexcept {
  for (int i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

void arm(Site site, int fires) {
  if (fires == 0) {
    disarm(site);
    return;
  }
  SiteState& s = state(site);
  const int prev = s.budget.exchange(fires, std::memory_order_relaxed);
  s.fired.store(0, std::memory_order_relaxed);
  if (prev == 0) detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
}

void disarm(Site site) {
  SiteState& s = state(site);
  const int prev = s.budget.exchange(0, std::memory_order_relaxed);
  if (prev != 0) detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  for (int i = 0; i < kSiteCount; ++i) disarm(static_cast<Site>(i));
}

bool armed(Site site) noexcept {
  return state(site).budget.load(std::memory_order_relaxed) != 0;
}

int fired(Site site) noexcept { return state(site).fired.load(std::memory_order_relaxed); }

bool arm_from_spec(const std::string& spec) {
  const std::string trimmed = trim(spec);
  std::string name = trimmed;
  int fires = 1;
  const auto colon = trimmed.find(':');
  if (colon != std::string::npos) {
    name = trim(trimmed.substr(0, colon));
    const std::string count = trim(trimmed.substr(colon + 1));
    if (count.empty()) return false;
    char* end = nullptr;
    const long v = std::strtol(count.c_str(), &end, 10);
    if (end != count.c_str() + count.size()) return false;
    if (v < -1 || v > 1'000'000'000) return false;  // reject overflowed counts
    fires = static_cast<int>(v);
  }
  Site site;
  if (!site_from_name(name, &site)) return false;
  arm(site, fires);
  return true;
}

bool arm_from_env_value(const std::string& value, std::string* first_bad) {
  bool all_ok = true;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::size_t end = (comma == std::string::npos) ? value.size() : comma;
    const std::string entry = trim(value.substr(pos, end - pos));
    if (!entry.empty() && !arm_from_spec(entry)) {
      if (all_ok && first_bad != nullptr) *first_bad = entry;
      all_ok = false;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return all_ok;
}

}  // namespace tcevd::fault
