// Numerical fault injection for robustness testing.
//
// A fixed registry of named injection sites sits at the pipeline's fragile
// points (fp16 saturation, TSQR panel output, solver iteration caps). Each
// site is disarmed by default and costs a single relaxed atomic load on the
// hot path when nothing is armed anywhere in the process. Sites are armed
// programmatically (`fault::arm`) or via the environment variable
//
//   TCEVD_FAULTS="steqr.exhaust,panel.nan:2,ec_tcgemm.saturate:-1"
//
// where the optional `:count` is the number of times the site fires before
// auto-disarming (-1 = every time; default 1). One-shot budgets are what
// make fallback testing work: the injected failure fires on the first
// attempt and the recovery path then runs clean.
#pragma once

#include <atomic>
#include <string>

namespace tcevd::fault {

enum class Site : int {
  PanelNan = 0,          ///< "panel.nan" — poison the TSQR panel's WY output with NaN
  EcTcSaturate,          ///< "ec_tcgemm.saturate" — force fp16 saturation detection
  SteqrExhaust,          ///< "steqr.exhaust" — force QL iteration exhaustion
  ReconstructSingular,   ///< "reconstruct_wy.singular" — force a singular LU pivot
  SteinStagnate,         ///< "stein.stagnate" — force inverse-iteration failure
  GemmTileCorrupt,       ///< "gemm.tile_corrupt" — flip bits in one packed C tile
                         ///< right after its micro-kernel ran (ABFT test vector)
  VerifyResidual,        ///< "verify.residual" — force a residual-estimate breach
                         ///< in evd verification (escalation test vector)
  Count,                 // sentinel
};

inline constexpr int kSiteCount = static_cast<int>(Site::Count);

/// Registered name of a site ("steqr.exhaust", ...).
const char* site_name(Site site) noexcept;

/// Reverse lookup; returns false (and leaves *out* alone) for unknown names.
bool site_from_name(const std::string& name, Site* out) noexcept;

/// Arm `site` to fire `fires` times (-1 = unlimited). Re-arming resets the
/// budget and the fired counter.
void arm(Site site, int fires = 1);
void disarm(Site site);
void disarm_all();
bool armed(Site site) noexcept;

/// Times the site actually fired since it was last armed.
int fired(Site site) noexcept;

/// Parse one "site[:count]" spec (the TCEVD_FAULTS grammar) and arm it.
/// Whitespace around the site name and the count is tolerated. Returns false
/// for an unknown site name or a malformed/empty count.
bool arm_from_spec(const std::string& spec);

/// Parse a full comma-separated TCEVD_FAULTS value ("a, b:2, c:-1") and arm
/// every well-formed entry. Empty entries (leading/trailing/duplicated
/// commas) are skipped. Returns true when every non-empty entry parsed; on
/// failure the valid entries are still armed and, when `first_bad` is
/// non-null, it receives the first malformed spec (trimmed) so the caller
/// can say *which* entry was rejected instead of a bare false.
bool arm_from_env_value(const std::string& value, std::string* first_bad = nullptr);

namespace detail {
extern std::atomic<int> g_armed_sites;
bool should_fire_slow(Site site) noexcept;
}  // namespace detail

/// Hot-path query used by the injection sites themselves: consumes one unit
/// of the site's budget and returns true when the fault must trigger now.
/// When no site is armed process-wide this is a single relaxed load.
inline bool should_fire(Site site) noexcept {
  if (detail::g_armed_sites.load(std::memory_order_relaxed) == 0) return false;
  return detail::should_fire_slow(site);
}

}  // namespace tcevd::fault
