#include "src/common/flop_counter.hpp"

namespace tcevd {

FlopCounter& FlopCounter::instance() noexcept {
  static FlopCounter counter;
  return counter;
}

}  // namespace tcevd
