// Global floating-point-operation accounting.
//
// The paper's Table 2 compares the *actual arithmetic operation counts* of
// ZY-based vs WY-based SBR. Every level-3 kernel in src/blas and
// src/tensorcore reports its flops here; benches snapshot/reset around the
// region of interest. Counting is optional (enabled around instrumented
// regions) and costs one relaxed atomic add per kernel call.
#pragma once

#include <atomic>
#include <cstdint>

namespace tcevd {

class FlopCounter {
 public:
  static FlopCounter& instance() noexcept;

  void enable(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

  void add(std::uint64_t flops) noexcept {
    if (enabled()) total_.fetch_add(flops, std::memory_order_relaxed);
  }

  std::uint64_t total() const noexcept { return total_.load(std::memory_order_relaxed); }
  void reset() noexcept { total_.store(0, std::memory_order_relaxed); }

 private:
  FlopCounter() = default;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> total_{0};
};

/// RAII scope: enables counting, resets on entry, exposes the delta.
class FlopScope {
 public:
  FlopScope() noexcept {
    auto& c = FlopCounter::instance();
    was_enabled_ = c.enabled();
    start_ = c.total();
    c.enable(true);
  }
  ~FlopScope() { FlopCounter::instance().enable(was_enabled_); }
  FlopScope(const FlopScope&) = delete;
  FlopScope& operator=(const FlopScope&) = delete;

  std::uint64_t flops() const noexcept { return FlopCounter::instance().total() - start_; }

 private:
  std::uint64_t start_ = 0;
  bool was_enabled_ = false;
};

/// 2*m*n*k flops of a GEMM contribution.
inline std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k) noexcept {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

}  // namespace tcevd
