#include "src/common/half.hpp"

#include <bit>
#include <cstring>

namespace tcevd {

namespace {

inline std::uint32_t f32_bits(float f) noexcept { return std::bit_cast<std::uint32_t>(f); }
inline float bits_f32(std::uint32_t u) noexcept { return std::bit_cast<float>(u); }

}  // namespace

std::uint16_t float_to_half_bits(float f) noexcept {
  const std::uint32_t x = f32_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf / NaN. Keep a quiet-NaN payload bit so NaN stays NaN.
    if (abs > 0x7f800000u) return static_cast<std::uint16_t>(sign | 0x7e00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a value >= 2^16: overflow to infinity. (0x477ff000 is the
    // smallest fp32 whose RNE to fp16 is inf: 65520.)
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x38800000u) {
    // Subnormal fp16 (or zero): |f| < 2^-14. Align mantissa to a fixed-point
    // representation with the implicit bit made explicit, then RNE-shift.
    if (abs < 0x33000000u) return static_cast<std::uint16_t>(sign);  // < 2^-25: rounds to 0
    const std::uint32_t exp32 = abs >> 23;
    const std::uint32_t shift = 126u - exp32;  // 14..24 inclusive
    std::uint32_t mant = (abs & 0x007fffffu) | 0x00800000u;
    const std::uint32_t lsb = 1u << shift;
    const std::uint32_t round = (lsb >> 1);
    const std::uint32_t sticky_mask = round - 1u;
    std::uint32_t result = mant >> shift;
    if ((mant & round) && ((mant & sticky_mask) || (result & 1u))) ++result;
    return static_cast<std::uint16_t>(sign | result);
  }
  // Normal range: rebias exponent (127 -> 15) and RNE the low 13 mantissa bits.
  std::uint32_t h = (abs >> 13) - (112u << 10);
  const std::uint32_t rem = abs & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return static_cast<std::uint16_t>(sign | h);
}

float half_bits_to_float(std::uint16_t hb) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(hb) & 0x8000u) << 16;
  const std::uint32_t exp = (hb >> 10) & 0x1fu;
  const std::uint32_t mant = hb & 0x3ffu;

  if (exp == 0) {
    if (mant == 0) return bits_f32(sign);  // +-0
    // Subnormal: value = mant * 2^-24. Normalize.
    int shift = 0;
    std::uint32_t m = mant;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      ++shift;
    }
    m &= 0x3ffu;
    // value = 1.f * 2^(-14 - shift) once the leading bit is normalized.
    const std::uint32_t e32 = 127u - 14u - static_cast<std::uint32_t>(shift);
    return bits_f32(sign | (e32 << 23) | (m << 13));
  }
  if (exp == 0x1fu) {
    if (mant == 0) return bits_f32(sign | 0x7f800000u);  // inf
    return bits_f32(sign | 0x7f800000u | (mant << 13) | 0x00400000u);  // NaN
  }
  const std::uint32_t e32 = exp + (127u - 15u);
  return bits_f32(sign | (e32 << 23) | (mant << 13));
}

float round_to_tf32(float f) noexcept {
  std::uint32_t x = f32_bits(f);
  if ((x & 0x7f800000u) == 0x7f800000u) return f;  // inf/NaN pass through
  // RNE to a 10-bit mantissa: round bit is bit 12, sticky bits 0..11.
  const std::uint32_t rem = x & 0x1fffu;
  x &= ~0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (x & 0x2000u))) x += 0x2000u;
  return bits_f32(x);
}

}  // namespace tcevd
