// Software IEEE-754 binary16 and NVIDIA TF32 emulation.
//
// The paper's Tensor Core pipeline rounds fp32 operands to fp16 (or TF32)
// before every MMA and accumulates products in fp32. These conversions are
// the *entire* source of the 1e-4 "Tensor Core machine epsilon" the paper
// reports, so they are implemented bit-exactly here:
//
//   * binary16: 1 sign, 5 exponent, 10 mantissa bits; round-to-nearest-even,
//     gradual underflow to subnormals, overflow to +-inf.
//   * TF32:     1 sign, 8 exponent (same as fp32), 10 mantissa bits; modeled
//     as round-to-nearest-even of the fp32 mantissa to 10 bits.
//
// `half_t` is a storage-only type (no arithmetic); all Tensor Core math in
// src/tensorcore converts to fp32, multiplies, and accumulates in fp32 —
// exactly the HMMA data path.
#pragma once

#include <cstdint>

namespace tcevd {

/// Storage-only IEEE binary16 value.
struct half_t {
  std::uint16_t bits = 0;
};

/// fp32 -> binary16 bits with round-to-nearest-even.
std::uint16_t float_to_half_bits(float f) noexcept;

/// binary16 bits -> fp32 (exact).
float half_bits_to_float(std::uint16_t h) noexcept;

inline half_t to_half(float f) noexcept { return half_t{float_to_half_bits(f)}; }
inline float to_float(half_t h) noexcept { return half_bits_to_float(h.bits); }

/// fp32 -> fp16 -> fp32 round trip: the operand truncation a Tensor Core
/// performs on an fp32 input.
inline float round_to_half(float f) noexcept {
  return half_bits_to_float(float_to_half_bits(f));
}

/// fp32 -> TF32 (10-bit mantissa, fp32 exponent range), round-to-nearest-even.
float round_to_tf32(float f) noexcept;

/// Machine epsilons used in accuracy bounds.
inline constexpr float kHalfEps = 1.0f / 1024.0f;        // 2^-10 ~ 9.77e-4
inline constexpr float kTf32Eps = 1.0f / 1024.0f;        // same mantissa width
inline constexpr float kFloatEps = 1.1920929e-7f;        // 2^-23

/// Largest finite binary16 value.
inline constexpr float kHalfMax = 65504.0f;

}  // namespace tcevd
