#include "src/common/matrix.hpp"

namespace tcevd {

template <typename T>
void symmetrize_from_lower(MatrixView<T> a) {
  TCEVD_CHECK(a.rows() == a.cols(), "symmetrize requires a square matrix");
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = j + 1; i < a.rows(); ++i) a(j, i) = a(i, j);
}

template <typename T>
void make_symmetric(MatrixView<T> a) {
  TCEVD_CHECK(a.rows() == a.cols(), "make_symmetric requires a square matrix");
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = j + 1; i < a.rows(); ++i) {
      const T v = (a(i, j) + a(j, i)) / T{2};
      a(i, j) = v;
      a(j, i) = v;
    }
}

template void symmetrize_from_lower<float>(MatrixView<float>);
template void symmetrize_from_lower<double>(MatrixView<double>);
template void make_symmetric<float>(MatrixView<float>);
template void make_symmetric<double>(MatrixView<double>);

}  // namespace tcevd
