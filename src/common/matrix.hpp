// Column-major dense matrix container and non-owning views.
//
// Storage follows the LAPACK convention: element (i, j) lives at
// data[i + j*ld] with ld >= rows. Views are cheap value types; submatrix
// slicing never copies. All dimensions are 64-bit so paper-scale shapes
// (n = 32768) never overflow index arithmetic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/check.hpp"

namespace tcevd {

using index_t = std::int64_t;

template <typename T>
class MatrixView;
template <typename T>
class ConstMatrixView;

/// Owning column-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), ld_(std::max<index_t>(rows, 1)) {
    TCEVD_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
    data_.assign(static_cast<std::size_t>(ld_ * std::max<index_t>(cols, 1)), T{});
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T& operator()(index_t i, index_t j) noexcept {
    TCEVD_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i + j * ld_)];
  }
  const T& operator()(index_t i, index_t j) const noexcept {
    TCEVD_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i + j * ld_)];
  }

  MatrixView<T> view() noexcept;
  ConstMatrixView<T> view() const noexcept;
  MatrixView<T> sub(index_t i0, index_t j0, index_t nrows, index_t ncols) noexcept;
  ConstMatrixView<T> sub(index_t i0, index_t j0, index_t nrows, index_t ncols) const noexcept;

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
  std::vector<T> data_;
};

/// Non-owning mutable view of a column-major block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    TCEVD_ASSERT(ld >= std::max<index_t>(rows, 1), "leading dimension too small");
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }
  T* data() const noexcept { return data_; }

  T& operator()(index_t i, index_t j) const noexcept {
    TCEVD_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i + j * ld_)];
  }

  MatrixView sub(index_t i0, index_t j0, index_t nrows, index_t ncols) const noexcept {
    TCEVD_ASSERT(i0 >= 0 && j0 >= 0 && nrows >= 0 && ncols >= 0 && i0 + nrows <= rows_ &&
                     j0 + ncols <= cols_,
                 "submatrix out of range");
    return MatrixView(data_ + i0 + j0 * ld_, nrows, ncols, ld_);
  }
  MatrixView col(index_t j) const noexcept { return sub(0, j, rows_, 1); }
  MatrixView cols_range(index_t j0, index_t ncols) const noexcept {
    return sub(0, j0, rows_, ncols);
  }

  operator ConstMatrixView<T>() const noexcept;

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

/// Non-owning read-only view.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, index_t rows, index_t cols, index_t ld) noexcept
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    TCEVD_ASSERT(ld >= std::max<index_t>(rows, 1), "leading dimension too small");
  }

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }
  const T* data() const noexcept { return data_; }

  const T& operator()(index_t i, index_t j) const noexcept {
    TCEVD_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i + j * ld_)];
  }

  ConstMatrixView sub(index_t i0, index_t j0, index_t nrows, index_t ncols) const noexcept {
    TCEVD_ASSERT(i0 >= 0 && j0 >= 0 && nrows >= 0 && ncols >= 0 && i0 + nrows <= rows_ &&
                     j0 + ncols <= cols_,
                 "submatrix out of range");
    return ConstMatrixView(data_ + i0 + j0 * ld_, nrows, ncols, ld_);
  }
  ConstMatrixView col(index_t j) const noexcept { return sub(0, j, rows_, 1); }
  ConstMatrixView cols_range(index_t j0, index_t ncols) const noexcept {
    return sub(0, j0, rows_, ncols);
  }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 1;
};

template <typename T>
MatrixView<T> Matrix<T>::view() noexcept {
  return MatrixView<T>(data_.data(), rows_, cols_, ld_);
}
template <typename T>
ConstMatrixView<T> Matrix<T>::view() const noexcept {
  return ConstMatrixView<T>(data_.data(), rows_, cols_, ld_);
}
template <typename T>
MatrixView<T> Matrix<T>::sub(index_t i0, index_t j0, index_t nrows, index_t ncols) noexcept {
  return view().sub(i0, j0, nrows, ncols);
}
template <typename T>
ConstMatrixView<T> Matrix<T>::sub(index_t i0, index_t j0, index_t nrows,
                                  index_t ncols) const noexcept {
  return view().sub(i0, j0, nrows, ncols);
}

template <typename T>
MatrixView<T>::operator ConstMatrixView<T>() const noexcept {
  return ConstMatrixView<T>(data_, rows_, cols_, ld_);
}

// ---------------------------------------------------------------------------
// Small dense helpers shared across modules.
// ---------------------------------------------------------------------------

/// out = in (shapes must match; strides may differ).
template <typename T>
void copy_matrix(ConstMatrixView<T> in, MatrixView<T> out) {
  TCEVD_CHECK(in.rows() == out.rows() && in.cols() == out.cols(), "copy shape mismatch");
  for (index_t j = 0; j < in.cols(); ++j)
    for (index_t i = 0; i < in.rows(); ++i) out(i, j) = in(i, j);
}

/// Set to the identity (rectangular: ones on the main diagonal).
template <typename T>
void set_identity(MatrixView<T> a) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = (i == j) ? T{1} : T{0};
}

template <typename T>
void set_zero(MatrixView<T> a) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = T{0};
}

/// out = in with element-wise static_cast (e.g. double reference -> float).
template <typename Src, typename Dst>
void convert_matrix(ConstMatrixView<Src> in, MatrixView<Dst> out) {
  TCEVD_CHECK(in.rows() == out.rows() && in.cols() == out.cols(), "convert shape mismatch");
  for (index_t j = 0; j < in.cols(); ++j)
    for (index_t i = 0; i < in.rows(); ++i) out(i, j) = static_cast<Dst>(in(i, j));
}

/// Mirror the lower triangle into the upper triangle (make symmetric).
template <typename T>
void symmetrize_from_lower(MatrixView<T> a);

/// Force exact symmetry: a = (a + a^T) / 2.
template <typename T>
void make_symmetric(MatrixView<T> a);

extern template void symmetrize_from_lower<float>(MatrixView<float>);
extern template void symmetrize_from_lower<double>(MatrixView<double>);
extern template void make_symmetric<float>(MatrixView<float>);
extern template void make_symmetric<double>(MatrixView<double>);

}  // namespace tcevd
