#include "src/common/norms.hpp"

#include <cmath>

namespace tcevd {

template <typename T>
double frobenius_norm(ConstMatrixView<T> a) {
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j));
      s += v * v;
    }
  return std::sqrt(s);
}

template <typename T>
double max_abs(ConstMatrixView<T> a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      m = std::max(m, std::abs(static_cast<double>(a(i, j))));
  return m;
}

template <typename T>
double frobenius_diff(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  TCEVD_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "norm diff shape mismatch");
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = static_cast<double>(a(i, j)) - static_cast<double>(b(i, j));
      s += v * v;
    }
  return std::sqrt(s);
}

template <typename T>
double orthogonality_residual(ConstMatrixView<T> q) {
  // ||I - Q^T Q||_F computed column-pair-wise in double without forming Q^T Q.
  const index_t n = q.cols();
  double s = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double dot = 0.0;
      for (index_t k = 0; k < q.rows(); ++k)
        dot += static_cast<double>(q(k, i)) * static_cast<double>(q(k, j));
      const double target = (i == j) ? 1.0 : 0.0;
      const double d = target - dot;
      s += (i == j) ? d * d : 2.0 * d * d;  // symmetric off-diagonal counted twice
    }
  }
  return std::sqrt(s);
}

double backward_error(ConstMatrixView<double> a, ConstMatrixView<double> q,
                      ConstMatrixView<double> b) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n && q.rows() == n && q.cols() == n && b.rows() == n && b.cols() == n,
              "backward_error expects square same-size matrices");
  // R = A - Q B Q^T, accumulated in double. Form T1 = Q B, then R = A - T1 Q^T.
  Matrix<double> t1(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) s += q(i, k) * b(k, j);
      t1(i, j) = s;
    }
  double num = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t k = 0; k < n; ++k) s += t1(i, k) * q(j, k);
      const double d = a(i, j) - s;
      num += d * d;
    }
  const double denom = static_cast<double>(n) * frobenius_norm(a);
  return std::sqrt(num) / denom;
}

template <typename T>
double orthogonality_error(ConstMatrixView<T> q) {
  return orthogonality_residual(q) / static_cast<double>(q.rows());
}

double eigenvalue_error(const double* d_ref, const double* d, index_t n) {
  double num = 0.0;
  double denom = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double diff = d_ref[i] - d[i];
    num += diff * diff;
    denom += d_ref[i] * d_ref[i];
  }
  return std::sqrt(num) / (static_cast<double>(n) * std::sqrt(denom));
}

template double frobenius_norm<float>(ConstMatrixView<float>);
template double frobenius_norm<double>(ConstMatrixView<double>);
template double max_abs<float>(ConstMatrixView<float>);
template double max_abs<double>(ConstMatrixView<double>);
template double frobenius_diff<float>(ConstMatrixView<float>, ConstMatrixView<float>);
template double frobenius_diff<double>(ConstMatrixView<double>, ConstMatrixView<double>);
template double orthogonality_residual<float>(ConstMatrixView<float>);
template double orthogonality_residual<double>(ConstMatrixView<double>);
template double orthogonality_error<float>(ConstMatrixView<float>);
template double orthogonality_error<double>(ConstMatrixView<double>);

}  // namespace tcevd
