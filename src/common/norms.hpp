// Matrix norms and the paper's error metrics (Section 6.3 / 6.4.2).
//
// All reductions accumulate in double regardless of the element type, so a
// measured fp16/fp32 error is not polluted by the measurement itself.
#pragma once

#include "src/common/matrix.hpp"

namespace tcevd {

/// Frobenius norm, accumulated in double.
template <typename T>
double frobenius_norm(ConstMatrixView<T> a);

/// Max-abs entry.
template <typename T>
double max_abs(ConstMatrixView<T> a);

/// ||a - b||_F with shapes checked.
template <typename T>
double frobenius_diff(ConstMatrixView<T> a, ConstMatrixView<T> b);

/// ||I - Q^T Q||_F — departure from orthonormal columns.
template <typename T>
double orthogonality_residual(ConstMatrixView<T> q);

/// Paper Eq. (6.3): E_b = ||A - Q B Q^T||_F / (N ||A||_F).
/// All three operands given explicitly; computed in double.
double backward_error(ConstMatrixView<double> a, ConstMatrixView<double> q,
                      ConstMatrixView<double> b);

/// Paper Eq. (6.3): E_o = ||I - Q^T Q||_F / N.
template <typename T>
double orthogonality_error(ConstMatrixView<T> q);

/// Paper Eq. (6.4.2): E_s = ||d_ref - d||_2 / (N ||d_ref||_2) over sorted
/// eigenvalue vectors of length N.
double eigenvalue_error(const double* d_ref, const double* d, index_t n);

extern template double frobenius_norm<float>(ConstMatrixView<float>);
extern template double frobenius_norm<double>(ConstMatrixView<double>);
extern template double max_abs<float>(ConstMatrixView<float>);
extern template double max_abs<double>(ConstMatrixView<double>);
extern template double frobenius_diff<float>(ConstMatrixView<float>, ConstMatrixView<float>);
extern template double frobenius_diff<double>(ConstMatrixView<double>, ConstMatrixView<double>);
extern template double orthogonality_residual<float>(ConstMatrixView<float>);
extern template double orthogonality_residual<double>(ConstMatrixView<double>);
extern template double orthogonality_error<float>(ConstMatrixView<float>);
extern template double orthogonality_error<double>(ConstMatrixView<double>);

}  // namespace tcevd
