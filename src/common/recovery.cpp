#include "src/common/recovery.hpp"

#include <utility>

namespace tcevd::recovery {

namespace {
thread_local Scope* g_top = nullptr;
}  // namespace

Scope::Scope() : parent_(g_top) { g_top = this; }

Scope::~Scope() {
  g_top = parent_;
  if (parent_ && !events_.empty()) {
    for (auto& e : events_) parent_->events_.push_back(std::move(e));
  }
}

RecoveryLog Scope::take() noexcept {
  RecoveryLog out = std::move(events_);
  events_.clear();
  return out;
}

void note(std::string site, std::string action) {
  if (g_top) g_top->events_.push_back(RecoveryEvent{std::move(site), std::move(action)});
}

bool scope_active() noexcept { return g_top != nullptr; }

}  // namespace tcevd::recovery
