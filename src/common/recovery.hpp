// Recovery logging: a record of every graceful-degradation action the
// pipeline took while producing a result.
//
// Degradations fire deep inside the stack (an fp32 retry inside the GEMM
// engine, a panel fallback inside SBR) where threading a log through every
// signature would be invasive. Instead a driver opens a thread-local
// `recovery::Scope`; any `recovery::note()` below it on the call stack is
// collected and surfaced to the caller (e.g. `EvdResult::recovery`). With no
// scope active, note() is a no-op, so library code can note unconditionally.
#pragma once

#include <string>
#include <vector>

namespace tcevd {

/// One degradation action: where it happened and what was done instead.
struct RecoveryEvent {
  std::string site;    ///< e.g. "evd.solver", "sbr.panel", "ec_tcgemm"
  std::string action;  ///< e.g. "stedc failed (NoConvergence: ...); fell back to steqr"
};

using RecoveryLog = std::vector<RecoveryEvent>;

namespace recovery {

/// RAII collector; the innermost live Scope on this thread receives notes.
/// On destruction, events not claimed with take() propagate to the enclosing
/// scope so an outer driver still sees nested recoveries.
class Scope {
 public:
  Scope();
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  RecoveryLog take() noexcept;
  const RecoveryLog& events() const noexcept { return events_; }

 private:
  friend void note(std::string site, std::string action);
  RecoveryLog events_;
  Scope* parent_ = nullptr;
};

/// Record a degradation (no-op when no Scope is active on this thread).
void note(std::string site, std::string action);

bool scope_active() noexcept;

}  // namespace recovery
}  // namespace tcevd
