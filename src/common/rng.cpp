#include "src/common/rng.hpp"

#include <cmath>
#include <numbers>

namespace tcevd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

double Rng::normal() noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::bounded(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ull - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

}  // namespace tcevd
