// Deterministic pseudo-random generation (xoshiro256++) for reproducible
// test matrices. Not cryptographic; chosen for speed and statistical quality.
#pragma once

#include <cstdint>

#include "src/common/matrix.hpp"

namespace tcevd {

/// xoshiro256++ generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (cached second draw).
  double normal() noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t bounded(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// Fill with iid standard normal entries.
template <typename T>
void fill_normal(Rng& rng, MatrixView<T> a) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = static_cast<T>(rng.normal());
}

/// Fill with iid uniform entries in [lo, hi).
template <typename T>
void fill_uniform(Rng& rng, MatrixView<T> a, double lo = -1.0, double hi = 1.0) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = static_cast<T>(rng.uniform(lo, hi));
}

}  // namespace tcevd
