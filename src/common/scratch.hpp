// Sizing policy for long-lived thread_local scratch vectors.
//
// Kernels that keep per-thread scratch (ec_tcgemm's accumulators, tc_syr2k's
// panel buffer) grow it to the largest problem seen so steady-state calls of
// one shape perform zero heap allocations. Left unchecked, that retention is
// unbounded: every thread that ever ran one large problem (batch pool
// workers included) pins the large buffer for its lifetime. reserve_scratch
// adds a shrink valve: when the retained capacity is both large in absolute
// terms and far above the current need, the buffer is released and
// re-allocated at the needed size. The hysteresis (16x factor AND a 1 MiB
// floor) means same-shape steady state never re-allocates and mixed batches
// only pay an allocation when dropping from a genuinely oversized buffer.
#pragma once

#include <cstddef>
#include <vector>

namespace tcevd {

inline constexpr std::size_t kScratchShrinkFactor = 16;
inline constexpr std::size_t kScratchShrinkFloorBytes = std::size_t{1} << 20;

/// Ensure v.size() >= need, shrinking first when the retained capacity
/// exceeds both `need * kScratchShrinkFactor` and the absolute floor.
/// Accepts any std::vector instantiation (in particular AlignedVector, which
/// the SIMD kernel scratch users are on — see src/common/aligned.hpp).
template <typename T, typename Alloc>
void reserve_scratch(std::vector<T, Alloc>& v, std::size_t need) {
  if (v.capacity() / kScratchShrinkFactor > need &&
      v.capacity() * sizeof(T) > kScratchShrinkFloorBytes) {
    std::vector<T, Alloc>().swap(v);
  }
  if (v.size() < need) v.resize(need);
}

}  // namespace tcevd
