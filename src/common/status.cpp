#include "src/common/status.hpp"

namespace tcevd {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Ok:
      return "Ok";
    case ErrorCode::InvalidInput:
      return "InvalidInput";
    case ErrorCode::InvalidArgument:
      return "InvalidArgument";
    case ErrorCode::NoConvergence:
      return "NoConvergence";
    case ErrorCode::PrecisionLoss:
      return "PrecisionLoss";
    case ErrorCode::SingularPanel:
      return "SingularPanel";
    case ErrorCode::FaultInjected:
      return "FaultInjected";
    case ErrorCode::Internal:
      return "Internal";
    case ErrorCode::ResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::DeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (ok()) return "Ok";
  std::string s = error_code_name(code_);
  s += ": ";
  s += message_;
  if (detail_ >= 0) {
    s += " [detail=";
    s += std::to_string(detail_);
    s += "]";
  }
  return s;
}

Status invalid_input_error(std::string message) {
  return Status(ErrorCode::InvalidInput, std::move(message));
}

Status invalid_argument_error(std::string message) {
  return Status(ErrorCode::InvalidArgument, std::move(message));
}

Status no_convergence_error(std::string message, std::int64_t detail) {
  return Status(ErrorCode::NoConvergence, std::move(message), detail);
}

Status precision_loss_error(std::string message) {
  return Status(ErrorCode::PrecisionLoss, std::move(message));
}

Status singular_panel_error(std::string message, std::int64_t detail) {
  return Status(ErrorCode::SingularPanel, std::move(message), detail);
}

Status fault_injected_error(std::string site) {
  return Status(ErrorCode::FaultInjected, "injected fault at site " + std::move(site));
}

Status resource_exhausted_error(std::string message) {
  return Status(ErrorCode::ResourceExhausted, std::move(message));
}

Status deadline_exceeded_error(std::string message) {
  return Status(ErrorCode::DeadlineExceeded, std::move(message));
}

bool is_recoverable(const Status& status) noexcept {
  switch (status.code()) {
    case ErrorCode::NoConvergence:
    case ErrorCode::PrecisionLoss:
    case ErrorCode::SingularPanel:
    case ErrorCode::FaultInjected:
      return true;
    default:
      return false;
  }
}

}  // namespace tcevd
