// Structured error propagation for the EVD pipeline.
//
// The numerically fragile stages (fp16 splits, TSQR panels, iteration-capped
// tridiagonal solvers) report failure through `Status` / `StatusOr<T>`
// instead of aborting or returning an opaque bool, so drivers can degrade
// gracefully (solver fallback chain, per-block fp32 retry, panel fallback).
// TCEVD_CHECK remains for programmer-error contracts only (shape mismatches,
// out-of-range options); data-dependent failure is always a Status.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/common/check.hpp"

namespace tcevd {

enum class ErrorCode {
  Ok = 0,
  InvalidInput,    ///< NaN/Inf/asymmetric input, contract-level bad data
  InvalidArgument, ///< inconsistent caller options (e.g. big_block < bandwidth)
  NoConvergence,   ///< an iteration-capped solver exhausted its budget
  PrecisionLoss,   ///< low-precision path saturated/overflowed (fp16 range)
  SingularPanel,   ///< panel factorization hit a (near-)zero pivot
  FaultInjected,   ///< a registered fault-injection site fired (tests only)
  Internal,        ///< should-not-happen invariant violation
  ResourceExhausted, ///< admission control refused the request (queue full)
  DeadlineExceeded,  ///< a per-request deadline expired before completion
};

/// Stable short name ("NoConvergence", ...) for logs and messages.
const char* error_code_name(ErrorCode code) noexcept;

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;
  Status(ErrorCode code, std::string message, std::int64_t detail = -1)
      : code_(code), detail_(detail), message_(std::move(message)) {}

  bool ok() const noexcept { return code_ == ErrorCode::Ok; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  /// Failure-specific index (failing eigenvalue, pivot column, ...); -1 when
  /// not applicable.
  std::int64_t detail() const noexcept { return detail_; }

  /// "NoConvergence: steqr: eigenvalue 3 ... [detail=3]" (or "Ok").
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::Ok;
  std::int64_t detail_ = -1;
  std::string message_;
};

inline Status ok_status() { return Status(); }
Status invalid_input_error(std::string message);
Status invalid_argument_error(std::string message);
Status no_convergence_error(std::string message, std::int64_t detail = -1);
Status precision_loss_error(std::string message);
Status singular_panel_error(std::string message, std::int64_t detail = -1);
/// Status carried by a fired injection site; `site` is the registered name.
Status fault_injected_error(std::string site);
Status resource_exhausted_error(std::string message);
Status deadline_exceeded_error(std::string message);

/// True for failures a driver may answer with a degradation path (solver
/// fallback, precision escalation, panel retry). InvalidInput,
/// InvalidArgument, and Internal are not recoverable: retrying with a
/// different algorithm cannot fix them.
bool is_recoverable(const Status& status) noexcept;

/// Value-or-error return. Converts implicitly from both Status (errors) and
/// T (success) so `return singular_panel_error(...)` and `return result`
/// both work.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    TCEVD_CHECK(!status_.ok(), "StatusOr constructed from an Ok status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  T& value() & {
    TCEVD_CHECK(ok(), "StatusOr::value() called on an error result");
    return *value_;
  }
  const T& value() const& {
    TCEVD_CHECK(ok(), "StatusOr::value() called on an error result");
    return *value_;
  }
  T&& value() && {
    TCEVD_CHECK(ok(), "StatusOr::value() called on an error result");
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tcevd

/// Propagate a failed Status out of the current function.
#define TCEVD_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::tcevd::Status tcevd_status_ = (expr);          \
    if (!tcevd_status_.ok()) return tcevd_status_;   \
  } while (0)
