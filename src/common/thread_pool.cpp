#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/check.hpp"

namespace tcevd {

namespace {
// Set for the lifetime of every pool worker thread (any pool). File-static so
// the flag is shared across all ThreadPool instances in the process.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TCEVD_CHECK(task != nullptr, "ThreadPool::submit requires a non-null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TCEVD_CHECK(!stop_, "ThreadPool::submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(long count,
                              const std::function<void(int worker, long index)>& body) {
  if (count <= 0) return;
  // One looping task per worker; indices are stolen off `state->next` so
  // workers that finish early keep pulling work instead of waiting on a
  // partition. Shared state is refcounted: the last worker to decrement
  // `remaining` may still be unwinding its loop after the caller returns.
  struct State {
    std::atomic<long> next{0};
    std::atomic<long> remaining;
    std::mutex mutex;
    std::condition_variable done;
    explicit State(long n) : remaining(n) {}
  };
  auto state = std::make_shared<State>(count);

  const int tasks = static_cast<int>(std::min<long>(size(), count));
  for (int w = 0; w < tasks; ++w) {
    submit([state, count, &body, w] {
      for (long i = state->next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = state->next.fetch_add(1, std::memory_order_relaxed)) {
        body(w, i);
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->done.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::run_pair(const std::function<void()>& pooled,
                          const std::function<void()>& inline_task) {
  TCEVD_CHECK(pooled != nullptr && inline_task != nullptr,
              "ThreadPool::run_pair requires two non-null tasks");
  // The caller blocks in this frame until the pooled half finishes, so the
  // task may capture `pooled` by reference; the shared_ptr keeps the join
  // state alive even if the worker is still unwinding after notify.
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
  };
  auto join = std::make_shared<Join>();
  submit([join, &pooled] {
    pooled();
    {
      std::lock_guard<std::mutex> lock(join->mutex);
      join->finished = true;
    }
    join->done.notify_all();
  });
  inline_task();
  std::unique_lock<std::mutex> lock(join->mutex);
  join->done.wait(lock, [&] { return join->finished; });
}

bool ThreadPool::broadcast_live_locked() const noexcept {
  if (!bcast_.active) return false;
  const std::uint64_t t = bcast_.ticket.load(std::memory_order_relaxed);
  return (t >> kBcastIndexBits) == bcast_.epoch &&
         static_cast<long>(t & kBcastIndexMask) < bcast_.count;
}

void ThreadPool::broadcast_participate() {
  // Snapshot the current broadcast under mutex_, so fn/ctx/count are never
  // read while the next broadcast's setup (also under mutex_) rewrites them.
  // Claims then run lock-free off the epoch-stamped ticket; the epoch tells a
  // straggler whether its claim belongs to the broadcast it snapshotted.
  void (*fn)(void*, long) = nullptr;
  void* ctx = nullptr;
  long count = 0;
  std::uint64_t epoch = 0;
  const auto refresh = [&]() -> bool {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!bcast_.active) return false;
    fn = bcast_.fn;
    ctx = bcast_.ctx;
    count = bcast_.count;
    epoch = bcast_.epoch;
    return true;
  };
  if (!refresh()) return;
  for (;;) {
    const std::uint64_t t = bcast_.ticket.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t t_epoch = t >> kBcastIndexBits;
    const long i = static_cast<long>(t & kBcastIndexMask);
    if (t_epoch != epoch) {
      // The claim landed in a different broadcast generation than the
      // snapshot. Re-snapshot: if the claimed generation is the one now
      // active, the index is a valid claim into it (its fn/ctx/count were
      // published under mutex_ before its ticket store) — adopt the new
      // snapshot and run it below. Otherwise the claim was an exhaustion
      // probe of a generation that has already fully completed (an
      // in-bounds index of a live generation keeps done < count, which
      // keeps it active), so it is harmless — retry with the fresh
      // snapshot. If no broadcast is active at all, hand back to the
      // worker loop / caller.
      if (!refresh()) return;
      if (t_epoch != epoch) continue;
    }
    if (i >= count) return;  // current broadcast exhausted
    fn(ctx, i);
    if (bcast_.done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lk(bcast_.done_mutex);
      bcast_.done_cv.notify_all();
    }
  }
}

bool ThreadPool::try_broadcast(long count, void (*fn)(void* ctx, long index), void* ctx) {
  TCEVD_CHECK(fn != nullptr, "ThreadPool::try_broadcast requires a non-null fn");
  if (count <= 0) return true;
  // The index field must also absorb one exhaustion probe per participant
  // without carrying into the epoch bits; tile counts are nowhere near this.
  TCEVD_CHECK(static_cast<std::uint64_t>(count) < kBcastIndexMask / 2,
              "ThreadPool::try_broadcast count exceeds the ticket index field");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || bcast_.active) return false;
    bcast_.active = true;
    bcast_.fn = fn;
    bcast_.ctx = ctx;
    bcast_.count = count;
    bcast_.done.store(0, std::memory_order_relaxed);
    // The epoch lives in the ticket's high bits, so it wraps modulo the
    // field width (ABA would need a straggler parked across 2^32 broadcasts).
    bcast_.epoch = (bcast_.epoch + 1) & kBcastIndexMask;
    // Last setup step: resets the index field to 0 and stamps the new epoch
    // in one store. A straggler fetch_add from the previous broadcast either
    // lands before this store (its increment is simply overwritten) or after
    // (it reads the new epoch and re-snapshots under mutex_ — a valid claim
    // into this broadcast, never a double-claimed or stale index).
    bcast_.ticket.store(bcast_.epoch << kBcastIndexBits, std::memory_order_release);
  }
  work_ready_.notify_all();
  broadcast_participate();  // the caller steals indices too
  {
    std::unique_lock<std::mutex> lk(bcast_.done_mutex);
    bcast_.done_cv.wait(lk, [this, count] {
      return bcast_.done.load(std::memory_order_acquire) >= count;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bcast_.active = false;
  }
  return true;
}

ThreadPool& overlap_pool() {
  static ThreadPool pool(std::min(4, ThreadPool::hardware_threads()));
  return pool;
}

ThreadPool& gemm_pool() {
  static ThreadPool pool(std::max(1, ThreadPool::hardware_threads() - 1));
  return pool;
}

void spin_wait_hint(int& backoff) noexcept {
  if (backoff < 64) {
    ++backoff;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
  }
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop(int /*worker_id*/) {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stop_ || !queue_.empty() || broadcast_live_locked(); });
      if (broadcast_live_locked()) {
        lock.unlock();
        broadcast_participate();
        continue;
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace tcevd
