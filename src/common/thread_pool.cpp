#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/check.hpp"

namespace tcevd {

namespace {
// Set for the lifetime of every pool worker thread (any pool). File-static so
// the flag is shared across all ThreadPool instances in the process.
thread_local bool t_on_pool_worker = false;
}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int w = 0; w < num_threads; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TCEVD_CHECK(task != nullptr, "ThreadPool::submit requires a non-null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TCEVD_CHECK(!stop_, "ThreadPool::submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(long count,
                              const std::function<void(int worker, long index)>& body) {
  if (count <= 0) return;
  // One looping task per worker; indices are stolen off `state->next` so
  // workers that finish early keep pulling work instead of waiting on a
  // partition. Shared state is refcounted: the last worker to decrement
  // `remaining` may still be unwinding its loop after the caller returns.
  struct State {
    std::atomic<long> next{0};
    std::atomic<long> remaining;
    std::mutex mutex;
    std::condition_variable done;
    explicit State(long n) : remaining(n) {}
  };
  auto state = std::make_shared<State>(count);

  const int tasks = static_cast<int>(std::min<long>(size(), count));
  for (int w = 0; w < tasks; ++w) {
    submit([state, count, &body, w] {
      for (long i = state->next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = state->next.fetch_add(1, std::memory_order_relaxed)) {
        body(w, i);
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->done.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] { return state->remaining.load(std::memory_order_acquire) == 0; });
}

void ThreadPool::run_pair(const std::function<void()>& pooled,
                          const std::function<void()>& inline_task) {
  TCEVD_CHECK(pooled != nullptr && inline_task != nullptr,
              "ThreadPool::run_pair requires two non-null tasks");
  // The caller blocks in this frame until the pooled half finishes, so the
  // task may capture `pooled` by reference; the shared_ptr keeps the join
  // state alive even if the worker is still unwinding after notify.
  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
  };
  auto join = std::make_shared<Join>();
  submit([join, &pooled] {
    pooled();
    {
      std::lock_guard<std::mutex> lock(join->mutex);
      join->finished = true;
    }
    join->done.notify_all();
  });
  inline_task();
  std::unique_lock<std::mutex> lock(join->mutex);
  join->done.wait(lock, [&] { return join->finished; });
}

bool ThreadPool::broadcast_live_locked() const noexcept {
  return bcast_.active && bcast_.next.load(std::memory_order_relaxed) < bcast_.count;
}

void ThreadPool::broadcast_participate() {
  for (;;) {
    // The acquire claim synchronizes with try_broadcast's release store on
    // `next`, so fn/ctx/count are safe to read only after a successful claim.
    const long i = bcast_.next.fetch_add(1, std::memory_order_acq_rel);
    const long count = bcast_.count;
    if (i >= count) return;
    bcast_.fn(bcast_.ctx, i);
    if (bcast_.done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      std::lock_guard<std::mutex> lk(bcast_.done_mutex);
      bcast_.done_cv.notify_all();
    }
  }
}

bool ThreadPool::try_broadcast(long count, void (*fn)(void* ctx, long index), void* ctx) {
  TCEVD_CHECK(fn != nullptr, "ThreadPool::try_broadcast requires a non-null fn");
  if (count <= 0) return true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || bcast_.active) return false;
    bcast_.active = true;
    bcast_.fn = fn;
    bcast_.ctx = ctx;
    bcast_.count = count;
    bcast_.done.store(0, std::memory_order_relaxed);
    // Last setup step: the release store publishes fn/ctx/count to workers.
    bcast_.next.store(0, std::memory_order_release);
  }
  work_ready_.notify_all();
  broadcast_participate();  // the caller steals indices too
  {
    std::unique_lock<std::mutex> lk(bcast_.done_mutex);
    bcast_.done_cv.wait(lk, [this, count] {
      return bcast_.done.load(std::memory_order_acquire) == count;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bcast_.active = false;
  }
  return true;
}

ThreadPool& overlap_pool() {
  static ThreadPool pool(std::min(4, ThreadPool::hardware_threads()));
  return pool;
}

ThreadPool& gemm_pool() {
  static ThreadPool pool(std::max(1, ThreadPool::hardware_threads() - 1));
  return pool;
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_loop(int /*worker_id*/) {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stop_ || !queue_.empty() || broadcast_live_locked(); });
      if (broadcast_live_locked()) {
        lock.unlock();
        broadcast_participate();
        continue;
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace tcevd
