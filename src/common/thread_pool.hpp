// Fixed-size worker thread pool for the batched drivers.
//
// The pool owns `size()` long-lived workers draining one FIFO task queue.
// Batched drivers (evd::solve_many) use parallel_for, which enqueues one
// looping task per worker; the workers then work-steal iteration indices off
// a shared atomic counter, so a slow problem on one worker never strands the
// rest of the batch behind it.
//
// Thread-safety contract: the pool's own state (queue, counters) is fully
// synchronized; everything a task touches is the task's business. The
// intended shape for the solver pipelines is N workers x N Contexts x one
// shared GemmEngine — per-worker mutable state (workspace arena, telemetry)
// lives on a Context owned by exactly one worker, while the engines are
// stateless-per-call and safely shared (see src/common/context.hpp).
//
// Tasks must not throw: an exception escaping a task would unwind a worker
// thread and terminate the process, so parallel_for bodies that can fail
// should report through Status values captured per iteration instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcevd {

class ThreadPool {
 public:
  /// Spin up `num_threads` workers; values < 1 clamp to 1. The pool never
  /// runs tasks on the calling thread (size() == 1 still means one worker),
  /// so a task may block on the caller without deadlocking the queue.
  explicit ThreadPool(int num_threads);
  /// Drains nothing: outstanding tasks finish, queued-but-unstarted tasks
  /// still run, then the workers join.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue one task. Tasks run in FIFO order across the worker set.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run body(worker_id, index) for every index in [0, count), with the
  /// pool's workers stealing indices off a shared atomic counter.
  /// worker_id is in [0, size()) and is stable within one body invocation —
  /// it is the index batched drivers use to pick a per-worker Context.
  /// Blocks until every index has been processed.
  void parallel_for(long count, const std::function<void(int worker, long index)>& body);

  /// Two-task join: run `pooled` on a pool worker while `inline_task` runs on
  /// the calling thread; returns only after both complete. This is the
  /// look-ahead overlap primitive — the caller keeps the latency-critical
  /// stage (e.g. the next panel factorization) on its own thread while the
  /// bulk stage (the trailing update) drains on a worker. The join gives the
  /// usual happens-before edges: everything written before the call is
  /// visible to `pooled`, and everything `pooled` writes is visible to the
  /// caller after return. Neither task may submit nested run_pair work into
  /// the same single-worker pool from inside `pooled` (queueing is fine from
  /// `inline_task`/other threads — tasks never block on each other).
  void run_pair(const std::function<void()>& pooled,
                const std::function<void()>& inline_task);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads() noexcept;

 private:
  void worker_loop(int worker_id);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;   // queue_ gained a task or stop_
  std::condition_variable all_idle_;     // queue empty && in_flight_ == 0
  int in_flight_ = 0;                    // tasks popped but not yet finished
  bool stop_ = false;
};

/// Small process-wide pool backing two-task overlap joins (the look-ahead
/// schedule in sbr_wy). Lazily constructed on first use with
/// min(4, hardware_threads()) workers and shared by every overlapping driver
/// in the process: run_pair tasks from concurrent callers simply queue, so
/// oversubscription degrades to less overlap, never to deadlock.
ThreadPool& overlap_pool();

}  // namespace tcevd
