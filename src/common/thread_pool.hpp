// Fixed-size worker thread pool for the batched drivers.
//
// The pool owns `size()` long-lived workers draining one FIFO task queue.
// Batched drivers (evd::solve_many) use parallel_for, which enqueues one
// looping task per worker; the workers then work-steal iteration indices off
// a shared atomic counter, so a slow problem on one worker never strands the
// rest of the batch behind it.
//
// Thread-safety contract: the pool's own state (queue, counters) is fully
// synchronized; everything a task touches is the task's business. The
// intended shape for the solver pipelines is N workers x N Contexts x one
// shared GemmEngine — per-worker mutable state (workspace arena, telemetry)
// lives on a Context owned by exactly one worker, while the engines are
// stateless-per-call and safely shared (see src/common/context.hpp).
//
// Tasks must not throw: an exception escaping a task would unwind a worker
// thread and terminate the process, so parallel_for bodies that can fail
// should report through Status values captured per iteration instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcevd {

class ThreadPool {
 public:
  /// Spin up `num_threads` workers; values < 1 clamp to 1. The pool never
  /// runs tasks on the calling thread (size() == 1 still means one worker),
  /// so a task may block on the caller without deadlocking the queue.
  explicit ThreadPool(int num_threads);
  /// Drains nothing: outstanding tasks finish, queued-but-unstarted tasks
  /// still run, then the workers join.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue one task. Tasks run in FIFO order across the worker set.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Run body(worker_id, index) for every index in [0, count), with the
  /// pool's workers stealing indices off a shared atomic counter.
  /// worker_id is in [0, size()) and is stable within one body invocation —
  /// it is the index batched drivers use to pick a per-worker Context.
  /// Blocks until every index has been processed.
  void parallel_for(long count, const std::function<void(int worker, long index)>& body);

  /// Two-task join: run `pooled` on a pool worker while `inline_task` runs on
  /// the calling thread; returns only after both complete. This is the
  /// look-ahead overlap primitive — the caller keeps the latency-critical
  /// stage (e.g. the next panel factorization) on its own thread while the
  /// bulk stage (the trailing update) drains on a worker. The join gives the
  /// usual happens-before edges: everything written before the call is
  /// visible to `pooled`, and everything `pooled` writes is visible to the
  /// caller after return. Neither task may submit nested run_pair work into
  /// the same single-worker pool from inside `pooled` (queueing is fine from
  /// `inline_task`/other threads — tasks never block on each other).
  void run_pair(const std::function<void()>& pooled,
                const std::function<void()>& inline_task);

  /// Allocation-free data-parallel fan-out: run fn(ctx, index) for every
  /// index in [0, count), with the pool's workers AND the calling thread
  /// stealing indices off a shared atomic counter. Unlike parallel_for this
  /// performs zero heap allocations (no std::function, no per-call shared
  /// state) — it is the dispatch the packed GEMM macro-kernel uses, so a
  /// steady-state gemm call stays allocation-free even when pooled.
  ///
  /// One broadcast at a time per pool: returns false without running
  /// anything when another broadcast is already in flight (or the pool is
  /// stopping) — the caller must then run the indices itself. Returns true
  /// after every index has completed. The indices must be independent; the
  /// result must not depend on which thread runs which index (the packed
  /// GEMM satisfies this by giving each index a disjoint C tile).
  bool try_broadcast(long count, void (*fn)(void* ctx, long index), void* ctx);

  /// True when the calling thread is a worker of ANY ThreadPool. This is the
  /// nested-parallelism guard: the packed GEMM macro-kernel consults it and
  /// routes to the serial tile loop instead of fanning out again, so GEMMs
  /// under solve_many workers / look-ahead run_pair tasks never oversubscribe.
  static bool on_worker_thread() noexcept;

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads() noexcept;

 private:
  void worker_loop(int worker_id);
  void broadcast_participate();
  bool broadcast_live_locked() const noexcept;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;   // queue_ gained a task, stop_, or broadcast
  std::condition_variable all_idle_;     // queue empty && in_flight_ == 0
  int in_flight_ = 0;                    // tasks popped but not yet finished
  bool stop_ = false;

  // try_broadcast state. fn/ctx/count/epoch/active are guarded by mutex_:
  // participants snapshot them under the lock, then claim indices lock-free
  // off `ticket`, which packs (epoch << kBcastIndexBits) | next_index in one
  // atomic. The epoch stamp is what makes back-to-back broadcasts safe: a
  // straggler's exhaustion-probe fetch_add from a finished broadcast either
  // lands before the next setup's ticket store (the store overwrites it) or
  // after (the claim carries the NEW epoch, so the straggler re-snapshots
  // under mutex_ and runs it as a valid index of the new broadcast). A stale
  // index can therefore never be claimed twice, and fn/ctx/count are never
  // read while the next broadcast writes them (see broadcast_participate).
  static constexpr int kBcastIndexBits = 32;
  static constexpr std::uint64_t kBcastIndexMask = (std::uint64_t{1} << kBcastIndexBits) - 1;
  struct Broadcast {
    void (*fn)(void*, long) = nullptr;    // guarded by mutex_
    void* ctx = nullptr;                  // guarded by mutex_
    long count = 0;                       // guarded by mutex_
    std::uint64_t epoch = 0;              // guarded by mutex_; one per broadcast
    std::atomic<std::uint64_t> ticket{0};  // (epoch << kBcastIndexBits) | next index
    std::atomic<long> done{0};
    bool active = false;                  // guarded by mutex_
    std::mutex done_mutex;
    std::condition_variable done_cv;
  } bcast_;
};

/// Progressive spin-wait backoff for short cross-thread waits (the bulge
/// wavefront's progress-vector spins, and any future lock-free handoff).
/// Call in the body of a spin loop with a caller-owned counter initialized
/// to 0: early iterations issue cheap CPU pause hints (the expected wait is
/// a few chunk lengths of rotation work), later ones yield the timeslice so
/// an oversubscribed machine — or a 1-hardware-thread CI box running every
/// lane on one core — still makes progress.
void spin_wait_hint(int& backoff) noexcept;

/// Small process-wide pool backing two-task overlap joins (the look-ahead
/// schedule in sbr_wy). Lazily constructed on first use with
/// min(4, hardware_threads()) workers and shared by every overlapping driver
/// in the process: run_pair tasks from concurrent callers simply queue, so
/// oversubscription degrades to less overlap, never to deadlock.
ThreadPool& overlap_pool();

/// Process-wide pool backing the packed GEMM macro-kernel's tile fan-out
/// (blas/gemm_packed.hpp). Lazily constructed on first use with
/// hardware_threads() - 1 workers (the broadcasting caller steals tiles too,
/// so the total equals the hardware width). Thread-ownership contract: this
/// pool is only ever driven via try_broadcast from threads that are NOT pool
/// workers — nested GEMMs under solve_many workers, look-ahead run_pair
/// tasks, or any other pool task take the serial tile loop instead (see
/// ThreadPool::on_worker_thread and blas::SerialGemmScope).
ThreadPool& gemm_pool();

}  // namespace tcevd
