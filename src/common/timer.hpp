// Wall-clock timing.
#pragma once

#include <chrono>

namespace tcevd {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tcevd
