#include "src/common/verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/fault.hpp"
#include "src/common/norms.hpp"
#include "src/common/rng.hpp"

namespace tcevd::verify {

namespace {

// Unit roundoffs of the accumulation formats the engines feed the pipeline.
constexpr double kEps32 = 1.1920929e-7;    // fp32
constexpr double kEps16 = 4.8828125e-4;    // fp16 (and TF32's 10-bit mantissa)

/// Shared skeleton: thresholds + the forced-breach fault hook.
Report init_report(tc::EngineKind kind, index_t n, double tol_scale) {
  Report rep;
  rep.checked = true;
  const Thresholds th = thresholds_for(kind, n, tol_scale);
  rep.residual_tol = th.residual;
  rep.orthogonality_tol = th.orthogonality;
  if (fault::should_fire(fault::Site::VerifyResidual)) {
    rep.fault_forced = true;
    rep.residual = std::numeric_limits<double>::infinity();
    rep.passed = false;
  }
  return rep;
}

}  // namespace

const char* policy_name(Policy policy) noexcept {
  switch (policy) {
    case Policy::Off: return "off";
    case Policy::Estimate: return "estimate";
    case Policy::EstimateEscalate: return "estimate+escalate";
  }
  return "?";
}

Thresholds thresholds_for(tc::EngineKind kind, index_t n, double tol_scale) noexcept {
  const double nn = static_cast<double>(std::max<index_t>(n, 1));
  Thresholds th;
  switch (kind) {
    case tc::EngineKind::Tc:
      // fp16/TF32 operands: errors grow like sqrt(n)·eps16 through the
      // blocked accumulations; 64x headroom over that floor.
      th.residual = 64.0 * std::sqrt(nn) * kEps16;
      th.orthogonality = 64.0 * std::sqrt(nn) * kEps16;
      break;
    case tc::EngineKind::EcTc:
      // Error-corrected products are fp32-accurate; 2x extra slack over the
      // fp32 gate for the split/merge rounding.
      th.residual = 512.0 * nn * kEps32;
      th.orthogonality = 256.0 * nn * kEps32;
      break;
    case tc::EngineKind::Fp32:
      th.residual = 256.0 * nn * kEps32;
      th.orthogonality = 128.0 * nn * kEps32;
      break;
  }
  th.residual *= tol_scale;
  th.orthogonality *= tol_scale;
  return th;
}

Report estimate(ConstMatrixView<float> a, const std::vector<float>& lambda,
                ConstMatrixView<float> q, tc::EngineKind kind, const Options& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n && q.rows() == n && q.cols() == n &&
                  static_cast<index_t>(lambda.size()) == n,
              "verify::estimate shape mismatch");
  Report rep = init_report(kind, n, opt.tol_scale);
  if (rep.fault_forced || n == 0) return rep;

  const double anorm = std::max(frobenius_norm<float>(a), 1e-300);
  Rng rng(opt.seed);
  const int probes = std::max(1, opt.probes);

  const std::size_t nz = static_cast<std::size_t>(n);
  std::vector<double> w(nz), z(nz), u(nz), v(nz), g(nz), h(nz);
  double rsum = 0.0;
  double osum = 0.0;
  for (int p = 0; p < probes; ++p) {
    for (index_t i = 0; i < n; ++i) w[static_cast<std::size_t>(i)] = rng.normal();

    // z = A w  (column-major sweep, double accumulation over float data).
    std::fill(z.begin(), z.end(), 0.0);
    for (index_t j = 0; j < n; ++j) {
      const double wj = w[static_cast<std::size_t>(j)];
      for (index_t i = 0; i < n; ++i)
        z[static_cast<std::size_t>(i)] += static_cast<double>(a(i, j)) * wj;
    }
    // u = Qᵀ w  and  g = Q w in the same column sweep.
    std::fill(g.begin(), g.end(), 0.0);
    for (index_t k = 0; k < n; ++k) {
      double dot = 0.0;
      const double wk = w[static_cast<std::size_t>(k)];
      for (index_t i = 0; i < n; ++i) {
        const double qik = static_cast<double>(q(i, k));
        dot += qik * w[static_cast<std::size_t>(i)];
        g[static_cast<std::size_t>(i)] += qik * wk;
      }
      u[static_cast<std::size_t>(k)] = dot;
    }
    // v = Q (λ ∘ u)  and  h = Qᵀ g, again one sweep over Q.
    std::fill(v.begin(), v.end(), 0.0);
    for (index_t k = 0; k < n; ++k) {
      const double lu = static_cast<double>(lambda[static_cast<std::size_t>(k)]) *
                        u[static_cast<std::size_t>(k)];
      double dot = 0.0;
      for (index_t i = 0; i < n; ++i) {
        const double qik = static_cast<double>(q(i, k));
        v[static_cast<std::size_t>(i)] += qik * lu;
        dot += qik * g[static_cast<std::size_t>(i)];
      }
      h[static_cast<std::size_t>(k)] = dot;
    }

    double rn = 0.0;
    double on = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double dr = z[static_cast<std::size_t>(i)] - v[static_cast<std::size_t>(i)];
      const double dq = h[static_cast<std::size_t>(i)] - w[static_cast<std::size_t>(i)];
      rn += dr * dr;
      on += dq * dq;
    }
    rsum += rn;
    osum += on;
  }

  rep.residual = std::sqrt(rsum / probes) / anorm;
  rep.orthogonality = std::sqrt(osum / probes);
  rep.passed =
      rep.residual <= rep.residual_tol && rep.orthogonality <= rep.orthogonality_tol;
  return rep;
}

Report estimate_values(ConstMatrixView<float> a, const std::vector<float>& lambda,
                       tc::EngineKind kind, const Options& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n && static_cast<index_t>(lambda.size()) == n,
              "verify::estimate_values shape mismatch");
  Report rep = init_report(kind, n, opt.tol_scale);
  if (rep.fault_forced || n == 0) return rep;

  double trace = 0.0;
  for (index_t i = 0; i < n; ++i) trace += static_cast<double>(a(i, i));
  const double anorm = std::max(frobenius_norm<float>(a), 1e-300);

  double lsum = 0.0;
  double lsq = 0.0;
  for (float l : lambda) {
    lsum += static_cast<double>(l);
    lsq += static_cast<double>(l) * static_cast<double>(l);
  }

  const double trace_err = std::abs(lsum - trace) / anorm;
  const double frob_err = std::abs(std::sqrt(lsq) - anorm) / anorm;
  rep.residual = std::max(trace_err, frob_err);
  rep.passed = rep.residual <= rep.residual_tol;
  return rep;
}

}  // namespace tcevd::verify
