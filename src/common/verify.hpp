// Cheap end-to-end solution verification for the EVD drivers.
//
// A full residual check of an eigensystem — ‖A − QΛQᵀ‖_F and ‖QᵀQ − I‖_F —
// costs two n×n GEMMs, an O(n³) bill nobody pays on every solve. This module
// computes *stochastic estimates* of the same quantities with a handful of
// matvecs, O(probes · n²):
//
//   For an iid standard-normal probe w,  E‖Ew‖² = ‖E‖_F²,  so
//     sqrt(mean_p ‖(A − QΛQᵀ) w_p‖²)  estimates  ‖A − QΛQᵀ‖_F   and
//     sqrt(mean_p ‖(QᵀQ − I) w_p‖²)   estimates  ‖QᵀQ − I‖_F.
//
// Each probe needs one A·w and four Q-matvecs, all double-accumulated over
// the float data (no double copies are materialized). Eigenvalue-only solves
// have no Q to probe; they are gated instead on the exact spectral
// invariants Σλ = tr A and Σλ² = ‖A‖_F², which any correct eigenvalue set
// satisfies to rounding error while a corrupted pipeline breaks them at the
// magnitude of the corruption.
//
// Estimates are compared against per-EngineKind thresholds (fp16 Tensor Core
// numerics legitimately produce residuals ~eps16-scaled; gating them at fp32
// tolerances would flag every clean solve). The thresholds are deliberately
// loose — an order of magnitude above a clean solve's typical estimate —
// because the gate exists to catch *corruption* (silent data corruption, a
// missed saturation, a broken fallback), which shows up orders of magnitude
// above any legitimate rounding floor.
//
// evd::solve consumes these estimates through its VerifyPolicy (see
// src/evd/evd.hpp): `Estimate` annotates a breach on the result, while
// `EstimateEscalate` re-solves on a higher-accuracy engine
// (Tc -> EcTc -> Fp32) until the estimate passes or the attempt budget is
// spent. The fault site "verify.residual" (TCEVD_FAULTS) forces a breach to
// exercise that escalation machinery end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd::verify {

/// What evd::solve does with the residual estimates.
enum class Policy {
  Off,               ///< no verification (default; zero overhead)
  Estimate,          ///< estimate + annotate breaches; never re-solves
  EstimateEscalate,  ///< estimate + re-solve on a higher-accuracy engine on breach
};

/// Human-readable policy name ("off", "estimate", "estimate+escalate").
const char* policy_name(Policy policy) noexcept;

/// Estimator knobs, carried inside EvdOptions by the drivers.
struct Options {
  /// Probe vectors per estimate. Four keeps the sampling error of the
  /// Frobenius estimate well under the safety margin baked into the
  /// thresholds; the cost is probes * 5 matvecs.
  int probes = 4;
  /// Probe RNG seed — fixed by default so verification is deterministic.
  std::uint64_t seed = 0x76657269667921ull;
  /// Multiplies both thresholds (tighten < 1, loosen > 1).
  double tol_scale = 1.0;
};

/// Acceptance thresholds for the two estimates.
struct Thresholds {
  double residual = 0.0;       ///< on est. ‖A − QΛQᵀ‖_F / ‖A‖_F
  double orthogonality = 0.0;  ///< on est. ‖QᵀQ − I‖_F
};

/// Per-engine-kind thresholds at problem order n. Fp32 and EcTc gate at
/// fp32-scaled tolerances (EcTc's corrected product is fp32-accurate by
/// construction, with extra slack for the split's rounding); Tc gates at
/// fp16/TF32-scaled tolerances. All grow with the accumulation length so a
/// clean large solve is never flagged.
Thresholds thresholds_for(tc::EngineKind kind, index_t n, double tol_scale = 1.0) noexcept;

/// One verification verdict. The estimator fills the estimate/threshold
/// fields; the driving solver (evd::solve) fills the attempt accounting.
struct Report {
  bool checked = false;  ///< an estimate was actually computed
  bool passed = true;    ///< every computed estimate is within its threshold
  /// The "verify.residual" fault site fired and forced this breach (the
  /// estimates were not computed; residual is +inf).
  bool fault_forced = false;
  /// Eigensystem: est. ‖A − QΛQᵀ‖_F / ‖A‖_F. Eigenvalue-only: the larger of
  /// the trace and Frobenius invariant errors (both relative to ‖A‖_F).
  double residual = 0.0;
  double orthogonality = 0.0;  ///< est. ‖QᵀQ − I‖_F; 0 for eigenvalue-only
  double residual_tol = 0.0;
  double orthogonality_tol = 0.0;
  int attempts = 0;     ///< solve attempts consumed (1 = no re-solve)
  int escalations = 0;  ///< engine escalations taken
  std::string engine;   ///< engine that produced the accepted result
};

/// Stochastic residual + orthogonality estimate for a full eigensystem
/// (lambda ascending, q's columns the matching eigenvectors). O(probes·n²),
/// double-accumulated. `kind` selects the thresholds.
Report estimate(ConstMatrixView<float> a, const std::vector<float>& lambda,
                ConstMatrixView<float> q, tc::EngineKind kind, const Options& opt);

/// Invariant gate for eigenvalue-only solves: relative trace error
/// |Σλ − tr A| / ‖A‖_F and Frobenius error |sqrt(Σλ²) − ‖A‖_F| / ‖A‖_F,
/// reported as Report::residual (the larger of the two). O(n²).
Report estimate_values(ConstMatrixView<float> a, const std::vector<float>& lambda,
                       tc::EngineKind kind, const Options& opt);

}  // namespace tcevd::verify
