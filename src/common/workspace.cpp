#include "src/common/workspace.hpp"

#include <cstdint>

namespace tcevd {

namespace {

std::size_t align_up(std::size_t v, std::size_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

void Workspace::add_block(std::size_t bytes) {
  Block b;
  // Over-allocate by one alignment quantum so an aligned pointer of the full
  // requested size always fits regardless of where new[] lands.
  b.size = bytes + kAlignment;
  b.data = std::make_unique<unsigned char[]>(b.size);
  blocks_.push_back(std::move(b));
}

void Workspace::reserve(std::size_t bytes) {
  if (bytes == 0) return;
  for (const Block& b : blocks_)
    if (b.size >= bytes) return;
  // Idle but fragmented (spills left several too-small blocks): coalesce to
  // one block covering both the request and the observed peak, so steady
  // state after a first spilled iteration is a single-block arena rather
  // than a fresh spill per iteration.
  if (bytes_in_use() == 0 && !blocks_.empty()) {
    blocks_.clear();
    active_ = 0;
    add_block(bytes > high_water_ ? bytes : high_water_);
    return;
  }
  add_block(bytes);
}

void* Workspace::alloc_bytes(std::size_t bytes, std::size_t align) {
  TCEVD_CHECK(align != 0 && (align & (align - 1)) == 0,
              "workspace alignment must be a power of two");
  if (bytes == 0) bytes = 1;

  // Try the active block, then any (empty) block after it.
  for (std::size_t i = active_; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t offset = align_up(static_cast<std::size_t>(base) + b.used, align) -
                               static_cast<std::size_t>(base);
    if (offset + bytes <= b.size) {
      b.used = offset + bytes;
      active_ = i;
      const std::size_t in_use = bytes_in_use();
      if (in_use > high_water_) high_water_ = in_use;
      return b.data.get() + offset;
    }
  }

  // Spill to the heap: append a block large enough for this request.
  ++spills_;
  add_block(bytes > kMinBlockBytes ? bytes : kMinBlockBytes);
  active_ = blocks_.size() - 1;
  Block& b = blocks_.back();
  const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
  const std::size_t offset =
      align_up(static_cast<std::size_t>(base), align) - static_cast<std::size_t>(base);
  TCEVD_CHECK(offset + bytes <= b.size, "workspace spill block sized too small");
  b.used = offset + bytes;
  const std::size_t in_use = bytes_in_use();
  if (in_use > high_water_) high_water_ = in_use;
  return b.data.get() + offset;
}

void Workspace::release(const Scope::Mark& m) noexcept {
  if (blocks_.empty()) return;
  for (std::size_t i = m.block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  blocks_[m.block].used = m.used;
  active_ = m.block;
}

std::size_t Workspace::capacity() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

std::size_t Workspace::bytes_in_use() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.used;
  return total;
}

}  // namespace tcevd
