// Bump-pointer workspace arena for the solver pipelines.
//
// Every hot path used to construct its temporaries as fresh heap
// Matrix<float> objects (18 construction sites in the SBR/EVD/SVD pipelines
// alone). A Workspace replaces those with O(1) pointer-bump checkouts from a
// preallocated block, so a steady-state solver performs zero allocations
// per call: the first solve sizes the arena (via the workspace_query APIs or
// by spilling), every following same-shape solve reuses it.
//
// Model:
//   * Allocation is a bump of the current block's offset, aligned to
//     kAlignment. Checkouts are only released through Scope objects.
//   * A Scope is an RAII mark/release pair: everything allocated after the
//     Scope was opened is freed (the bump pointers rewind) when it is
//     destroyed. Scopes nest arbitrarily; they must be destroyed in LIFO
//     order, which C++ block structure guarantees.
//   * When a request does not fit in any available block, the arena spills
//     to the heap: a fresh block large enough for the request is appended
//     and the allocation succeeds. Spills are counted — a steady-state
//     workload should show zero new blocks after its first iteration (see
//     tests/test_workspace.cpp).
//   * High-water-mark statistics record the peak number of bytes in use, so
//     callers can validate workspace_query estimates.
//
// Thread safety: none. A Workspace (like the Context that owns it) belongs
// to exactly one thread; concurrent solves use one Workspace each.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/check.hpp"
#include "src/common/matrix.hpp"

namespace tcevd {

class Workspace {
 public:
  /// Alignment of every checkout (cache line / SIMD friendly).
  static constexpr std::size_t kAlignment = 64;
  /// Minimum size of a spill block, so pathological call patterns do not
  /// degenerate into one block per allocation.
  static constexpr std::size_t kMinBlockBytes = std::size_t{1} << 20;  // 1 MiB

  Workspace() = default;
  explicit Workspace(std::size_t initial_bytes) { reserve(initial_bytes); }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Ensure a single block of at least `bytes` exists (LAPACK-lwork style:
  /// pair with sbr::workspace_query / evd::workspace_query). A no-op when
  /// the largest block is already big enough; never discards live data.
  /// When the arena is idle (nothing checked out) but fragmented across
  /// spill blocks none of which satisfies `bytes`, the empty blocks are
  /// replaced by one block of max(bytes, high_water_mark()), so a driver
  /// that re-reserves between iterations rewinds to one contiguous block
  /// covering its observed peak instead of re-spilling forever — the
  /// steady-state contract batched solve_many leans on.
  void reserve(std::size_t bytes);

  /// Raw aligned checkout. The returned memory is owned by the arena and
  /// lives until the innermost Scope open at the time of the call closes.
  void* alloc_bytes(std::size_t bytes, std::size_t align = kAlignment);

  template <typename T>
  T* alloc(std::size_t count) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T),
                                       alignof(T) > kAlignment ? alignof(T) : kAlignment));
  }

  /// Zero-initialized column-major matrix checkout (ld == max(rows, 1)),
  /// mirroring Matrix<T> construction semantics.
  template <typename T>
  MatrixView<T> matrix(index_t rows, index_t cols) {
    TCEVD_CHECK(rows >= 0 && cols >= 0, "workspace matrix dimensions must be nonnegative");
    const index_t ld = rows > 0 ? rows : 1;
    const std::size_t count =
        static_cast<std::size_t>(ld) * static_cast<std::size_t>(cols > 0 ? cols : 1);
    T* p = alloc<T>(count);
    for (std::size_t i = 0; i < count; ++i) p[i] = T{};
    return MatrixView<T>(p, rows, cols, ld);
  }

  /// RAII checkout scope: rewinds the arena to its construction point.
  class Scope {
   public:
    explicit Scope(Workspace& ws) : ws_(&ws), mark_(ws.mark()) {}
    ~Scope() {
      if (ws_) ws_->release(mark_);
    }
    Scope(Scope&& other) noexcept : ws_(other.ws_), mark_(other.mark_) { other.ws_ = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;

    template <typename T>
    T* alloc(std::size_t count) {
      return ws_->alloc<T>(count);
    }
    template <typename T>
    MatrixView<T> matrix(index_t rows, index_t cols) {
      return ws_->matrix<T>(rows, cols);
    }

   private:
    struct Mark {
      std::size_t block = 0;
      std::size_t used = 0;
    };
    friend class Workspace;

    Workspace* ws_;
    Mark mark_;
  };

  Scope scope() { return Scope(*this); }

  // --- statistics -----------------------------------------------------------

  /// Total bytes across all blocks.
  std::size_t capacity() const noexcept;
  /// Bytes currently checked out (alignment padding included).
  std::size_t bytes_in_use() const noexcept;
  /// Peak of bytes_in_use() over the arena's lifetime.
  std::size_t high_water_mark() const noexcept { return high_water_; }
  /// Number of heap blocks backing the arena. Stable across iterations ==
  /// steady-state reuse (the allocation-regression tests assert on this).
  std::size_t block_count() const noexcept { return blocks_.size(); }
  /// Number of allocations that did not fit the reserved arena and forced a
  /// new heap block (growth events, excluding explicit reserve() calls).
  long spill_count() const noexcept { return spills_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Scope::Mark mark() const noexcept {
    return Scope::Mark{active_, blocks_.empty() ? 0 : blocks_[active_].used};
  }
  void release(const Scope::Mark& m) noexcept;
  void add_block(std::size_t bytes);

  // Invariant: blocks_[active_+1 ..] are empty (used == 0); allocation bumps
  // blocks_[active_] and advances past blocks that cannot fit a request.
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t high_water_ = 0;
  long spills_ = 0;
};

}  // namespace tcevd
