#include "src/evd/batch.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/evd/service.hpp"

namespace tcevd::evd {

std::size_t BatchResult::num_ok() const noexcept {
  std::size_t n = 0;
  for (const ProblemResult& p : problems)
    if (p.status.ok()) ++n;
  return n;
}

bool BatchResult::all_ok() const noexcept { return num_ok() == problems.size(); }

// solve_many is a synchronous shell over the streaming EvdService: submit
// every problem, wait in index order, flatten. The service is configured for
// batch parity with the old dedicated pool — max_started == num_threads
// keeps at most one problem mid-pipeline per worker (bounding live arenas
// exactly as the old one-Context-per-worker layout did), and Block admission
// with max_in_flight == count means submission never fails for capacity.
// Results stay bitwise-identical to a sequential evd::solve loop because the
// service runs the same SolveJob step sequence on a private warm Context.
BatchResult solve_many(std::span<const ConstMatrixView<float>> problems,
                       tc::GemmEngine& engine, const BatchOptions& opt) {
  BatchResult result;
  const long count = static_cast<long>(problems.size());
  if (count == 0) return result;

  Timer total;
  const index_t n = problems[0].rows();
  int threads = opt.num_threads > 0 ? opt.num_threads : ThreadPool::hardware_threads();
  threads = static_cast<int>(std::min<long>(threads, count));
  result.num_threads = threads;
  result.problems.resize(static_cast<std::size_t>(count));

  ServiceOptions sopt;
  sopt.num_threads = threads;
  sopt.max_in_flight = static_cast<int>(std::min<long>(count, 1 << 30));
  sopt.overflow = OverflowPolicy::Block;
  sopt.max_started = threads;
  sopt.max_idle_contexts_per_class = threads;
  EvdService service(engine, sopt);

  RequestOptions ropt;
  ropt.evd = opt.evd;
  ropt.selected = opt.selected;
  ropt.il = opt.il;
  ropt.iu = opt.iu;

  // Submit everything up front; a malformed problem is refused per slot
  // (InvalidArgument) and its neighbors proceed — bad request data must
  // never abort the batch.
  std::vector<RequestId> ids(static_cast<std::size_t>(count), 0);
  std::vector<char> live(static_cast<std::size_t>(count), 0);
  for (long i = 0; i < count; ++i) {
    const ConstMatrixView<float>& a = problems[static_cast<std::size_t>(i)];
    ProblemResult& out = result.problems[static_cast<std::size_t>(i)];
    if (a.cols() != a.rows()) {
      out.status = invalid_argument_error(
          "evd::solve_many: problem " + std::to_string(i) + " is " +
          std::to_string(a.rows()) + " x " + std::to_string(a.cols()) + ", not square");
      continue;
    }
    if (a.rows() != n) {
      out.status = invalid_argument_error(
          "evd::solve_many: problem " + std::to_string(i) + " has order " +
          std::to_string(a.rows()) + " but the batch is order " + std::to_string(n) +
          " (solve_many batches are same-shape; use EvdService for mixed sizes)");
      continue;
    }
    StatusOr<RequestId> id = service.submit(a, ropt);
    if (!id.ok()) {
      out.status = id.status();
      continue;
    }
    ids[static_cast<std::size_t>(i)] = *id;
    live[static_cast<std::size_t>(i)] = 1;
  }

  for (long i = 0; i < count; ++i) {
    if (!live[static_cast<std::size_t>(i)]) continue;
    RequestResult r = service.wait(ids[static_cast<std::size_t>(i)]);
    ProblemResult& out = result.problems[static_cast<std::size_t>(i)];
    out.status = std::move(r.status);
    out.eigenvalues = std::move(r.eigenvalues);
    out.vectors = std::move(r.vectors);
    out.recovery = std::move(r.recovery);
    out.verify = std::move(r.verify);
    out.worker = r.worker;
    out.seconds = r.seconds;
  }

  // Everything waited => every context is idle, so the snapshot covers each
  // problem's evd.* stages (plus the service.queue / service.stage.* tiers).
  result.telemetry = service.telemetry_snapshot();
  for (const ProblemResult& p : result.problems) {
    result.verify_escalations += p.verify.escalations;
    // A failure is a checked-but-breached verdict (Estimate returns those
    // annotated) or an escalation chain that gave up (PrecisionLoss status
    // under an active verify policy).
    if (p.verify.checked && !p.verify.passed) ++result.verify_failures;
    if (!p.status.ok() && p.status.code() == ErrorCode::PrecisionLoss &&
        opt.evd.verify == verify::Policy::EstimateEscalate)
      ++result.verify_failures;
  }
  result.total_s = total.seconds();
  return result;
}

BatchResult solve_many(const std::vector<Matrix<float>>& problems, tc::GemmEngine& engine,
                       const BatchOptions& opt) {
  std::vector<ConstMatrixView<float>> views;
  views.reserve(problems.size());
  for (const Matrix<float>& a : problems) views.push_back(a.view());
  return solve_many(std::span<const ConstMatrixView<float>>(views), engine, opt);
}

}  // namespace tcevd::evd
