#include "src/evd/batch.hpp"

#include <algorithm>
#include <deque>
#include <exception>

#include "src/common/check.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/timer.hpp"
#include "src/evd/partial.hpp"

namespace tcevd::evd {

std::size_t BatchResult::num_ok() const noexcept {
  std::size_t n = 0;
  for (const ProblemResult& p : problems)
    if (p.status.ok()) ++n;
  return n;
}

bool BatchResult::all_ok() const noexcept { return num_ok() == problems.size(); }

namespace {

/// Solve problem `a` on `ctx`, routing through the full or selected driver
/// and flattening the result into the batch's per-problem record.
void solve_one(ConstMatrixView<float> a, Context& ctx, const BatchOptions& opt,
               ProblemResult& out) {
  Timer t;
  if (opt.selected) {
    StatusOr<PartialResult> r =
        solve_selected(a, ctx, opt.evd, opt.il, opt.iu, opt.evd.vectors);
    if (r.ok()) {
      out.eigenvalues = std::move(r->eigenvalues);
      out.vectors = std::move(r->vectors);
      out.recovery = std::move(r->recovery);
      out.status = ok_status();
    } else {
      out.status = r.status();
    }
  } else {
    StatusOr<EvdResult> r = solve(a, ctx, opt.evd);
    if (r.ok()) {
      out.eigenvalues = std::move(r->eigenvalues);
      out.vectors = std::move(r->vectors);
      out.recovery = std::move(r->recovery);
      out.verify = std::move(r->verify);
      out.status = ok_status();
    } else {
      out.status = r.status();
    }
  }
  out.seconds = t.seconds();
}

}  // namespace

BatchResult solve_many(std::span<const ConstMatrixView<float>> problems,
                       tc::GemmEngine& engine, const BatchOptions& opt) {
  BatchResult result;
  const long count = static_cast<long>(problems.size());
  if (count == 0) return result;

  const index_t n = problems[0].rows();
  for (const ConstMatrixView<float>& a : problems)
    TCEVD_CHECK(a.rows() == n && a.cols() == n,
                "evd::solve_many requires same-shape square problems");
  if (opt.selected)
    TCEVD_CHECK(0 <= opt.il && opt.il <= opt.iu && opt.iu < n,
                "evd::solve_many: selected range [il, iu] out of bounds");

  Timer total;
  int threads = opt.num_threads > 0 ? opt.num_threads : ThreadPool::hardware_threads();
  threads = static_cast<int>(std::min<long>(threads, count));
  result.num_threads = threads;
  result.problems.resize(static_cast<std::size_t>(count));

  // One pre-reserved Context per worker: the arena is sized once up front so
  // every problem after the first runs allocation-free, and all per-solve
  // mutable state (arena, telemetry, recovery scope) stays worker-private
  // while the engine is shared (see the contract in src/common/context.hpp).
  const std::size_t arena_bytes = workspace_query(n, opt.evd);
  std::deque<Context> contexts;
  for (int w = 0; w < threads; ++w) {
    contexts.emplace_back(engine);
    contexts.back().workspace().reserve(arena_bytes);
  }

  ThreadPool pool(threads);
  pool.parallel_for(count, [&](int worker, long i) {
    ProblemResult& out = result.problems[static_cast<std::size_t>(i)];
    out.worker = worker;
    // A throw out of a worker would take the process down (the pool's tasks
    // are noexcept by contract), so unexpected exceptions become a
    // per-problem Internal status like any other isolated failure.
    try {
      solve_one(problems[static_cast<std::size_t>(i)], contexts[static_cast<std::size_t>(worker)],
                opt, out);
    } catch (const std::exception& e) {
      out.status = Status(ErrorCode::Internal,
                          std::string("evd::solve_many: uncaught exception: ") + e.what());
    } catch (...) {
      out.status = Status(ErrorCode::Internal, "evd::solve_many: uncaught non-std exception");
    }
  });

  // Workers are quiescent after parallel_for, so the merge is race-free.
  for (Context& ctx : contexts) result.telemetry.merge_from(ctx.telemetry());
  for (const ProblemResult& p : result.problems) {
    result.verify_escalations += p.verify.escalations;
    // A failure is a checked-but-breached verdict (Estimate returns those
    // annotated) or an escalation chain that gave up (PrecisionLoss status
    // under an active verify policy).
    if (p.verify.checked && !p.verify.passed) ++result.verify_failures;
    if (!p.status.ok() && p.status.code() == ErrorCode::PrecisionLoss &&
        opt.evd.verify == verify::Policy::EstimateEscalate)
      ++result.verify_failures;
  }
  result.total_s = total.seconds();
  return result;
}

BatchResult solve_many(const std::vector<Matrix<float>>& problems, tc::GemmEngine& engine,
                       const BatchOptions& opt) {
  std::vector<ConstMatrixView<float>> views;
  views.reserve(problems.size());
  for (const Matrix<float>& a : problems) views.push_back(a.view());
  return solve_many(std::span<const ConstMatrixView<float>>(views), engine, opt);
}

}  // namespace tcevd::evd
