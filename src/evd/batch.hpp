// Batched EVD driver: many same-shape symmetric problems, one shared GEMM
// engine, a fixed worker pool.
//
// solve_many is a synchronous wrapper over the streaming EvdService
// (src/evd/service.hpp): every problem is submitted up front, the workers
// drain them with at most one problem mid-pipeline per worker, and the
// wrapper waits in index order. The N-threads x N-Contexts x 1-engine shape
// the Context/Workspace split exists for (see src/common/context.hpp) is
// preserved through the service's context pool: each in-flight problem runs
// on a warm Context whose arena is pre-reserved with evd::workspace_query,
// so the steady state of a long batch performs zero arena growth per
// problem, while the engine — stateless per call, its one diagnostic counter
// atomic — is shared by every worker.
//
// Failure isolation: each problem reports its own Status and RecoveryLog in
// BatchResult::problems; a poisoned problem (bad input, injected fault,
// exhausted fallbacks, a malformed request such as a non-square or
// odd-shaped matrix or an out-of-range selected window) fails alone with a
// per-problem Status — never a process abort — and its neighbors complete
// normally. Determinism: per-problem results are computed on exactly the
// single-solve step sequence with a private arena, so solve_many output is
// bitwise identical to a sequential evd::solve loop, at any thread count.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/context.hpp"
#include "src/common/matrix.hpp"
#include "src/common/recovery.hpp"
#include "src/common/status.hpp"
#include "src/evd/evd.hpp"

namespace tcevd::evd {

struct BatchOptions {
  /// Per-problem configuration, shared by the whole batch (evd.vectors is
  /// the jobz switch; evd.solver, bandwidth, big_block, fallbacks as usual).
  EvdOptions evd;
  /// Worker count; 0 picks min(ThreadPool::hardware_threads(), batch size).
  /// Values larger than the batch are clamped — a worker with no problems
  /// would only cost an idle Context.
  int num_threads = 0;
  /// Partial-spectrum mode: solve each problem for eigenvalue indices
  /// [il, iu] (0-based, inclusive) via evd::solve_selected instead of the
  /// full solve. evd.vectors then requests the selected vectors only.
  bool selected = false;
  index_t il = 0;
  index_t iu = 0;
};

/// Outcome of one problem in the batch.
struct ProblemResult {
  Status status;                   ///< Ok => the value fields below are valid
  std::vector<float> eigenvalues;  ///< ascending (iu-il+1 values when selected)
  Matrix<float> vectors;           ///< empty unless evd.vectors
  RecoveryLog recovery;            ///< per-problem degradation events
  /// Per-problem verification verdict (evd.verify != Off, full solves only;
  /// the selected-spectrum driver does not verify).
  verify::Report verify;
  int worker = -1;                 ///< pool worker that solved it (diagnostics)
  double seconds = 0.0;            ///< wall time of this problem's solve
};

struct BatchResult {
  std::vector<ProblemResult> problems;  ///< index-aligned with the input span
  /// Per-worker telemetry merged into one aggregate view
  /// (Telemetry::merge_from): stage seconds/call counts sum across workers,
  /// recovery logs and recorded GEMM shapes concatenate.
  Telemetry telemetry;
  int num_threads = 0;  ///< workers actually used
  double total_s = 0.0; ///< batch wall time (pool spin-up included)
  /// Verification aggregates over the batch (zero when evd.verify is Off):
  /// total engine escalations taken, and problems whose verification never
  /// passed — an Estimate-policy result returned annotated, or an
  /// EstimateEscalate problem that exhausted its chain/budget and failed
  /// with PrecisionLoss.
  long verify_escalations = 0;
  long verify_failures = 0;

  std::size_t num_ok() const noexcept;
  bool all_ok() const noexcept;
};

/// Solve every problem in `problems` (all square, all the same order as
/// problems[0] — violations fail that problem with InvalidArgument, not the
/// batch) with `engine` shared across a pool of worker threads. Never throws
/// out of a worker and never fails as a whole: per-problem errors land in
/// BatchResult::problems[i].status. An empty batch returns an empty result.
BatchResult solve_many(std::span<const ConstMatrixView<float>> problems,
                       tc::GemmEngine& engine, const BatchOptions& opt);

/// Convenience overload for owned matrices.
BatchResult solve_many(const std::vector<Matrix<float>>& problems, tc::GemmEngine& engine,
                       const BatchOptions& opt);

}  // namespace tcevd::evd
