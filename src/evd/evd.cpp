#include "src/evd/evd.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/evd/solve_job.hpp"

#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/common/timer.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"

namespace tcevd::evd {

namespace {

using blas::Trans;

Status run_tri_solver(Workspace& ws, TriSolver solver, std::vector<float>& d,
                      std::vector<float>& e, MatrixView<float>* z) {
  switch (solver) {
    case TriSolver::Ql:
      return lapack::steqr<float>(d, e, z);
    case TriSolver::DivideConquer:
      return lapack::stedc<float>(d, e, z);
    case TriSolver::Bisection: {
      const index_t n = static_cast<index_t>(d.size());
      auto eigs = lapack::stebz<float>(d, e, 0, n - 1);
      if (z != nullptr) {
        // Vectors via inverse iteration on the bisection values, then fold
        // into the accumulated orthogonal factor: z := z * S.
        auto scope = ws.scope();
        auto s = scope.matrix<float>(n, n);
        TCEVD_RETURN_IF_ERROR(lapack::stein<float>(d, e, eigs, s));
        auto tmp = scope.matrix<float>(z->rows(), n);
        blas::gemm<float>(Trans::No, Trans::No, 1.0f, ConstMatrixView<float>(*z),
                          ConstMatrixView<float>(s), 0.0f, tmp);
        copy_matrix<float>(ConstMatrixView<float>(tmp), *z);
      }
      std::copy(eigs.begin(), eigs.end(), d.begin());
      return ok_status();
    }
  }
  return Status(ErrorCode::Internal, "unknown tridiagonal solver");
}

Status screen_input(ConstMatrixView<float> a, float asym_tol) {
  const index_t n = a.rows();
  float amax = 0.0f;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const float v = a(i, j);
      if (!std::isfinite(v))
        return invalid_input_error("evd::solve: input matrix has a non-finite entry");
      amax = std::max(amax, std::abs(v));
    }
  const float tol = asym_tol * std::max(amax, 1e-30f);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i)
      if (std::abs(a(i, j) - a(j, i)) > tol)
        return invalid_input_error("evd::solve: input matrix is not symmetric");
  return ok_status();
}

/// Splice `tail` onto the end of `log`.
void append_log(RecoveryLog& log, RecoveryLog&& tail) {
  if (log.empty()) {
    log = std::move(tail);
    return;
  }
  log.insert(log.end(), std::make_move_iterator(tail.begin()),
             std::make_move_iterator(tail.end()));
}

/// Next engine in the accuracy-ascending escalation chain
/// Tc -> EcTc -> Fp32, or nullptr when `kind` is already the most accurate.
/// `prec` carries the Tc operand precision across the Tc -> EcTc step so an
/// escalated tc-tf32 solve corrects tf32 numerics, not fp16.
std::unique_ptr<tc::GemmEngine> next_escalation_engine(tc::EngineKind kind,
                                                       tc::TcPrecision prec) {
  switch (kind) {
    case tc::EngineKind::Tc: return std::make_unique<tc::EcTcEngine>(prec);
    case tc::EngineKind::EcTc: return std::make_unique<tc::Fp32Engine>();
    case tc::EngineKind::Fp32: return nullptr;  // already the terminal engine
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// SolveJob: the solve pipeline as a resumable stage machine. Every stage body
// is a verbatim port of the old monolithic solve_once / solve_verified code;
// the only change is that control returns to the caller between stages, with
// the in-flight state parked in members instead of stack locals. Each step
// opens its own recovery::Scope and drains it into attempt_log_ before
// returning, so the thread-local scope chain never spans a suspension point
// (steps of one job may run on different scheduler threads).
// ---------------------------------------------------------------------------

SolveJob::SolveJob(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt)
    : a_(a), ctx_(ctx), opt_(opt) {
  TCEVD_CHECK(a_.cols() == a_.rows(), "evd::solve requires a square symmetric matrix");
  if (opt_.abft) abft_.emplace();  // covers every attempt, escalations included
  // Trivial sizes never reach the pipeline (SBR needs bandwidth in [1, n)),
  // and never verify — matching the old solve() routing for n <= 1.
  verified_ = opt_.verify != verify::Policy::Off && a_.rows() > 1;
  max_attempts_ = std::max(1, opt_.verify_max_attempts);
}

SolveJob::~SolveJob() = default;

const char* SolveJob::stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::Reduction: return "reduction";
    case Stage::Bulge: return "bulge";
    case Stage::Solver: return "solver";
    case Stage::Finish: return "finish";
    case Stage::Done: return "done";
  }
  return "?";
}

void SolveJob::step() {
  switch (stage_) {
    case Stage::Reduction: step_reduction(); return;
    case Stage::Bulge: step_bulge(); return;
    case Stage::Solver: step_solver(); return;
    case Stage::Finish: step_finish(); return;
    case Stage::Done: return;
  }
}

StatusOr<EvdResult> SolveJob::take() {
  TCEVD_CHECK(done(), "SolveJob::take() called before the job is done");
  if (error_) return *error_;
  return std::move(*final_);
}

void SolveJob::release_attempt_state() {
  attempt_scope_.reset();
  sres_.reset();
  engine_scope_.reset();  // restore the context's engine before anyone reuses it
  escalated_.reset();
  abft_.reset();
}

void SolveJob::step_reduction() {
  ++attempts_;
  attempt_log_.clear();
  const index_t n = a_.rows();
  recovery::Scope scope;

  if (opt_.screen_input) {
    Status st = screen_input(a_, opt_.asymmetry_tol);
    if (!st.ok()) {
      append_log(attempt_log_, scope.take());
      fail_attempt(st);
      return;
    }
  }

  if (n <= 1) {
    EvdResult trivial;
    if (n == 1) {
      trivial.eigenvalues.assign(1, a_(0, 0));
      if (opt_.vectors) {
        trivial.vectors = Matrix<float>(1, 1);
        trivial.vectors(0, 0) = 1.0f;
      }
    } else if (opt_.vectors) {
      trivial.vectors = Matrix<float>(0, 0);
    }
    trivial.converged = true;
    final_ = std::move(trivial);
    stage_ = Stage::Done;
    release_attempt_state();
    return;
  }

  ctx_.workspace().reserve(workspace_query(n, opt_));
  attempt_scope_.emplace(ctx_.workspace());
  result_ = EvdResult{};
  d_.clear();
  e_.clear();
  q_ = Matrix<float>(0, 0);
  attempt_timer_.reset();

  if (opt_.reduction == Reduction::OneStage) {
    Timer t;
    {
      auto inner = ctx_.workspace().scope();
      auto work = inner.matrix<float>(n, n);
      copy_matrix(a_, work);
      std::vector<float> tau;
      lapack::sytrd_blocked(work, d_, e_, tau, std::min<index_t>(opt_.bandwidth, n));
      if (opt_.vectors) {
        q_ = Matrix<float>(n, n);
        lapack::orgtr<float>(work, tau, q_.view());
      }
    }
    result_.timings.reduction_s = t.seconds();
    ctx_.telemetry().record_stage("evd.reduction", result_.timings.reduction_s);
    append_log(attempt_log_, scope.take());
    stage_ = Stage::Solver;  // one-stage reduction has no bulge chase
    return;
  }

  sbr::SbrOptions sopt;
  sopt.bandwidth = std::min(opt_.bandwidth, n - 1);
  if (opt_.big_block < sopt.bandwidth)
    // The SBR layer rejects nb < b outright; here the caller's big_block is
    // a default that a large bandwidth can legitimately outgrow, so raise
    // it — but say so instead of mutating the options invisibly.
    recovery::note("evd.options",
                   "big_block " + std::to_string(opt_.big_block) +
                       " is below the bandwidth " + std::to_string(sopt.bandwidth) +
                       "; raising it to the bandwidth");
  sopt.big_block = std::max(opt_.big_block, sopt.bandwidth);
  sopt.panel = opt_.panel;
  sopt.accumulate_q = opt_.vectors;
  sopt.lookahead = opt_.lookahead && (opt_.reduction == Reduction::TwoStageWy ||
                                      opt_.reduction == Reduction::TwoStageDbr);

  Timer t;
  StatusOr<sbr::SbrResult> sres_or =
      (opt_.reduction == Reduction::TwoStageWy)    ? sbr::sbr_wy(a_, ctx_, sopt)
      : (opt_.reduction == Reduction::TwoStageDbr) ? sbr::sbr_dbr(a_, ctx_, sopt)
                                                   : sbr::sbr_zy(a_, ctx_, sopt);
  if (!sres_or.ok()) {
    append_log(attempt_log_, scope.take());
    fail_attempt(sres_or.status());
    return;
  }
  sres_.emplace(std::move(*sres_or));
  result_.timings.reduction_s = t.seconds();
  ctx_.telemetry().record_stage("evd.reduction", result_.timings.reduction_s);
  append_log(attempt_log_, scope.take());
  stage_ = Stage::Bulge;
}

void SolveJob::step_bulge() {
  const index_t n = a_.rows();
  const index_t bw = std::min(opt_.bandwidth, n - 1);
  recovery::Scope scope;
  sbr::SbrResult& sres = *sres_;

  Timer t;
  if (opt_.compact_second_stage && !opt_.vectors) {
    auto band =
        sbr::BandMatrix<float>::from_full(ConstMatrixView<float>(sres.band.view()), bw);
    sbr::bulge_chase_band(band, d_, e_);
  } else {
    if (opt_.compact_second_stage && opt_.vectors)
      recovery::note("evd.second_stage",
                     "compact_second_stage ignored: eigenvectors requested, bulge "
                     "rotations must stream into Q; proceeding on full storage");
    MatrixView<float> qv = sres.q.view();
    MatrixView<float>* qp = opt_.vectors ? &qv : nullptr;
    auto tri =
        bulge::bulge_chase_auto<float>(ctx_, sres.band.view(), bw, qp, opt_.bulge_threads);
    d_ = std::move(tri.d);
    e_ = std::move(tri.e);
  }
  result_.timings.bulge_s = t.seconds();
  ctx_.telemetry().record_stage("evd.bulge", result_.timings.bulge_s);
  if (opt_.vectors) q_ = std::move(sres.q);
  sres_.reset();
  append_log(attempt_log_, scope.take());
  stage_ = Stage::Solver;
}

void SolveJob::step_solver() {
  recovery::Scope scope;
  Timer ts;
  MatrixView<float> zv = q_.view();
  MatrixView<float>* zp = opt_.vectors ? &zv : nullptr;

  // The solvers destroy d/e (and fold rotations into q), so keep restore
  // points for the fallback chain.
  std::vector<float> d0, e0;
  MatrixView<float> q0;
  if (opt_.allow_fallbacks) {
    d0 = d_;
    e0 = e_;
    if (opt_.vectors) {
      q0 = attempt_scope_->matrix<float>(q_.rows(), q_.cols());
      copy_matrix<float>(ConstMatrixView<float>(q_.view()), q0);
    }
  }

  Status sst = run_tri_solver(ctx_.workspace(), opt_.solver, d_, e_, zp);
  if (!sst.ok() && opt_.allow_fallbacks && is_recoverable(sst)) {
    TriSolver tried = opt_.solver;
    for (TriSolver fb : {TriSolver::DivideConquer, TriSolver::Ql, TriSolver::Bisection}) {
      if (fb == opt_.solver) continue;
      d_ = d0;
      e_ = e0;
      if (opt_.vectors) copy_matrix<float>(ConstMatrixView<float>(q0), q_.view());
      recovery::note("evd.solver", std::string(tri_solver_name(tried)) + " failed (" +
                                       sst.to_string() + "); retrying with " +
                                       tri_solver_name(fb));
      sst = run_tri_solver(ctx_.workspace(), fb, d_, e_, zp);
      if (sst.ok() || !is_recoverable(sst)) break;
      tried = fb;
    }
  }
  result_.timings.solver_s = ts.seconds();
  ctx_.telemetry().record_stage("evd.solver", result_.timings.solver_s);
  append_log(attempt_log_, scope.take());
  if (!sst.ok()) {
    fail_attempt(sst);
    return;
  }
  result_.converged = true;
  result_.eigenvalues = std::move(d_);
  if (opt_.vectors) result_.vectors = std::move(q_);
  result_.timings.total_s = attempt_timer_.seconds();
  result_.recovery = std::move(attempt_log_);
  attempt_log_.clear();
  ctx_.telemetry().record_recovery(result_.recovery);
  attempt_scope_.reset();  // the estimate (and any re-solve) re-opens its own

  if (!verified_) {
    complete_success();
    return;
  }
  stage_ = Stage::Finish;
}

void SolveJob::step_finish() {
  recovery::Scope scope;  // breach/give-up notes of this verification round
  accumulated_.insert(accumulated_.end(), result_.recovery.begin(), result_.recovery.end());

  verify::Options vopt;
  vopt.probes = opt_.verify_probes;
  vopt.tol_scale = static_cast<double>(opt_.verify_tol_scale);

  const tc::GemmEngine& engine = ctx_.engine();
  Timer tv;
  verify::Report report =
      opt_.vectors
          ? verify::estimate(a_, result_.eigenvalues,
                             ConstMatrixView<float>(result_.vectors.view()), engine.kind(),
                             vopt)
          : verify::estimate_values(a_, result_.eigenvalues, engine.kind(), vopt);
  result_.timings.verify_s = tv.seconds();
  ctx_.telemetry().record_stage("evd.verify", result_.timings.verify_s);
  report.attempts = attempts_;
  report.escalations = escalations_;
  report.engine = engine.name();

  const bool accept = report.passed || opt_.verify == verify::Policy::Estimate;
  if (!report.passed) {
    recovery::note(
        "evd.verify",
        "residual estimate " + std::to_string(report.residual) + " (tol " +
            std::to_string(report.residual_tol) + "), orthogonality estimate " +
            std::to_string(report.orthogonality) + " (tol " +
            std::to_string(report.orthogonality_tol) + ") breached on engine '" +
            engine.name() + "'" +
            (accept ? "; policy is estimate-only, returning the result annotated" : ""));
  }
  if (accept) {
    result_.verify = std::move(report);
    append_log(pending_, scope.take());
    ctx_.telemetry().record_recovery(pending_);
    accumulated_.insert(accumulated_.end(), pending_.begin(), pending_.end());
    pending_.clear();
    result_.recovery = std::move(accumulated_);
    complete_success();
    return;
  }

  // Escalate: next engine in the chain, same warm context.
  tc::TcPrecision prec = tc::TcPrecision::Fp16;
  if (const auto* tc_engine = dynamic_cast<const tc::TcEngine*>(&engine))
    prec = tc_engine->precision();
  std::unique_ptr<tc::GemmEngine> next = next_escalation_engine(engine.kind(), prec);
  if (next == nullptr || attempts_ >= max_attempts_) {
    const std::string reason =
        next == nullptr
            ? "the escalation chain is exhausted (already on '" + std::string(engine.name()) +
                  "')"
            : "the attempt budget (" + std::to_string(max_attempts_) + ") is spent";
    recovery::note("evd.verify", "verification still failing and " + reason);
    append_log(pending_, scope.take());
    ctx_.telemetry().record_recovery(pending_);
    pending_.clear();  // claimed into telemetry, exactly as vscope.take() did
    error_ = precision_loss_error(
        "evd::solve: verification failed after " + std::to_string(attempts_) +
        " attempt(s) (residual estimate " + std::to_string(report.residual) + ", tol " +
        std::to_string(report.residual_tol) + ", engine '" + engine.name() + "'); " +
        reason);
    stage_ = Stage::Done;
    release_attempt_state();
    return;
  }
  recovery::note("evd.verify", "re-solving with higher-accuracy engine '" + next->name() +
                                   "' (attempt " + std::to_string(attempts_ + 1) + "/" +
                                   std::to_string(max_attempts_) + ")");
  append_log(pending_, scope.take());
  escalate_engine(std::move(next));
}

void SolveJob::fail_attempt(const Status& status) {
  attempt_scope_.reset();
  sres_.reset();

  if (!verified_) {
    // The synchronous path propagated the attempt's unclaimed events to the
    // caller's enclosing recovery::Scope when the per-solve scope unwound;
    // park them for the wrapper to re-note (schedulers drop them, matching
    // what solve_many has always reported for failed problems).
    dropped_events_ = std::move(attempt_log_);
    attempt_log_.clear();
    error_ = status;
    stage_ = Stage::Done;
    release_attempt_state();
    return;
  }

  // A recoverable pipeline failure (e.g. corruption drove the solver to
  // NoConvergence after its own fallbacks) is escalated like a breached
  // estimate: corruption that poisons the pipeline outright and corruption
  // that merely skews the result get the same answer, a re-solve on a better
  // engine. Non-recoverable failures and the estimate-only policy keep their
  // pre-verification semantics.
  auto give_up = [&] {
    dropped_events_ = std::move(pending_);
    pending_.clear();
    append_log(dropped_events_, std::move(attempt_log_));
    attempt_log_.clear();
    error_ = status;
    stage_ = Stage::Done;
    release_attempt_state();
  };
  if (opt_.verify != verify::Policy::EstimateEscalate || !is_recoverable(status) ||
      attempts_ >= max_attempts_) {
    give_up();
    return;
  }
  tc::TcPrecision prec = tc::TcPrecision::Fp16;
  if (const auto* tc_engine = dynamic_cast<const tc::TcEngine*>(&ctx_.engine()))
    prec = tc_engine->precision();
  std::unique_ptr<tc::GemmEngine> next =
      next_escalation_engine(ctx_.engine().kind(), prec);
  if (next == nullptr) {
    give_up();
    return;
  }
  // The failed attempt's events reached the old vscope before the escalation
  // note was made; keep that order.
  append_log(pending_, std::move(attempt_log_));
  attempt_log_.clear();
  pending_.push_back(
      RecoveryEvent{"evd.verify", "solve attempt " + std::to_string(attempts_) +
                                      " failed (" + status.to_string() +
                                      "); re-solving with higher-accuracy engine '" +
                                      next->name() + "'"});
  escalate_engine(std::move(next));
}

void SolveJob::escalate_engine(std::unique_ptr<tc::GemmEngine> next) {
  ++escalations_;
  ctx_.telemetry().record_stage("evd.verify.escalation", 0.0);
  engine_scope_.emplace(ctx_, *next);  // destroys any previous override first
  escalated_ = std::move(next);
  stage_ = Stage::Reduction;
}

void SolveJob::complete_success() {
  final_ = std::move(result_);
  stage_ = Stage::Done;
  release_attempt_state();
}

const char* tri_solver_name(TriSolver solver) noexcept {
  switch (solver) {
    case TriSolver::Ql: return "ql";
    case TriSolver::DivideConquer: return "divide-conquer";
    case TriSolver::Bisection: return "bisection";
  }
  return "?";
}

StatusOr<EvdResult> solve(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt) {
  SolveJob job(a, ctx, opt);
  while (!job.done()) job.step();
  StatusOr<EvdResult> out = job.take();
  if (!out.ok()) {
    // On the synchronous path a failed attempt's unclaimed recovery events
    // historically propagated to the caller's enclosing recovery::Scope when
    // the per-solve scope unwound; the job parks them instead, so re-note.
    for (const RecoveryEvent& ev : job.dropped_events()) recovery::note(ev.site, ev.action);
  }
  return out;
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
StatusOr<EvdResult> solve(ConstMatrixView<float> a, tc::GemmEngine& engine,
                          const EvdOptions& opt) {
  return solve(a, compat_context(engine), opt);
}

std::size_t workspace_query(index_t n, const EvdOptions& opt) {
  if (n <= 0) return 0;
  sbr::SbrOptions sopt;
  sopt.bandwidth = std::min(opt.bandwidth, std::max<index_t>(n - 1, 1));
  sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
  sopt.big_block -= sopt.big_block % sopt.bandwidth;
  sopt.panel = opt.panel;

  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  // Reduction stage: SBR arena peak, or the one-stage n x n scratch.
  std::size_t bytes = std::max(sbr::workspace_query(n, sopt), nn * sizeof(float));
  // Solver-fallback restore point (q0) + bisection inverse-iteration S and
  // the z*S product buffer.
  bytes += 3 * nn * sizeof(float);
  // Wavefront bulge chasing's progress vector + Q support windows (two-stage
  // reductions with bulge_threads != 1 may take the wavefront path).
  if (opt.reduction != Reduction::OneStage && opt.bulge_threads != 1)
    bytes += bulge::wavefront_workspace_bytes(n);
  bytes += 64 * Workspace::kAlignment;  // per-checkout alignment slop
  return bytes;
}

StatusOr<std::vector<double>> reference_eigenvalues(ConstMatrixView<double> a) {
  const index_t n = a.rows();
  Matrix<double> work(n, n);
  copy_matrix(a, work.view());
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  TCEVD_RETURN_IF_ERROR(lapack::steqr<double>(d, e, nullptr));
  return d;
}

double eigenpair_residual(ConstMatrixView<float> a, const std::vector<float>& lambda,
                          ConstMatrixView<float> v) {
  const index_t n = a.rows();
  const index_t nev = v.cols();
  TCEVD_CHECK(static_cast<index_t>(lambda.size()) == nev && v.rows() == n,
              "eigenpair_residual: lambda/vector count mismatch");
  Matrix<double> ad(n, n), vd(n, nev);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(v, vd.view());
  Matrix<double> av(n, nev);
  blas::gemm(Trans::No, Trans::No, 1.0, ad.view(), vd.view(), 0.0, av.view());
  const double scale = frobenius_norm<double>(ad.view());
  double worst = 0.0;
  for (index_t j = 0; j < nev; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = av(i, j) - static_cast<double>(lambda[static_cast<std::size_t>(j)]) * vd(i, j);
      s += r * r;
    }
    worst = std::max(worst, std::sqrt(s));
  }
  return worst / scale;
}

}  // namespace tcevd::evd
