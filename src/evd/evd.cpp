#include "src/evd/evd.hpp"

#include <cmath>
#include <memory>
#include <optional>

#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/common/timer.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"

namespace tcevd::evd {

namespace {

using blas::Trans;

Status run_tri_solver(Workspace& ws, TriSolver solver, std::vector<float>& d,
                      std::vector<float>& e, MatrixView<float>* z) {
  switch (solver) {
    case TriSolver::Ql:
      return lapack::steqr<float>(d, e, z);
    case TriSolver::DivideConquer:
      return lapack::stedc<float>(d, e, z);
    case TriSolver::Bisection: {
      const index_t n = static_cast<index_t>(d.size());
      auto eigs = lapack::stebz<float>(d, e, 0, n - 1);
      if (z != nullptr) {
        // Vectors via inverse iteration on the bisection values, then fold
        // into the accumulated orthogonal factor: z := z * S.
        auto scope = ws.scope();
        auto s = scope.matrix<float>(n, n);
        TCEVD_RETURN_IF_ERROR(lapack::stein<float>(d, e, eigs, s));
        auto tmp = scope.matrix<float>(z->rows(), n);
        blas::gemm<float>(Trans::No, Trans::No, 1.0f, ConstMatrixView<float>(*z),
                          ConstMatrixView<float>(s), 0.0f, tmp);
        copy_matrix<float>(ConstMatrixView<float>(tmp), *z);
      }
      std::copy(eigs.begin(), eigs.end(), d.begin());
      return ok_status();
    }
  }
  return Status(ErrorCode::Internal, "unknown tridiagonal solver");
}

Status screen_input(ConstMatrixView<float> a, float asym_tol) {
  const index_t n = a.rows();
  float amax = 0.0f;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const float v = a(i, j);
      if (!std::isfinite(v))
        return invalid_input_error("evd::solve: input matrix has a non-finite entry");
      amax = std::max(amax, std::abs(v));
    }
  const float tol = asym_tol * std::max(amax, 1e-30f);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i)
      if (std::abs(a(i, j) - a(j, i)) > tol)
        return invalid_input_error("evd::solve: input matrix is not symmetric");
  return ok_status();
}

/// One unverified solve attempt — the full pipeline exactly as it ran before
/// verification existed. The public solve() wraps this with the VerifyPolicy
/// machinery (and calls it directly when verification is off).
StatusOr<EvdResult> solve_once(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "evd::solve requires a square symmetric matrix");

  if (opt.screen_input) TCEVD_RETURN_IF_ERROR(screen_input(a, opt.asymmetry_tol));

  // Trivial sizes never reach the pipeline: SBR requires bandwidth >= 1 and
  // bandwidth < n, which no clamp can satisfy for n <= 1 (and TCEVD_CHECK
  // aborts, so batch drivers could not contain the failure either).
  if (n <= 1) {
    EvdResult trivial;
    if (n == 1) {
      trivial.eigenvalues.assign(1, a(0, 0));
      if (opt.vectors) {
        trivial.vectors = Matrix<float>(1, 1);
        trivial.vectors(0, 0) = 1.0f;
      }
    } else if (opt.vectors) {
      trivial.vectors = Matrix<float>(0, 0);
    }
    trivial.converged = true;
    return trivial;
  }

  ctx.workspace().reserve(workspace_query(n, opt));
  auto solve_scope = ctx.workspace().scope();

  EvdResult result;
  recovery::Scope rscope;  // collects degradation events from every layer
  Timer total;

  std::vector<float> d, e;
  Matrix<float> q;  // accumulated orthogonal factor (vectors only)

  if (opt.reduction == Reduction::OneStage) {
    Timer t;
    auto scope = ctx.workspace().scope();
    auto work = scope.matrix<float>(n, n);
    copy_matrix(a, work);
    std::vector<float> tau;
    lapack::sytrd_blocked(work, d, e, tau, std::min<index_t>(opt.bandwidth, n));
    if (opt.vectors) {
      q = Matrix<float>(n, n);
      lapack::orgtr<float>(work, tau, q.view());
    }
    result.timings.reduction_s = t.seconds();
    ctx.telemetry().record_stage("evd.reduction", result.timings.reduction_s);
  } else {
    sbr::SbrOptions sopt;
    sopt.bandwidth = std::min(opt.bandwidth, n - 1);
    if (opt.big_block < sopt.bandwidth)
      // The SBR layer rejects nb < b outright; here the caller's big_block is
      // a default that a large bandwidth can legitimately outgrow, so raise
      // it — but say so instead of mutating the options invisibly.
      recovery::note("evd.options",
                     "big_block " + std::to_string(opt.big_block) +
                         " is below the bandwidth " + std::to_string(sopt.bandwidth) +
                         "; raising it to the bandwidth");
    sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
    sopt.panel = opt.panel;
    sopt.accumulate_q = opt.vectors;
    sopt.lookahead = opt.lookahead && (opt.reduction == Reduction::TwoStageWy ||
                                       opt.reduction == Reduction::TwoStageDbr);

    Timer t;
    StatusOr<sbr::SbrResult> sres_or =
        (opt.reduction == Reduction::TwoStageWy)    ? sbr::sbr_wy(a, ctx, sopt)
        : (opt.reduction == Reduction::TwoStageDbr) ? sbr::sbr_dbr(a, ctx, sopt)
                                                    : sbr::sbr_zy(a, ctx, sopt);
    if (!sres_or.ok()) return sres_or.status();
    sbr::SbrResult& sres = *sres_or;
    result.timings.reduction_s = t.seconds();
    ctx.telemetry().record_stage("evd.reduction", result.timings.reduction_s);

    t.reset();
    if (opt.compact_second_stage && !opt.vectors) {
      auto band = sbr::BandMatrix<float>::from_full(
          ConstMatrixView<float>(sres.band.view()), sopt.bandwidth);
      sbr::bulge_chase_band(band, d, e);
    } else {
      if (opt.compact_second_stage && opt.vectors)
        recovery::note("evd.second_stage",
                       "compact_second_stage ignored: eigenvectors requested, bulge "
                       "rotations must stream into Q; proceeding on full storage");
      MatrixView<float> qv = sres.q.view();
      MatrixView<float>* qp = opt.vectors ? &qv : nullptr;
      auto tri = bulge::bulge_chase_auto<float>(ctx, sres.band.view(), sopt.bandwidth, qp,
                                                opt.bulge_threads);
      d = std::move(tri.d);
      e = std::move(tri.e);
    }
    result.timings.bulge_s = t.seconds();
    ctx.telemetry().record_stage("evd.bulge", result.timings.bulge_s);
    if (opt.vectors) q = std::move(sres.q);
  }

  Timer ts;
  MatrixView<float> zv = q.view();
  MatrixView<float>* zp = opt.vectors ? &zv : nullptr;

  // The solvers destroy d/e (and fold rotations into q), so keep restore
  // points for the fallback chain.
  std::vector<float> d0, e0;
  MatrixView<float> q0;
  if (opt.allow_fallbacks) {
    d0 = d;
    e0 = e;
    if (opt.vectors) {
      q0 = solve_scope.matrix<float>(q.rows(), q.cols());
      copy_matrix<float>(ConstMatrixView<float>(q.view()), q0);
    }
  }

  Status sst = run_tri_solver(ctx.workspace(), opt.solver, d, e, zp);
  if (!sst.ok() && opt.allow_fallbacks && is_recoverable(sst)) {
    TriSolver tried = opt.solver;
    for (TriSolver fb :
         {TriSolver::DivideConquer, TriSolver::Ql, TriSolver::Bisection}) {
      if (fb == opt.solver) continue;
      d = d0;
      e = e0;
      if (opt.vectors) copy_matrix<float>(ConstMatrixView<float>(q0), q.view());
      recovery::note("evd.solver", std::string(tri_solver_name(tried)) + " failed (" +
                                       sst.to_string() + "); retrying with " +
                                       tri_solver_name(fb));
      sst = run_tri_solver(ctx.workspace(), fb, d, e, zp);
      if (sst.ok() || !is_recoverable(sst)) break;
      tried = fb;
    }
  }
  result.timings.solver_s = ts.seconds();
  ctx.telemetry().record_stage("evd.solver", result.timings.solver_s);
  if (!sst.ok()) return sst;
  result.converged = true;

  result.eigenvalues = std::move(d);
  if (opt.vectors) result.vectors = std::move(q);
  result.timings.total_s = total.seconds();
  result.recovery = rscope.take();
  ctx.telemetry().record_recovery(result.recovery);
  return result;
}

/// Next engine in the accuracy-ascending escalation chain
/// Tc -> EcTc -> Fp32, or nullptr when `kind` is already the most accurate.
/// `prec` carries the Tc operand precision across the Tc -> EcTc step so an
/// escalated tc-tf32 solve corrects tf32 numerics, not fp16.
std::unique_ptr<tc::GemmEngine> next_escalation_engine(tc::EngineKind kind,
                                                       tc::TcPrecision prec) {
  switch (kind) {
    case tc::EngineKind::Tc: return std::make_unique<tc::EcTcEngine>(prec);
    case tc::EngineKind::EcTc: return std::make_unique<tc::Fp32Engine>();
    case tc::EngineKind::Fp32: return nullptr;  // already the terminal engine
  }
  return nullptr;
}

/// Estimate-and-escalate driver for VerifyPolicy != Off. Owns the attempt
/// loop: solve, estimate, and on breach either annotate (Estimate) or swap
/// the context's engine for the next one in the chain and retry
/// (EstimateEscalate) until the estimate passes, the attempt budget is
/// spent, or the chain ends at fp32.
StatusOr<EvdResult> solve_verified(ConstMatrixView<float> a, Context& ctx,
                                   const EvdOptions& opt) {
  const int max_attempts = std::max(1, opt.verify_max_attempts);
  verify::Options vopt;
  vopt.probes = opt.verify_probes;
  vopt.tol_scale = static_cast<double>(opt.verify_tol_scale);

  recovery::Scope vscope;  // breach + escalation notes land here
  RecoveryLog accumulated; // per-attempt logs, in attempt order

  std::unique_ptr<tc::GemmEngine> escalated;        // owns the override engine
  std::optional<EngineOverrideScope> engine_scope;  // keeps ctx on `escalated`
  int attempts = 0;
  int escalations = 0;

  for (;;) {
    ++attempts;
    StatusOr<EvdResult> attempt = solve_once(a, ctx, opt);
    if (!attempt.ok()) {
      // A recoverable pipeline failure (e.g. corruption drove the solver to
      // NoConvergence after its own fallbacks) is escalated like a breached
      // estimate: corruption that poisons the pipeline outright and
      // corruption that merely skews the result get the same answer, a
      // re-solve on a better engine. Non-recoverable failures and the
      // estimate-only policy keep their pre-verification semantics.
      // (The failed attempt's recovery notes propagated into vscope when its
      // inner scope unwound, so they are not lost.)
      if (opt.verify != verify::Policy::EstimateEscalate ||
          !is_recoverable(attempt.status()) || attempts >= max_attempts)
        return attempt.status();
      tc::TcPrecision prec = tc::TcPrecision::Fp16;
      if (const auto* tc_engine = dynamic_cast<const tc::TcEngine*>(&ctx.engine()))
        prec = tc_engine->precision();
      std::unique_ptr<tc::GemmEngine> next =
          next_escalation_engine(ctx.engine().kind(), prec);
      if (next == nullptr) return attempt.status();
      recovery::note("evd.verify",
                     "solve attempt " + std::to_string(attempts) + " failed (" +
                         attempt.status().to_string() +
                         "); re-solving with higher-accuracy engine '" + next->name() +
                         "'");
      ++escalations;
      ctx.telemetry().record_stage("evd.verify.escalation", 0.0);
      engine_scope.emplace(ctx, *next);
      escalated = std::move(next);
      continue;
    }
    EvdResult result = std::move(*attempt);
    accumulated.insert(accumulated.end(), result.recovery.begin(), result.recovery.end());

    const tc::GemmEngine& engine = ctx.engine();
    Timer tv;
    verify::Report report =
        opt.vectors
            ? verify::estimate(a, result.eigenvalues,
                               ConstMatrixView<float>(result.vectors.view()),
                               engine.kind(), vopt)
            : verify::estimate_values(a, result.eigenvalues, engine.kind(), vopt);
    result.timings.verify_s = tv.seconds();
    ctx.telemetry().record_stage("evd.verify", result.timings.verify_s);
    report.attempts = attempts;
    report.escalations = escalations;
    report.engine = engine.name();

    const bool accept = report.passed || opt.verify == verify::Policy::Estimate;
    if (!report.passed) {
      recovery::note(
          "evd.verify",
          "residual estimate " + std::to_string(report.residual) + " (tol " +
              std::to_string(report.residual_tol) + "), orthogonality estimate " +
              std::to_string(report.orthogonality) + " (tol " +
              std::to_string(report.orthogonality_tol) + ") breached on engine '" +
              engine.name() + "'" +
              (accept ? "; policy is estimate-only, returning the result annotated"
                      : ""));
    }
    if (accept) {
      result.verify = std::move(report);
      RecoveryLog notes = vscope.take();
      ctx.telemetry().record_recovery(notes);
      accumulated.insert(accumulated.end(), notes.begin(), notes.end());
      result.recovery = std::move(accumulated);
      return result;
    }

    // Escalate: next engine in the chain, same warm context.
    tc::TcPrecision prec = tc::TcPrecision::Fp16;
    if (const auto* tc_engine = dynamic_cast<const tc::TcEngine*>(&engine))
      prec = tc_engine->precision();
    std::unique_ptr<tc::GemmEngine> next =
        next_escalation_engine(engine.kind(), prec);
    if (next == nullptr || attempts >= max_attempts) {
      const std::string reason =
          next == nullptr ? "the escalation chain is exhausted (already on '" +
                                engine.name() + "')"
                          : "the attempt budget (" + std::to_string(max_attempts) +
                                ") is spent";
      recovery::note("evd.verify", "verification still failing and " + reason);
      ctx.telemetry().record_recovery(vscope.take());
      return precision_loss_error(
          "evd::solve: verification failed after " + std::to_string(attempts) +
          " attempt(s) (residual estimate " + std::to_string(report.residual) +
          ", tol " + std::to_string(report.residual_tol) + ", engine '" +
          engine.name() + "'); " + reason);
    }
    recovery::note("evd.verify", "re-solving with higher-accuracy engine '" +
                                     next->name() + "' (attempt " +
                                     std::to_string(attempts + 1) + "/" +
                                     std::to_string(max_attempts) + ")");
    ++escalations;
    ctx.telemetry().record_stage("evd.verify.escalation", 0.0);
    engine_scope.emplace(ctx, *next);  // destroys any previous override first
    escalated = std::move(next);
  }
}

}  // namespace

const char* tri_solver_name(TriSolver solver) noexcept {
  switch (solver) {
    case TriSolver::Ql: return "ql";
    case TriSolver::DivideConquer: return "divide-conquer";
    case TriSolver::Bisection: return "bisection";
  }
  return "?";
}

StatusOr<EvdResult> solve(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt) {
  // ABFT covers every packed GEMM for the whole solve, verification attempts
  // and escalated re-solves included.
  std::optional<blas::abft::AbftScope> abft_scope;
  if (opt.abft) abft_scope.emplace();

  if (opt.verify == verify::Policy::Off || a.rows() <= 1)
    return solve_once(a, ctx, opt);
  return solve_verified(a, ctx, opt);
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
StatusOr<EvdResult> solve(ConstMatrixView<float> a, tc::GemmEngine& engine,
                          const EvdOptions& opt) {
  return solve(a, compat_context(engine), opt);
}

std::size_t workspace_query(index_t n, const EvdOptions& opt) {
  if (n <= 0) return 0;
  sbr::SbrOptions sopt;
  sopt.bandwidth = std::min(opt.bandwidth, std::max<index_t>(n - 1, 1));
  sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
  sopt.big_block -= sopt.big_block % sopt.bandwidth;
  sopt.panel = opt.panel;

  const std::size_t nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  // Reduction stage: SBR arena peak, or the one-stage n x n scratch.
  std::size_t bytes = std::max(sbr::workspace_query(n, sopt), nn * sizeof(float));
  // Solver-fallback restore point (q0) + bisection inverse-iteration S and
  // the z*S product buffer.
  bytes += 3 * nn * sizeof(float);
  // Wavefront bulge chasing's progress vector + Q support windows (two-stage
  // reductions with bulge_threads != 1 may take the wavefront path).
  if (opt.reduction != Reduction::OneStage && opt.bulge_threads != 1)
    bytes += bulge::wavefront_workspace_bytes(n);
  bytes += 64 * Workspace::kAlignment;  // per-checkout alignment slop
  return bytes;
}

StatusOr<std::vector<double>> reference_eigenvalues(ConstMatrixView<double> a) {
  const index_t n = a.rows();
  Matrix<double> work(n, n);
  copy_matrix(a, work.view());
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  TCEVD_RETURN_IF_ERROR(lapack::steqr<double>(d, e, nullptr));
  return d;
}

double eigenpair_residual(ConstMatrixView<float> a, const std::vector<float>& lambda,
                          ConstMatrixView<float> v) {
  const index_t n = a.rows();
  const index_t nev = v.cols();
  TCEVD_CHECK(static_cast<index_t>(lambda.size()) == nev && v.rows() == n,
              "eigenpair_residual: lambda/vector count mismatch");
  Matrix<double> ad(n, n), vd(n, nev);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(v, vd.view());
  Matrix<double> av(n, nev);
  blas::gemm(Trans::No, Trans::No, 1.0, ad.view(), vd.view(), 0.0, av.view());
  const double scale = frobenius_norm<double>(ad.view());
  double worst = 0.0;
  for (index_t j = 0; j < nev; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = av(i, j) - static_cast<double>(lambda[static_cast<std::size_t>(j)]) * vd(i, j);
      s += r * r;
    }
    worst = std::max(worst, std::sqrt(s));
  }
  return worst / scale;
}

}  // namespace tcevd::evd
