#include "src/evd/evd.hpp"

#include <cmath>

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/common/norms.hpp"
#include "src/common/timer.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"

namespace tcevd::evd {

namespace {

using blas::Trans;

bool run_tri_solver(TriSolver solver, std::vector<float>& d, std::vector<float>& e,
                    MatrixView<float>* z) {
  switch (solver) {
    case TriSolver::Ql:
      return lapack::steqr<float>(d, e, z);
    case TriSolver::DivideConquer:
      return lapack::stedc<float>(d, e, z);
    case TriSolver::Bisection: {
      TCEVD_CHECK(z == nullptr, "bisection solver computes eigenvalues only");
      const index_t n = static_cast<index_t>(d.size());
      auto eigs = lapack::stebz<float>(d, e, 0, n - 1);
      std::copy(eigs.begin(), eigs.end(), d.begin());
      return true;
    }
  }
  return false;
}

}  // namespace

EvdResult solve(ConstMatrixView<float> a, tc::GemmEngine& engine, const EvdOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "evd::solve requires a square symmetric matrix");
  TCEVD_CHECK(!(opt.vectors && opt.solver == TriSolver::Bisection),
              "bisection computes eigenvalues only");

  EvdResult result;
  Timer total;

  std::vector<float> d, e;
  Matrix<float> q;  // accumulated orthogonal factor (vectors only)

  if (opt.reduction == Reduction::OneStage) {
    Timer t;
    Matrix<float> work(n, n);
    copy_matrix(a, work.view());
    std::vector<float> tau;
    lapack::sytrd_blocked(work.view(), d, e, tau, std::min<index_t>(opt.bandwidth, n));
    if (opt.vectors) {
      q = Matrix<float>(n, n);
      lapack::orgtr<float>(work.view(), tau, q.view());
    }
    result.timings.reduction_s = t.seconds();
  } else {
    sbr::SbrOptions sopt;
    sopt.bandwidth = std::min(opt.bandwidth, n - 1);
    sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
    // Keep nb a multiple of b as sbr_wy requires.
    sopt.big_block -= sopt.big_block % sopt.bandwidth;
    sopt.panel = opt.panel;
    sopt.accumulate_q = opt.vectors;

    Timer t;
    auto sres = (opt.reduction == Reduction::TwoStageWy) ? sbr::sbr_wy(a, engine, sopt)
                                                         : sbr::sbr_zy(a, engine, sopt);
    result.timings.reduction_s = t.seconds();

    t.reset();
    if (opt.compact_second_stage && !opt.vectors) {
      auto band = sbr::BandMatrix<float>::from_full(
          ConstMatrixView<float>(sres.band.view()), sopt.bandwidth);
      sbr::bulge_chase_band(band, d, e);
    } else {
      MatrixView<float> qv = sres.q.view();
      MatrixView<float>* qp = opt.vectors ? &qv : nullptr;
      auto tri = bulge::bulge_chase<float>(sres.band.view(), sopt.bandwidth, qp);
      d = std::move(tri.d);
      e = std::move(tri.e);
    }
    result.timings.bulge_s = t.seconds();
    if (opt.vectors) q = std::move(sres.q);
  }

  Timer ts;
  MatrixView<float> zv = q.view();
  MatrixView<float>* zp = opt.vectors ? &zv : nullptr;
  result.converged = run_tri_solver(opt.solver, d, e, zp);
  result.timings.solver_s = ts.seconds();

  result.eigenvalues = std::move(d);
  if (opt.vectors) result.vectors = std::move(q);
  result.timings.total_s = total.seconds();
  return result;
}

std::vector<double> reference_eigenvalues(ConstMatrixView<double> a) {
  const index_t n = a.rows();
  Matrix<double> work(n, n);
  copy_matrix(a, work.view());
  std::vector<double> d, e, tau;
  lapack::sytrd(work.view(), d, e, tau);
  const bool ok = lapack::steqr<double>(d, e, nullptr);
  TCEVD_CHECK(ok, "reference eigensolver failed to converge");
  return d;
}

double eigenpair_residual(ConstMatrixView<float> a, const std::vector<float>& lambda,
                          ConstMatrixView<float> v) {
  const index_t n = a.rows();
  const index_t nev = v.cols();
  TCEVD_CHECK(static_cast<index_t>(lambda.size()) == nev && v.rows() == n,
              "eigenpair_residual: lambda/vector count mismatch");
  Matrix<double> ad(n, n), vd(n, nev);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(v, vd.view());
  Matrix<double> av(n, nev);
  blas::gemm(Trans::No, Trans::No, 1.0, ad.view(), vd.view(), 0.0, av.view());
  const double scale = frobenius_norm<double>(ad.view());
  double worst = 0.0;
  for (index_t j = 0; j < nev; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double r = av(i, j) - static_cast<double>(lambda[static_cast<std::size_t>(j)]) * vd(i, j);
      s += r * r;
    }
    worst = std::max(worst, std::sqrt(s));
  }
  return worst / scale;
}

}  // namespace tcevd::evd
