// Symmetric eigenvalue decomposition drivers (paper Section 6.4).
//
// The two-stage pipeline is: SBR (dense -> band, Tensor Core GEMMs) ->
// bulge chasing (band -> tridiagonal) -> tridiagonal eigensolver (QL or
// divide & conquer), with an optional eigenvector back-transformation
// through the accumulated orthogonal factors. The one-stage pipeline
// (classic Householder tridiagonalization) is kept as the conventional
// baseline the two-stage method is measured against.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd::evd {

enum class Reduction {
  TwoStageWy,  ///< WY-based SBR (the paper's method) + bulge chasing
  TwoStageZy,  ///< ZY-based SBR (MAGMA-style baseline) + bulge chasing
  OneStage,    ///< direct Householder tridiagonalization (sytrd)
};

enum class TriSolver {
  Ql,             ///< implicit QL/QR with Wilkinson shifts (steqr)
  DivideConquer,  ///< Cuppen D&C (stedc) — what MAGMA's ssyevd uses
  Bisection,      ///< Sturm bisection (eigenvalues only)
};

struct EvdOptions {
  Reduction reduction = Reduction::TwoStageWy;
  TriSolver solver = TriSolver::DivideConquer;
  index_t bandwidth = 32;                       ///< SBR band half-width b
  index_t big_block = 128;                      ///< WY big block nb
  sbr::PanelKind panel = sbr::PanelKind::Tsqr;
  bool vectors = false;                         ///< compute eigenvectors
  /// Run bulge chasing on compact O(n*b) band storage instead of the full
  /// matrix (eigenvalues-only pipelines; ignored when vectors are requested
  /// since the rotations must also stream into Q).
  bool compact_second_stage = false;
};

struct EvdTimings {
  double reduction_s = 0.0;  ///< SBR or sytrd
  double bulge_s = 0.0;      ///< bulge chasing (two-stage only)
  double solver_s = 0.0;     ///< tridiagonal eigensolver
  double total_s = 0.0;
};

struct EvdResult {
  std::vector<float> eigenvalues;  ///< ascending
  Matrix<float> vectors;           ///< n x n (empty unless requested)
  EvdTimings timings;
  bool converged = false;
};

/// Full single-precision EVD with the engine supplying every SBR GEMM.
EvdResult solve(ConstMatrixView<float> a, tc::GemmEngine& engine, const EvdOptions& opt);

/// Double-precision reference eigenvalues (one-stage sytrd + QL), the stand-
/// in for "LAPACK dsyevd" ground truth in the accuracy tables.
std::vector<double> reference_eigenvalues(ConstMatrixView<double> a);

/// Residual metrics for a computed eigensystem: max_j ||A v_j - lambda_j
/// v_j||_2 / ||A||_F, computed in double.
double eigenpair_residual(ConstMatrixView<float> a, const std::vector<float>& lambda,
                          ConstMatrixView<float> v);

}  // namespace tcevd::evd
