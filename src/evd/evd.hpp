// Symmetric eigenvalue decomposition drivers (paper Section 6.4).
//
// The two-stage pipeline is: SBR (dense -> band, Tensor Core GEMMs) ->
// bulge chasing (band -> tridiagonal) -> tridiagonal eigensolver (QL or
// divide & conquer), with an optional eigenvector back-transformation
// through the accumulated orthogonal factors. The one-stage pipeline
// (classic Householder tridiagonalization) is kept as the conventional
// baseline the two-stage method is measured against.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/recovery.hpp"
#include "src/common/status.hpp"
#include "src/common/verify.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd {
class Context;
}  // namespace tcevd

namespace tcevd::evd {

enum class Reduction {
  TwoStageWy,   ///< WY-based SBR (the paper's method) + bulge chasing
  TwoStageZy,   ///< ZY-based SBR (MAGMA-style baseline) + bulge chasing
  TwoStageDbr,  ///< Detached Band Reduction (narrow band b, wide accumulation
                ///< nb — sbr::sbr_dbr) + bulge chasing on the narrow band
  OneStage,     ///< direct Householder tridiagonalization (sytrd)
};

enum class TriSolver {
  Ql,             ///< implicit QL/QR with Wilkinson shifts (steqr)
  DivideConquer,  ///< Cuppen D&C (stedc) — what MAGMA's ssyevd uses
  Bisection,      ///< Sturm bisection (+ inverse iteration for vectors)
};

/// Human-readable solver name ("ql", "divide-conquer", "bisection").
const char* tri_solver_name(TriSolver solver) noexcept;

struct EvdOptions {
  Reduction reduction = Reduction::TwoStageWy;
  TriSolver solver = TriSolver::DivideConquer;
  /// SBR band half-width b (size-clamped to n - 1; for TwoStageDbr pick it
  /// small — the second stage is O(n^2 b) — and pick big_block large).
  index_t bandwidth = 32;
  /// WY/DBR accumulation blocksize nb. The driver derives a valid SbrOptions
  /// pair from (bandwidth, big_block): values below the (clamped) bandwidth
  /// are raised to it and non-multiples rounded down, each adjustment noted
  /// in EvdResult::recovery (site "evd.options" / "sbr.options") rather than
  /// silently applied. Direct sbr::* callers get strict InvalidArgument
  /// rejection instead — see sbr::validate_options.
  index_t big_block = 128;
  sbr::PanelKind panel = sbr::PanelKind::Tsqr;
  bool vectors = false;                         ///< compute eigenvectors
  /// Run bulge chasing on compact O(n*b) band storage instead of the full
  /// matrix. Eigenvalues-only pipelines only: when `vectors` is also set the
  /// flag is IGNORED — the bulge rotations must stream into Q, which the
  /// compact kernel does not support — and the solve proceeds on full
  /// storage, noting the ignored request in EvdResult::recovery (site
  /// "evd.second_stage") so callers relying on the compact path's memory
  /// profile find out.
  bool compact_second_stage = false;
  /// Threading of the second stage (full-storage bulge chasing only; the
  /// compact eigenvalues-only path is already O(n*b) and stays serial).
  /// 0 = auto: the wavefront engine (src/bulge/bulge_wavefront.hpp) on the
  /// shared gemm_pool() when the problem is big enough (n >= 256, band >= 2)
  /// and the caller is not itself a pool worker (solve_many workers keep the
  /// serial chase — they ARE the parallelism). 1 = always the serial chase.
  /// k >= 2 = wavefront with at most k lanes. Every setting produces
  /// bitwise-identical output — the wavefront schedule is pinned to the
  /// serial rotation sequence (DESIGN.md §14) — so this is a performance
  /// knob, never an accuracy one. An explicit k >= 2 that cannot engage
  /// (pool worker, bandwidth < 2, or n <= 2) runs the serial chase and notes
  /// the downgrade in EvdResult::recovery at site "evd.second_stage".
  int bulge_threads = 0;
  /// Forwarded to SbrOptions::lookahead for the TwoStageWy and TwoStageDbr
  /// reductions: overlap each big block's panel factorization with the
  /// previous block's trailing update. Numerically identical banded output;
  /// ignored by the ZY and one-stage reductions, and noted + run serial by
  /// DBR when b < nb (site "sbr.dbr").
  bool lookahead = false;
  /// Reject NaN/Inf entries and gross asymmetry up front (InvalidInput)
  /// instead of feeding garbage to the pipeline. O(n^2) scan.
  bool screen_input = true;
  /// Relative asymmetry tolerance for the input screen:
  /// |a_ij - a_ji| <= asymmetry_tol * max|a| is accepted.
  float asymmetry_tol = 1e-3f;
  /// Degrade gracefully on recoverable solver failures by walking the
  /// DivideConquer -> Ql -> Bisection chain (each fallback recorded in
  /// EvdResult::recovery). When false, the first failure propagates.
  bool allow_fallbacks = true;

  // --- verified solves (see src/common/verify.hpp and DESIGN.md §12) -------
  /// Post-solve verification policy. Off skips verification entirely.
  /// Estimate computes stochastic residual/orthogonality estimates (or the
  /// trace/Frobenius invariants for eigenvalue-only solves), records the
  /// verdict in EvdResult::verify and notes a breach at recovery site
  /// "evd.verify" — but still returns the result. EstimateEscalate
  /// additionally re-solves a breached problem on the next higher-accuracy
  /// engine (Tc -> EcTc -> Fp32) under `verify_max_attempts`; when the chain
  /// or the budget is exhausted without a passing estimate, the solve
  /// returns PrecisionLoss instead of a result.
  verify::Policy verify = verify::Policy::Off;
  /// Probe vectors per verification (see verify::Options::probes).
  int verify_probes = 4;
  /// Total solve attempts (initial + escalated re-solves) EstimateEscalate
  /// may spend before giving up.
  int verify_max_attempts = 3;
  /// Multiplies both verification thresholds (tighten < 1, loosen > 1).
  float verify_tol_scale = 1.0f;
  /// Run every packed GEMM issued during this solve under ABFT checksum
  /// protection (src/blas/abft.hpp): each C micro-tile is verified against a
  /// column-checksum invariant and a corrupted tile is recomputed in place,
  /// with the event recorded at recovery site "blas.abft". ~10% GEMM
  /// overhead; a recovered solve is bitwise-identical to a fault-free one.
  bool abft = false;
};

struct EvdTimings {
  double reduction_s = 0.0;  ///< SBR or sytrd
  double bulge_s = 0.0;      ///< bulge chasing (two-stage only)
  double solver_s = 0.0;     ///< tridiagonal eigensolver
  double verify_s = 0.0;     ///< residual estimation (verified solves only)
  double total_s = 0.0;
};

struct EvdResult {
  std::vector<float> eigenvalues;  ///< ascending
  Matrix<float> vectors;           ///< n x n (empty unless requested)
  EvdTimings timings;
  bool converged = false;
  /// Every graceful-degradation event taken while solving (panel QR
  /// fallbacks, fp32 GEMM retries, tridiagonal solver fallbacks, ABFT tile
  /// recomputations, verification escalations). Empty on a clean run.
  RecoveryLog recovery;
  /// Verification verdict (EvdOptions::verify != Off only; default-initial
  /// otherwise, with checked == false). Under EstimateEscalate a returned
  /// result always has verify.passed == true — a breach either escalated to
  /// a passing re-solve recorded here (attempts/escalations/engine) or the
  /// solve failed with PrecisionLoss.
  verify::Report verify;
};

/// Full single-precision EVD with the context's engine supplying every SBR
/// GEMM and its workspace arena supplying every scratch matrix. On entry the
/// arena is pre-sized with workspace_query, so the *second* solve of the
/// same shape on a given Context performs zero arena growth (see the
/// steady-state test); per-stage wall time and the aggregated recovery log
/// additionally land on the context's telemetry.
///
/// Failure semantics: invalid input (NaN/Inf/asymmetric) is InvalidInput;
/// recoverable numerical trouble first walks the documented fallbacks
/// (TSQR -> blocked QR panels, fp32 GEMM retry, solver chain) and only
/// propagates if every fallback is exhausted. A returned EvdResult is
/// always converged; `recovery` says what it took.
StatusOr<EvdResult> solve(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt);

/// Deprecated: routes through the per-thread scratch Context of
/// `compat_context(engine)` (warm arena after the first call). New code
/// should construct a Context; see DESIGN.md §8.
StatusOr<EvdResult> solve(ConstMatrixView<float> a, tc::GemmEngine& engine,
                          const EvdOptions& opt);

/// Peak workspace-arena bytes one solve of size n needs (LAPACK-lwork
/// style, conservative — covers the SBR stage, the one-stage scratch, the
/// solver-fallback restore point, and the bisection/inverse-iteration path).
std::size_t workspace_query(index_t n, const EvdOptions& opt);

/// Double-precision reference eigenvalues (one-stage sytrd + QL), the stand-
/// in for "LAPACK dsyevd" ground truth in the accuracy tables. Reports
/// NoConvergence instead of aborting when the QL iteration stalls.
StatusOr<std::vector<double>> reference_eigenvalues(ConstMatrixView<double> a);

/// Residual metrics for a computed eigensystem: max_j ||A v_j - lambda_j
/// v_j||_2 / ||A||_F, computed in double.
double eigenpair_residual(ConstMatrixView<float> a, const std::vector<float>& lambda,
                          ConstMatrixView<float> v);

}  // namespace tcevd::evd
