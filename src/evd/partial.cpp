#include "src/evd/partial.hpp"

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"

namespace tcevd::evd {

StatusOr<PartialResult> solve_selected(ConstMatrixView<float> a, Context& ctx,
                                       const EvdOptions& opt, index_t il, index_t iu,
                                       bool vectors) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "solve_selected requires a square symmetric matrix");
  // The index window is caller data, not a programmer contract: a streaming
  // service (or solve_many) feeding per-request ranges must be able to reject
  // one bad request without taking the process down.
  if (!(0 <= il && il <= iu && iu < n))
    return invalid_argument_error(
        "solve_selected: selected index range [il, iu] = [" + std::to_string(il) + ", " +
        std::to_string(iu) + "] invalid for n = " + std::to_string(n));

  // n == 1 never reaches the pipeline (SBR requires bandwidth in [1, n)).
  // The index check above already pins il == iu == 0 here.
  if (n == 1) {
    PartialResult trivial;
    trivial.eigenvalues.assign(1, a(0, 0));
    if (vectors) {
      trivial.vectors = Matrix<float>(1, 1);
      trivial.vectors(0, 0) = 1.0f;
    }
    trivial.converged = true;
    return trivial;
  }

  ctx.workspace().reserve(workspace_query(n, opt));
  auto solve_scope = ctx.workspace().scope();
  StageTimer stage(ctx.telemetry(), "evd.partial");

  PartialResult out;
  recovery::Scope rscope;
  std::vector<float> d, e;
  Matrix<float> q;  // accumulated orthogonal factor (only when vectors)

  if (opt.reduction == Reduction::OneStage) {
    auto scope = ctx.workspace().scope();
    auto work = scope.matrix<float>(n, n);
    copy_matrix(a, work);
    std::vector<float> tau;
    lapack::sytrd(work, d, e, tau);
    if (vectors) {
      q = Matrix<float>(n, n);
      lapack::orgtr<float>(work, tau, q.view());
    }
  } else {
    sbr::SbrOptions sopt;
    sopt.bandwidth = std::min(opt.bandwidth, n - 1);
    if (opt.big_block < sopt.bandwidth)
      recovery::note("evd.options",
                     "big_block " + std::to_string(opt.big_block) +
                         " is below the bandwidth " + std::to_string(sopt.bandwidth) +
                         "; raising it to the bandwidth");
    sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
    sopt.panel = opt.panel;
    sopt.accumulate_q = vectors;
    StatusOr<sbr::SbrResult> sres_or =
        (opt.reduction == Reduction::TwoStageWy)    ? sbr::sbr_wy(a, ctx, sopt)
        : (opt.reduction == Reduction::TwoStageDbr) ? sbr::sbr_dbr(a, ctx, sopt)
                                                    : sbr::sbr_zy(a, ctx, sopt);
    if (!sres_or.ok()) return sres_or.status();
    sbr::SbrResult& sres = *sres_or;
    MatrixView<float> qv = sres.q.view();
    MatrixView<float>* qp = vectors ? &qv : nullptr;
    auto tri = bulge::bulge_chase_auto<float>(ctx, sres.band.view(), sopt.bandwidth, qp,
                                              opt.bulge_threads);
    d = std::move(tri.d);
    e = std::move(tri.e);
    if (vectors) q = std::move(sres.q);
  }

  // Selected eigenvalues by Sturm bisection.
  out.eigenvalues = lapack::stebz<float>(d, e, il, iu);
  const index_t nev = iu - il + 1;

  if (vectors) {
    // Tridiagonal eigenvectors by inverse iteration, then back-transform.
    auto z = solve_scope.matrix<float>(n, nev);
    Status st = lapack::stein<float>(d, e, out.eigenvalues, z);
    if (!st.ok() && opt.allow_fallbacks && is_recoverable(st)) {
      // Inverse iteration stagnated on at least one vector. Solve the full
      // tridiagonal problem with QL instead and keep the selected columns —
      // slower (O(n^3) vs O(n * nev)) but unconditionally convergent in
      // practice on the matrices QL handles.
      recovery::note("evd.partial", "stein failed (" + st.to_string() +
                                        "); recomputed selected vectors with full QL solve");
      std::vector<float> dq = d, eq = e;
      auto ql_scope = ctx.workspace().scope();
      auto zfull = ql_scope.matrix<float>(n, n);
      set_identity(zfull);
      MatrixView<float> zfv = zfull;
      TCEVD_RETURN_IF_ERROR(lapack::steqr<float>(dq, eq, &zfv));
      // steqr returns ascending eigenvalues, so columns il..iu line up with
      // the bisection selection.
      for (index_t j = 0; j < nev; ++j) {
        out.eigenvalues[static_cast<std::size_t>(j)] = dq[static_cast<std::size_t>(il + j)];
        for (index_t i = 0; i < n; ++i) z(i, j) = zfull(i, il + j);
      }
    } else if (!st.ok()) {
      return st;
    }
    out.vectors = Matrix<float>(n, nev);
    blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(q.view()),
               ConstMatrixView<float>(z), 0.0f, out.vectors.view());
  }
  out.converged = true;
  out.recovery = rscope.take();
  ctx.telemetry().record_recovery(out.recovery);
  return out;
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
StatusOr<PartialResult> solve_selected(ConstMatrixView<float> a, tc::GemmEngine& engine,
                                       const EvdOptions& opt, index_t il, index_t iu,
                                       bool vectors) {
  return solve_selected(a, compat_context(engine), opt, il, iu, vectors);
}

}  // namespace tcevd::evd
