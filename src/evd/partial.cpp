#include "src/evd/partial.hpp"

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"

namespace tcevd::evd {

PartialResult solve_selected(ConstMatrixView<float> a, tc::GemmEngine& engine,
                             const EvdOptions& opt, index_t il, index_t iu, bool vectors) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "solve_selected requires a square symmetric matrix");
  TCEVD_CHECK(0 <= il && il <= iu && iu < n, "selected index range invalid");

  PartialResult out;
  std::vector<float> d, e;
  Matrix<float> q;  // accumulated orthogonal factor (only when vectors)

  if (opt.reduction == Reduction::OneStage) {
    Matrix<float> work(n, n);
    copy_matrix(a, work.view());
    std::vector<float> tau;
    lapack::sytrd(work.view(), d, e, tau);
    if (vectors) {
      q = Matrix<float>(n, n);
      lapack::orgtr<float>(work.view(), tau, q.view());
    }
  } else {
    sbr::SbrOptions sopt;
    sopt.bandwidth = std::min(opt.bandwidth, n - 1);
    sopt.big_block = std::max(opt.big_block, sopt.bandwidth);
    sopt.big_block -= sopt.big_block % sopt.bandwidth;
    sopt.panel = opt.panel;
    sopt.accumulate_q = vectors;
    auto sres = (opt.reduction == Reduction::TwoStageWy) ? sbr::sbr_wy(a, engine, sopt)
                                                         : sbr::sbr_zy(a, engine, sopt);
    MatrixView<float> qv = sres.q.view();
    MatrixView<float>* qp = vectors ? &qv : nullptr;
    auto tri = bulge::bulge_chase<float>(sres.band.view(), sopt.bandwidth, qp);
    d = std::move(tri.d);
    e = std::move(tri.e);
    if (vectors) q = std::move(sres.q);
  }

  // Selected eigenvalues by Sturm bisection.
  out.eigenvalues = lapack::stebz<float>(d, e, il, iu);
  const index_t nev = iu - il + 1;
  out.converged = true;

  if (vectors) {
    // Tridiagonal eigenvectors by inverse iteration, then back-transform.
    Matrix<float> z(n, nev);
    out.converged = lapack::stein<float>(d, e, out.eigenvalues, z.view());
    out.vectors = Matrix<float>(n, nev);
    blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(q.view()),
               ConstMatrixView<float>(z.view()), 0.0f, out.vectors.view());
  }
  return out;
}

}  // namespace tcevd::evd
