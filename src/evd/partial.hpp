// Partial (selected) eigensolve: eigenvalues with indices [il, iu] and,
// optionally, their eigenvectors — the "portion of the eigenvalues and
// eigenvectors requested" workload the paper discusses around the SICE
// algorithm and the bisection method of its related work.
//
// Pipeline: SBR (engine numerics) -> bulge chasing -> Sturm bisection for
// the selected eigenvalues -> inverse iteration (stein) for the tridiagonal
// eigenvectors -> back-transformation through the accumulated two-stage Q.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/evd/evd.hpp"

namespace tcevd::evd {

struct PartialResult {
  std::vector<float> eigenvalues;  ///< iu - il + 1 values, ascending
  Matrix<float> vectors;           ///< n x nev (empty unless requested)
  bool converged = false;
  RecoveryLog recovery;            ///< degradation events (see EvdResult)
};

/// Compute eigenvalues il..iu (0-based, inclusive, ascending order) of
/// symmetric `a`, optionally with eigenvectors. Uses opt.reduction /
/// bandwidth / big_block / panel; opt.solver is ignored (bisection+stein by
/// construction). If inverse iteration fails on a vector (or the
/// stein.stagnate fault fires) and opt.allow_fallbacks is set, the selected
/// vectors are recomputed with the full QL solver instead; only when that
/// also fails does the error propagate. An out-of-bounds index range returns
/// InvalidArgument (it is request data, not a programmer contract — batch
/// and streaming drivers surface it per problem instead of aborting).
StatusOr<PartialResult> solve_selected(ConstMatrixView<float> a, Context& ctx,
                                       const EvdOptions& opt, index_t il, index_t iu,
                                       bool vectors = false);

/// Deprecated: wraps a temporary Context (cold workspace, no telemetry)
/// around the bare engine.
StatusOr<PartialResult> solve_selected(ConstMatrixView<float> a, tc::GemmEngine& engine,
                                       const EvdOptions& opt, index_t il, index_t iu,
                                       bool vectors = false);

}  // namespace tcevd::evd
