#include "src/evd/refine.hpp"

#include <cmath>
#include <limits>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/lapack/getrf.hpp"

namespace tcevd::evd {

namespace {

/// ||A v - lambda v||_2 for a unit vector v.
double residual_norm(ConstMatrixView<double> a, const double* v, double lambda,
                     std::vector<double>& work) {
  const index_t n = a.rows();
  work.assign(static_cast<std::size_t>(n), 0.0);
  blas::gemv(blas::Trans::No, 1.0, a, v, 1, 0.0, work.data(), 1);
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double r = work[static_cast<std::size_t>(i)] - lambda * v[i];
    s += r * r;
  }
  return std::sqrt(s);
}

}  // namespace

RefineResult refine_eigenpairs(ConstMatrixView<double> a, const std::vector<double>& lambda0,
                               ConstMatrixView<double> v0, const RefineOptions& opt) {
  const index_t n = a.rows();
  const index_t nev = static_cast<index_t>(lambda0.size());
  TCEVD_CHECK(a.cols() == n, "refine_eigenpairs requires square A");
  TCEVD_CHECK(v0.rows() == n && v0.cols() == nev, "refine_eigenpairs v0 shape mismatch");

  RefineResult out;
  out.eigenvalues = lambda0;
  out.vectors = Matrix<double>(n, nev);
  copy_matrix(v0, out.vectors.view());
  out.residuals.assign(static_cast<std::size_t>(nev), 0.0);

  const double anorm = frobenius_norm(a);
  const double tol = (opt.tol > 0.0)
                         ? opt.tol
                         : 10.0 * std::numeric_limits<double>::epsilon() * std::max(anorm, 1.0);

  std::vector<double> work;
  Matrix<double> shifted(n, n);
  std::vector<index_t> piv;

  for (index_t j = 0; j < nev; ++j) {
    double* v = &out.vectors(0, j);
    // Normalize the input vector.
    const double vn = blas::nrm2(n, v, 1);
    TCEVD_CHECK(vn > 0.0, "refine_eigenpairs: zero starting vector");
    blas::scal(n, 1.0 / vn, v, 1);

    double mu = out.eigenvalues[static_cast<std::size_t>(j)];
    double res = residual_norm(a, v, mu, work);

    for (int it = 0; it < opt.max_iters && res > tol; ++it) {
      ++out.total_iterations;
      // Rayleigh quotient of the current vector.
      work.assign(static_cast<std::size_t>(n), 0.0);
      blas::gemv(blas::Trans::No, 1.0, a, v, 1, 0.0, work.data(), 1);
      mu = blas::dot(n, v, 1, work.data(), 1);

      // One inverse-iteration step at the Rayleigh shift. The shifted matrix
      // is nearly singular by design; partial pivoting keeps the solve
      // usable, and any blow-up only *improves* the eigenvector direction.
      copy_matrix(a, shifted.view());
      for (index_t i = 0; i < n; ++i) shifted(i, i) -= mu;
      if (!lapack::getrf(shifted.view(), piv).ok()) {
        // Exactly singular: mu is an eigenvalue to machine precision and v
        // is its vector (or the solve below would divide by zero).
        res = residual_norm(a, v, mu, work);
        break;
      }
      Matrix<double> rhs(n, 1);
      for (index_t i = 0; i < n; ++i) rhs(i, 0) = v[i];
      lapack::getrs<double>(blas::Trans::No, shifted.view(), piv, rhs.view());
      const double wn = blas::nrm2(n, &rhs(0, 0), 1);
      if (!(wn > 0.0) || !std::isfinite(wn)) break;
      for (index_t i = 0; i < n; ++i) v[i] = rhs(i, 0) / wn;

      // Updated Rayleigh quotient and residual.
      work.assign(static_cast<std::size_t>(n), 0.0);
      blas::gemv(blas::Trans::No, 1.0, a, v, 1, 0.0, work.data(), 1);
      mu = blas::dot(n, v, 1, work.data(), 1);
      res = residual_norm(a, v, mu, work);
    }

    out.eigenvalues[static_cast<std::size_t>(j)] = mu;
    out.residuals[static_cast<std::size_t>(j)] = res;
  }
  return out;
}

RefineResult refine_eigenpairs(ConstMatrixView<float> a, const std::vector<float>& lambda0,
                               ConstMatrixView<float> v0, const RefineOptions& opt) {
  const index_t n = a.rows();
  const index_t nev = static_cast<index_t>(lambda0.size());
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a, ad.view());
  Matrix<double> vd(n, nev);
  convert_matrix<float, double>(v0, vd.view());
  std::vector<double> ld(lambda0.begin(), lambda0.end());
  return refine_eigenpairs(ad.view(), ld, vd.view(), opt);
}

RefineResult refine_eigenpairs(Context& ctx, ConstMatrixView<double> a,
                               const std::vector<double>& lambda0, ConstMatrixView<double> v0,
                               const RefineOptions& opt) {
  StageTimer stage(ctx.telemetry(), "evd.refine");
  return refine_eigenpairs(a, lambda0, v0, opt);
}

RefineResult refine_eigenpairs(Context& ctx, ConstMatrixView<float> a,
                               const std::vector<float>& lambda0, ConstMatrixView<float> v0,
                               const RefineOptions& opt) {
  StageTimer stage(ctx.telemetry(), "evd.refine");
  return refine_eigenpairs(a, lambda0, v0, opt);
}

}  // namespace tcevd::evd
