// Mixed-precision eigenpair refinement (the paper's closing future-work
// item, after Tsai, Luszczek & Dongarra 2021: recover full precision from a
// low-precision eigensolve).
//
// Given approximate eigenpairs from the Tensor-Core pipeline (accuracy
// ~eps16), each pair is polished by shifted inverse iteration with Rayleigh
// quotient updates, carried out in double:
//
//   repeat:  mu = v^T A v,   solve (A - mu I) w = v,   v = w / ||w||
//
// Rayleigh-quotient iteration converges cubically for symmetric matrices,
// so 1-2 steps take a TC-accuracy pair to ~fp64 accuracy. Cost is one LU
// per refined pair — worthwhile when a few pairs are needed accurately
// (e.g. the low-rank/PCA applications the paper motivates).
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd {
class Context;
}  // namespace tcevd

namespace tcevd::evd {

struct RefineOptions {
  int max_iters = 6;
  double tol = 0.0;  ///< residual target; <= 0 picks ~10 eps ||A||
};

struct RefineResult {
  std::vector<double> eigenvalues;  ///< refined values (same order as input)
  Matrix<double> vectors;           ///< refined vectors, n x nev
  std::vector<double> residuals;    ///< final ||A v - lambda v||_2 per pair
  int total_iterations = 0;
};

/// Refine selected approximate eigenpairs of symmetric `a`. `lambda0` and
/// the columns of `v0` are the starting pairs (any precision — they come
/// from the fp32/TC pipeline); computation is in double throughout.
RefineResult refine_eigenpairs(ConstMatrixView<double> a, const std::vector<double>& lambda0,
                               ConstMatrixView<double> v0, const RefineOptions& opt = {});

/// Convenience overload taking the float pipeline's output directly.
RefineResult refine_eigenpairs(ConstMatrixView<float> a, const std::vector<float>& lambda0,
                               ConstMatrixView<float> v0, const RefineOptions& opt = {});

/// Context-aware entry points: identical double-precision refinement (the
/// auxiliary LU/GEMV work stays on the heap — it is fp64 and off the TC hot
/// path), but elapsed time lands on the context's telemetry under stage
/// "evd.refine".
RefineResult refine_eigenpairs(Context& ctx, ConstMatrixView<double> a,
                               const std::vector<double>& lambda0, ConstMatrixView<double> v0,
                               const RefineOptions& opt = {});
RefineResult refine_eigenpairs(Context& ctx, ConstMatrixView<float> a,
                               const std::vector<float>& lambda0, ConstMatrixView<float> v0,
                               const RefineOptions& opt = {});

}  // namespace tcevd::evd
