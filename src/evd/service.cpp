#include "src/evd/service.hpp"

#include <algorithm>
#include <bit>
#include <exception>
#include <string>
#include <utility>

#include "src/common/timer.hpp"
#include "src/evd/partial.hpp"

namespace tcevd::evd {

namespace {

/// Contexts are interchangeable within a size-class, so round the per-request
/// workspace bound up to a power of two (floor: the arena's own minimum block)
/// — a 1000 x 1000 and a 1024 x 1024 request share warm arenas instead of
/// each founding a class of their own.
std::size_t workspace_size_class(std::size_t bytes) noexcept {
  return std::bit_ceil(std::max(bytes, Workspace::kMinBlockBytes));
}

/// Static telemetry keys: one stage step records under these every few
/// microseconds in a hot stream, so the lookups must not allocate.
constexpr const char* kQueueKey = "service.queue";

const char* stage_key(SolveJob::Stage stage) noexcept {
  switch (stage) {
    case SolveJob::Stage::Reduction: return "service.stage.reduction";
    case SolveJob::Stage::Bulge: return "service.stage.bulge";
    case SolveJob::Stage::Solver: return "service.stage.solver";
    case SolveJob::Stage::Finish: return "service.stage.finish";
    case SolveJob::Stage::Done: break;
  }
  return "service.stage.done";  // unreachable: done jobs are never stepped
}

constexpr const char* kPartialKey = "service.stage.partial";

double elapsed_s(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

EvdService::EvdService(tc::GemmEngine& engine, const ServiceOptions& opt)
    : engine_(&engine), opt_(opt) {
  threads_ = opt_.num_threads > 0 ? opt_.num_threads : ThreadPool::hardware_threads();
  opt_.max_in_flight = std::max(opt_.max_in_flight, 1);
  max_started_ = opt_.max_started > 0 ? opt_.max_started : 2 * threads_;
  max_idle_per_class_ =
      opt_.max_idle_contexts_per_class > 0 ? opt_.max_idle_contexts_per_class : threads_;
  pool_ = std::make_unique<ThreadPool>(threads_);
  // One runner task per worker; they occupy the pool for the service's whole
  // life, idling on sched_cv_ between requests.
  for (int r = 0; r < threads_; ++r) pool_->submit([this, r] { runner_loop(r); });
}

EvdService::~EvdService() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return in_flight_ == 0; });
    stopping_ = true;
  }
  sched_cv_.notify_all();
  admit_cv_.notify_all();
  pool_.reset();  // joins the runners
}

StatusOr<RequestId> EvdService::submit(ConstMatrixView<float> a,
                                       const RequestOptions& ropt) {
  const index_t n = a.rows();
  // Request data, not programmer contracts: a streaming client feeding
  // heterogeneous problems must be able to have one bad request refused
  // without taking the process down.
  if (a.cols() != n)
    return invalid_argument_error("EvdService::submit: matrix is " + std::to_string(n) +
                                  " x " + std::to_string(a.cols()) +
                                  ", not square symmetric");
  if (ropt.selected && !(0 <= ropt.il && ropt.il <= ropt.iu && ropt.iu < n))
    return invalid_argument_error(
        "EvdService::submit: selected index range [il, iu] = [" + std::to_string(ropt.il) +
        ", " + std::to_string(ropt.iu) + "] invalid for n = " + std::to_string(n));
  const std::size_t size_class = workspace_size_class(workspace_query(n, ropt.evd));

  std::unique_lock<std::mutex> lock(mutex_);
  if (in_flight_ >= opt_.max_in_flight) {
    if (opt_.overflow == OverflowPolicy::Reject) {
      ++rejected_;
      return resource_exhausted_error(
          "EvdService::submit: " + std::to_string(in_flight_) +
          " requests already in flight (max_in_flight = " +
          std::to_string(opt_.max_in_flight) + ") and the overflow policy is Reject");
    }
    admit_cv_.wait(lock, [&] { return in_flight_ < opt_.max_in_flight; });
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Request& req = slots_[slot];
  req.in_use = true;
  req.a.emplace(a);
  req.opt = ropt;
  req.seq = next_seq_++;
  req.submit_tp = Clock::now();
  req.has_deadline = ropt.deadline_s > 0.0;
  if (req.has_deadline)
    req.deadline_tp =
        req.submit_tp + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(ropt.deadline_s));
  req.size_class = size_class;
  req.started = false;
  req.completed = false;
  req.result = RequestResult{};
  ++in_flight_;
  ++submitted_;
  ready_.push_back(slot);
  sched_cv_.notify_one();
  return (static_cast<RequestId>(req.gen) << 32) | slot;
}

int EvdService::pick_ready_locked(Clock::time_point now) const noexcept {
  int best = -1;
  bool best_expired = false;
  for (int i = 0; i < static_cast<int>(ready_.size()); ++i) {
    const Request& r = slots_[ready_[i]];
    const bool expired = r.has_deadline && now >= r.deadline_tp;
    // The start cap gates fresh requests only; started ones must keep moving
    // (they hold arenas) and expired ones only need a cheap finalize.
    if (!r.started && !expired && started_ >= max_started_) continue;
    if (best < 0) {
      best = i;
      best_expired = expired;
      continue;
    }
    const Request& b = slots_[ready_[best]];
    if (expired != best_expired) {
      if (expired) {
        best = i;
        best_expired = true;
      }
      continue;
    }
    const bool better =
        r.opt.priority != b.opt.priority ? r.opt.priority > b.opt.priority
        : r.has_deadline != b.has_deadline
            ? r.has_deadline  // a deadline outranks none at equal priority
        : (r.has_deadline && r.deadline_tp != b.deadline_tp)
            ? r.deadline_tp < b.deadline_tp
            : r.seq < b.seq;
    if (better) best = i;
  }
  return best;
}

void EvdService::runner_loop(int runner) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    int ri = -1;
    sched_cv_.wait(lock, [&] {
      if (stopping_) return true;
      ri = pick_ready_locked(Clock::now());
      return ri >= 0;
    });
    if (ri < 0) {
      if (stopping_) return;  // drained: the destructor waits for in_flight == 0
      continue;
    }
    const std::uint32_t slot = ready_[static_cast<std::size_t>(ri)];
    ready_[static_cast<std::size_t>(ri)] = ready_.back();
    ready_.pop_back();
    Request& req = slots_[slot];

    const Clock::time_point now = Clock::now();
    if (req.has_deadline && now >= req.deadline_tp) {
      req.result.status = deadline_exceeded_error(
          "EvdService: request deadline (" + std::to_string(req.opt.deadline_s) +
          " s) expired " +
          (req.started ? "between pipeline stages" : "before the solve started"));
      ++expired_;
      finalize_locked(req, runner);
      continue;
    }
    if (!req.started) {
      req.started = true;
      ++started_;
      req.start_tp = now;
      const double wait_s = elapsed_s(req.submit_tp, now);
      telemetry_.record_stage(kQueueKey, wait_s);
      telemetry_.record_latency(kQueueKey, wait_s);
      req.ctx = acquire_context_locked(req.size_class);
    }

    // Run exactly one stage with the lock dropped; the slot is out of ready_,
    // so this runner owns the request until it is requeued or finalized.
    lock.unlock();
    const char* key = kPartialKey;
    Timer step_timer;
    bool done = false;
    try {
      if (req.opt.selected) {
        StatusOr<PartialResult> r = solve_selected(*req.a, *req.ctx, req.opt.evd,
                                                   req.opt.il, req.opt.iu, req.opt.evd.vectors);
        if (r.ok()) {
          req.result.status = ok_status();
          req.result.eigenvalues = std::move(r->eigenvalues);
          req.result.vectors = std::move(r->vectors);
          req.result.recovery = std::move(r->recovery);
        } else {
          req.result.status = r.status();
        }
        done = true;
      } else {
        if (req.job == nullptr)
          req.job = std::make_unique<SolveJob>(*req.a, *req.ctx, req.opt.evd);
        key = stage_key(req.job->stage());
        req.job->step();
        if (req.job->done()) {
          // A failed job's dropped_events() are intentionally discarded: the
          // synchronous path re-notes them into the caller's recovery scope,
          // but a service request has no caller scope — matching what
          // solve_many has always reported for failed problems.
          StatusOr<EvdResult> r = req.job->take();
          if (r.ok()) {
            req.result.status = ok_status();
            req.result.eigenvalues = std::move(r->eigenvalues);
            req.result.vectors = std::move(r->vectors);
            req.result.recovery = std::move(r->recovery);
            req.result.verify = std::move(r->verify);
          } else {
            req.result.status = r.status();
          }
          done = true;
        }
      }
    } catch (const std::exception& e) {
      // A throw out of a pool task would take the process down; isolate it to
      // this request like any other failure. The job's destructor unwinds any
      // live workspace scopes on the context.
      req.result.status = Status(ErrorCode::Internal,
                                 std::string("EvdService: uncaught exception: ") + e.what());
      req.job.reset();
      done = true;
    } catch (...) {
      req.result.status =
          Status(ErrorCode::Internal, "EvdService: uncaught non-std exception");
      req.job.reset();
      done = true;
    }
    const double step_s = step_timer.seconds();
    lock.lock();
    telemetry_.record_stage(key, step_s);
    telemetry_.record_latency(key, step_s);
    if (done) {
      finalize_locked(req, runner);
    } else {
      ready_.push_back(slot);
      sched_cv_.notify_one();  // another runner may want this stage
    }
  }
}

void EvdService::finalize_locked(Request& req, int runner) {
  if (req.started) {
    --started_;
    req.result.worker = runner;
    req.result.seconds = elapsed_s(req.start_tp, Clock::now());
  }
  req.job.reset();  // release the workspace scope before the context is pooled
  if (req.ctx != nullptr) release_context_locked(req.size_class, std::move(req.ctx));
  req.completed = true;
  ++completed_;
  req.result.completion_seq = static_cast<std::uint64_t>(completed_);
  --in_flight_;
  done_cv_.notify_all();
  admit_cv_.notify_one();
  sched_cv_.notify_all();  // a start-cap slot freed; fresh requests may begin
}

std::unique_ptr<Context> EvdService::acquire_context_locked(std::size_t size_class) {
  auto it = idle_contexts_.find(size_class);
  if (it != idle_contexts_.end() && !it->second.empty()) {
    std::unique_ptr<Context> ctx = std::move(it->second.back());
    it->second.pop_back();
    return ctx;
  }
  auto ctx = std::make_unique<Context>(*engine_);
  ctx->workspace().reserve(size_class);
  return ctx;
}

void EvdService::release_context_locked(std::size_t size_class,
                                        std::unique_ptr<Context> ctx) {
  std::vector<std::unique_ptr<Context>>& idle = idle_contexts_[size_class];
  if (static_cast<int>(idle.size()) < max_idle_per_class_) {
    idle.push_back(std::move(ctx));
    return;
  }
  // Over the retention limit: the arena goes, but the per-problem telemetry
  // it accumulated must survive into the aggregate — snapshots (and
  // solve_many's merged BatchResult::telemetry) count every problem.
  if (ctx->has_lookahead_sibling()) ctx->absorb_sibling_telemetry();
  telemetry_.merge_from(ctx->telemetry());
}

RequestResult EvdService::wait(RequestId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  std::unique_lock<std::mutex> lock(mutex_);
  if (slot >= slots_.size() || !slots_[slot].in_use || slots_[slot].gen != gen) {
    RequestResult out;
    out.status =
        invalid_argument_error("EvdService::wait: unknown or already-claimed request id");
    return out;
  }
  Request& req = slots_[slot];
  done_cv_.wait(lock, [&] { return req.completed; });
  RequestResult out = std::move(req.result);
  req.result = RequestResult{};
  req.a.reset();
  req.in_use = false;
  req.completed = false;
  ++req.gen;  // a stale id for this slot can never match again
  free_slots_.push_back(slot);
  return out;
}

void EvdService::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

Telemetry EvdService::telemetry_snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  Telemetry out;
  out.merge_from(telemetry_);
  for (auto& [size_class, idle] : idle_contexts_) {
    (void)size_class;
    for (std::unique_ptr<Context>& ctx : idle) {
      if (ctx->has_lookahead_sibling()) ctx->absorb_sibling_telemetry();
      out.merge_from(ctx->telemetry());
    }
  }
  return out;
}

ServiceStats EvdService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.deadline_expired = expired_;
  s.num_threads = threads_;
  for (const auto& [size_class, idle] : idle_contexts_) {
    (void)size_class;
    s.pooled_contexts += idle.size();
  }
  return s;
}

}  // namespace tcevd::evd
