// Streaming EVD service: a long-lived, stage-pipelined driver for mixed
// workloads.
//
// Where solve_many takes one same-shape batch and returns when the last
// problem finishes, EvdService accepts an open-ended stream of requests —
// mixed sizes, mixed options, full or selected spectra — and keeps a fixed
// worker pool saturated by interleaving the pipeline stages of many solves:
// each request is a SolveJob (src/evd/solve_job.hpp) that advances one stage
// (reduction -> bulge -> solver -> verify) per scheduling turn, so a worker
// never idles behind one problem's long stage while other requests have
// runnable work. Because a job executes the identical step sequence as
// sequential evd::solve on a private Context, per-request results are
// bitwise-identical to evd::solve — the service changes scheduling, never
// numerics.
//
// Admission control: at most ServiceOptions::max_in_flight requests may be
// submitted-but-not-completed; past that, submit() blocks (Block) or returns
// ResourceExhausted (Reject). Per-request deadlines and priorities are
// honored at stage boundaries — the scheduler always picks the runnable
// request with the highest priority (ties: earliest deadline, then FIFO),
// and a request whose deadline expires before its next stage begins fails
// with DeadlineExceeded instead of occupying a worker. max_started caps how
// many requests are mid-pipeline at once, bounding the live workspace
// footprint independently of the queue depth.
//
// Contexts are pooled by workspace size-class (workspace_query rounded up to
// a power of two): a request checks a warm Context out of its class, runs
// every stage on it, and returns it, so the steady state of a homogeneous
// stream performs zero arena growth per request — the same contract
// solve_many's per-worker contexts gave one batch, extended across batch
// boundaries. solve_many itself is now a thin synchronous wrapper over this
// service (src/evd/batch.cpp).
//
// Telemetry: per-problem evd.* stages land on the solving Context exactly as
// in a sequential solve; the service additionally records, under its own
// aggregate sink, "service.queue" (admission-to-first-stage wait) and
// "service.stage.<reduction|bulge|solver|finish|partial>" (per-step wall
// time), each both as a StageStat (throughput) and a LatencyStat (histogram
// quantiles). telemetry_snapshot() merges the service sink with every idle
// pooled Context; call it quiescent (after wait_all) for complete numbers.
//
// Thread-safety: submit/wait/wait_all/stats/telemetry_snapshot may be called
// from any thread, concurrently. The submitted matrix view is borrowed and
// must stay alive and unmodified until the request's wait() returns.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/context.hpp"
#include "src/common/matrix.hpp"
#include "src/common/recovery.hpp"
#include "src/common/status.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/solve_job.hpp"

namespace tcevd::evd {

/// What submit() does when max_in_flight requests are already in flight.
enum class OverflowPolicy {
  Block,   ///< block the submitting thread until a slot frees
  Reject,  ///< return ResourceExhausted immediately
};

struct ServiceOptions {
  /// Worker count; 0 picks ThreadPool::hardware_threads().
  int num_threads = 0;
  /// Admission bound: submitted-but-not-completed requests (results awaiting
  /// wait() have already released their slot). Values < 1 clamp to 1.
  int max_in_flight = 256;
  OverflowPolicy overflow = OverflowPolicy::Block;
  /// Cap on requests that are mid-pipeline (first stage begun, not yet
  /// finished) at once — this bounds live workspace arenas, not queue depth.
  /// 0 picks 2 * num_threads: enough spare started work to cover stage-length
  /// imbalance without ballooning resident memory.
  int max_started = 0;
  /// Idle Contexts retained per workspace size-class; an over-limit release
  /// folds the context's telemetry into the service aggregate and frees its
  /// arena. 0 picks num_threads.
  int max_idle_contexts_per_class = 0;
};

/// Per-request configuration: the solve itself plus scheduling attributes.
struct RequestOptions {
  EvdOptions evd;
  /// Partial-spectrum mode: eigenvalue indices [il, iu] (0-based, inclusive)
  /// via evd::solve_selected; evd.vectors then requests the selected vectors.
  bool selected = false;
  index_t il = 0;
  index_t iu = 0;
  /// Higher runs first at every scheduling decision (default 0).
  int priority = 0;
  /// Seconds from submit() after which the request fails with
  /// DeadlineExceeded instead of starting its next stage; 0 = no deadline.
  /// Checked at stage boundaries only — a stage in execution is never
  /// interrupted. Ties among equal priorities schedule earliest-deadline
  /// first.
  double deadline_s = 0.0;
};

/// Opaque request handle returned by submit() and claimed by wait().
using RequestId = std::uint64_t;

/// Outcome of one streamed request; mirrors solve_many's ProblemResult.
struct RequestResult {
  Status status;                   ///< Ok => the value fields below are valid
  std::vector<float> eigenvalues;  ///< ascending (iu-il+1 values when selected)
  Matrix<float> vectors;           ///< empty unless evd.vectors
  RecoveryLog recovery;            ///< per-request degradation events
  verify::Report verify;           ///< full solves with evd.verify != Off only
  int worker = -1;                 ///< runner that completed the final stage
  double seconds = 0.0;            ///< first stage start -> completion
  /// 1-based service-wide completion ordinal: request k was the
  /// completion_seq-th to finish. This is the observable the scheduling
  /// tests pin priority/deadline ordering against.
  std::uint64_t completion_seq = 0;
};

struct ServiceStats {
  long submitted = 0;
  long completed = 0;          ///< includes failed and deadline-expired
  long rejected = 0;           ///< Reject-policy admission refusals
  long deadline_expired = 0;   ///< completed with DeadlineExceeded
  int num_threads = 0;
  std::size_t pooled_contexts = 0;  ///< idle Contexts across all size-classes
};

class EvdService {
 public:
  /// `engine` is borrowed, shared by every pooled Context, and must outlive
  /// the service.
  explicit EvdService(tc::GemmEngine& engine, const ServiceOptions& opt = {});
  /// Drains: blocks until every in-flight request completes (unclaimed
  /// results are discarded), then joins the workers.
  ~EvdService();
  EvdService(const EvdService&) = delete;
  EvdService& operator=(const EvdService&) = delete;

  int num_threads() const noexcept { return threads_; }

  /// Enqueue one request. Fails with InvalidArgument (non-square input, bad
  /// selected range) or ResourceExhausted (Reject policy, queue full)
  /// without consuming a slot. `a` is borrowed until wait() returns.
  StatusOr<RequestId> submit(ConstMatrixView<float> a, const RequestOptions& opt = {});

  /// Block until request `id` completes and claim its result (each id may be
  /// waited exactly once; an unknown or already-claimed id returns
  /// InvalidArgument in RequestResult::status).
  RequestResult wait(RequestId id);

  /// Block until no request is in flight (unclaimed results keep waiting for
  /// their wait() calls; they do not hold the service open).
  void wait_all();

  /// Service aggregate (queue/stage throughput + latency histograms) merged
  /// with every idle pooled Context's per-problem telemetry. Contexts bound
  /// to requests still in flight are not included — quiesce first for
  /// complete numbers.
  Telemetry telemetry_snapshot();

  ServiceStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::uint32_t gen = 1;  ///< bumped on slot recycle; stale ids never match
    bool in_use = false;
    // Request payload (set by submit).
    std::optional<ConstMatrixView<float>> a;
    RequestOptions opt;
    std::uint64_t seq = 0;  ///< FIFO tiebreaker
    Clock::time_point submit_tp;
    Clock::time_point deadline_tp;
    bool has_deadline = false;
    std::size_t size_class = 0;
    // Execution state (owned by the runner that popped the slot off ready_).
    std::unique_ptr<SolveJob> job;
    std::unique_ptr<Context> ctx;
    bool started = false;
    Clock::time_point start_tp;
    // Completion.
    bool completed = false;
    RequestResult result;
  };

  void runner_loop(int runner);
  /// Index into ready_ of the best runnable request (highest priority,
  /// earliest deadline, lowest seq; expired requests first — their finalize
  /// is cheap and frees a slot), or -1. Fresh requests are runnable only
  /// under the start cap; expired ones always are.
  int pick_ready_locked(Clock::time_point now) const noexcept;
  std::unique_ptr<Context> acquire_context_locked(std::size_t size_class);
  void release_context_locked(std::size_t size_class, std::unique_ptr<Context> ctx);
  /// Mark `req` complete: stop its clock, recycle its context, wake waiters.
  void finalize_locked(Request& req, int runner);

  tc::GemmEngine* engine_;
  ServiceOptions opt_;
  int threads_ = 0;
  int max_started_ = 0;
  int max_idle_per_class_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable sched_cv_;  ///< ready_/started_/stopping_ changed
  std::condition_variable admit_cv_;  ///< in_flight_ dropped below the bound
  std::condition_variable done_cv_;   ///< a request completed
  std::deque<Request> slots_;         ///< stable addresses; recycled via free_slots_
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> ready_;  ///< slots awaiting their next stage
  long in_flight_ = 0;
  int started_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::map<std::size_t, std::vector<std::unique_ptr<Context>>> idle_contexts_;
  Telemetry telemetry_;  ///< service.queue / service.stage.* + retired contexts
  long submitted_ = 0;
  long completed_ = 0;
  long rejected_ = 0;
  long expired_ = 0;

  std::unique_ptr<ThreadPool> pool_;  ///< last member: runners touch the above
};

}  // namespace tcevd::evd
