// Resumable EVD solve: the full pipeline of evd::solve broken at stage
// boundaries so a scheduler can interleave many solves.
//
// A SolveJob owns one problem's in-flight state (workspace scope, partial
// factorizations, verification attempt bookkeeping) and advances one pipeline
// stage per step() call: reduction (SBR / sytrd) -> bulge chasing ->
// tridiagonal solver -> verification. The synchronous evd::solve is a loop of
// step() calls on the caller's thread; the streaming EvdService runs the same
// steps on pool workers, picking which job advances next at every boundary.
// Because both drivers execute the identical step sequence on one Context,
// the service's results are bitwise-identical to sequential evd::solve by
// construction.
//
// Threading: a job is not thread-safe, but it has no thread affinity —
// successive steps may run on different threads as long as calls are
// serialized (each step opens and closes its own recovery::Scope, so the
// thread-local recovery chain never spans a suspension point).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "src/blas/abft.hpp"
#include "src/common/context.hpp"
#include "src/common/matrix.hpp"
#include "src/common/recovery.hpp"
#include "src/common/status.hpp"
#include "src/common/timer.hpp"
#include "src/common/workspace.hpp"
#include "src/evd/evd.hpp"
#include "src/sbr/sbr.hpp"

namespace tcevd::evd {

class SolveJob {
 public:
  enum class Stage { Reduction, Bulge, Solver, Finish, Done };

  /// `a` and `ctx` are borrowed and must outlive the job; the context must
  /// not be used by anything else until the job is done (it holds a live
  /// workspace scope — and, while escalated, an engine override — between
  /// steps).
  SolveJob(ConstMatrixView<float> a, Context& ctx, const EvdOptions& opt);
  ~SolveJob();
  SolveJob(const SolveJob&) = delete;
  SolveJob& operator=(const SolveJob&) = delete;

  Stage stage() const noexcept { return stage_; }
  bool done() const noexcept { return stage_ == Stage::Done; }
  /// Stable stage label ("reduction", "bulge", "solver", "finish") for
  /// telemetry keys and progress displays.
  static const char* stage_name(Stage stage) noexcept;

  /// Advance exactly one pipeline stage. No-op once done(). May throw only
  /// what the underlying kernels throw (std::bad_alloc); schedulers catch.
  void step();

  /// Valid once done(): move the final result (or failure Status) out.
  StatusOr<EvdResult> take();

  /// Recovery events a failed solve would have propagated to the caller's
  /// enclosing recovery::Scope on the synchronous path (where the scope chain
  /// spans the whole solve). Empty on success. The sync wrapper re-notes
  /// them; the service intentionally drops them, matching what solve_many
  /// has always reported for failed problems.
  const RecoveryLog& dropped_events() const noexcept { return dropped_events_; }

 private:
  void step_reduction();
  void step_bulge();
  void step_solver();
  void step_finish();
  void fail_attempt(const Status& status);
  void escalate_engine(std::unique_ptr<tc::GemmEngine> next);
  void complete_success();
  void release_attempt_state();

  ConstMatrixView<float> a_;
  Context& ctx_;
  EvdOptions opt_;
  std::optional<blas::abft::AbftScope> abft_;  // spans every attempt, like solve()

  // Verification attempt loop (mirrors the old solve_verified locals).
  bool verified_ = false;
  int max_attempts_ = 1;
  int attempts_ = 0;
  int escalations_ = 0;
  // `escalated_` is declared before `engine_scope_` so the override scope
  // (which borrows the engine) is destroyed first.
  std::unique_ptr<tc::GemmEngine> escalated_;
  std::optional<EngineOverrideScope> engine_scope_;
  RecoveryLog accumulated_;  ///< successful attempts' recovery, attempt order
  RecoveryLog pending_;      ///< breach/escalation notes not yet claimed
  RecoveryLog attempt_log_;  ///< the in-flight attempt's events so far

  // Per-attempt pipeline state.
  std::optional<Workspace::Scope> attempt_scope_;
  Timer attempt_timer_;
  EvdResult result_;
  std::vector<float> d_, e_;
  Matrix<float> q_;
  std::optional<sbr::SbrResult> sres_;

  Stage stage_ = Stage::Reduction;
  std::optional<Status> error_;
  std::optional<EvdResult> final_;
  RecoveryLog dropped_events_;
};

}  // namespace tcevd::evd
