#include "src/lapack/bidiag.hpp"

#include <cmath>
#include <limits>

#include "src/lapack/householder.hpp"

namespace tcevd::lapack {

template <typename T>
void gebrd(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tauq,
           std::vector<T>& taup) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  TCEVD_CHECK(m >= n, "gebrd requires m >= n");
  d.assign(static_cast<std::size_t>(n), T{});
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  tauq.assign(static_cast<std::size_t>(n), T{});
  taup.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  std::vector<T> work(static_cast<std::size_t>(std::max(m, n)));

  for (index_t j = 0; j < n; ++j) {
    // Left reflector: annihilate a(j+1:m, j).
    T alpha = a(j, j);
    T* x = (j + 1 < m) ? &a(j + 1, j) : nullptr;
    tauq[static_cast<std::size_t>(j)] = larfg(m - j, alpha, x, 1);
    d[static_cast<std::size_t>(j)] = alpha;
    if (j + 1 < n) {
      const T saved = a(j, j);
      a(j, j) = T{1};
      larf_left(&a(j, j), 1, tauq[static_cast<std::size_t>(j)],
                a.sub(j, j + 1, m - j, n - j - 1), work.data());
      a(j, j) = saved;
    }

    if (j + 1 < n) {
      // Right reflector: annihilate a(j, j+2:n).
      T beta = a(j, j + 1);
      T* xr = (j + 2 < n) ? &a(j, j + 2) : nullptr;
      taup[static_cast<std::size_t>(j)] = larfg(n - j - 1, beta, xr, a.ld());
      e[static_cast<std::size_t>(j)] = beta;
      if (j + 1 < m) {
        const T saved = a(j, j + 1);
        a(j, j + 1) = T{1};
        larf_right(&a(j, j + 1), a.ld(), taup[static_cast<std::size_t>(j)],
                   a.sub(j + 1, j + 1, m - j - 1, n - j - 1), work.data());
        a(j, j + 1) = saved;
      }
    }
  }
}

template <typename T>
void orgbr_q(ConstMatrixView<T> a, const std::vector<T>& tauq, MatrixView<T> q) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  TCEVD_CHECK(q.rows() == m && q.cols() == n, "orgbr_q shape mismatch");
  set_identity(q);
  std::vector<T> work(static_cast<std::size_t>(n));
  std::vector<T> v(static_cast<std::size_t>(m));
  for (index_t j = n - 1; j >= 0; --j) {
    v[0] = T{1};
    for (index_t i = j + 1; i < m; ++i) v[static_cast<std::size_t>(i - j)] = a(i, j);
    larf_left(v.data(), 1, tauq[static_cast<std::size_t>(j)], q.sub(j, 0, m - j, n),
              work.data());
  }
}

template <typename T>
void orgbr_p(ConstMatrixView<T> a, const std::vector<T>& taup, MatrixView<T> p) {
  const index_t n = a.cols();
  TCEVD_CHECK(p.rows() == n && p.cols() == n, "orgbr_p shape mismatch");
  set_identity(p);
  if (n < 2) return;
  std::vector<T> work(static_cast<std::size_t>(n));
  std::vector<T> v(static_cast<std::size_t>(n));
  // Right reflectors act on rows j+1..n of P (P = H_0 ... H_{n-3} applied to I
  // on the right-rotation space); apply last-to-first from the left on P^T —
  // equivalently from the left on P since the reflectors are symmetric.
  for (index_t j = static_cast<index_t>(taup.size()) - 1; j >= 0; --j) {
    const index_t len = n - j - 1;
    v[0] = T{1};
    for (index_t i = 1; i < len; ++i) v[static_cast<std::size_t>(i)] = a(j, j + 1 + i);
    larf_left(v.data(), 1, taup[static_cast<std::size_t>(j)], p.sub(j + 1, 0, len, n),
              work.data());
  }
}

template <typename T>
bool bdsqr(std::vector<T>& d, std::vector<T>& e_in, MatrixView<T>* u, MatrixView<T>* v) {
  // Implicit-shift QR on the upper bidiagonal (Golub-Kahan sweep with the
  // Demmel-Kahan style splitting/cancellation), classic svdcmp structure.
  const index_t n = static_cast<index_t>(d.size());
  if (n == 0) return true;
  std::vector<T> e(static_cast<std::size_t>(n), T{});
  for (index_t i = 0; i + 1 < n; ++i)
    e[static_cast<std::size_t>(i + 1)] = e_in[static_cast<std::size_t>(i)];  // e[0] unused

  if (u) TCEVD_CHECK(u->cols() == n, "bdsqr U must have n columns");
  if (v) TCEVD_CHECK(v->rows() == n || v->cols() == n, "bdsqr V shape mismatch");

  auto rotate_cols = [](MatrixView<T>* mat, index_t i1, index_t i2, T c, T s) {
    if (!mat) return;
    for (index_t r = 0; r < mat->rows(); ++r) {
      const T x = (*mat)(r, i1);
      const T y = (*mat)(r, i2);
      (*mat)(r, i1) = x * c + y * s;
      (*mat)(r, i2) = y * c - x * s;
    }
  };

  T anorm{};
  for (index_t i = 0; i < n; ++i)
    anorm = std::max(anorm, std::abs(d[static_cast<std::size_t>(i)]) +
                                std::abs(e[static_cast<std::size_t>(i)]));
  const T eps = std::numeric_limits<T>::epsilon();
  bool ok = true;

  for (index_t k = n - 1; k >= 0; --k) {
    for (int its = 0;; ++its) {
      if (its > 60) {
        ok = false;
        break;
      }
      bool flag = true;
      index_t l = k;
      index_t nm = 0;
      for (; l >= 1; --l) {
        nm = l - 1;
        if (std::abs(e[static_cast<std::size_t>(l)]) <= eps * anorm) {
          flag = false;
          break;
        }
        if (std::abs(d[static_cast<std::size_t>(nm)]) <= eps * anorm) break;
      }
      if (l == 0) flag = false;
      if (flag) {
        // d[nm] ~ 0: cancel e[l..k] with left rotations.
        T c{};
        T s{1};
        for (index_t i = l; i <= k; ++i) {
          const T f = s * e[static_cast<std::size_t>(i)];
          e[static_cast<std::size_t>(i)] *= c;
          if (std::abs(f) <= eps * anorm) break;
          const T g = d[static_cast<std::size_t>(i)];
          const T h = std::hypot(f, g);
          d[static_cast<std::size_t>(i)] = h;
          c = g / h;
          s = -f / h;
          rotate_cols(u, nm, i, c, s);
        }
      }
      const T z = d[static_cast<std::size_t>(k)];
      if (l == k) {
        if (z < T{}) {
          d[static_cast<std::size_t>(k)] = -z;
          if (v)
            for (index_t r = 0; r < v->rows(); ++r) (*v)(r, k) = -(*v)(r, k);
        }
        break;
      }
      // Shift from the trailing 2x2 of B^T B.
      T x = d[static_cast<std::size_t>(l)];
      nm = k - 1;
      T y = d[static_cast<std::size_t>(nm)];
      T g = e[static_cast<std::size_t>(nm)];
      T h = e[static_cast<std::size_t>(k)];
      T f = ((y - z) * (y + z) + (g - h) * (g + h)) / (T{2} * h * y);
      g = std::hypot(f, T{1});
      f = ((x - z) * (x + z) + h * (y / (f + std::copysign(g, f)) - h)) / x;
      T c{1};
      T s{1};
      for (index_t j = l; j <= nm; ++j) {
        const index_t i = j + 1;
        g = e[static_cast<std::size_t>(i)];
        y = d[static_cast<std::size_t>(i)];
        h = s * g;
        g = c * g;
        T zz = std::hypot(f, h);
        e[static_cast<std::size_t>(j)] = zz;
        c = f / zz;
        s = h / zz;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        rotate_cols(v, j, i, c, s);
        zz = std::hypot(f, h);
        d[static_cast<std::size_t>(j)] = zz;
        if (zz != T{}) {
          const T inv = T{1} / zz;
          c = f * inv;
          s = h * inv;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        rotate_cols(u, j, i, c, s);
      }
      e[static_cast<std::size_t>(l)] = T{};
      e[static_cast<std::size_t>(k)] = f;
      d[static_cast<std::size_t>(k)] = x;
    }
    if (!ok) break;
  }

  // Sort descending with matching column permutations.
  for (index_t i = 0; i < n; ++i) {
    index_t imax = i;
    for (index_t j = i + 1; j < n; ++j)
      if (d[static_cast<std::size_t>(j)] > d[static_cast<std::size_t>(imax)]) imax = j;
    if (imax != i) {
      std::swap(d[static_cast<std::size_t>(i)], d[static_cast<std::size_t>(imax)]);
      if (u)
        for (index_t r = 0; r < u->rows(); ++r) std::swap((*u)(r, i), (*u)(r, imax));
      if (v)
        for (index_t r = 0; r < v->rows(); ++r) std::swap((*v)(r, i), (*v)(r, imax));
    }
  }
  e_in.assign(e_in.size(), T{});
  return ok;
}

#define TCEVD_BIDIAG_INST(T)                                                          \
  template void gebrd<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,             \
                         std::vector<T>&, std::vector<T>&);                           \
  template void orgbr_q<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  template void orgbr_p<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  template bool bdsqr<T>(std::vector<T>&, std::vector<T>&, MatrixView<T>*,            \
                         MatrixView<T>*);

TCEVD_BIDIAG_INST(float)
TCEVD_BIDIAG_INST(double)
#undef TCEVD_BIDIAG_INST

}  // namespace tcevd::lapack
