// Bidiagonalization SVD substrate: gebrd (Householder reduction of a tall
// matrix to upper bidiagonal form) and bdsqr (implicit-shift QR iteration on
// the bidiagonal, Golub-Kahan/Demmel-Kahan lineage).
//
// Together with the drivers in src/svd this forms the classic high-accuracy
// SVD pipeline — the dense counterpart of the symmetric two-stage EVD this
// repository reproduces, and the backbone of the SVD applications the paper
// motivates (PCA, low-rank approximation).
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

/// Reduce a (m x n, m >= n) to upper bidiagonal form B = Q^T A P.
/// On exit: d (n) diagonal, e (n-1) superdiagonal; the Householder vectors
/// of the left reflectors live below the diagonal of `a` (scalars in tauq),
/// the right reflectors above the superdiagonal (scalars in taup).
template <typename T>
void gebrd(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tauq,
           std::vector<T>& taup);

/// Form the explicit factors from gebrd output: Q (m x n, left reflectors)
/// and P (n x n, right reflectors) with B = Q^T A P.
template <typename T>
void orgbr_q(ConstMatrixView<T> a, const std::vector<T>& tauq, MatrixView<T> q);
template <typename T>
void orgbr_p(ConstMatrixView<T> a, const std::vector<T>& taup, MatrixView<T> p);

/// SVD of an upper bidiagonal matrix: d/e in, singular values out in d
/// (descending, nonnegative). If u/vt given (m x n and n x n column-rotation
/// accumulators; pass Q and P from gebrd, or identities), they are updated
/// so that A = U diag(d) V^T. Returns false if an off-diagonal failed to
/// deflate within the iteration cap.
template <typename T>
bool bdsqr(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* u, MatrixView<T>* v);

#define TCEVD_BIDIAG_EXTERN(T)                                                               \
  extern template void gebrd<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,             \
                                std::vector<T>&, std::vector<T>&);                           \
  extern template void orgbr_q<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  extern template void orgbr_p<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  extern template bool bdsqr<T>(std::vector<T>&, std::vector<T>&, MatrixView<T>*,            \
                                MatrixView<T>*);

TCEVD_BIDIAG_EXTERN(float)
TCEVD_BIDIAG_EXTERN(double)
#undef TCEVD_BIDIAG_EXTERN

}  // namespace tcevd::lapack
