#include "src/lapack/getrf.hpp"

#include <cmath>

#include "src/blas/blas.hpp"

namespace tcevd::lapack {

template <typename T>
Status getrf(MatrixView<T> a, std::vector<index_t>& piv) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  piv.assign(static_cast<std::size_t>(k), index_t{0});
  index_t first_zero = -1;

  for (index_t j = 0; j < k; ++j) {
    // Pivot: largest |entry| in column j at or below the diagonal.
    index_t p = j + blas::iamax(m - j, &a(j, j), 1);
    piv[static_cast<std::size_t>(j)] = p;
    if (p != j)
      for (index_t c = 0; c < n; ++c) std::swap(a(j, c), a(p, c));

    const T pivot = a(j, j);
    if (pivot == T{}) {
      if (first_zero < 0) first_zero = j;
      continue;  // singular column: skip elimination, like LAPACK
    }
    const T inv = T{1} / pivot;
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    for (index_t c = j + 1; c < n; ++c) {
      const T ujc = a(j, c);
      if (ujc == T{}) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, c) -= a(i, j) * ujc;
    }
  }
  if (first_zero >= 0)
    return singular_panel_error("getrf: exactly zero pivot", first_zero);
  return ok_status();
}

template <typename T>
void getrs(blas::Trans trans, ConstMatrixView<T> lu, const std::vector<index_t>& piv,
           MatrixView<T> b) {
  const index_t n = lu.rows();
  TCEVD_CHECK(lu.cols() == n && b.rows() == n, "getrs shape mismatch");
  using blas::Diag;
  using blas::Side;
  using blas::Trans;
  using blas::Uplo;

  if (trans == Trans::No) {
    // Apply P, then solve L y = Pb, then U x = y.
    for (index_t j = 0; j < static_cast<index_t>(piv.size()); ++j) {
      const index_t p = piv[static_cast<std::size_t>(j)];
      if (p != j)
        for (index_t c = 0; c < b.cols(); ++c) std::swap(b(j, c), b(p, c));
    }
    blas::trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, T{1}, lu, b);
    blas::trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, T{1}, lu, b);
  } else {
    // A^T x = b: solve U^T y = b, L^T z = y, then x = P^T z.
    blas::trsm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, T{1}, lu, b);
    blas::trsm(Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit, T{1}, lu, b);
    for (index_t j = static_cast<index_t>(piv.size()) - 1; j >= 0; --j) {
      const index_t p = piv[static_cast<std::size_t>(j)];
      if (p != j)
        for (index_t c = 0; c < b.cols(); ++c) std::swap(b(j, c), b(p, c));
    }
  }
}

#define TCEVD_GETRF_INST(T)                                              \
  template Status getrf<T>(MatrixView<T>, std::vector<index_t>&);        \
  template void getrs<T>(blas::Trans, ConstMatrixView<T>,                \
                         const std::vector<index_t>&, MatrixView<T>);

TCEVD_GETRF_INST(float)
TCEVD_GETRF_INST(double)
#undef TCEVD_GETRF_INST

}  // namespace tcevd::lapack
