// LU factorization with partial pivoting and the associated solver.
//
// Used by the mixed-precision eigenpair refinement (evd/refine.hpp): each
// inverse-iteration step solves a shifted system (A - lambda I) x = v, which
// is indefinite and needs pivoting (unlike the reconstruct_wy LU, which is
// provably safe unpivoted).
#pragma once

#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd::lapack {

/// In-place PA = LU with partial (row) pivoting. `piv[k]` records the row
/// swapped with row k at step k (LAPACK ipiv convention, 0-based). An
/// exactly-zero pivot reports SingularPanel with the first such column in
/// detail(); the factorization is still usable for callers that can tolerate
/// singularity (like LAPACK's info > 0 convention).
template <typename T>
Status getrf(MatrixView<T> a, std::vector<index_t>& piv);

/// Solve op(A) X = B in place using the getrf output.
template <typename T>
void getrs(blas::Trans trans, ConstMatrixView<T> lu, const std::vector<index_t>& piv,
           MatrixView<T> b);

#define TCEVD_GETRF_EXTERN(T)                                                      \
  extern template Status getrf<T>(MatrixView<T>, std::vector<index_t>&);            \
  extern template void getrs<T>(blas::Trans, ConstMatrixView<T>,                   \
                                const std::vector<index_t>&, MatrixView<T>);

TCEVD_GETRF_EXTERN(float)
TCEVD_GETRF_EXTERN(double)
#undef TCEVD_GETRF_EXTERN

}  // namespace tcevd::lapack
