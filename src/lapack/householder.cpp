#include "src/lapack/householder.hpp"

#include <cmath>
#include <limits>

namespace tcevd::lapack {

template <typename T>
T larfg(index_t n, T& alpha, T* x, index_t incx) {
  if (n <= 1) return T{};
  T xnorm = blas::nrm2(n - 1, x, incx);
  if (xnorm == T{}) return T{};  // already in the axis direction

  // beta = -sign(alpha) * ||[alpha; x]||, computed overflow-safely.
  T beta = -std::copysign(std::hypot(alpha, xnorm), alpha);

  // Rescale if beta is dangerously small (LAPACK's safmin loop).
  const T safmin = std::numeric_limits<T>::min() / std::numeric_limits<T>::epsilon();
  int rescalings = 0;
  T scale{1};
  while (std::abs(beta) < safmin && rescalings < 20) {
    const T inv = T{1} / safmin;
    blas::scal(n - 1, inv, x, incx);
    beta *= inv;
    alpha *= inv;
    scale *= safmin;
    xnorm = blas::nrm2(n - 1, x, incx);
    beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
    ++rescalings;
  }

  const T tau = (beta - alpha) / beta;
  blas::scal(n - 1, T{1} / (alpha - beta), x, incx);
  alpha = beta * scale;
  return tau;
}

template <typename T>
void larf_left(const T* v, index_t incv, T tau, MatrixView<T> c, T* work) {
  if (tau == T{}) return;
  const index_t m = c.rows();
  const index_t n = c.cols();
  // work = C^T v  (v(0) == 1 implicit)
  for (index_t j = 0; j < n; ++j) {
    T s = c(0, j);
    for (index_t i = 1; i < m; ++i) s += c(i, j) * v[i * incv];
    work[j] = s;
  }
  // C -= tau * v * work^T
  for (index_t j = 0; j < n; ++j) {
    const T t = tau * work[j];
    if (t == T{}) continue;
    c(0, j) -= t;
    for (index_t i = 1; i < m; ++i) c(i, j) -= t * v[i * incv];
  }
}

template <typename T>
void larf_right(const T* v, index_t incv, T tau, MatrixView<T> c, T* work) {
  if (tau == T{}) return;
  const index_t m = c.rows();
  const index_t n = c.cols();
  // work = C v
  for (index_t i = 0; i < m; ++i) work[i] = c(i, 0);
  for (index_t j = 1; j < n; ++j) {
    const T vj = v[j * incv];
    if (vj == T{}) continue;
    for (index_t i = 0; i < m; ++i) work[i] += c(i, j) * vj;
  }
  // C -= tau * work * v^T
  for (index_t i = 0; i < m; ++i) c(i, 0) -= tau * work[i];
  for (index_t j = 1; j < n; ++j) {
    const T t = tau * v[j * incv];
    if (t == T{}) continue;
    for (index_t i = 0; i < m; ++i) c(i, j) -= t * work[i];
  }
}

#define TCEVD_HH_INST(T)                                              \
  template T larfg<T>(index_t, T&, T*, index_t);                      \
  template void larf_left<T>(const T*, index_t, T, MatrixView<T>, T*); \
  template void larf_right<T>(const T*, index_t, T, MatrixView<T>, T*);

TCEVD_HH_INST(float)
TCEVD_HH_INST(double)
#undef TCEVD_HH_INST

}  // namespace tcevd::lapack
