// Elementary Householder reflector kernels (LAPACK larfg/larf analogues).
//
// Conventions match LAPACK: H = I - tau * v * v^T with v(0) = 1 implicit,
// H * [alpha; x] = [beta; 0], and H orthogonal & symmetric.
#pragma once

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"

namespace tcevd::lapack {

/// Generate a reflector annihilating x below alpha.
/// On entry: alpha = leading scalar, x = n-1 trailing entries (stride incx).
/// On exit:  alpha = beta (the new leading value), x = v(1:) (v(0) = 1), and
/// the return value is tau. tau == 0 means H == I (x was already zero).
template <typename T>
T larfg(index_t n, T& alpha, T* x, index_t incx);

/// Apply H = I - tau v v^T from the left: C = H * C.
/// v has length C.rows() with v(0) treated as 1 (LAPACK storage).
/// `work` must hold at least C.cols() elements.
template <typename T>
void larf_left(const T* v, index_t incv, T tau, MatrixView<T> c, T* work);

/// Apply H from the right: C = C * H. `work` >= C.rows() elements.
template <typename T>
void larf_right(const T* v, index_t incv, T tau, MatrixView<T> c, T* work);

#define TCEVD_HH_EXTERN(T)                                                \
  extern template T larfg<T>(index_t, T&, T*, index_t);                   \
  extern template void larf_left<T>(const T*, index_t, T, MatrixView<T>, T*);  \
  extern template void larf_right<T>(const T*, index_t, T, MatrixView<T>, T*);

TCEVD_HH_EXTERN(float)
TCEVD_HH_EXTERN(double)
#undef TCEVD_HH_EXTERN

}  // namespace tcevd::lapack
