#include "src/lapack/jacobi_evd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace tcevd::lapack {

template <typename T>
JacobiEvdResult<T> jacobi_evd(ConstMatrixView<T> a, const JacobiEvdOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "jacobi_evd requires a square symmetric matrix");

  JacobiEvdResult<T> out;
  Matrix<T> w(n, n);
  copy_matrix(a, w.view());
  if (opt.vectors) {
    out.vectors = Matrix<T>(n, n);
    set_identity(out.vectors.view());
  }

  const T eps = std::numeric_limits<T>::epsilon();
  // Off-diagonal Frobenius mass; convergence when it is negligible vs diag.
  auto off_norm = [&] {
    T s{};
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j + 1; i < n; ++i) s += w(i, j) * w(i, j);
    return std::sqrt(s);
  };
  T dscale{};
  for (index_t i = 0; i < n; ++i) dscale = std::max(dscale, std::abs(w(i, i)));
  dscale = std::max(dscale, off_norm());

  for (out.sweeps = 0; out.sweeps < opt.max_sweeps; ++out.sweeps) {
    if (off_norm() <= eps * static_cast<T>(n) * std::max(dscale, T{1})) {
      out.converged = true;
      break;
    }
    for (index_t p = 0; p + 1 < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const T apq = w(p, q);
        if (std::abs(apq) <=
            eps * std::sqrt(std::abs(w(p, p) * w(q, q))) + std::numeric_limits<T>::min())
          continue;
        // Classic stable rotation (Golub & Van Loan sym.schur2).
        const T theta = (w(q, q) - w(p, p)) / (T{2} * apq);
        const T t = std::copysign(T{1}, theta) /
                    (std::abs(theta) + std::sqrt(T{1} + theta * theta));
        const T c = T{1} / std::sqrt(T{1} + t * t);
        const T s = c * t;

        // Two-sided update restricted to rows/cols p, q.
        for (index_t k = 0; k < n; ++k) {
          const T wkp = w(k, p);
          const T wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (index_t k = 0; k < n; ++k) {
          const T wpk = w(p, k);
          const T wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        if (opt.vectors) {
          for (index_t k = 0; k < n; ++k) {
            const T vkp = out.vectors(k, p);
            const T vkq = out.vectors(k, q);
            out.vectors(k, p) = c * vkp - s * vkq;
            out.vectors(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  if (!out.converged)
    out.converged = off_norm() <= std::sqrt(eps) * std::max(dscale, T{1});

  // Gather and sort ascending.
  out.eigenvalues.resize(static_cast<std::size_t>(n));
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  for (index_t i = 0; i < n; ++i) out.eigenvalues[static_cast<std::size_t>(i)] = w(i, i);
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return out.eigenvalues[static_cast<std::size_t>(x)] <
           out.eigenvalues[static_cast<std::size_t>(y)];
  });
  std::vector<T> sorted(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    sorted[static_cast<std::size_t>(i)] =
        out.eigenvalues[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  out.eigenvalues = std::move(sorted);
  if (opt.vectors) {
    Matrix<T> vs(n, n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i)
        vs(i, j) = out.vectors(i, order[static_cast<std::size_t>(j)]);
    out.vectors = std::move(vs);
  }
  return out;
}

template JacobiEvdResult<float> jacobi_evd<float>(ConstMatrixView<float>,
                                                  const JacobiEvdOptions&);
template JacobiEvdResult<double> jacobi_evd<double>(ConstMatrixView<double>,
                                                    const JacobiEvdOptions&);

}  // namespace tcevd::lapack
