// Cyclic Jacobi eigenvalue algorithm for symmetric matrices.
//
// Slow (O(n^3) per sweep, several sweeps) but the most accurate dense
// symmetric eigensolver available: eigenvalues to high relative accuracy and
// eigenvectors orthogonal to working precision. Used as an independent
// cross-check of the reduction-based pipelines (it shares no code path with
// tridiagonalization) and as a practical solver for small blocks.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

struct JacobiEvdOptions {
  int max_sweeps = 30;
  bool vectors = true;
};

template <typename T>
struct JacobiEvdResult {
  std::vector<T> eigenvalues;  ///< ascending
  Matrix<T> vectors;           ///< n x n (empty unless requested)
  int sweeps = 0;
  bool converged = false;
};

/// Eigendecomposition of symmetric `a` (not modified).
template <typename T>
JacobiEvdResult<T> jacobi_evd(ConstMatrixView<T> a, const JacobiEvdOptions& opt = {});

extern template JacobiEvdResult<float> jacobi_evd<float>(ConstMatrixView<float>,
                                                         const JacobiEvdOptions&);
extern template JacobiEvdResult<double> jacobi_evd<double>(ConstMatrixView<double>,
                                                           const JacobiEvdOptions&);

}  // namespace tcevd::lapack
