#include "src/lapack/lu.hpp"

#include <cmath>
#include <limits>

namespace tcevd::lapack {

template <typename T>
index_t lu_nopiv(MatrixView<T> a) {
  const index_t n = std::min(a.rows(), a.cols());
  const T tiny = std::numeric_limits<T>::min();
  for (index_t j = 0; j < n; ++j) {
    const T pivot = a(j, j);
    if (std::abs(pivot) <= tiny) return j;
    const T inv = T{1} / pivot;
    for (index_t i = j + 1; i < a.rows(); ++i) a(i, j) *= inv;
    for (index_t c = j + 1; c < a.cols(); ++c) {
      const T ujc = a(j, c);
      if (ujc == T{}) continue;
      for (index_t i = j + 1; i < a.rows(); ++i) a(i, c) -= a(i, j) * ujc;
    }
  }
  return -1;
}

template index_t lu_nopiv<float>(MatrixView<float>);
template index_t lu_nopiv<double>(MatrixView<double>);

}  // namespace tcevd::lapack
