// Non-pivoted LU factorization.
//
// Used by the Householder-reconstruction step (paper Algorithm 3): Ballard
// et al. prove that for A = S - Q (Q orthonormal from Householder QR, S the
// sign matrix) the non-pivoted LU exists and is unique, so partial pivoting
// is unnecessary there. A general-purpose routine nonetheless reports
// breakdowns via its return value.
#pragma once

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

/// In-place A = L * U with unit lower-triangular L (strict lower part of the
/// output) and upper-triangular U. Returns the 0-based index of the first
/// (near-)zero pivot, or -1 on success.
template <typename T>
index_t lu_nopiv(MatrixView<T> a);

extern template index_t lu_nopiv<float>(MatrixView<float>);
extern template index_t lu_nopiv<double>(MatrixView<double>);

}  // namespace tcevd::lapack
