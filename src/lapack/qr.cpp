#include "src/lapack/qr.hpp"

#include "src/blas/blas.hpp"
#include "src/lapack/householder.hpp"

namespace tcevd::lapack {

template <typename T>
void geqr2(MatrixView<T> a, std::vector<T>& tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(std::max<index_t>(k, 0)), T{});
  std::vector<T> work(static_cast<std::size_t>(n));

  for (index_t j = 0; j < k; ++j) {
    T& alpha = a(j, j);
    T* x = (j + 1 < m) ? &a(j + 1, j) : nullptr;
    tau[static_cast<std::size_t>(j)] = larfg(m - j, alpha, x, 1);
    if (j + 1 < n) {
      // Apply H to the trailing columns; v lives in a(j:, j) with v(0)=1.
      const T saved = a(j, j);
      a(j, j) = T{1};
      larf_left(&a(j, j), 1, tau[static_cast<std::size_t>(j)],
                a.sub(j, j + 1, m - j, n - j - 1), work.data());
      a(j, j) = saved;
    }
  }
}

template <typename T>
void larft(ConstMatrixView<T> v, const T* tau, MatrixView<T> t) {
  const index_t m = v.rows();
  const index_t k = v.cols();
  TCEVD_CHECK(t.rows() == k && t.cols() == k, "larft T must be k x k");
  set_zero(t);
  for (index_t i = 0; i < k; ++i) {
    const T ti = tau[i];
    t(i, i) = ti;
    if (i == 0 || ti == T{}) continue;
    // t(0:i, i) = -tau_i * T(0:i,0:i) * (V(:,0:i)^T v_i), exploiting the unit
    // lower trapezoidal structure of V (v_i is zero above row i, one at i).
    for (index_t j = 0; j < i; ++j) {
      // dot of column j of V with v_i over rows i..m-1 (+ V(i,j) * 1)
      T s = v(i, j);
      for (index_t r = i + 1; r < m; ++r) s += v(r, j) * v(r, i);
      t(j, i) = -ti * s;
    }
    // t(0:i, i) = T(0:i,0:i) * t(0:i, i)  (triangular multiply)
    blas::trmv(blas::Uplo::Upper, blas::Trans::No, blas::Diag::NonUnit, t.sub(0, 0, i, i),
               &t(0, i), 1);
  }
}

template <typename T>
void geqrf(MatrixView<T> a, std::vector<T>& tau, index_t nb) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(std::max<index_t>(k, 0)), T{});
  if (k == 0) return;

  Matrix<T> t(nb, nb);
  std::vector<T> panel_tau;

  for (index_t j = 0; j < k; j += nb) {
    const index_t jb = std::min(nb, k - j);
    auto panel = a.sub(j, j, m - j, jb);
    geqr2(panel, panel_tau);
    std::copy(panel_tau.begin(), panel_tau.end(), tau.begin() + j);

    if (j + jb < n) {
      // Block-apply H^T = I - V T^T V^T to the trailing matrix.
      auto tb = t.sub(0, 0, jb, jb);
      larft<T>(panel, panel_tau.data(), tb);
      auto c = a.sub(j, j + jb, m - j, n - j - jb);

      // Save panel diagonal, set unit diagonal for the V references.
      std::vector<T> diag(static_cast<std::size_t>(jb));
      for (index_t i = 0; i < jb; ++i) {
        diag[static_cast<std::size_t>(i)] = panel(i, i);
        panel(i, i) = T{1};
      }
      // Zero strict upper part of V logically: build an explicit V copy.
      Matrix<T> v(m - j, jb);
      for (index_t col = 0; col < jb; ++col)
        for (index_t row = 0; row < m - j; ++row)
          v(row, col) = (row < col) ? T{} : panel(row, col);
      for (index_t i = 0; i < jb; ++i) panel(i, i) = diag[static_cast<std::size_t>(i)];

      // work = V^T C (jb x nc); work = T^T work; C -= V work.
      Matrix<T> work(jb, n - j - jb);
      blas::gemm<T>(blas::Trans::Yes, blas::Trans::No, T{1}, v.view(), c, T{}, work.view());
      blas::trmm(blas::Side::Left, blas::Uplo::Upper, blas::Trans::Yes, blas::Diag::NonUnit,
                 T{1}, tb, work.view());
      blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{-1}, v.view(), work.view(), T{1}, c);
    }
  }
}

template <typename T>
void orgqr(MatrixView<T> a, const std::vector<T>& tau, MatrixView<T> q) {
  const index_t m = a.rows();
  const index_t k = static_cast<index_t>(tau.size());
  const index_t n = q.cols();
  TCEVD_CHECK(q.rows() == m && n <= m, "orgqr output shape invalid");
  set_identity(q);
  std::vector<T> work(static_cast<std::size_t>(std::max(m, n)));
  // Q = H(0) H(1) ... H(k-1) * I: apply reflectors from the last to the first.
  for (index_t j = k - 1; j >= 0; --j) {
    std::vector<T> v(static_cast<std::size_t>(m - j));
    v[0] = T{1};
    for (index_t i = j + 1; i < m; ++i) v[static_cast<std::size_t>(i - j)] = a(i, j);
    larf_left(v.data(), 1, tau[static_cast<std::size_t>(j)], q.sub(j, 0, m - j, n),
              work.data());
  }
}

template <typename T>
void build_wy(ConstMatrixView<T> a, const std::vector<T>& tau, MatrixView<T> w,
              MatrixView<T> y) {
  const index_t m = a.rows();
  const index_t k = static_cast<index_t>(tau.size());
  TCEVD_CHECK(w.rows() == m && w.cols() == k && y.rows() == m && y.cols() == k,
              "build_wy output shape mismatch");
  // Y = unit lower trapezoidal part of a.
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i)
      y(i, j) = (i < j) ? T{} : (i == j ? T{1} : a(i, j));
  // W = Y * T.
  Matrix<T> t(k, k);
  larft<T>(ConstMatrixView<T>(y.data(), m, k, y.ld()), tau.data(), t.view());
  copy_matrix<T>(y, w);
  blas::trmm(blas::Side::Right, blas::Uplo::Upper, blas::Trans::No, blas::Diag::NonUnit, T{1},
             t.view(), w);
}

#define TCEVD_QR_INST(T)                                                       \
  template void geqr2<T>(MatrixView<T>, std::vector<T>&);                      \
  template void larft<T>(ConstMatrixView<T>, const T*, MatrixView<T>);         \
  template void geqrf<T>(MatrixView<T>, std::vector<T>&, index_t);             \
  template void orgqr<T>(MatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  template void build_wy<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>, \
                            MatrixView<T>);

TCEVD_QR_INST(float)
TCEVD_QR_INST(double)
#undef TCEVD_QR_INST

}  // namespace tcevd::lapack
