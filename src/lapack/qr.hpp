// QR factorization family: unblocked (geqr2), compact-WY T factor (larft),
// blocked (geqrf), explicit-Q formation (orgqr), and the W = V*T helper that
// turns the compact representation Q = I - V T V^T into the paper's
// Q = I - W Y^T form (Y := V, W := V T).
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

/// Unblocked Householder QR. On exit the upper triangle of `a` holds R and
/// the strict lower triangle holds the Householder vectors (unit diagonal
/// implicit); `tau` receives min(m,n) scalar factors.
template <typename T>
void geqr2(MatrixView<T> a, std::vector<T>& tau);

/// Form the k x k upper-triangular T of the forward compact-WY product
/// H(0) H(1) ... H(k-1) = I - V T V^T from the vectors in `v` (unit lower
/// trapezoidal, LAPACK storage) and `tau`.
template <typename T>
void larft(ConstMatrixView<T> v, const T* tau, MatrixView<T> t);

/// Blocked Householder QR with panel width `nb`. Same output layout as geqr2.
template <typename T>
void geqrf(MatrixView<T> a, std::vector<T>& tau, index_t nb = 32);

/// Generate the explicit m x n Q with orthonormal columns from the geqrf
/// output (first k reflectors).
template <typename T>
void orgqr(MatrixView<T> a, const std::vector<T>& tau, MatrixView<T> q);

/// Extract Y (unit lower trapezoidal copy of the reflectors in `a`) and
/// compute W = Y * T so that H(0)...H(k-1) = I - W Y^T.
template <typename T>
void build_wy(ConstMatrixView<T> a, const std::vector<T>& tau, MatrixView<T> w,
              MatrixView<T> y);

#define TCEVD_QR_EXTERN(T)                                                       \
  extern template void geqr2<T>(MatrixView<T>, std::vector<T>&);                 \
  extern template void larft<T>(ConstMatrixView<T>, const T*, MatrixView<T>);    \
  extern template void geqrf<T>(MatrixView<T>, std::vector<T>&, index_t);        \
  extern template void orgqr<T>(MatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  extern template void build_wy<T>(ConstMatrixView<T>, const std::vector<T>&,    \
                                   MatrixView<T>, MatrixView<T>);

TCEVD_QR_EXTERN(float)
TCEVD_QR_EXTERN(double)
#undef TCEVD_QR_EXTERN

}  // namespace tcevd::lapack
