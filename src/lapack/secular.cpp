#include "src/lapack/secular.hpp"

#include <cmath>
#include <limits>

namespace tcevd::lapack {

namespace {

/// f(lambda) - evaluated at lambda = d[anchor] + t - and its derivative,
/// in long double with anchored differences.
struct FEval {
  long double f;
  long double fprime;
};

FEval eval_secular(const std::vector<double>& d, const std::vector<double>& z_sq, double rho,
                   index_t anchor, long double t) {
  const index_t k = static_cast<index_t>(d.size());
  long double f = 1.0L;
  long double fp = 0.0L;
  const long double da = d[static_cast<std::size_t>(anchor)];
  for (index_t i = 0; i < k; ++i) {
    const long double delta =
        (static_cast<long double>(d[static_cast<std::size_t>(i)]) - da) - t;  // d_i - lambda
    const long double zi = z_sq[static_cast<std::size_t>(i)];
    f += rho * zi / delta;
    fp += rho * zi / (delta * delta);
  }
  return {f, fp};
}

}  // namespace

SecularRoot secular_solve(const std::vector<double>& d, const std::vector<double>& z_sq,
                          double rho, index_t j) {
  const index_t k = static_cast<index_t>(d.size());
  TCEVD_CHECK(k >= 1 && j >= 0 && j < k, "secular_solve index out of range");
  TCEVD_CHECK(rho > 0.0, "secular_solve requires rho > 0");

  long double sum_zsq = 0.0L;
  for (double z : z_sq) sum_zsq += z;

  // Bracket (in absolute lambda space, conceptually): (d_j, d_{j+1}) or
  // (d_{k-1}, d_{k-1} + rho * ||z||^2] for the last root.
  const long double dj = d[static_cast<std::size_t>(j)];
  const bool last = (j == k - 1);
  const long double dj1 =
      last ? dj + static_cast<long double>(rho) * sum_zsq : static_cast<long double>(d[static_cast<std::size_t>(j + 1)]);
  const long double width = dj1 - dj;
  TCEVD_CHECK(width > 0.0L, "secular_solve poles must be strictly ascending");

  // Pick the anchor by the sign of f at the midpoint: f increases across the
  // interval, so f(mid) > 0 means the root lies in the left half (anchor d_j).
  index_t anchor = j;
  if (!last) {
    const FEval mid = eval_secular(d, z_sq, rho, j, width / 2.0L);
    anchor = (mid.f > 0.0L) ? j : j + 1;
  }
  const long double da = d[static_cast<std::size_t>(anchor)];

  // Bracket in offset space t = lambda - d[anchor]. One bracket end sits on
  // the anchor pole itself (t = 0): roots may hug that pole arbitrarily
  // closely (z_i -> 0 gives lambda_i -> d_i), so the safeguard must converge
  // to full *relative* precision in t, not to an absolute floor. When Newton
  // leaves the bracket we bisect geometrically toward the pole end, which
  // reaches t ~ 1e-4000 in a few hundred halvings of the exponent.
  long double lo = dj - da;   // 0 when anchor == j, else -width
  long double hi = dj1 - da;  // +width when anchor == j, else 0
  if (lo > hi) std::swap(lo, hi);
  const bool pole_at_lo = (lo == 0.0L);  // anchor on the left end

  long double t = (lo + hi) / 2.0L;
  for (int iter = 0; iter < 400; ++iter) {
    const FEval ev = eval_secular(d, z_sq, rho, anchor, t);
    if (ev.f == 0.0L) break;
    if (ev.f > 0.0L)
      hi = t;  // f increasing in lambda: root is left of t
    else
      lo = t;
    long double tn = t - ev.f / ev.fprime;
    if (!(tn > lo && tn < hi)) {
      // Geometric bisection toward the pole keeps relative resolution when
      // the remaining bracket spans many orders of magnitude.
      if (pole_at_lo)
        tn = (lo > 0.0L) ? std::sqrt(lo * hi) : hi / 2.0L;
      else
        tn = (hi < 0.0L) ? -std::sqrt(lo * hi) : lo / 2.0L;
      if (!(tn > lo && tn < hi)) tn = (lo + hi) / 2.0L;
    }
    if (tn == t) break;
    t = tn;
  }

  return SecularRoot{anchor, t};
}

}  // namespace tcevd::lapack
