// Secular equation solver for the divide & conquer eigensolver.
//
// After the rank-one merge, eigenvalues of D + rho z z^T (D = diag(d),
// d strictly ascending, rho > 0, z fully non-deflated) are the k roots of
//
//   f(lambda) = 1 + rho * sum_i z_i^2 / (d_i - lambda) = 0,
//
// one in each open interval (d_j, d_{j+1}) plus one beyond d_{k-1}. To keep
// eigenvector formation accurate the root is returned as an *offset from the
// nearest pole* (anchor), never as an absolute value — the differences
// d_i - lambda_j are then computable without cancellation.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

struct SecularRoot {
  index_t anchor = 0;      ///< index of the pole the offset is relative to
  long double offset = 0;  ///< lambda = d[anchor] + offset
  double value() const noexcept { return 0.0; }  // unused; see lambda_of
};

/// Root j (0-based) of the secular equation. d must be strictly ascending,
/// z_sq the squared z entries, rho > 0. Returns anchor + offset with the
/// guarantee d[j] < lambda < d[j+1] (or the final interval for j == k-1).
SecularRoot secular_solve(const std::vector<double>& d, const std::vector<double>& z_sq,
                          double rho, index_t j);

/// lambda_j - d_i computed stably from the anchored representation.
inline long double gap_from_root(const std::vector<double>& d, const SecularRoot& r,
                                 index_t i) {
  return (static_cast<long double>(d[static_cast<std::size_t>(r.anchor)]) -
          static_cast<long double>(d[static_cast<std::size_t>(i)])) +
         r.offset;
}

}  // namespace tcevd::lapack
