#include <cmath>
#include <limits>

#include "src/lapack/tridiag.hpp"

namespace tcevd::lapack {

template <typename T>
index_t sturm_count(const std::vector<T>& d, const std::vector<T>& e, T x) {
  // Count of non-positive pivots of the LDL^T factorization of (T - x I);
  // equals the number of eigenvalues below x. LAPACK (dstebz) convention:
  // a pivot below pivmin counts as negative and is clamped to -pivmin so the
  // recurrence survives exact hits on a leading-minor eigenvalue.
  const index_t n = static_cast<index_t>(d.size());
  T emax2{1};
  for (T ei : e) emax2 = std::max(emax2, ei * ei);
  const T pivmin = std::numeric_limits<T>::min() * emax2;
  index_t count = 0;
  T q = d[0] - x;
  if (q <= pivmin) {
    ++count;
    q = std::min(q, -pivmin);
  }
  for (index_t i = 1; i < n; ++i) {
    q = d[static_cast<std::size_t>(i)] - x -
        e[static_cast<std::size_t>(i - 1)] * e[static_cast<std::size_t>(i - 1)] / q;
    if (q <= pivmin) {
      ++count;
      q = std::min(q, -pivmin);
    }
  }
  return count;
}

template <typename T>
std::vector<T> stebz(const std::vector<T>& d, const std::vector<T>& e, index_t il, index_t iu,
                     T tol) {
  const index_t n = static_cast<index_t>(d.size());
  TCEVD_CHECK(0 <= il && il <= iu && iu < n, "stebz index range invalid");

  // Gershgorin interval containing the whole spectrum.
  T lo = d[0];
  T hi = d[0];
  for (index_t i = 0; i < n; ++i) {
    T radius{};
    if (i > 0) radius += std::abs(e[static_cast<std::size_t>(i - 1)]);
    if (i + 1 < n) radius += std::abs(e[static_cast<std::size_t>(i)]);
    lo = std::min(lo, d[static_cast<std::size_t>(i)] - radius);
    hi = std::max(hi, d[static_cast<std::size_t>(i)] + radius);
  }
  const T span = std::max(hi - lo, std::numeric_limits<T>::min());
  if (tol <= T{}) tol = span * std::numeric_limits<T>::epsilon() * T{4};

  std::vector<T> eigs;
  eigs.reserve(static_cast<std::size_t>(iu - il + 1));
  for (index_t idx = il; idx <= iu; ++idx) {
    // Bisect for the eigenvalue with exactly `idx` eigenvalues below it.
    T a = lo;
    T b = hi;
    while (b - a > tol) {
      const T mid = a + (b - a) / T{2};
      if (mid <= a || mid >= b) break;  // hit representable resolution
      if (sturm_count(d, e, mid) <= idx)
        a = mid;
      else
        b = mid;
    }
    eigs.push_back(a + (b - a) / T{2});
  }
  return eigs;
}

#define TCEVD_STEBZ_INST(T)                                                          \
  template index_t sturm_count<T>(const std::vector<T>&, const std::vector<T>&, T);  \
  template std::vector<T> stebz<T>(const std::vector<T>&, const std::vector<T>&,     \
                                   index_t, index_t, T);

TCEVD_STEBZ_INST(float)
TCEVD_STEBZ_INST(double)
#undef TCEVD_STEBZ_INST

}  // namespace tcevd::lapack
