// Divide & conquer symmetric tridiagonal eigensolver (Cuppen's method with
// Gu-Eisenstat stable eigenvector formation).
//
// The tridiagonal T is torn in half by a rank-one modification:
//
//   T = [T1' 0; 0 T2'] + rho * u u^T,   rho = |e_{m-1}|,
//   u = e_m-th basis (1) and sign(e_{m-1}) * first basis of the second half,
//
// children are solved recursively, the modification is diagonalized in the
// children's eigenbasis (D + w w^T with w = Q^T u * sqrt(rho) folded into
// w^2 = rho z^2), small or duplicate components are deflated, the secular
// equation gives the non-deflated eigenvalues, and z is *recomputed* from
// the computed roots (Gu & Eisenstat) so eigenvectors of clustered
// eigenvalues stay numerically orthogonal.
#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/blas/blas.hpp"
#include "src/lapack/secular.hpp"
#include "src/lapack/tridiag.hpp"

namespace tcevd::lapack {

namespace {

constexpr index_t kDcBaseSize = 32;

/// Full D&C on (d, e), eigenvectors into v (n x n, overwritten).
Status dc_solve(std::vector<double>& d, std::vector<double>& e, MatrixView<double> v) {
  const index_t n = static_cast<index_t>(d.size());
  if (n <= kDcBaseSize) {
    set_identity(v);
    return steqr<double>(d, e, &v);
  }

  const index_t m = n / 2;
  const double b = e[static_cast<std::size_t>(m - 1)];
  const double rho = std::abs(b);
  const double sgn = (b >= 0.0) ? 1.0 : -1.0;

  // Children (with the rank-one tear subtracted from the touching diagonals).
  std::vector<double> d1(d.begin(), d.begin() + m);
  std::vector<double> e1(e.begin(), e.begin() + (m - 1));
  std::vector<double> d2(d.begin() + m, d.end());
  std::vector<double> e2(e.begin() + m, e.end());
  d1[static_cast<std::size_t>(m - 1)] -= rho;
  d2[0] -= rho;

  Matrix<double> v1(m, m);
  Matrix<double> v2(n - m, n - m);
  TCEVD_RETURN_IF_ERROR(dc_solve(d1, e1, v1.view()));
  TCEVD_RETURN_IF_ERROR(dc_solve(d2, e2, v2.view()));

  // Combined (unsorted) diagonal and z = Q^T u.
  std::vector<double> dd(static_cast<std::size_t>(n));
  std::vector<double> zz(static_cast<std::size_t>(n));
  for (index_t i = 0; i < m; ++i) {
    dd[static_cast<std::size_t>(i)] = d1[static_cast<std::size_t>(i)];
    zz[static_cast<std::size_t>(i)] = v1(m - 1, i);  // last row of V1
  }
  for (index_t i = 0; i < n - m; ++i) {
    dd[static_cast<std::size_t>(m + i)] = d2[static_cast<std::size_t>(i)];
    zz[static_cast<std::size_t>(m + i)] = sgn * v2(0, i);  // first row of V2
  }

  // Eigenbasis so far: blockdiag(V1, V2), columns permuted to ascending dd.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t a, index_t c) {
    return dd[static_cast<std::size_t>(a)] < dd[static_cast<std::size_t>(c)];
  });

  Matrix<double> qb(n, n);
  std::vector<double> ds(static_cast<std::size_t>(n));
  std::vector<double> zs(static_cast<std::size_t>(n));
  for (index_t jc = 0; jc < n; ++jc) {
    const index_t src = perm[static_cast<std::size_t>(jc)];
    ds[static_cast<std::size_t>(jc)] = dd[static_cast<std::size_t>(src)];
    zs[static_cast<std::size_t>(jc)] = zz[static_cast<std::size_t>(src)];
    if (src < m) {
      for (index_t r = 0; r < m; ++r) qb(r, jc) = v1(r, src);
    } else {
      for (index_t r = 0; r < n - m; ++r) qb(m + r, jc) = v2(r, src - m);
    }
  }

  // Degenerate tear: halves are exactly decoupled.
  if (rho == 0.0) {
    copy_matrix<double>(qb.view(), v);
    d = std::move(ds);
    e.assign(static_cast<std::size_t>(n - 1), 0.0);
    return ok_status();
  }

  // ---- Deflation ----------------------------------------------------------
  double dmax = 0.0;
  double zmax = 0.0;
  for (index_t i = 0; i < n; ++i) {
    dmax = std::max(dmax, std::abs(ds[static_cast<std::size_t>(i)]));
    zmax = std::max(zmax, std::abs(zs[static_cast<std::size_t>(i)]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  const double tol = 8.0 * eps * std::max({dmax, rho * zmax * zmax, rho});

  std::vector<index_t> kept;
  std::vector<index_t> deflated;
  kept.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    if (rho * std::abs(zs[static_cast<std::size_t>(i)]) <= tol) {
      deflated.push_back(i);  // type 1: negligible coupling
      continue;
    }
    if (!kept.empty()) {
      const index_t p = kept.back();
      if (ds[static_cast<std::size_t>(i)] - ds[static_cast<std::size_t>(p)] <= tol) {
        // Type 2: (near-)equal poles. Rotate weight of p into i, deflate p.
        const double z1 = zs[static_cast<std::size_t>(p)];
        const double z2 = zs[static_cast<std::size_t>(i)];
        const double r = std::hypot(z1, z2);
        const double c = z2 / r;
        const double s = z1 / r;
        zs[static_cast<std::size_t>(p)] = 0.0;
        zs[static_cast<std::size_t>(i)] = r;
        const double dp = ds[static_cast<std::size_t>(p)];
        const double di = ds[static_cast<std::size_t>(i)];
        ds[static_cast<std::size_t>(p)] = c * c * dp + s * s * di;
        ds[static_cast<std::size_t>(i)] = s * s * dp + c * c * di;
        for (index_t rr = 0; rr < n; ++rr) {
          const double qp = qb(rr, p);
          const double qi = qb(rr, i);
          qb(rr, p) = c * qp - s * qi;
          qb(rr, i) = s * qp + c * qi;
        }
        kept.pop_back();
        deflated.push_back(p);
      }
    }
    kept.push_back(i);
  }

  const index_t nk = static_cast<index_t>(kept.size());
  std::vector<double> lam(static_cast<std::size_t>(n));
  Matrix<double> vout(n, n);

  if (nk == 0) {
    // Everything deflated: eigenpairs are (ds, qb) as they stand.
    for (index_t i = 0; i < n; ++i) lam[static_cast<std::size_t>(i)] = ds[static_cast<std::size_t>(i)];
    copy_matrix<double>(qb.view(), vout.view());
  } else {
    // ---- Secular equation on the kept poles -------------------------------
    std::vector<double> dk(static_cast<std::size_t>(nk));
    std::vector<double> wsq(static_cast<std::size_t>(nk));
    for (index_t i = 0; i < nk; ++i) {
      dk[static_cast<std::size_t>(i)] = ds[static_cast<std::size_t>(kept[static_cast<std::size_t>(i)])];
      const double z = zs[static_cast<std::size_t>(kept[static_cast<std::size_t>(i)])];
      wsq[static_cast<std::size_t>(i)] = rho * z * z;
    }
    // Guard: the secular solver needs strictly ascending poles. Deflation
    // leaves gaps > 0; enforce against pathological ties.
    for (index_t i = 1; i < nk; ++i) {
      auto& cur = dk[static_cast<std::size_t>(i)];
      const double prev = dk[static_cast<std::size_t>(i - 1)];
      if (cur <= prev) cur = prev + std::max(tol, eps * std::max(1.0, std::abs(prev)));
    }

    std::vector<SecularRoot> roots(static_cast<std::size_t>(nk));
    for (index_t j = 0; j < nk; ++j) roots[static_cast<std::size_t>(j)] = secular_solve(dk, wsq, 1.0, j);

    // ---- Gu-Eisenstat: recompute w from the computed roots ----------------
    std::vector<long double> what(static_cast<std::size_t>(nk));
    for (index_t i = 0; i < nk; ++i) {
      long double p = gap_from_root(dk, roots[static_cast<std::size_t>(i)], i);  // lambda_i - d_i > 0
      for (index_t j = 0; j < nk; ++j) {
        if (j == i) continue;
        const long double num = gap_from_root(dk, roots[static_cast<std::size_t>(j)], i);
        const long double den = static_cast<long double>(dk[static_cast<std::size_t>(j)]) -
                                static_cast<long double>(dk[static_cast<std::size_t>(i)]);
        p *= num / den;
      }
      const double zi = zs[static_cast<std::size_t>(kept[static_cast<std::size_t>(i)])];
      what[static_cast<std::size_t>(i)] = std::copysign(std::sqrt(std::abs(p)), static_cast<long double>(zi));
    }

    // ---- Eigenvectors of D + w w^T ----------------------------------------
    Matrix<double> svec(nk, nk);
    for (index_t j = 0; j < nk; ++j) {
      long double norm2 = 0.0L;
      for (index_t i = 0; i < nk; ++i) {
        const long double gap = gap_from_root(dk, roots[static_cast<std::size_t>(j)], i);  // lambda_j - d_i
        const long double vi = what[static_cast<std::size_t>(i)] / (-gap);                 // w_i / (d_i - lambda_j)
        svec(i, j) = static_cast<double>(vi);
        norm2 += vi * vi;
      }
      const double inv = static_cast<double>(1.0L / std::sqrt(norm2));
      for (index_t i = 0; i < nk; ++i) svec(i, j) *= inv;
      lam[static_cast<std::size_t>(j)] =
          static_cast<double>(static_cast<long double>(dk[static_cast<std::size_t>(roots[static_cast<std::size_t>(j)].anchor)]) +
                              roots[static_cast<std::size_t>(j)].offset);
    }

    // Back-transform: vout(:, 0:nk) = Q_kept * svec; deflated columns copied.
    Matrix<double> qkept(n, nk);
    for (index_t j = 0; j < nk; ++j)
      for (index_t r = 0; r < n; ++r) qkept(r, j) = qb(r, kept[static_cast<std::size_t>(j)]);
    blas::gemm<double>(blas::Trans::No, blas::Trans::No, 1.0, qkept.view(), svec.view(), 0.0,
               vout.sub(0, 0, n, nk));
    for (index_t j = 0; j < static_cast<index_t>(deflated.size()); ++j) {
      const index_t src = deflated[static_cast<std::size_t>(j)];
      lam[static_cast<std::size_t>(nk + j)] = ds[static_cast<std::size_t>(src)];
      for (index_t r = 0; r < n; ++r) vout(r, nk + j) = qb(r, src);
    }
  }

  // ---- Final ascending sort ------------------------------------------------
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t c) {
    return lam[static_cast<std::size_t>(a)] < lam[static_cast<std::size_t>(c)];
  });
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    d[static_cast<std::size_t>(j)] = lam[static_cast<std::size_t>(src)];
    for (index_t r = 0; r < n; ++r) v(r, j) = vout(r, src);
  }
  e.assign(static_cast<std::size_t>(n - 1), 0.0);
  return ok_status();
}

}  // namespace

template <typename T>
Status stedc(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* z) {
  const index_t n = static_cast<index_t>(d.size());
  if (n == 0) return ok_status();
  if (z) TCEVD_CHECK(z->cols() == n, "stedc z must have n columns");

  std::vector<double> dd(d.begin(), d.end());
  std::vector<double> ee(e.begin(), e.end());
  Matrix<double> v(n, n);
  TCEVD_RETURN_IF_ERROR(dc_solve(dd, ee, v.view()));

  for (index_t i = 0; i < n; ++i) d[static_cast<std::size_t>(i)] = static_cast<T>(dd[static_cast<std::size_t>(i)]);
  std::fill(e.begin(), e.end(), T{});

  if (z) {
    // z := z * V in the caller's precision.
    Matrix<T> vt(n, n);
    convert_matrix<double, T>(v.view(), vt.view());
    Matrix<T> tmp(z->rows(), n);
    blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{1},
               ConstMatrixView<T>(z->data(), z->rows(), n, z->ld()), vt.view(), T{},
               tmp.view());
    copy_matrix<T>(tmp.view(), *z);
  }
  return ok_status();
}

template Status stedc<float>(std::vector<float>&, std::vector<float>&, MatrixView<float>*);
template Status stedc<double>(std::vector<double>&, std::vector<double>&, MatrixView<double>*);

}  // namespace tcevd::lapack
