#include "src/lapack/stein.hpp"

#include <cmath>
#include <limits>

#include "src/blas/blas.hpp"
#include "src/common/fault.hpp"
#include "src/common/rng.hpp"

namespace tcevd::lapack {

namespace {

/// Tridiagonal LU with partial pivoting (gttrf-style). dl/dd/du are the
/// sub/main/super diagonals of (T - lambda I); du2 receives the second
/// superdiagonal fill; ipiv the pivot flags.
template <typename T>
void tri_factor(std::vector<T>& dl, std::vector<T>& dd, std::vector<T>& du,
                std::vector<T>& du2, std::vector<char>& swapped) {
  const index_t n = static_cast<index_t>(dd.size());
  du2.assign(static_cast<std::size_t>(std::max<index_t>(n - 2, 0)), T{});
  swapped.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), 0);
  const T tiny = std::numeric_limits<T>::min() * T{4};

  for (index_t i = 0; i + 1 < n; ++i) {
    if (std::abs(dd[static_cast<std::size_t>(i)]) >= std::abs(dl[static_cast<std::size_t>(i)])) {
      // No swap.
      T piv = dd[static_cast<std::size_t>(i)];
      if (std::abs(piv) < tiny) piv = std::copysign(tiny, piv == T{} ? T{1} : piv);
      const T fact = dl[static_cast<std::size_t>(i)] / piv;
      dl[static_cast<std::size_t>(i)] = fact;  // store multiplier
      dd[static_cast<std::size_t>(i + 1)] -= fact * du[static_cast<std::size_t>(i)];
      if (i + 2 < n) du2[static_cast<std::size_t>(i)] = T{};
    } else {
      // Swap rows i and i+1.
      swapped[static_cast<std::size_t>(i)] = 1;
      std::swap(dd[static_cast<std::size_t>(i)], dl[static_cast<std::size_t>(i)]);
      const T tmp = du[static_cast<std::size_t>(i)];
      du[static_cast<std::size_t>(i)] = dd[static_cast<std::size_t>(i + 1)];
      dd[static_cast<std::size_t>(i + 1)] = tmp - (dl[static_cast<std::size_t>(i)] /
                                                   dd[static_cast<std::size_t>(i)]) *
                                                      dd[static_cast<std::size_t>(i + 1)];
      if (i + 2 < n) {
        du2[static_cast<std::size_t>(i)] = du[static_cast<std::size_t>(i + 1)];
        du[static_cast<std::size_t>(i + 1)] =
            -(dl[static_cast<std::size_t>(i)] / dd[static_cast<std::size_t>(i)]) *
            du[static_cast<std::size_t>(i + 1)];
      }
      dl[static_cast<std::size_t>(i)] /= dd[static_cast<std::size_t>(i)];
    }
  }
  if (n > 0 && std::abs(dd[static_cast<std::size_t>(n - 1)]) < tiny)
    dd[static_cast<std::size_t>(n - 1)] =
        std::copysign(tiny, dd[static_cast<std::size_t>(n - 1)] == T{}
                                ? T{1}
                                : dd[static_cast<std::size_t>(n - 1)]);
}

/// Solve with the tri_factor output, in place.
template <typename T>
void tri_solve(const std::vector<T>& dl, const std::vector<T>& dd, const std::vector<T>& du,
               const std::vector<T>& du2, const std::vector<char>& swapped, T* x) {
  const index_t n = static_cast<index_t>(dd.size());
  // Forward: apply L^{-1} (with the recorded swaps).
  for (index_t i = 0; i + 1 < n; ++i) {
    if (swapped[static_cast<std::size_t>(i)]) std::swap(x[i], x[i + 1]);
    x[i + 1] -= dl[static_cast<std::size_t>(i)] * x[i];
  }
  // Backward: U x = y with two superdiagonals.
  for (index_t i = n - 1; i >= 0; --i) {
    T s = x[i];
    if (i + 1 < n) s -= du[static_cast<std::size_t>(i)] * x[i + 1];
    if (i + 2 < n) s -= du2[static_cast<std::size_t>(i)] * x[i + 2];
    x[i] = s / dd[static_cast<std::size_t>(i)];
  }
}

}  // namespace

template <typename T>
Status stein(const std::vector<T>& d, const std::vector<T>& e,
             const std::vector<T>& eigenvalues, MatrixView<T> z) {
  const index_t n = static_cast<index_t>(d.size());
  const index_t nev = static_cast<index_t>(eigenvalues.size());
  TCEVD_CHECK(z.rows() == n && z.cols() == nev, "stein z shape mismatch");
  if (n == 0 || nev == 0) return ok_status();
  if (fault::should_fire(fault::Site::SteinStagnate))
    return fault_injected_error(fault::site_name(fault::Site::SteinStagnate));

  // Matrix scale for perturbation/cluster thresholds.
  T anorm{};
  for (index_t i = 0; i < n; ++i) {
    T row = std::abs(d[static_cast<std::size_t>(i)]);
    if (i > 0) row += std::abs(e[static_cast<std::size_t>(i - 1)]);
    if (i + 1 < n) row += std::abs(e[static_cast<std::size_t>(i)]);
    anorm = std::max(anorm, row);
  }
  const T eps = std::numeric_limits<T>::epsilon();
  // LAPACK stein's ORTOL: eigenvalues within 1e-3 * ||T|| of each other get
  // mutually reorthogonalized vectors (inverse iteration alone cannot
  // separate near-degenerate directions).
  const T cluster_gap = std::max(T{1e-3} * anorm, std::numeric_limits<T>::min());

  Rng rng(0x57e17ull + static_cast<std::uint64_t>(n));
  index_t first_failed = -1;
  index_t cluster_start = 0;

  for (index_t j = 0; j < nev; ++j) {
    T lambda = eigenvalues[static_cast<std::size_t>(j)];
    if (j > 0) {
      const T prev = eigenvalues[static_cast<std::size_t>(j - 1)];
      if (lambda - prev > cluster_gap) cluster_start = j;
      // Perturb exact duplicates so the shifted factorization differs.
      if (lambda <= prev) lambda = prev + eps * anorm;
    }

    // Factor (T - lambda I).
    std::vector<T> dl(e.begin(), e.end());
    std::vector<T> du(e.begin(), e.end());
    std::vector<T> dd(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      dd[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(i)] - lambda;
    std::vector<T> du2;
    std::vector<char> swapped;
    tri_factor(dl, dd, du, du2, swapped);

    // Random start, a few inverse-iteration sweeps. Convergence signal: the
    // pre-normalization growth ||solve(x)|| ~ 1/dist(lambda, spectrum),
    // which for a correctly computed eigenvalue is ~1/(n eps ||T||).
    std::vector<T> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = static_cast<T>(rng.normal());
    {
      const T n0 = blas::nrm2(n, x.data(), 1);
      blas::scal(n, T{1} / n0, x.data(), 1);
    }
    bool converged = false;
    const T growth_ok =
        T{0.01} / (static_cast<T>(n) * eps * std::max(anorm, std::numeric_limits<T>::min()));
    for (int iter = 0; iter < 8; ++iter) {
      tri_solve(dl, dd, du, du2, swapped, x.data());
      // Reorthogonalize against the current cluster.
      for (index_t c = cluster_start; c < j; ++c) {
        const T dot = blas::dot(n, &z(0, c), 1, x.data(), 1);
        blas::axpy(n, -dot, &z(0, c), 1, x.data(), 1);
      }
      const T norm = blas::nrm2(n, x.data(), 1);
      if (norm == T{}) {  // deflated away: restart from fresh randomness
        for (auto& v : x) v = static_cast<T>(rng.normal());
        continue;
      }
      blas::scal(n, T{1} / norm, x.data(), 1);
      if (norm >= growth_ok && iter >= 1) {
        converged = true;
        break;
      }
    }
    if (!converged && first_failed < 0) first_failed = j;
    for (index_t i = 0; i < n; ++i) z(i, j) = x[static_cast<std::size_t>(i)];
  }
  if (first_failed >= 0)
    return no_convergence_error("stein: inverse iteration failed to converge for a vector",
                                first_failed);
  return ok_status();
}

template Status stein<float>(const std::vector<float>&, const std::vector<float>&,
                             const std::vector<float>&, MatrixView<float>);
template Status stein<double>(const std::vector<double>&, const std::vector<double>&,
                              const std::vector<double>&, MatrixView<double>);

}  // namespace tcevd::lapack
