// Inverse iteration for selected eigenvectors of a symmetric tridiagonal
// matrix (LAPACK stein analogue).
//
// Given eigenvalues (e.g. from Sturm bisection), each eigenvector is found
// by a few iterations of (T - lambda I) x_{k+1} = x_k with a pivoted
// tridiagonal solve, starting from a deterministic pseudo-random vector.
// Vectors belonging to clustered eigenvalues are Gram-Schmidt
// reorthogonalized against their cluster, as in LAPACK.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd::lapack {

/// Compute eigenvectors for the given eigenvalues of tridiagonal (d, e).
/// `z` must be n x nev (nev = eigenvalues.size()); eigenvalues must be in
/// ascending order. NoConvergence (detail = first failed column) if any
/// vector fails to converge; the converged columns of z are still valid.
template <typename T>
Status stein(const std::vector<T>& d, const std::vector<T>& e,
             const std::vector<T>& eigenvalues, MatrixView<T> z);

extern template Status stein<float>(const std::vector<float>&, const std::vector<float>&,
                                    const std::vector<float>&, MatrixView<float>);
extern template Status stein<double>(const std::vector<double>&, const std::vector<double>&,
                                     const std::vector<double>&, MatrixView<double>);

}  // namespace tcevd::lapack
