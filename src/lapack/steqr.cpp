#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/fault.hpp"
#include "src/lapack/tridiag.hpp"

namespace tcevd::lapack {

namespace {

/// Sort eigenvalues ascending and permute the matching columns of z.
template <typename T>
void sort_eigensystem(std::vector<T>& d, MatrixView<T>* z) {
  const index_t n = static_cast<index_t>(d.size());
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return d[static_cast<std::size_t>(a)] < d[static_cast<std::size_t>(b)];
  });
  std::vector<T> ds(d.size());
  for (index_t i = 0; i < n; ++i) ds[static_cast<std::size_t>(i)] = d[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
  d = std::move(ds);
  if (z) {
    Matrix<T> tmp(z->rows(), n);
    for (index_t i = 0; i < n; ++i)
      for (index_t r = 0; r < z->rows(); ++r)
        tmp(r, i) = (*z)(r, perm[static_cast<std::size_t>(i)]);
    copy_matrix<T>(tmp.view(), z->sub(0, 0, z->rows(), n));
  }
}

/// Core implicit QL sweep (EISPACK tql2 lineage). When `z` is null the
/// rotation application is skipped (sterf mode).
template <typename T>
Status tql_implicit(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* z) {
  const index_t n = static_cast<index_t>(d.size());
  if (n == 0) return ok_status();
  TCEVD_CHECK(static_cast<index_t>(e.size()) >= n - 1, "e must have n-1 entries");
  if (z) TCEVD_CHECK(z->cols() == n, "z must have n columns");
  if (n == 1) return ok_status();
  if (fault::should_fire(fault::Site::SteqrExhaust))
    return fault_injected_error(fault::site_name(fault::Site::SteqrExhaust));

  e.resize(static_cast<std::size_t>(n), T{});  // sentinel e[n-1] = 0
  const T eps = std::numeric_limits<T>::epsilon();
  const index_t max_iter_per_eig = 50;

  for (index_t l = 0; l < n; ++l) {
    index_t iter = 0;
    index_t m;
    do {
      // Find the first negligible off-diagonal at or after l.
      for (m = l; m + 1 < n; ++m) {
        const T dd = std::abs(d[static_cast<std::size_t>(m)]) +
                     std::abs(d[static_cast<std::size_t>(m + 1)]);
        if (std::abs(e[static_cast<std::size_t>(m)]) <= eps * dd) break;
      }
      if (m == l) break;
      if (++iter > max_iter_per_eig)
        return no_convergence_error(
            "steqr: eigenvalue failed to converge within the iteration cap", l);

      // Wilkinson shift from the leading 2x2 at l.
      T g = (d[static_cast<std::size_t>(l + 1)] - d[static_cast<std::size_t>(l)]) /
            (T{2} * e[static_cast<std::size_t>(l)]);
      T r = std::hypot(g, T{1});
      g = d[static_cast<std::size_t>(m)] - d[static_cast<std::size_t>(l)] +
          e[static_cast<std::size_t>(l)] / (g + std::copysign(r, g));
      T s{1};
      T c{1};
      T p{};
      bool underflow = false;
      index_t i_stop = l;
      // Chase from m-1 down to l.
      for (index_t i = m - 1; i >= l; --i) {
        T f = s * e[static_cast<std::size_t>(i)];
        const T b = c * e[static_cast<std::size_t>(i)];
        r = std::hypot(f, g);
        e[static_cast<std::size_t>(i + 1)] = r;
        if (r == T{}) {
          // Underflow guard: recover by deflating and restarting the sweep.
          d[static_cast<std::size_t>(i + 1)] -= p;
          e[static_cast<std::size_t>(m)] = T{};
          underflow = true;
          i_stop = i;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[static_cast<std::size_t>(i + 1)] - p;
        r = (d[static_cast<std::size_t>(i)] - g) * s + T{2} * c * b;
        p = s * r;
        d[static_cast<std::size_t>(i + 1)] = g + p;
        g = c * r - b;
        if (z) {
          // Apply the rotation to columns i and i+1 of z.
          for (index_t k = 0; k < z->rows(); ++k) {
            const T zk1 = (*z)(k, i + 1);
            const T zk0 = (*z)(k, i);
            (*z)(k, i + 1) = s * zk0 + c * zk1;
            (*z)(k, i) = c * zk0 - s * zk1;
          }
        }
        if (i == l) break;  // index_t is signed, but avoid decrementing past l
      }
      if (underflow && i_stop >= l) continue;
      d[static_cast<std::size_t>(l)] -= p;
      e[static_cast<std::size_t>(l)] = g;
      e[static_cast<std::size_t>(m)] = T{};
    } while (m != l);
  }

  sort_eigensystem(d, z);
  e.resize(static_cast<std::size_t>(n - 1));
  return ok_status();
}

}  // namespace

template <typename T>
Status steqr(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* z) {
  return tql_implicit(d, e, z);
}

template <typename T>
Status sterf(std::vector<T>& d, std::vector<T>& e) {
  return tql_implicit<T>(d, e, nullptr);
}

template Status steqr<float>(std::vector<float>&, std::vector<float>&, MatrixView<float>*);
template Status steqr<double>(std::vector<double>&, std::vector<double>&, MatrixView<double>*);
template Status sterf<float>(std::vector<float>&, std::vector<float>&);
template Status sterf<double>(std::vector<double>&, std::vector<double>&);

}  // namespace tcevd::lapack
