#include "src/lapack/sytrd.hpp"

#include "src/blas/blas.hpp"
#include "src/lapack/householder.hpp"

namespace tcevd::lapack {

template <typename T>
void sytrd(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tau) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sytrd requires a square matrix");
  d.assign(static_cast<std::size_t>(n), T{});
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  tau.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  if (n == 0) return;

  std::vector<T> p(static_cast<std::size_t>(n));

  for (index_t j = 0; j + 2 <= n; ++j) {
    // Reflector annihilating A(j+2:n, j); v stored in a(j+1:, j), v(0)=1.
    const index_t m = n - j - 1;  // length of the column below the diagonal
    T alpha = a(j + 1, j);
    T* x = (m > 1) ? &a(j + 2, j) : nullptr;
    const T t = larfg(m, alpha, x, 1);
    tau[static_cast<std::size_t>(j)] = t;
    e[static_cast<std::size_t>(j)] = alpha;

    if (t != T{}) {
      // Two-sided rank-2 update of the trailing symmetric block A22 (lower):
      //   p = tau * A22 * v;  w = p - (tau/2)(p^T v) v;  A22 -= v w^T + w v^T
      a(j + 1, j) = T{1};
      const T* v = &a(j + 1, j);
      auto a22 = a.sub(j + 1, j + 1, m, m);
      blas::symv(blas::Uplo::Lower, t, a22, v, 1, T{}, p.data(), m > 0 ? 1 : 1);
      const T gamma = -(t / T{2}) * blas::dot(m, p.data(), 1, v, 1);
      blas::axpy(m, gamma, v, 1, p.data(), 1);
      blas::syr2(blas::Uplo::Lower, T{-1}, v, 1, p.data(), 1, a22);
      a(j + 1, j) = alpha;
    }
    d[static_cast<std::size_t>(j)] = a(j, j);
  }
  d[static_cast<std::size_t>(n - 1)] = a(n - 1, n - 1);
  if (n >= 2) {
    d[static_cast<std::size_t>(n - 2)] = a(n - 2, n - 2);
    e[static_cast<std::size_t>(n - 2)] = a(n - 1, n - 2);
    if (n >= 2) tau[static_cast<std::size_t>(n - 2)] = T{};
  }
}

template <typename T>
void orgtr(ConstMatrixView<T> a, const std::vector<T>& tau, MatrixView<T> q) {
  const index_t n = a.rows();
  TCEVD_CHECK(q.rows() == n && q.cols() == n, "orgtr requires square Q");
  set_identity(q);
  if (n < 3) return;
  std::vector<T> work(static_cast<std::size_t>(n));
  std::vector<T> v(static_cast<std::size_t>(n));
  // Q = H(0) H(1) ... H(n-3) applied to I, last reflector first.
  for (index_t j = n - 3; j >= 0; --j) {
    const index_t m = n - j - 1;
    v[0] = T{1};
    for (index_t i = 1; i < m; ++i) v[static_cast<std::size_t>(i)] = a(j + 1 + i, j);
    larf_left(v.data(), 1, tau[static_cast<std::size_t>(j)], q.sub(j + 1, 0, m, n),
              work.data());
  }
}

template <typename T>
void sytrd_blocked(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tau,
                   index_t nb) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sytrd_blocked requires a square matrix");
  TCEVD_CHECK(nb >= 1, "sytrd_blocked block size must be >= 1");
  d.assign(static_cast<std::size_t>(n), T{});
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  tau.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  if (n == 0) return;

  index_t k0 = 0;
  std::vector<T> tmp(static_cast<std::size_t>(n));

  // Blocked panels (latrd) while the trailing matrix is big enough to matter.
  while (n - k0 > nb + 2) {
    const index_t m = n - k0;             // trailing size
    auto at = a.sub(k0, k0, m, m);        // A_t, lower triangle authoritative
    Matrix<T> w(m, nb);                   // the panel's W

    for (index_t i = 0; i < nb; ++i) {
      const index_t len = m - i;  // rows i..m of column i
      // Delayed update of column i: a(i:, i) -= V w(i,:)^T + W v(i,:)^T.
      if (i > 0) {
        for (index_t j = 0; j < i; ++j) {
          const T wij = w(i, j);
          const T vij = at(i, j);
          if (wij != T{})
            blas::axpy(len, -wij, &at(i, j), 1, &at(i, i), 1);
          if (vij != T{})
            blas::axpy(len, -vij, &w(i, j), 1, &at(i, i), 1);
        }
      }
      d[static_cast<std::size_t>(k0 + i)] = at(i, i);

      // Reflector annihilating a(i+2:, i).
      T alpha = at(i + 1, i);
      const T ti = larfg(len - 1, alpha, (len > 2) ? &at(i + 2, i) : nullptr, 1);
      tau[static_cast<std::size_t>(k0 + i)] = ti;
      e[static_cast<std::size_t>(k0 + i)] = alpha;
      at(i + 1, i) = T{1};  // unit head kept until the panel completes

      // w_i = tau (A22 v - V (Wprev^T v) - W (Vprev^T v)) - (tau/2)(w^T v) v.
      const index_t lv = len - 1;  // rows i+1..m
      const T* v = &at(i + 1, i);
      T* wi = &w(i + 1, i);
      blas::symv(blas::Uplo::Lower, T{1}, ConstMatrixView<T>(at.sub(i + 1, i + 1, lv, lv)), v,
                 1, T{}, wi, 1);
      for (index_t j = 0; j < i; ++j) {
        tmp[static_cast<std::size_t>(j)] = blas::dot(lv, &w(i + 1, j), 1, v, 1);
      }
      for (index_t j = 0; j < i; ++j)
        blas::axpy(lv, -tmp[static_cast<std::size_t>(j)], &at(i + 1, j), 1, wi, 1);
      for (index_t j = 0; j < i; ++j)
        tmp[static_cast<std::size_t>(j)] = blas::dot(lv, &at(i + 1, j), 1, v, 1);
      for (index_t j = 0; j < i; ++j)
        blas::axpy(lv, -tmp[static_cast<std::size_t>(j)], &w(i + 1, j), 1, wi, 1);
      blas::scal(lv, ti, wi, 1);
      const T gamma = -(ti / T{2}) * blas::dot(lv, wi, 1, v, 1);
      blas::axpy(lv, gamma, v, 1, wi, 1);
    }

    // Rank-2nb trailing update: A(nb:, nb:) -= V W^T + W V^T (lower).
    {
      auto a22 = at.sub(nb, nb, m - nb, m - nb);
      // V panel = at(nb:, 0:nb) (unit heads already in place), W = w(nb:, :).
      blas::syr2k(blas::Uplo::Lower, blas::Trans::No, T{-1},
                  ConstMatrixView<T>(at.sub(nb, 0, m - nb, nb)),
                  ConstMatrixView<T>(w.sub(nb, 0, m - nb, nb)), T{1}, a22);
    }

    // Restore the subdiagonal entries overwritten with unit heads.
    for (index_t i = 0; i < nb; ++i) at(i + 1, i) = e[static_cast<std::size_t>(k0 + i)];
    k0 += nb;
  }

  // Unblocked cleanup of the remainder.
  {
    const index_t m = n - k0;
    auto at = a.sub(k0, k0, m, m);
    std::vector<T> ds, es, taus;
    sytrd(at, ds, es, taus);
    for (index_t i = 0; i < m; ++i) d[static_cast<std::size_t>(k0 + i)] = ds[static_cast<std::size_t>(i)];
    for (index_t i = 0; i + 1 < m; ++i) {
      e[static_cast<std::size_t>(k0 + i)] = es[static_cast<std::size_t>(i)];
      tau[static_cast<std::size_t>(k0 + i)] = taus[static_cast<std::size_t>(i)];
    }
  }
}

#define TCEVD_SYTRD_INST(T)                                                       \
  template void sytrd<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,          \
                         std::vector<T>&);                                        \
  template void orgtr<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  template void sytrd_blocked<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,  \
                                 std::vector<T>&, index_t);

TCEVD_SYTRD_INST(float)
TCEVD_SYTRD_INST(double)
#undef TCEVD_SYTRD_INST

}  // namespace tcevd::lapack
