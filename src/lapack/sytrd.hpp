// One-stage Householder tridiagonalization (LAPACK sytrd analogue, lower
// storage). This is the "conventional tridiagonalization" baseline the paper
// contrasts with two-stage SBR: ~50% of its flops are unblockable BLAS-2,
// which is exactly why the two-stage route wins on throughput hardware.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::lapack {

/// Reduce symmetric A (full storage, both triangles valid) to tridiagonal
/// form T = Q^T A Q. On exit: d (n) and e (n-1) hold the tridiagonal, the
/// strict lower triangle of `a` holds the Householder vectors, `tau` the
/// scalar factors (n-1 entries, the last possibly zero).
template <typename T>
void sytrd(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tau);

/// Form the explicit n x n Q from sytrd output (orgtr analogue).
template <typename T>
void orgtr(ConstMatrixView<T> a, const std::vector<T>& tau, MatrixView<T> q);

/// Blocked tridiagonalization (LAPACK sytrd with latrd panels): panels of
/// `nb` reflectors are built with delayed updates, then the trailing matrix
/// takes one rank-2nb syr2k. This is the "blocked variant from LAPACK" the
/// paper's introduction contrasts with two-stage SBR — ~50% of its flops
/// remain BLAS-2, which is exactly why SBR wins on throughput hardware.
/// Output layout identical to sytrd.
template <typename T>
void sytrd_blocked(MatrixView<T> a, std::vector<T>& d, std::vector<T>& e, std::vector<T>& tau,
                   index_t nb = 32);

#define TCEVD_SYTRD_EXTERN(T)                                                              \
  extern template void sytrd<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,            \
                                std::vector<T>&);                                          \
  extern template void orgtr<T>(ConstMatrixView<T>, const std::vector<T>&, MatrixView<T>); \
  extern template void sytrd_blocked<T>(MatrixView<T>, std::vector<T>&, std::vector<T>&,   \
                                        std::vector<T>&, index_t);

TCEVD_SYTRD_EXTERN(float)
TCEVD_SYTRD_EXTERN(double)
#undef TCEVD_SYTRD_EXTERN

}  // namespace tcevd::lapack
