// Symmetric tridiagonal eigensolvers.
//
// The two-stage EVD pipeline ends on a tridiagonal matrix (d, e); these are
// the from-scratch equivalents of the LAPACK/MAGMA solvers the paper calls:
//
//   steqr — implicit QL/QR with Wilkinson shifts, optional eigenvector
//           accumulation (the robust workhorse; used as the D&C base case)
//   sterf — eigenvalues only, same iteration without vector updates
//   stebz — Sturm-sequence bisection (selected or all eigenvalues)
//   stedc — divide & conquer with deflation and a secular-equation solver
//           (the paper's final stage uses MAGMA's D&C)
//
// All solvers return eigenvalues in ascending order. Convergence failure is
// reported as a Status (NoConvergence with the failing eigenvalue index in
// detail()), never by aborting — the EVD driver degrades through its solver
// fallback chain on any non-ok result.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd::lapack {

/// Implicit QL/QR with Wilkinson shift. d (n) / e (n-1) are overwritten with
/// the eigenvalues / destroyed. If `z` is non-null it must be n x n (or
/// n x m row-compatible) and is multiplied by the accumulated rotations:
/// pass identity to get eigenvectors of the tridiagonal, or pass Q from a
/// previous reduction to get eigenvectors of the original matrix.
/// NoConvergence if an eigenvalue fails to converge in 50 iterations.
template <typename T>
Status steqr(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* z = nullptr);

/// Eigenvalues only (no vector accumulation).
template <typename T>
Status sterf(std::vector<T>& d, std::vector<T>& e);

/// Number of eigenvalues of the tridiagonal strictly less than x
/// (Sturm count via the shifted LDL^T recurrence).
template <typename T>
index_t sturm_count(const std::vector<T>& d, const std::vector<T>& e, T x);

/// Bisection: compute eigenvalues with indices [il, iu] (0-based, inclusive)
/// to absolute tolerance `tol` (<=0 picks a sensible default).
template <typename T>
std::vector<T> stebz(const std::vector<T>& d, const std::vector<T>& e, index_t il, index_t iu,
                     T tol = T{-1});

/// Divide & conquer. Same contract as steqr: eigenvalues into d, optional
/// accumulation into z (z := z * V where V are tridiagonal eigenvectors).
/// Internally computes in double regardless of T for a stable secular solve.
/// A base-case steqr failure propagates as NoConvergence.
template <typename T>
Status stedc(std::vector<T>& d, std::vector<T>& e, MatrixView<T>* z = nullptr);

#define TCEVD_TRI_EXTERN(T)                                                              \
  extern template Status steqr<T>(std::vector<T>&, std::vector<T>&, MatrixView<T>*);      \
  extern template Status sterf<T>(std::vector<T>&, std::vector<T>&);                      \
  extern template index_t sturm_count<T>(const std::vector<T>&, const std::vector<T>&, T); \
  extern template std::vector<T> stebz<T>(const std::vector<T>&, const std::vector<T>&,   \
                                          index_t, index_t, T);                          \
  extern template Status stedc<T>(std::vector<T>&, std::vector<T>&, MatrixView<T>*);

TCEVD_TRI_EXTERN(float)
TCEVD_TRI_EXTERN(double)
#undef TCEVD_TRI_EXTERN

}  // namespace tcevd::lapack
