#include "src/matgen/matgen.hpp"

#include <algorithm>
#include <cmath>

#include "src/blas/blas.hpp"
#include "src/lapack/qr.hpp"

namespace tcevd::matgen {

std::string matrix_type_name(MatrixType type, double cond) {
  auto cond_tag = [&] {
    const int exp = static_cast<int>(std::lround(std::log10(cond)));
    return std::string(" 1e") + std::to_string(exp);
  };
  switch (type) {
    case MatrixType::Normal:
      return "Normal";
    case MatrixType::Uniform:
      return "Uniform";
    case MatrixType::Cluster0:
      return "SVD_Cluster0" + cond_tag();
    case MatrixType::Cluster1:
      return "SVD_Cluster1" + cond_tag();
    case MatrixType::Arith:
      return "SVD_Arith" + cond_tag();
    case MatrixType::Geo:
      return "SVD_Geo" + cond_tag();
  }
  return "?";
}

std::vector<double> prescribed_spectrum(MatrixType type, index_t n, double cond) {
  TCEVD_CHECK(cond >= 1.0, "condition number must be >= 1");
  std::vector<double> s(static_cast<std::size_t>(n));
  const double lo = 1.0 / cond;
  switch (type) {
    case MatrixType::Normal:
    case MatrixType::Uniform:
      return {};
    case MatrixType::Cluster0:
      std::fill(s.begin(), s.end(), lo);
      s.back() = 1.0;
      break;
    case MatrixType::Cluster1:
      std::fill(s.begin(), s.end(), 1.0);
      s.front() = lo;
      break;
    case MatrixType::Arith:
      for (index_t i = 0; i < n; ++i)
        s[static_cast<std::size_t>(i)] =
            lo + (1.0 - lo) * static_cast<double>(i) / std::max<index_t>(n - 1, 1);
      break;
    case MatrixType::Geo:
      for (index_t i = 0; i < n; ++i)
        s[static_cast<std::size_t>(i)] = std::pow(
            cond, -1.0 + static_cast<double>(i) / std::max<index_t>(n - 1, 1));
      break;
  }
  std::sort(s.begin(), s.end());
  return s;
}

Matrix<double> random_orthogonal(index_t n, Rng& rng) {
  Matrix<double> g(n, n);
  fill_normal(rng, g.view());
  std::vector<double> tau;
  lapack::geqrf(g.view(), tau, 32);
  Matrix<double> q(n, n);
  lapack::orgqr(g.view(), tau, q.view());
  return q;
}

Matrix<double> generate(MatrixType type, index_t n, double cond, Rng& rng) {
  if (type == MatrixType::Normal || type == MatrixType::Uniform) {
    Matrix<double> a(n, n);
    if (type == MatrixType::Normal)
      fill_normal(rng, a.view());
    else
      fill_uniform(rng, a.view(), -1.0, 1.0);
    make_symmetric(a.view());
    return a;
  }

  const auto spectrum = prescribed_spectrum(type, n, cond);
  Matrix<double> q = random_orthogonal(n, rng);
  // A = Q diag(lambda) Q^T.
  Matrix<double> qd(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      qd(i, j) = q(i, j) * spectrum[static_cast<std::size_t>(j)];
  Matrix<double> a(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0, qd.view(), q.view(), 0.0, a.view());
  make_symmetric(a.view());
  return a;
}

Matrix<float> generate_f(MatrixType type, index_t n, double cond, Rng& rng) {
  Matrix<double> ad = generate(type, n, cond, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());
  return a;
}

std::vector<TableRow> paper_accuracy_rows() {
  return {
      {MatrixType::Normal, 1.0},    {MatrixType::Uniform, 1.0},
      {MatrixType::Cluster0, 1e5},  {MatrixType::Cluster1, 1e5},
      {MatrixType::Arith, 1e1},     {MatrixType::Arith, 1e3},
      {MatrixType::Arith, 1e5},     {MatrixType::Geo, 1e1},
      {MatrixType::Geo, 1e3},       {MatrixType::Geo, 1e5},
  };
}

}  // namespace tcevd::matgen
