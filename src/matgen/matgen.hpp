// Test-matrix generation (stand-in for MAGMA's magma_generate; paper
// Tables 3/4 matrix classes).
//
//   Normal / Uniform — iid random entries, symmetrized.
//   Cluster0 / Cluster1 / Arith / Geo — symmetric positive definite with a
//   prescribed spectrum in [1/cond, 1]:
//     Cluster0: lambda = {1, 1/k, ..., 1/k}         (cluster at the bottom)
//     Cluster1: lambda = {1, ..., 1, 1/k}           (cluster at the top)
//     Arith:    lambda_i arithmetic from 1 down to 1/k
//     Geo:      lambda_i geometric  from 1 down to 1/k
//   realized as A = Q diag(lambda) Q^T with Haar-ish random orthogonal Q
//   (QR of a Gaussian matrix), computed in double.
#pragma once

#include <string>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/rng.hpp"

namespace tcevd::matgen {

enum class MatrixType { Normal, Uniform, Cluster0, Cluster1, Arith, Geo };

/// Display name matching the paper's tables ("SVD_Arith 1e5" etc.).
std::string matrix_type_name(MatrixType type, double cond);

/// The prescribed spectrum (ascending) for the spectrum-controlled types;
/// empty for Normal/Uniform (whose spectrum is whatever the entries give).
std::vector<double> prescribed_spectrum(MatrixType type, index_t n, double cond);

/// Random orthogonal matrix (QR of a Gaussian sample).
Matrix<double> random_orthogonal(index_t n, Rng& rng);

/// Generate the symmetric test matrix in double precision.
Matrix<double> generate(MatrixType type, index_t n, double cond, Rng& rng);

/// Convenience: generate and round to float (the EVD pipeline's input).
Matrix<float> generate_f(MatrixType type, index_t n, double cond, Rng& rng);

/// All (type, cond) rows of the paper's accuracy tables, in table order.
struct TableRow {
  MatrixType type;
  double cond;
};
std::vector<TableRow> paper_accuracy_rows();

}  // namespace tcevd::matgen
