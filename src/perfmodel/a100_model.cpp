#include "src/perfmodel/a100_model.hpp"

#include <algorithm>
#include <cmath>

namespace tcevd::perf {

namespace {

// Paper Table 1 calibration points (k, TFLOPS), m = n = 32768.
constexpr double kKnots[] = {32, 64, 128, 256, 512, 1024, 2048, 4096};
constexpr double kTcSkinny[] = {6.28, 11.69, 24.44, 42.65, 66.57, 85.73, 112.08, 133.17};
constexpr double kSgSkinny[] = {9.36, 9.65, 10.22, 10.33, 10.36, 10.40, 12.91, 15.31};
constexpr double kTcOuter[] = {20.02, 33.30, 49.83, 97.41, 122.89, 138.82, 121.55, 140.85};
constexpr double kSgOuter[] = {9.31, 9.85, 10.02, 10.23, 10.33, 10.37, 13.13, 14.33};
constexpr int kNumKnots = 8;

/// Piecewise-linear interpolation in log2(k), clamped at the table ends.
double interp(const double* table, double k) {
  if (k <= kKnots[0]) {
    // Below the table: throughput of skinny GEMMs keeps shrinking roughly
    // linearly in k (memory-bound regime).
    return table[0] * std::max(k, 1.0) / kKnots[0];
  }
  if (k >= kKnots[kNumKnots - 1]) return table[kNumKnots - 1];
  const double lk = std::log2(k);
  for (int i = 0; i + 1 < kNumKnots; ++i) {
    const double lo = std::log2(kKnots[i]);
    const double hi = std::log2(kKnots[i + 1]);
    if (lk <= hi) {
      const double t = (lk - lo) / (hi - lo);
      return table[i] + t * (table[i + 1] - table[i]);
    }
  }
  return table[kNumKnots - 1];
}

/// De-rating for problems smaller than the 32768 calibration size: a GEMM
/// cannot run faster than its parallelism allows; below ~4096 the A100 is
/// increasingly under-occupied.
double size_derate(index_t m, index_t n, index_t k) {
  const double big = std::max({m, n, k});
  (void)k;
  return std::min(1.0, big / 4096.0 * 0.25 + 0.75 * std::min(1.0, big / 16384.0));
}

}  // namespace

double gemm_tflops(Device dev, index_t m, index_t n, index_t k) {
  const index_t s = std::min({m, n, k});
  // Shape class: smallest dimension on the inside (outer product) runs on
  // the "outer" curve; smallest dimension in the output runs on "skinny".
  const bool outer = (s == k);
  const double* table = nullptr;
  if (dev == Device::TensorCore)
    table = outer ? kTcOuter : kTcSkinny;
  else
    table = outer ? kSgOuter : kSgSkinny;
  return interp(table, static_cast<double>(s)) * size_derate(m, n, k);
}

double gemm_time_s(Device dev, index_t m, index_t n, index_t k) {
  const double flops = 2.0 * double(m) * double(n) * double(k);
  const double rate = gemm_tflops(dev, m, n, k) * 1e12;
  return flops / rate + kLaunchOverheadS;
}

double total_time_s(Device dev, const std::vector<tc::GemmShape>& shapes) {
  double t = 0.0;
  for (const auto& s : shapes) t += gemm_time_s(dev, s.m, s.n, s.k);
  return t;
}

double total_flops(const std::vector<tc::GemmShape>& shapes) {
  double f = 0.0;
  for (const auto& s : shapes) f += s.flops();
  return f;
}

double stream_tflops(Device dev, const std::vector<tc::GemmShape>& shapes) {
  const double t = total_time_s(dev, shapes);
  return t > 0.0 ? total_flops(shapes) / t / 1e12 : 0.0;
}

std::vector<ShapeBin> shape_histogram(const std::vector<tc::GemmShape>& shapes) {
  std::vector<ShapeBin> bins;
  auto bin_for = [&](index_t s) -> ShapeBin& {
    index_t lo = 1;
    while (lo * 2 <= s) lo *= 2;
    for (auto& b : bins)
      if (b.min_dim_lo == lo) return b;
    bins.push_back(ShapeBin{lo, lo * 2, 0, 0.0});
    return bins.back();
  };
  for (const auto& s : shapes) {
    auto& b = bin_for(std::max<index_t>(s.min_dim(), 1));
    ++b.calls;
    b.flops += s.flops();
  }
  std::sort(bins.begin(), bins.end(),
            [](const ShapeBin& a, const ShapeBin& b) { return a.min_dim_lo < b.min_dim_lo; });
  return bins;
}

double flop_weighted_min_dim(const std::vector<tc::GemmShape>& shapes) {
  double fl = 0.0, acc = 0.0;
  for (const auto& s : shapes) {
    acc += s.flops() * static_cast<double>(s.min_dim());
    fl += s.flops();
  }
  return fl > 0.0 ? acc / fl : 0.0;
}

double panel_flops(index_t m, index_t b) {
  // Householder QR of an m x b panel (2mb^2 - 2b^3/3) plus W = V T formation
  // (~ m b^2) plus, for TSQR, the explicit-Q assembly and reconstruction
  // (~ 2 m b^2). Rounded to a single constant: ~4 m b^2.
  return 4.0 * double(m) * double(b) * double(b);
}

double panel_time_s(index_t m, index_t b, bool tsqr) {
  // Fig. 8 calibration: at n = 32768, b = 128, the sweep's ~255 panels cost
  // roughly 0.3-0.6 s with TSQR vs ~2-4.5 s with the cuSOLVER/MAGMA panels
  // (the paper reports ~5x). Both are latency-bound on a GPU: the library
  // panel serializes O(b) small BLAS-2 kernels with host round-trips (~30us
  // each); TSQR fuses the reduction tree into a bounded number of launches.
  const double bytes = 4.0 * double(m) * double(b);
  const double bw = 1.2e12;  // ~HBM2e effective bandwidth
  if (tsqr) {
    return 3.0 * bytes / bw + 160.0 * 8e-6;  // tree kernels, device-side sync
  }
  const double launches = static_cast<double>(b) * 2.0;  // per-column + updates
  return 10.0 * bytes / bw + launches * 30e-6;
}

}  // namespace tcevd::perf
