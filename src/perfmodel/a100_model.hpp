// Analytic A100 GEMM throughput model, calibrated to the paper's own
// Table 1 measurements (m = 32768, k swept 32..4096, TFLOPS):
//
//             | TC sq*skinny | SGEMM | TC outer | SGEMM |
//   k =   32  |    6.28      |  9.36 |  20.02   |  9.31 |
//   k =  64   |   11.69      |  9.65 |  33.30   |  9.85 |
//   ...                                                   (see .cpp)
//
// "sq*skinny" is C(m x k) = A(m x m) B(m x k) — the GEMM whose *output* is
// skinny; "outer" is C(m x m) = A(m x k) B(k x m) — skinny *inner*
// dimension. A GEMM's throughput is looked up on the curve selected by which
// dimension is smallest, interpolated piecewise-linearly in log2 of that
// dimension, de-rated for problems much smaller than the calibration size,
// and a fixed kernel-launch overhead is added per call.
//
// This model is how the benches reproduce the paper's *time* figures
// (Figs. 5-11) at paper scale (n = 32768) without the GPU: the algorithms'
// GEMM shape streams come from src/perfmodel/shape_trace (unit-tested to
// match the real implementations call-for-call), and each shape is priced
// by this model.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd::perf {

enum class Device {
  TensorCore,  ///< half-precision HMMA path (Table 1 cols 2 & 4)
  Sgemm,       ///< fp32 SIMT path (Table 1 cols 3 & 5)
};

/// Modeled throughput of one GEMM in TFLOPS.
double gemm_tflops(Device dev, index_t m, index_t n, index_t k);

/// Modeled wall time of one GEMM in seconds (includes launch overhead).
double gemm_time_s(Device dev, index_t m, index_t n, index_t k);

/// Sum of modeled times for a recorded/traced shape stream.
double total_time_s(Device dev, const std::vector<tc::GemmShape>& shapes);

/// Total flops of a shape stream.
double total_flops(const std::vector<tc::GemmShape>& shapes);

/// Aggregate throughput of a stream under the model (TFLOPS).
double stream_tflops(Device dev, const std::vector<tc::GemmShape>& shapes);

/// Kernel launch overhead per GEMM call (seconds).
inline constexpr double kLaunchOverheadS = 5e-6;

/// Flop-mass histogram over the smallest GEMM dimension (power-of-two bins):
/// the quantitative form of "which algorithm generates squarer GEMMs".
struct ShapeBin {
  index_t min_dim_lo = 0;  ///< inclusive
  index_t min_dim_hi = 0;  ///< exclusive
  index_t calls = 0;
  double flops = 0.0;
};
std::vector<ShapeBin> shape_histogram(const std::vector<tc::GemmShape>& shapes);

/// Flop-weighted mean of the smallest dimension over a stream.
double flop_weighted_min_dim(const std::vector<tc::GemmShape>& shapes);

/// Modeled time of one panel factorization (TSQR + reconstruction vs a
/// cuSOLVER-style blocked Householder panel), used for Figs. 8/9. Calibrated
/// against the paper's Fig. 8 magnitudes.
double panel_time_s(index_t m, index_t b, bool tsqr);

/// Flops of one m x b panel factorization incl. W/Y formation (Table 2
/// accounting).
double panel_flops(index_t m, index_t b);

}  // namespace tcevd::perf
