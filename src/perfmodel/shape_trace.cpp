#include "src/perfmodel/shape_trace.hpp"

#include <algorithm>

namespace tcevd::perf {

namespace {

using tc::GemmShape;

void emit(std::vector<GemmShape>& out, index_t m, index_t n, index_t k) {
  out.push_back(GemmShape{m, n, k});
}

/// Trailing-update form of trace_wy_block — mirrors
/// sbr/wy_block.hpp::TrailingKind.
enum class Trailing { Multiplicative, DetachedSyr2k };

/// Mirrors sbr_wy.cpp::process_wy_block; returns columns reduced.
index_t trace_wy_block(std::vector<GemmShape>& out, index_t n, index_t s, index_t b,
                       index_t nb, bool cache_oa,
                       Trailing trailing = Trailing::Multiplicative,
                       bool use_tc_syr2k = false) {
  const index_t na = n - s;
  if (na - b < 2) return 0;
  const index_t mt = na - b;

  index_t cols_done = 0;
  for (index_t p = 0;; ++p) {
    const index_t c = p * b;
    if (c >= nb || na - c - b < 2) break;
    const index_t m = na - c - b;

    if (p > 0) {
      const index_t pb = c;
      if (!cache_oa) emit(out, mt, pb, mt);  // big = OA * W (literal recompute)
      emit(out, mt, b, pb);                  // M -= big * Y(C)^T
      emit(out, pb, b, mt);                  // W^T M
      emit(out, mt - (c - b), b, pb);        // GA -= Y(R') (W^T M)
    }
    // panel QR happens here (not an engine GEMM)
    if (c > 0) {
      emit(out, c, b, m);                    // Y^T w
      emit(out, mt, b, c);                   // w' = w - W (Y^T w)
    }
    if (cache_oa) emit(out, mt, b, mt);      // P(:, c:c+b) = OA * w'
    cols_done = c + b;
  }
  if (cols_done == 0) return 0;

  const index_t t0 = cols_done - b;
  const index_t tw = mt - t0;
  if (tw > 0) {
    if (!cache_oa) emit(out, mt, cols_done, mt);  // big = OA * W
    if (trailing == Trailing::DetachedSyr2k) {
      emit(out, cols_done, cols_done, mt);   // S = W^T P
      emit(out, tw, cols_done, cols_done);   // Z -= 1/2 Y_t S
      if (!use_tc_syr2k) {
        emit(out, tw, tw, cols_done);        // GA -= Y_t Z^T
        emit(out, tw, tw, cols_done);        // GA -= Z Y_t^T
      }
      // tc_syr2k runs outside the engine: no shapes recorded, as real runs.
    } else {
      emit(out, mt, tw, cols_done);          // M -= big * Y(C2)^T
      emit(out, cols_done, tw, mt);          // W^T M
      emit(out, tw, tw, cols_done);          // GA2
    }
  }
  return cols_done;
}

}  // namespace

std::vector<GemmShape> trace_sbr_wy(index_t n, index_t b, index_t nb, bool cache_oa) {
  std::vector<GemmShape> out;
  index_t s = 0;
  for (;;) {
    const index_t done = trace_wy_block(out, n, s, b, std::max(nb, b), cache_oa);
    if (done == 0) break;
    s += done;
  }
  return out;
}

std::vector<GemmShape> trace_sbr_dbr(index_t n, index_t b, index_t nb, bool cache_oa,
                                     bool use_tc_syr2k) {
  const index_t nb_eff = std::max(nb, b);
  // b == nb runs the multiplicative path verbatim (see sbr_dbr).
  const Trailing trailing =
      b < nb_eff ? Trailing::DetachedSyr2k : Trailing::Multiplicative;
  std::vector<GemmShape> out;
  index_t s = 0;
  for (;;) {
    const index_t done =
        trace_wy_block(out, n, s, b, nb_eff, cache_oa, trailing, use_tc_syr2k);
    if (done == 0) break;
    s += done;
  }
  return out;
}

std::vector<GemmShape> trace_sbr_zy(index_t n, index_t b) {
  std::vector<GemmShape> out;
  for (index_t i = 0; n - i - b >= 2; i += b) {
    const index_t m = n - i - b;
    emit(out, m, b, m);  // P = A22 W        (square x skinny)
    emit(out, b, b, m);  // S = W^T P
    emit(out, m, b, b);  // Z -= 1/2 Y S
    emit(out, m, m, b);  // A22 -= Y Z^T     (outer)
    emit(out, m, m, b);  // A22 -= Z Y^T     (outer)
  }
  return out;
}

std::vector<GemmShape> trace_formw(index_t n, index_t b, index_t nb) {
  // Column counts of each WY block, from the same recursion as sbr_wy.
  std::vector<index_t> block_cols;
  {
    index_t s = 0;
    std::vector<GemmShape> scratch;
    for (;;) {
      const index_t before = static_cast<index_t>(scratch.size());
      (void)before;
      const index_t done = trace_wy_block(scratch, n, s, b, std::max(nb, b), false);
      if (done == 0) break;
      block_cols.push_back(done);
      s += done;
    }
  }
  std::vector<GemmShape> out;
  if (block_cols.empty()) return out;

  // Binary merge tree (mirrors formw.cpp::merge_range).
  struct Rec {
    index_t lo, hi;
  };
  // Recursive lambda via explicit stack-free recursion.
  std::vector<GemmShape>* outp = &out;
  const auto& cols = block_cols;
  auto merged_cols = [&](auto&& self, index_t lo, index_t hi) -> index_t {
    if (hi - lo == 1) return cols[static_cast<std::size_t>(lo)];
    const index_t mid = lo + (hi - lo) / 2;
    const index_t kl = self(self, lo, mid);
    const index_t kr = self(self, mid, hi);
    emit(*outp, kl, kr, n);  // cross = Y_left^T W_right
    emit(*outp, n, kr, kl);  // W_right' -= W_left cross
    return kl + kr;
  };
  const index_t total = merged_cols(merged_cols, 0, static_cast<index_t>(cols.size()));
  emit(out, n, n, total);  // Q = I - W Y^T
  return out;
}

std::vector<GemmShape> trace_zy_backtransform(index_t n, index_t b) {
  std::vector<GemmShape> out;
  for (index_t i = 0; n - i - b >= 2; i += b) {
    const index_t m = n - i - b;
    emit(out, n, b, m);  // T = Q(:, i+b:) W
    emit(out, n, m, b);  // Q(:, i+b:) -= T Y^T
  }
  return out;
}

std::vector<GemmShape> trace_panels(index_t n, index_t b) {
  std::vector<GemmShape> out;
  for (index_t i = 0; n - i - b >= 2; i += b) emit(out, n - i - b, b, b);
  return out;
}

}  // namespace tcevd::perf
