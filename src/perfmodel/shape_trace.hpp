// GEMM shape tracers: replay the exact loop structure of the SBR variants
// (and the FormW back-transformation) emitting every engine GEMM's (m, n, k)
// without touching data. At paper scale (n = 32768) actually running the
// algorithms is infeasible on this machine, but the *shape stream* is all
// the throughput model needs.
//
// These functions are unit-tested against the real implementations: for
// small sizes, the recorded shape list of a real run must equal the traced
// list call-for-call (tests/test_perfmodel.cpp). That test is what licenses
// using the traces at paper scale.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd::perf {

/// Engine GEMMs of sbr_wy(n, bandwidth b, big block nb), in call order.
/// `cache_oa` selects the SbrOptions::wy_cache_oa_product variant.
std::vector<tc::GemmShape> trace_sbr_wy(index_t n, index_t b, index_t nb,
                                        bool cache_oa = false);

/// Engine GEMMs of sbr_zy(n, bandwidth b) without Q accumulation.
std::vector<tc::GemmShape> trace_sbr_zy(index_t n, index_t b);

/// Engine GEMMs of sbr_dbr(n, bandwidth b, big block nb). With b == nb this
/// equals trace_sbr_wy (the DBR driver runs the multiplicative path
/// verbatim); with b < nb each big block ends in the detached trailing
/// update: S (nb x nb, k = mt), Z (tw x nb, k = nb), then the two rank-2k
/// GEMMs (tw x tw, k = nb) — or no engine GEMMs at all for that pair when
/// `use_tc_syr2k` routes it through tc::tc_syr2k (which bypasses the
/// engine, exactly as the real run does).
std::vector<tc::GemmShape> trace_sbr_dbr(index_t n, index_t b, index_t nb,
                                         bool cache_oa = false,
                                         bool use_tc_syr2k = false);

/// GEMMs of the recursive FormW merge (paper Algorithm 2) given the blocks
/// produced by sbr_wy(n, b, nb), plus the final Q = I - W Y^T product.
std::vector<tc::GemmShape> trace_formw(index_t n, index_t b, index_t nb);

/// GEMMs of the progressive ZY back-transformation (apply each panel's
/// block reflector to Q as it is produced).
std::vector<tc::GemmShape> trace_zy_backtransform(index_t n, index_t b);

/// Panel (m, b) sizes factored by either SBR variant, in order.
std::vector<tc::GemmShape> trace_panels(index_t n, index_t b);

}  // namespace tcevd::perf
