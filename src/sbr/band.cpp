#include "src/sbr/band.hpp"

#include <cmath>

namespace tcevd::sbr {

template <typename T>
double band_violation(ConstMatrixView<T> a, index_t bw) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      if (std::abs(i - j) > bw)
        worst = std::max(worst, std::abs(static_cast<double>(a(i, j))));
  return worst;
}

template <typename T>
void truncate_to_band(MatrixView<T> a, index_t bw) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      if (std::abs(i - j) > bw) a(i, j) = T{};
}

template <typename T>
double symmetry_violation(ConstMatrixView<T> a) {
  double worst = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = j + 1; i < a.rows(); ++i)
      worst = std::max(worst,
                       std::abs(static_cast<double>(a(i, j)) - static_cast<double>(a(j, i))));
  return worst;
}

template <typename T>
void extract_tridiag(ConstMatrixView<T> a, std::vector<T>& d, std::vector<T>& e) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "extract_tridiag requires a square matrix");
  d.assign(static_cast<std::size_t>(n), T{});
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  for (index_t i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = a(i, i);
    if (i + 1 < n) e[static_cast<std::size_t>(i)] = a(i + 1, i);
  }
}

#define TCEVD_BAND_INST(T)                                        \
  template double band_violation<T>(ConstMatrixView<T>, index_t); \
  template void truncate_to_band<T>(MatrixView<T>, index_t);      \
  template double symmetry_violation<T>(ConstMatrixView<T>);      \
  template void extract_tridiag<T>(ConstMatrixView<T>, std::vector<T>&, std::vector<T>&);

TCEVD_BAND_INST(float)
TCEVD_BAND_INST(double)
#undef TCEVD_BAND_INST

}  // namespace tcevd::sbr
