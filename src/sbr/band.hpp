// Band-matrix helpers for the SBR pipeline.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::sbr {

/// Largest |A(i,j)| with |i - j| > bw (0 for an exactly banded matrix).
template <typename T>
double band_violation(ConstMatrixView<T> a, index_t bw);

/// Zero everything outside the band |i - j| <= bw, in place.
template <typename T>
void truncate_to_band(MatrixView<T> a, index_t bw);

/// Largest |A(i,j) - A(j,i)| (symmetry check).
template <typename T>
double symmetry_violation(ConstMatrixView<T> a);

/// Extract the (d, e) arrays from a tridiagonal (bandwidth-1) matrix.
template <typename T>
void extract_tridiag(ConstMatrixView<T> a, std::vector<T>& d, std::vector<T>& e);

#define TCEVD_BAND_EXTERN(T)                                             \
  extern template double band_violation<T>(ConstMatrixView<T>, index_t); \
  extern template void truncate_to_band<T>(MatrixView<T>, index_t);      \
  extern template double symmetry_violation<T>(ConstMatrixView<T>);      \
  extern template void extract_tridiag<T>(ConstMatrixView<T>, std::vector<T>&, std::vector<T>&);

TCEVD_BAND_EXTERN(float)
TCEVD_BAND_EXTERN(double)
#undef TCEVD_BAND_EXTERN

}  // namespace tcevd::sbr
