#include "src/sbr/band_storage.hpp"

#include <cmath>

namespace tcevd::sbr {

namespace {

/// Two-sided Givens rotation in the (i, i+1) plane on compact band storage.
/// `dmax` is the largest live distance (current bandwidth + the bulge slot);
/// entries beyond it are structural zeros and are neither read nor written.
template <typename T>
void rotate_band(BandMatrix<T>& a, index_t i, T c, T s, index_t dmax) {
  const index_t n = a.size();
  const index_t j = i + 1;

  // Columns k < i: rows i and j of column k (within distance dmax).
  const index_t klo = (j > dmax) ? j - dmax : 0;
  for (index_t k = klo; k < i; ++k) {
    const T aik = (i - k <= dmax) ? a.get(i, k) : T{};
    const T ajk = a.get(j, k);
    if (i - k <= dmax) a.set(i, k, c * aik + s * ajk);
    a.set(j, k, -s * aik + c * ajk);
  }

  // The 2x2 diagonal block.
  {
    const T aii = a.get(i, i);
    const T ajj = a.get(j, j);
    const T aji = a.get(j, i);
    a.set(i, i, c * c * aii + T{2} * c * s * aji + s * s * ajj);
    a.set(j, j, s * s * aii - T{2} * c * s * aji + c * c * ajj);
    a.set(j, i, (c * c - s * s) * aji + c * s * (ajj - aii));
  }

  // Rows k > j: columns i and j of row k.
  const index_t khi = std::min(n, i + dmax + 1);
  for (index_t k = j + 1; k < khi; ++k) {
    const T aki = a.get(k, i);
    const T akj = (k - j <= dmax) ? a.get(k, j) : T{};
    a.set(k, i, c * aki + s * akj);
    if (k - j <= dmax) a.set(k, j, -s * aki + c * akj);
  }
}

}  // namespace

template <typename T>
void bulge_chase_band(BandMatrix<T>& a, std::vector<T>& d, std::vector<T>& e) {
  const index_t n = a.size();
  const index_t bw = a.bandwidth();

  // bw <= 1 (the DBR narrow-band fast path): already tridiagonal, nothing
  // to chase — the dd loop below would not run, but skipping it keeps the
  // fast path obvious and O(n).
  if (bw <= 1 || n <= 2) {
    a.extract_tridiagonal(d, e);
    return;
  }

  for (index_t dd = std::min(bw, n - 1); dd >= 2; --dd) {
    for (index_t col = 0; col + dd < n; ++col) {
      index_t tcol = col;
      index_t row = col + dd;
      while (row < n) {
        const T g = a.get(row, tcol);
        if (g != T{}) {
          const T f = a.get(row - 1, tcol);
          const T h = std::hypot(f, g);
          const T c = f / h;
          const T s = g / h;
          // Live distances: current band dd plus the bulge one beyond.
          rotate_band(a, row - 1, c, s, dd + 1);
          a.set(row, tcol, T{});
        }
        tcol = row - 1;
        row += dd;
      }
    }
  }

  a.extract_tridiagonal(d, e);
}

template void bulge_chase_band<float>(BandMatrix<float>&, std::vector<float>&,
                                      std::vector<float>&);
template void bulge_chase_band<double>(BandMatrix<double>&, std::vector<double>&,
                                       std::vector<double>&);

}  // namespace tcevd::sbr
