// Compact symmetric band storage (LAPACK 'sb'-style, lower triangle).
//
// The full-storage bulge chase in src/bulge touches O(n^2) memory; a
// production second stage runs on compact band storage, O(n * b), with far
// better locality. Entry (i, j) with i >= j and i - j <= bw + 1 lives at
// data[(i - j) + j * (bw + 2)]; the extra (+1) diagonal is the scratch slot
// the live bulge occupies mid-chase.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"

namespace tcevd::sbr {

template <typename T>
class BandMatrix {
 public:
  BandMatrix() = default;
  BandMatrix(index_t n, index_t bw)
      : n_(n), bw_(bw), ld_(bw + 2),
        data_(static_cast<std::size_t>((bw + 2) * std::max<index_t>(n, 1)), T{}) {
    TCEVD_CHECK(n >= 0 && bw >= 0 && bw < std::max<index_t>(n, 1),
                "band matrix bandwidth out of range");
  }

  index_t size() const noexcept { return n_; }
  index_t bandwidth() const noexcept { return bw_; }

  /// Entry (i, j) of the symmetric matrix; any (i, j) with |i - j| <= bw+1.
  T get(index_t i, index_t j) const noexcept {
    if (i < j) std::swap(i, j);
    TCEVD_ASSERT(i - j <= bw_ + 1 && i < n_, "band access out of range");
    return data_[static_cast<std::size_t>((i - j) + j * ld_)];
  }
  void set(index_t i, index_t j, T v) noexcept {
    if (i < j) std::swap(i, j);
    TCEVD_ASSERT(i - j <= bw_ + 1 && i < n_, "band access out of range");
    data_[static_cast<std::size_t>((i - j) + j * ld_)] = v;
  }
  /// Mutable reference for i >= j (storage orientation).
  T& at(index_t i, index_t j) noexcept {
    TCEVD_ASSERT(i >= j && i - j <= bw_ + 1 && i < n_, "band access out of range");
    return data_[static_cast<std::size_t>((i - j) + j * ld_)];
  }

  /// Import the band of a full symmetric matrix (lower triangle read).
  static BandMatrix from_full(ConstMatrixView<T> a, index_t bw) {
    const index_t n = a.rows();
    TCEVD_CHECK(a.cols() == n, "from_full requires a square matrix");
    BandMatrix out(n, bw);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < std::min(n, j + bw + 1); ++i) out.at(i, j) = a(i, j);
    return out;
  }

  /// Export to full symmetric storage.
  Matrix<T> to_full() const {
    Matrix<T> a(n_, n_);
    for (index_t j = 0; j < n_; ++j)
      for (index_t i = j; i < std::min(n_, j + bw_ + 2); ++i) {
        a(i, j) = get(i, j);
        a(j, i) = a(i, j);
      }
    return a;
  }

  /// Read off the tridiagonal (d, e) directly. For bw <= 1 bands — what the
  /// DBR first stage produces at its narrowest — this IS the second stage:
  /// the matrix is already tridiagonal and no rotation is ever applied.
  void extract_tridiagonal(std::vector<T>& d, std::vector<T>& e) const {
    d.assign(static_cast<std::size_t>(n_), T{});
    e.assign(static_cast<std::size_t>(std::max<index_t>(n_ - 1, 0)), T{});
    for (index_t i = 0; i < n_; ++i) {
      d[static_cast<std::size_t>(i)] = get(i, i);
      if (i + 1 < n_) e[static_cast<std::size_t>(i)] = get(i + 1, i);
    }
  }

  /// Bytes of storage held — the O(n b) footprint claim, testable.
  std::size_t storage_bytes() const noexcept { return data_.size() * sizeof(T); }

 private:
  index_t n_ = 0;
  index_t bw_ = 0;
  index_t ld_ = 2;
  std::vector<T> data_;
};

/// Bulge chasing on compact storage: reduce to tridiagonal, returning (d, e).
/// Same algorithm as bulge::bulge_chase but O(n b) memory traffic.
template <typename T>
void bulge_chase_band(BandMatrix<T>& band, std::vector<T>& d, std::vector<T>& e);

extern template void bulge_chase_band<float>(BandMatrix<float>&, std::vector<float>&,
                                             std::vector<float>&);
extern template void bulge_chase_band<double>(BandMatrix<double>&, std::vector<double>&,
                                              std::vector<double>&);

}  // namespace tcevd::sbr
