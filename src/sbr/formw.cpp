// Recursive W formation (paper Algorithm 2, "FormW").
//
// Each big block k of the WY-based SBR leaves a reflector pair
// Q_k = I - W_k Y_k^T. The overall transform is Q = Q_0 Q_1 ... Q_K, and two
// consecutive factors merge by the WY product rule
//
//   (I - Wa Ya^T)(I - Wb Yb^T) = I - [Wa | Wb - Wa (Ya^T Wb)] [Ya | Yb]^T.
//
// Merging pairwise in a binary tree (rather than folding blocks in one by
// one) turns the corrective GEMM Wa (Ya^T Wb) into large square-ish products
// — the same shape trick as the SBR itself; the paper measures ~25% faster
// back-transformation this way (320 ms vs 420 ms at n = 32768).
#include "src/blas/blas.hpp"
#include "src/sbr/sbr.hpp"

namespace tcevd::sbr {

namespace {

using blas::Trans;

struct MergedWy {
  Matrix<float> w;  // n x k
  Matrix<float> y;  // n x k
};

/// Embed one block's (W, Y) into full n-row storage.
MergedWy embed(const WyBlock& blk, index_t n) {
  MergedWy out;
  const index_t rows = blk.w.rows();
  const index_t cols = blk.w.cols();
  out.w = Matrix<float>(n, cols);
  out.y = Matrix<float>(n, cols);
  copy_matrix<float>(blk.w.view(), out.w.sub(blk.row_offset, 0, rows, cols));
  copy_matrix<float>(blk.y.view(), out.y.sub(blk.row_offset, 0, rows, cols));
  return out;
}

/// Merge blocks[lo, hi) into a single representation (binary recursion).
MergedWy merge_range(const std::vector<WyBlock>& blocks, index_t lo, index_t hi, index_t n,
                     tc::GemmEngine& engine) {
  if (hi - lo == 1) return embed(blocks[static_cast<std::size_t>(lo)], n);
  const index_t mid = lo + (hi - lo) / 2;
  MergedWy left = merge_range(blocks, lo, mid, n, engine);
  MergedWy right = merge_range(blocks, mid, hi, n, engine);

  const index_t kl = left.w.cols();
  const index_t kr = right.w.cols();
  MergedWy out;
  out.w = Matrix<float>(n, kl + kr);
  out.y = Matrix<float>(n, kl + kr);
  copy_matrix<float>(left.w.view(), out.w.sub(0, 0, n, kl));
  copy_matrix<float>(left.y.view(), out.y.sub(0, 0, n, kl));
  copy_matrix<float>(right.y.view(), out.y.sub(0, kl, n, kr));

  // W_right' = W_right - W_left (Y_left^T W_right): the "squeezed" GEMMs.
  Matrix<float> cross(kl, kr);
  engine.gemm(Trans::Yes, Trans::No, 1.0f, left.y.view(), right.w.view(), 0.0f, cross.view());
  auto wr = out.w.sub(0, kl, n, kr);
  copy_matrix<float>(right.w.view(), wr);
  engine.gemm(Trans::No, Trans::No, -1.0f, left.w.view(), cross.view(), 1.0f, wr);
  return out;
}

}  // namespace

void form_wy_product(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine,
                     Matrix<float>& w_out, Matrix<float>& y_out) {
  TCEVD_CHECK(!blocks.empty(), "form_wy_product needs at least one block");
  MergedWy merged = merge_range(blocks, 0, static_cast<index_t>(blocks.size()), n, engine);
  w_out = std::move(merged.w);
  y_out = std::move(merged.y);
}

Matrix<float> form_q(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine) {
  Matrix<float> q(n, n);
  set_identity(q.view());
  if (blocks.empty()) return q;
  Matrix<float> w, y;
  form_wy_product(blocks, n, engine, w, y);
  engine.gemm(Trans::No, Trans::Yes, -1.0f, w.view(), y.view(), 1.0f, q.view());
  return q;
}

void apply_wy_blocks_left(const std::vector<WyBlock>& blocks, tc::GemmEngine& engine,
                          MatrixView<float> x) {
  // Q X = Q_0 (Q_1 (... (Q_K X))): apply the last block's reflector first.
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const auto& blk = *it;
    const index_t rows = blk.w.rows();
    const index_t cols = blk.w.cols();
    TCEVD_CHECK(blk.row_offset + rows <= x.rows(), "apply_wy_blocks_left shape mismatch");
    auto xs = x.sub(blk.row_offset, 0, rows, x.cols());
    Matrix<float> t(cols, x.cols());
    engine.gemm(Trans::Yes, Trans::No, 1.0f, blk.y.view(), ConstMatrixView<float>(xs), 0.0f,
                t.view());
    engine.gemm(Trans::No, Trans::No, -1.0f, blk.w.view(), t.view(), 1.0f, xs);
  }
}

}  // namespace tcevd::sbr
