// Recursive W formation (paper Algorithm 2, "FormW").
//
// Each big block k of the WY-based SBR leaves a reflector pair
// Q_k = I - W_k Y_k^T. The overall transform is Q = Q_0 Q_1 ... Q_K, and two
// consecutive factors merge by the WY product rule
//
//   (I - Wa Ya^T)(I - Wb Yb^T) = I - [Wa | Wb - Wa (Ya^T Wb)] [Ya | Yb]^T.
//
// Merging pairwise in a binary tree (rather than folding blocks in one by
// one) turns the corrective GEMM Wa (Ya^T Wb) into large square-ish products
// — the same shape trick as the SBR itself; the paper measures ~25% faster
// back-transformation this way (320 ms vs 420 ms at n = 32768).
//
// The merge runs *in place* on the caller's output buffers: each subtree
// owns a column slice of (W, Y), leaves embed directly into their slice, and
// an internal node only needs the small kl x kr cross product from the
// arena. The GEMM stream (order and shapes) is identical to the textbook
// copy-based formulation — only the O(n k) intermediate copies are gone.
#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/sbr/sbr.hpp"

namespace tcevd::sbr {

namespace {

using blas::Trans;

/// Total reflector count in blocks[lo, hi).
index_t range_cols(const std::vector<WyBlock>& blocks, index_t lo, index_t hi) {
  index_t k = 0;
  for (index_t i = lo; i < hi; ++i) k += blocks[static_cast<std::size_t>(i)].w.cols();
  return k;
}

/// Merge blocks[lo, hi) into the n x k column slices `w`, `y` (binary
/// recursion, in place).
void merge_range(const std::vector<WyBlock>& blocks, index_t lo, index_t hi, Context& ctx,
                 MatrixView<float> w, MatrixView<float> y) {
  if (hi - lo == 1) {
    // Leaf: embed one block's (W, Y) into full n-row storage.
    const auto& blk = blocks[static_cast<std::size_t>(lo)];
    const index_t rows = blk.w.rows();
    const index_t cols = blk.w.cols();
    set_zero(w);
    set_zero(y);
    copy_matrix<float>(blk.w.view(), w.sub(blk.row_offset, 0, rows, cols));
    copy_matrix<float>(blk.y.view(), y.sub(blk.row_offset, 0, rows, cols));
    return;
  }
  const index_t n = w.rows();
  const index_t mid = lo + (hi - lo) / 2;
  const index_t kl = range_cols(blocks, lo, mid);
  const index_t kr = range_cols(blocks, mid, hi);
  auto wl = w.sub(0, 0, n, kl);
  auto yl = y.sub(0, 0, n, kl);
  auto wr = w.sub(0, kl, n, kr);
  auto yr = y.sub(0, kl, n, kr);
  merge_range(blocks, lo, mid, ctx, wl, yl);
  merge_range(blocks, mid, hi, ctx, wr, yr);

  // W_right' = W_right - W_left (Y_left^T W_right): the "squeezed" GEMMs.
  auto scope = ctx.workspace().scope();
  auto cross = scope.matrix<float>(kl, kr);
  ctx.gemm(Trans::Yes, Trans::No, 1.0f, yl, wr, 0.0f, cross);
  ctx.gemm(Trans::No, Trans::No, -1.0f, wl, cross, 1.0f, wr);
}

}  // namespace

void form_wy_product(const std::vector<WyBlock>& blocks, index_t n, Context& ctx,
                     Matrix<float>& w_out, Matrix<float>& y_out) {
  TCEVD_CHECK(!blocks.empty(), "form_wy_product needs at least one block");
  const index_t k = range_cols(blocks, 0, static_cast<index_t>(blocks.size()));
  w_out = Matrix<float>(n, k);
  y_out = Matrix<float>(n, k);
  merge_range(blocks, 0, static_cast<index_t>(blocks.size()), ctx, w_out.view(),
              y_out.view());
}

Matrix<float> form_q(const std::vector<WyBlock>& blocks, index_t n, Context& ctx) {
  Matrix<float> q(n, n);
  set_identity(q.view());
  if (blocks.empty()) return q;
  Matrix<float> w, y;
  form_wy_product(blocks, n, ctx, w, y);
  ctx.gemm(Trans::No, Trans::Yes, -1.0f, w.view(), y.view(), 1.0f, q.view());
  return q;
}

void apply_wy_blocks_left(const std::vector<WyBlock>& blocks, Context& ctx,
                          MatrixView<float> x) {
  // Q X = Q_0 (Q_1 (... (Q_K X))): apply the last block's reflector first.
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    const auto& blk = *it;
    const index_t rows = blk.w.rows();
    const index_t cols = blk.w.cols();
    TCEVD_CHECK(blk.row_offset + rows <= x.rows(), "apply_wy_blocks_left shape mismatch");
    auto xs = x.sub(blk.row_offset, 0, rows, x.cols());
    auto scope = ctx.workspace().scope();
    auto t = scope.matrix<float>(cols, x.cols());
    ctx.gemm(Trans::Yes, Trans::No, 1.0f, blk.y.view(), ConstMatrixView<float>(xs), 0.0f, t);
    ctx.gemm(Trans::No, Trans::No, -1.0f, blk.w.view(), t, 1.0f, xs);
  }
}

// ---------------------------------------------------------------------------
// Deprecated compatibility overloads: each routes through the per-thread
// scratch context of compat_context(engine), so repeat callers hit a warm
// arena instead of re-allocating per call.
// ---------------------------------------------------------------------------

void form_wy_product(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine,
                     Matrix<float>& w_out, Matrix<float>& y_out) {
  form_wy_product(blocks, n, compat_context(engine), w_out, y_out);
}

Matrix<float> form_q(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine) {
  return form_q(blocks, n, compat_context(engine));
}

void apply_wy_blocks_left(const std::vector<WyBlock>& blocks, tc::GemmEngine& engine,
                          MatrixView<float> x) {
  apply_wy_blocks_left(blocks, compat_context(engine), x);
}

}  // namespace tcevd::sbr
