#include <vector>

#include "src/lapack/qr.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tsqr/reconstruct_wy.hpp"
#include "src/tsqr/tsqr.hpp"

namespace tcevd::sbr {

void panel_factor_wy(PanelKind kind, MatrixView<float> panel, MatrixView<float> w,
                     MatrixView<float> y) {
  const index_t m = panel.rows();
  const index_t k = panel.cols();
  TCEVD_CHECK(w.rows() == m && w.cols() == k && y.rows() == m && y.cols() == k,
              "panel_factor_wy W/Y shape mismatch");

  if (kind == PanelKind::Tsqr && m >= k) {
    // TSQR gives an explicit Q; the signed-LU reconstruction recovers the
    // WY form, and the sign matrix is folded into R (panel Sec. 5.2).
    Matrix<float> q(m, k), r(k, k);
    tsqr::tsqr_factor(panel, q.view(), r.view());
    std::vector<float> signs;
    tsqr::reconstruct_wy(q.view(), w, y, signs);
    for (index_t j = 0; j < k; ++j)
      for (index_t i = 0; i < m; ++i)
        panel(i, j) = (i <= j) ? signs[static_cast<std::size_t>(i)] * r(i, j) : 0.0f;
    return;
  }

  // Blocked Householder QR path (also the fallback for short panels where
  // TSQR's m >= k precondition fails).
  Matrix<float> work(m, k);
  copy_matrix<float>(panel, work.view());
  std::vector<float> tau;
  lapack::geqrf(work.view(), tau, std::min<index_t>(k, 32));
  const index_t nref = static_cast<index_t>(tau.size());
  if (nref == k) {
    lapack::build_wy<float>(work.view(), tau, w, y);
  } else {
    // m < k: only m reflectors exist; pad W/Y with zero columns (those
    // columns of the panel are already upper trapezoidal).
    set_zero(w);
    set_zero(y);
    auto ws = w.sub(0, 0, m, nref);
    auto ys = y.sub(0, 0, m, nref);
    lapack::build_wy<float>(work.view(), tau, ws, ys);
  }
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) panel(i, j) = (i <= j) ? work(i, j) : 0.0f;
}

}  // namespace tcevd::sbr
