#include <cmath>
#include <limits>
#include <vector>

#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/recovery.hpp"
#include "src/common/workspace.hpp"
#include "src/lapack/qr.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tsqr/reconstruct_wy.hpp"
#include "src/tsqr/tsqr.hpp"

namespace tcevd::sbr {

namespace {

bool all_finite(ConstMatrixView<float> m) {
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

/// TSQR + signed-LU Householder reconstruction (paper Sec. 5.1/5.2). The
/// panel is only overwritten on success, so a failure leaves it intact for
/// the blocked-QR retry.
Status tsqr_panel(Workspace& arena, MatrixView<float> panel, MatrixView<float> w,
                  MatrixView<float> y) {
  const index_t m = panel.rows();
  const index_t k = panel.cols();
  auto scope = arena.scope();
  auto q = scope.matrix<float>(m, k);
  auto r = scope.matrix<float>(k, k);
  TCEVD_RETURN_IF_ERROR(tsqr::tsqr_factor(arena, panel, q, r));
  std::vector<float> signs;
  TCEVD_RETURN_IF_ERROR(tsqr::reconstruct_wy(arena, ConstMatrixView<float>(q), w, y, signs));
  if (fault::should_fire(fault::Site::PanelNan))
    w(0, 0) = std::numeric_limits<float>::quiet_NaN();
  if (!all_finite(w) || !all_finite(y))
    return precision_loss_error("panel_factor_wy: non-finite W/Y from TSQR reconstruction");
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i)
      panel(i, j) = (i <= j) ? signs[static_cast<std::size_t>(i)] * r(i, j) : 0.0f;
  return ok_status();
}

/// Blocked Householder QR path (also the fallback for short panels where
/// TSQR's m >= k precondition fails, and the recovery path when TSQR
/// reconstruction degrades).
Status blocked_qr_panel(Workspace& arena, MatrixView<float> panel, MatrixView<float> w,
                        MatrixView<float> y) {
  const index_t m = panel.rows();
  const index_t k = panel.cols();
  if (!all_finite(panel))
    return invalid_input_error("panel_factor_wy: non-finite entry in input panel");
  auto scope = arena.scope();
  auto work = scope.matrix<float>(m, k);
  copy_matrix<float>(panel, work);
  std::vector<float> tau;
  lapack::geqrf(work, tau, std::min<index_t>(k, 32));
  const index_t nref = static_cast<index_t>(tau.size());
  if (nref == k) {
    lapack::build_wy<float>(work, tau, w, y);
  } else {
    // m < k: only m reflectors exist; pad W/Y with zero columns (those
    // columns of the panel are already upper trapezoidal).
    set_zero(w);
    set_zero(y);
    auto ws = w.sub(0, 0, m, nref);
    auto ys = y.sub(0, 0, m, nref);
    lapack::build_wy<float>(work, tau, ws, ys);
  }
  if (!all_finite(w) || !all_finite(y))
    return precision_loss_error("panel_factor_wy: non-finite W/Y from blocked Householder QR");
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) panel(i, j) = (i <= j) ? work(i, j) : 0.0f;
  return ok_status();
}

Status panel_factor_impl(Workspace& arena, PanelKind kind, MatrixView<float> panel,
                         MatrixView<float> w, MatrixView<float> y) {
  const index_t m = panel.rows();
  const index_t k = panel.cols();
  TCEVD_CHECK(w.rows() == m && w.cols() == k && y.rows() == m && y.cols() == k,
              "panel_factor_wy W/Y shape mismatch");

  if (kind == PanelKind::Tsqr && m >= k) {
    Status st = tsqr_panel(arena, panel, w, y);
    if (st.ok()) return st;
    if (!is_recoverable(st)) return st;
    // Graceful degradation: the TSQR/reconstruction path lost the panel but
    // did not touch it, so the slower-but-sturdier blocked Householder QR can
    // redo the factorization from the original data.
    recovery::note("sbr.panel",
                   "TSQR reconstruction failed (" + st.to_string() +
                       "); retried panel with blocked Householder QR");
    set_zero(w);
    set_zero(y);
  }
  return blocked_qr_panel(arena, panel, w, y);
}

}  // namespace

Status panel_factor_wy(Context& ctx, PanelKind kind, MatrixView<float> panel,
                       MatrixView<float> w, MatrixView<float> y) {
  return panel_factor_impl(ctx.workspace(), kind, panel, w, y);
}

// Deprecated compatibility overload: per-thread scratch arena, warm after the
// first call (the engine-keyed compat_context does not apply — this path
// never touches a GemmEngine).
Status panel_factor_wy(PanelKind kind, MatrixView<float> panel, MatrixView<float> w,
                       MatrixView<float> y) {
  thread_local Workspace arena;
  return panel_factor_impl(arena, kind, panel, w, y);
}

}  // namespace tcevd::sbr
