// Successive Band Reduction (the paper's core subject).
//
// Both variants reduce a dense symmetric A to a symmetric band matrix B of
// bandwidth `bandwidth` via an orthogonal similarity  B = Q^T A Q:
//
//   * sbr_zy — the conventional algorithm (LAPACK/MAGMA `sytrd_sy2sb`
//     lineage): after each b-column panel QR, the whole trailing matrix is
//     updated with the rank-2b ZY form  A <- A - Y Z^T - Z Y^T. Every GEMM
//     has inner dimension b (tall-and-skinny), the shape Tensor Cores run
//     worst (paper Table 1).
//
//   * sbr_wy — the paper's Algorithm 1: panels inside a big block of `nb`
//     columns update only the *next* panel, against the block-entry copy OA
//     of the trailing matrix, using the accumulated multiplicative form
//     GA = (I - W Y^T)^T OA (I - W Y^T); the full trailing matrix is updated
//     once per big block and the routine recurses. More flops (Table 2) but
//     near-square GEMMs (inner dimension grows to nb) that Tensor Cores run
//     near peak.
//
//   * sbr_dbr — Detached Band Reduction (Wang et al., arXiv 2410.02170, the
//     follow-up to the source paper): same chained sub-panel factorization
//     and nb-wide (W, Y) accumulation as sbr_wy, but with bandwidth b fully
//     decoupled from nb (b <= nb, nb/b sub-panels per big block) and the
//     once-per-block trailing update rewritten as a symmetric rank-2k with
//     inner dimension nb:  GA = OA - Y Z^T - Z Y^T,  Z = OA W - (1/2) Y S,
//     S = W^T OA W. Stage one keeps its near-square k = nb GEMMs while
//     stage two (bulge chasing) receives a cheap narrow band. With b == nb
//     sbr_dbr runs the sbr_wy code path verbatim (bitwise identical output).
//
// All level-3 updates go through the Context's GemmEngine, so the same code
// runs in fp32, emulated-Tensor-Core, or error-corrected TC numerics, and
// shape recording on the context's telemetry sink captures exactly the GEMM
// mix each algorithm generates. Panels are factored in fp32 (TSQR +
// Householder reconstruction, or blocked Householder QR), as on the real GPU
// where only the GEMMs ran on Tensor Cores. Every scratch buffer (the OA
// copy, the P = OA*W cache, panel W/Y, merge buffers) is checked out of the
// context's workspace arena — size it with workspace_query for an
// allocation-free steady state.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"
#include "src/tensorcore/engine.hpp"

namespace tcevd {
class Context;
}  // namespace tcevd

namespace tcevd::sbr {

enum class PanelKind {
  Tsqr,       ///< TSQR + LU-based Householder reconstruction (paper Sec. 5.1/5.2)
  BlockedQr,  ///< blocked Householder QR (the cuSOLVER-panel stand-in)
};

struct SbrOptions {
  /// b: output band half-width. Validated (not clamped): 1 <= b < n.
  index_t bandwidth = 32;
  /// nb: WY/DBR accumulation blocksize. Independent of `bandwidth`, but must
  /// satisfy nb >= b — smaller values are rejected with InvalidArgument by
  /// validate_options (no silent mutation). A non-multiple of b is rounded
  /// down to one, noted on the ambient recovery scope (site "sbr.options").
  index_t big_block = 128;
  PanelKind panel = PanelKind::Tsqr;
  bool accumulate_q = false;       ///< form the explicit n x n Q
  bool zy_use_syr2k = false;       ///< ZY only: use fp32 syr2k for the rank-2b
                                   ///< update (the non-Tensor-Core MAGMA path)
                                   ///< instead of two engine GEMMs
  /// ZY only: use the Tensor-Core-native symmetric rank-2k kernel
  /// (tc::tc_syr2k — the paper's first future-work item) for the trailing
  /// update when the engine is a TcEngine. Halves the trailing-update work
  /// vs the two-GEMM form. Ignored for non-TC engines.
  bool zy_use_tc_syr2k = false;
  /// WY only. false = literal paper Algorithm 1: recompute OA*W with the full
  /// accumulated W in every inner iteration (flops grow ~quadratically in
  /// nb — with that accounting WY can never beat ZY, so the paper's
  /// implementation cannot be doing it). true (default) = cache P = OA*W and
  /// extend it incrementally per panel: mathematically identical, and its
  /// flop count brackets the paper's Table 2 from below while the literal
  /// form brackets it from above. See EXPERIMENTS.md.
  bool wy_cache_oa_product = true;
  /// DBR only: run the detached trailing update A <- A - Y Z^T - Z Y^T
  /// through the Tensor-Core-native symmetric rank-2k kernel (tc::tc_syr2k)
  /// when the engine is a TcEngine — half the tile work of the two-GEMM
  /// form. Ignored for non-TC engines and when b == nb (where the trailing
  /// update is the multiplicative sbr_wy form).
  bool dbr_use_tc_syr2k = false;
  /// WY only: left-looking look-ahead. The post-block trailing update is
  /// split so the next block's first-panel columns are updated first; that
  /// panel is then factored (TSQR + WY reconstruction) on the context's
  /// look-ahead sibling while the remainder of the trailing update runs
  /// concurrently on the shared overlap pool, removing the pipeline bubble
  /// between consecutive big blocks. Same reflectors, different schedule:
  /// the banded output matches the lookahead=false band to fp32 roundoff
  /// (bitwise on column-independent engines), and lookahead=false remains
  /// bitwise identical to the pre-look-ahead code. See DESIGN.md §10.
  bool lookahead = false;
};

/// One accumulated block reflector I - W Y^T whose row support starts at
/// `row_offset` (global indexing); produced per big block by sbr_wy.
struct WyBlock {
  Matrix<float> w;
  Matrix<float> y;
  index_t row_offset = 0;
};

struct SbrResult {
  Matrix<float> band;          ///< n x n symmetric band matrix B
  Matrix<float> q;             ///< n x n orthogonal Q (empty unless requested)
  std::vector<WyBlock> blocks; ///< WY blocks (sbr_wy only; for FormW / tests)
};

/// Conventional ZY-based SBR (baseline). Panel failures that survive the
/// internal TSQR -> BlockedQr fallback propagate as a non-ok Status.
StatusOr<SbrResult> sbr_zy(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt);

/// WY-based recursive SBR (paper Algorithm 1).
StatusOr<SbrResult> sbr_wy(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt);

/// Detached Band Reduction: reduce to bandwidth b while accumulating W/Y
/// over nb >= b columns; the per-block trailing update is the detached
/// symmetric rank-2k form with inner dimension nb (see the header comment).
/// Stage telemetry lands under "sbr.dbr" / "sbr.dbr.trailing". With b == nb
/// the output is bitwise identical to sbr_wy (same code path). Look-ahead is
/// not supported for b < nb: the request is noted at recovery site "sbr.dbr"
/// and the block schedule runs serial.
StatusOr<SbrResult> sbr_dbr(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt);

/// Validate and normalize caller options against problem size n: rejects
/// bandwidth outside [1, n) and big_block < bandwidth with InvalidArgument;
/// rounds a big_block that is not a multiple of bandwidth down to one,
/// noting the adjustment on the ambient recovery scope (site "sbr.options").
/// Every SBR entry point runs its options through this — callers that want
/// to fail fast can call it themselves.
StatusOr<SbrOptions> validate_options(const SbrOptions& opt, index_t n);

/// Peak workspace-arena bytes one sbr_wy/sbr_zy/sbr_dbr call of size n needs
/// (LAPACK-lwork style, conservative). Reserve it on the context's arena —
/// `ctx.workspace().reserve(workspace_query(n, opt))` — to make every solve
/// after the first allocation-free; the drivers also reserve it themselves
/// on entry. The bound covers the split trailing update too, so it is
/// unchanged by `opt.lookahead` (the overlapped panel draws from the
/// sibling arena sized by lookahead_workspace_query below).
std::size_t workspace_query(index_t n, const SbrOptions& opt);

/// Peak bytes the look-ahead *sibling* arena needs: the doubled W/Y panel
/// checkout (the prefactored next-panel reflectors held across the block
/// boundary on top of the panel factorization's own W/Y scratch) plus TSQR
/// tree buffers. Zero when `opt.lookahead` is false. sbr_wy reserves this on
/// `ctx.lookahead_sibling()` itself on entry; exposed for callers that want
/// to pre-warm the sibling arena.
std::size_t lookahead_workspace_query(index_t n, const SbrOptions& opt);

/// Factor `panel` (m x k, m >= 2) into (I - W Y^T) [R; 0]; writes [R; 0]
/// back into `panel` and fills w, y (m x k). Shared by both SBR variants and
/// benchmarked on its own for paper Figure 8. QR scratch comes from the
/// context's workspace arena.
///
/// The TSQR path degrades gracefully: if TSQR or the WY reconstruction
/// reports a recoverable failure (singular reconstruction LU, injected
/// fault, non-finite panel output), the routine retries with blocked
/// Householder QR and notes the event in the ambient recovery scope. A
/// failure of the blocked path itself (non-finite input) is terminal.
Status panel_factor_wy(Context& ctx, PanelKind kind, MatrixView<float> panel,
                       MatrixView<float> w, MatrixView<float> y);

/// Merge the per-block reflectors into one (W, Y) pair with n rows so that
/// Q = I - W Y^T equals the product of all blocks, using the recursive
/// pairwise scheme of paper Algorithm 2 ("FormW"). GEMMs go through the
/// context's engine; the merge runs in place on the output buffers (only
/// the small cross products are arena scratch). Used for the eigenvector
/// back-transformation.
void form_wy_product(const std::vector<WyBlock>& blocks, index_t n, Context& ctx,
                     Matrix<float>& w_out, Matrix<float>& y_out);

/// Explicit Q = I - W Y^T from the merged representation.
Matrix<float> form_q(const std::vector<WyBlock>& blocks, index_t n, Context& ctx);

/// Apply Q = prod_k (I - W_k Y_k^T) to X from the left (X <- Q X) without
/// ever forming Q — the memory-lean way to back-transform a block of
/// eigenvectors (n x nev GEMMs instead of an n x n Q).
void apply_wy_blocks_left(const std::vector<WyBlock>& blocks, Context& ctx,
                          MatrixView<float> x);

// ---------------------------------------------------------------------------
// Deprecated compatibility overloads: each routes through the per-thread
// scratch Context of `compat_context(engine)` (warm arena after the first
// call, telemetry accumulated on the scratch context), so legacy callers
// keep working — and stop re-allocating per call — while they migrate. New
// code should construct a Context. See DESIGN.md §8.
// ---------------------------------------------------------------------------

StatusOr<SbrResult> sbr_zy(ConstMatrixView<float> a, tc::GemmEngine& engine,
                           const SbrOptions& opt);
StatusOr<SbrResult> sbr_wy(ConstMatrixView<float> a, tc::GemmEngine& engine,
                           const SbrOptions& opt);
StatusOr<SbrResult> sbr_dbr(ConstMatrixView<float> a, tc::GemmEngine& engine,
                            const SbrOptions& opt);
Status panel_factor_wy(PanelKind kind, MatrixView<float> panel, MatrixView<float> w,
                       MatrixView<float> y);
void form_wy_product(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine,
                     Matrix<float>& w_out, Matrix<float>& y_out);
Matrix<float> form_q(const std::vector<WyBlock>& blocks, index_t n, tc::GemmEngine& engine);
void apply_wy_blocks_left(const std::vector<WyBlock>& blocks, tc::GemmEngine& engine,
                          MatrixView<float> x);

}  // namespace tcevd::sbr
