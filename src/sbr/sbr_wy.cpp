// WY-based recursive successive band reduction (paper Algorithm 1).
//
// Within a big block of nb columns the trailing matrix is *never* updated in
// place. Instead the block keeps the entry-time copy OA of the trailing
// matrix together with the accumulated reflectors (W, Y) — the invariant is
//
//   A_current(b:, b:) = (I - W Y^T)^T * OA * (I - W Y^T)
//
// (active-block indexing; reflector support starts at row b). Producing the
// next b-column panel, or the post-block full trailing update, is then a
// restriction of that identity to the needed rows/columns:
//
//   right:  M  = OA(:, C) - (OA W) Y(C, :)^T        <- the big near-square GEMM
//   left:   GA = M(R, :)  - Y(R, :) (W^T M)
//
// The OA*W product is recomputed with the full accumulated W each panel —
// this is the deliberate arithmetic overhead of Table 2 that buys GEMM
// shapes with inner dimension up to nb. Appending a panel's reflectors uses
// the WY update rule W <- [W | w - W (Y^T w)].
//
// All scratch (OA, W, Y, the P = OA*W cache, per-panel buffers) is checked
// out of the context's workspace arena: the outer scope lives for one big
// block, a nested scope per panel iteration. A steady-state caller therefore
// performs zero heap allocations here once the arena is warm.
//
// Look-ahead (SbrOptions::lookahead): the serial schedule leaves block i+1's
// first panel factorization stalled behind block i's full trailing update —
// the classic pipeline bubble left-looking look-ahead removes. Because every
// trailing column is an independent restriction of the block invariant, the
// update splits by columns with no change in the computed values: the first
// b trailing columns (the next panel's support) are produced eagerly on the
// calling thread, then the next panel is factored against the context's
// look-ahead sibling (private arena + telemetry) while the remaining
// trailing columns drain on a pool worker that touches only the *main*
// context. The prefactored reflectors are merged into block i+1's W/Y
// accumulation when its iteration begins. Same reflectors, different
// schedule; see DESIGN.md §10 for the arena-ownership rules.
#include <optional>
#include <string>

#include "src/blas/blas.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/common/context.hpp"
#include "src/common/recovery.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sbr/sbr.hpp"
#include "src/sbr/wy_block.hpp"
#include "src/tensorcore/tc_syr2k.hpp"

namespace tcevd::sbr {

using blas::Trans;

StatusOr<SbrOptions> validate_options(const SbrOptions& opt, index_t n) {
  SbrOptions v = opt;
  if (v.bandwidth < 1 || v.bandwidth >= n)
    return invalid_argument_error("sbr: bandwidth must satisfy 1 <= b < n (b = " +
                                  std::to_string(v.bandwidth) + ", n = " +
                                  std::to_string(n) + ")");
  if (v.big_block < v.bandwidth)
    return invalid_argument_error("sbr: big_block (nb = " + std::to_string(v.big_block) +
                                  ") must be >= bandwidth (b = " +
                                  std::to_string(v.bandwidth) + ")");
  if (v.big_block % v.bandwidth != 0) {
    const index_t rounded = v.big_block - v.big_block % v.bandwidth;
    recovery::note("sbr.options", "big_block " + std::to_string(v.big_block) +
                                      " is not a multiple of bandwidth " +
                                      std::to_string(v.bandwidth) + "; rounding down to " +
                                      std::to_string(rounded));
    v.big_block = rounded;
  }
  return v;
}

namespace detail {

/// Process the big block starting at global offset s; returns the number of
/// columns reduced (0 when the active matrix is already banded).
StatusOr<index_t> process_wy_block(WyBlockParams& prm, index_t s, LookaheadPanel& la) {
  const index_t na = prm.n - s;  // active size
  const index_t b = prm.b;
  if (na - b < 2) return index_t{0};

  Context& ctx = *prm.ctx;
  Workspace& ws = ctx.workspace();
  auto A = prm.A;

  auto block_scope = ws.scope();

  // OA: copy of the active trailing matrix (rows/cols [s+b, n)).
  const index_t mt = na - b;  // reflector row support
  auto oa = block_scope.matrix<float>(mt, mt);
  copy_matrix<float>(A.sub(s + b, s + b, mt, mt), oa);

  const index_t max_cols = std::min(prm.nb, na);
  auto W = block_scope.matrix<float>(mt, max_cols);
  auto Y = block_scope.matrix<float>(mt, max_cols);
  MatrixView<float> P;  // cached OA*W, extended per panel (cache_oa mode only)
  if (prm.cache_oa) P = block_scope.matrix<float>(mt, max_cols);

  index_t cols_done = 0;
  for (index_t p = 0;; ++p) {
    const index_t c = p * b;                 // active column offset of this panel
    if (c >= prm.nb || na - c - b < 2) break;
    const index_t m = na - c - b;            // panel rows

    auto panel_scope = ws.scope();

    if (p > 0) {
      // Materialize the current values of columns C = [c, c+b), rows
      // [c, na) from OA and the accumulated (W, Y).
      const index_t pb = c;  // accumulated reflector count
      auto Wv = W.sub(0, 0, mt, pb);

      // P = OA * W: either the literal Algorithm-1 recompute with the full
      // accumulated W (the big near-square GEMM) or the maintained cache.
      ConstMatrixView<float> big_v;
      if (prm.cache_oa) {
        big_v = P.sub(0, 0, mt, pb);
      } else {
        auto big = panel_scope.matrix<float>(mt, pb);
        ctx.gemm(Trans::No, Trans::No, 1.0f, oa, Wv, 0.0f, big);
        big_v = big;
      }

      // M = OA(:, C') - P * Y(C', :)^T with C' = [c-b, c) in OA coordinates.
      auto mcol = panel_scope.matrix<float>(mt, b);
      copy_matrix<float>(oa.sub(0, c - b, mt, b), mcol);
      ctx.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
               ConstMatrixView<float>(Y.sub(c - b, 0, b, pb)), 1.0f, mcol);

      // GA = M(R', :) - Y(R', :) (W^T M) with R' = [c-b, mt) in OA coords
      // (global rows [s+c, n)), which includes the b x b diagonal block.
      auto wtm = panel_scope.matrix<float>(pb, b);
      ctx.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol, 0.0f, wtm);
      const index_t rrows = mt - (c - b);
      auto ga = panel_scope.matrix<float>(rrows, b);
      copy_matrix<float>(mcol.sub(c - b, 0, rrows, b), ga);
      ctx.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(Y.sub(c - b, 0, rrows, pb)),
               wtm, 1.0f, ga);

      // Write back: global rows [s+c, n) x cols [s+c, s+c+b), plus mirror.
      copy_matrix<float>(ConstMatrixView<float>(ga), A.sub(s + c, s + c, rrows, b));
      for (index_t j = 0; j < b; ++j)
        for (index_t r = 0; r < rrows; ++r) A(s + c + j, s + c + r) = A(s + c + r, s + c + j);
    }

    // Panel QR: global rows [s+c+b, n) x cols [s+c, s+c+b). When the panel
    // was prefactored during the previous block's overlap window, A already
    // holds [R; 0] and the reflectors come from the sibling arena; only the
    // band-column mirror (deferred past the join) remains.
    const bool prefactored = (p == 0) && la.valid && la.owner == s;
    MatrixView<float> w, y;
    if (prefactored) {
      w = la.w;
      y = la.y;
    } else {
      auto panel = A.sub(s + c + b, s + c, m, b);
      w = panel_scope.matrix<float>(m, b);
      y = panel_scope.matrix<float>(m, b);
      TCEVD_RETURN_IF_ERROR(panel_factor_wy(ctx, prm.panel_kind, panel, w, y));
    }
    for (index_t j = 0; j < b; ++j)  // mirror the finalized band columns
      for (index_t r = 0; r < m; ++r) A(s + c + j, s + c + b + r) = A(s + c + b + r, s + c + j);

    // Append to the accumulated representation. The new reflectors live on
    // buffer rows [c, mt) (active rows [c+b, na)).
    auto ycol = Y.sub(0, c, mt, b);
    set_zero(ycol);
    copy_matrix<float>(ConstMatrixView<float>(y), Y.sub(c, c, m, b));

    auto wcol = W.sub(0, c, mt, b);
    set_zero(wcol);
    copy_matrix<float>(ConstMatrixView<float>(w), W.sub(c, c, m, b));
    if (prefactored) la.drop();  // reflectors copied out; release the sibling scope
    if (c > 0) {
      // w' = w - W (Y^T w).
      auto ytw = panel_scope.matrix<float>(c, b);
      ctx.gemm(Trans::Yes, Trans::No, 1.0f, ConstMatrixView<float>(Y.sub(c, 0, m, c)),
               ConstMatrixView<float>(W.sub(c, c, m, b)), 0.0f, ytw);
      ctx.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(W.sub(0, 0, mt, c)),
               ytw, 1.0f, wcol);
    }
    if (prm.cache_oa) {
      // Extend the cache: P(:, c:c+b) = OA * w'.
      ctx.gemm(Trans::No, Trans::No, 1.0f, oa, ConstMatrixView<float>(wcol), 0.0f,
               P.sub(0, c, mt, b));
    }

    cols_done = c + b;
  }

  if (cols_done == 0) return index_t{0};

  // Full trailing update: rows/cols [cols_done, na) — OA coords [cols_done-b, mt).
  const index_t t0 = cols_done - b;  // OA-coordinate offset
  const index_t tw = mt - t0;        // trailing width
  // Look-ahead fires only when a next block will actually run: its first
  // panel has next_rows = tw - b reflector rows and process_block requires
  // at least 2 of them.
  const index_t next_rows = tw - b;
  const bool overlap = prm.trailing == TrailingKind::Multiplicative && prm.lookahead &&
                       tw > 0 && next_rows >= 2;
  if (tw > 0) {
    std::optional<StageTimer> trail_timer;
    if (prm.trailing_stage != nullptr)
      trail_timer.emplace(ctx.telemetry(), prm.trailing_stage);
    auto trail_scope = ws.scope();
    auto Wv = W.sub(0, 0, mt, cols_done);

    ConstMatrixView<float> big_v;
    if (prm.cache_oa) {
      big_v = P.sub(0, 0, mt, cols_done);
    } else {
      auto big = trail_scope.matrix<float>(mt, cols_done);
      ctx.gemm(Trans::No, Trans::No, 1.0f, oa, Wv, 0.0f, big);
      big_v = big;
    }

    if (prm.trailing == TrailingKind::DetachedSyr2k) {
      // Detached rank-2k form (DBR): with P = OA W the block invariant
      // expands to GA = OA - Y Z^T - Z Y^T where S = W^T P (symmetric) and
      // Z = P - (1/2) Y S; restricted to the trailing rows/cols [t0, mt)
      // only Z's trailing rows are needed. Both update GEMMs carry inner
      // dimension cols_done (= nb on every full block) — the near-square
      // syr2k shape DBR exists to produce.
      const auto yt = ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done));
      auto smat = trail_scope.matrix<float>(cols_done, cols_done);
      ctx.gemm(Trans::Yes, Trans::No, 1.0f, Wv, big_v, 0.0f, smat);
      auto z = trail_scope.matrix<float>(tw, cols_done);
      copy_matrix<float>(big_v.sub(t0, 0, tw, cols_done), z);
      ctx.gemm(Trans::No, Trans::No, -0.5f, yt, ConstMatrixView<float>(smat), 1.0f, z);

      auto a22 = A.sub(s + cols_done, s + cols_done, tw, tw);
      copy_matrix<float>(oa.sub(t0, t0, tw, tw), a22);
      auto* tc_engine = dynamic_cast<tc::TcEngine*>(&ctx.engine());
      if (prm.use_tc_syr2k && tc_engine != nullptr) {
        tc::tc_syr2k(blas::Uplo::Lower, -1.0f, yt, ConstMatrixView<float>(z), 1.0f, a22,
                     tc_engine->precision());
        symmetrize_from_lower<float>(a22);
      } else {
        ctx.gemm(Trans::No, Trans::Yes, -1.0f, yt, ConstMatrixView<float>(z), 1.0f, a22);
        ctx.gemm(Trans::No, Trans::Yes, -1.0f, ConstMatrixView<float>(z), yt, 1.0f, a22);
      }
    } else if (!overlap) {
      auto mcol = trail_scope.matrix<float>(mt, tw);
      copy_matrix<float>(oa.sub(0, t0, mt, tw), mcol);
      ctx.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
               ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)), 1.0f, mcol);

      auto wtm = trail_scope.matrix<float>(cols_done, tw);
      ctx.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol, 0.0f, wtm);
      auto ga = trail_scope.matrix<float>(tw, tw);
      copy_matrix<float>(mcol.sub(t0, 0, tw, tw), ga);
      ctx.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)),
               wtm, 1.0f, ga);

      copy_matrix<float>(ConstMatrixView<float>(ga),
                         A.sub(s + cols_done, s + cols_done, tw, tw));
    } else {
      // --- look-ahead schedule -------------------------------------------
      // Every trailing column j is M(:, j) = OA(:, t0+j) - P Y(t0+j, :)^T
      // followed by the left restriction — column-independent, so the split
      // below computes exactly the values of the unsplit update.
      //
      // (1) First b columns now, on this thread: the next panel's support.
      {
        auto pre_scope = ws.scope();
        auto mcol = pre_scope.matrix<float>(mt, b);
        copy_matrix<float>(oa.sub(0, t0, mt, b), mcol);
        ctx.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
                 ConstMatrixView<float>(Y.sub(t0, 0, b, cols_done)), 1.0f, mcol);
        auto wtm = pre_scope.matrix<float>(cols_done, b);
        ctx.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol, 0.0f, wtm);
        auto ga = pre_scope.matrix<float>(tw, b);
        copy_matrix<float>(mcol.sub(t0, 0, tw, b), ga);
        ctx.gemm(Trans::No, Trans::No, -1.0f,
                 ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)), wtm, 1.0f, ga);
        copy_matrix<float>(ConstMatrixView<float>(ga),
                           A.sub(s + cols_done, s + cols_done, tw, b));
      }

      // (2) Remainder scratch checked out *before* the worker starts: during
      // the overlap window the worker must never touch this arena's bump
      // pointer (it only fills buffers the caller handed it).
      const index_t tw2 = tw - b;
      auto mcol2 = trail_scope.matrix<float>(mt, tw2);
      auto wtm2 = trail_scope.matrix<float>(cols_done, tw2);
      auto ga2 = trail_scope.matrix<float>(tw, tw2);

      // (3) Overlap: the trailing remainder drains on a pool worker through
      // the MAIN context (arena untouched, telemetry exclusively its own for
      // the window) while this thread factors block i+1's first panel
      // against the SIBLING context. Worker-side recovery notes land in a
      // local scope and are re-homed onto this thread's ambient scope after
      // the join (recovery scopes are thread-local).
      Context& sib = ctx.lookahead_sibling();
      la.scope.emplace(sib.workspace());
      la.w = la.scope->matrix<float>(next_rows, b);
      la.y = la.scope->matrix<float>(next_rows, b);
      Status panel_st = ok_status();
      RecoveryLog trailing_log;
      StageTimer overlap_timer(ctx.telemetry(), "sbr.wy.lookahead");
      overlap_pool().run_pair(
          [&] {  // pool worker: trailing-update remainder
            recovery::Scope worker_scope;
            StageTimer t(ctx.telemetry(), "sbr.wy.trailing");
            copy_matrix<float>(oa.sub(0, t0 + b, mt, tw2), mcol2);
            ctx.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
                     ConstMatrixView<float>(Y.sub(t0 + b, 0, tw2, cols_done)), 1.0f, mcol2);
            ctx.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol2, 0.0f, wtm2);
            copy_matrix<float>(mcol2.sub(t0, 0, tw, tw2), ga2);
            ctx.gemm(Trans::No, Trans::No, -1.0f,
                     ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)), wtm2, 1.0f, ga2);
            copy_matrix<float>(ConstMatrixView<float>(ga2),
                               A.sub(s + cols_done, s + cols_done + b, tw, tw2));
            trailing_log = worker_scope.take();
          },
          [&] {  // calling thread: next block's first panel, sibling arena
            // GEMM-level threads stand down for the overlap window: the
            // worker half's GEMMs already run serial (pool-worker guard), and
            // this scope keeps the panel's GEMMs off gemm_pool() too so the
            // pair never competes with itself for the machine.
            blas::SerialGemmScope serial_gemms;
            StageTimer t(sib.telemetry(), "sbr.wy.lookahead.panel");
            auto panel = A.sub(s + cols_done + b, s + cols_done, next_rows, b);
            panel_st = panel_factor_wy(sib, prm.panel_kind, panel, la.w, la.y);
          });
      overlap_timer.stop();
      for (const RecoveryEvent& ev : trailing_log) recovery::note(ev.site, ev.action);
      if (!panel_st.ok()) {
        la.drop();
        return panel_st;
      }
      la.owner = s + cols_done;
      la.valid = true;
    }
  }

  if (prm.blocks) {
    WyBlock blk;
    blk.w = Matrix<float>(mt, cols_done);
    blk.y = Matrix<float>(mt, cols_done);
    copy_matrix<float>(ConstMatrixView<float>(W.sub(0, 0, mt, cols_done)), blk.w.view());
    copy_matrix<float>(ConstMatrixView<float>(Y.sub(0, 0, mt, cols_done)), blk.y.view());
    blk.row_offset = s + b;
    prm.blocks->push_back(std::move(blk));
  }

  return cols_done;
}

}  // namespace detail

namespace {

/// Shared driver loop of sbr_wy / sbr_dbr: run process_wy_block over the
/// recursion, absorb look-ahead telemetry, form Q on request.
StatusOr<SbrResult> run_wy_blocks(ConstMatrixView<float> a, Context& ctx,
                                  const SbrOptions& opt, index_t nb,
                                  detail::TrailingKind trailing, bool lookahead,
                                  const char* trailing_stage) {
  const index_t n = a.rows();
  SbrResult result;
  result.band = Matrix<float>(n, n);
  copy_matrix(a, result.band.view());

  detail::WyBlockParams prm;
  prm.A = result.band.view();
  prm.n = n;
  prm.b = opt.bandwidth;
  prm.nb = nb;
  prm.ctx = &ctx;
  prm.panel_kind = opt.panel;
  prm.blocks = &result.blocks;
  prm.cache_oa = opt.wy_cache_oa_product;
  prm.lookahead = lookahead;
  prm.trailing = trailing;
  prm.use_tc_syr2k = opt.dbr_use_tc_syr2k;
  prm.trailing_stage = trailing_stage;

  {
    detail::LookaheadPanel la;  // prefactored panel carried across block boundaries
    index_t s = 0;
    for (;;) {
      StatusOr<index_t> done = detail::process_wy_block(prm, s, la);
      if (!done.ok()) return done.status();
      if (*done == 0) break;
      s += *done;
    }
  }
  if (ctx.has_lookahead_sibling()) ctx.absorb_sibling_telemetry();

  if (opt.accumulate_q) {
    result.q = form_q(result.blocks, n, ctx);
  }
  return result;
}

}  // namespace

StatusOr<SbrResult> sbr_wy(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sbr_wy requires a square symmetric matrix");
  StatusOr<SbrOptions> vopt_or = validate_options(opt, n);
  if (!vopt_or.ok()) return vopt_or.status();
  const SbrOptions vopt = *vopt_or;

  ctx.workspace().reserve(workspace_query(n, vopt));
  if (vopt.lookahead)
    ctx.lookahead_sibling().workspace().reserve(lookahead_workspace_query(n, vopt));
  StageTimer stage(ctx.telemetry(), "sbr.wy");
  return run_wy_blocks(a, ctx, vopt, vopt.big_block, detail::TrailingKind::Multiplicative,
                       vopt.lookahead, nullptr);
}

StatusOr<SbrResult> sbr_dbr(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sbr_dbr requires a square symmetric matrix");
  StatusOr<SbrOptions> vopt_or = validate_options(opt, n);
  if (!vopt_or.ok()) return vopt_or.status();
  const SbrOptions vopt = *vopt_or;

  // b == nb degenerates to one sub-panel per block, where the detached form
  // buys nothing: run the multiplicative sbr_wy path verbatim so the output
  // is bitwise identical to sbr_wy (including its look-ahead schedule).
  const bool detached = vopt.bandwidth < vopt.big_block;
  bool lookahead = vopt.lookahead;
  if (detached && lookahead) {
    // The detached trailing update is one fused rank-2k, not a column-
    // splittable two-step — there is no overlap window to schedule into.
    recovery::note("sbr.dbr",
                   "look-ahead is not supported for b < nb; running the serial schedule");
    lookahead = false;
  }

  ctx.workspace().reserve(workspace_query(n, vopt));
  if (lookahead)
    ctx.lookahead_sibling().workspace().reserve(lookahead_workspace_query(n, vopt));
  StageTimer stage(ctx.telemetry(), "sbr.dbr");
  return run_wy_blocks(a, ctx, vopt, vopt.big_block,
                       detached ? detail::TrailingKind::DetachedSyr2k
                                : detail::TrailingKind::Multiplicative,
                       lookahead, "sbr.dbr.trailing");
}

std::size_t workspace_query(index_t n, const SbrOptions& opt) {
  if (n <= 1) return 0;
  const index_t b = std::min<index_t>(std::max<index_t>(opt.bandwidth, 1), n - 1);
  index_t nb = std::max(opt.big_block, b);
  nb -= nb % b;
  const index_t mt = std::max<index_t>(n - b, 1);

  // Per big block (worst case: the first, where mt is largest). Counted in
  // floats; see process_block for the buffers these bound.
  double f = 0.0;
  f += double(mt) * mt;            // OA copy
  f += 3.0 * double(mt) * nb;      // W, Y, and the P = OA*W cache
  f += double(mt) * nb;            // literal-recompute OA*W ("big")
  f += 2.0 * double(mt) * mt;      // trailing M and GA
  f += double(nb) * mt;            // W^T M
  // DBR detached trailing update: S (nb x nb) and Z (tw x nb <= mt x nb).
  // Counted unconditionally — the bound stays one formula for all variants.
  f += double(nb) * nb + double(mt) * nb;
  // Panel factorization: w/y, TSQR q/r + tree scratch (one work copy per
  // level plus six (2b x b)-ish combine buffers over ~log2 levels), the
  // reconstruction LU copy, and the blocked-QR fallback work buffer.
  f += 6.0 * double(mt) * b;
  f += 8.0 * double(b) * b * 64.0;
  // The look-ahead split checks out column slices of the same trailing
  // buffers (part-1 slices under a nested scope released before the part-2
  // checkout), so the trailing terms above already bound it.
  // ZY-variant scratch (P, S, Z, back-transform T) is strictly smaller and
  // also covered by the panel + trailing terms above.

  // Alignment slop: every checkout rounds up to Workspace::kAlignment.
  constexpr std::size_t kAllocSlop = 512 * Workspace::kAlignment;
  return static_cast<std::size_t>(f) * sizeof(float) + kAllocSlop;
}

std::size_t lookahead_workspace_query(index_t n, const SbrOptions& opt) {
  if (!opt.lookahead || n <= 1) return 0;
  const index_t b = std::min<index_t>(std::max<index_t>(opt.bandwidth, 1), n - 1);
  const index_t mt = std::max<index_t>(n - b, 1);
  // The prefactored reflectors held across the block boundary (w, y) plus
  // the panel factorization's own scratch running on top of them — the
  // "doubled W/Y checkout": same panel terms as workspace_query, doubled.
  double f = 2.0 * double(mt) * b;         // held w/y
  f += 6.0 * double(mt) * b;               // TSQR q/r + tree scratch
  f += 8.0 * double(b) * b * 64.0;         // combine buffers, LU copy, fallback
  constexpr std::size_t kAllocSlop = 128 * Workspace::kAlignment;
  return static_cast<std::size_t>(f) * sizeof(float) + kAllocSlop;
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
StatusOr<SbrResult> sbr_wy(ConstMatrixView<float> a, tc::GemmEngine& engine,
                           const SbrOptions& opt) {
  return sbr_wy(a, compat_context(engine), opt);
}

StatusOr<SbrResult> sbr_dbr(ConstMatrixView<float> a, tc::GemmEngine& engine,
                            const SbrOptions& opt) {
  return sbr_dbr(a, compat_context(engine), opt);
}

}  // namespace tcevd::sbr
