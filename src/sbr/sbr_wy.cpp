// WY-based recursive successive band reduction (paper Algorithm 1).
//
// Within a big block of nb columns the trailing matrix is *never* updated in
// place. Instead the block keeps the entry-time copy OA of the trailing
// matrix together with the accumulated reflectors (W, Y) — the invariant is
//
//   A_current(b:, b:) = (I - W Y^T)^T * OA * (I - W Y^T)
//
// (active-block indexing; reflector support starts at row b). Producing the
// next b-column panel, or the post-block full trailing update, is then a
// restriction of that identity to the needed rows/columns:
//
//   right:  M  = OA(:, C) - (OA W) Y(C, :)^T        <- the big near-square GEMM
//   left:   GA = M(R, :)  - Y(R, :) (W^T M)
//
// The OA*W product is recomputed with the full accumulated W each panel —
// this is the deliberate arithmetic overhead of Table 2 that buys GEMM
// shapes with inner dimension up to nb. Appending a panel's reflectors uses
// the WY update rule W <- [W | w - W (Y^T w)].
#include "src/blas/blas.hpp"
#include "src/sbr/sbr.hpp"

namespace tcevd::sbr {

namespace {

using blas::Trans;

struct WyContext {
  MatrixView<float> A;  // full n x n storage
  index_t n = 0;
  index_t b = 0;
  index_t nb = 0;
  tc::GemmEngine* engine = nullptr;
  PanelKind panel_kind = PanelKind::Tsqr;
  std::vector<WyBlock>* blocks = nullptr;
  bool cache_oa = false;  // maintain P = OA*W incrementally instead of
                          // recomputing it with the full W every panel
};

/// Process the big block starting at global offset s; returns the number of
/// columns reduced (0 when the active matrix is already banded).
StatusOr<index_t> process_block(WyContext& ctx, index_t s) {
  const index_t na = ctx.n - s;  // active size
  const index_t b = ctx.b;
  if (na - b < 2) return index_t{0};

  auto& eng = *ctx.engine;
  auto A = ctx.A;

  // OA: copy of the active trailing matrix (rows/cols [s+b, n)).
  const index_t mt = na - b;  // reflector row support
  Matrix<float> oa(mt, mt);
  copy_matrix<float>(A.sub(s + b, s + b, mt, mt), oa.view());

  const index_t max_cols = std::min(ctx.nb, na);
  Matrix<float> W(mt, max_cols);
  Matrix<float> Y(mt, max_cols);
  Matrix<float> P;  // cached OA*W, extended per panel (cache_oa mode only)
  if (ctx.cache_oa) P = Matrix<float>(mt, max_cols);

  index_t cols_done = 0;
  for (index_t p = 0;; ++p) {
    const index_t c = p * b;                 // active column offset of this panel
    if (c >= ctx.nb || na - c - b < 2) break;
    const index_t m = na - c - b;            // panel rows

    if (p > 0) {
      // Materialize the current values of columns C = [c, c+b), rows
      // [c, na) from OA and the accumulated (W, Y).
      const index_t pb = c;  // accumulated reflector count
      auto Wv = W.sub(0, 0, mt, pb);

      // P = OA * W: either the literal Algorithm-1 recompute with the full
      // accumulated W (the big near-square GEMM) or the maintained cache.
      Matrix<float> big;
      ConstMatrixView<float> big_v;
      if (ctx.cache_oa) {
        big_v = P.sub(0, 0, mt, pb);
      } else {
        big = Matrix<float>(mt, pb);
        eng.gemm(Trans::No, Trans::No, 1.0f, oa.view(), Wv, 0.0f, big.view());
        big_v = big.view();
      }

      // M = OA(:, C') - P * Y(C', :)^T with C' = [c-b, c) in OA coordinates.
      Matrix<float> mcol(mt, b);
      copy_matrix<float>(oa.sub(0, c - b, mt, b), mcol.view());
      eng.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
               ConstMatrixView<float>(Y.sub(c - b, 0, b, pb)), 1.0f, mcol.view());

      // GA = M(R', :) - Y(R', :) (W^T M) with R' = [c-b, mt) in OA coords
      // (global rows [s+c, n)), which includes the b x b diagonal block.
      Matrix<float> wtm(pb, b);
      eng.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol.view(), 0.0f, wtm.view());
      const index_t rrows = mt - (c - b);
      Matrix<float> ga(rrows, b);
      copy_matrix<float>(mcol.sub(c - b, 0, rrows, b), ga.view());
      eng.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(Y.sub(c - b, 0, rrows, pb)),
               wtm.view(), 1.0f, ga.view());

      // Write back: global rows [s+c, n) x cols [s+c, s+c+b), plus mirror.
      copy_matrix<float>(ConstMatrixView<float>(ga.view()), A.sub(s + c, s + c, rrows, b));
      for (index_t j = 0; j < b; ++j)
        for (index_t r = 0; r < rrows; ++r) A(s + c + j, s + c + r) = A(s + c + r, s + c + j);
    }

    // Panel QR: global rows [s+c+b, n) x cols [s+c, s+c+b).
    auto panel = A.sub(s + c + b, s + c, m, b);
    Matrix<float> w(m, b), y(m, b);
    TCEVD_RETURN_IF_ERROR(panel_factor_wy(ctx.panel_kind, panel, w.view(), y.view()));
    for (index_t j = 0; j < b; ++j)  // mirror the finalized band columns
      for (index_t r = 0; r < m; ++r) A(s + c + j, s + c + b + r) = A(s + c + b + r, s + c + j);

    // Append to the accumulated representation. The new reflectors live on
    // buffer rows [c, mt) (active rows [c+b, na)).
    auto ycol = Y.sub(0, c, mt, b);
    set_zero(ycol);
    copy_matrix<float>(ConstMatrixView<float>(y.view()), Y.sub(c, c, m, b));

    auto wcol = W.sub(0, c, mt, b);
    set_zero(wcol);
    copy_matrix<float>(ConstMatrixView<float>(w.view()), W.sub(c, c, m, b));
    if (c > 0) {
      // w' = w - W (Y^T w).
      Matrix<float> ytw(c, b);
      eng.gemm(Trans::Yes, Trans::No, 1.0f, ConstMatrixView<float>(Y.sub(c, 0, m, c)),
               ConstMatrixView<float>(w.view()), 0.0f, ytw.view());
      eng.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(W.sub(0, 0, mt, c)),
               ytw.view(), 1.0f, wcol);
    }
    if (ctx.cache_oa) {
      // Extend the cache: P(:, c:c+b) = OA * w'.
      eng.gemm(Trans::No, Trans::No, 1.0f, oa.view(), ConstMatrixView<float>(wcol), 0.0f,
               P.sub(0, c, mt, b));
    }

    cols_done = c + b;
  }

  if (cols_done == 0) return index_t{0};

  // Full trailing update: rows/cols [cols_done, na) — OA coords [cols_done-b, mt).
  const index_t t0 = cols_done - b;  // OA-coordinate offset
  const index_t tw = mt - t0;        // trailing width
  if (tw > 0) {
    auto Wv = W.sub(0, 0, mt, cols_done);

    Matrix<float> big;
    ConstMatrixView<float> big_v;
    if (ctx.cache_oa) {
      big_v = P.sub(0, 0, mt, cols_done);
    } else {
      big = Matrix<float>(mt, cols_done);
      eng.gemm(Trans::No, Trans::No, 1.0f, oa.view(), Wv, 0.0f, big.view());
      big_v = big.view();
    }

    Matrix<float> mcol(mt, tw);
    copy_matrix<float>(oa.sub(0, t0, mt, tw), mcol.view());
    eng.gemm(Trans::No, Trans::Yes, -1.0f, big_v,
             ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)), 1.0f, mcol.view());

    Matrix<float> wtm(cols_done, tw);
    eng.gemm(Trans::Yes, Trans::No, 1.0f, Wv, mcol.view(), 0.0f, wtm.view());
    Matrix<float> ga(tw, tw);
    copy_matrix<float>(mcol.sub(t0, 0, tw, tw), ga.view());
    eng.gemm(Trans::No, Trans::No, -1.0f, ConstMatrixView<float>(Y.sub(t0, 0, tw, cols_done)),
             wtm.view(), 1.0f, ga.view());

    copy_matrix<float>(ConstMatrixView<float>(ga.view()),
                       A.sub(s + cols_done, s + cols_done, tw, tw));
  }

  if (ctx.blocks) {
    WyBlock blk;
    blk.w = Matrix<float>(mt, cols_done);
    blk.y = Matrix<float>(mt, cols_done);
    copy_matrix<float>(ConstMatrixView<float>(W.sub(0, 0, mt, cols_done)), blk.w.view());
    copy_matrix<float>(ConstMatrixView<float>(Y.sub(0, 0, mt, cols_done)), blk.y.view());
    blk.row_offset = s + b;
    ctx.blocks->push_back(std::move(blk));
  }

  return cols_done;
}

}  // namespace

StatusOr<SbrResult> sbr_wy(ConstMatrixView<float> a, tc::GemmEngine& engine,
                           const SbrOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sbr_wy requires a square symmetric matrix");
  const index_t b = opt.bandwidth;
  TCEVD_CHECK(b >= 1 && b < n, "sbr_wy bandwidth out of range");
  const index_t nb = std::max(opt.big_block, b);
  TCEVD_CHECK(nb % b == 0, "sbr_wy big_block must be a multiple of bandwidth");

  SbrResult result;
  result.band = Matrix<float>(n, n);
  copy_matrix(a, result.band.view());

  WyContext ctx;
  ctx.A = result.band.view();
  ctx.n = n;
  ctx.b = b;
  ctx.nb = nb;
  ctx.engine = &engine;
  ctx.panel_kind = opt.panel;
  ctx.blocks = &result.blocks;
  ctx.cache_oa = opt.wy_cache_oa_product;

  index_t s = 0;
  for (;;) {
    StatusOr<index_t> done = process_block(ctx, s);
    if (!done.ok()) return done.status();
    if (*done == 0) break;
    s += *done;
  }

  if (opt.accumulate_q) {
    result.q = form_q(result.blocks, n, engine);
  }
  return result;
}

}  // namespace tcevd::sbr
