// Conventional ZY-based successive band reduction (baseline; paper Sec. 3.3).
//
// Per b-column panel:
//   1. QR-factor the panel into (I - W Y^T) [R; 0],
//   2. Z = A22 W - (1/2) Y (W^T A22 W),
//   3. A22 <- A22 - Y Z^T - Z Y^T  (the rank-2b "syr2k-shaped" update).
//
// Every GEMM here has inner dimension b — the tall-and-skinny shapes of
// paper Table 1. With `zy_use_syr2k` the rank-2b update uses the fp32 syr2k
// (half the flops, the classic CPU/MAGMA route); otherwise it runs as two
// engine GEMMs, which is how a Tensor Core must execute it ("TC does not
// support syr2k natively").
#include <string>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/tc_syr2k.hpp"

namespace tcevd::sbr {

StatusOr<SbrResult> sbr_zy(ConstMatrixView<float> a, Context& ctx, const SbrOptions& opt) {
  const index_t n = a.rows();
  TCEVD_CHECK(a.cols() == n, "sbr_zy requires a square symmetric matrix");
  // ZY ignores big_block, so only the bandwidth rule applies (validated,
  // not clamped — same contract as validate_options).
  const index_t b = opt.bandwidth;
  if (b < 1 || b >= n)
    return invalid_argument_error("sbr_zy: bandwidth must satisfy 1 <= b < n (b = " +
                                  std::to_string(b) + ", n = " + std::to_string(n) + ")");

  ctx.workspace().reserve(workspace_query(n, opt));
  StageTimer stage(ctx.telemetry(), "sbr.zy");
  Workspace& ws = ctx.workspace();

  SbrResult result;
  result.band = Matrix<float>(n, n);
  copy_matrix(a, result.band.view());
  auto A = result.band.view();

  if (opt.accumulate_q) {
    result.q = Matrix<float>(n, n);
    set_identity(result.q.view());
  }

  using blas::Trans;

  for (index_t i = 0; n - i - b >= 2; i += b) {
    const index_t m = n - i - b;  // panel rows
    auto panel = A.sub(i + b, i, m, b);

    auto scope = ws.scope();
    auto w = scope.matrix<float>(m, b);
    auto y = scope.matrix<float>(m, b);
    TCEVD_RETURN_IF_ERROR(panel_factor_wy(ctx, opt.panel, panel, w, y));

    // Mirror the finalized band columns into the upper triangle.
    for (index_t j = 0; j < b; ++j)
      for (index_t r = 0; r < m; ++r) A(i + j, i + b + r) = A(i + b + r, i + j);

    auto a22 = A.sub(i + b, i + b, m, m);

    // Z = A22 W - 1/2 Y (W^T (A22 W)).
    auto p = scope.matrix<float>(m, b);
    if (opt.zy_use_syr2k) {
      // MAGMA-style CPU path: exploit symmetry with ssymm (half the reads).
      blas::symm(blas::Side::Left, blas::Uplo::Lower, 1.0f, ConstMatrixView<float>(a22),
                 ConstMatrixView<float>(w), 0.0f, p);
    } else {
      ctx.gemm(Trans::No, Trans::No, 1.0f, a22, w, 0.0f, p);  // square x skinny
    }
    auto s = scope.matrix<float>(b, b);
    ctx.gemm(Trans::Yes, Trans::No, 1.0f, w, p, 0.0f, s);
    auto z = scope.matrix<float>(m, b);
    copy_matrix<float>(ConstMatrixView<float>(p), z);
    ctx.gemm(Trans::No, Trans::No, -0.5f, y, s, 1.0f, z);

    // A22 <- A22 - Y Z^T - Z Y^T.
    if (opt.zy_use_syr2k) {
      blas::syr2k(blas::Uplo::Lower, Trans::No, -1.0f, y, z, 1.0f, a22);
      symmetrize_from_lower<float>(a22);
    } else if (opt.zy_use_tc_syr2k && dynamic_cast<tc::TcEngine*>(&ctx.engine()) != nullptr) {
      // Tensor-Core-native rank-2k (paper future work): half the tile work
      // of the two-GEMM form, same fp16-operand/fp32-accumulate numerics.
      const auto prec = static_cast<tc::TcEngine&>(ctx.engine()).precision();
      tc::tc_syr2k(blas::Uplo::Lower, -1.0f, y, z, 1.0f, a22, prec);
      symmetrize_from_lower<float>(a22);
    } else {
      ctx.gemm(Trans::No, Trans::Yes, -1.0f, y, z, 1.0f, a22);  // outer
      ctx.gemm(Trans::No, Trans::Yes, -1.0f, z, y, 1.0f, a22);  // outer
    }

    if (opt.accumulate_q) {
      // Q(:, i+b:n) <- Q(:, i+b:n) (I - W Y^T)   (progressive back-transform)
      auto qr = result.q.sub(0, i + b, n, m);
      auto t = scope.matrix<float>(n, b);
      ctx.gemm(Trans::No, Trans::No, 1.0f, qr, w, 0.0f, t);
      ctx.gemm(Trans::No, Trans::Yes, -1.0f, t, y, 1.0f, qr);
    }
  }

  return result;
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
StatusOr<SbrResult> sbr_zy(ConstMatrixView<float> a, tc::GemmEngine& engine,
                           const SbrOptions& opt) {
  return sbr_zy(a, compat_context(engine), opt);
}

}  // namespace tcevd::sbr
