// Internal shared core of the WY-family band reductions (sbr_wy, sbr_dbr).
//
// Both variants run the same chained sub-panel factorization per big block —
// factor nb/b panels of width b, accumulate their reflectors into one
// nb-wide (W, Y) pair against the block-entry copy OA — and differ only in
// the once-per-block full trailing update:
//
//   * Multiplicative (sbr_wy, and sbr_dbr at b == nb): the two-step
//     restriction of the block invariant, M = OA - (OA W) Y^T then
//     GA = M - Y (W^T M). Supports the look-ahead split schedule.
//
//   * DetachedSyr2k (sbr_dbr at b < nb): the detached symmetric rank-2k
//     form S = W^T (OA W), Z = OA W - (1/2) Y S, GA = OA - Y Z^T - Z Y^T —
//     two (tw x tw, k = nb) GEMMs (or one tc_syr2k pass on TC engines).
//
// This header is internal: it lives outside sbr.hpp so the public API stays
// the two driver functions, but the perfmodel shape tracers and tests can
// rely on the fact that both drivers execute process_wy_block verbatim —
// which is what makes the b == nb DBR configuration bitwise identical to
// WY-SBR.
#pragma once

#include <optional>

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"
#include "src/common/workspace.hpp"
#include "src/sbr/sbr.hpp"

namespace tcevd {
class Context;
}  // namespace tcevd

namespace tcevd::sbr::detail {

enum class TrailingKind {
  Multiplicative,  ///< sbr_wy's M/GA two-step (look-ahead capable)
  DetachedSyr2k,   ///< DBR's rank-2k form with inner dimension nb
};

struct WyBlockParams {
  MatrixView<float> A;  // full n x n storage
  index_t n = 0;
  index_t b = 0;
  index_t nb = 0;
  Context* ctx = nullptr;
  PanelKind panel_kind = PanelKind::Tsqr;
  std::vector<WyBlock>* blocks = nullptr;
  bool cache_oa = false;  // maintain P = OA*W incrementally instead of
                          // recomputing it with the full W every panel
  bool lookahead = false;  // Multiplicative only
  TrailingKind trailing = TrailingKind::Multiplicative;
  bool use_tc_syr2k = false;          // DetachedSyr2k only
  const char* trailing_stage = nullptr;  // StageTimer name for the trailing
                                         // update (nullptr = untimed)
};

/// Next-block panel prefactored during the look-ahead overlap window. The
/// reflectors live in the sibling arena under `scope`, which stays open
/// across the block boundary until block i+1 consumes them; A already holds
/// the panel's [R; 0] columns (mirroring waits for the join — the row strip
/// it writes belongs to the concurrent trailing task).
struct LookaheadPanel {
  MatrixView<float> w, y;
  std::optional<Workspace::Scope> scope;
  index_t owner = -1;  // global block offset s' these reflectors belong to
  bool valid = false;

  void drop() {
    valid = false;
    w = MatrixView<float>();
    y = MatrixView<float>();
    scope.reset();
  }
};

/// Process the big block starting at global offset s; returns the number of
/// columns reduced (0 when the active matrix is already banded).
StatusOr<index_t> process_wy_block(WyBlockParams& prm, index_t s, LookaheadPanel& la);

}  // namespace tcevd::sbr::detail
