#include "src/svd/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/rng.hpp"
#include "src/lapack/bidiag.hpp"

namespace tcevd::svd {

using blas::Trans;

SvdResult svd_via_evd(ConstMatrixView<float> a, Context& ctx, const SvdOptions& opt) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  TCEVD_CHECK(m >= n, "svd_via_evd requires m >= n (transpose the input)");

  StageTimer stage(ctx.telemetry(), "svd.via_evd");
  SvdResult out;

  // Gram matrix G = A^T A under the engine's numerics.
  auto scope = ctx.workspace().scope();
  auto g = scope.matrix<float>(n, n);
  ctx.gemm(Trans::Yes, Trans::No, 1.0f, a, a, 0.0f, g);
  make_symmetric(g);

  // Symmetric eigensolve (ascending eigenvalues).
  evd::EvdOptions eopt = opt.evd;
  eopt.vectors = opt.vectors;
  eopt.bandwidth = std::min<index_t>(eopt.bandwidth, std::max<index_t>(n - 1, 1));
  StatusOr<evd::EvdResult> eres_or = evd::solve(ConstMatrixView<float>(g), ctx, eopt);
  out.converged = eres_or.ok();
  if (!out.converged) return out;
  const evd::EvdResult& eres = *eres_or;

  // sigma_i = sqrt(max(lambda, 0)), reported descending.
  out.sigma.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const float lam = eres.eigenvalues[static_cast<std::size_t>(n - 1 - i)];
    out.sigma[static_cast<std::size_t>(i)] = lam > 0.0f ? std::sqrt(lam) : 0.0f;
  }
  if (!opt.vectors) return out;

  // V: eigenvector columns reversed to descending-sigma order.
  out.v = Matrix<float>(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) out.v(i, j) = eres.vectors(i, n - 1 - j);

  // U = A V Sigma^{-1}; columns with sigma below the floor are completed by
  // re-orthonormalization (QR of the assembled U).
  float floor = opt.sigma_floor;
  if (floor <= 0.0f)
    floor = std::sqrt(static_cast<float>(n) * std::numeric_limits<float>::epsilon()) *
            (out.sigma.empty() ? 0.0f : out.sigma.front());

  out.u = Matrix<float>(m, n);
  ctx.gemm(Trans::No, Trans::No, 1.0f, a, ConstMatrixView<float>(out.v.view()), 0.0f,
           out.u.view());
  std::vector<index_t> deficient;
  for (index_t j = 0; j < n; ++j) {
    const float s = out.sigma[static_cast<std::size_t>(j)];
    if (s > floor) {
      blas::scal(m, 1.0f / s, &out.u(0, j), 1);
    } else {
      deficient.push_back(j);
    }
  }
  // Complete rank-deficient columns with vectors orthogonal to everything
  // already placed (the good columns must stay exactly as computed — they
  // are the left singular vectors).
  if (!deficient.empty()) {
    Rng rng(0xdefu + static_cast<std::uint64_t>(m));
    for (index_t j : deficient) {
      for (int attempt = 0; attempt < 4; ++attempt) {
        for (index_t i = 0; i < m; ++i)
          out.u(i, j) = static_cast<float>(rng.normal());
        for (int pass = 0; pass < 2; ++pass) {  // twice-is-enough MGS
          for (index_t c = 0; c < n; ++c) {
            if (c == j) continue;
            const bool placed =
                out.sigma[static_cast<std::size_t>(c)] > floor || c < j;
            if (!placed) continue;
            const float dot = blas::dot(m, &out.u(0, c), 1, &out.u(0, j), 1);
            blas::axpy(m, -dot, &out.u(0, c), 1, &out.u(0, j), 1);
          }
        }
        const float nrm = blas::nrm2(m, &out.u(0, j), 1);
        if (nrm > 1e-3f) {
          blas::scal(m, 1.0f / nrm, &out.u(0, j), 1);
          break;
        }
      }
    }
  }
  return out;
}

// Deprecated compatibility overload: per-thread scratch context (see
// compat_context).
SvdResult svd_via_evd(ConstMatrixView<float> a, tc::GemmEngine& engine,
                      const SvdOptions& opt) {
  return svd_via_evd(a, compat_context(engine), opt);
}

template <typename T>
DenseSvdResult<T> svd_golub_kahan(ConstMatrixView<T> a, bool vectors) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  TCEVD_CHECK(m >= n, "svd_golub_kahan requires m >= n");

  DenseSvdResult<T> out;
  Matrix<T> work(m, n);
  copy_matrix(a, work.view());

  std::vector<T> d, e, tauq, taup;
  lapack::gebrd(work.view(), d, e, tauq, taup);

  if (vectors) {
    out.u = Matrix<T>(m, n);
    out.v = Matrix<T>(n, n);
    lapack::orgbr_q<T>(work.view(), tauq, out.u.view());
    lapack::orgbr_p<T>(work.view(), taup, out.v.view());
    auto uv = out.u.view();
    auto vv = out.v.view();
    out.converged = lapack::bdsqr<T>(d, e, &uv, &vv);
  } else {
    out.converged = lapack::bdsqr<T>(d, e, nullptr, nullptr);
  }
  out.sigma = std::move(d);
  return out;
}

template DenseSvdResult<float> svd_golub_kahan<float>(ConstMatrixView<float>, bool);
template DenseSvdResult<double> svd_golub_kahan<double>(ConstMatrixView<double>, bool);

JacobiSvdResult jacobi_svd(ConstMatrixView<double> a, int max_sweeps) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  TCEVD_CHECK(m >= n, "jacobi_svd requires m >= n");

  JacobiSvdResult out;
  out.u = Matrix<double>(m, n);
  copy_matrix(a, out.u.view());
  out.v = Matrix<double>(n, n);
  set_identity(out.v.view());

  const double eps = std::numeric_limits<double>::epsilon();
  for (out.sweeps = 0; out.sweeps < max_sweeps; ++out.sweeps) {
    bool rotated = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        // 2x2 Gram block of columns p, q.
        const double app = blas::dot(m, &out.u(0, p), 1, &out.u(0, p), 1);
        const double aqq = blas::dot(m, &out.u(0, q), 1, &out.u(0, q), 1);
        const double apq = blas::dot(m, &out.u(0, p), 1, &out.u(0, q), 1);
        if (std::abs(apq) <= eps * std::sqrt(app * aqq)) continue;
        rotated = true;
        // Jacobi rotation annihilating the off-diagonal Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, tau) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < m; ++i) {
          const double up = out.u(i, p);
          const double uq = out.u(i, q);
          out.u(i, p) = c * up - s * uq;
          out.u(i, q) = s * up + c * uq;
        }
        for (index_t i = 0; i < n; ++i) {
          const double vp = out.v(i, p);
          const double vq = out.v(i, q);
          out.v(i, p) = c * vp - s * vq;
          out.v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  // Column norms are the singular values; normalize U and sort descending.
  out.sigma.resize(static_cast<std::size_t>(n));
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    out.sigma[static_cast<std::size_t>(j)] = blas::nrm2(m, &out.u(0, j), 1);
    order[static_cast<std::size_t>(j)] = j;
  }
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return out.sigma[static_cast<std::size_t>(x)] > out.sigma[static_cast<std::size_t>(y)];
  });
  Matrix<double> us(m, n), vs(n, n);
  std::vector<double> ss(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    const double s = out.sigma[static_cast<std::size_t>(src)];
    ss[static_cast<std::size_t>(j)] = s;
    const double inv = (s > 0.0) ? 1.0 / s : 0.0;
    for (index_t i = 0; i < m; ++i) us(i, j) = out.u(i, src) * inv;
    for (index_t i = 0; i < n; ++i) vs(i, j) = out.v(i, src);
  }
  out.sigma = std::move(ss);
  out.u = std::move(us);
  out.v = std::move(vs);
  return out;
}

}  // namespace tcevd::svd
