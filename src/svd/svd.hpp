// Singular value decomposition on top of the symmetric eigensolver — the
// SVD / low-rank-approximation application family the paper's abstract and
// introduction motivate for Tensor-Core numerics.
//
// Two routes:
//   * svd_via_evd — Gram-matrix method: eigendecompose A^T A with the
//     two-stage (Tensor-Core) EVD, sigma = sqrt(lambda), V = eigenvectors,
//     U = A V Sigma^{-1} (re-orthonormalized for tiny sigma). Fast and
//     engine-accelerated; conditioning is kappa(A)^2, fine for the
//     data-driven workloads the paper targets.
//   * jacobi_svd — one-sided Jacobi in double: slow, near-machine-accurate,
//     used as ground truth in tests and available for small problems.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/evd/evd.hpp"

namespace tcevd::svd {

struct SvdResult {
  std::vector<float> sigma;  ///< descending singular values, r = min(m, n)
  Matrix<float> u;           ///< m x r (empty unless vectors requested)
  Matrix<float> v;           ///< n x r (empty unless vectors requested)
  bool converged = false;
};

struct SvdOptions {
  evd::EvdOptions evd;        ///< settings for the inner symmetric solve
  bool vectors = true;
  float sigma_floor = 0.0f;   ///< treat sigma below this as rank-deficient;
                              ///< <= 0 picks sqrt(n * eps) * sigma_max — the
                              ///< noise level of the Gram route, where zero
                              ///< eigenvalues surface as ~eps * sigma_max^2
};

/// SVD of a (m >= n required; transpose the input otherwise). All heavy
/// matrix products run through the context's engine; the Gram matrix comes
/// from its workspace arena.
SvdResult svd_via_evd(ConstMatrixView<float> a, Context& ctx, const SvdOptions& opt = {});

/// Deprecated: wraps a temporary Context (cold workspace, no telemetry)
/// around the bare engine.
SvdResult svd_via_evd(ConstMatrixView<float> a, tc::GemmEngine& engine,
                      const SvdOptions& opt = {});

/// Reference one-sided Jacobi SVD in double precision. Returns descending
/// singular values; u/v always computed. Intended for n up to a few hundred.
struct JacobiSvdResult {
  std::vector<double> sigma;
  Matrix<double> u;  // m x n
  Matrix<double> v;  // n x n
  int sweeps = 0;
};
JacobiSvdResult jacobi_svd(ConstMatrixView<double> a, int max_sweeps = 30);

/// Classic two-stage dense SVD: Householder bidiagonalization (gebrd) +
/// implicit-shift bidiagonal QR (bdsqr). The full-accuracy production route
/// (conditioning kappa(A), unlike the Gram method's kappa^2); the dense
/// counterpart of the symmetric two-stage EVD pipeline.
template <typename T>
struct DenseSvdResult {
  std::vector<T> sigma;  ///< descending
  Matrix<T> u;           ///< m x n
  Matrix<T> v;           ///< n x n
  bool converged = false;
};

template <typename T>
DenseSvdResult<T> svd_golub_kahan(ConstMatrixView<T> a, bool vectors = true);

extern template DenseSvdResult<float> svd_golub_kahan<float>(ConstMatrixView<float>, bool);
extern template DenseSvdResult<double> svd_golub_kahan<double>(ConstMatrixView<double>, bool);

}  // namespace tcevd::svd
