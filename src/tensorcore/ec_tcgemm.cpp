#include "src/tensorcore/ec_tcgemm.hpp"

#include <cmath>

#include "src/common/fault.hpp"

namespace tcevd::tc {

namespace {

/// True when rounding a finite fp32 operand to the TC format overflowed to
/// +-inf (fp16 saturation). NaN/Inf already present in the input is passed
/// through untouched — that is the caller's upstream problem, not a
/// precision loss of this GEMM.
bool head_saturated(ConstMatrixView<float> x, ConstMatrixView<float> head) {
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i)
      if (!std::isfinite(head(i, j)) && std::isfinite(x(i, j))) return true;
  return false;
}

/// Materialize op(X) as a fresh column-major matrix (no rounding).
Matrix<float> materialize_op(blas::Trans trans, ConstMatrixView<float> x) {
  const index_t rows = trans == blas::Trans::No ? x.rows() : x.cols();
  const index_t cols = trans == blas::Trans::No ? x.cols() : x.rows();
  Matrix<float> out(rows, cols);
  if (trans == blas::Trans::No) {
    copy_matrix(x, out.view());
  } else {
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i < rows; ++i) out(i, j) = x(j, i);
  }
  return out;
}

}  // namespace

void ec_split(ConstMatrixView<float> x, MatrixView<float> head, MatrixView<float> residual,
              TcPrecision prec) {
  TCEVD_CHECK(head.rows() == x.rows() && head.cols() == x.cols() &&
                  residual.rows() == x.rows() && residual.cols() == x.cols(),
              "ec_split shape mismatch");
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) {
      const float v = x(i, j);
      const float h = round_operand(v, prec);
      head(i, j) = h;
      residual(i, j) = round_operand(kEcScale * (v - h), prec);
    }
}

Status ec_tcgemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
                 ConstMatrixView<float> b, float beta, MatrixView<float> c, TcPrecision prec) {
  Matrix<float> ax = materialize_op(transa, a);
  Matrix<float> bx = materialize_op(transb, b);

  const index_t m = ax.rows();
  const index_t k = ax.cols();
  const index_t n = bx.cols();
  TCEVD_CHECK(bx.rows() == k && c.rows() == m && c.cols() == n, "ec_tcgemm shape mismatch");

  Matrix<float> ah(m, k), da(m, k), bh(k, n), db(k, n);
  ec_split(ax.view(), ah.view(), da.view(), prec);
  ec_split(bx.view(), bh.view(), db.view(), prec);

  // Saturation screen: report PrecisionLoss before C is written so the
  // caller can redo the full alpha/beta update in fp32.
  if (fault::should_fire(fault::Site::EcTcSaturate))
    return fault_injected_error(fault::site_name(fault::Site::EcTcSaturate));
  if (head_saturated(ax.view(), ah.view()) || head_saturated(bx.view(), bh.view()))
    return precision_loss_error("ec_tcgemm: operand exceeds the fp16 range (head saturated)");

  // Head product: C0 = Ah * Bh (fp32 accumulate — the main TC GEMM).
  Matrix<float> c0(m, n);
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ah.view(), bh.view(), 0.0f, c0.view());

  // Correction: C1 = Ah * dB + dA * Bh (two more TC GEMMs, fp32 accumulate).
  Matrix<float> c1(m, n);
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ah.view(), db.view(), 0.0f, c1.view());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, da.view(), bh.view(), 1.0f, c1.view());

  // C = alpha * (C0 + C1/s) + beta * C, fused in fp32 on the SIMT side.
  const float inv_s = 1.0f / kEcScale;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      const float corrected = c0(i, j) + c1(i, j) * inv_s;
      c(i, j) = alpha * corrected + ((beta == 0.0f) ? 0.0f : beta * c(i, j));
    }
  return ok_status();
}

}  // namespace tcevd::tc
