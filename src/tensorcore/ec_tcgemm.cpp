#include "src/tensorcore/ec_tcgemm.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/blas/gemm_packed.hpp"
#include "src/common/aligned.hpp"
#include "src/common/fault.hpp"
#include "src/common/flop_counter.hpp"
#include "src/common/scratch.hpp"
#include "src/tensorcore/tc_convert.hpp"

namespace tcevd::tc {

namespace {

// Operand transforms come from tc_convert.hpp: RoundTransform is the head,
// EcTailTransform / EcHeadTailSplit carry the kEcScale residual scaling.

/// True when rounding a finite fp32 operand to the TC format overflows to
/// +-inf (fp16 saturation). NaN/Inf already present in the input is passed
/// through untouched — that is the caller's upstream problem, not a
/// precision loss of this GEMM. Scans the stored matrix directly: op(X) is a
/// permutation of the same element set, so the transpose is irrelevant —
/// which is also why the reported (si, sj) are *storage* coordinates of the
/// operand as passed, not coordinates in op(X).
bool operand_saturates(ConstMatrixView<float> x, TcPrecision prec, index_t* si,
                       index_t* sj) {
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) {
      const float v = x(i, j);
      if (std::isfinite(v) && !std::isfinite(round_operand(v, prec))) {
        *si = i;
        *sj = j;
        return true;
      }
    }
  return false;
}

/// Thread-local fp32 accumulators for the head product (c0) and the
/// correction product (c1). Sized through reserve_scratch: same-shape
/// steady-state calls perform no heap allocation, and a thread that drops
/// from one large problem to much smaller ones releases the oversized
/// buffers instead of pinning them for its lifetime (src/common/scratch.hpp).
struct EcScratch {
  AlignedVector<float> c0, c1;
};

EcScratch& ec_scratch() {
  thread_local EcScratch s;
  return s;
}

}  // namespace

void ec_split(ConstMatrixView<float> x, MatrixView<float> head, MatrixView<float> residual,
              TcPrecision prec) {
  TCEVD_CHECK(head.rows() == x.rows() && head.cols() == x.cols() &&
                  residual.rows() == x.rows() && residual.cols() == x.cols(),
              "ec_split shape mismatch");
  // Stored columns of all three matrices are contiguous: split one column
  // per call through the dispatched EC-split kernel.
  for (index_t j = 0; j < x.cols(); ++j) {
    if (x.rows() == 0) continue;
    ec_split_buffer(&x(0, j), &head(0, j), &residual(0, j), x.rows(), kEcScale, prec);
  }
}

Status ec_tcgemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
                 ConstMatrixView<float> b, float beta, MatrixView<float> c, TcPrecision prec) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t ka = (transa == blas::Trans::No) ? a.cols() : a.rows();
  const index_t ma = (transa == blas::Trans::No) ? a.rows() : a.cols();
  const index_t kb = (transb == blas::Trans::No) ? b.rows() : b.cols();
  const index_t nb = (transb == blas::Trans::No) ? b.cols() : b.rows();
  TCEVD_CHECK(ma == m && nb == n && ka == kb, "ec_tcgemm shape mismatch");

  // Saturation screen: report PrecisionLoss before C is written so the
  // caller can redo the full alpha/beta update in fp32. Runs before the flop
  // accounting — a screened-out call performs no TC products.
  if (fault::should_fire(fault::Site::EcTcSaturate))
    return fault_injected_error(fault::site_name(fault::Site::EcTcSaturate));
  index_t si = -1;
  index_t sj = -1;
  if (operand_saturates(a, prec, &si, &sj))
    return precision_loss_error("ec_tcgemm: operand A exceeds the fp16 range (head "
                                "saturated, first at A(" + std::to_string(si) + ", " +
                                std::to_string(sj) + "))");
  if (operand_saturates(b, prec, &si, &sj))
    return precision_loss_error("ec_tcgemm: operand B exceeds the fp16 range (head "
                                "saturated, first at B(" + std::to_string(si) + ", " +
                                std::to_string(sj) + "))");
  FlopCounter::instance().add(3 * gemm_flops(m, n, ka));

  EcScratch& scratch = ec_scratch();
  const std::size_t need = static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  reserve_scratch(scratch.c0, need);
  reserve_scratch(scratch.c1, need);
  const index_t ldc = std::max<index_t>(m, 1);
  MatrixView<float> c0(scratch.c0.data(), m, n, ldc);
  MatrixView<float> c1(scratch.c1.data(), m, n, ldc);

  // Sweep 1 packs B's head AND tail panels in one pass over B (the split
  // runs once per source element) and computes both products that share the
  // head of A:  C0 = Ã·B̃  and  C1 = Ã·ΔB.
  blas::gemm_packed_split_b(transa, transb, a, b, c0, c1, RoundTransform{prec},
                            EcHeadTailSplit{prec, kEcScale});
  // Sweep 2 accumulates the remaining correction:  C1 += ΔA·B̃.
  // Both sweeps keep each product's accumulation order identical to its
  // standalone GEMM, so results are bitwise-equal to the old path that
  // materialized ah/da/bh/db copies first.
  blas::gemm_packed(transa, transb, 1.0f, a, b, 1.0f, c1, EcTailTransform{prec, kEcScale},
                    RoundTransform{prec});

  // C = alpha * (C0 + C1/s) + beta * C, fused in fp32 on the SIMT side.
  const float inv_s = 1.0f / kEcScale;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      const float corrected = c0(i, j) + c1(i, j) * inv_s;
      c(i, j) = alpha * corrected + ((beta == 0.0f) ? 0.0f : beta * c(i, j));
    }
  return ok_status();
}

}  // namespace tcevd::tc
