// Error-corrected Tensor Core GEMM (paper Section 5.3; Ootomo & Yokota 2022,
// building on Markidis et al. 2018).
//
// Split each fp32 operand into a low-precision head and a scaled residual:
//
//   A = Ã + ΔA/s,  Ã = round16(A),  ΔA = round16(s * (A − Ã)),  s = 2^11
//
// then recover the fp32 product from three Tensor Core GEMMs:
//
//   C ≈ Ã·B̃ + (Ã·ΔB + ΔA·B̃)/s        (ΔA·ΔB/s² is below fp32 eps — dropped)
//
// The 2^11 residual scaling keeps ΔA in fp16's normal range and is the
// "scale the matrix to reduce underflow" device the paper describes. The
// result is single-precision-accurate while every multiply still runs on the
// (emulated) Tensor Core data path.
#pragma once

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/common/status.hpp"
#include "src/tensorcore/mma_tile.hpp"

namespace tcevd::tc {

/// Residual scaling factor: 2^11 shifts the fp16 residual back into the
/// normal range (fp16 has 10+1 mantissa bits, so the head absorbs the top 11
/// bits and the residual carries the next 11).
inline constexpr float kEcScale = 2048.0f;

/// C = alpha * op(A) * op(B) + beta * C with error-corrected Tensor Core
/// numerics (three TC GEMMs + fp32 fixups). Accuracy is close to one fp32
/// SGEMM; cost is ~3x the TC flops (still faster than SGEMM on real HW).
///
/// fp16 saturation (a finite fp32 operand beyond fp16's 65504 max rounds to
/// +-inf in the head split) is detected *before* C is touched and reported
/// as PrecisionLoss, so callers can re-run the identical GEMM — beta
/// accumulation included — in fp32. Shape mismatches stay TCEVD_CHECK.
Status ec_tcgemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
                 ConstMatrixView<float> b, float beta, MatrixView<float> c,
                 TcPrecision prec = TcPrecision::Fp16);

/// Decompose x into head (round to prec) and scaled residual
/// round(kEcScale * (x - head)). Exposed for tests.
void ec_split(ConstMatrixView<float> x, MatrixView<float> head, MatrixView<float> residual,
              TcPrecision prec);

}  // namespace tcevd::tc
