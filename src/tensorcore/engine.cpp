#include "src/tensorcore/engine.hpp"

#include "src/common/recovery.hpp"

namespace tcevd::tc {

const char* engine_kind_name(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::Fp32: return "fp32";
    case EngineKind::Tc: return "tc";
    case EngineKind::EcTc: return "ectc";
  }
  return "?";
}

void Fp32Engine::do_gemm(blas::Trans transa, blas::Trans transb, float alpha,
                         ConstMatrixView<float> a, ConstMatrixView<float> b, float beta,
                         MatrixView<float> c) const {
  blas::gemm(transa, transb, alpha, a, b, beta, c);
}

void TcEngine::do_gemm(blas::Trans transa, blas::Trans transb, float alpha,
                       ConstMatrixView<float> a, ConstMatrixView<float> b, float beta,
                       MatrixView<float> c) const {
  tc_gemm(transa, transb, alpha, a, b, beta, c, prec_);
}

void EcTcEngine::do_gemm(blas::Trans transa, blas::Trans transb, float alpha,
                         ConstMatrixView<float> a, ConstMatrixView<float> b, float beta,
                         MatrixView<float> c) const {
  Status st = ec_tcgemm(transa, transb, alpha, a, b, beta, c, prec_);
  if (st.ok()) return;
  // ec_tcgemm reports saturation before touching C, so the identical update
  // (beta accumulation included) can be replayed at full fp32 precision —
  // the per-block CUDA-core fallback a real GPU implementation would take.
  fp32_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  recovery::note("ec_tcgemm", st.to_string() + "; re-ran block with fp32 GEMM");
  blas::gemm(transa, transb, alpha, a, b, beta, c);
}

}  // namespace tcevd::tc
