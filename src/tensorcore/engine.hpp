// Pluggable GEMM engine.
//
// The SBR and EVD drivers are written once against this interface and run
// with any of three numerics:
//
//   * Fp32Engine  — plain fp32 SGEMM (the "SGEMM" lines in Figs. 7, 9, 10)
//   * TcEngine    — emulated Tensor Core GEMM, fp16 or TF32 operands
//   * EcTcEngine  — error-corrected Tensor Core GEMM (Fig. 10 blue line)
//
// Engines are stateless apart from diagnostics and are shareable across
// threads/Contexts: do_gemm touches only its arguments, and the only mutable
// member (EcTcEngine's fallback counter) is atomic. Per-call instrumentation
// — GEMM shape recording, stage timers — lives on tcevd::Context's telemetry
// sink (src/common/context.hpp), not here, so two concurrent solves sharing
// one engine never race on recording state.
#pragma once

#include <atomic>
#include <string>

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_gemm.hpp"

namespace tcevd::tc {

/// Numerics family of an engine — recorded with every GEMM shape so flop
/// aggregation can account for engines that issue several Tensor Core
/// products per logical GEMM.
enum class EngineKind {
  Fp32,  ///< one fp32 SGEMM per call
  Tc,    ///< one Tensor Core GEMM per call
  EcTc,  ///< error-corrected: three TC GEMMs per call (head*head + cross terms)
};

/// Hardware products issued per logical GEMM under each engine kind.
constexpr double engine_cost_factor(EngineKind kind) noexcept {
  return kind == EngineKind::EcTc ? 3.0 : 1.0;
}

const char* engine_kind_name(EngineKind kind) noexcept;

/// One recorded GEMM: C(m x n) += op(A) * op(B) with inner dimension k.
struct GemmShape {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
  /// Engine that executed the call (default Fp32 — cost factor 1 — so shape
  /// traces built from bare {m, n, k} aggregates keep their meaning).
  EngineKind engine = EngineKind::Fp32;

  /// Useful arithmetic of the logical GEMM, independent of engine.
  double logical_flops() const noexcept { return 2.0 * double(m) * double(n) * double(k); }
  /// Flops actually issued to the hardware: EC-TC runs three TC products per
  /// logical GEMM, so its shapes cost 3x (paper Sec. 6.3 accounting).
  double flops() const noexcept { return logical_flops() * engine_cost_factor(engine); }
  /// Smallest dimension — the "skinniness" measure from paper Table 1.
  index_t min_dim() const noexcept { return std::min(m, std::min(n, k)); }
};

class GemmEngine {
 public:
  virtual ~GemmEngine() = default;

  /// Human-readable engine name ("fp32", "tc-fp16", ...).
  virtual const std::string& name() const noexcept = 0;

  /// Numerics family (drives the recorded-shape cost factor).
  virtual EngineKind kind() const noexcept = 0;

  /// C = alpha * op(A) * op(B) + beta * C under this engine's numerics.
  /// Prefer Context::gemm, which also records the shape into the context's
  /// telemetry sink; calling the engine directly performs no recording.
  ///
  /// const — and therefore callable through the `const GemmEngine&` a shared
  /// engine hands concurrent workers: execution touches only its arguments
  /// plus (for EcTcEngine) one atomic diagnostic counter. This signature is
  /// the engine-sharing contract the batched drivers rely on; an engine whose
  /// do_gemm needs non-atomic mutable state is not shareable and does not
  /// belong under this interface.
  void gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
            ConstMatrixView<float> b, float beta, MatrixView<float> c) const {
    do_gemm(transa, transb, alpha, a, b, beta, c);
  }

 protected:
  virtual void do_gemm(blas::Trans transa, blas::Trans transb, float alpha,
                       ConstMatrixView<float> a, ConstMatrixView<float> b, float beta,
                       MatrixView<float> c) const = 0;
};

/// Plain fp32 GEMM (cuBLAS-SGEMM stand-in).
class Fp32Engine final : public GemmEngine {
 public:
  const std::string& name() const noexcept override { return name_; }
  EngineKind kind() const noexcept override { return EngineKind::Fp32; }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) const override;

 private:
  std::string name_ = "fp32";
};

/// Emulated Tensor Core GEMM.
class TcEngine final : public GemmEngine {
 public:
  explicit TcEngine(TcPrecision prec = TcPrecision::Fp16)
      : prec_(prec), name_(prec == TcPrecision::Fp16 ? "tc-fp16" : "tc-tf32") {}

  const std::string& name() const noexcept override { return name_; }
  EngineKind kind() const noexcept override { return EngineKind::Tc; }
  TcPrecision precision() const noexcept { return prec_; }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) const override;

 private:
  TcPrecision prec_;
  std::string name_;
};

/// Error-corrected Tensor Core GEMM. A GEMM whose operands exceed the fp16
/// range (or hit the ec_tcgemm.saturate fault site) is transparently re-run
/// with a full-precision fp32 GEMM; each such event is counted here and
/// noted in the ambient recovery scope.
class EcTcEngine final : public GemmEngine {
 public:
  explicit EcTcEngine(TcPrecision prec = TcPrecision::Fp16)
      : prec_(prec), name_(prec == TcPrecision::Fp16 ? "ectc-fp16" : "ectc-tf32") {}

  const std::string& name() const noexcept override { return name_; }
  EngineKind kind() const noexcept override { return EngineKind::EcTc; }

  /// Number of GEMM calls that fell back to fp32 since construction. Atomic:
  /// the engine may be shared by concurrent Contexts.
  long fp32_fallbacks() const noexcept { return fp32_fallbacks_.load(std::memory_order_relaxed); }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) const override;

 private:
  TcPrecision prec_;
  std::string name_;
  mutable std::atomic<long> fp32_fallbacks_{0};
};

}  // namespace tcevd::tc
