// Pluggable GEMM engine.
//
// The SBR and EVD drivers are written once against this interface and run
// with any of three numerics:
//
//   * Fp32Engine  — plain fp32 SGEMM (the "SGEMM" lines in Figs. 7, 9, 10)
//   * TcEngine    — emulated Tensor Core GEMM, fp16 or TF32 operands
//   * EcTcEngine  — error-corrected Tensor Core GEMM (Fig. 10 blue line)
//
// Every call is also recorded (shape + engine) when recording is enabled, so
// tests can verify that the WY algorithm really generates squarer GEMMs than
// the ZY algorithm — the paper's central claim — and benches can feed the
// recorded shapes into the A100 performance model.
#pragma once

#include <string>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_gemm.hpp"

namespace tcevd::tc {

/// One recorded GEMM: C(m x n) += op(A) * op(B) with inner dimension k.
struct GemmShape {
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;

  double flops() const noexcept { return 2.0 * double(m) * double(n) * double(k); }
  /// Smallest dimension — the "skinniness" measure from paper Table 1.
  index_t min_dim() const noexcept { return std::min(m, std::min(n, k)); }
};

class GemmEngine {
 public:
  virtual ~GemmEngine() = default;

  /// Human-readable engine name ("fp32", "tc-fp16", ...).
  virtual const std::string& name() const noexcept = 0;

  /// C = alpha * op(A) * op(B) + beta * C under this engine's numerics.
  void gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
            ConstMatrixView<float> b, float beta, MatrixView<float> c);

  /// Shape recording (off by default).
  void set_recording(bool on) noexcept { recording_ = on; }
  const std::vector<GemmShape>& recorded() const noexcept { return shapes_; }
  void clear_recorded() noexcept { shapes_.clear(); }
  double recorded_flops() const noexcept;

 protected:
  virtual void do_gemm(blas::Trans transa, blas::Trans transb, float alpha,
                       ConstMatrixView<float> a, ConstMatrixView<float> b, float beta,
                       MatrixView<float> c) = 0;

 private:
  bool recording_ = false;
  std::vector<GemmShape> shapes_;
};

/// Plain fp32 GEMM (cuBLAS-SGEMM stand-in).
class Fp32Engine final : public GemmEngine {
 public:
  const std::string& name() const noexcept override { return name_; }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) override;

 private:
  std::string name_ = "fp32";
};

/// Emulated Tensor Core GEMM.
class TcEngine final : public GemmEngine {
 public:
  explicit TcEngine(TcPrecision prec = TcPrecision::Fp16)
      : prec_(prec), name_(prec == TcPrecision::Fp16 ? "tc-fp16" : "tc-tf32") {}

  const std::string& name() const noexcept override { return name_; }
  TcPrecision precision() const noexcept { return prec_; }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) override;

 private:
  TcPrecision prec_;
  std::string name_;
};

/// Error-corrected Tensor Core GEMM. A GEMM whose operands exceed the fp16
/// range (or hit the ec_tcgemm.saturate fault site) is transparently re-run
/// with a full-precision fp32 GEMM; each such event is counted here and
/// noted in the ambient recovery scope.
class EcTcEngine final : public GemmEngine {
 public:
  explicit EcTcEngine(TcPrecision prec = TcPrecision::Fp16)
      : prec_(prec), name_(prec == TcPrecision::Fp16 ? "ectc-fp16" : "ectc-tf32") {}

  const std::string& name() const noexcept override { return name_; }

  /// Number of GEMM calls that fell back to fp32 since construction.
  long fp32_fallbacks() const noexcept { return fp32_fallbacks_; }

 protected:
  void do_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
               ConstMatrixView<float> b, float beta, MatrixView<float> c) override;

 private:
  TcPrecision prec_;
  std::string name_;
  long fp32_fallbacks_ = 0;
};

}  // namespace tcevd::tc
