#include "src/tensorcore/mma_tile.hpp"

namespace tcevd::tc {

float round_operand(float v, TcPrecision prec) noexcept {
  return prec == TcPrecision::Fp16 ? round_to_half(v) : round_to_tf32(v);
}

void mma_tile(const float* a, index_t lda, const float* b, index_t ldb, float* c, index_t ldc,
              TcPrecision prec) noexcept {
  // Round operand fragments once, as the hardware does at fragment load.
  float af[kTile * kTile];
  float bf[kTile * kTile];
  for (index_t j = 0; j < kTile; ++j)
    for (index_t i = 0; i < kTile; ++i) {
      af[i + j * kTile] = round_operand(a[i + j * lda], prec);
      bf[i + j * kTile] = round_operand(b[i + j * ldb], prec);
    }
  for (index_t j = 0; j < kTile; ++j)
    for (index_t i = 0; i < kTile; ++i) {
      float acc = c[i + j * ldc];
      for (index_t l = 0; l < kTile; ++l) acc += af[i + l * kTile] * bf[l + j * kTile];
      c[i + j * ldc] = acc;
    }
}

}  // namespace tcevd::tc
