#include "src/tensorcore/mma_tile.hpp"

namespace tcevd::tc {

void mma_tile(const float* a, index_t lda, const float* b, index_t ldb, float* c, index_t ldc,
              TcPrecision prec) noexcept {
  // Round operand fragments once, as the hardware does at fragment load —
  // column-at-a-time through the dispatched convert kernel (each source
  // column is a contiguous 16-float run).
  alignas(kKernelAlignment) float af[kTile * kTile];
  alignas(kKernelAlignment) float bf[kTile * kTile];
  for (index_t j = 0; j < kTile; ++j) {
    round_buffer(a + j * lda, af + j * kTile, kTile, prec);
    round_buffer(b + j * ldb, bf + j * kTile, kTile, prec);
  }
  for (index_t j = 0; j < kTile; ++j)
    for (index_t i = 0; i < kTile; ++i) {
      float acc = c[i + j * ldc];
      for (index_t l = 0; l < kTile; ++l) acc += af[i + l * kTile] * bf[l + j * kTile];
      c[i + j * ldc] = acc;
    }
}

}  // namespace tcevd::tc
