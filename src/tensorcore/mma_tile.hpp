// Software model of one Tensor Core MMA tile operation.
//
// An Ampere HMMA instruction computes D = A*B + C where A and B are 16x16
// fp16 (or TF32) fragments and C/D are fp32 accumulators. The numerically
// relevant behaviour is:
//
//   1. operands are *rounded to fp16/TF32* before the multiply,
//   2. each fp16*fp16 product is exact in fp32 (11-bit x 11-bit mantissas),
//   3. products are accumulated in fp32.
//
// `mma_tile` reproduces exactly that on a 16x16x16 tile. The full tc_gemm
// (tc_gemm.hpp) applies the same operand rounding globally and accumulates
// in fp32, which is element-wise identical rounding with a different (but
// still fp32/RNE) accumulation order; the tile emulator exists so tests can
// pin down the per-tile semantics independently.
#pragma once

#include "src/common/half.hpp"
#include "src/common/matrix.hpp"
#include "src/tensorcore/tc_convert.hpp"  // TcPrecision, round_operand

namespace tcevd::tc {

inline constexpr index_t kTile = 16;

/// One 16x16x16 tile: c (16x16 fp32, column-major, ld=16) += A_tile * B_tile
/// where both operand tiles are rounded to `prec` first.
void mma_tile(const float* a, index_t lda, const float* b, index_t ldb, float* c, index_t ldc,
              TcPrecision prec) noexcept;

}  // namespace tcevd::tc
