// Tensor Core operand conversion: the ONE home for fp16/TF32 operand
// rounding and the EC head–tail split.
//
// Before this header existed, the scalar rounding logic was spelled three
// times — tc_gemm.cpp's RoundTransform + round_matrix, tc_syr2k.cpp's copy of
// RoundTransform, and mma_tile.cpp's fragment loop — with the EC split
// functors a fourth variant in ec_tcgemm.cpp. They all collapse onto
// round_operand / round_buffer / ec_split_buffer here, which also gives every
// call site the runtime-dispatched SIMD convert kernels for free: the batch
// forms route through simd::active_kernels() (bitwise-pinned to the scalar
// reference in src/common/half.cpp, see simd_dispatch.hpp) and fall back to
// the scalar loop when no vector kernel is installed.
//
// The PackTransform functors expose both the per-element operator() the
// packed-GEMM pack loops require and the batch apply() fast path they prefer
// (gemm_packed.hpp's HasBatchApply/HasBatchSplit detection).
#pragma once

#include "src/blas/simd_dispatch.hpp"
#include "src/common/aligned.hpp"
#include "src/common/half.hpp"
#include "src/common/matrix.hpp"

namespace tcevd::tc {

/// Input precision the emulated Tensor Core ingests.
enum class TcPrecision {
  Fp16,  ///< binary16 operands (machine eps ~ 9.8e-4)
  Tf32,  ///< TF32 operands (same 10-bit mantissa, fp32 exponent range)
};

/// Round an fp32 value to the given Tensor Core input precision.
inline float round_operand(float v, TcPrecision prec) noexcept {
  return prec == TcPrecision::Fp16 ? round_to_half(v) : round_to_tf32(v);
}

/// dst[i] = round_operand(src[i], prec) for a contiguous run; src == dst
/// (in-place) is allowed.
inline void round_buffer(const float* src, float* dst, index_t n, TcPrecision prec) {
  const blas::simd::KernelTable& kt = blas::simd::active_kernels();
  const blas::simd::RoundBufferFn fn =
      prec == TcPrecision::Fp16 ? kt.round_fp16 : kt.round_tf32;
  if (fn != nullptr) {
    fn(src, dst, n);
    return;
  }
  for (index_t i = 0; i < n; ++i) dst[i] = round_operand(src[i], prec);
}

/// head[i] = round(src[i]); tail[i] = round(scale * (src[i] - head[i])) — the
/// EC decomposition — for a contiguous run.
inline void ec_split_buffer(const float* src, float* head, float* tail, index_t n,
                            float scale, TcPrecision prec) {
  const blas::simd::KernelTable& kt = blas::simd::active_kernels();
  const blas::simd::EcSplitBufferFn fn =
      prec == TcPrecision::Fp16 ? kt.ec_split_fp16 : kt.ec_split_tf32;
  if (fn != nullptr) {
    fn(src, head, tail, n, scale);
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const float h = round_operand(src[i], prec);
    head[i] = h;
    tail[i] = round_operand(scale * (src[i] - h), prec);
  }
}

/// PackTransform rounding each operand element to the TC input precision as
/// it is packed (fragment-load rounding): the tc_gemm / tc_syr2k / EC-head
/// operand transform.
struct RoundTransform {
  TcPrecision prec;
  float operator()(float v) const { return round_operand(v, prec); }
  void apply(const float* src, float* dst, index_t n) const {
    round_buffer(src, dst, n, prec);
  }
};

/// PackTransform producing only the scaled residual round(s * (v - head)).
/// The batch form stages the (discarded) heads in a small stack buffer so the
/// split kernel still does the work in one vector pass.
struct EcTailTransform {
  TcPrecision prec;
  float scale;
  float operator()(float v) const {
    const float h = round_operand(v, prec);
    return round_operand(scale * (v - h), prec);
  }
  void apply(const float* src, float* dst, index_t n) const {
    constexpr index_t kChunk = 256;
    alignas(kKernelAlignment) float head[kChunk];
    for (index_t i = 0; i < n; i += kChunk) {
      const index_t c = n - i < kChunk ? n - i : kChunk;
      ec_split_buffer(src + i, head, dst + i, c, scale, prec);
    }
  }
};

/// Dual PackTransform for the split B pack: head and tail from one read of v.
struct EcHeadTailSplit {
  TcPrecision prec;
  float scale;
  void operator()(float v, float& h, float& t) const {
    h = round_operand(v, prec);
    t = round_operand(scale * (v - h), prec);
  }
  void apply(const float* src, float* head, float* tail, index_t n) const {
    ec_split_buffer(src, head, tail, n, scale, prec);
  }
};

}  // namespace tcevd::tc
