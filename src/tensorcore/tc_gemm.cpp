#include "src/tensorcore/tc_gemm.hpp"

namespace tcevd::tc {

namespace {

/// Materialize op(X) rounded to `prec` as a fresh column-major fp32 matrix.
Matrix<float> rounded_op(blas::Trans trans, ConstMatrixView<float> x, TcPrecision prec) {
  const index_t rows = trans == blas::Trans::No ? x.rows() : x.cols();
  const index_t cols = trans == blas::Trans::No ? x.cols() : x.rows();
  Matrix<float> out(rows, cols);
  if (trans == blas::Trans::No) {
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i < rows; ++i) out(i, j) = round_operand(x(i, j), prec);
  } else {
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i < rows; ++i) out(i, j) = round_operand(x(j, i), prec);
  }
  return out;
}

}  // namespace

void tc_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
             ConstMatrixView<float> b, float beta, MatrixView<float> c, TcPrecision prec) {
  // Operand rounding is element-wise, so rounding whole matrices up front is
  // identical to per-fragment rounding inside the tile loop; the fp32
  // accumulation then happens inside blas::gemm. (The tile-level emulator in
  // mma_tile.cpp is kept for semantics tests; this path is the fast one.)
  Matrix<float> ar = rounded_op(transa, a, prec);
  Matrix<float> br = rounded_op(transb, b, prec);
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, alpha, ar.view(), br.view(), beta, c);
}

void round_matrix(MatrixView<float> a, TcPrecision prec) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) a(i, j) = round_operand(a(i, j), prec);
}

}  // namespace tcevd::tc
