#include "src/tensorcore/tc_gemm.hpp"

#include "src/blas/gemm_packed.hpp"
#include "src/common/flop_counter.hpp"
#include "src/tensorcore/tc_convert.hpp"

namespace tcevd::tc {

void tc_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
             ConstMatrixView<float> b, float beta, MatrixView<float> c, TcPrecision prec) {
  // Fused path: rounding happens inside pack_a_block/pack_b_block while the
  // packed pipeline reads through op(A)/op(B); fp32 accumulation in the
  // micro-kernel. (The tile-level emulator in mma_tile.cpp is kept for
  // semantics tests; this path is the fast one.) gemm_packed does not count
  // flops, so the logical TC GEMM is accounted here.
  const index_t ka = (transa == blas::Trans::No) ? a.cols() : a.rows();
  blas::gemm_packed(transa, transb, alpha, a, b, beta, c, RoundTransform{prec},
                    RoundTransform{prec});
  FlopCounter::instance().add(gemm_flops(c.rows(), c.cols(), ka));
}

void round_matrix(MatrixView<float> a, TcPrecision prec) {
  // Each stored column is contiguous; round it in place through the
  // dispatched convert kernel.
  for (index_t j = 0; j < a.cols(); ++j) {
    float* col = a.rows() > 0 ? &a(0, j) : nullptr;
    round_buffer(col, col, a.rows(), prec);
  }
}

}  // namespace tcevd::tc
