// Emulated Tensor Core GEMM: fp32 in/out, operands rounded to fp16 (or TF32)
// before the multiply, products accumulated in fp32.
//
// This is the GEMM every Tensor Core path of the SBR/EVD pipeline goes
// through, so its accuracy (one ulp-of-fp16 relative error per operand,
// fp32 accumulation) is exactly what drives the paper's Table 3/4 numbers.
#pragma once

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/tensorcore/mma_tile.hpp"

namespace tcevd::tc {

/// C = alpha * op(A) * op(B) + beta * C with Tensor Core numerics.
/// A and B stay fp32 in memory; they are rounded to `prec` on the fly.
void tc_gemm(blas::Trans transa, blas::Trans transb, float alpha, ConstMatrixView<float> a,
             ConstMatrixView<float> b, float beta, MatrixView<float> c,
             TcPrecision prec = TcPrecision::Fp16);

/// Round every entry of `a` to the Tensor Core input precision, in place.
/// Useful for constructing reference results and for pre-truncating inputs.
void round_matrix(MatrixView<float> a, TcPrecision prec);

}  // namespace tcevd::tc
