#include "src/tensorcore/tc_syr2k.hpp"

#include "src/common/flop_counter.hpp"

namespace tcevd::tc {

void tc_syr2k(blas::Uplo uplo, float alpha, ConstMatrixView<float> a, ConstMatrixView<float> b,
              float beta, MatrixView<float> c, TcPrecision prec) {
  const index_t n = c.rows();
  const index_t k = a.cols();
  TCEVD_CHECK(c.cols() == n, "tc_syr2k requires square C");
  TCEVD_CHECK(a.rows() == n && b.rows() == n && b.cols() == k, "tc_syr2k shape mismatch");
  FlopCounter::instance().add(gemm_flops(n, n, k));

  // Pre-round the operands once (fragment-load rounding).
  Matrix<float> ar(n, k), br(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < n; ++i) {
      ar(i, j) = round_operand(a(i, j), prec);
      br(i, j) = round_operand(b(i, j), prec);
    }

  const bool lower = uplo == blas::Uplo::Lower;
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = lower ? j : 0;
    const index_t i1 = lower ? n : j + 1;
    for (index_t i = i0; i < i1; ++i) {
      // fp32 accumulation of the 2k products, operands already rounded.
      float acc = (beta == 0.0f) ? 0.0f : beta * c(i, j);
      float s = 0.0f;
      for (index_t l = 0; l < k; ++l) s += ar(i, l) * br(j, l) + br(i, l) * ar(j, l);
      c(i, j) = acc + alpha * s;
    }
  }
}

Syr2kTileCount tc_syr2k_tile_counts(index_t n, index_t k) {
  const index_t nt = (n + kTile - 1) / kTile;
  const index_t kt = (k + kTile - 1) / kTile;
  Syr2kTileCount out;
  // syr2k touches the lower-triangle tiles (incl. diagonal) for both
  // products; two full GEMMs touch every tile twice.
  out.syr2k = nt * (nt + 1) / 2 * kt * 2;
  out.two_gemm = nt * nt * kt * 2;
  return out;
}

}  // namespace tcevd::tc
