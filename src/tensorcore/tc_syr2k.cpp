#include "src/tensorcore/tc_syr2k.hpp"

#include <algorithm>
#include <vector>

#include "src/blas/gemm_packed.hpp"
#include "src/common/aligned.hpp"
#include "src/common/flop_counter.hpp"
#include "src/common/scratch.hpp"
#include "src/tensorcore/tc_convert.hpp"  // RoundTransform (fragment-load rounding)

namespace tcevd::tc {

namespace {

/// Column-panel width of the packed triangular update. Each panel computes a
/// dense rows x kPanelCols block through the paired packed kernel, then
/// merges only the stored triangle, so the opposite triangle of C is never
/// touched.
constexpr index_t kPanelCols = 128;

/// Thread-local panel accumulator, sized by reserve_scratch: no allocation
/// in same-shape steady state, released when far oversized for the current
/// problem (src/common/scratch.hpp).
AlignedVector<float>& syr2k_scratch() {
  thread_local AlignedVector<float> p;
  return p;
}

}  // namespace

void tc_syr2k(blas::Uplo uplo, float alpha, ConstMatrixView<float> a, ConstMatrixView<float> b,
              float beta, MatrixView<float> c, TcPrecision prec) {
  const index_t n = c.rows();
  const index_t k = a.cols();
  TCEVD_CHECK(c.cols() == n, "tc_syr2k requires square C");
  TCEVD_CHECK(a.rows() == n && b.rows() == n && b.cols() == k, "tc_syr2k shape mismatch");
  FlopCounter::instance().add(gemm_flops(n, n, k));
  if (n == 0) return;

  // Panelled packed path: for each block J of kPanelCols columns, compute
  //   P = Ar(rows, :) · Br(J, :)^T + Br(rows, :) · Ar(J, :)^T
  // through gemm_packed_nt_pair (rounding fused into packing, both products
  // carried per k-step by the paired micro-kernel), restricted to the rows
  // that intersect the stored triangle, then merge P into that triangle.
  //
  // Bitwise upper/lower symmetry: element (i,j) accumulates per k-step
  // ar(i,l)·br(j,l) into acc1 and br(i,l)·ar(j,l) into acc2; element (j,i)
  // accumulates the same products with acc1/acc2 swapped. fp multiply and
  // add are commutative bitwise, so P(i,j) in Lower mode equals P(j,i) in
  // Upper mode exactly, matching the old dot-product kernel's guarantee.
  const bool lower = uplo == blas::Uplo::Lower;
  AlignedVector<float>& pbuf = syr2k_scratch();
  const std::size_t pneed = static_cast<std::size_t>(n) * kPanelCols;
  reserve_scratch(pbuf, pneed);

  for (index_t j0 = 0; j0 < n; j0 += kPanelCols) {
    const index_t nb = std::min(kPanelCols, n - j0);
    const index_t r0 = lower ? j0 : 0;
    const index_t r1 = lower ? n : j0 + nb;
    const index_t nr = r1 - r0;
    std::fill(pbuf.begin(), pbuf.begin() + static_cast<std::ptrdiff_t>(nr * nb), 0.0f);
    MatrixView<float> p(pbuf.data(), nr, nb, std::max<index_t>(nr, 1));
    blas::gemm_packed_nt_pair(1.0f, a.sub(r0, 0, nr, k), b.sub(j0, 0, nb, k),
                              b.sub(r0, 0, nr, k), a.sub(j0, 0, nb, k), p,
                              RoundTransform{prec}, RoundTransform{prec});
    for (index_t jj = 0; jj < nb; ++jj) {
      const index_t j = j0 + jj;
      const index_t i0 = lower ? j : 0;
      const index_t i1 = lower ? n : j + 1;
      for (index_t i = i0; i < i1; ++i) {
        const float acc = (beta == 0.0f) ? 0.0f : beta * c(i, j);
        c(i, j) = acc + alpha * p(i - r0, jj);
      }
    }
  }
}

Syr2kTileCount tc_syr2k_tile_counts(index_t n, index_t k) {
  const index_t nt = (n + kTile - 1) / kTile;
  const index_t kt = (k + kTile - 1) / kTile;
  Syr2kTileCount out;
  // syr2k touches the lower-triangle tiles (incl. diagonal) for both
  // products; two full GEMMs touch every tile twice.
  out.syr2k = nt * (nt + 1) / 2 * kt * 2;
  out.two_gemm = nt * nt * kt * 2;
  return out;
}

}  // namespace tcevd::tc
