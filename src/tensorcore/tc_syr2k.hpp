// Tensor-Core symmetric rank-2k update (the paper's first future-work item).
//
// The paper's ZY trailing update A <- A - Y Z^T - Z Y^T runs as two full
// GEMMs on a Tensor Core because "Tensor Core does not support the syr2k
// routine natively ... this kind of GEMM is regarded as a normal GEMM that
// does 2x more computations". This routine closes that gap in the emulator:
// it walks only the tiles of the requested triangle (plus the diagonal
// tiles) with TC numerics, doing ~half the tile-MMAs of the two-GEMM form
// and producing an exactly symmetric update.
#pragma once

#include "src/blas/blas.hpp"
#include "src/common/matrix.hpp"
#include "src/tensorcore/mma_tile.hpp"

namespace tcevd::tc {

/// C = alpha * (A B^T + B A^T) + beta * C on the `uplo` triangle of C only
/// (the opposite triangle is left untouched), with Tensor Core operand
/// rounding. A, B are n x k.
void tc_syr2k(blas::Uplo uplo, float alpha, ConstMatrixView<float> a, ConstMatrixView<float> b,
              float beta, MatrixView<float> c, TcPrecision prec = TcPrecision::Fp16);

/// Tile-MMA count of tc_syr2k vs the two-GEMM form, for the ablation bench:
/// returns {syr2k_tiles, two_gemm_tiles}.
struct Syr2kTileCount {
  index_t syr2k = 0;
  index_t two_gemm = 0;
};
Syr2kTileCount tc_syr2k_tile_counts(index_t n, index_t k);

}  // namespace tcevd::tc
