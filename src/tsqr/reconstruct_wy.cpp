#include "src/tsqr/reconstruct_wy.hpp"

#include "src/blas/blas.hpp"
#include "src/lapack/lu.hpp"

namespace tcevd::tsqr {

namespace {

template <typename T>
void reconstruct_impl(ConstMatrixView<T> q, MatrixView<T> w, MatrixView<T> y,
                      std::vector<T>& signs) {
  const index_t m = q.rows();
  const index_t n = q.cols();
  TCEVD_CHECK(w.rows() == m && w.cols() == n && y.rows() == m && y.cols() == n,
              "reconstruct_wy output shape mismatch");

  // Signed LU (Ballard et al., Algorithm "LU with on-the-fly sign choice"):
  // eliminate A = S - Q column by column, choosing each S_jj = +-1 only when
  // its column comes up, from the *Schur-complement-updated* diagonal entry,
  // so |pivot| = 1 + |updated Q_jj| >= 1 and the factorization cannot break
  // down. A static sign choice from the original diagonal of Q does not work:
  // the updated diagonal can flip sign during elimination.
  signs.assign(static_cast<std::size_t>(n), T{1});
  Matrix<T> a(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = -q(i, j);

  for (index_t j = 0; j < n; ++j) {
    const T s = (a(j, j) >= T{}) ? T{1} : T{-1};
    signs[static_cast<std::size_t>(j)] = s;
    a(j, j) += s;
    const T pivot = a(j, j);
    TCEVD_CHECK(pivot != T{}, "reconstruct_wy: zero pivot (Q not orthonormal?)");
    const T inv = T{1} / pivot;
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    for (index_t c = j + 1; c < n; ++c) {
      const T ujc = a(j, c);
      if (ujc == T{}) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, c) -= a(i, j) * ujc;
    }
  }

  // Y = unit lower trapezoidal factor.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      y(i, j) = (i > j) ? a(i, j) : (i == j ? T{1} : T{});

  // The reconstruction identity is  Y (T Y1^T) = I(:,1:n) - Q*S  with S
  // scaling the *columns* of Q (the sign convention the reflector product
  // actually produces). The signed LU above ran on (S - Q) = (I - Q S) * S,
  // whose L factor is identical (column scaling only rescales U), so Y is
  // already correct; W however must be solved from the column-scaled matrix:
  // W = (I - Q S) Y1^{-T}.
  for (index_t j = 0; j < n; ++j) {
    const T s = signs[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < m; ++i) w(i, j) = ((i == j) ? T{1} : T{}) - q(i, j) * s;
  }
  blas::trsm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Yes, blas::Diag::Unit, T{1},
             ConstMatrixView<T>(y.sub(0, 0, n, n)), w);
}

}  // namespace

void reconstruct_wy(ConstMatrixView<float> q, MatrixView<float> w, MatrixView<float> y,
                    std::vector<float>& signs) {
  reconstruct_impl(q, w, y, signs);
}

void reconstruct_wy(ConstMatrixView<double> q, MatrixView<double> w, MatrixView<double> y,
                    std::vector<double>& signs) {
  reconstruct_impl(q, w, y, signs);
}

}  // namespace tcevd::tsqr
