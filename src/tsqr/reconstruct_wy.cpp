#include "src/tsqr/reconstruct_wy.hpp"

#include <cmath>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/workspace.hpp"
#include "src/lapack/lu.hpp"

namespace tcevd::tsqr {

namespace {

template <typename T>
Status reconstruct_impl(Workspace& ws, ConstMatrixView<T> q, MatrixView<T> w, MatrixView<T> y,
                        std::vector<T>& signs) {
  const index_t m = q.rows();
  const index_t n = q.cols();
  TCEVD_CHECK(w.rows() == m && w.cols() == n && y.rows() == m && y.cols() == n,
              "reconstruct_wy output shape mismatch");
  if (fault::should_fire(fault::Site::ReconstructSingular))
    return fault_injected_error(fault::site_name(fault::Site::ReconstructSingular));

  // Signed LU (Ballard et al., Algorithm "LU with on-the-fly sign choice"):
  // eliminate A = S - Q column by column, choosing each S_jj = +-1 only when
  // its column comes up, from the *Schur-complement-updated* diagonal entry,
  // so |pivot| = 1 + |updated Q_jj| >= 1 and the factorization cannot break
  // down. A static sign choice from the original diagonal of Q does not work:
  // the updated diagonal can flip sign during elimination.
  signs.assign(static_cast<std::size_t>(n), T{1});
  auto scope = ws.scope();
  auto a = scope.matrix<T>(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = -q(i, j);

  for (index_t j = 0; j < n; ++j) {
    const T s = (a(j, j) >= T{}) ? T{1} : T{-1};
    signs[static_cast<std::size_t>(j)] = s;
    a(j, j) += s;
    const T pivot = a(j, j);
    // Orthonormal Q guarantees |pivot| = 1 + |updated Q_jj| >= 1; a pivot far
    // below that bound means Q degenerated upstream (saturated fp16 GEMM,
    // poisoned panel) and the LU is no longer trustworthy.
    if (std::abs(static_cast<double>(pivot)) < 1e-3)
      return singular_panel_error("reconstruct_wy: near-zero pivot (Q not orthonormal?)", j);
    const T inv = T{1} / pivot;
    for (index_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    for (index_t c = j + 1; c < n; ++c) {
      const T ujc = a(j, c);
      if (ujc == T{}) continue;
      for (index_t i = j + 1; i < m; ++i) a(i, c) -= a(i, j) * ujc;
    }
  }

  // Y = unit lower trapezoidal factor.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      y(i, j) = (i > j) ? a(i, j) : (i == j ? T{1} : T{});

  // The reconstruction identity is  Y (T Y1^T) = I(:,1:n) - Q*S  with S
  // scaling the *columns* of Q (the sign convention the reflector product
  // actually produces). The signed LU above ran on (S - Q) = (I - Q S) * S,
  // whose L factor is identical (column scaling only rescales U), so Y is
  // already correct; W however must be solved from the column-scaled matrix:
  // W = (I - Q S) Y1^{-T}.
  for (index_t j = 0; j < n; ++j) {
    const T s = signs[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < m; ++i) w(i, j) = ((i == j) ? T{1} : T{}) - q(i, j) * s;
  }
  blas::trsm(blas::Side::Right, blas::Uplo::Lower, blas::Trans::Yes, blas::Diag::Unit, T{1},
             ConstMatrixView<T>(y.sub(0, 0, n, n)), w);
  return ok_status();
}

}  // namespace

Status reconstruct_wy(Context& ctx, ConstMatrixView<float> q, MatrixView<float> w,
                      MatrixView<float> y, std::vector<float>& signs) {
  return reconstruct_impl(ctx.workspace(), q, w, y, signs);
}

Status reconstruct_wy(Context& ctx, ConstMatrixView<double> q, MatrixView<double> w,
                      MatrixView<double> y, std::vector<double>& signs) {
  return reconstruct_impl(ctx.workspace(), q, w, y, signs);
}

Status reconstruct_wy(Workspace& ws, ConstMatrixView<float> q, MatrixView<float> w,
                      MatrixView<float> y, std::vector<float>& signs) {
  return reconstruct_impl(ws, q, w, y, signs);
}

Status reconstruct_wy(Workspace& ws, ConstMatrixView<double> q, MatrixView<double> w,
                      MatrixView<double> y, std::vector<double>& signs) {
  return reconstruct_impl(ws, q, w, y, signs);
}

Status reconstruct_wy(ConstMatrixView<float> q, MatrixView<float> w, MatrixView<float> y,
                      std::vector<float>& signs) {
  Workspace ws;
  return reconstruct_impl(ws, q, w, y, signs);
}

Status reconstruct_wy(ConstMatrixView<double> q, MatrixView<double> w, MatrixView<double> y,
                      std::vector<double>& signs) {
  Workspace ws;
  return reconstruct_impl(ws, q, w, y, signs);
}

}  // namespace tcevd::tsqr
