// Householder-vector reconstruction from an explicit orthonormal Q
// (paper Algorithm 3; Ballard, Demmel, Grigori, Jacquelin, Nguyen,
// Solomonik 2014).
//
// TSQR produces an explicit Q, but stable two-sided trailing updates need
// the WY form Q = I - W Y^T. Observing that for a Householder-QR Q there is
// a diagonal sign matrix S with
//
//   S - Q = Y (T Y1^T),      Y unit lower trapezoidal, T upper triangular,
//
// the factorization is *exactly* a non-pivoted LU of the first n rows:
// L = Y1, U = T Y1^T; the trailing rows follow from a triangular solve
// Y2 = (S - Q)(n:m, :) U^{-1}, and W = (S - Q)(:, 1:n) Y1^{-T}. Ballard et
// al. prove the non-pivoted LU cannot break down when S_jj = -sign(Q_jj).
//
// The reconstructed pair satisfies  I - W Y^T = Q * S, so the caller must
// fold S into R (R := S * R) to keep A = (I - W Y^T) (S R) intact.
#pragma once

#include <vector>

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd {
class Context;
class Workspace;
}  // namespace tcevd

namespace tcevd::tsqr {

/// Reconstruct (W, Y) from explicit Q (m x n, orthonormal columns) so that
/// I - W Y^T == Q * diag(signs). `signs` receives the n diagonal entries of
/// S (each +-1); apply them to the rows of your R factor.
///
/// Ballard et al. prove the signed LU cannot break down when Q is
/// orthonormal (|pivot| >= 1); a pivot far below that bound means Q lost
/// orthonormality upstream and reports SingularPanel with the offending
/// column in detail(). Shape violations remain programmer errors.
///
/// The LU scratch copy comes from the context's workspace arena (or the
/// given Workspace); the plain overloads allocate a private arena per call
/// and remain for standalone/reference use.
Status reconstruct_wy(Context& ctx, ConstMatrixView<float> q, MatrixView<float> w,
                      MatrixView<float> y, std::vector<float>& signs);
Status reconstruct_wy(Context& ctx, ConstMatrixView<double> q, MatrixView<double> w,
                      MatrixView<double> y, std::vector<double>& signs);

Status reconstruct_wy(Workspace& ws, ConstMatrixView<float> q, MatrixView<float> w,
                      MatrixView<float> y, std::vector<float>& signs);
Status reconstruct_wy(Workspace& ws, ConstMatrixView<double> q, MatrixView<double> w,
                      MatrixView<double> y, std::vector<double>& signs);

/// Deprecated: self-allocating compatibility forms.
Status reconstruct_wy(ConstMatrixView<float> q, MatrixView<float> w, MatrixView<float> y,
                      std::vector<float>& signs);
Status reconstruct_wy(ConstMatrixView<double> q, MatrixView<double> w, MatrixView<double> y,
                      std::vector<double>& signs);

}  // namespace tcevd::tsqr
