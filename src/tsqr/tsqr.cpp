#include "src/tsqr/tsqr.hpp"

#include <cmath>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/workspace.hpp"
#include "src/lapack/qr.hpp"

namespace tcevd::tsqr {

namespace {

/// Leaf: ordinary Householder QR producing explicit Q and R.
template <typename T>
void leaf_qr(Workspace& ws, ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  auto scope = ws.scope();
  auto work = scope.matrix<T>(m, n);
  copy_matrix(a, work);
  std::vector<T> tau;
  lapack::geqr2(work, tau);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) r(i, j) = (i <= j) ? work(i, j) : T{};
  lapack::orgqr(work, tau, q);
}

/// Recursive TSQR: split rows, factor halves, combine [R1; R2] and fold the
/// combining Q back into the children's Qs.
template <typename T>
void tsqr_rec(Workspace& ws, ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r,
              const TsqrOptions& opts) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m <= std::max(opts.leaf_rows, 2 * n)) {
    leaf_qr(ws, a, q, r);
    return;
  }
  const index_t mh = m / 2;

  auto scope = ws.scope();
  auto r1 = scope.matrix<T>(n, n);
  auto r2 = scope.matrix<T>(n, n);
  tsqr_rec<T>(ws, a.sub(0, 0, mh, n), q.sub(0, 0, mh, n), r1, opts);
  tsqr_rec<T>(ws, a.sub(mh, 0, m - mh, n), q.sub(mh, 0, m - mh, n), r2, opts);

  // Combine: QR of the stacked (2n x n) R factors.
  auto stacked = scope.matrix<T>(2 * n, n);
  copy_matrix<T>(r1, stacked.sub(0, 0, n, n));
  copy_matrix<T>(r2, stacked.sub(n, 0, n, n));
  auto qc = scope.matrix<T>(2 * n, n);
  leaf_qr<T>(ws, stacked, qc, r);

  // Q_top *= Qc(0:n, :), Q_bottom *= Qc(n:2n, :).
  auto tmp_top = scope.matrix<T>(mh, n);
  blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{1}, ConstMatrixView<T>(q.sub(0, 0, mh, n)),
                ConstMatrixView<T>(qc.sub(0, 0, n, n)), T{}, tmp_top);
  copy_matrix<T>(ConstMatrixView<T>(tmp_top), q.sub(0, 0, mh, n));

  auto tmp_bot = scope.matrix<T>(m - mh, n);
  blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{1},
                ConstMatrixView<T>(q.sub(mh, 0, m - mh, n)),
                ConstMatrixView<T>(qc.sub(n, 0, n, n)), T{}, tmp_bot);
  copy_matrix<T>(ConstMatrixView<T>(tmp_bot), q.sub(mh, 0, m - mh, n));
}

template <typename T>
Status tsqr_impl(Workspace& ws, ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r,
                 const TsqrOptions& opts) {
  TCEVD_CHECK(a.rows() >= a.cols(), "tsqr requires a tall matrix (m >= n)");
  TCEVD_CHECK(q.rows() == a.rows() && q.cols() == a.cols(), "tsqr Q shape mismatch");
  TCEVD_CHECK(r.rows() == a.cols() && r.cols() == a.cols(), "tsqr R shape mismatch");
  if (opts.screen_input) {
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t i = 0; i < a.rows(); ++i)
        if (!std::isfinite(static_cast<double>(a(i, j))))
          return invalid_input_error("tsqr: non-finite entry in input panel");
  }
  TsqrOptions o = opts;
  o.leaf_rows = std::max(o.leaf_rows, a.cols());
  tsqr_rec<T>(ws, a, q, r, o);
  return ok_status();
}

}  // namespace

Status tsqr_factor(Context& ctx, ConstMatrixView<float> a, MatrixView<float> q,
                   MatrixView<float> r, const TsqrOptions& opts) {
  return tsqr_impl(ctx.workspace(), a, q, r, opts);
}

Status tsqr_factor(Context& ctx, ConstMatrixView<double> a, MatrixView<double> q,
                   MatrixView<double> r, const TsqrOptions& opts) {
  return tsqr_impl(ctx.workspace(), a, q, r, opts);
}

Status tsqr_factor(Workspace& ws, ConstMatrixView<float> a, MatrixView<float> q,
                   MatrixView<float> r, const TsqrOptions& opts) {
  return tsqr_impl(ws, a, q, r, opts);
}

Status tsqr_factor(Workspace& ws, ConstMatrixView<double> a, MatrixView<double> q,
                   MatrixView<double> r, const TsqrOptions& opts) {
  return tsqr_impl(ws, a, q, r, opts);
}

Status tsqr_factor(ConstMatrixView<float> a, MatrixView<float> q, MatrixView<float> r,
                   const TsqrOptions& opts) {
  Workspace ws;
  return tsqr_impl(ws, a, q, r, opts);
}

Status tsqr_factor(ConstMatrixView<double> a, MatrixView<double> q, MatrixView<double> r,
                   const TsqrOptions& opts) {
  Workspace ws;
  return tsqr_impl(ws, a, q, r, opts);
}

}  // namespace tcevd::tsqr
