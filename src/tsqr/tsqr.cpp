#include "src/tsqr/tsqr.hpp"

#include <cmath>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/lapack/qr.hpp"

namespace tcevd::tsqr {

namespace {

/// Leaf: ordinary Householder QR producing explicit Q and R.
template <typename T>
void leaf_qr(ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  Matrix<T> work(m, n);
  copy_matrix(a, work.view());
  std::vector<T> tau;
  lapack::geqr2(work.view(), tau);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) r(i, j) = (i <= j) ? work(i, j) : T{};
  lapack::orgqr(work.view(), tau, q);
}

/// Recursive TSQR: split rows, factor halves, combine [R1; R2] and fold the
/// combining Q back into the children's Qs.
template <typename T>
void tsqr_rec(ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r,
              const TsqrOptions& opts) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m <= std::max(opts.leaf_rows, 2 * n)) {
    leaf_qr(a, q, r);
    return;
  }
  const index_t mh = m / 2;

  Matrix<T> r1(n, n);
  Matrix<T> r2(n, n);
  tsqr_rec<T>(a.sub(0, 0, mh, n), q.sub(0, 0, mh, n), r1.view(), opts);
  tsqr_rec<T>(a.sub(mh, 0, m - mh, n), q.sub(mh, 0, m - mh, n), r2.view(), opts);

  // Combine: QR of the stacked (2n x n) R factors.
  Matrix<T> stacked(2 * n, n);
  copy_matrix<T>(r1.view(), stacked.sub(0, 0, n, n));
  copy_matrix<T>(r2.view(), stacked.sub(n, 0, n, n));
  Matrix<T> qc(2 * n, n);
  leaf_qr<T>(stacked.view(), qc.view(), r);

  // Q_top *= Qc(0:n, :), Q_bottom *= Qc(n:2n, :).
  Matrix<T> tmp_top(mh, n);
  blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{1}, ConstMatrixView<T>(q.sub(0, 0, mh, n)),
             ConstMatrixView<T>(qc.sub(0, 0, n, n)), T{}, tmp_top.view());
  copy_matrix<T>(tmp_top.view(), q.sub(0, 0, mh, n));

  Matrix<T> tmp_bot(m - mh, n);
  blas::gemm<T>(blas::Trans::No, blas::Trans::No, T{1},
             ConstMatrixView<T>(q.sub(mh, 0, m - mh, n)), ConstMatrixView<T>(qc.sub(n, 0, n, n)),
             T{}, tmp_bot.view());
  copy_matrix<T>(tmp_bot.view(), q.sub(mh, 0, m - mh, n));
}

template <typename T>
Status tsqr_impl(ConstMatrixView<T> a, MatrixView<T> q, MatrixView<T> r,
                 const TsqrOptions& opts) {
  TCEVD_CHECK(a.rows() >= a.cols(), "tsqr requires a tall matrix (m >= n)");
  TCEVD_CHECK(q.rows() == a.rows() && q.cols() == a.cols(), "tsqr Q shape mismatch");
  TCEVD_CHECK(r.rows() == a.cols() && r.cols() == a.cols(), "tsqr R shape mismatch");
  if (opts.screen_input) {
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t i = 0; i < a.rows(); ++i)
        if (!std::isfinite(static_cast<double>(a(i, j))))
          return invalid_input_error("tsqr: non-finite entry in input panel");
  }
  TsqrOptions o = opts;
  o.leaf_rows = std::max(o.leaf_rows, a.cols());
  tsqr_rec<T>(a, q, r, o);
  return ok_status();
}

}  // namespace

Status tsqr_factor(ConstMatrixView<float> a, MatrixView<float> q, MatrixView<float> r,
                   const TsqrOptions& opts) {
  return tsqr_impl(a, q, r, opts);
}

Status tsqr_factor(ConstMatrixView<double> a, MatrixView<double> q, MatrixView<double> r,
                   const TsqrOptions& opts) {
  return tsqr_impl(a, q, r, opts);
}

}  // namespace tcevd::tsqr
