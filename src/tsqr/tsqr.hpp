// Tall-Skinny QR (paper Section 5.1).
//
// Communication-avoiding QR on a binary row-block tree: each leaf block is
// factorized with Householder QR (the paper deliberately uses Householder
// rather than modified Gram-Schmidt per block, for stability), pairs of R
// factors are re-factorized up the tree, and the explicit Q is assembled on
// the way back down. The output is an explicit orthonormal Q plus R — the
// Householder (WY) form is recovered afterwards by reconstruct_wy.
#pragma once

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd::tsqr {

struct TsqrOptions {
  /// Row count below which a block is factorized directly. Must be >= the
  /// panel width; the default mimics a GPU block of 256 rows.
  index_t leaf_rows = 256;
  /// Reject non-finite input with InvalidInput instead of silently
  /// propagating NaN/Inf through the tree (cheap O(mn) scan).
  bool screen_input = true;
};

/// Factor a (m x n, m >= n) into Q (m x n, orthonormal columns) * R (n x n,
/// upper triangular). `a` is not modified. Shape violations are programmer
/// errors (TCEVD_CHECK); non-finite input reports InvalidInput.
Status tsqr_factor(ConstMatrixView<float> a, MatrixView<float> q, MatrixView<float> r,
                   const TsqrOptions& opts = {});

/// Double-precision variant (used by reference pipelines and tests).
Status tsqr_factor(ConstMatrixView<double> a, MatrixView<double> q, MatrixView<double> r,
                   const TsqrOptions& opts = {});

}  // namespace tcevd::tsqr
