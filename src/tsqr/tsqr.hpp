// Tall-Skinny QR (paper Section 5.1).
//
// Communication-avoiding QR on a binary row-block tree: each leaf block is
// factorized with Householder QR (the paper deliberately uses Householder
// rather than modified Gram-Schmidt per block, for stability), pairs of R
// factors are re-factorized up the tree, and the explicit Q is assembled on
// the way back down. The output is an explicit orthonormal Q plus R — the
// Householder (WY) form is recovered afterwards by reconstruct_wy.
//
// Tree temporaries come from a workspace arena: pass a Context (pipeline
// callers) or a bare Workspace; the self-allocating overloads remain for
// standalone/reference use and simply spin up a private arena per call.
#pragma once

#include "src/common/matrix.hpp"
#include "src/common/status.hpp"

namespace tcevd {
class Context;
class Workspace;
}  // namespace tcevd

namespace tcevd::tsqr {

struct TsqrOptions {
  /// Row count below which a block is factorized directly. Must be >= the
  /// panel width; the default mimics a GPU block of 256 rows.
  index_t leaf_rows = 256;
  /// Reject non-finite input with InvalidInput instead of silently
  /// propagating NaN/Inf through the tree (cheap O(mn) scan).
  bool screen_input = true;
};

/// Factor a (m x n, m >= n) into Q (m x n, orthonormal columns) * R (n x n,
/// upper triangular). `a` is not modified. Shape violations are programmer
/// errors (TCEVD_CHECK); non-finite input reports InvalidInput. Tree
/// temporaries are checked out of the context's workspace arena.
Status tsqr_factor(Context& ctx, ConstMatrixView<float> a, MatrixView<float> q,
                   MatrixView<float> r, const TsqrOptions& opts = {});
Status tsqr_factor(Context& ctx, ConstMatrixView<double> a, MatrixView<double> q,
                   MatrixView<double> r, const TsqrOptions& opts = {});

/// Workspace-only forms (no engine involved — TSQR runs in scalar fp32/fp64).
Status tsqr_factor(Workspace& ws, ConstMatrixView<float> a, MatrixView<float> q,
                   MatrixView<float> r, const TsqrOptions& opts = {});
Status tsqr_factor(Workspace& ws, ConstMatrixView<double> a, MatrixView<double> q,
                   MatrixView<double> r, const TsqrOptions& opts = {});

/// Deprecated: self-allocating compatibility forms (private arena per call).
Status tsqr_factor(ConstMatrixView<float> a, MatrixView<float> q, MatrixView<float> r,
                   const TsqrOptions& opts = {});
Status tsqr_factor(ConstMatrixView<double> a, MatrixView<double> q, MatrixView<double> r,
                   const TsqrOptions& opts = {});

}  // namespace tcevd::tsqr
