// Compact band storage and the band-native bulge chase.
#include <gtest/gtest.h>

#include "src/common/context.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/evd/evd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

template <typename T>
sbr::BandMatrix<T> random_band(index_t n, index_t bw, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<T>(a.view(), bw);
  return sbr::BandMatrix<T>::from_full(a.view(), bw);
}

TEST(BandStorage, RoundTripFullCompactFull) {
  const index_t n = 30, bw = 5;
  Rng rng(1);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<double>(a.view(), bw);
  auto band = sbr::BandMatrix<double>::from_full(a.view(), bw);
  auto back = band.to_full();
  EXPECT_EQ(test::rel_diff<double>(back.view(), a.view()), 0.0);
}

TEST(BandStorage, GetIsSymmetric) {
  auto band = random_band<double>(20, 4, 2);
  EXPECT_EQ(band.get(7, 4), band.get(4, 7));
}

TEST(BandStorage, FootprintIsLinearInN) {
  sbr::BandMatrix<float> small(1000, 16);
  sbr::BandMatrix<float> big(4000, 16);
  // O(n b): 4x the rows -> 4x the bytes (a full matrix would be 16x).
  EXPECT_EQ(big.storage_bytes(), 4 * small.storage_bytes());
  EXPECT_LT(big.storage_bytes(), 4000ull * 4000ull * 4ull / 50ull);
}

class BandChaseTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(BandChaseTest, MatchesFullStorageChase) {
  const auto [n, bw] = GetParam();
  Rng rng(100 + n);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<double>(a.view(), bw);

  // Full-storage reference.
  Matrix<double> full = a;
  auto ref = bulge::bulge_chase<double>(full.view(), bw, nullptr);

  // Compact chase.
  auto band = sbr::BandMatrix<double>::from_full(a.view(), bw);
  std::vector<double> d, e;
  sbr::bulge_chase_band(band, d, e);

  // Identical rotation sequence -> identical tridiagonal up to roundoff.
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ref.d[static_cast<std::size_t>(i)], 1e-12);
  for (index_t i = 0; i + 1 < n; ++i)
    EXPECT_NEAR(e[static_cast<std::size_t>(i)], ref.e[static_cast<std::size_t>(i)], 1e-12);
}

TEST_P(BandChaseTest, SpectrumPreserved) {
  const auto [n, bw] = GetParam();
  Rng rng(200 + n);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<double>(a.view(), bw);

  auto band = sbr::BandMatrix<double>::from_full(a.view(), bw);
  std::vector<double> d, e;
  sbr::bulge_chase_band(band, d, e);
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  auto ref = *evd::reference_eigenvalues(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BandChaseTest,
                         ::testing::Values(std::make_tuple<index_t, index_t>(24, 2),
                                           std::make_tuple<index_t, index_t>(64, 8),
                                           std::make_tuple<index_t, index_t>(100, 16),
                                           std::make_tuple<index_t, index_t>(65, 7),
                                           std::make_tuple<index_t, index_t>(50, 1)));

TEST(BandChase, AfterSbrPipeline) {
  // SBR output -> compact band -> chase -> eigenvalues == direct pipeline.
  const index_t n = 96, bw = 8;
  auto a = test::random_symmetric<float>(n, 9);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = bw;
  opt.big_block = 32;
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);

  auto band = sbr::BandMatrix<float>::from_full(ConstMatrixView<float>(res.band.view()), bw);
  std::vector<float> d, e;
  sbr::bulge_chase_band(band, d, e);
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = *evd::reference_eigenvalues(ad.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-4 * n);
}

}  // namespace
}  // namespace tcevd
