// Batched evd::solve_many driver: equivalence with the sequential
// single-solve path (bitwise eigenvalues, per-problem residual bounds),
// degenerate batch shapes, failure isolation under fault injection, and the
// telemetry aggregation semantics (merge totals == sum of worker totals).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/context.hpp"
#include "src/common/fault.hpp"
#include "src/common/norms.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/matgen/matgen.hpp"
#include "src/tensorcore/engine.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

std::vector<Matrix<float>> make_batch(index_t n, std::size_t count, std::uint64_t seed0) {
  std::vector<Matrix<float>> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    batch.push_back(test::random_symmetric<float>(n, seed0 + i));
  return batch;
}

// ---------------------------------------------------------------------------
// Equivalence with the sequential path.
// ---------------------------------------------------------------------------

TEST(SolveMany, BitwiseMatchesSequentialSolve) {
  const index_t n = 64;
  auto batch = make_batch(n, 10, 1000);

  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.big_block = 32;
  bopt.num_threads = 4;
  auto res = evd::solve_many(batch, engine, bopt);

  ASSERT_EQ(res.problems.size(), batch.size());
  ASSERT_TRUE(res.all_ok());
  EXPECT_EQ(res.num_threads, 4);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Context ctx(engine);
    auto ref = *evd::solve(batch[i].view(), ctx, bopt.evd);
    ASSERT_EQ(res.problems[i].eigenvalues.size(), ref.eigenvalues.size()) << "problem " << i;
    for (std::size_t j = 0; j < ref.eigenvalues.size(); ++j)
      EXPECT_EQ(res.problems[i].eigenvalues[j], ref.eigenvalues[j])
          << "problem " << i << " eigenvalue " << j << " differs from sequential solve";
  }
}

TEST(SolveMany, VectorsSatisfyResidualAndOrthogonalityBounds) {
  const index_t n = 48;
  auto batch = make_batch(n, 6, 2000);

  tc::EcTcEngine engine;  // shared atomic-counter engine, the production pick
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.big_block = 16;
  bopt.evd.vectors = true;
  bopt.num_threads = 3;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& p = res.problems[i];
    ASSERT_EQ(p.vectors.rows(), n);
    ASSERT_EQ(p.vectors.cols(), n);
    EXPECT_LT(evd::eigenpair_residual(batch[i].view(), p.eigenvalues, p.vectors.view()), 1e-2)
        << "problem " << i;
    EXPECT_LT(orthogonality_error<float>(p.vectors.view()), 1e-3) << "problem " << i;
    EXPECT_GE(p.worker, 0);
    EXPECT_LT(p.worker, res.num_threads);
  }
}

TEST(SolveMany, SelectedRangeMatchesSolveSelected) {
  const index_t n = 40;
  auto batch = make_batch(n, 4, 3000);

  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 4;
  bopt.evd.big_block = 8;
  bopt.selected = true;
  bopt.il = 2;
  bopt.iu = 9;
  bopt.num_threads = 2;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  for (const auto& p : res.problems) ASSERT_EQ(p.eigenvalues.size(), 8u);

  // The selected window equals the matching slice of the full spectrum.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Context ctx(engine);
    auto full = *evd::solve(batch[i].view(), ctx, bopt.evd);
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(res.problems[i].eigenvalues[j], full.eigenvalues[j + 2], 1e-3)
          << "problem " << i;
  }
}

// ---------------------------------------------------------------------------
// Degenerate batch shapes.
// ---------------------------------------------------------------------------

TEST(SolveMany, EmptyBatch) {
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  std::vector<Matrix<float>> batch;
  auto res = evd::solve_many(batch, engine, bopt);
  EXPECT_TRUE(res.problems.empty());
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.num_ok(), 0u);
  EXPECT_EQ(res.num_threads, 0);
}

TEST(SolveMany, BatchSmallerThanThreadCount) {
  const index_t n = 32;
  auto batch = make_batch(n, 2, 4000);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 4;
  bopt.num_threads = 8;  // more workers than problems: clamped, not deadlocked
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  EXPECT_EQ(res.num_threads, 2);
  for (const auto& p : res.problems) EXPECT_EQ(p.eigenvalues.size(), std::size_t(n));
}

TEST(SolveMany, SingleProblemDefaultThreads) {
  const index_t n = 24;
  auto batch = make_batch(n, 1, 5000);
  tc::TcEngine engine(tc::TcPrecision::Fp16);
  evd::BatchOptions bopt;  // num_threads = 0: auto, clamps to batch size 1
  bopt.evd.bandwidth = 4;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  EXPECT_EQ(res.num_threads, 1);
}

TEST(SolveMany, NegativeThreadCountFallsBackToAuto) {
  const index_t n = 24;
  auto batch = make_batch(n, 3, 5200);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 4;
  bopt.num_threads = -7;  // same contract as 0: auto-detect, clamp to batch
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  EXPECT_GE(res.num_threads, 1);
  EXPECT_LE(res.num_threads, 3);
}

TEST(SolveMany, TinyProblemsSolveInsteadOfAborting) {
  // n = 1 can never reach the SBR pipeline (bandwidth must sit in [1, n));
  // the pre-fix behavior aborted the whole process from inside a worker.
  std::vector<Matrix<float>> batch;
  for (int i = 0; i < 4; ++i) {
    Matrix<float> a(1, 1);
    a(0, 0) = 2.5f + static_cast<float>(i);
    batch.push_back(std::move(a));
  }
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.vectors = true;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(res.problems[static_cast<std::size_t>(i)].eigenvalues.size(), 1u);
    EXPECT_EQ(res.problems[static_cast<std::size_t>(i)].eigenvalues[0],
              2.5f + static_cast<float>(i));
    EXPECT_EQ(res.problems[static_cast<std::size_t>(i)].vectors(0, 0), 1.0f);
  }
}

// Malformed request data — mismatched shapes, a non-square matrix, an
// out-of-range selected window — used to trip TCEVD_CHECK and abort the whole
// process. It is caller data, not a programmer contract: the offending
// problem fails alone with InvalidArgument and its neighbors solve normally.
TEST(SolveMany, MixedShapeProblemFailsAloneWithInvalidArgument) {
  auto batch = make_batch(32, 3, 7100);
  batch.insert(batch.begin() + 1, test::random_symmetric<float>(48, 7200));
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.num_threads = 2;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_EQ(res.problems.size(), 4u);
  EXPECT_EQ(res.num_ok(), 3u);
  EXPECT_EQ(res.problems[1].status.code(), ErrorCode::InvalidArgument);
  EXPECT_NE(res.problems[1].status.message().find("order"), std::string::npos);
  for (std::size_t i : {0u, 2u, 3u}) EXPECT_TRUE(res.problems[i].status.ok()) << i;
}

TEST(SolveMany, NonSquareProblemFailsAloneWithInvalidArgument) {
  auto batch = make_batch(24, 2, 7300);
  batch.push_back(Matrix<float>(24, 16));
  tc::Fp32Engine engine;
  auto res = evd::solve_many(batch, engine, evd::BatchOptions{});
  ASSERT_EQ(res.problems.size(), 3u);
  EXPECT_TRUE(res.problems[0].status.ok());
  EXPECT_TRUE(res.problems[1].status.ok());
  EXPECT_EQ(res.problems[2].status.code(), ErrorCode::InvalidArgument);
  EXPECT_NE(res.problems[2].status.message().find("square"), std::string::npos);
}

TEST(SolveMany, SelectedRangeOutOfBoundsFailsPerProblemWithInvalidArgument) {
  auto batch = make_batch(16, 3, 7400);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.selected = true;
  bopt.il = 4;
  bopt.iu = 16;  // iu == n: out of bounds for every problem
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_EQ(res.problems.size(), 3u);
  for (const auto& p : res.problems) {
    EXPECT_EQ(p.status.code(), ErrorCode::InvalidArgument);
    EXPECT_NE(p.status.message().find("range"), std::string::npos);
  }
}

TEST(SolveMany, LookaheadBatchMatchesSerialScheduleBitwise) {
  const index_t n = 64;
  auto batch = make_batch(n, 6, 6100);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.big_block = 16;
  bopt.num_threads = 2;
  auto serial = evd::solve_many(batch, engine, bopt);
  bopt.evd.lookahead = true;
  auto overlapped = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_TRUE(overlapped.all_ok());
  for (std::size_t i = 0; i < batch.size(); ++i)
    for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j)
      EXPECT_EQ(overlapped.problems[i].eigenvalues[j], serial.problems[i].eigenvalues[j])
          << "problem " << i << " eigenvalue " << j;
}

// ---------------------------------------------------------------------------
// Failure isolation: a poisoned problem must not fail its neighbors.
// ---------------------------------------------------------------------------

class SolveManyFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(SolveManyFaultTest, PoisonedProblemFailsAloneUnderInjection) {
  const index_t n = 48;
  auto batch = make_batch(n, 8, 6000);

  // One QL exhaustion, fallbacks off: exactly one problem (whichever draws
  // the injected failure) must report the fault; every other problem in the
  // batch — including later ones on the same worker — succeeds.
  fault::arm(fault::Site::SteqrExhaust, 1);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.solver = evd::TriSolver::Ql;
  bopt.evd.allow_fallbacks = false;
  bopt.num_threads = 4;
  auto res = evd::solve_many(batch, engine, bopt);

  EXPECT_EQ(fault::fired(fault::Site::SteqrExhaust), 1);
  ASSERT_EQ(res.problems.size(), batch.size());
  EXPECT_EQ(res.num_ok(), batch.size() - 1);
  std::size_t failed = 0;
  for (const auto& p : res.problems) {
    if (!p.status.ok()) {
      ++failed;
      EXPECT_EQ(p.status.code(), ErrorCode::FaultInjected) << p.status.to_string();
    } else {
      EXPECT_EQ(p.eigenvalues.size(), std::size_t(n));
    }
  }
  EXPECT_EQ(failed, 1u);
}

TEST_F(SolveManyFaultTest, PoisonedProblemRecoversWithFallbacksAndLogsIt) {
  const index_t n = 48;
  auto batch = make_batch(n, 6, 7000);

  fault::arm(fault::Site::SteqrExhaust, 1);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 8;
  bopt.evd.solver = evd::TriSolver::Ql;
  bopt.evd.allow_fallbacks = true;  // injected failure walks the solver chain
  bopt.num_threads = 3;
  auto res = evd::solve_many(batch, engine, bopt);

  ASSERT_TRUE(res.all_ok());
  // The degradation is visible per problem and in the merged telemetry.
  std::size_t recovered = 0;
  for (const auto& p : res.problems) recovered += p.recovery.empty() ? 0 : 1;
  EXPECT_EQ(recovered, 1u);
  EXPECT_FALSE(res.telemetry.recovery().empty());
}

TEST_F(SolveManyFaultTest, InvalidInputFailsAloneWithoutInjection) {
  const index_t n = 32;
  auto batch = make_batch(n, 5, 8000);
  batch[2](4, 5) = std::nanf("");  // poison one problem's input

  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 4;
  bopt.num_threads = 4;
  auto res = evd::solve_many(batch, engine, bopt);

  EXPECT_EQ(res.num_ok(), batch.size() - 1);
  EXPECT_EQ(res.problems[2].status.code(), ErrorCode::InvalidInput);
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (i != 2) EXPECT_TRUE(res.problems[i].status.ok()) << "problem " << i;
}

// ---------------------------------------------------------------------------
// Telemetry aggregation semantics.
// ---------------------------------------------------------------------------

TEST(TelemetryMerge, TotalsEqualSumOfPerWorkerCounters) {
  Telemetry w0, w1, merged;
  w0.record_stage("evd.reduction", 1.5);
  w0.record_stage("evd.solver", 0.5);
  w0.record_stage("evd.solver", 0.25);
  w1.record_stage("evd.solver", 1.0);
  w1.record_stage("evd.bulge", 2.0);
  w0.record_recovery({{"evd.solver", "a"}});
  w1.record_recovery({{"sbr.panel", "b"}, {"ec_tcgemm", "c"}});
  w0.set_recording(true);
  w0.record_gemm(tc::GemmShape{8, 8, 8, tc::EngineKind::EcTc});

  merged.merge_from(w0);
  merged.merge_from(w1);

  EXPECT_DOUBLE_EQ(merged.stage_seconds("evd.reduction"), 1.5);
  EXPECT_DOUBLE_EQ(merged.stage_seconds("evd.solver"), 1.75);
  EXPECT_DOUBLE_EQ(merged.stage_seconds("evd.bulge"), 2.0);
  long solver_calls = 0;
  for (const auto& s : merged.stages())
    if (s.name == "evd.solver") solver_calls = s.calls;
  EXPECT_EQ(solver_calls, 3);  // 2 from w0 + 1 from w1
  EXPECT_EQ(merged.recovery().size(), 3u);
  EXPECT_EQ(merged.recorded().size(), 1u);
  EXPECT_DOUBLE_EQ(merged.recorded_flops(), w0.recorded_flops());
}

TEST(TelemetryMerge, BatchStageCallCountsCoverEveryProblem) {
  const index_t n = 32;
  const std::size_t count = 9;
  auto batch = make_batch(n, count, 9000);
  tc::Fp32Engine engine;
  evd::BatchOptions bopt;
  bopt.evd.bandwidth = 4;
  bopt.num_threads = 3;
  auto res = evd::solve_many(batch, engine, bopt);
  ASSERT_TRUE(res.all_ok());

  // Each problem records exactly one reduction/bulge/solver stage on its
  // worker's telemetry; the merged view must account for all of them.
  for (const char* stage : {"evd.reduction", "evd.bulge", "evd.solver"}) {
    long calls = 0;
    for (const auto& s : res.telemetry.stages())
      if (s.name == stage) calls = s.calls;
    EXPECT_EQ(calls, static_cast<long>(count)) << stage;
    EXPECT_GE(res.telemetry.stage_seconds(stage), 0.0);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool unit behavior the driver depends on.
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  const long count = 1000;
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(count, [&](int worker, long i) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (long i = 0; i < count; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](int, long) { ran = true; });
  pool.parallel_for(-5, [&](int, long) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SubmitAndWaitIdleDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace tcevd
