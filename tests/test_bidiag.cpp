// Bidiagonalization SVD pipeline: gebrd / orgbr / bdsqr / svd_golub_kahan.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/lapack/bidiag.hpp"
#include "src/svd/svd.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

TEST(Gebrd, QtAPIsBidiagonal) {
  const index_t m = 40, n = 24;
  auto a = test::random_matrix(m, n, 1);
  auto work = a;
  std::vector<double> d, e, tauq, taup;
  lapack::gebrd(work.view(), d, e, tauq, taup);

  Matrix<double> q(m, n), p(n, n);
  lapack::orgbr_q<double>(work.view(), tauq, q.view());
  lapack::orgbr_p<double>(work.view(), taup, p.view());
  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * m);
  EXPECT_LT(orthogonality_residual<double>(p.view()), 1e-12 * n);

  // B = Q^T A P must equal the recorded bidiagonal.
  Matrix<double> t(n, n), b(n, n);
  Matrix<double> qa(n, n);
  blas::gemm(Trans::Yes, Trans::No, 1.0, q.view(), a.view(), 0.0, qa.view());
  blas::gemm(Trans::No, Trans::No, 1.0, qa.view(), p.view(), 0.0, b.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      double expect = 0.0;
      if (i == j) expect = d[static_cast<std::size_t>(i)];
      if (j == i + 1) expect = e[static_cast<std::size_t>(i)];
      EXPECT_NEAR(b(i, j), expect, 1e-12) << i << "," << j;
    }
}

TEST(Bdsqr, DiagonalInputIsSortedAbs) {
  std::vector<double> d{3.0, -7.0, 1.0};
  std::vector<double> e{0.0, 0.0};
  Matrix<double> u(3, 3), v(3, 3);
  set_identity(u.view());
  set_identity(v.view());
  auto uv = u.view();
  auto vv = v.view();
  ASSERT_TRUE(lapack::bdsqr<double>(d, e, &uv, &vv));
  EXPECT_DOUBLE_EQ(d[0], 7.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
  // The negative singular value's V column flips sign.
  EXPECT_DOUBLE_EQ(v(1, 0), -1.0);
}

TEST(Bdsqr, MatchesJacobiOnRandomBidiagonal) {
  const index_t n = 30;
  Rng rng(2);
  std::vector<double> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n - 1));
  for (auto& x : d) x = rng.normal();
  for (auto& x : e) x = rng.normal();

  Matrix<double> bfull(n, n);
  for (index_t i = 0; i < n; ++i) {
    bfull(i, i) = d[static_cast<std::size_t>(i)];
    if (i + 1 < n) bfull(i, i + 1) = e[static_cast<std::size_t>(i)];
  }
  auto ref = svd::jacobi_svd(bfull.view());

  auto ds = d;
  auto es = e;
  ASSERT_TRUE(lapack::bdsqr<double>(ds, es, nullptr, nullptr));
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(ds[static_cast<std::size_t>(i)], ref.sigma[static_cast<std::size_t>(i)],
                1e-11);
}

class GkSvdTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(GkSvdTest, FullFactorization) {
  const auto [m, n] = GetParam();
  auto a = test::random_matrix(m, n, 10 + m);
  auto res = svd::svd_golub_kahan<double>(a.view());
  ASSERT_TRUE(res.converged);

  EXPECT_LT(orthogonality_residual<double>(res.u.view()), 1e-11 * m);
  EXPECT_LT(orthogonality_residual<double>(res.v.view()), 1e-11 * n);
  for (index_t i = 1; i < n; ++i)
    EXPECT_GE(res.sigma[static_cast<std::size_t>(i - 1)],
              res.sigma[static_cast<std::size_t>(i)]);

  // A == U diag(sigma) V^T.
  Matrix<double> us(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      us(i, j) = res.u(i, j) * res.sigma[static_cast<std::size_t>(j)];
  Matrix<double> rec(m, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0, us.view(), res.v.view(), 0.0, rec.view());
  EXPECT_LT(test::rel_diff<double>(rec.view(), a.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GkSvdTest,
                         ::testing::Values(std::make_tuple<index_t, index_t>(30, 30),
                                           std::make_tuple<index_t, index_t>(80, 25),
                                           std::make_tuple<index_t, index_t>(200, 12),
                                           std::make_tuple<index_t, index_t>(17, 16),
                                           std::make_tuple<index_t, index_t>(40, 1)));

TEST(GkSvd, MatchesJacobiSingularValues) {
  const index_t m = 60, n = 30;
  auto a = test::random_matrix(m, n, 20);
  auto gk = svd::svd_golub_kahan<double>(a.view());
  auto jac = svd::jacobi_svd(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(gk.sigma[static_cast<std::size_t>(i)], jac.sigma[static_cast<std::size_t>(i)],
                1e-11 * jac.sigma[0]);
}

TEST(GkSvd, ValuesOnlyMode) {
  const index_t m = 50, n = 20;
  auto a = test::random_matrix(m, n, 21);
  auto full = svd::svd_golub_kahan<double>(a.view(), true);
  auto vals = svd::svd_golub_kahan<double>(a.view(), false);
  ASSERT_TRUE(vals.converged);
  EXPECT_EQ(vals.u.rows(), 0);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(vals.sigma[static_cast<std::size_t>(i)],
                full.sigma[static_cast<std::size_t>(i)], 1e-12);
}

TEST(GkSvd, FloatPrecision) {
  const index_t m = 80, n = 24;
  auto a = test::random_matrix_f(m, n, 22);
  auto res = svd::svd_golub_kahan<float>(a.view());
  ASSERT_TRUE(res.converged);
  Matrix<float> us(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      us(i, j) = res.u(i, j) * res.sigma[static_cast<std::size_t>(j)];
  Matrix<float> rec(m, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0f, us.view(), res.v.view(), 0.0f, rec.view());
  EXPECT_LT(test::rel_diff<float>(rec.view(), a.view()), 1e-4);
}

TEST(GkSvd, RankDeficient) {
  // Exactly rank-2: trailing singular values must come out ~0 and the
  // factorization must still hold.
  const index_t m = 40, n = 15;
  auto b = test::random_matrix(m, 2, 23);
  auto c = test::random_matrix(2, n, 24);
  Matrix<double> a(m, n);
  blas::gemm(Trans::No, Trans::No, 1.0, b.view(), c.view(), 0.0, a.view());
  auto res = svd::svd_golub_kahan<double>(a.view());
  ASSERT_TRUE(res.converged);
  for (index_t i = 2; i < n; ++i)
    EXPECT_LT(res.sigma[static_cast<std::size_t>(i)], 1e-10 * res.sigma[0]);
  Matrix<double> us(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      us(i, j) = res.u(i, j) * res.sigma[static_cast<std::size_t>(j)];
  Matrix<double> rec(m, n);
  blas::gemm(Trans::No, Trans::Yes, 1.0, us.view(), res.v.view(), 0.0, rec.view());
  EXPECT_LT(test::rel_diff<double>(rec.view(), a.view()), 1e-12);
}

}  // namespace
}  // namespace tcevd
