// Level-1 BLAS kernels against simple references, including strided access
// and overflow-safe nrm2.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/rng.hpp"

namespace tcevd {
namespace {

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(BlasL1, DotMatchesReference) {
  const index_t n = 257;
  auto x = random_vec(n, 1);
  auto y = random_vec(n, 2);
  double ref = 0.0;
  for (index_t i = 0; i < n; ++i) ref += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  EXPECT_NEAR(blas::dot(n, x.data(), 1, y.data(), 1), ref, 1e-12 * std::abs(ref) + 1e-12);
}

TEST(BlasL1, DotStrided) {
  std::vector<double> x{1, 99, 2, 99, 3, 99};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::dot<double>(3, x.data(), 2, y.data(), 1), 4.0 + 10.0 + 18.0);
}

TEST(BlasL1, Nrm2MatchesHypot) {
  auto x = random_vec(100, 3);
  double s = 0.0;
  for (double v : x) s += v * v;
  EXPECT_NEAR(blas::nrm2<double>(100, x.data(), 1), std::sqrt(s), 1e-12);
}

TEST(BlasL1, Nrm2AvoidsOverflow) {
  std::vector<double> x{1e200, 1e200};
  EXPECT_NEAR(blas::nrm2<double>(2, x.data(), 1), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(BlasL1, Nrm2AvoidsUnderflow) {
  std::vector<double> x{1e-200, 1e-200};
  EXPECT_NEAR(blas::nrm2<double>(2, x.data(), 1), std::sqrt(2.0) * 1e-200, 1e-212);
}

TEST(BlasL1, Nrm2FloatOverflowSafe) {
  // Naive sum-of-squares overflows (2e38^2 = inf) but the true norm ~2.8e38
  // is representable; the scaled algorithm must return it.
  std::vector<float> x{2e38f, 2e38f};
  const float r = blas::nrm2<float>(2, x.data(), 1);
  EXPECT_FALSE(std::isinf(r));
  EXPECT_NEAR(r, std::sqrt(2.0f) * 2e38f, 1e32f);
}

TEST(BlasL1, AxpyBasic) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  blas::axpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(BlasL1, AxpyAlphaZeroIsNoop) {
  std::vector<double> x{1, 2};
  std::vector<double> y{5, 6};
  blas::axpy(2, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(BlasL1, ScalAndCopyAndSwap) {
  std::vector<double> x{1, 2, 3};
  blas::scal(3, -2.0, x.data(), 1);
  EXPECT_DOUBLE_EQ(x[1], -4.0);

  std::vector<double> y(3, 0.0);
  blas::copy(3, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[2], -6.0);

  std::vector<double> z{7, 8, 9};
  blas::swap(3, y.data(), 1, z.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(z[0], -2.0);
}

TEST(BlasL1, IamaxFindsAbsMax) {
  std::vector<double> x{1.0, -9.0, 3.0, 8.9};
  EXPECT_EQ(blas::iamax<double>(4, x.data(), 1), 1);
  EXPECT_EQ(blas::iamax<double>(0, x.data(), 1), -1);
}

TEST(BlasL1, IamaxReturnsFirstOnTie) {
  std::vector<double> x{2.0, -2.0, 2.0};
  EXPECT_EQ(blas::iamax<double>(3, x.data(), 1), 0);
}

}  // namespace
}  // namespace tcevd
