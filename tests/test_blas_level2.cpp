// Level-2 BLAS against naive references.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Diag;
using blas::Trans;
using blas::Uplo;

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(BlasL2, GemvNoTrans) {
  const index_t m = 17, n = 11;
  auto a = test::random_matrix(m, n, 1);
  auto x = random_vec(n, 2);
  auto y = random_vec(m, 3);
  auto y_ref = y;
  for (index_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < n; ++j) s += a(i, j) * x[static_cast<std::size_t>(j)];
    y_ref[static_cast<std::size_t>(i)] = 1.5 * s + 0.5 * y_ref[static_cast<std::size_t>(i)];
  }
  blas::gemv(Trans::No, 1.5, a.view(), x.data(), 1, 0.5, y.data(), 1);
  for (index_t i = 0; i < m; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)], 1e-12);
}

TEST(BlasL2, GemvTrans) {
  const index_t m = 13, n = 19;
  auto a = test::random_matrix(m, n, 4);
  auto x = random_vec(m, 5);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  blas::gemv(Trans::Yes, 1.0, a.view(), x.data(), 1, 0.0, y.data(), 1);
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < m; ++i) s += a(i, j) * x[static_cast<std::size_t>(i)];
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], s, 1e-12);
  }
}

TEST(BlasL2, GerRankOne) {
  const index_t m = 9, n = 7;
  auto a = test::random_matrix(m, n, 6);
  auto a0 = a;
  auto x = random_vec(m, 7);
  auto y = random_vec(n, 8);
  blas::ger(2.0, x.data(), 1, y.data(), 1, a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(a(i, j),
                  a0(i, j) + 2.0 * x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(j)],
                  1e-12);
}

TEST(BlasL2, SymvLowerMatchesFullGemv) {
  const index_t n = 23;
  auto a = test::random_symmetric<double>(n, 9);
  auto x = random_vec(n, 10);
  std::vector<double> y1(static_cast<std::size_t>(n), 1.0);
  std::vector<double> y2(static_cast<std::size_t>(n), 1.0);
  blas::symv(Uplo::Lower, 0.7, a.view(), x.data(), 1, 0.3, y1.data(), 1);
  blas::gemv(Trans::No, 0.7, a.view(), x.data(), 1, 0.3, y2.data(), 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-12);
}

TEST(BlasL2, SymvUpperMatchesFullGemv) {
  const index_t n = 16;
  auto a = test::random_symmetric<double>(n, 11);
  auto x = random_vec(n, 12);
  std::vector<double> y1(static_cast<std::size_t>(n), 0.0);
  std::vector<double> y2(static_cast<std::size_t>(n), 0.0);
  blas::symv(Uplo::Upper, 1.0, a.view(), x.data(), 1, 0.0, y1.data(), 1);
  blas::gemv(Trans::No, 1.0, a.view(), x.data(), 1, 0.0, y2.data(), 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-12);
}

TEST(BlasL2, Syr2UpdatesLowerTriangle) {
  const index_t n = 12;
  auto a = test::random_symmetric<double>(n, 13);
  auto a0 = a;
  auto x = random_vec(n, 14);
  auto y = random_vec(n, 15);
  blas::syr2(Uplo::Lower, 1.1, x.data(), 1, y.data(), 1, a.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      const double expect =
          a0(i, j) + 1.1 * (x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(j)] +
                            y[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(j)]);
      EXPECT_NEAR(a(i, j), expect, 1e-12);
    }
  // Upper triangle untouched.
  for (index_t j = 1; j < n; ++j)
    for (index_t i = 0; i < j; ++i) EXPECT_EQ(a(i, j), a0(i, j));
}

struct TriCase {
  blas::Uplo uplo;
  blas::Trans trans;
  blas::Diag diag;
};

class TrmvTrsvTest : public ::testing::TestWithParam<TriCase> {};

TEST_P(TrmvTrsvTest, TrsvInvertsTrmv) {
  const auto p = GetParam();
  const index_t n = 15;
  Rng rng(21);
  Matrix<double> a(n, n);
  // Well-conditioned triangular factor.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) a(i, j) = 0.1 * rng.normal();
    a(j, j) = 2.0 + rng.uniform();
  }
  auto x = random_vec(n, 22);
  auto x0 = x;
  blas::trmv(p.uplo, p.trans, p.diag, a.view(), x.data(), 1);
  blas::trsv(p.uplo, p.trans, p.diag, a.view(), x.data(), 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], x0[static_cast<std::size_t>(i)], 1e-10);
}

TEST_P(TrmvTrsvTest, TrmvMatchesDenseMultiply) {
  const auto p = GetParam();
  const index_t n = 10;
  Rng rng(31);
  Matrix<double> a(n, n);
  fill_normal(rng, a.view());
  // Build the dense op(tri(A)).
  Matrix<double> t(n, n);
  const bool lower_stored = p.uplo == Uplo::Lower;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = lower_stored ? (i >= j) : (i <= j);
      double v = in_tri ? a(i, j) : 0.0;
      if (i == j && p.diag == Diag::Unit) v = 1.0;
      t(i, j) = v;
    }
  auto x = random_vec(n, 32);
  std::vector<double> ref(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      const double aij = (p.trans == Trans::No) ? t(i, j) : t(j, i);
      ref[static_cast<std::size_t>(i)] += aij * x[static_cast<std::size_t>(j)];
    }
  blas::trmv(p.uplo, p.trans, p.diag, a.view(), x.data(), 1);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmvTrsvTest,
    ::testing::Values(TriCase{Uplo::Lower, Trans::No, Diag::NonUnit},
                      TriCase{Uplo::Lower, Trans::No, Diag::Unit},
                      TriCase{Uplo::Lower, Trans::Yes, Diag::NonUnit},
                      TriCase{Uplo::Lower, Trans::Yes, Diag::Unit},
                      TriCase{Uplo::Upper, Trans::No, Diag::NonUnit},
                      TriCase{Uplo::Upper, Trans::No, Diag::Unit},
                      TriCase{Uplo::Upper, Trans::Yes, Diag::NonUnit},
                      TriCase{Uplo::Upper, Trans::Yes, Diag::Unit}));

}  // namespace
}  // namespace tcevd
