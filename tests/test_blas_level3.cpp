// Level-3 BLAS against naive references, all transpose/side/uplo variants.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/common/flop_counter.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

/// Naive dense reference: C = alpha op(A) op(B) + beta C.
void ref_gemm(Trans ta, Trans tb, double alpha, ConstMatrixView<double> a,
              ConstMatrixView<double> b, double beta, MatrixView<double> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = (ta == Trans::No) ? a(i, l) : a(l, i);
        const double bv = (tb == Trans::No) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
}

struct GemmCase {
  Trans ta, tb;
  index_t m, n, k;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesReference) {
  const auto p = GetParam();
  const index_t am = (p.ta == Trans::No) ? p.m : p.k;
  const index_t an = (p.ta == Trans::No) ? p.k : p.m;
  const index_t bm = (p.tb == Trans::No) ? p.k : p.n;
  const index_t bn = (p.tb == Trans::No) ? p.n : p.k;
  auto a = test::random_matrix(am, an, 1);
  auto b = test::random_matrix(bm, bn, 2);
  auto c = test::random_matrix(p.m, p.n, 3);
  auto c_ref = c;
  blas::gemm(p.ta, p.tb, 1.3, a.view(), b.view(), -0.7, c.view());
  ref_gemm(p.ta, p.tb, 1.3, a.view(), b.view(), -0.7, c_ref.view());
  EXPECT_LT(test::rel_diff<double>(c.view(), c_ref.view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTransposes, GemmTest,
    ::testing::Values(GemmCase{Trans::No, Trans::No, 33, 29, 41},
                      GemmCase{Trans::No, Trans::Yes, 33, 29, 41},
                      GemmCase{Trans::Yes, Trans::No, 33, 29, 41},
                      GemmCase{Trans::Yes, Trans::Yes, 33, 29, 41},
                      GemmCase{Trans::No, Trans::No, 1, 1, 1},
                      GemmCase{Trans::No, Trans::No, 64, 1, 64},   // skinny output
                      GemmCase{Trans::No, Trans::Yes, 64, 64, 1},  // outer product
                      GemmCase{Trans::Yes, Trans::No, 5, 300, 7},
                      GemmCase{Trans::No, Trans::No, 300, 5, 300}));

TEST(BlasL3, GemmBetaZeroOverwritesNan) {
  // beta == 0 must not propagate garbage from C (including inf/NaN).
  Matrix<double> a(2, 2), b(2, 2), c(2, 2);
  set_identity(a.view());
  set_identity(b.view());
  c(0, 0) = std::numeric_limits<double>::quiet_NaN();
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_EQ(c(0, 0), 1.0);
}

TEST(BlasL3, GemmOnSubviews) {
  auto big_a = test::random_matrix(20, 20, 7);
  auto big_b = test::random_matrix(20, 20, 8);
  Matrix<double> c(6, 5);
  Matrix<double> c_ref(6, 5);
  auto a = big_a.sub(3, 2, 6, 9);
  auto b = big_b.sub(1, 4, 9, 5);
  blas::gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c.view());
  ref_gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c_ref.view());
  EXPECT_LT(test::rel_diff<double>(c.view(), c_ref.view()), 1e-13);
}

TEST(BlasL3, GemmEmptyKScalesC) {
  Matrix<double> a(3, 0), b(0, 3);
  Matrix<double> c(3, 3);
  c(1, 1) = 4.0;
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.5, c.view());
  EXPECT_DOUBLE_EQ(c(1, 1), 2.0);
}

TEST(BlasL3, SyrkMatchesGemmOnLowerTriangle) {
  const index_t n = 21, k = 13;
  auto a = test::random_matrix(n, k, 9);
  auto c = test::random_symmetric<double>(n, 10);
  auto c_ref = c;
  blas::syrk(Uplo::Lower, Trans::No, 0.9, a.view(), 0.4, c.view());
  ref_gemm(Trans::No, Trans::Yes, 0.9, a.view(), a.view(), 0.4, c_ref.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), c_ref(i, j), 1e-12);
}

TEST(BlasL3, SyrkTransUpper) {
  const index_t n = 14, k = 10;
  auto a = test::random_matrix(k, n, 11);
  auto c = test::random_symmetric<double>(n, 12);
  auto c_ref = c;
  blas::syrk(Uplo::Upper, Trans::Yes, 1.0, a.view(), 0.0, c.view());
  ref_gemm(Trans::Yes, Trans::No, 1.0, a.view(), a.view(), 0.0, c_ref.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), c_ref(i, j), 1e-12);
}

TEST(BlasL3, Syr2kMatchesTwoGemms) {
  const index_t n = 19, k = 8;
  auto a = test::random_matrix(n, k, 13);
  auto b = test::random_matrix(n, k, 14);
  auto c = test::random_symmetric<double>(n, 15);
  auto c_ref = c;
  blas::syr2k(Uplo::Lower, Trans::No, -1.0, a.view(), b.view(), 1.0, c.view());
  ref_gemm(Trans::No, Trans::Yes, -1.0, a.view(), b.view(), 1.0, c_ref.view());
  ref_gemm(Trans::No, Trans::Yes, -1.0, b.view(), a.view(), 1.0, c_ref.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) EXPECT_NEAR(c(i, j), c_ref(i, j), 1e-12);
}

struct TriMatCase {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
};

class TrmmTrsmTest : public ::testing::TestWithParam<TriMatCase> {};

TEST_P(TrmmTrsmTest, TrsmInvertsTrmm) {
  const auto p = GetParam();
  const index_t m = 13, n = 9;
  const index_t na = (p.side == Side::Left) ? m : n;
  Rng rng(41);
  Matrix<double> a(na, na);
  for (index_t j = 0; j < na; ++j) {
    for (index_t i = 0; i < na; ++i) a(i, j) = 0.1 * rng.normal();
    a(j, j) = 2.0 + rng.uniform();
  }
  auto b = test::random_matrix(m, n, 42);
  auto b0 = b;
  blas::trmm(p.side, p.uplo, p.trans, p.diag, 2.0, a.view(), b.view());
  blas::trsm(p.side, p.uplo, p.trans, p.diag, 0.5, a.view(), b.view());
  EXPECT_LT(test::rel_diff<double>(b.view(), b0.view()), 1e-12);
}

TEST_P(TrmmTrsmTest, TrmmMatchesDense) {
  const auto p = GetParam();
  const index_t m = 11, n = 7;
  const index_t na = (p.side == Side::Left) ? m : n;
  Rng rng(43);
  Matrix<double> a(na, na);
  fill_normal(rng, a.view());
  Matrix<double> t(na, na);
  const bool lower_stored = p.uplo == Uplo::Lower;
  for (index_t j = 0; j < na; ++j)
    for (index_t i = 0; i < na; ++i) {
      const bool in_tri = lower_stored ? (i >= j) : (i <= j);
      double v = in_tri ? a(i, j) : 0.0;
      if (i == j && p.diag == Diag::Unit) v = 1.0;
      t(i, j) = v;
    }
  auto b = test::random_matrix(m, n, 44);
  Matrix<double> ref(m, n);
  if (p.side == Side::Left)
    ref_gemm(p.trans, Trans::No, 1.0, t.view(), b.view(), 0.0, ref.view());
  else
    ref_gemm(Trans::No, p.trans, 1.0, b.view(), t.view(), 0.0, ref.view());
  blas::trmm(p.side, p.uplo, p.trans, p.diag, 1.0, a.view(), b.view());
  EXPECT_LT(test::rel_diff<double>(b.view(), ref.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmmTrsmTest,
    ::testing::Values(TriMatCase{Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit},
                      TriMatCase{Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit},
                      TriMatCase{Side::Left, Uplo::Upper, Trans::No, Diag::Unit},
                      TriMatCase{Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit},
                      TriMatCase{Side::Right, Uplo::Lower, Trans::No, Diag::Unit},
                      TriMatCase{Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit},
                      TriMatCase{Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit},
                      TriMatCase{Side::Right, Uplo::Upper, Trans::Yes, Diag::Unit}));

struct SymmCase {
  Side side;
  Uplo uplo;
};

class SymmTest : public ::testing::TestWithParam<SymmCase> {};

TEST_P(SymmTest, MatchesGemmOnFullSymmetricMatrix) {
  const auto p = GetParam();
  const index_t m = 17, n = 13;
  const index_t na = (p.side == Side::Left) ? m : n;
  auto a = test::random_symmetric<double>(na, 70);
  // Poison the unused triangle: symm must not read it.
  auto poisoned = a;
  for (index_t j = 0; j < na; ++j)
    for (index_t i = 0; i < na; ++i) {
      const bool in_stored = (p.uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      if (!in_stored) poisoned(i, j) = 1e300;
    }
  auto b = test::random_matrix(m, n, 71);
  auto c = test::random_matrix(m, n, 72);
  auto c_ref = c;
  blas::symm(p.side, p.uplo, 0.8, poisoned.view(), b.view(), -0.3, c.view());
  if (p.side == Side::Left)
    ref_gemm(Trans::No, Trans::No, 0.8, a.view(), b.view(), -0.3, c_ref.view());
  else
    ref_gemm(Trans::No, Trans::No, 0.8, b.view(), a.view(), -0.3, c_ref.view());
  EXPECT_LT(test::rel_diff<double>(c.view(), c_ref.view()), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Variants, SymmTest,
                         ::testing::Values(SymmCase{Side::Left, Uplo::Lower},
                                           SymmCase{Side::Left, Uplo::Upper},
                                           SymmCase{Side::Right, Uplo::Lower},
                                           SymmCase{Side::Right, Uplo::Upper}));

TEST(BlasL3, FlopCounterTracksGemm) {
  auto a = test::random_matrix(8, 4, 50);
  auto b = test::random_matrix(4, 6, 51);
  Matrix<double> c(8, 6);
  FlopScope scope;
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_EQ(scope.flops(), 2ull * 8 * 6 * 4);
}

TEST(BlasL3, FloatInstantiationWorks) {
  auto a = test::random_matrix_f(12, 12, 60);
  auto b = test::random_matrix_f(12, 12, 61);
  Matrix<float> c(12, 12);
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  // Spot-check one entry against a double computation.
  double s = 0.0;
  for (index_t l = 0; l < 12; ++l) s += double(a(3, l)) * double(b(l, 5));
  EXPECT_NEAR(c(3, 5), s, 1e-4);
}

}  // namespace
}  // namespace tcevd
