// Bulge chasing band -> tridiagonal: the serial reference chase and the
// wavefront-parallel engine, which is pinned BITWISE-equal to serial (d, e,
// and accumulated Q) for every shape, thread count, and blocking choice —
// the parallel schedule only commutes rotation pairs with disjoint
// footprints (DESIGN.md §14), so any arithmetic divergence is a scheduler
// bug, not roundoff.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/bulge/bulge_wavefront.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/common/recovery.hpp"
#include "src/common/thread_pool.hpp"
#include "src/evd/batch.hpp"
#include "src/evd/evd.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "src/tensorcore/engine.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

template <typename T>
Matrix<T> random_band(index_t n, index_t bw, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<T>(a.view(), bw);
  return a;
}

class BulgeTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(BulgeTest, ReducesToTridiagonalPreservingSpectrum) {
  const auto [n, bw] = GetParam();
  auto a = random_band<double>(n, bw, 100 + n + bw);
  auto work = a;
  auto res = bulge::bulge_chase<double>(work.view(), bw, nullptr);

  // Work matrix is now exactly tridiagonal.
  EXPECT_EQ(sbr::band_violation<double>(work.view(), 1), 0.0);

  // Spectrum preserved: compare against direct bisection on the band matrix
  // via full tridiagonalization in double.
  auto d = res.d;
  auto e = res.e;
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  Matrix<double> ad = a;
  std::vector<double> dd, ee, tau;
  lapack::sytrd(ad.view(), dd, ee, tau);
  ASSERT_TRUE(lapack::sterf(dd, ee).ok());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], dd[static_cast<std::size_t>(i)], 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BulgeTest,
                         ::testing::Values(std::make_tuple<index_t, index_t>(30, 2),
                                           std::make_tuple<index_t, index_t>(64, 8),
                                           std::make_tuple<index_t, index_t>(100, 16),
                                           std::make_tuple<index_t, index_t>(65, 7),
                                           std::make_tuple<index_t, index_t>(40, 39),   // full
                                           std::make_tuple<index_t, index_t>(50, 1)));  // noop

TEST(Bulge, AccumulatesQ) {
  const index_t n = 60, bw = 6;
  auto a = random_band<double>(n, bw, 7);
  auto work = a;
  Matrix<double> q(n, n);
  set_identity(q.view());
  auto qv = q.view();
  (void)bulge::bulge_chase<double>(work.view(), bw, &qv);

  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * n);

  // Q^T A Q == T (the tridiagonal result).
  Matrix<double> t1(n, n), t2(n, n);
  blas::gemm(blas::Trans::Yes, blas::Trans::No, 1.0, q.view(), a.view(), 0.0, t1.view());
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, t1.view(), q.view(), 0.0, t2.view());
  EXPECT_LT(test::rel_diff<double>(t2.view(), work.view()), 1e-12);
}

TEST(Bulge, TridiagonalInputUntouched) {
  const index_t n = 25;
  auto a = random_band<double>(n, 1, 9);
  auto work = a;
  auto res = bulge::bulge_chase<double>(work.view(), 1, nullptr);
  EXPECT_LT(test::rel_diff<double>(work.view(), a.view()), 1e-15);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(res.d[static_cast<std::size_t>(i)], a(i, i));
}

TEST(Bulge, FloatPrecisionStable) {
  const index_t n = 120, bw = 12;
  auto a = random_band<float>(n, bw, 11);
  auto work = a;
  auto res = bulge::bulge_chase<float>(work.view(), bw, nullptr);
  auto d = res.d;
  auto e = res.e;
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  // Double-precision reference spectrum of the same band matrix.
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  std::vector<double> dd, ee, tau;
  lapack::sytrd(ad.view(), dd, ee, tau);
  ASSERT_TRUE(lapack::sterf(dd, ee).ok());
  double scale = 0.0;
  for (double v : dd) scale = std::max(scale, std::abs(v));
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], dd[static_cast<std::size_t>(i)], 1e-4 * scale);
}

TEST(Bulge, DiagonalMatrixIsFixedPoint) {
  const index_t n = 20;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i);
  auto res = bulge::bulge_chase<double>(a.view(), 5, nullptr);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(res.d[static_cast<std::size_t>(i)], double(i));
  for (index_t i = 0; i + 1 < n; ++i) EXPECT_EQ(res.e[static_cast<std::size_t>(i)], 0.0);
}

// ---------------------------------------------------------------------------
// Wavefront engine: bitwise equality with the serial reference.
// ---------------------------------------------------------------------------

/// Run the serial chase and the wavefront chase on copies of the same band
/// matrix and require element-exact agreement of the tridiagonal (d, e), the
/// chased matrix, and (when requested) the accumulated Q.
template <typename T>
void expect_wavefront_bitwise(index_t n, index_t bw, bool with_q,
                              const bulge::WavefrontOptions& wopt, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "n=" << n << " bw=" << bw << " with_q=" << with_q
                                    << " lanes=" << wopt.max_lanes
                                    << " block=" << wopt.sweep_block
                                    << " tile_rows=" << wopt.tile_rows);
  auto a = random_band<T>(n, bw, seed);

  auto serial = a;
  Matrix<T> q_serial(n, n), q_wave(n, n);
  set_identity(q_serial.view());
  set_identity(q_wave.view());
  auto qs = q_serial.view();
  auto ref = bulge::bulge_chase<T>(serial.view(), bw, with_q ? &qs : nullptr);

  tc::Fp32Engine eng;
  Context ctx(eng);
  auto wave = a;
  auto qw = q_wave.view();
  auto got = bulge::bulge_chase_wavefront<T>(ctx, wave.view(), bw,
                                             with_q ? &qw : nullptr, wopt);

  ASSERT_EQ(ref.d.size(), got.d.size());
  ASSERT_EQ(ref.e.size(), got.e.size());
  for (std::size_t i = 0; i < ref.d.size(); ++i) EXPECT_EQ(ref.d[i], got.d[i]) << "d[" << i << "]";
  for (std::size_t i = 0; i < ref.e.size(); ++i) EXPECT_EQ(ref.e[i], got.e[i]) << "e[" << i << "]";
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      EXPECT_EQ(serial(i, j), wave(i, j)) << "A(" << i << "," << j << ")";
      if (with_q) EXPECT_EQ(q_serial(i, j), q_wave(i, j)) << "Q(" << i << "," << j << ")";
    }
}

/// One shared pool for the whole binary: 7 workers + the broadcasting caller
/// = up to 8 lanes, capped per-case via WavefrontOptions::max_lanes.
ThreadPool& bulge_test_pool() {
  static ThreadPool pool(7);
  return pool;
}

class BulgeWavefrontBitwise : public ::testing::TestWithParam<index_t> {};

// Edge/odd/prime/pow2 sizes x bandwidths (1 = no-op, 2 = the DBR narrow-band
// shape, 3, 8, n-1 = full) x lane counts {1, 2, 8}, with and without Q.
TEST_P(BulgeWavefrontBitwise, MatchesSerialAcrossBandwidthsAndLanes) {
  const index_t n = GetParam();
  std::vector<index_t> bws = {1, 2, 3, 8};
  if (n > 1) bws.push_back(n - 1);
  std::uint64_t seed = 1000 + static_cast<std::uint64_t>(n);
  for (index_t bw : bws) {
    if (bw < 1 || bw > std::max<index_t>(n - 1, 1)) continue;
    for (int lanes : {1, 2, 8}) {
      bulge::WavefrontOptions wopt;
      wopt.pool = &bulge_test_pool();
      wopt.max_lanes = lanes;
      expect_wavefront_bitwise<double>(n, bw, /*with_q=*/false, wopt, seed);
      expect_wavefront_bitwise<double>(n, bw, /*with_q=*/true, wopt, ++seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulgeWavefrontBitwise,
                         ::testing::Values<index_t>(1, 2, 3, 7, 64, 129, 257));

TEST(BulgeWavefront, FloatMatchesSerialBitwise) {
  bulge::WavefrontOptions wopt;
  wopt.pool = &bulge_test_pool();
  expect_wavefront_bitwise<float>(129, 8, /*with_q=*/true, wopt, 42);
  expect_wavefront_bitwise<float>(257, 2, /*with_q=*/true, wopt, 43);
}

// Output must be invariant under every cache-blocking choice: the sweep-set
// size and tile height only reshape the schedule, never the rotation values
// or any conflicting pair's order.
TEST(BulgeWavefront, BlockingChoicesDoNotChangeOutput) {
  for (index_t sweep_block : {index_t{1}, index_t{2}, index_t{5}, index_t{32}}) {
    for (index_t tile_rows : {index_t{1}, index_t{64}, index_t{192}}) {
      bulge::WavefrontOptions wopt;
      wopt.pool = &bulge_test_pool();
      wopt.sweep_block = sweep_block;
      wopt.tile_rows = tile_rows;
      expect_wavefront_bitwise<double>(129, 3, /*with_q=*/true, wopt, 77);
      expect_wavefront_bitwise<double>(97, 8, /*with_q=*/false, wopt, 78);
    }
  }
}

// No pool at all: the caller drains every sweep-block inline — still the
// exact serial rotation sequence.
TEST(BulgeWavefront, NullPoolRunsInline) {
  bulge::WavefrontOptions wopt;  // pool == nullptr
  expect_wavefront_bitwise<double>(64, 8, /*with_q=*/true, wopt, 5);
}

// A Q entering with a band row profile: the window-tracked update must equal
// (as values) the dense full-row update, in both drivers, and the drivers
// must agree bitwise with each other.
TEST(BulgeWavefront, QRowProfileMatchesDenseUpdate) {
  const index_t n = 96, bw = 4;
  auto a = random_band<double>(n, bw, 21);

  // Dense reference: serial chase, full-row Q updates on an identity.
  auto dense = a;
  Matrix<double> q_dense(n, n);
  set_identity(q_dense.view());
  auto qd = q_dense.view();
  (void)bulge::bulge_chase<double>(dense.view(), bw, &qd);

  // Serial with the identity's exact profile (band = 0).
  auto hinted = a;
  Matrix<double> q_hint(n, n);
  set_identity(q_hint.view());
  auto qh = q_hint.view();
  (void)bulge::bulge_chase<double>(hinted.view(), bw, &qh, bulge::QRowProfile{0});

  // Wavefront with the same profile.
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto wave = a;
  Matrix<double> q_wave(n, n);
  set_identity(q_wave.view());
  auto qw = q_wave.view();
  bulge::WavefrontOptions wopt;
  wopt.pool = &bulge_test_pool();
  wopt.q_profile.band = 0;
  (void)bulge::bulge_chase_wavefront<double>(ctx, wave.view(), bw, &qw, wopt);

  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      // Skipped rows hold exact zeros, so the hinted update equals the dense
      // one as VALUES (EXPECT_EQ; a skipped row cannot flip a zero's sign
      // because it is never touched).
      EXPECT_EQ(q_dense(i, j), q_hint(i, j)) << "serial hinted Q(" << i << "," << j << ")";
      EXPECT_EQ(q_hint(i, j), q_wave(i, j)) << "wavefront Q(" << i << "," << j << ")";
    }
}

// The double Context overload must exist and attribute its time to the
// "bulge.chase" telemetry stage (regression: it used to be float-only, so
// double reference pipelines lost stage attribution).
TEST(BulgeWavefront, ContextOverloadsRecordStageForBothPrecisions) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  {
    auto a = random_band<double>(40, 4, 3);
    (void)bulge::bulge_chase(ctx, a.view(), 4, nullptr);
  }
  {
    auto a = random_band<float>(40, 4, 3);
    (void)bulge::bulge_chase(ctx, a.view(), 4, nullptr);
  }
  const auto& stages = ctx.telemetry().stages();
  long calls = 0;
  for (const auto& s : stages)
    if (s.name == "bulge.chase") calls += s.calls;
  EXPECT_EQ(calls, 2);
}

TEST(BulgeWavefront, RecordsWavefrontStages) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto a = random_band<double>(64, 8, 13);
  bulge::WavefrontOptions wopt;
  wopt.pool = &bulge_test_pool();
  (void)bulge::bulge_chase_wavefront<double>(ctx, a.view(), 8, nullptr, wopt);
  EXPECT_GT(ctx.telemetry().stage_seconds("bulge.chase.wavefront"), 0.0);
  // One fan-out window per peeled diagonal: d = 8 .. 2.
  for (const auto& s : ctx.telemetry().stages()) {
    if (s.name == "bulge.chase.sweep") {
      EXPECT_EQ(s.calls, 7);
    }
  }
}

// The bulge_threads routing shim: 1 = serial, >= 2 = forced wavefront on the
// shared gemm pool — all bitwise-identical.
TEST(BulgeWavefront, AutoRouteIsBitwiseInvariant) {
  const index_t n = 80, bw = 8;  // n < kAutoWavefrontMinN: auto stays serial
  auto a = random_band<float>(n, bw, 31);
  tc::Fp32Engine eng;

  std::vector<bulge::BulgeResult<float>> results;
  for (int threads : {0, 1, 2, 8}) {
    Context ctx(eng);
    auto work = a;
    results.push_back(bulge::bulge_chase_auto<float>(ctx, work.view(), bw, nullptr, threads));
  }
  for (std::size_t r = 1; r < results.size(); ++r) {
    ASSERT_EQ(results[0].d.size(), results[r].d.size());
    for (std::size_t i = 0; i < results[0].d.size(); ++i) {
      EXPECT_EQ(results[0].d[i], results[r].d[i]);
      if (i + 1 < results[0].d.size()) {
        EXPECT_EQ(results[0].e[i], results[r].e[i]);
      }
    }
  }
}

// Regression for the silent-serialization bug: an explicit bulge_threads >= 2
// that cannot engage the wavefront (narrow band, tiny matrix, or a caller
// that is already a pool worker) used to fall back to the serial chase with
// no trace. It must now note the downgrade at site "evd.second_stage" — and
// still produce bitwise-identical output.
TEST(BulgeWavefront, ForcedThreadsThatCannotEngageNoteTheDowngrade) {
  const index_t n = 16, bw = 1;  // bandwidth < 2: the wavefront can never engage
  auto a = random_band<float>(n, bw, 77);
  tc::Fp32Engine eng;

  Context serial_ctx(eng);
  auto serial_work = a;
  auto serial = bulge::bulge_chase_auto<float>(serial_ctx, serial_work.view(), bw,
                                               nullptr, /*bulge_threads=*/1);

  Context ctx(eng);
  auto work = a;
  recovery::Scope scope;
  auto forced = bulge::bulge_chase_auto<float>(ctx, work.view(), bw, nullptr,
                                               /*bulge_threads=*/4);
  RecoveryLog log = scope.take();
  bool noted = false;
  for (const RecoveryEvent& ev : log)
    if (ev.site == "evd.second_stage" &&
        ev.action.find("serial") != std::string::npos &&
        ev.action.find("bulge_threads = 4") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted) << "forced-but-ineligible lanes must note the serial downgrade";

  ASSERT_EQ(serial.d.size(), forced.d.size());
  for (std::size_t i = 0; i < serial.d.size(); ++i) EXPECT_EQ(serial.d[i], forced.d[i]);

  // An engageable forced request (bw >= 2, main thread) must NOT note.
  const index_t bw2 = 8;
  auto b = random_band<float>(64, bw2, 78);
  Context ctx2(eng);
  recovery::Scope scope2;
  (void)bulge::bulge_chase_auto<float>(ctx2, b.view(), bw2, nullptr, /*bulge_threads=*/4);
  for (const RecoveryEvent& ev : scope2.take())
    EXPECT_NE(ev.site, "evd.second_stage") << ev.action;
}

// The downgrade is also visible end-to-end: a batch worker IS a pool thread,
// so an explicit lane request under solve_many serializes — with the note
// surfaced in the per-problem recovery log.
TEST(BulgeWavefront, ForcedThreadsUnderBatchWorkerNoteTheDowngrade) {
  auto a = test::random_symmetric<float>(64, 79);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.bulge_threads = 4;

  std::vector<Matrix<float>> batch;
  batch.push_back(std::move(a));
  evd::BatchOptions bopt;
  bopt.evd = opt;
  bopt.num_threads = 1;
  auto res = evd::solve_many(batch, eng, bopt);
  ASSERT_TRUE(res.all_ok());
  bool noted = false;
  for (const RecoveryEvent& ev : res.problems[0].recovery)
    if (ev.site == "evd.second_stage" &&
        ev.action.find("thread-pool worker") != std::string::npos)
      noted = true;
  EXPECT_TRUE(noted) << "lane request serialized on a pool worker without a note";
}

}  // namespace
}  // namespace tcevd
