// Bulge chasing band -> tridiagonal.
#include <gtest/gtest.h>

#include <vector>

#include "src/blas/blas.hpp"
#include "src/bulge/bulge_chasing.hpp"
#include "src/common/norms.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/sbr/band.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

template <typename T>
Matrix<T> random_band(index_t n, index_t bw, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(n, n);
  fill_normal(rng, a.view());
  make_symmetric(a.view());
  sbr::truncate_to_band<T>(a.view(), bw);
  return a;
}

class BulgeTest : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(BulgeTest, ReducesToTridiagonalPreservingSpectrum) {
  const auto [n, bw] = GetParam();
  auto a = random_band<double>(n, bw, 100 + n + bw);
  auto work = a;
  auto res = bulge::bulge_chase<double>(work.view(), bw, nullptr);

  // Work matrix is now exactly tridiagonal.
  EXPECT_EQ(sbr::band_violation<double>(work.view(), 1), 0.0);

  // Spectrum preserved: compare against direct bisection on the band matrix
  // via full tridiagonalization in double.
  auto d = res.d;
  auto e = res.e;
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  Matrix<double> ad = a;
  std::vector<double> dd, ee, tau;
  lapack::sytrd(ad.view(), dd, ee, tau);
  ASSERT_TRUE(lapack::sterf(dd, ee).ok());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], dd[static_cast<std::size_t>(i)], 1e-10 * n);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BulgeTest,
                         ::testing::Values(std::make_tuple<index_t, index_t>(30, 2),
                                           std::make_tuple<index_t, index_t>(64, 8),
                                           std::make_tuple<index_t, index_t>(100, 16),
                                           std::make_tuple<index_t, index_t>(65, 7),
                                           std::make_tuple<index_t, index_t>(40, 39),   // full
                                           std::make_tuple<index_t, index_t>(50, 1)));  // noop

TEST(Bulge, AccumulatesQ) {
  const index_t n = 60, bw = 6;
  auto a = random_band<double>(n, bw, 7);
  auto work = a;
  Matrix<double> q(n, n);
  set_identity(q.view());
  auto qv = q.view();
  (void)bulge::bulge_chase<double>(work.view(), bw, &qv);

  EXPECT_LT(orthogonality_residual<double>(q.view()), 1e-12 * n);

  // Q^T A Q == T (the tridiagonal result).
  Matrix<double> t1(n, n), t2(n, n);
  blas::gemm(blas::Trans::Yes, blas::Trans::No, 1.0, q.view(), a.view(), 0.0, t1.view());
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, t1.view(), q.view(), 0.0, t2.view());
  EXPECT_LT(test::rel_diff<double>(t2.view(), work.view()), 1e-12);
}

TEST(Bulge, TridiagonalInputUntouched) {
  const index_t n = 25;
  auto a = random_band<double>(n, 1, 9);
  auto work = a;
  auto res = bulge::bulge_chase<double>(work.view(), 1, nullptr);
  EXPECT_LT(test::rel_diff<double>(work.view(), a.view()), 1e-15);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(res.d[static_cast<std::size_t>(i)], a(i, i));
}

TEST(Bulge, FloatPrecisionStable) {
  const index_t n = 120, bw = 12;
  auto a = random_band<float>(n, bw, 11);
  auto work = a;
  auto res = bulge::bulge_chase<float>(work.view(), bw, nullptr);
  auto d = res.d;
  auto e = res.e;
  ASSERT_TRUE(lapack::sterf(d, e).ok());

  // Double-precision reference spectrum of the same band matrix.
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  std::vector<double> dd, ee, tau;
  lapack::sytrd(ad.view(), dd, ee, tau);
  ASSERT_TRUE(lapack::sterf(dd, ee).ok());
  double scale = 0.0;
  for (double v : dd) scale = std::max(scale, std::abs(v));
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(d[static_cast<std::size_t>(i)], dd[static_cast<std::size_t>(i)], 1e-4 * scale);
}

TEST(Bulge, DiagonalMatrixIsFixedPoint) {
  const index_t n = 20;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i);
  auto res = bulge::bulge_chase<double>(a.view(), 5, nullptr);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(res.d[static_cast<std::size_t>(i)], double(i));
  for (index_t i = 0; i + 1 < n; ++i) EXPECT_EQ(res.e[static_cast<std::size_t>(i)], 0.0);
}

}  // namespace
}  // namespace tcevd
