// Contract enforcement: invalid arguments must trip TCEVD_CHECK (abort with
// a diagnostic) rather than corrupt memory or return garbage. Recoverable
// runtime conditions (non-convergence, singular panels, bad numerical input)
// are NOT contracts — they return Status and are covered in test_fault.cpp.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/common/context.hpp"
#include "src/common/recovery.hpp"
#include "src/blas/blas.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/sbr/sbr.hpp"
#include "src/svd/svd.hpp"
#include "src/tsqr/tsqr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

class ContractsDeath : public ::testing::Test {
 protected:
  void SetUp() override { testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};

TEST_F(ContractsDeath, GemmShapeMismatchAborts) {
  Matrix<float> a(4, 5), b(6, 3), c(4, 3);  // inner dims disagree
  EXPECT_DEATH(blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f,
                          c.view()),
               "gemm shape mismatch");
}

TEST_F(ContractsDeath, TrsmNonSquareTriangularAborts) {
  Matrix<float> a(4, 4), b(5, 3);
  EXPECT_DEATH(blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::No,
                          blas::Diag::NonUnit, 1.0f, a.view(), b.view()),
               "triangular factor shape mismatch");
}

TEST_F(ContractsDeath, SbrNonSquareAborts) {
  Matrix<float> a(10, 12);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  EXPECT_DEATH((void)sbr::sbr_wy(a.view(), ctx, opt), "square");
}

// Option inconsistencies are no longer process aborts: since the detached
// band reduction decoupled bandwidth from big_block, the SBR entry points
// validate caller options and return InvalidArgument (or round down with a
// recovery note for a non-multiple big_block). See tests/test_dbr.cpp for
// the full validation matrix; the Status form is pinned here so the old
// death contract can't silently come back.
TEST(Contracts, SbrBandwidthOutOfRangeIsInvalidArgument) {
  auto a = test::random_symmetric<float>(8, 1);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 8;  // must be < n
  auto res = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::InvalidArgument);
  EXPECT_NE(res.status().message().find("bandwidth"), std::string::npos);
}

TEST(Contracts, SbrBigBlockNotMultipleRoundsDown) {
  auto a = test::random_symmetric<float>(64, 2);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 12;  // not a multiple of 8: rounds down to 8, with a note
  recovery::Scope scope;
  auto res = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_TRUE(res.ok());
  RecoveryLog log = scope.take();
  bool noted = false;
  for (const RecoveryEvent& ev : log) noted = noted || ev.site == "sbr.options";
  EXPECT_TRUE(noted);
}

TEST_F(ContractsDeath, TsqrWideInputAborts) {
  Matrix<float> a(4, 8), q(4, 8), r(8, 8);
  EXPECT_DEATH((void)tsqr::tsqr_factor(a.view(), q.view(), r.view()), "tall");
}

// Bisection with vectors is no longer a contract violation: the solver
// computes vectors via stein + back-transform (so the fallback chain is
// uniform). The positive-path test lives in test_fault.cpp.

// A bad index window is request data, not a programmer contract: batch and
// streaming drivers feed per-request ranges and must be able to reject one
// bad request without taking the process down. Pinned as a Status like the
// SBR option checks above so the old death contract can't come back.
TEST(Contracts, PartialBadRangeIsInvalidArgument) {
  auto a = test::random_symmetric<float>(16, 4);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  for (auto [il, iu] : {std::pair<index_t, index_t>{5, 2},   // inverted window
                        std::pair<index_t, index_t>{-1, 2},  // negative start
                        std::pair<index_t, index_t>{0, 16}}) {  // iu == n
    auto res = evd::solve_selected(a.view(), ctx, opt, il, iu);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(res.status().message().find("range"), std::string::npos);
  }
}

TEST_F(ContractsDeath, SvdWideInputAborts) {
  Matrix<float> a(4, 9);
  tc::Fp32Engine eng;
  Context ctx(eng);
  EXPECT_DEATH((void)svd::svd_via_evd(a.view(), ctx), "m >= n");
}

TEST_F(ContractsDeath, MatrixNegativeDimensionAborts) {
  EXPECT_DEATH(Matrix<float>(-1, 3), "nonnegative");
}

}  // namespace
}  // namespace tcevd
