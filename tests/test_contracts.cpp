// Contract enforcement: invalid arguments must trip TCEVD_CHECK (abort with
// a diagnostic) rather than corrupt memory or return garbage.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/sbr/sbr.hpp"
#include "src/svd/svd.hpp"
#include "src/tsqr/tsqr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using ContractsDeath = ::testing::Test;

TEST(ContractsDeath, GemmShapeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix<float> a(4, 5), b(6, 3), c(4, 3);  // inner dims disagree
  EXPECT_DEATH(blas::gemm(blas::Trans::No, blas::Trans::No, 1.0f, a.view(), b.view(), 0.0f,
                          c.view()),
               "gemm shape mismatch");
}

TEST(ContractsDeath, TrsmNonSquareTriangularAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix<float> a(4, 4), b(5, 3);
  EXPECT_DEATH(blas::trsm(blas::Side::Left, blas::Uplo::Lower, blas::Trans::No,
                          blas::Diag::NonUnit, 1.0f, a.view(), b.view()),
               "triangular factor shape mismatch");
}

TEST(ContractsDeath, SbrNonSquareAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix<float> a(10, 12);
  tc::Fp32Engine eng;
  sbr::SbrOptions opt;
  EXPECT_DEATH((void)sbr::sbr_wy(a.view(), eng, opt), "square");
}

TEST(ContractsDeath, SbrBandwidthOutOfRangeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto a = test::random_symmetric<float>(8, 1);
  tc::Fp32Engine eng;
  sbr::SbrOptions opt;
  opt.bandwidth = 8;  // must be < n
  EXPECT_DEATH((void)sbr::sbr_wy(a.view(), eng, opt), "bandwidth");
}

TEST(ContractsDeath, SbrBigBlockNotMultipleAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto a = test::random_symmetric<float>(64, 2);
  tc::Fp32Engine eng;
  sbr::SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 12;  // not a multiple of 8
  EXPECT_DEATH((void)sbr::sbr_wy(a.view(), eng, opt), "multiple");
}

TEST(ContractsDeath, TsqrWideInputAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix<float> a(4, 8), q(4, 8), r(8, 8);
  EXPECT_DEATH(tsqr::tsqr_factor(a.view(), q.view(), r.view()), "tall");
}

TEST(ContractsDeath, EvdBisectionWithVectorsAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto a = test::random_symmetric<float>(16, 3);
  tc::Fp32Engine eng;
  evd::EvdOptions opt;
  opt.solver = evd::TriSolver::Bisection;
  opt.vectors = true;
  EXPECT_DEATH((void)evd::solve(a.view(), eng, opt), "eigenvalues only");
}

TEST(ContractsDeath, PartialBadRangeAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  auto a = test::random_symmetric<float>(16, 4);
  tc::Fp32Engine eng;
  evd::EvdOptions opt;
  EXPECT_DEATH((void)evd::solve_selected(a.view(), eng, opt, 5, 2), "range");
}

TEST(ContractsDeath, SvdWideInputAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix<float> a(4, 9);
  tc::Fp32Engine eng;
  EXPECT_DEATH((void)svd::svd_via_evd(a.view(), eng), "m >= n");
}

TEST(ContractsDeath, MatrixNegativeDimensionAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(Matrix<float>(-1, 3), "nonnegative");
}

}  // namespace
}  // namespace tcevd
