// Detached Band Reduction (sbr_dbr): decoupled bandwidth b vs accumulation
// blocksize nb.
//
// Pins the three contracts the DBR refactor rests on: (1) b == nb is
// bitwise identical to sbr_wy (band AND accumulated WY blocks), (2) b < nb
// produces a correct narrow band whose trailing-update GEMMs carry inner
// dimension nb, and (3) option validation is explicit — b > nb is an
// InvalidArgument Status, a non-multiple nb is rounded down with a recovery
// note, never a silent clamp.  (ctest label: dbr)
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/common/recovery.hpp"
#include "src/evd/evd.hpp"
#include "src/lapack/sytrd.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/perfmodel/shape_trace.hpp"
#include "src/sbr/band.hpp"
#include "src/sbr/band_storage.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using sbr::SbrOptions;

/// Reference eigenvalues of a float symmetric matrix, computed in double.
std::vector<double> reference_eigs(ConstMatrixView<float> a) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a, ad.view());
  std::vector<double> d, e, tau;
  lapack::sytrd(ad.view(), d, e, tau);
  TCEVD_CHECK(lapack::sterf(d, e).ok(), "sterf reference failed");
  return d;
}

/// ||A - Q B Q^T||_F / ||A||_F computed in double.
double backward_error(ConstMatrixView<float> a, ConstMatrixView<float> q,
                      ConstMatrixView<float> b) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n), qd(n, n), bd(n, n);
  convert_matrix<float, double>(a, ad.view());
  convert_matrix<float, double>(q, qd.view());
  convert_matrix<float, double>(b, bd.view());
  Matrix<double> t(n, n), qbqt(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, qd.view(), bd.view(), 0.0, t.view());
  blas::gemm(Trans::No, Trans::Yes, 1.0, t.view(), qd.view(), 0.0, qbqt.view());
  return frobenius_diff<double>(qbqt.view(), ad.view()) / frobenius_norm<double>(ad.view());
}

bool has_site(const RecoveryLog& log, const std::string& site) {
  for (const RecoveryEvent& ev : log)
    if (ev.site == site) return true;
  return false;
}

// ---------------------------------------------------------------------------
// b == nb: bitwise identity with sbr_wy across the existing shape matrix.
// ---------------------------------------------------------------------------

struct BitwiseCase {
  index_t n, b;
  bool cache_oa;
  bool lookahead;
};

class DbrBitwiseTest : public ::testing::TestWithParam<BitwiseCase> {};

TEST_P(DbrBitwiseTest, EqualsWySbrAtEqualBlocksizes) {
  const auto p = GetParam();
  auto a = test::random_symmetric<float>(p.n, 500 + p.n + p.b);
  SbrOptions opt;
  opt.bandwidth = p.b;
  opt.big_block = p.b;  // the degenerate configuration the refactor must pin
  opt.wy_cache_oa_product = p.cache_oa;
  opt.lookahead = p.lookahead;

  for (int eng_kind = 0; eng_kind < 2; ++eng_kind) {
    tc::Fp32Engine fp32;
    tc::TcEngine tcq(tc::TcPrecision::Fp16);
    tc::GemmEngine& eng = eng_kind == 0 ? static_cast<tc::GemmEngine&>(fp32)
                                        : static_cast<tc::GemmEngine&>(tcq);
    Context cw(eng), cd(eng);
    auto rw = *sbr::sbr_wy(a.view(), cw, opt);
    auto rd = *sbr::sbr_dbr(a.view(), cd, opt);

    for (index_t j = 0; j < p.n; ++j)
      for (index_t i = 0; i < p.n; ++i)
        ASSERT_EQ(rw.band(i, j), rd.band(i, j))
            << "band mismatch at (" << i << ", " << j << "), engine " << eng.name();

    ASSERT_EQ(rw.blocks.size(), rd.blocks.size());
    for (std::size_t k = 0; k < rw.blocks.size(); ++k) {
      ASSERT_EQ(rw.blocks[k].row_offset, rd.blocks[k].row_offset);
      const auto& w1 = rw.blocks[k].w;
      const auto& w2 = rd.blocks[k].w;
      const auto& y1 = rw.blocks[k].y;
      const auto& y2 = rd.blocks[k].y;
      ASSERT_EQ(w1.rows(), w2.rows());
      ASSERT_EQ(w1.cols(), w2.cols());
      for (index_t j = 0; j < w1.cols(); ++j)
        for (index_t i = 0; i < w1.rows(); ++i) {
          ASSERT_EQ(w1(i, j), w2(i, j)) << "W block " << k;
          ASSERT_EQ(y1(i, j), y2(i, j)) << "Y block " << k;
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DbrBitwiseTest,
    ::testing::Values(BitwiseCase{96, 8, true, false}, BitwiseCase{96, 8, false, false},
                      BitwiseCase{130, 16, true, false}, BitwiseCase{64, 4, true, false},
                      BitwiseCase{100, 8, true, true},  // look-ahead works at b == nb
                      BitwiseCase{33, 16, true, false},  // tiny trailing
                      BitwiseCase{120, 32, false, true}));

// ---------------------------------------------------------------------------
// b < nb: narrow-band correctness (the point of DBR).
// ---------------------------------------------------------------------------

struct NarrowCase {
  index_t n, b, nb;
};

class DbrNarrowBandTest : public ::testing::TestWithParam<NarrowCase> {};

TEST_P(DbrNarrowBandTest, ReducesToNarrowBandBackwardStably) {
  const auto p = GetParam();
  auto a = test::random_symmetric<float>(p.n, 700 + p.n + p.b + p.nb);
  SbrOptions opt;
  opt.bandwidth = p.b;
  opt.big_block = p.nb;
  opt.accumulate_q = true;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *sbr::sbr_dbr(a.view(), ctx, opt);

  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), p.b), 0.0);
  EXPECT_LT(orthogonality_error<float>(res.q.view()), 1e-6);
  EXPECT_LT(backward_error(a.view(), res.q.view(), res.band.view()), 1e-5);

  auto ref = reference_eigs(a.view());
  auto got = reference_eigs(ConstMatrixView<float>(res.band.view()));
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), p.n) * p.n, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    NarrowBands, DbrNarrowBandTest,
    ::testing::Values(NarrowCase{97, 1, 16},   // prime n, minimal band
                      NarrowCase{97, 2, 16}, NarrowCase{101, 3, 24},  // nb = 8b, odd n
                      NarrowCase{64, 2, 32}, NarrowCase{96, 8, 32},
                      NarrowCase{130, 16, 32},  // non-multiple n
                      NarrowCase{48, 4, 48}));  // single big block spans everything

// ---------------------------------------------------------------------------
// Option validation (satellite: no silent clamps).
// ---------------------------------------------------------------------------

TEST(DbrOptions, BigBlockBelowBandwidthIsInvalidArgument) {
  auto a = test::random_symmetric<float>(64, 3);
  tc::Fp32Engine eng;
  Context ctx(eng);
  SbrOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 8;  // b > nb: rejected, never silently raised
  for (int variant = 0; variant < 2; ++variant) {
    auto res = variant == 0 ? sbr::sbr_wy(a.view(), ctx, opt)
                            : sbr::sbr_dbr(a.view(), ctx, opt);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), ErrorCode::InvalidArgument);
    EXPECT_FALSE(is_recoverable(res.status()));
  }
}

TEST(DbrOptions, BandwidthOutOfRangeIsInvalidArgument) {
  auto a = test::random_symmetric<float>(8, 5);
  tc::Fp32Engine eng;
  Context ctx(eng);
  SbrOptions opt;
  opt.bandwidth = 8;  // must be < n
  opt.big_block = 8;
  auto r1 = sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), ErrorCode::InvalidArgument);
  auto r2 = sbr::sbr_zy(a.view(), ctx, opt);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), ErrorCode::InvalidArgument);

  opt.bandwidth = 0;
  auto r3 = sbr::sbr_dbr(a.view(), ctx, opt);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), ErrorCode::InvalidArgument);
}

TEST(DbrOptions, NonMultipleBigBlockRoundsDownWithNote) {
  const index_t n = 60;
  auto a = test::random_symmetric<float>(n, 7);
  tc::Fp32Engine eng;
  Context c1(eng), c2(eng);
  SbrOptions opt;
  opt.bandwidth = 3;
  opt.big_block = 10;  // not a multiple: rounds down to 9, with a note

  recovery::Scope scope;
  auto r1 = *sbr::sbr_dbr(a.view(), c1, opt);
  RecoveryLog log = scope.take();
  EXPECT_TRUE(has_site(log, "sbr.options"));

  opt.big_block = 9;
  auto r2 = *sbr::sbr_dbr(a.view(), c2, opt);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(r1.band(i, j), r2.band(i, j)) << "rounded nb must equal explicit nb";
}

TEST(DbrOptions, ValidateOptionsNormalizes) {
  SbrOptions opt;
  opt.bandwidth = 4;
  opt.big_block = 30;
  auto v = sbr::validate_options(opt, 64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->big_block, 28);
  EXPECT_EQ(v->bandwidth, 4);

  opt.big_block = 2;
  EXPECT_EQ(sbr::validate_options(opt, 64).status().code(), ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Trailing-update GEMM shapes: k = nb, pinned call-for-call by the tracer.
// ---------------------------------------------------------------------------

TEST(DbrShapes, TrailingUpdateGemmsCarryKEqualNb) {
  const index_t n = 96, b = 8, nb = 32;
  auto a = test::random_symmetric<float>(n, 11);
  tc::Fp32Engine eng;
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = nb;
  (void)sbr::sbr_dbr(a.view(), ctx, opt);

  const auto& rec = ctx.telemetry().recorded();
  // The rank-2k trailing GEMMs are square (tw x tw) with inner dimension nb.
  int rank2k = 0;
  for (const auto& s : rec)
    if (s.m == s.n && s.k == nb && s.m > nb) ++rank2k;
  EXPECT_GE(rank2k, 2) << "no (tw x tw, k = nb) trailing updates recorded";
}

class DbrTraceTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(DbrTraceTest, TraceMatchesImplementation) {
  const auto [n, b, nb] = GetParam();
  auto a = test::random_symmetric<float>(n, 910 + n);
  for (bool cache_oa : {false, true}) {
    tc::Fp32Engine eng;
    Context ctx(eng);
    ctx.telemetry().set_recording(true);
    SbrOptions opt;
    opt.bandwidth = b;
    opt.big_block = nb;
    opt.wy_cache_oa_product = cache_oa;
    (void)sbr::sbr_dbr(a.view(), ctx, opt);
    const auto traced = perf::trace_sbr_dbr(n, b, nb, cache_oa);
    const auto& recorded = ctx.telemetry().recorded();
    ASSERT_EQ(traced.size(), recorded.size()) << "cache_oa = " << cache_oa;
    for (std::size_t i = 0; i < traced.size(); ++i) {
      EXPECT_EQ(traced[i].m, recorded[i].m) << "call " << i;
      EXPECT_EQ(traced[i].n, recorded[i].n) << "call " << i;
      EXPECT_EQ(traced[i].k, recorded[i].k) << "call " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DbrTraceTest,
    ::testing::Values(std::make_tuple<index_t, index_t, index_t>(96, 8, 32),
                      std::make_tuple<index_t, index_t, index_t>(130, 16, 32),
                      std::make_tuple<index_t, index_t, index_t>(97, 2, 16),
                      std::make_tuple<index_t, index_t, index_t>(100, 8, 8),  // b == nb
                      std::make_tuple<index_t, index_t, index_t>(120, 8, 64)));

TEST(DbrShapes, TcSyr2kVariantSkipsEngineForTheRank2k) {
  const index_t n = 96, b = 8, nb = 32;
  auto a = test::random_symmetric<float>(n, 13);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  ctx.telemetry().set_recording(true);
  SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = nb;
  opt.dbr_use_tc_syr2k = true;
  auto res = *sbr::sbr_dbr(a.view(), ctx, opt);
  EXPECT_EQ(sbr::band_violation<float>(res.band.view(), b), 0.0);

  const auto traced = perf::trace_sbr_dbr(n, b, nb, /*cache_oa=*/true,
                                          /*use_tc_syr2k=*/true);
  const auto& recorded = ctx.telemetry().recorded();
  ASSERT_EQ(traced.size(), recorded.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].m, recorded[i].m) << "call " << i;
    EXPECT_EQ(traced[i].n, recorded[i].n) << "call " << i;
    EXPECT_EQ(traced[i].k, recorded[i].k) << "call " << i;
  }
}

TEST(DbrShapes, TcSyr2kVariantMatchesTwoGemmNumerics) {
  const index_t n = 96, b = 8, nb = 32;
  auto a = test::random_symmetric<float>(n, 17);
  tc::TcEngine e1(tc::TcPrecision::Fp16), e2(tc::TcPrecision::Fp16);
  SbrOptions two_gemm;
  two_gemm.bandwidth = b;
  two_gemm.big_block = nb;
  SbrOptions syr2k = two_gemm;
  syr2k.dbr_use_tc_syr2k = true;
  auto r1 = *sbr::sbr_dbr(a.view(), e1, two_gemm);
  auto r2 = *sbr::sbr_dbr(a.view(), e2, syr2k);
  // Same fp16-operand/fp32-accumulate numerics, different tile walk: agree
  // to TC roundoff.
  EXPECT_LT(test::rel_diff<float>(r1.band.view(), r2.band.view()), 1e-2);
}

// ---------------------------------------------------------------------------
// Look-ahead: unsupported for b < nb, noted + serial.
// ---------------------------------------------------------------------------

TEST(DbrLookahead, RequestFallsBackToSerialWithNote) {
  const index_t n = 100, b = 4, nb = 32;
  auto a = test::random_symmetric<float>(n, 19);
  tc::Fp32Engine eng;
  Context c1(eng), c2(eng);
  SbrOptions serial;
  serial.bandwidth = b;
  serial.big_block = nb;
  SbrOptions overlapped = serial;
  overlapped.lookahead = true;

  auto r1 = *sbr::sbr_dbr(a.view(), c1, serial);
  recovery::Scope scope;
  auto r2 = *sbr::sbr_dbr(a.view(), c2, overlapped);
  RecoveryLog log = scope.take();
  EXPECT_TRUE(has_site(log, "sbr.dbr")) << "silent look-ahead downgrade";

  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ASSERT_EQ(r1.band(i, j), r2.band(i, j));
}

// ---------------------------------------------------------------------------
// Narrow-band compact storage (satellite: DBR bands through band_storage).
// ---------------------------------------------------------------------------

TEST(DbrBandStorage, NarrowBandRoundTripAndChase) {
  const index_t n = 97;  // prime
  for (index_t b : {index_t{1}, index_t{2}, index_t{3}}) {
    auto a = test::random_symmetric<float>(n, 23 + b);
    SbrOptions opt;
    opt.bandwidth = b;
    opt.big_block = 12;
    tc::Fp32Engine eng;
    Context ctx(eng);
    auto res = *sbr::sbr_dbr(a.view(), ctx, opt);

    auto band = sbr::BandMatrix<float>::from_full(
        ConstMatrixView<float>(res.band.view()), b);
    // Round trip preserves every in-band entry.
    auto full = band.to_full();
    for (index_t j = 0; j < n; ++j)
      for (index_t i = j; i < std::min(n, j + b + 1); ++i)
        ASSERT_EQ(full(i, j), res.band(i, j)) << "(" << i << ", " << j << ")";

    // Compact chase reproduces the spectrum of the band.
    std::vector<float> d, e;
    sbr::bulge_chase_band(band, d, e);
    Matrix<float> tri(n, n);
    for (index_t i = 0; i < n; ++i) {
      tri(i, i) = d[static_cast<std::size_t>(i)];
      if (i + 1 < n) {
        tri(i + 1, i) = e[static_cast<std::size_t>(i)];
        tri(i, i + 1) = e[static_cast<std::size_t>(i)];
      }
    }
    auto ref = reference_eigs(ConstMatrixView<float>(res.band.view()));
    auto got = reference_eigs(ConstMatrixView<float>(tri.view()));
    EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n) * n, 1e-4) << "b = " << b;
  }
}

TEST(DbrBandStorage, ExtractTridiagonalIsTheBw1SecondStage) {
  const index_t n = 33;
  auto a = test::random_symmetric<float>(n, 29);
  SbrOptions opt;
  opt.bandwidth = 1;
  opt.big_block = 8;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *sbr::sbr_dbr(a.view(), ctx, opt);
  auto band =
      sbr::BandMatrix<float>::from_full(ConstMatrixView<float>(res.band.view()), 1);

  std::vector<float> d1, e1, d2, e2;
  band.extract_tridiagonal(d1, e1);
  sbr::bulge_chase_band(band, d2, e2);  // bw = 1: must be a pure extraction
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(e1, e2);
}

// ---------------------------------------------------------------------------
// Full pipeline: evd::solve with Reduction::TwoStageDbr.
// ---------------------------------------------------------------------------

TEST(DbrEvd, VerifyGatePassesOnAllEngines) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 31);
  tc::Fp32Engine fp32;
  tc::TcEngine tcq(tc::TcPrecision::Fp16);
  tc::EcTcEngine ectc(tc::TcPrecision::Fp16);
  tc::GemmEngine* engines[] = {&fp32, &tcq, &ectc};

  for (tc::GemmEngine* eng : engines) {
    Context ctx(*eng);
    ctx.telemetry().set_recording(true);
    evd::EvdOptions opt;
    opt.reduction = evd::Reduction::TwoStageDbr;
    opt.bandwidth = 4;
    opt.big_block = 32;
    opt.vectors = true;
    opt.verify = verify::Policy::Estimate;
    auto res = *evd::solve(a.view(), ctx, opt);
    ASSERT_TRUE(res.converged) << eng->name();
    EXPECT_TRUE(res.verify.checked) << eng->name();
    EXPECT_TRUE(res.verify.passed)
        << eng->name() << ": residual " << res.verify.residual << " orth "
        << res.verify.orthogonality;

    // Acceptance: the recorded trailing updates carry k = nb.
    int k_nb = 0;
    for (const auto& s : ctx.telemetry().recorded())
      if (s.k == 32 && s.m == s.n && s.m >= 32) ++k_nb;
    EXPECT_GE(k_nb, 1) << eng->name();
  }
}

TEST(DbrEvd, CompactSecondStageAcceptsDbrBandsEigenvaluesOnly) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 37);
  tc::Fp32Engine eng;
  evd::EvdOptions opt;
  opt.reduction = evd::Reduction::TwoStageDbr;
  opt.bandwidth = 2;
  opt.big_block = 16;

  Context c1(eng);
  auto full = *evd::solve(a.view(), c1, opt);
  opt.compact_second_stage = true;
  Context c2(eng);
  auto compact = *evd::solve(a.view(), c2, opt);
  ASSERT_TRUE(compact.converged);
  EXPECT_FALSE(has_site(compact.recovery, "evd.second_stage"));

  ASSERT_EQ(full.eigenvalues.size(), compact.eigenvalues.size());
  float scale = 0.0f;
  for (float v : full.eigenvalues) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < full.eigenvalues.size(); ++i)
    EXPECT_NEAR(full.eigenvalues[i], compact.eigenvalues[i], 1e-4f * scale) << i;
}

TEST(DbrEvd, CompactSecondStageWithVectorsIsStillNoted) {
  // Regression for the surfaced downgrade: with vectors the compact flag is
  // ignored (rotations must stream into Q) and the caller must be told —
  // including on the DBR reduction, where narrow bands make the compact
  // memory profile the whole point.
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 41);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.reduction = evd::Reduction::TwoStageDbr;
  opt.bandwidth = 2;
  opt.big_block = 16;
  opt.vectors = true;
  opt.compact_second_stage = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(has_site(res.recovery, "evd.second_stage"))
      << "ignored compact_second_stage request was not surfaced";
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues,
                                    ConstMatrixView<float>(res.vectors.view())),
            1e-4);
}

TEST(DbrEvd, BigBlockBelowBandwidthIsNotedAndRaised) {
  // EvdOptions defaults can be outgrown by a large bandwidth; the driver
  // raises nb to b but must surface the adjustment instead of silently
  // mutating the request (the SBR layer itself rejects nb < b outright).
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 43);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 48;
  opt.big_block = 16;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_TRUE(has_site(res.recovery, "evd.options"));
}

}  // namespace
}  // namespace tcevd
