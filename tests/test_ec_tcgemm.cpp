// Error-corrected Tensor Core GEMM: the split identity, accuracy recovery to
// ~fp32, and behaviour across transposes and dynamic ranges.
#include <gtest/gtest.h>

#include <cmath>

#include "src/blas/blas.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using tc::TcPrecision;

TEST(EcSplit, HeadPlusScaledResidualReconstructs) {
  const index_t n = 32;
  auto x = test::random_matrix_f(n, n, 1);
  Matrix<float> head(n, n), res(n, n);
  tc::ec_split(x.view(), head.view(), res.view(), TcPrecision::Fp16);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const double recon = double(head(i, j)) + double(res(i, j)) / tc::kEcScale;
      // Residual itself is rounded to fp16, so reconstruction error is
      // ~eps16^2 relative, far below fp32 eps * 4 in this [-4,4] range.
      EXPECT_NEAR(recon, double(x(i, j)), 4e-7 * std::max(1.0, std::abs(double(x(i, j)))));
    }
}

TEST(EcSplit, HeadIsFp16Representable) {
  auto x = test::random_matrix_f(16, 16, 2);
  Matrix<float> head(16, 16), res(16, 16);
  tc::ec_split(x.view(), head.view(), res.view(), TcPrecision::Fp16);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i) {
      EXPECT_EQ(head(i, j), round_to_half(head(i, j)));
      EXPECT_EQ(res(i, j), round_to_half(res(i, j)));
    }
}

TEST(EcTcGemm, RecoversNearFp32Accuracy) {
  const index_t n = 96;
  auto a = test::random_matrix_f(n, n, 3);
  auto b = test::random_matrix_f(n, n, 4);
  Matrix<double> ad(n, n), bd(n, n), cd(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  convert_matrix<float, double>(b.view(), bd.view());
  blas::gemm(Trans::No, Trans::No, 1.0, ad.view(), bd.view(), 0.0, cd.view());

  Matrix<float> c_tc(n, n), c_ec(n, n);
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ec.view()).ok());

  Matrix<float> cd_f(n, n);
  convert_matrix<double, float>(cd.view(), cd_f.view());
  const double err_tc = test::rel_diff<float>(c_tc.view(), cd_f.view());
  const double err_ec = test::rel_diff<float>(c_ec.view(), cd_f.view());
  // EC must beat plain TC by >= 2 orders of magnitude and approach fp32.
  EXPECT_LT(err_ec, err_tc / 100.0);
  EXPECT_LT(err_ec, 1e-6);
}

TEST(EcTcGemm, AlphaBetaHandled) {
  const index_t n = 16;
  auto a = test::random_matrix_f(n, n, 5);
  auto b = test::random_matrix_f(n, n, 6);
  auto c = test::random_matrix_f(n, n, 7);
  Matrix<float> c_ref = c;
  blas::gemm(Trans::No, Trans::No, 1.5f, a.view(), b.view(), -0.5f, c_ref.view());
  ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.5f, a.view(), b.view(), -0.5f, c.view()).ok());
  EXPECT_LT(test::rel_diff<float>(c.view(), c_ref.view()), 1e-5);
}

struct TransCase {
  Trans ta, tb;
};

class EcTransTest : public ::testing::TestWithParam<TransCase> {};

TEST_P(EcTransTest, Transposes) {
  const auto p = GetParam();
  const index_t m = 20, n = 24, k = 16;
  const index_t am = (p.ta == Trans::No) ? m : k;
  const index_t an = (p.ta == Trans::No) ? k : m;
  const index_t bm = (p.tb == Trans::No) ? k : n;
  const index_t bn = (p.tb == Trans::No) ? n : k;
  auto a = test::random_matrix_f(am, an, 8);
  auto b = test::random_matrix_f(bm, bn, 9);
  Matrix<float> c_ec(m, n), c_ref(m, n);
  ASSERT_TRUE(tc::ec_tcgemm(p.ta, p.tb, 1.0f, a.view(), b.view(), 0.0f, c_ec.view()).ok());
  blas::gemm(p.ta, p.tb, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  EXPECT_LT(test::rel_diff<float>(c_ec.view(), c_ref.view()), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, EcTransTest,
                         ::testing::Values(TransCase{Trans::No, Trans::No},
                                           TransCase{Trans::No, Trans::Yes},
                                           TransCase{Trans::Yes, Trans::No},
                                           TransCase{Trans::Yes, Trans::Yes}));

TEST(EcTcGemm, ScalingHandlesSmallMagnitudes) {
  // Entries around 2^-13: plain fp16 rounding loses most mantissa bits to
  // the subnormal range; the 2^11 residual scaling must recover them.
  const index_t n = 32;
  Rng rng(10);
  Matrix<float> a(n, n), b(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      a(i, j) = static_cast<float>(rng.normal()) * 0x1.0p-13f;
      b(i, j) = static_cast<float>(rng.normal());
    }
  Matrix<float> c_ec(n, n), c_tc(n, n), c_ref(n, n);
  ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ec.view()).ok());
  tc::tc_gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_tc.view());
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  EXPECT_LT(test::rel_diff<float>(c_ec.view(), c_ref.view()),
            0.1 * test::rel_diff<float>(c_tc.view(), c_ref.view()));
}

TEST(EcTcGemm, Tf32VariantAlsoAccurate) {
  const index_t n = 48;
  auto a = test::random_matrix_f(n, n, 11);
  auto b = test::random_matrix_f(n, n, 12);
  Matrix<float> c_ec(n, n), c_ref(n, n);
  ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ec.view(),
                            TcPrecision::Tf32)
                  .ok());
  blas::gemm(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c_ref.view());
  EXPECT_LT(test::rel_diff<float>(c_ec.view(), c_ref.view()), 1e-6);
}

}  // namespace
}  // namespace tcevd
