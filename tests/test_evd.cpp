// End-to-end EVD: all reductions x solvers x engines, eigenvalue accuracy
// against the double reference, eigenvector residuals, timings populated.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/matgen/matgen.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using evd::EvdOptions;
using evd::Reduction;
using evd::TriSolver;

std::vector<double> dbl_reference(ConstMatrixView<float> a) {
  const index_t n = a.rows();
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a, ad.view());
  return *evd::reference_eigenvalues(ad.view());
}

struct EvdCase {
  Reduction red;
  TriSolver solver;
  index_t n, b;
};

class EvdPipelineTest : public ::testing::TestWithParam<EvdCase> {};

TEST_P(EvdPipelineTest, EigenvaluesMatchReferenceFp32) {
  const auto p = GetParam();
  auto a = test::random_symmetric<float>(p.n, 500 + p.n);
  EvdOptions opt;
  opt.reduction = p.red;
  opt.solver = p.solver;
  opt.bandwidth = p.b;
  opt.big_block = 4 * p.b;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(static_cast<index_t>(res.eigenvalues.size()), p.n);

  auto ref = dbl_reference(a.view());
  std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
  // fp32 pipeline: expect ~1e-6 normalized error (paper's MAGMA column).
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), p.n), 1e-5 / p.n * 10);
  // Ascending order.
  for (index_t i = 1; i < p.n; ++i)
    EXPECT_LE(res.eigenvalues[static_cast<std::size_t>(i - 1)],
              res.eigenvalues[static_cast<std::size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, EvdPipelineTest,
    ::testing::Values(EvdCase{Reduction::TwoStageWy, TriSolver::DivideConquer, 96, 8},
                      EvdCase{Reduction::TwoStageWy, TriSolver::Ql, 96, 8},
                      EvdCase{Reduction::TwoStageWy, TriSolver::Bisection, 96, 8},
                      EvdCase{Reduction::TwoStageZy, TriSolver::DivideConquer, 96, 8},
                      EvdCase{Reduction::TwoStageZy, TriSolver::Ql, 80, 16},
                      EvdCase{Reduction::OneStage, TriSolver::DivideConquer, 96, 8},
                      EvdCase{Reduction::OneStage, TriSolver::Ql, 64, 8},
                      EvdCase{Reduction::TwoStageWy, TriSolver::DivideConquer, 130, 16}));

TEST(Evd, VectorsDiagonalize) {
  const index_t n = 80;
  auto a = test::random_symmetric<float>(n, 3);
  EvdOptions opt;
  opt.vectors = true;
  opt.bandwidth = 8;
  opt.big_block = 32;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(orthogonality_error<float>(res.vectors.view()), 1e-6);
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()), 1e-5);
}

TEST(Evd, VectorsViaQlAlsoDiagonalize) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 5);
  EvdOptions opt;
  opt.vectors = true;
  opt.solver = TriSolver::Ql;
  opt.bandwidth = 8;
  opt.big_block = 16;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()), 1e-5);
}

TEST(Evd, OneStageVectors) {
  const index_t n = 50;
  auto a = test::random_symmetric<float>(n, 7);
  EvdOptions opt;
  opt.vectors = true;
  opt.reduction = Reduction::OneStage;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()), 1e-5);
}

TEST(Evd, TensorCorePipelineWithinTcEpsilon) {
  const index_t n = 128;
  Rng rng(11);
  auto a = matgen::generate_f(matgen::MatrixType::Arith, n, 1e3, rng);
  EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 32;
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  auto ref = dbl_reference(a.view());
  std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
  // Paper Table 4: E_s ~ 1e-4..1e-5 with N normalization.
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n), 1e-4);
}

TEST(Evd, EcTcBeatsPlainTc) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 13);
  EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  auto ref = dbl_reference(a.view());

  tc::TcEngine tc_eng(tc::TcPrecision::Fp16);
  tc::EcTcEngine ec_eng(tc::TcPrecision::Fp16);
  Context tc_ctx(tc_eng), ec_ctx(ec_eng);
  auto r1 = *evd::solve(a.view(), tc_ctx, opt);
  auto r2 = *evd::solve(a.view(), ec_ctx, opt);
  ASSERT_TRUE(r1.converged && r2.converged);
  std::vector<double> g1(r1.eigenvalues.begin(), r1.eigenvalues.end());
  std::vector<double> g2(r2.eigenvalues.begin(), r2.eigenvalues.end());
  EXPECT_LT(eigenvalue_error(ref.data(), g2.data(), n),
            eigenvalue_error(ref.data(), g1.data(), n));
}

TEST(Evd, TimingsPopulated) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 17);
  EvdOptions opt;
  opt.bandwidth = 8;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  EXPECT_GT(res.timings.reduction_s, 0.0);
  EXPECT_GT(res.timings.solver_s, 0.0);
  EXPECT_GE(res.timings.total_s,
            res.timings.reduction_s + res.timings.bulge_s + res.timings.solver_s - 1e-9);
}

TEST(Evd, CompactSecondStageIgnoredWithVectorsIsLogged) {
  // compact_second_stage cannot stream the bulge rotations into Q, so with
  // vectors requested it is ignored — but the caller must be told.
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 23);
  EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  opt.compact_second_stage = true;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  bool noted = false;
  for (const RecoveryEvent& ev : res.recovery)
    if (ev.site == "evd.second_stage") noted = true;
  EXPECT_TRUE(noted) << "ignored compact_second_stage request was not surfaced";

  // Eigenvalues-only with the same flag takes the compact path silently.
  opt.vectors = false;
  Context ctx2(eng);
  auto res2 = *evd::solve(a.view(), ctx2, opt);
  ASSERT_TRUE(res2.converged);
  for (const RecoveryEvent& ev : res2.recovery) EXPECT_NE(ev.site, "evd.second_stage");
}

TEST(Evd, TrivialSizesSolveInsteadOfAborting) {
  tc::Fp32Engine eng;
  Context ctx(eng);
  EvdOptions opt;
  opt.vectors = true;

  // n = 1: bandwidth = min(b, n-1) = 0 used to fail the SBR precondition
  // check and abort the process.
  Matrix<float> a1(1, 1);
  a1(0, 0) = -3.25f;
  auto r1 = evd::solve(a1.view(), ctx, opt);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->converged);
  ASSERT_EQ(r1->eigenvalues.size(), 1u);
  EXPECT_EQ(r1->eigenvalues[0], -3.25f);
  EXPECT_EQ(r1->vectors(0, 0), 1.0f);

  // n = 0: empty, converged result.
  Matrix<float> a0(0, 0);
  auto r0 = evd::solve(a0.view(), ctx, opt);
  ASSERT_TRUE(r0.ok());
  EXPECT_TRUE(r0->converged);
  EXPECT_TRUE(r0->eigenvalues.empty());

  // n = 2 is the smallest size that goes through the real pipeline.
  auto a2 = test::random_symmetric<float>(2, 29);
  auto r2 = evd::solve(a2.view(), ctx, opt);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->eigenvalues.size(), 2u);
  EXPECT_LE(r2->eigenvalues[0], r2->eigenvalues[1]);

  // solve_selected shares the trivial path.
  auto sel = evd::solve_selected(a1.view(), ctx, opt, 0, 0, /*vectors=*/true);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->eigenvalues[0], -3.25f);
}

TEST(Evd, KnownSpectrumRecovered) {
  const index_t n = 100;
  Rng rng(19);
  auto a = matgen::generate_f(matgen::MatrixType::Geo, n, 1e3, rng);
  auto spectrum = matgen::prescribed_spectrum(matgen::MatrixType::Geo, n, 1e3);
  EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  tc::Fp32Engine eng;
  Context ctx(eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  std::vector<double> got(res.eigenvalues.begin(), res.eigenvalues.end());
  EXPECT_LT(eigenvalue_error(spectrum.data(), got.data(), n), 1e-6);
}

}  // namespace
}  // namespace tcevd
