// Options wired in after the core reproduction: compact second stage,
// engine-native TC syr2k in ZY-SBR, and block-reflector application.
#include <gtest/gtest.h>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/sbr/sbr.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

TEST(CompactSecondStage, SameEigenvaluesAsFullStorage) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 1);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  auto full = *evd::solve(a.view(), ctx, opt);
  opt.compact_second_stage = true;
  auto compact = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(full.converged && compact.converged);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(full.eigenvalues[static_cast<std::size_t>(i)],
                compact.eigenvalues[static_cast<std::size_t>(i)], 2e-5f);
}

TEST(CompactSecondStage, IgnoredWhenVectorsRequested) {
  const index_t n = 48;
  auto a = test::random_symmetric<float>(n, 2);
  tc::Fp32Engine eng;
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  opt.compact_second_stage = true;
  opt.vectors = true;  // falls back to the full-storage chase + Q
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()), 1e-5);
}

TEST(ZyTcSyr2k, MatchesTwoGemmTrailingUpdate) {
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 3);
  sbr::SbrOptions two;
  two.bandwidth = b;
  sbr::SbrOptions native = two;
  native.zy_use_tc_syr2k = true;

  tc::TcEngine e1(tc::TcPrecision::Fp16), e2(tc::TcPrecision::Fp16);
  Context c1(e1), c2(e2);
  auto r1 = *sbr::sbr_zy(a.view(), c1, two);
  auto r2 = *sbr::sbr_zy(a.view(), c2, native);
  // Same numerics family, but each panel's rounding differences compound
  // through the reflectors, so the two band forms drift at a multiple of the
  // TC eps (they remain orthogonally similar — spectrum check below).
  EXPECT_LT(test::rel_diff<float>(r1.band.view(), r2.band.view()), 5e-2);
  // Spectrum identical to fp64-class tolerance of TC pipeline.
  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = *evd::reference_eigenvalues(ad.view());
  Matrix<double> bd(n, n);
  convert_matrix<float, double>(ConstMatrixView<float>(r2.band.view()), bd.view());
  auto got = *evd::reference_eigenvalues(bd.view());
  EXPECT_LT(eigenvalue_error(ref.data(), got.data(), n), 1e-4);
}

TEST(ZyTcSyr2k, FallsBackSilentlyOnNonTcEngine) {
  const index_t n = 64, b = 8;
  auto a = test::random_symmetric<float>(n, 4);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.zy_use_tc_syr2k = true;  // fp32 engine: option must be a no-op
  tc::Fp32Engine e1, e2;
  Context c1(e1), c2(e2);
  auto r1 = *sbr::sbr_zy(a.view(), c1, opt);
  opt.zy_use_tc_syr2k = false;
  auto r2 = *sbr::sbr_zy(a.view(), c2, opt);
  EXPECT_EQ(frobenius_diff<float>(r1.band.view(), r2.band.view()), 0.0);
}

TEST(ApplyWyBlocks, MatchesExplicitQMultiplication) {
  const index_t n = 96, b = 8;
  auto a = test::random_symmetric<float>(n, 5);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = b;
  opt.big_block = 32;
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);
  ASSERT_FALSE(res.blocks.empty());

  auto x = test::random_matrix_f(n, 7, 6);
  // Reference: explicit Q times X.
  auto q = sbr::form_q(res.blocks, n, ctx);
  Matrix<float> qx(n, 7);
  blas::gemm(Trans::No, Trans::No, 1.0f, ConstMatrixView<float>(q.view()),
             ConstMatrixView<float>(x.view()), 0.0f, qx.view());
  // In-place block application.
  Matrix<float> x2 = x;
  sbr::apply_wy_blocks_left(res.blocks, ctx, x2.view());
  EXPECT_LT(test::rel_diff<float>(x2.view(), qx.view()), 1e-5);
}

TEST(ApplyWyBlocks, PreservesNorms) {
  // Q is orthogonal: column norms of X are invariant.
  const index_t n = 80;
  auto a = test::random_symmetric<float>(n, 7);
  tc::Fp32Engine eng;
  Context ctx(eng);
  sbr::SbrOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 16;
  auto res = *sbr::sbr_wy(a.view(), ctx, opt);
  auto x = test::random_matrix_f(n, 3, 8);
  std::vector<double> norms;
  for (index_t j = 0; j < 3; ++j) norms.push_back(blas::nrm2(n, &x(0, j), 1));
  sbr::apply_wy_blocks_left(res.blocks, ctx, x.view());
  for (index_t j = 0; j < 3; ++j)
    EXPECT_NEAR(blas::nrm2(n, &x(0, j), 1), norms[static_cast<std::size_t>(j)], 1e-4);
}

}  // namespace
}  // namespace tcevd
