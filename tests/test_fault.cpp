// Fault injection, Status propagation, and graceful-degradation coverage.
//
// Each registered injection site is armed one-shot against the full EVD
// pipeline on hard matrices (512 x 512 Wilkinson / clustered spectra); the
// solve must still succeed through its documented fallback, record the
// recovery, and produce residuals indistinguishable from a clean run.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/context.hpp"
#include "src/blas/blas.hpp"
#include "src/common/fault.hpp"
#include "src/common/recovery.hpp"
#include "src/common/status.hpp"
#include "src/tsqr/reconstruct_wy.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/lapack/stein.hpp"
#include "src/lapack/tridiag.hpp"
#include "src/matgen/matgen.hpp"
#include "src/sbr/sbr.hpp"
#include "src/tensorcore/engine.hpp"
#include "tests/test_util.hpp"

namespace tcevd {
namespace {

/// Wilkinson-type matrix W_n^+ as a full dense symmetric matrix:
/// d_i = |i - (n-1)/2|, unit off-diagonal. Eigenvalues come in notoriously
/// close pairs — a classic stress test for tridiagonal solvers.
Matrix<float> wilkinson_full(index_t n) {
  Matrix<float> a(n, n);
  set_zero(a.view());
  const double mid = static_cast<double>(n - 1) / 2.0;
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<float>(std::abs(i - mid));
  for (index_t i = 0; i + 1 < n; ++i) {
    a(i, i + 1) = 1.0f;
    a(i + 1, i) = 1.0f;
  }
  return a;
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(FaultTest, SiteNamesRoundTrip) {
  for (int i = 0; i < fault::kSiteCount; ++i) {
    const auto site = static_cast<fault::Site>(i);
    fault::Site parsed{};
    ASSERT_TRUE(fault::site_from_name(fault::site_name(site), &parsed)) << fault::site_name(site);
    EXPECT_EQ(static_cast<int>(parsed), i);
  }
  fault::Site out{};
  EXPECT_FALSE(fault::site_from_name("no.such.site", &out));
}

TEST_F(FaultTest, ArmFromSpecGrammar) {
  EXPECT_TRUE(fault::arm_from_spec("steqr.exhaust"));
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::arm_from_spec("panel.nan:3"));
  EXPECT_TRUE(fault::armed(fault::Site::PanelNan));
  EXPECT_TRUE(fault::arm_from_spec("ec_tcgemm.saturate:-1"));
  EXPECT_FALSE(fault::arm_from_spec("bogus.site"));
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:x"));
  EXPECT_FALSE(fault::arm_from_spec(""));
}

TEST_F(FaultTest, ArmFromSpecToleratesWhitespace) {
  EXPECT_TRUE(fault::arm_from_spec("  steqr.exhaust  "));
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::arm_from_spec(" panel.nan : 2 "));
  EXPECT_TRUE(fault::armed(fault::Site::PanelNan));
  EXPECT_TRUE(fault::arm_from_spec("\tgemm.tile_corrupt\t:\t-1\t"));
  EXPECT_TRUE(fault::armed(fault::Site::GemmTileCorrupt));
}

TEST_F(FaultTest, ArmFromSpecRejectsMalformedCounts) {
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:"));        // empty count
  EXPECT_FALSE(fault::arm_from_spec("panel.nan: "));       // whitespace-only count
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:2x"));      // trailing junk
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:2:3"));     // second colon
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:-2"));      // only -1 means unlimited
  EXPECT_FALSE(fault::arm_from_spec("panel.nan:99999999999"));  // overflows int
  EXPECT_FALSE(fault::armed(fault::Site::PanelNan));
}

TEST_F(FaultTest, ArmFromEnvValueParsesLists) {
  EXPECT_TRUE(fault::arm_from_env_value("steqr.exhaust, panel.nan:2 ,verify.residual:-1"));
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::armed(fault::Site::PanelNan));
  EXPECT_TRUE(fault::armed(fault::Site::VerifyResidual));
  // Empty entries (leading/trailing/doubled commas) are skipped, not errors.
  fault::disarm_all();
  EXPECT_TRUE(fault::arm_from_env_value(",steqr.exhaust,,panel.nan, "));
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::armed(fault::Site::PanelNan));
  EXPECT_TRUE(fault::arm_from_env_value(""));
}

TEST_F(FaultTest, ArmFromEnvValueReportsFirstMalformedEntryAndArmsTheRest) {
  std::string bad;
  EXPECT_FALSE(fault::arm_from_env_value(
      "steqr.exhaust, bogus.site:3, panel.nan, also.bad", &bad));
  EXPECT_EQ(bad, "bogus.site:3");  // first malformed entry, trimmed
  // Valid entries on either side of the malformed ones are still armed.
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::armed(fault::Site::PanelNan));
}

TEST_F(FaultTest, NewSiteNamesRegistered) {
  fault::Site site{};
  ASSERT_TRUE(fault::site_from_name("gemm.tile_corrupt", &site));
  EXPECT_EQ(site, fault::Site::GemmTileCorrupt);
  ASSERT_TRUE(fault::site_from_name("verify.residual", &site));
  EXPECT_EQ(site, fault::Site::VerifyResidual);
}

TEST_F(FaultTest, OneShotBudgetAutoDisarms) {
  fault::arm(fault::Site::SteqrExhaust, 1);
  EXPECT_TRUE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_TRUE(fault::should_fire(fault::Site::SteqrExhaust));
  EXPECT_FALSE(fault::should_fire(fault::Site::SteqrExhaust));
  EXPECT_FALSE(fault::armed(fault::Site::SteqrExhaust));
  EXPECT_EQ(fault::fired(fault::Site::SteqrExhaust), 1);
}

TEST_F(FaultTest, DisabledSitesNeverFire) {
  for (int i = 0; i < fault::kSiteCount; ++i)
    EXPECT_FALSE(fault::should_fire(static_cast<fault::Site>(i)));
}

TEST_F(FaultTest, RecoverableCodes) {
  EXPECT_TRUE(is_recoverable(no_convergence_error("x")));
  EXPECT_TRUE(is_recoverable(precision_loss_error("x")));
  EXPECT_TRUE(is_recoverable(singular_panel_error("x")));
  EXPECT_TRUE(is_recoverable(fault_injected_error("x")));
  EXPECT_FALSE(is_recoverable(invalid_input_error("x")));
  EXPECT_FALSE(is_recoverable(ok_status()));
}

// --- Non-convergence status paths -----------------------------------------

TEST_F(FaultTest, SteqrExhaustionReportsStatus) {
  fault::arm(fault::Site::SteqrExhaust, 1);
  std::vector<float> d = {2.0f, 1.0f, 3.0f};
  std::vector<float> e = {0.5f, 0.25f};
  Status st = lapack::steqr<float>(d, e, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::FaultInjected);
  // Retry with the budget spent must succeed.
  d = {2.0f, 1.0f, 3.0f};
  e = {0.5f, 0.25f};
  EXPECT_TRUE(lapack::steqr<float>(d, e, nullptr).ok());
}

TEST_F(FaultTest, SteinFailureReportsStatus) {
  fault::arm(fault::Site::SteinStagnate, 1);
  std::vector<float> d = {1.0f, 2.0f, 4.0f};
  std::vector<float> e = {0.1f, 0.1f};
  auto eigs = lapack::stebz<float>(d, e, 0, 2);
  Matrix<float> z(3, 3);
  Status st = lapack::stein<float>(d, e, eigs, z.view());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::FaultInjected);
  EXPECT_TRUE(lapack::stein<float>(d, e, eigs, z.view()).ok());
}

TEST_F(FaultTest, ReconstructSingularReportsStatus) {
  fault::arm(fault::Site::ReconstructSingular, 1);
  Matrix<float> q(8, 4);
  set_zero(q.view());
  for (index_t j = 0; j < 4; ++j) q(j, j) = 1.0f;  // trivially orthonormal
  Matrix<float> w(8, 4), y(8, 4);
  std::vector<float> signs;
  Status st = tsqr::reconstruct_wy(ConstMatrixView<float>(q.view()), w.view(), y.view(), signs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::FaultInjected);
  EXPECT_TRUE(
      tsqr::reconstruct_wy(ConstMatrixView<float>(q.view()), w.view(), y.view(), signs).ok());
}

// --- Input screening -------------------------------------------------------

TEST_F(FaultTest, SolveRejectsNonFiniteInput) {
  auto a = test::random_symmetric<float>(32, 7);
  a(3, 4) = std::numeric_limits<float>::quiet_NaN();
  a(4, 3) = std::numeric_limits<float>::quiet_NaN();
  tc::Fp32Engine engine;
  Context ctx(engine);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, {});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::InvalidInput);
}

TEST_F(FaultTest, SolveRejectsAsymmetricInput) {
  auto a = test::random_symmetric<float>(32, 7);
  a(3, 4) += 10.0f;  // gross asymmetry
  tc::Fp32Engine engine;
  Context ctx(engine);
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, {});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::InvalidInput);
}

TEST_F(FaultTest, ScreeningCanBeDisabled) {
  auto a = test::random_symmetric<float>(32, 7);
  a(3, 4) += 1e-2f;  // beyond the default tolerance but harmless
  a(4, 3) += 1e-2f;
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.screen_input = false;
  EXPECT_TRUE(evd::solve(ConstMatrixView<float>(a.view()), ctx, opt).ok());
}

// --- Per-layer fallbacks ---------------------------------------------------

TEST_F(FaultTest, PanelFallsBackToBlockedQr) {
  fault::arm(fault::Site::ReconstructSingular, 1);
  auto panel_src = test::random_matrix_f(96, 16, 11);
  Matrix<float> panel(96, 16);
  copy_matrix<float>(ConstMatrixView<float>(panel_src.view()), panel.view());
  Matrix<float> w(96, 16), y(96, 16);
  recovery::Scope scope;
  Status st = sbr::panel_factor_wy(sbr::PanelKind::Tsqr, panel.view(), w.view(), y.view());
  ASSERT_TRUE(st.ok()) << st.to_string();
  auto log = scope.take();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].site, "sbr.panel");
  // The fallback factorization must still reproduce the panel:
  // (I - W Y^T) [R; 0] == original.
  Matrix<float> rebuilt(96, 16);
  copy_matrix<float>(ConstMatrixView<float>(panel.view()), rebuilt.view());
  Matrix<float> ytr(16, 16);
  blas::gemm<float>(blas::Trans::Yes, blas::Trans::No, 1.0f, ConstMatrixView<float>(y.view()),
                    ConstMatrixView<float>(panel.view()), 0.0f, ytr.view());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, -1.0f, ConstMatrixView<float>(w.view()),
                    ConstMatrixView<float>(ytr.view()), 1.0f, rebuilt.view());
  EXPECT_LT(test::rel_diff(ConstMatrixView<float>(rebuilt.view()),
                           ConstMatrixView<float>(panel_src.view())),
            1e-4);
}

TEST_F(FaultTest, EcTcEngineRetriesSaturatedBlockInFp32) {
  // Finite fp32 values beyond fp16's 65504 max saturate the head split; the
  // engine must transparently redo the GEMM in fp32 and match plain SGEMM.
  const index_t n = 24;
  auto a = test::random_matrix_f(n, n, 3);
  auto b = test::random_matrix_f(n, n, 4);
  for (index_t i = 0; i < n; ++i) a(i, i) = 1.0e6f;  // outside fp16 range
  Matrix<float> c(n, n), ref(n, n);
  set_zero(c.view());
  set_zero(ref.view());
  tc::EcTcEngine engine;
  Context ctx(engine);
  recovery::Scope scope;
  engine.gemm(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
              ConstMatrixView<float>(b.view()), 0.0f, c.view());
  EXPECT_GE(engine.fp32_fallbacks(), 1);
  EXPECT_FALSE(scope.take().empty());
  blas::gemm<float>(blas::Trans::No, blas::Trans::No, 1.0f, ConstMatrixView<float>(a.view()),
                    ConstMatrixView<float>(b.view()), 0.0f, ref.view());
  EXPECT_LT(test::rel_diff(ConstMatrixView<float>(c.view()), ConstMatrixView<float>(ref.view())),
            1e-6);
}

TEST_F(FaultTest, EcTcGemmCleanWhenInRange) {
  const index_t n = 16;
  auto a = test::random_matrix_f(n, n, 5);
  auto b = test::random_matrix_f(n, n, 6);
  Matrix<float> c(n, n);
  set_zero(c.view());
  EXPECT_TRUE(tc::ec_tcgemm(blas::Trans::No, blas::Trans::No, 1.0f,
                            ConstMatrixView<float>(a.view()), ConstMatrixView<float>(b.view()),
                            0.0f, c.view())
                  .ok());
}

// --- End-to-end graceful degradation (the acceptance bar) ------------------

struct SiteCase {
  fault::Site site;
  evd::TriSolver solver;  // a solver whose path actually visits the site
};

class FaultSiteEvd : public ::testing::TestWithParam<SiteCase> {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_P(FaultSiteEvd, WilkinsonSolveRecovers) {
  const SiteCase& sc = GetParam();
  const index_t n = 512;
  auto a = wilkinson_full(n);

  fault::arm(sc.site, 1);
  tc::EcTcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.solver = sc.solver;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(fault::fired(sc.site), 1) << "site never reached by this configuration";
  EXPECT_FALSE(res->recovery.empty());
  EXPECT_TRUE(res->converged);
  const double resid = evd::eigenpair_residual(ConstMatrixView<float>(a.view()),
                                               res->eigenvalues,
                                               ConstMatrixView<float>(res->vectors.view()));
  EXPECT_LT(resid, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSiteEvd,
    ::testing::Values(
        SiteCase{fault::Site::PanelNan, evd::TriSolver::DivideConquer},
        SiteCase{fault::Site::ReconstructSingular, evd::TriSolver::DivideConquer},
        SiteCase{fault::Site::EcTcSaturate, evd::TriSolver::DivideConquer},
        SiteCase{fault::Site::SteqrExhaust, evd::TriSolver::DivideConquer},
        SiteCase{fault::Site::SteinStagnate, evd::TriSolver::Bisection}),
    [](const ::testing::TestParamInfo<SiteCase>& info) {
      std::string name = fault::site_name(info.param.site);
      for (char& ch : name)
        if (ch == '.') ch = '_';
      return name;
    });

TEST_F(FaultTest, ClusteredSolveRecoversFromPanelNan) {
  const index_t n = 512;
  Rng rng(99);
  auto a = matgen::generate_f(matgen::MatrixType::Cluster1, n, 1e4, rng);

  fault::arm(fault::Site::PanelNan, 1);
  tc::EcTcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(fault::fired(fault::Site::PanelNan), 1);
  EXPECT_FALSE(res->recovery.empty());
  const double resid = evd::eigenpair_residual(ConstMatrixView<float>(a.view()),
                                               res->eigenvalues,
                                               ConstMatrixView<float>(res->vectors.view()));
  EXPECT_LT(resid, 1e-4);
}

TEST_F(FaultTest, SolverChainFallsBackFromDc) {
  // One-shot steqr exhaustion fails D&C (whose base case is steqr); the
  // driver must retry with QL and record the switch.
  const index_t n = 128;
  auto a = test::random_symmetric<float>(n, 21);
  fault::arm(fault::Site::SteqrExhaust, 1);
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.solver = evd::TriSolver::DivideConquer;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  bool solver_fallback_logged = false;
  for (const auto& ev : res->recovery)
    if (ev.site == "evd.solver") solver_fallback_logged = true;
  EXPECT_TRUE(solver_fallback_logged);
}

TEST_F(FaultTest, FallbacksCanBeDisabled) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 22);
  fault::arm(fault::Site::SteqrExhaust, 1);
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.solver = evd::TriSolver::Ql;
  opt.allow_fallbacks = false;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), ErrorCode::FaultInjected);
}

TEST_F(FaultTest, BisectionSolverComputesVectors) {
  const index_t n = 64;
  auto a = test::random_symmetric<float>(n, 23);
  tc::Fp32Engine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.solver = evd::TriSolver::Bisection;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  const double resid = evd::eigenpair_residual(ConstMatrixView<float>(a.view()),
                                               res->eigenvalues,
                                               ConstMatrixView<float>(res->vectors.view()));
  EXPECT_LT(resid, 1e-4);
}

TEST_F(FaultTest, SolveSelectedRecoversFromSteinFailure) {
  const index_t n = 96;
  auto a = test::random_symmetric<float>(n, 31);
  fault::arm(fault::Site::SteinStagnate, 1);
  tc::Fp32Engine engine;
  Context ctx(engine);
  auto res = evd::solve_selected(ConstMatrixView<float>(a.view()), ctx, {}, 0, 9, true);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_EQ(fault::fired(fault::Site::SteinStagnate), 1);
  bool noted = false;
  for (const auto& ev : res->recovery)
    if (ev.site == "evd.partial") noted = true;
  EXPECT_TRUE(noted);
  const double resid = evd::eigenpair_residual(ConstMatrixView<float>(a.view()),
                                               res->eigenvalues,
                                               ConstMatrixView<float>(res->vectors.view()));
  EXPECT_LT(resid, 1e-4);
}

TEST_F(FaultTest, ReferenceEigenvaluesReturnsStatusOr) {
  auto a = test::random_symmetric<double>(48, 41);
  auto ref = evd::reference_eigenvalues(ConstMatrixView<double>(a.view()));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->size(), 48u);
  for (std::size_t i = 1; i < ref->size(); ++i) EXPECT_LE((*ref)[i - 1], (*ref)[i]);
}

TEST_F(FaultTest, CleanRunHasEmptyRecoveryLog) {
  auto a = test::random_symmetric<float>(96, 55);
  tc::EcTcEngine engine;
  Context ctx(engine);
  evd::EvdOptions opt;
  opt.vectors = true;
  auto res = evd::solve(ConstMatrixView<float>(a.view()), ctx, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->recovery.empty());
  EXPECT_EQ(engine.fp32_fallbacks(), 0);
}

}  // namespace
}  // namespace tcevd
