// Packed transpose-aware GEMM pipeline (src/blas/gemm_packed.hpp): every
// trans combination against a naive reference at odd/prime/edge shapes,
// parallel-vs-serial bitwise equality, the gemm_pool stand-down contract,
// and bitwise equality of the fused-rounding tc_gemm / ec_tcgemm paths
// against the old materialize-rounded-copies formulation. Label: gemmfast.
#include <gtest/gtest.h>

#include <array>
#include <utility>
#include <vector>

#include "src/blas/blas.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/common/thread_pool.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "src/tensorcore/tc_syr2k.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using blas::Uplo;

/// Naive dense reference: C = alpha op(A) op(B) + beta C.
template <typename T>
void ref_gemm(Trans ta, Trans tb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              T beta, MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) {
        const T av = (ta == Trans::No) ? a(i, l) : a(l, i);
        const T bv = (tb == Trans::No) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
}

template <typename T>
Matrix<T> random_mat(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  fill_normal(rng, a.view());
  return a;
}

/// Every element bitwise-equal (EXPECT_EQ catches NaN mismatches too).
template <typename T>
void expect_bitwise_equal(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << ", " << j << ")";
}

struct GemmCase {
  Trans ta, tb;
  index_t m, n, k;
};

class PackedGemmTest : public ::testing::TestWithParam<GemmCase> {};

template <typename T>
void check_against_reference(const GemmCase& p, double tol) {
  const index_t am = (p.ta == Trans::No) ? p.m : p.k;
  const index_t an = (p.ta == Trans::No) ? p.k : p.m;
  const index_t bm = (p.tb == Trans::No) ? p.k : p.n;
  const index_t bn = (p.tb == Trans::No) ? p.n : p.k;
  auto a = random_mat<T>(am, an, 1);
  auto b = random_mat<T>(bm, bn, 2);
  auto c = random_mat<T>(p.m, p.n, 3);
  auto c_ref = c;
  blas::gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c.view());
  ref_gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c_ref.view());
  EXPECT_LT(test::rel_diff<T>(c.view(), c_ref.view()), tol);
}

TEST_P(PackedGemmTest, MatchesReferenceDouble) { check_against_reference<double>(GetParam(), 1e-12); }
TEST_P(PackedGemmTest, MatchesReferenceFloat) { check_against_reference<float>(GetParam(), 5e-4); }

// Shapes chosen to straddle every blocking boundary: MR=8/NR=4 remainders
// (odd/prime), MC=128 and KC=256 crossings, plus m=1 / n=1 / k=0 edges.
std::vector<GemmCase> all_combo_cases() {
  const std::vector<std::array<index_t, 3>> shapes = {
      {1, 1, 1},  {1, 37, 17},  {37, 1, 17},    {37, 17, 0},
      {7, 5, 3},  {13, 17, 11}, {97, 61, 37},   {131, 67, 259},
      {257, 5, 3}, {130, 4, 256}, {8, 129, 300},
  };
  const std::vector<std::pair<Trans, Trans>> combos = {
      {Trans::No, Trans::No},
      {Trans::No, Trans::Yes},
      {Trans::Yes, Trans::No},
      {Trans::Yes, Trans::Yes},
  };
  std::vector<GemmCase> cases;
  for (const auto& tr : combos)
    for (const auto& s : shapes) cases.push_back({tr.first, tr.second, s[0], s[1], s[2]});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombosOddShapes, PackedGemmTest,
                         ::testing::ValuesIn(all_combo_cases()));

// ---------------------------------------------------------------------------
// Parallel-vs-serial bitwise equality and the thread-ownership contract.
// ---------------------------------------------------------------------------

TEST(GemmPoolDeterminism, PooledBitwiseIdenticalToSerial) {
  // 2*m*n*k well above the pooling floor, shape straddling every block edge.
  const index_t m = 311, n = 203, k = 277;
  for (Trans ta : {Trans::No, Trans::Yes})
    for (Trans tb : {Trans::No, Trans::Yes}) {
      const index_t am = (ta == Trans::No) ? m : k;
      const index_t an = (ta == Trans::No) ? k : m;
      const index_t bm = (tb == Trans::No) ? k : n;
      const index_t bn = (tb == Trans::No) ? n : k;
      auto a = random_mat<float>(am, an, 4);
      auto b = random_mat<float>(bm, bn, 5);
      auto c_pooled = random_mat<float>(m, n, 6);
      auto c_serial = c_pooled;
      const auto before = blas::gemm_pool_dispatches();
      blas::gemm<float>(ta, tb, 1.5f, a.view(), b.view(), 0.25f, c_pooled.view());
      EXPECT_GT(blas::gemm_pool_dispatches(), before)
          << "large gemm on the main thread should fan out on gemm_pool";
      {
        blas::SerialGemmScope serial;
        blas::gemm<float>(ta, tb, 1.5f, a.view(), b.view(), 0.25f, c_serial.view());
      }
      expect_bitwise_equal<float>(c_pooled.view(), c_serial.view());
    }
}

TEST(GemmPoolPolicy, SerialScopeStandsDown) {
  const index_t n = 160;  // 2n^3 ~ 8.2 Mflop: above the pooling floor
  auto a = random_mat<float>(n, n, 7);
  auto b = random_mat<float>(n, n, 8);
  Matrix<float> c(n, n);
  const auto before = blas::gemm_pool_dispatches();
  {
    blas::SerialGemmScope serial;
    blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  }
  EXPECT_EQ(blas::gemm_pool_dispatches(), before);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_GT(blas::gemm_pool_dispatches(), before);
}

TEST(GemmPoolPolicy, NestedCallsUnderPoolWorkersStandDown) {
  // GEMMs issued from inside ANY ThreadPool worker must take the serial tile
  // loop — the batch/overlap pools own the parallelism at their level.
  const index_t n = 160;
  auto a = random_mat<float>(n, n, 9);
  auto b = random_mat<float>(n, n, 10);
  ThreadPool pool(2);
  const auto before = blas::gemm_pool_dispatches();
  pool.parallel_for(4, [&](int, long) {
    Matrix<float> c(n, n);
    blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  });
  pool.wait_idle();
  EXPECT_EQ(blas::gemm_pool_dispatches(), before)
      << "nested gemm fanned out on gemm_pool from a pool worker";
}

TEST(GemmPoolPolicy, TinyGemmsStaySerial) {
  auto a = random_mat<float>(16, 16, 11);
  auto b = random_mat<float>(16, 16, 12);
  Matrix<float> c(16, 16);
  const auto before = blas::gemm_pool_dispatches();
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_EQ(blas::gemm_pool_dispatches(), before);
}

// ---------------------------------------------------------------------------
// Fused-rounding TC paths bitwise-equal to the old materializing paths.
// ---------------------------------------------------------------------------

/// The old tc_gemm formulation: materialize op(X) rounded to prec, then one
/// plain fp32 GEMM.
Matrix<float> rounded_op(Trans trans, ConstMatrixView<float> x, tc::TcPrecision prec) {
  const index_t rows = trans == Trans::No ? x.rows() : x.cols();
  const index_t cols = trans == Trans::No ? x.cols() : x.rows();
  Matrix<float> out(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i)
      out(i, j) = tc::round_operand(trans == Trans::No ? x(i, j) : x(j, i), prec);
  return out;
}

TEST(FusedRounding, TcGemmBitwiseEqualToMaterializedPath) {
  const index_t m = 70, n = 53, k = 300;
  for (tc::TcPrecision prec : {tc::TcPrecision::Fp16, tc::TcPrecision::Tf32})
    for (Trans ta : {Trans::No, Trans::Yes})
      for (Trans tb : {Trans::No, Trans::Yes}) {
        const index_t am = (ta == Trans::No) ? m : k;
        const index_t an = (ta == Trans::No) ? k : m;
        const index_t bm = (tb == Trans::No) ? k : n;
        const index_t bn = (tb == Trans::No) ? n : k;
        auto a = random_mat<float>(am, an, 13);
        auto b = random_mat<float>(bm, bn, 14);
        auto c_fused = random_mat<float>(m, n, 15);
        auto c_ref = c_fused;
        tc::tc_gemm(ta, tb, 1.25f, a.view(), b.view(), -0.5f, c_fused.view(), prec);
        Matrix<float> ar = rounded_op(ta, a.view(), prec);
        Matrix<float> br = rounded_op(tb, b.view(), prec);
        blas::gemm<float>(Trans::No, Trans::No, 1.25f, ar.view(), br.view(), -0.5f,
                          c_ref.view());
        expect_bitwise_equal<float>(c_fused.view(), c_ref.view());
      }
}

/// The old ec_tcgemm formulation: materialize op(A)/op(B), ec_split each into
/// head + scaled residual, run three plain GEMMs, combine in fp32.
void ec_reference(Trans ta, Trans tb, float alpha, ConstMatrixView<float> a,
                  ConstMatrixView<float> b, float beta, MatrixView<float> c,
                  tc::TcPrecision prec) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  Matrix<float> ax(m, k), bx(k, n);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) ax(i, j) = (ta == Trans::No) ? a(i, j) : a(j, i);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < k; ++i) bx(i, j) = (tb == Trans::No) ? b(i, j) : b(j, i);
  Matrix<float> ah(m, k), da(m, k), bh(k, n), db(k, n);
  tc::ec_split(ax.view(), ah.view(), da.view(), prec);
  tc::ec_split(bx.view(), bh.view(), db.view(), prec);
  Matrix<float> c0(m, n), c1(m, n);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, ah.view(), bh.view(), 0.0f, c0.view());
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, ah.view(), db.view(), 0.0f, c1.view());
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, da.view(), bh.view(), 1.0f, c1.view());
  const float inv_s = 1.0f / tc::kEcScale;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      c(i, j) = alpha * (c0(i, j) + c1(i, j) * inv_s) +
                ((beta == 0.0f) ? 0.0f : beta * c(i, j));
}

TEST(FusedRounding, EcTcGemmBitwiseEqualToMaterializedPath) {
  const index_t m = 37, n = 29, k = 281;
  for (Trans ta : {Trans::No, Trans::Yes})
    for (Trans tb : {Trans::No, Trans::Yes}) {
      const index_t am = (ta == Trans::No) ? m : k;
      const index_t an = (ta == Trans::No) ? k : m;
      const index_t bm = (tb == Trans::No) ? k : n;
      const index_t bn = (tb == Trans::No) ? n : k;
      auto a = random_mat<float>(am, an, 16);
      auto b = random_mat<float>(bm, bn, 17);
      auto c_fused = random_mat<float>(m, n, 18);
      auto c_ref = c_fused;
      ASSERT_TRUE(
          tc::ec_tcgemm(ta, tb, 1.1f, a.view(), b.view(), 0.6f, c_fused.view()).ok());
      ec_reference(ta, tb, 1.1f, a.view(), b.view(), 0.6f, c_ref.view(),
                   tc::TcPrecision::Fp16);
      expect_bitwise_equal<float>(c_fused.view(), c_ref.view());
    }
}

// ---------------------------------------------------------------------------
// tc_syr2k packed path at panel-crossing sizes.
// ---------------------------------------------------------------------------

TEST(PackedSyr2k, UpperLowerBitwiseSymmetricAcrossPanels) {
  // n > 128 crosses the column-panel boundary of the packed triangular path.
  const index_t n = 150, k = 40;
  auto a = random_mat<float>(n, k, 19);
  auto b = random_mat<float>(n, k, 20);
  Matrix<float> cl(n, n), cu(n, n);
  cl.fill(7.0f);
  cu.fill(7.0f);
  tc::tc_syr2k(Uplo::Lower, 0.8f, a.view(), b.view(), 0.0f, cl.view());
  tc::tc_syr2k(Uplo::Upper, 0.8f, a.view(), b.view(), 0.0f, cu.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      ASSERT_EQ(cl(i, j), cu(j, i)) << "asymmetry at (" << i << ", " << j << ")";
      if (i > j) {
        ASSERT_EQ(cl(j, i), 7.0f) << "lower mode touched the upper triangle";
        ASSERT_EQ(cu(i, j), 7.0f) << "upper mode touched the lower triangle";
      }
    }
}

TEST(PackedSyr2k, MatchesRoundedReferenceAcrossPanels) {
  const index_t n = 140, k = 33;
  auto a = random_mat<float>(n, k, 21);
  auto b = random_mat<float>(n, k, 22);
  auto c = random_mat<float>(n, n, 23);
  auto c_ref = c;
  tc::tc_syr2k(Uplo::Lower, 1.2f, a.view(), b.view(), -0.4f, c.view());
  // Reference: pre-rounded operands, naive fp32 triangular accumulation.
  Matrix<float> ar(n, k), br(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < n; ++i) {
      ar(i, j) = tc::round_operand(a(i, j), tc::TcPrecision::Fp16);
      br(i, j) = tc::round_operand(b(i, j), tc::TcPrecision::Fp16);
    }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      float s = 0.0f;
      for (index_t l = 0; l < k; ++l) s += ar(i, l) * br(j, l) + br(i, l) * ar(j, l);
      c_ref(i, j) = 1.2f * s + -0.4f * c_ref(i, j);
    }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(c(i, j), c_ref(i, j), 2e-2f * static_cast<float>(k))
          << "at (" << i << ", " << j << ")";
}

}  // namespace
}  // namespace tcevd
