// Packed transpose-aware GEMM pipeline (src/blas/gemm_packed.hpp): every
// trans combination against a naive reference at odd/prime/edge shapes,
// parallel-vs-serial bitwise equality, the gemm_pool stand-down contract,
// bitwise equality of the fused-rounding tc_gemm / ec_tcgemm paths against
// the old materialize-rounded-copies formulation, and the SIMD kernel
// family: dispatch policy (TCEVD_SIMD / cpuid / self-check), SIMD-vs-scalar
// bitwise identity across the full pipeline, the vectorized convert
// kernels, and the pack-arena alignment contract. Label: gemmfast.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/blas/abft.hpp"
#include "src/blas/blas.hpp"
#include "src/blas/gemm_packed.hpp"
#include "src/blas/gemm_threading.hpp"
#include "src/blas/simd_dispatch.hpp"
#include "src/common/aligned.hpp"
#include "src/common/half.hpp"
#include "src/common/thread_pool.hpp"
#include "src/tensorcore/ec_tcgemm.hpp"
#include "src/tensorcore/tc_convert.hpp"
#include "src/tensorcore/tc_gemm.hpp"
#include "src/tensorcore/tc_syr2k.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;
using blas::Uplo;

/// Naive dense reference: C = alpha op(A) op(B) + beta C.
template <typename T>
void ref_gemm(Trans ta, Trans tb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b,
              T beta, MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      T s{};
      for (index_t l = 0; l < k; ++l) {
        const T av = (ta == Trans::No) ? a(i, l) : a(l, i);
        const T bv = (tb == Trans::No) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
}

template <typename T>
Matrix<T> random_mat(index_t m, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> a(m, n);
  fill_normal(rng, a.view());
  return a;
}

/// Every element bitwise-equal (EXPECT_EQ catches NaN mismatches too).
template <typename T>
void expect_bitwise_equal(ConstMatrixView<T> a, ConstMatrixView<T> b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      ASSERT_EQ(a(i, j), b(i, j)) << "mismatch at (" << i << ", " << j << ")";
}

struct GemmCase {
  Trans ta, tb;
  index_t m, n, k;
};

class PackedGemmTest : public ::testing::TestWithParam<GemmCase> {};

template <typename T>
void check_against_reference(const GemmCase& p, double tol) {
  const index_t am = (p.ta == Trans::No) ? p.m : p.k;
  const index_t an = (p.ta == Trans::No) ? p.k : p.m;
  const index_t bm = (p.tb == Trans::No) ? p.k : p.n;
  const index_t bn = (p.tb == Trans::No) ? p.n : p.k;
  auto a = random_mat<T>(am, an, 1);
  auto b = random_mat<T>(bm, bn, 2);
  auto c = random_mat<T>(p.m, p.n, 3);
  auto c_ref = c;
  blas::gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c.view());
  ref_gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c_ref.view());
  EXPECT_LT(test::rel_diff<T>(c.view(), c_ref.view()), tol);
}

TEST_P(PackedGemmTest, MatchesReferenceDouble) { check_against_reference<double>(GetParam(), 1e-12); }
TEST_P(PackedGemmTest, MatchesReferenceFloat) { check_against_reference<float>(GetParam(), 5e-4); }

// Shapes chosen to straddle every blocking boundary: MR=8/NR=8 remainders
// (odd/prime), MC=128 and KC=256 crossings, plus m=1 / n=1 / k=0 edges.
std::vector<GemmCase> all_combo_cases() {
  const std::vector<std::array<index_t, 3>> shapes = {
      {1, 1, 1},  {1, 37, 17},  {37, 1, 17},    {37, 17, 0},
      {7, 5, 3},  {13, 17, 11}, {97, 61, 37},   {131, 67, 259},
      {257, 5, 3}, {130, 4, 256}, {8, 129, 300},
  };
  const std::vector<std::pair<Trans, Trans>> combos = {
      {Trans::No, Trans::No},
      {Trans::No, Trans::Yes},
      {Trans::Yes, Trans::No},
      {Trans::Yes, Trans::Yes},
  };
  std::vector<GemmCase> cases;
  for (const auto& tr : combos)
    for (const auto& s : shapes) cases.push_back({tr.first, tr.second, s[0], s[1], s[2]});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombosOddShapes, PackedGemmTest,
                         ::testing::ValuesIn(all_combo_cases()));

// ---------------------------------------------------------------------------
// Parallel-vs-serial bitwise equality and the thread-ownership contract.
// ---------------------------------------------------------------------------

TEST(GemmPoolDeterminism, PooledBitwiseIdenticalToSerial) {
  // 2*m*n*k well above the pooling floor, shape straddling every block edge.
  const index_t m = 311, n = 203, k = 277;
  for (Trans ta : {Trans::No, Trans::Yes})
    for (Trans tb : {Trans::No, Trans::Yes}) {
      const index_t am = (ta == Trans::No) ? m : k;
      const index_t an = (ta == Trans::No) ? k : m;
      const index_t bm = (tb == Trans::No) ? k : n;
      const index_t bn = (tb == Trans::No) ? n : k;
      auto a = random_mat<float>(am, an, 4);
      auto b = random_mat<float>(bm, bn, 5);
      auto c_pooled = random_mat<float>(m, n, 6);
      auto c_serial = c_pooled;
      const auto before = blas::gemm_pool_dispatches();
      blas::gemm<float>(ta, tb, 1.5f, a.view(), b.view(), 0.25f, c_pooled.view());
      EXPECT_GT(blas::gemm_pool_dispatches(), before)
          << "large gemm on the main thread should fan out on gemm_pool";
      {
        blas::SerialGemmScope serial;
        blas::gemm<float>(ta, tb, 1.5f, a.view(), b.view(), 0.25f, c_serial.view());
      }
      expect_bitwise_equal<float>(c_pooled.view(), c_serial.view());
    }
}

TEST(GemmPoolPolicy, SerialScopeStandsDown) {
  const index_t n = 160;  // 2n^3 ~ 8.2 Mflop: above the pooling floor
  auto a = random_mat<float>(n, n, 7);
  auto b = random_mat<float>(n, n, 8);
  Matrix<float> c(n, n);
  const auto before = blas::gemm_pool_dispatches();
  {
    blas::SerialGemmScope serial;
    blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  }
  EXPECT_EQ(blas::gemm_pool_dispatches(), before);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_GT(blas::gemm_pool_dispatches(), before);
}

TEST(GemmPoolPolicy, NestedCallsUnderPoolWorkersStandDown) {
  // GEMMs issued from inside ANY ThreadPool worker must take the serial tile
  // loop — the batch/overlap pools own the parallelism at their level.
  const index_t n = 160;
  auto a = random_mat<float>(n, n, 9);
  auto b = random_mat<float>(n, n, 10);
  ThreadPool pool(2);
  const auto before = blas::gemm_pool_dispatches();
  pool.parallel_for(4, [&](int, long) {
    Matrix<float> c(n, n);
    blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  });
  pool.wait_idle();
  EXPECT_EQ(blas::gemm_pool_dispatches(), before)
      << "nested gemm fanned out on gemm_pool from a pool worker";
}

TEST(GemmPoolPolicy, TinyGemmsStaySerial) {
  auto a = random_mat<float>(16, 16, 11);
  auto b = random_mat<float>(16, 16, 12);
  Matrix<float> c(16, 16);
  const auto before = blas::gemm_pool_dispatches();
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_EQ(blas::gemm_pool_dispatches(), before);
}

// ---------------------------------------------------------------------------
// Fused-rounding TC paths bitwise-equal to the old materializing paths.
// ---------------------------------------------------------------------------

/// The old tc_gemm formulation: materialize op(X) rounded to prec, then one
/// plain fp32 GEMM.
Matrix<float> rounded_op(Trans trans, ConstMatrixView<float> x, tc::TcPrecision prec) {
  const index_t rows = trans == Trans::No ? x.rows() : x.cols();
  const index_t cols = trans == Trans::No ? x.cols() : x.rows();
  Matrix<float> out(rows, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i)
      out(i, j) = tc::round_operand(trans == Trans::No ? x(i, j) : x(j, i), prec);
  return out;
}

TEST(FusedRounding, TcGemmBitwiseEqualToMaterializedPath) {
  const index_t m = 70, n = 53, k = 300;
  for (tc::TcPrecision prec : {tc::TcPrecision::Fp16, tc::TcPrecision::Tf32})
    for (Trans ta : {Trans::No, Trans::Yes})
      for (Trans tb : {Trans::No, Trans::Yes}) {
        const index_t am = (ta == Trans::No) ? m : k;
        const index_t an = (ta == Trans::No) ? k : m;
        const index_t bm = (tb == Trans::No) ? k : n;
        const index_t bn = (tb == Trans::No) ? n : k;
        auto a = random_mat<float>(am, an, 13);
        auto b = random_mat<float>(bm, bn, 14);
        auto c_fused = random_mat<float>(m, n, 15);
        auto c_ref = c_fused;
        tc::tc_gemm(ta, tb, 1.25f, a.view(), b.view(), -0.5f, c_fused.view(), prec);
        Matrix<float> ar = rounded_op(ta, a.view(), prec);
        Matrix<float> br = rounded_op(tb, b.view(), prec);
        blas::gemm<float>(Trans::No, Trans::No, 1.25f, ar.view(), br.view(), -0.5f,
                          c_ref.view());
        expect_bitwise_equal<float>(c_fused.view(), c_ref.view());
      }
}

/// The old ec_tcgemm formulation: materialize op(A)/op(B), ec_split each into
/// head + scaled residual, run three plain GEMMs, combine in fp32.
void ec_reference(Trans ta, Trans tb, float alpha, ConstMatrixView<float> a,
                  ConstMatrixView<float> b, float beta, MatrixView<float> c,
                  tc::TcPrecision prec) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  Matrix<float> ax(m, k), bx(k, n);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) ax(i, j) = (ta == Trans::No) ? a(i, j) : a(j, i);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < k; ++i) bx(i, j) = (tb == Trans::No) ? b(i, j) : b(j, i);
  Matrix<float> ah(m, k), da(m, k), bh(k, n), db(k, n);
  tc::ec_split(ax.view(), ah.view(), da.view(), prec);
  tc::ec_split(bx.view(), bh.view(), db.view(), prec);
  Matrix<float> c0(m, n), c1(m, n);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, ah.view(), bh.view(), 0.0f, c0.view());
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, ah.view(), db.view(), 0.0f, c1.view());
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, da.view(), bh.view(), 1.0f, c1.view());
  const float inv_s = 1.0f / tc::kEcScale;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      c(i, j) = alpha * (c0(i, j) + c1(i, j) * inv_s) +
                ((beta == 0.0f) ? 0.0f : beta * c(i, j));
}

TEST(FusedRounding, EcTcGemmBitwiseEqualToMaterializedPath) {
  const index_t m = 37, n = 29, k = 281;
  for (Trans ta : {Trans::No, Trans::Yes})
    for (Trans tb : {Trans::No, Trans::Yes}) {
      const index_t am = (ta == Trans::No) ? m : k;
      const index_t an = (ta == Trans::No) ? k : m;
      const index_t bm = (tb == Trans::No) ? k : n;
      const index_t bn = (tb == Trans::No) ? n : k;
      auto a = random_mat<float>(am, an, 16);
      auto b = random_mat<float>(bm, bn, 17);
      auto c_fused = random_mat<float>(m, n, 18);
      auto c_ref = c_fused;
      ASSERT_TRUE(
          tc::ec_tcgemm(ta, tb, 1.1f, a.view(), b.view(), 0.6f, c_fused.view()).ok());
      ec_reference(ta, tb, 1.1f, a.view(), b.view(), 0.6f, c_ref.view(),
                   tc::TcPrecision::Fp16);
      expect_bitwise_equal<float>(c_fused.view(), c_ref.view());
    }
}

// ---------------------------------------------------------------------------
// tc_syr2k packed path at panel-crossing sizes.
// ---------------------------------------------------------------------------

TEST(PackedSyr2k, UpperLowerBitwiseSymmetricAcrossPanels) {
  // n > 128 crosses the column-panel boundary of the packed triangular path.
  const index_t n = 150, k = 40;
  auto a = random_mat<float>(n, k, 19);
  auto b = random_mat<float>(n, k, 20);
  Matrix<float> cl(n, n), cu(n, n);
  cl.fill(7.0f);
  cu.fill(7.0f);
  tc::tc_syr2k(Uplo::Lower, 0.8f, a.view(), b.view(), 0.0f, cl.view());
  tc::tc_syr2k(Uplo::Upper, 0.8f, a.view(), b.view(), 0.0f, cu.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      ASSERT_EQ(cl(i, j), cu(j, i)) << "asymmetry at (" << i << ", " << j << ")";
      if (i > j) {
        ASSERT_EQ(cl(j, i), 7.0f) << "lower mode touched the upper triangle";
        ASSERT_EQ(cu(i, j), 7.0f) << "upper mode touched the lower triangle";
      }
    }
}

TEST(PackedSyr2k, MatchesRoundedReferenceAcrossPanels) {
  const index_t n = 140, k = 33;
  auto a = random_mat<float>(n, k, 21);
  auto b = random_mat<float>(n, k, 22);
  auto c = random_mat<float>(n, n, 23);
  auto c_ref = c;
  tc::tc_syr2k(Uplo::Lower, 1.2f, a.view(), b.view(), -0.4f, c.view());
  // Reference: pre-rounded operands, naive fp32 triangular accumulation.
  Matrix<float> ar(n, k), br(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < n; ++i) {
      ar(i, j) = tc::round_operand(a(i, j), tc::TcPrecision::Fp16);
      br(i, j) = tc::round_operand(b(i, j), tc::TcPrecision::Fp16);
    }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      float s = 0.0f;
      for (index_t l = 0; l < k; ++l) s += ar(i, l) * br(j, l) + br(i, l) * ar(j, l);
      c_ref(i, j) = 1.2f * s + -0.4f * c_ref(i, j);
    }
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(c(i, j), c_ref(i, j), 2e-2f * static_cast<float>(k))
          << "at (" << i << ", " << j << ")";
}

// ---------------------------------------------------------------------------
// SIMD dispatch: resolution policy, env override, telemetry.
// ---------------------------------------------------------------------------

namespace simd = blas::simd;

TEST(SimdDispatch, ResolveLevelPolicy) {
  const bool compiled = simd::compiled_with_avx2();
  const char* reason = nullptr;
  // Forced off always wins.
  EXPECT_EQ(simd::detail::resolve_level("off", true, true, &reason), simd::Level::Scalar);
  EXPECT_STREQ(reason, "TCEVD_SIMD=off");
  EXPECT_EQ(simd::detail::resolve_level("scalar", true, true, &reason),
            simd::Level::Scalar);
  // Requested avx2 still requires CPU support AND a passing self-check.
  EXPECT_EQ(simd::detail::resolve_level("avx2", false, true, &reason),
            simd::Level::Scalar);
  EXPECT_EQ(simd::detail::resolve_level("avx2", true, false, &reason),
            simd::Level::Scalar);
  EXPECT_EQ(simd::detail::resolve_level("avx2", true, true, &reason),
            compiled ? simd::Level::Avx2 : simd::Level::Scalar);
  // Auto (unset, empty, "auto", or a typo) detects, never trusts blindly.
  for (const char* env : {static_cast<const char*>(nullptr), "", "auto", "bogus"}) {
    EXPECT_EQ(simd::detail::resolve_level(env, true, true, &reason),
              compiled ? simd::Level::Avx2 : simd::Level::Scalar);
    EXPECT_EQ(simd::detail::resolve_level(env, false, true, &reason),
              simd::Level::Scalar);
    EXPECT_EQ(simd::detail::resolve_level(env, true, false, &reason),
              simd::Level::Scalar);
  }
}

TEST(SimdDispatch, ActiveLevelMatchesEnvironment) {
  // This test runs under several CI legs with different TCEVD_SIMD values:
  // assert the resolved level is consistent with whatever is set right now.
  const char* env = std::getenv("TCEVD_SIMD");
  const bool capable = simd::compiled_with_avx2() && simd::cpu_supports_avx2();
  const simd::Level lvl = simd::kernels().level;
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)) {
    EXPECT_EQ(lvl, simd::Level::Scalar) << simd::active_level_reason();
  } else {
    EXPECT_EQ(lvl, capable ? simd::Level::Avx2 : simd::Level::Scalar)
        << simd::active_level_reason();
  }
  EXPECT_STREQ(simd::kernels().name,
               simd::kernels().level == simd::Level::Avx2 ? "avx2" : "scalar");
}

TEST(SimdDispatch, RefreshHonorsEnvOverride) {
  const char* saved = std::getenv("TCEVD_SIMD");
  const std::string saved_copy = saved != nullptr ? saved : "";

  ::setenv("TCEVD_SIMD", "off", 1);
  simd::detail::refresh_for_testing();
  EXPECT_EQ(simd::kernels().level, simd::Level::Scalar);
  EXPECT_EQ(simd::kernels().gemm_f32, nullptr);
  EXPECT_STREQ(simd::active_level_reason(), "TCEVD_SIMD=off");

  ::setenv("TCEVD_SIMD", "avx2", 1);
  simd::detail::refresh_for_testing();
  if (simd::compiled_with_avx2() && simd::cpu_supports_avx2()) {
    EXPECT_EQ(simd::kernels().level, simd::Level::Avx2) << simd::active_level_reason();
    EXPECT_NE(simd::kernels().gemm_f32, nullptr);
    EXPECT_NE(simd::kernels().round_fp16, nullptr);
  } else {
    EXPECT_EQ(simd::kernels().level, simd::Level::Scalar);
  }

  if (saved != nullptr)
    ::setenv("TCEVD_SIMD", saved_copy.c_str(), 1);
  else
    ::unsetenv("TCEVD_SIMD");
  simd::detail::refresh_for_testing();
}

TEST(SimdDispatch, ScalarKernelScopeForcesScalarAndCountsDispatches) {
  auto a = random_mat<float>(24, 24, 31);
  auto b = random_mat<float>(24, 24, 32);
  Matrix<float> c(24, 24);

  const simd::Level resolved = simd::kernels().level;
  const auto before = simd::dispatch_count(resolved);
  blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
  EXPECT_EQ(simd::dispatch_count(resolved), before + 1)
      << "each packed-GEMM entry call records one dispatch at the active level";

  {
    simd::ScalarKernelScope scope;
    EXPECT_TRUE(simd::scalar_kernels_forced());
    EXPECT_EQ(simd::active_level(), simd::Level::Scalar);
    EXPECT_EQ(simd::active_kernels().gemm_f32, nullptr);
    const auto scalar_before = simd::dispatch_count(simd::Level::Scalar);
    blas::gemm<float>(Trans::No, Trans::No, 1.0f, a.view(), b.view(), 0.0f, c.view());
    EXPECT_EQ(simd::dispatch_count(simd::Level::Scalar), scalar_before + 1);
  }
  EXPECT_FALSE(simd::scalar_kernels_forced());
  EXPECT_EQ(simd::active_level(), resolved);
}

// ---------------------------------------------------------------------------
// SIMD vs scalar: bitwise identity across the whole pipeline. When the
// resolved level is already Scalar (TCEVD_SIMD=off leg, non-AVX2 host) these
// compare scalar against scalar and pass vacuously — the AVX2 legs are where
// they bite.
// ---------------------------------------------------------------------------

template <typename T>
void check_simd_vs_scalar_gemm(const GemmCase& p) {
  const index_t am = (p.ta == Trans::No) ? p.m : p.k;
  const index_t an = (p.ta == Trans::No) ? p.k : p.m;
  const index_t bm = (p.tb == Trans::No) ? p.k : p.n;
  const index_t bn = (p.tb == Trans::No) ? p.n : p.k;
  auto a = random_mat<T>(am, an, 41);
  auto b = random_mat<T>(bm, bn, 42);
  auto c_simd = random_mat<T>(p.m, p.n, 43);
  auto c_scalar = c_simd;
  blas::gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c_simd.view());
  {
    simd::ScalarKernelScope scope;
    blas::gemm<T>(p.ta, p.tb, T(1.3), a.view(), b.view(), T(-0.7), c_scalar.view());
  }
  expect_bitwise_equal<T>(c_simd.view(), c_scalar.view());
}

TEST_P(PackedGemmTest, SimdBitwiseEqualsScalarFloat) {
  check_simd_vs_scalar_gemm<float>(GetParam());
}
TEST_P(PackedGemmTest, SimdBitwiseEqualsScalarDouble) {
  check_simd_vs_scalar_gemm<double>(GetParam());
}

TEST(SimdVsScalar, PooledSimdBitwiseEqualsSerialScalar) {
  // Crossing SIMD x threading: pooled AVX2 against serial forced-scalar.
  const index_t m = 311, n = 203, k = 277;
  auto a = random_mat<float>(m, k, 44);
  auto b = random_mat<float>(k, n, 45);
  auto c_pooled = random_mat<float>(m, n, 46);
  auto c_serial = c_pooled;
  blas::gemm<float>(Trans::No, Trans::No, 1.5f, a.view(), b.view(), 0.25f,
                    c_pooled.view());
  {
    simd::ScalarKernelScope scope;
    blas::SerialGemmScope serial;
    blas::gemm<float>(Trans::No, Trans::No, 1.5f, a.view(), b.view(), 0.25f,
                      c_serial.view());
  }
  expect_bitwise_equal<float>(c_pooled.view(), c_serial.view());
}

TEST(SimdVsScalar, AbftPathBitwiseEqualsScalar) {
  // The ABFT tile path (private tile accumulate + checksum verify) must also
  // be kernel-agnostic: same result with the checksummed pipeline on either
  // kernel family.
  const index_t m = 131, n = 67, k = 259;
  auto a = random_mat<float>(m, k, 47);
  auto b = random_mat<float>(k, n, 48);
  auto c_simd = random_mat<float>(m, n, 49);
  auto c_scalar = c_simd;
  {
    blas::abft::AbftScope abft;
    blas::gemm<float>(Trans::No, Trans::No, 1.2f, a.view(), b.view(), -0.3f,
                      c_simd.view());
  }
  {
    blas::abft::AbftScope abft;
    simd::ScalarKernelScope scope;
    blas::gemm<float>(Trans::No, Trans::No, 1.2f, a.view(), b.view(), -0.3f,
                      c_scalar.view());
  }
  expect_bitwise_equal<float>(c_simd.view(), c_scalar.view());
}

TEST(SimdVsScalar, TensorCorePathsBitwiseEqualScalar) {
  // tc_gemm (fused rounding), ec_tcgemm (split-B + tail sweeps), tc_syr2k
  // (paired nt kernel): each through the dispatched kernels vs forced scalar.
  const index_t m = 70, n = 53, k = 300;
  auto a = random_mat<float>(m, k, 51);
  auto b = random_mat<float>(k, n, 52);
  auto bt = random_mat<float>(n, k, 58);
  for (tc::TcPrecision prec : {tc::TcPrecision::Fp16, tc::TcPrecision::Tf32}) {
    auto c_simd = random_mat<float>(m, n, 53);
    auto c_scalar = c_simd;
    tc::tc_gemm(Trans::No, Trans::Yes, 1.25f, a.view(), bt.view(), -0.5f,
                c_simd.view(), prec);
    {
      simd::ScalarKernelScope scope;
      tc::tc_gemm(Trans::No, Trans::Yes, 1.25f, a.view(), bt.view(), -0.5f,
                  c_scalar.view(), prec);
    }
    expect_bitwise_equal<float>(c_simd.view(), c_scalar.view());
  }
  {
    auto c_simd = random_mat<float>(m, n, 54);
    auto c_scalar = c_simd;
    ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.1f, a.view(), b.view(), 0.6f,
                              c_simd.view())
                    .ok());
    {
      simd::ScalarKernelScope scope;
      ASSERT_TRUE(tc::ec_tcgemm(Trans::No, Trans::No, 1.1f, a.view(), b.view(), 0.6f,
                                c_scalar.view())
                      .ok());
    }
    expect_bitwise_equal<float>(c_simd.view(), c_scalar.view());
  }
  {
    const index_t ns = 150, ks = 40;
    auto as = random_mat<float>(ns, ks, 55);
    auto bs = random_mat<float>(ns, ks, 56);
    auto c_simd = random_mat<float>(ns, ns, 57);
    auto c_scalar = c_simd;
    tc::tc_syr2k(Uplo::Lower, 0.8f, as.view(), bs.view(), 0.5f, c_simd.view());
    {
      simd::ScalarKernelScope scope;
      tc::tc_syr2k(Uplo::Lower, 0.8f, as.view(), bs.view(), 0.5f, c_scalar.view());
    }
    expect_bitwise_equal<float>(c_simd.view(), c_scalar.view());
  }
}

// ---------------------------------------------------------------------------
// Convert kernels: dispatched round/split buffers bitwise-equal to the
// scalar reference over boundary values and random exponent sweeps.
// ---------------------------------------------------------------------------

std::vector<float> convert_probe_values() {
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> vals = {
      0.0f,       -0.0f,     1.0f,     -1.0f,   1.5f,
      65504.0f,   -65504.0f, 65519.5f, 65520.0f, -65520.0f,
      65536.0f,   1e30f,     6.103515625e-05f /* 2^-14 */,
      3.0517578125e-05f /* 2^-15: fp16 subnormal */,
      5.960464477539063e-08f /* 2^-24: smallest fp16 subnormal */,
      2.9802322387695312e-08f /* 2^-25: RNE threshold to zero */,
      4.5e-08f,   2.8e-08f,  1e-38f,   inf,     -inf,
      std::numeric_limits<float>::quiet_NaN()};
  std::uint32_t s = 0xabcd1234u;
  for (int i = 0; i < 2048; ++i) {
    s = s * 1664525u + 1013904223u;
    const std::uint32_t sign = (s & 1u) << 31;
    const std::uint32_t exp = 96u + ((s >> 8) % 48u);  // 2^-31 .. 2^16
    s = s * 1664525u + 1013904223u;
    std::uint32_t bits = sign | (exp << 23) | (s & 0x007fffffu);
    float v;
    std::memcpy(&v, &bits, sizeof v);
    vals.push_back(v);
  }
  return vals;
}

void expect_bits_equal(const std::vector<float>& a, const std::vector<float>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ab, bb;
    std::memcpy(&ab, &a[i], sizeof ab);
    std::memcpy(&bb, &b[i], sizeof bb);
    ASSERT_EQ(ab, bb) << what << " diverges at index " << i << " (input-dependent)";
  }
}

TEST(SimdConvert, RoundBufferBitwiseEqualsScalarReference) {
  const std::vector<float> src = convert_probe_values();
  const index_t n = static_cast<index_t>(src.size());
  for (tc::TcPrecision prec : {tc::TcPrecision::Fp16, tc::TcPrecision::Tf32}) {
    std::vector<float> ref(src.size());
    for (std::size_t i = 0; i < src.size(); ++i)
      ref[i] = tc::round_operand(src[i], prec);
    std::vector<float> out(src.size());
    tc::round_buffer(src.data(), out.data(), n, prec);
    expect_bits_equal(ref, out, "round_buffer");
    // In-place form (round_matrix uses it).
    std::vector<float> inplace = src;
    tc::round_buffer(inplace.data(), inplace.data(), n, prec);
    expect_bits_equal(ref, inplace, "round_buffer in-place");
  }
}

TEST(SimdConvert, EcSplitBufferBitwiseEqualsScalarReference) {
  const std::vector<float> src = convert_probe_values();
  const index_t n = static_cast<index_t>(src.size());
  for (tc::TcPrecision prec : {tc::TcPrecision::Fp16, tc::TcPrecision::Tf32}) {
    std::vector<float> ref_h(src.size()), ref_t(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      const float h = tc::round_operand(src[i], prec);
      ref_h[i] = h;
      ref_t[i] = tc::round_operand(tc::kEcScale * (src[i] - h), prec);
    }
    std::vector<float> out_h(src.size()), out_t(src.size());
    tc::ec_split_buffer(src.data(), out_h.data(), out_t.data(), n, tc::kEcScale, prec);
    expect_bits_equal(ref_h, out_h, "ec_split head");
    expect_bits_equal(ref_t, out_t, "ec_split tail");
  }
}

// ---------------------------------------------------------------------------
// Alignment contract: the pack arenas (and anything AlignedVector-backed)
// must start on a 64-byte boundary or the SIMD aligned loads fault.
// ---------------------------------------------------------------------------

template <typename T>
bool is_kernel_aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kKernelAlignment == 0;
}

TEST(PackAlignment, ThreadLocalArenasAre64ByteAligned) {
  auto& bf = blas::packed::pack_buffers<float>();
  EXPECT_TRUE(is_kernel_aligned(bf.a.data()));
  EXPECT_TRUE(is_kernel_aligned(bf.b.data()));
  EXPECT_TRUE(is_kernel_aligned(bf.a2.data()));
  EXPECT_TRUE(is_kernel_aligned(bf.b2.data()));
  auto& bd = blas::packed::pack_buffers<double>();
  EXPECT_TRUE(is_kernel_aligned(bd.a.data()));
  EXPECT_TRUE(is_kernel_aligned(bd.b.data()));
  EXPECT_TRUE(is_kernel_aligned(bd.a2.data()));
  EXPECT_TRUE(is_kernel_aligned(bd.b2.data()));
}

TEST(PackAlignment, AlignedVectorAlwaysAligned) {
  // Odd sizes and regrowth must preserve the alignment guarantee.
  for (std::size_t n : {1u, 3u, 17u, 63u, 64u, 65u, 1000u, 4097u}) {
    AlignedVector<float> vf(n);
    EXPECT_TRUE(is_kernel_aligned(vf.data())) << "float n=" << n;
    AlignedVector<double> vd(n);
    EXPECT_TRUE(is_kernel_aligned(vd.data())) << "double n=" << n;
    vf.resize(3 * n + 1);
    EXPECT_TRUE(is_kernel_aligned(vf.data())) << "float regrown n=" << n;
  }
}

}  // namespace
}  // namespace tcevd
