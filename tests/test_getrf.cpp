// Pivoted LU (getrf/getrs).
#include <gtest/gtest.h>

#include <cmath>

#include "src/blas/blas.hpp"
#include "src/lapack/getrf.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

using blas::Trans;

TEST(Getrf, ReconstructsWithPivoting) {
  const index_t n = 20;
  auto a = test::random_matrix(n, n, 1);
  a(0, 0) = 0.0;  // force an immediate pivot
  auto f = a;
  std::vector<index_t> piv;
  EXPECT_TRUE(lapack::getrf(f.view(), piv).ok());

  // Rebuild P A and compare against L U.
  Matrix<double> l(n, n), u(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      l(i, j) = (i > j) ? f(i, j) : (i == j ? 1.0 : 0.0);
      u(i, j) = (i <= j) ? f(i, j) : 0.0;
    }
  Matrix<double> lu(n, n);
  blas::gemm(Trans::No, Trans::No, 1.0, l.view(), u.view(), 0.0, lu.view());
  Matrix<double> pa = a;
  for (index_t j = 0; j < n; ++j) {
    const index_t p = piv[static_cast<std::size_t>(j)];
    if (p != j)
      for (index_t c = 0; c < n; ++c) std::swap(pa(j, c), pa(p, c));
  }
  EXPECT_LT(test::rel_diff<double>(lu.view(), pa.view()), 1e-13);
}

TEST(Getrf, SolveRoundTrip) {
  const index_t n = 30;
  auto a = test::random_matrix(n, n, 2);
  Rng rng(3);
  Matrix<double> x_true(n, 3);
  fill_normal(rng, x_true.view());
  Matrix<double> b(n, 3);
  blas::gemm(Trans::No, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());

  auto f = a;
  std::vector<index_t> piv;
  ASSERT_TRUE(lapack::getrf(f.view(), piv).ok());
  lapack::getrs<double>(Trans::No, f.view(), piv, b.view());
  EXPECT_LT(test::rel_diff<double>(b.view(), x_true.view()), 1e-10);
}

TEST(Getrf, TransposedSolve) {
  const index_t n = 18;
  auto a = test::random_matrix(n, n, 4);
  Rng rng(5);
  Matrix<double> x_true(n, 2);
  fill_normal(rng, x_true.view());
  Matrix<double> b(n, 2);
  blas::gemm(Trans::Yes, Trans::No, 1.0, a.view(), x_true.view(), 0.0, b.view());

  auto f = a;
  std::vector<index_t> piv;
  ASSERT_TRUE(lapack::getrf(f.view(), piv).ok());
  lapack::getrs<double>(Trans::Yes, f.view(), piv, b.view());
  EXPECT_LT(test::rel_diff<double>(b.view(), x_true.view()), 1e-10);
}

TEST(Getrf, ReportsSingularity) {
  Matrix<double> a(3, 3);  // all zeros
  std::vector<index_t> piv;
  Status st = lapack::getrf(a.view(), piv);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::SingularPanel);
  EXPECT_EQ(st.detail(), 0);  // first zero pivot is column 0
}

TEST(Getrf, HandlesIllConditionedShift) {
  // A - lambda I with lambda ~ an eigenvalue: nearly singular but must
  // factor and solve without producing NaNs (the refinement use case).
  const index_t n = 16;
  auto a = test::random_symmetric<double>(n, 6);
  // crude largest eigenvalue estimate by power iteration
  std::vector<double> v(static_cast<std::size_t>(n), 1.0);
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int it = 0; it < 50; ++it) {
    blas::gemv(Trans::No, 1.0, a.view(), v.data(), 1, 0.0, w.data(), 1);
    const double nn = blas::nrm2(n, w.data(), 1);
    for (index_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i)] / nn;
  }
  blas::gemv(Trans::No, 1.0, a.view(), v.data(), 1, 0.0, w.data(), 1);
  const double lambda = blas::dot(n, v.data(), 1, w.data(), 1);

  auto f = a;
  for (index_t i = 0; i < n; ++i) f(i, i) -= lambda;
  std::vector<index_t> piv;
  (void)lapack::getrf(f.view(), piv);  // may or may not flag exact singularity
  Matrix<double> rhs(n, 1);
  for (index_t i = 0; i < n; ++i) rhs(i, 0) = v[static_cast<std::size_t>(i)];
  lapack::getrs<double>(Trans::No, f.view(), piv, rhs.view());
  for (index_t i = 0; i < n; ++i) EXPECT_TRUE(std::isfinite(rhs(i, 0)));
}

}  // namespace
}  // namespace tcevd
