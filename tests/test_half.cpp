// binary16 / TF32 conversion semantics: exactness, rounding mode, overflow,
// subnormals, NaN/inf propagation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/common/half.hpp"
#include "src/common/rng.hpp"

namespace tcevd {
namespace {

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2^11 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(round_to_half(static_cast<float>(i)), static_cast<float>(i)) << i;
  }
}

TEST(Half, ExactPowersOfTwo) {
  for (int e = -14; e <= 15; ++e) {
    const float v = std::ldexp(1.0f, e);
    EXPECT_EQ(round_to_half(v), v) << "2^" << e;
  }
}

TEST(Half, SignedZeroRoundTrip) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000u);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000u);
  EXPECT_EQ(half_bits_to_float(0x8000u), -0.0f);
  EXPECT_TRUE(std::signbit(half_bits_to_float(0x8000u)));
}

TEST(Half, RoundToNearestEvenAtMidpoint) {
  // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; RNE picks 1 (even).
  EXPECT_EQ(round_to_half(1.0f + 0x1.0p-11f), 1.0f);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: RNE picks 1+2^-9
  // (mantissa 2, even) over 1+2^-10 (mantissa 1, odd).
  EXPECT_EQ(round_to_half(1.0f + 3.0f * 0x1.0p-11f), 1.0f + 0x1.0p-9f);
}

TEST(Half, RoundsUpPastMidpoint) {
  EXPECT_EQ(round_to_half(1.0f + 0x1.0p-11f + 0x1.0p-20f), 1.0f + 0x1.0p-10f);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(round_to_half(65520.0f)));
  EXPECT_TRUE(std::isinf(round_to_half(1e30f)));
  EXPECT_TRUE(std::isinf(round_to_half(-1e30f)));
  EXPECT_LT(round_to_half(-1e30f), 0.0f);
  // Largest finite value survives.
  EXPECT_EQ(round_to_half(65504.0f), 65504.0f);
  // Just below the rounding threshold stays finite.
  EXPECT_EQ(round_to_half(65519.0f), 65504.0f);
}

TEST(Half, SubnormalsRepresentable) {
  // Smallest positive subnormal: 2^-24.
  const float tiny = 0x1.0p-24f;
  EXPECT_EQ(round_to_half(tiny), tiny);
  // 2^-25 is halfway between 0 and 2^-24: RNE picks 0 (even).
  EXPECT_EQ(round_to_half(0x1.0p-25f), 0.0f);
  // Slightly more than 2^-25 rounds up to 2^-24.
  EXPECT_EQ(round_to_half(0x1.2p-25f), tiny);
  // A mid-range subnormal.
  EXPECT_EQ(round_to_half(0x1.0p-20f), 0x1.0p-20f);
}

TEST(Half, SubnormalRoundTripAllBitPatterns) {
  for (std::uint16_t bits = 1; bits < 0x400u; ++bits) {  // all positive subnormals
    const float f = half_bits_to_float(bits);
    EXPECT_EQ(float_to_half_bits(f), bits) << "bits=" << bits;
  }
}

TEST(Half, NormalRoundTripAllBitPatterns) {
  for (std::uint32_t bits = 0x400u; bits < 0x7c00u; ++bits) {  // all positive normals
    const float f = half_bits_to_float(static_cast<std::uint16_t>(bits));
    EXPECT_EQ(float_to_half_bits(f), bits) << "bits=" << bits;
  }
}

TEST(Half, NanPropagates) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(round_to_half(nan)));
  EXPECT_TRUE(std::isnan(half_bits_to_float(0x7e00u)));
}

TEST(Half, InfPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(round_to_half(inf)));
  EXPECT_TRUE(std::isinf(round_to_half(-inf)));
}

TEST(Half, RelativeErrorBound) {
  // |round16(x) - x| <= eps/2 * |x| for normal-range x.
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(-100.0, 100.0));
    if (std::abs(x) < 0x1.0p-14f) continue;
    const float r = round_to_half(x);
    EXPECT_LE(std::abs(r - x), 0.5f * kHalfEps * std::abs(x)) << x;
  }
}

TEST(Half, RoundingIsIdempotent) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.normal() * std::exp(rng.uniform(-10.0, 10.0)));
    const float once = round_to_half(x);
    EXPECT_EQ(round_to_half(once), once);
  }
}

TEST(Tf32, KeepsFp32Exponent) {
  // 1e-30 underflows fp16 but is fine in TF32.
  EXPECT_EQ(round_to_half(1e-30f), 0.0f);
  EXPECT_NEAR(round_to_tf32(1e-30f), 1e-30f, 1e-33f);
  EXPECT_GT(round_to_tf32(1e30f), 9.9e29f);
}

TEST(Tf32, MantissaIs10Bits) {
  EXPECT_EQ(round_to_tf32(1.0f + 0x1.0p-10f), 1.0f + 0x1.0p-10f);  // representable
  EXPECT_EQ(round_to_tf32(1.0f + 0x1.0p-11f), 1.0f);               // RNE to even
  EXPECT_EQ(round_to_tf32(1.0f + 0x1.0p-11f + 0x1.0p-20f), 1.0f + 0x1.0p-10f);
}

TEST(Tf32, RoundingIsIdempotent) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.normal() * std::exp(rng.uniform(-30.0, 30.0)));
    const float once = round_to_tf32(x);
    EXPECT_EQ(round_to_tf32(once), once);
  }
}

TEST(Half, MatchesNativeFloat16IfAvailable) {
#ifdef __FLT16_MANT_DIG__
  // Cross-check against the compiler's _Float16 on a dense sample.
  Rng rng(123);
  for (int i = 0; i < 50000; ++i) {
    const float x = static_cast<float>(rng.normal() * std::exp(rng.uniform(-6.0, 6.0)));
    const float ours = round_to_half(x);
    const float native = static_cast<float>(static_cast<_Float16>(x));
    EXPECT_EQ(ours, native) << "x=" << x;
  }
#else
  GTEST_SKIP() << "no native _Float16";
#endif
}

}  // namespace
}  // namespace tcevd
