// Elementary reflector generation/application (larfg / larf).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/lapack/householder.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

TEST(Larfg, AnnihilatesBelowFirst) {
  const index_t n = 12;
  Rng rng(1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.normal();
  double norm = 0.0;
  for (double v : x) norm += v * v;
  norm = std::sqrt(norm);

  double alpha = x[0];
  std::vector<double> tail(x.begin() + 1, x.end());
  const double tau = lapack::larfg(n, alpha, tail.data(), 1);

  // H [x0; tail] = [beta; 0], so |beta| = ||x||.
  EXPECT_NEAR(std::abs(alpha), norm, 1e-12);
  EXPECT_GT(tau, 0.0);
  EXPECT_LE(tau, 2.0 + 1e-12);

  // Verify by applying H = I - tau v v^T to the original vector.
  std::vector<double> v(static_cast<std::size_t>(n));
  v[0] = 1.0;
  for (index_t i = 1; i < n; ++i) v[static_cast<std::size_t>(i)] = tail[static_cast<std::size_t>(i - 1)];
  double vtx = x[0];
  for (index_t i = 1; i < n; ++i) vtx += v[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
  std::vector<double> hx = x;
  for (index_t i = 0; i < n; ++i) hx[static_cast<std::size_t>(i)] -= tau * v[static_cast<std::size_t>(i)] * vtx;
  EXPECT_NEAR(hx[0], alpha, 1e-12);
  for (index_t i = 1; i < n; ++i) EXPECT_NEAR(hx[static_cast<std::size_t>(i)], 0.0, 1e-12);
}

TEST(Larfg, ZeroTailGivesIdentity) {
  double alpha = 3.0;
  std::vector<double> x(5, 0.0);
  const double tau = lapack::larfg<double>(6, alpha, x.data(), 1);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(alpha, 3.0);
}

TEST(Larfg, LengthOneIsIdentity) {
  double alpha = -2.0;
  const double tau = lapack::larfg<double>(1, alpha, nullptr, 1);
  EXPECT_EQ(tau, 0.0);
  EXPECT_EQ(alpha, -2.0);
}

TEST(Larfg, BetaSignOppositeAlpha) {
  // The convention beta = -sign(alpha)*||x|| avoids cancellation.
  double alpha = 2.0;
  std::vector<double> x{1.0, 1.0};
  lapack::larfg<double>(3, alpha, x.data(), 1);
  EXPECT_LT(alpha, 0.0);

  alpha = -2.0;
  x = {1.0, 1.0};
  lapack::larfg<double>(3, alpha, x.data(), 1);
  EXPECT_GT(alpha, 0.0);
}

TEST(Larfg, TinyValuesRescaledSafely) {
  double alpha = 1e-300;
  std::vector<double> x{1e-300, 1e-300};
  const double tau = lapack::larfg<double>(3, alpha, x.data(), 1);
  EXPECT_TRUE(std::isfinite(tau));
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_NEAR(std::abs(alpha), std::sqrt(3.0) * 1e-300, 1e-312);
}

TEST(Larf, LeftApplicationMatchesDense) {
  const index_t m = 10, n = 6;
  auto c = test::random_matrix(m, n, 2);
  auto c0 = c;
  Rng rng(3);
  std::vector<double> v(static_cast<std::size_t>(m));
  v[0] = 1.0;
  for (index_t i = 1; i < m; ++i) v[static_cast<std::size_t>(i)] = rng.normal();
  const double tau = 0.37;
  std::vector<double> work(static_cast<std::size_t>(n));
  lapack::larf_left(v.data(), 1, tau, c.view(), work.data());
  // Dense reference: C - tau v (v^T C).
  for (index_t j = 0; j < n; ++j) {
    double dot = 0.0;
    for (index_t i = 0; i < m; ++i) dot += v[static_cast<std::size_t>(i)] * c0(i, j);
    for (index_t i = 0; i < m; ++i)
      EXPECT_NEAR(c(i, j), c0(i, j) - tau * v[static_cast<std::size_t>(i)] * dot, 1e-12);
  }
}

TEST(Larf, RightApplicationMatchesDense) {
  const index_t m = 7, n = 9;
  auto c = test::random_matrix(m, n, 4);
  auto c0 = c;
  Rng rng(5);
  std::vector<double> v(static_cast<std::size_t>(n));
  v[0] = 1.0;
  for (index_t i = 1; i < n; ++i) v[static_cast<std::size_t>(i)] = rng.normal();
  const double tau = -0.8;
  std::vector<double> work(static_cast<std::size_t>(m));
  lapack::larf_right(v.data(), 1, tau, c.view(), work.data());
  // Dense reference: C - tau (C v) v^T.
  for (index_t i = 0; i < m; ++i) {
    double dot = 0.0;
    for (index_t j = 0; j < n; ++j) dot += c0(i, j) * v[static_cast<std::size_t>(j)];
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(c(i, j), c0(i, j) - tau * dot * v[static_cast<std::size_t>(j)], 1e-12);
  }
}

TEST(Larf, TauZeroIsNoop) {
  auto c = test::random_matrix(5, 5, 6);
  auto c0 = c;
  std::vector<double> v(5, 1.0);
  std::vector<double> work(5);
  lapack::larf_left(v.data(), 1, 0.0, c.view(), work.data());
  EXPECT_EQ(test::rel_diff<double>(c.view(), c0.view()), 0.0);
}

TEST(Larf, ReflectorIsInvolutory) {
  // H is symmetric orthogonal: applying twice restores the input.
  const index_t m = 14, n = 5;
  auto c = test::random_matrix(m, n, 7);
  auto c0 = c;
  Rng rng(8);
  std::vector<double> raw(static_cast<std::size_t>(m));
  for (auto& x : raw) x = rng.normal();
  double alpha = raw[0];
  std::vector<double> tail(raw.begin() + 1, raw.end());
  const double tau = lapack::larfg<double>(m, alpha, tail.data(), 1);
  std::vector<double> v(static_cast<std::size_t>(m));
  v[0] = 1.0;
  for (index_t i = 1; i < m; ++i) v[static_cast<std::size_t>(i)] = tail[static_cast<std::size_t>(i - 1)];
  std::vector<double> work(static_cast<std::size_t>(n));
  lapack::larf_left(v.data(), 1, tau, c.view(), work.data());
  lapack::larf_left(v.data(), 1, tau, c.view(), work.data());
  EXPECT_LT(test::rel_diff<double>(c.view(), c0.view()), 1e-13);
}

}  // namespace
}  // namespace tcevd
