// Cross-module integration: the full pipeline exercised end to end in
// configurations the unit tests don't combine — every engine x reduction x
// solver on spectrum-controlled matrices, the SVD-on-EVD stack, and the
// refine-after-TC workflow (the library's intended mixed-precision recipe).
#include <gtest/gtest.h>

#include "src/common/context.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/evd/partial.hpp"
#include "src/evd/refine.hpp"
#include "src/matgen/matgen.hpp"
#include "src/svd/svd.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

struct FullCase {
  const char* engine;  // "fp32" | "tc" | "ectc"
  evd::Reduction red;
  evd::TriSolver solver;
};

class FullPipelineTest : public ::testing::TestWithParam<FullCase> {};

TEST_P(FullPipelineTest, GeoMatrixWithVectors) {
  const auto p = GetParam();
  const index_t n = 96;
  Rng rng(10);
  auto ad = matgen::generate(matgen::MatrixType::Geo, n, 1e3, rng);
  Matrix<float> a(n, n);
  convert_matrix<double, float>(ad.view(), a.view());

  tc::Fp32Engine fp;
  tc::TcEngine tchalf(tc::TcPrecision::Fp16);
  tc::EcTcEngine ec(tc::TcPrecision::Fp16);
  tc::GemmEngine* eng = &fp;
  double tol = 1e-5;
  if (std::string(p.engine) == "tc") {
    eng = &tchalf;
    tol = 1e-2;
  } else if (std::string(p.engine) == "ectc") {
    eng = &ec;
    tol = 1e-4;
  }

  evd::EvdOptions opt;
  opt.reduction = p.red;
  opt.solver = p.solver;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  Context ctx(*eng);
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(evd::eigenpair_residual(a.view(), res.eigenvalues, res.vectors.view()), tol);
  EXPECT_LT(orthogonality_error<float>(res.vectors.view()), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FullPipelineTest,
    ::testing::Values(FullCase{"fp32", evd::Reduction::TwoStageWy, evd::TriSolver::Ql},
                      FullCase{"fp32", evd::Reduction::TwoStageZy, evd::TriSolver::DivideConquer},
                      FullCase{"tc", evd::Reduction::TwoStageWy, evd::TriSolver::DivideConquer},
                      FullCase{"tc", evd::Reduction::TwoStageZy, evd::TriSolver::Ql},
                      FullCase{"ectc", evd::Reduction::TwoStageWy, evd::TriSolver::DivideConquer},
                      FullCase{"fp32", evd::Reduction::OneStage, evd::TriSolver::Ql}));

TEST(Workflow, TcSolveThenRefineSelected) {
  // The intended mixed-precision recipe: fast low-precision full solve on
  // the (emulated) Tensor Core, then refine the few pairs that matter.
  const index_t n = 128;
  Rng rng(20);
  auto a = matgen::generate_f(matgen::MatrixType::Arith, n, 1e3, rng);

  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 16;
  opt.big_block = 64;
  opt.vectors = true;
  auto coarse = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(coarse.converged);

  const index_t k = 4;  // refine the k largest pairs
  std::vector<float> lam(coarse.eigenvalues.end() - k, coarse.eigenvalues.end());
  auto vk = coarse.vectors.sub(0, n - k, n, k);
  auto refined = evd::refine_eigenpairs(ctx, a.view(), lam, ConstMatrixView<float>(vk));

  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  const double anorm = frobenius_norm<double>(ad.view());
  for (double r : refined.residuals) EXPECT_LT(r, 1e-10 * anorm);
}

TEST(Workflow, PartialMatchesFullOnTc) {
  const index_t n = 96;
  Rng rng(21);
  auto a = matgen::generate_f(matgen::MatrixType::Geo, n, 1e2, rng);
  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;

  auto full = *evd::solve(a.view(), ctx, opt);
  auto part = *evd::solve_selected(a.view(), ctx, opt, 0, 9);
  for (index_t i = 0; i < 10; ++i)
    EXPECT_NEAR(part.eigenvalues[static_cast<std::size_t>(i)],
                full.eigenvalues[static_cast<std::size_t>(i)], 2e-3);
}

TEST(Workflow, SvdOfTallMatrixThroughTcEvd) {
  const index_t m = 120, n = 40;
  Rng rng(22);
  Matrix<float> a(m, n);
  fill_normal(rng, a.view());

  tc::EcTcEngine eng(tc::TcPrecision::Fp16);  // EC keeps the Gram route sane
  Context ctx(eng);
  svd::SvdOptions opt;
  opt.evd.bandwidth = 8;
  opt.evd.big_block = 16;
  auto res = svd::svd_via_evd(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  Matrix<double> ad(m, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto ref = svd::jacobi_svd(ad.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.sigma[static_cast<std::size_t>(i)],
                static_cast<float>(ref.sigma[static_cast<std::size_t>(i)]),
                2e-3f * static_cast<float>(ref.sigma[0]));
}

TEST(Workflow, LowRankReconstructionAccuracyChain) {
  // Build rank-6 + noise, take top-6 eigenpairs via the TC pipeline, refine,
  // and check the refined reconstruction beats the unrefined one.
  const index_t n = 96, r = 6;
  Rng rng(23);
  Matrix<float> b(n, r);
  fill_normal(rng, b.view());
  Matrix<float> a(n, n);
  blas::syrk(blas::Uplo::Lower, blas::Trans::No, 1.0f, b.view(), 0.0f, a.view());
  symmetrize_from_lower(a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += 0.01f;  // noise floor

  tc::TcEngine eng(tc::TcPrecision::Fp16);
  Context ctx(eng);
  evd::EvdOptions opt;
  opt.bandwidth = 8;
  opt.big_block = 32;
  opt.vectors = true;
  auto res = *evd::solve(a.view(), ctx, opt);
  ASSERT_TRUE(res.converged);

  std::vector<float> lam(res.eigenvalues.end() - r, res.eigenvalues.end());
  auto vr = res.vectors.sub(0, n - r, n, r);
  auto refined = evd::refine_eigenpairs(ctx, a.view(), lam, ConstMatrixView<float>(vr));

  Matrix<double> ad(n, n);
  convert_matrix<float, double>(a.view(), ad.view());
  auto recon_err = [&](auto&& lamv, ConstMatrixView<double> v) {
    Matrix<double> vl(n, r);
    for (index_t j = 0; j < r; ++j)
      for (index_t i = 0; i < n; ++i)
        vl(i, j) = v(i, j) * static_cast<double>(lamv[static_cast<std::size_t>(j)]);
    Matrix<double> rec(n, n);
    blas::gemm(blas::Trans::No, blas::Trans::Yes, 1.0, ConstMatrixView<double>(vl.view()), v,
               0.0, rec.view());
    return frobenius_diff<double>(rec.view(), ad.view());
  };
  Matrix<double> v0(n, r);
  convert_matrix<float, double>(ConstMatrixView<float>(vr), v0.view());
  const double before = recon_err(lam, v0.view());
  const double after = recon_err(refined.eigenvalues, refined.vectors.view());
  EXPECT_LE(after, before);
}

}  // namespace
}  // namespace tcevd
