// Cyclic Jacobi symmetric EVD: the reduction-free cross-check.
#include <gtest/gtest.h>

#include "src/blas/blas.hpp"
#include "src/common/norms.hpp"
#include "src/evd/evd.hpp"
#include "src/lapack/jacobi_evd.hpp"
#include "src/matgen/matgen.hpp"
#include "test_util.hpp"

namespace tcevd {
namespace {

TEST(JacobiEvd, DiagonalizesRandomSymmetric) {
  const index_t n = 50;
  auto a = test::random_symmetric<double>(n, 1);
  auto res = lapack::jacobi_evd<double>(a.view());
  ASSERT_TRUE(res.converged);

  EXPECT_LT(orthogonality_residual<double>(res.vectors.view()), 1e-12 * n);
  // A V = V diag(lambda).
  Matrix<double> av(n, n);
  blas::gemm(blas::Trans::No, blas::Trans::No, 1.0, a.view(), res.vectors.view(), 0.0,
             av.view());
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      worst = std::max(worst, std::abs(av(i, j) - res.eigenvalues[static_cast<std::size_t>(j)] *
                                                      res.vectors(i, j)));
  EXPECT_LT(worst, 1e-12 * n);
}

TEST(JacobiEvd, AgreesWithTridiagonalizationPipeline) {
  // Two completely independent algorithms must agree to fp64 roundoff.
  const index_t n = 64;
  auto a = test::random_symmetric<double>(n, 2);
  auto jac = lapack::jacobi_evd<double>(a.view());
  auto ref = *evd::reference_eigenvalues(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(jac.eigenvalues[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)],
                1e-11);
}

TEST(JacobiEvd, PrescribedSpectrumRecovered) {
  const index_t n = 40;
  Rng rng(3);
  auto a = matgen::generate(matgen::MatrixType::Geo, n, 1e5, rng);
  auto want = matgen::prescribed_spectrum(matgen::MatrixType::Geo, n, 1e5);
  auto res = lapack::jacobi_evd<double>(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)],
                1e-11 * want.back());
}

TEST(JacobiEvd, ValuesOnlyModeSkipsVectors) {
  const index_t n = 24;
  auto a = test::random_symmetric<double>(n, 4);
  lapack::JacobiEvdOptions opt;
  opt.vectors = false;
  auto res = lapack::jacobi_evd<double>(a.view(), opt);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.vectors.rows(), 0);
  auto ref = *evd::reference_eigenvalues(a.view());
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.eigenvalues[static_cast<std::size_t>(i)], ref[static_cast<std::size_t>(i)],
                1e-11);
}

TEST(JacobiEvd, DiagonalInputConvergesInstantly) {
  const index_t n = 12;
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(n - i);
  auto res = lapack::jacobi_evd<double>(a.view());
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.sweeps, 0);
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(res.eigenvalues[static_cast<std::size_t>(i)], double(i + 1));
}

TEST(JacobiEvd, FloatVariant) {
  const index_t n = 40;
  auto a = test::random_symmetric<float>(n, 5);
  auto res = lapack::jacobi_evd<float>(a.view());
  ASSERT_TRUE(res.converged);
  EXPECT_LT(orthogonality_residual<float>(res.vectors.view()), 1e-4);
}

}  // namespace
}  // namespace tcevd
